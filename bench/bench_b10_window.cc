// B10 — the authenticator window as an attack budget.
//
// "The claim is made that no replays are likely within the lifetime of the
// authenticator (typically five minutes). ... Note that the lifetime of the
// authenticators — 5 minutes — contributes considerably to this attack."
// Sweep the skew window against a range of attacker delays: the exposed
// period per captured authenticator is exactly the window.

#include "bench/bench_util.h"
#include "src/attacks/replay.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("B10", "replay success vs skew window and attacker delay");
  const ksim::Duration kWindows[] = {1 * ksim::kMinute, 2 * ksim::kMinute,
                                     5 * ksim::kMinute, 10 * ksim::kMinute};
  const ksim::Duration kDelays[] = {30 * ksim::kSecond,  90 * ksim::kSecond,
                                    3 * ksim::kMinute,   270 * ksim::kSecond,
                                    6 * ksim::kMinute,   9 * ksim::kMinute,
                                    11 * ksim::kMinute};

  std::printf("  %-10s", "window \\ delay");
  for (ksim::Duration delay : kDelays) {
    std::printf(" %5llds", static_cast<long long>(delay / ksim::kSecond));
  }
  std::printf("\n");
  for (ksim::Duration window : kWindows) {
    std::printf("  %6lld min   ", static_cast<long long>(window / ksim::kMinute));
    for (ksim::Duration delay : kDelays) {
      kattack::ReplayScenario scenario;
      scenario.clock_skew_limit = window;
      scenario.replay_delay = delay;
      bool hit = kattack::RunMailCheckReplayV4(scenario).replay_accepted;
      std::printf(" %5s", hit ? "HIT" : ".");
    }
    std::printf("\n");
  }
  kbench::Line("  Every captured authenticator stays live for exactly the window —");
  kbench::Line("  shrinking it trades availability (clock agreement) for exposure.");
}

void BM_ReplayAtWindowEdge(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::ReplayScenario scenario;
    scenario.seed = seed++;
    scenario.replay_delay = 4 * ksim::kMinute + 59 * ksim::kSecond;
    benchmark::DoNotOptimize(kattack::RunMailCheckReplayV4(scenario));
  }
}
BENCHMARK(BM_ReplayAtWindowEdge)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
