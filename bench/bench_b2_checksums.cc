// B2 — checksum cost: CRC-32 vs MD4 vs MD4-DES.
//
// The paper's appendix: the meaningful axis is collision-proofness; this
// bench prices the upgrade the paper demands (CRC-32 → MD4 / MD4-DES).

#include "bench/bench_util.h"
#include "src/crypto/checksum.h"
#include "src/crypto/crc32.h"
#include "src/crypto/prng.h"

namespace {

using kcrypto::ChecksumType;

void PrintExperimentReport() {
  kbench::Header("B2", "checksum suite: strength classification");
  std::printf("  %-14s %-6s %-16s %-6s\n", "type", "bytes", "collision-proof", "keyed");
  for (ChecksumType type :
       {ChecksumType::kCrc32, ChecksumType::kMd4, ChecksumType::kMd4Des}) {
    std::printf("  %-14s %-6zu %-16s %-6s\n", kcrypto::ChecksumTypeName(type),
                kcrypto::ChecksumSize(type), kcrypto::IsCollisionProof(type) ? "yes" : "NO",
                kcrypto::IsKeyed(type) ? "yes" : "no");
  }
  kbench::Line("  (CRC-32's 'NO' is the root cause of experiments E9/E10.)");
}

template <ChecksumType kType>
void BM_Checksum(benchmark::State& state) {
  kcrypto::Prng prng(1);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes data = prng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcrypto::ComputeChecksum(kType, data, key));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Checksum<ChecksumType::kCrc32>)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_Checksum<ChecksumType::kMd4>)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_Checksum<ChecksumType::kMd4Des>)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Crc32Forge(benchmark::State& state) {
  // The attacker's cost: steering a CRC-32 is four table lookups.
  kcrypto::Prng prng(2);
  kerb::Bytes prefix = prng.NextBytes(256);
  uint32_t target = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcrypto::ForgePatch(prefix, target++));
  }
}
BENCHMARK(BM_Crc32Forge);

}  // namespace

KERB_BENCH_MAIN()
