// B8 — multi-session key exposure (§Exposure of Session Keys).
//
// "The term session key is a misnomer … This limits the exposure to
// cryptanalysis of the multi-session key contained in the ticket."
// Measured: how many ciphertext blocks accumulate under ONE key across N
// sessions with the ticket's multi-session key, versus negotiated true
// session keys (each key sees only its own session's traffic).

#include "bench/bench_util.h"
#include "src/attacks/testbed5.h"

namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

struct Exposure {
  size_t max_blocks_under_one_key = 0;
  size_t keys_used = 0;
};

Exposure MeasureExposure(bool negotiate_subkeys, int sessions, int messages_per_session) {
  Testbed5Config config;
  config.server_options.negotiate_subkey = negotiate_subkeys;
  config.client_options.send_subkey = negotiate_subkeys;
  Testbed5 bed(config);
  (void)bed.alice().Login(Testbed5::kAlicePassword);

  std::map<uint64_t, size_t> blocks_per_key;
  kcrypto::Prng prng(1);
  for (int s = 0; s < sessions; ++s) {
    auto call = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true);
    if (!call.ok()) {
      continue;
    }
    // Session traffic sealed under the channel key.
    krb5::EncLayerConfig enc;
    for (int m = 0; m < messages_per_session; ++m) {
      kenc::TlvMessage msg(krb5::kMsgPriv);
      msg.SetBytes(krb5::tag::kAppData, prng.NextBytes(128));
      kerb::Bytes sealed = SealTlv(call.value().channel_key, msg, enc, prng);
      blocks_per_key[call.value().channel_key.AsU64()] += sealed.size() / 8;
    }
  }
  Exposure exposure;
  exposure.keys_used = blocks_per_key.size();
  for (const auto& [key, blocks] : blocks_per_key) {
    exposure.max_blocks_under_one_key = std::max(exposure.max_blocks_under_one_key, blocks);
  }
  return exposure;
}

void PrintExperimentReport() {
  kbench::Header("B8", "ciphertext accumulated under one key across sessions");
  std::printf("  %-34s %-10s %-26s\n", "configuration (20 sessions x 50 msgs)", "keys",
              "max blocks under one key");
  Exposure multi = MeasureExposure(false, 20, 50);
  std::printf("  %-34s %-10zu %-26zu\n", "multi-session key (Draft 3)", multi.keys_used,
              multi.max_blocks_under_one_key);
  Exposure negotiated = MeasureExposure(true, 20, 50);
  std::printf("  %-34s %-10zu %-26zu\n", "negotiated true session keys",
              negotiated.keys_used, negotiated.max_blocks_under_one_key);
  kbench::Line("  Recommendation (e) divides the cryptanalytic target by the session"
               " count and 'precludes attacks which substitute messages from one session"
               " in another' (E11).");
}

void BM_SubkeyNegotiationOverhead(benchmark::State& state) {
  bool negotiate = state.range(0) != 0;
  Testbed5Config config;
  config.server_options.negotiate_subkey = negotiate;
  config.client_options.send_subkey = negotiate;
  Testbed5 bed(config);
  (void)bed.alice().Login(Testbed5::kAlicePassword);
  (void)bed.alice().GetServiceTicket(bed.mail_principal());
  for (auto _ : state) {
    auto r = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(negotiate ? "with subkey negotiation" : "multi-session key only");
}
BENCHMARK(BM_SubkeyNegotiationOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
