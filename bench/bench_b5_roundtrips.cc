// B5 — the price of challenge/response: "an extra pair of messages must be
// exchanged each time a ticket is used, which rules out the possibility of
// authenticated datagrams."
//
// Counts network messages and times the full AP exchange in both modes.

#include "bench/bench_util.h"
#include "src/attacks/testbed5.h"

namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

uint64_t MessagesForOneCall(krb5::ApAuthMode mode) {
  Testbed5Config config;
  config.server_options.mode = mode;
  Testbed5 bed(config);
  (void)bed.alice().Login(Testbed5::kAlicePassword);
  (void)bed.alice().GetServiceTicket(bed.mail_principal());
  uint64_t before = bed.world().network().messages_sent();
  (void)bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
  return bed.world().network().messages_sent() - before;
}

void PrintExperimentReport() {
  kbench::Header("B5", "AP exchange round trips: timestamp vs challenge/response");
  uint64_t ts = MessagesForOneCall(krb5::ApAuthMode::kTimestamp);
  uint64_t cr = MessagesForOneCall(krb5::ApAuthMode::kChallengeResponse);
  std::printf("  timestamp mode:           %llu request(s) per authenticated call\n",
              static_cast<unsigned long long>(ts));
  std::printf("  challenge/response mode:  %llu request(s) per authenticated call\n",
              static_cast<unsigned long long>(cr));
  std::printf("  extra messages:           %lld (the paper's 'extra pair')\n",
              static_cast<long long>(cr - ts));
}

void RunCallBenchmark(benchmark::State& state, krb5::ApAuthMode mode) {
  Testbed5Config config;
  config.server_options.mode = mode;
  Testbed5 bed(config);
  (void)bed.alice().Login(Testbed5::kAlicePassword);
  (void)bed.alice().GetServiceTicket(bed.mail_principal());
  for (auto _ : state) {
    auto r = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_ApExchangeTimestamp(benchmark::State& state) {
  RunCallBenchmark(state, krb5::ApAuthMode::kTimestamp);
}
BENCHMARK(BM_ApExchangeTimestamp)->Unit(benchmark::kMicrosecond);

void BM_ApExchangeChallengeResponse(benchmark::State& state) {
  RunCallBenchmark(state, krb5::ApAuthMode::kChallengeResponse);
}
BENCHMARK(BM_ApExchangeChallengeResponse)->Unit(benchmark::kMicrosecond);

void BM_FullLoginToService(benchmark::State& state) {
  // End-to-end: AS + TGS + AP, fresh client each iteration.
  for (auto _ : state) {
    Testbed5Config config;
    config.seed = static_cast<uint64_t>(state.iterations()) + 1;
    Testbed5 bed(config);
    (void)bed.alice().Login(Testbed5::kAlicePassword);
    auto r = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullLoginToService)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
