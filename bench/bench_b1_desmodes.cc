// B1 — DES modes of operation: cost and propagation behaviour.
//
// The paper contrasts V4's nonstandard PCBC with standard CBC and notes the
// propagation property that makes PCBC splice-able (E8). This bench gives
// the throughput of each mode on the same core, plus the property summary.

#include "bench/bench_util.h"
#include "src/crypto/modes.h"
#include "src/crypto/prng.h"

namespace {

using kcrypto::DesKey;
using kcrypto::Prng;

void PrintExperimentReport() {
  kbench::Header("B1", "DES modes: ECB vs CBC vs PCBC");
  Prng prng(1);
  DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(64);
  kcrypto::DesBlock iv = kcrypto::U64ToBlock(prng.NextU64());

  // Propagation after a single corrupted ciphertext block (block 1 of 8).
  auto garbled_blocks = [&](kerb::Bytes ct, auto decrypt) {
    ct[8] ^= 0x01;
    kerb::Bytes out = decrypt(ct);
    int garbled = 0;
    for (int b = 0; b < 8; ++b) {
      if (!std::equal(out.begin() + 8 * b, out.begin() + 8 * b + 8, pt.begin() + 8 * b)) {
        ++garbled;
      }
    }
    return garbled;
  };
  int cbc = garbled_blocks(EncryptCbc(key, iv, pt),
                           [&](const kerb::Bytes& c) { return DecryptCbc(key, iv, c); });
  int pcbc = garbled_blocks(EncryptPcbc(key, iv, pt),
                            [&](const kerb::Bytes& c) { return DecryptPcbc(key, iv, c); });
  kbench::Line("  plaintext blocks garbled by one flipped ciphertext block (of 8):");
  kbench::Line("    CBC : " + std::to_string(cbc) + "  (self-healing after 2 blocks)");
  kbench::Line("    PCBC: " + std::to_string(pcbc) + "  (propagates to the end)");
  kbench::Line("  ...yet swapping two adjacent PCBC blocks garbles ONLY those two —");
  kbench::Line("  the message-stream-modification flaw (see bench_e08_pcbc).");
}

void BM_DesEcb(benchmark::State& state) {
  Prng prng(2);
  DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncryptEcb(key, pt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DesEcb)->Arg(64)->Arg(1024)->Arg(8192);

void BM_DesCbc(benchmark::State& state) {
  Prng prng(3);
  DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncryptCbc(key, kcrypto::kZeroIv, pt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DesCbc)->Arg(64)->Arg(1024)->Arg(8192);

void BM_DesPcbc(benchmark::State& state) {
  Prng prng(4);
  DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncryptPcbc(key, kcrypto::kZeroIv, pt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DesPcbc)->Arg(64)->Arg(1024)->Arg(8192);

void BM_DesCbcDecrypt(benchmark::State& state) {
  Prng prng(5);
  DesKey key = prng.NextDesKey();
  kerb::Bytes ct = EncryptCbc(key, kcrypto::kZeroIv,
                              prng.NextBytes(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecryptCbc(key, kcrypto::kZeroIv, ct));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DesCbcDecrypt)->Arg(1024);

void BM_DesKeySchedule(benchmark::State& state) {
  Prng prng(6);
  uint64_t raw = prng.NextU64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DesKey(raw));
    ++raw;
  }
}
BENCHMARK(BM_DesKeySchedule);

}  // namespace

KERB_BENCH_MAIN()
