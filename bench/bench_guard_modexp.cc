// Regression guard: the cached sliding-window Montgomery engine must stay
// at least 1.5x faster than the binary ladder it replaced at 512 bits.
//
// Not a google-benchmark binary — a plain pass/fail ctest (registered as
// bench_smoke_modexp_guard) so the margin is checked on every test run,
// not only when someone reads bench output. Both sides exponentiate the
// same base to the same full-width exponent modulo the same 512-bit odd
// modulus:
//
//   binary:   BigInt::ModExpBinary — the pre-PR-7 square-and-multiply
//             ladder, kept as the correctness oracle;
//   windowed: a ModExpCtx built once (Montgomery constants + odd-power
//             table) and reused across calls — the DhEngine inner loop.
//
// The 1.5x floor is conservative: the measured margin on the reference box
// is ~4-5x, so the guard only fires on a real regression (e.g. the ctx
// cache silently falling back to per-call setup). Because this is a
// wall-clock ratio on possibly-shared CI hardware, the measurement is
// flake-hardened twice over: best-of-N rounds absorbs scheduler noise
// within an attempt, and a failed attempt is re-measured from scratch up
// to kAttempts times — interleaved timing makes a transiently loaded box
// slow BOTH sides, so only a persistent one-sided slowdown (i.e. a real
// regression) can fail every attempt.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/crypto/bigint.h"
#include "src/crypto/modexp.h"
#include "src/crypto/prng.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  constexpr size_t kBits = 512;
  constexpr int kCalls = 24;
  constexpr int kRounds = 5;
  constexpr int kAttempts = 3;
  constexpr double kFloor = 1.5;

  kcrypto::Prng prng(0x90dc);
  kerb::Bytes raw = prng.NextBytes(kBits / 8);
  raw[0] |= 0x80;
  raw[raw.size() - 1] |= 1;
  const kcrypto::BigInt m = kcrypto::BigInt::FromBytes(raw);
  const kcrypto::BigInt base = kcrypto::BigInt::FromBytes(prng.NextBytes(kBits / 8)).Mod(m);
  const kcrypto::BigInt exp = kcrypto::BigInt::FromBytes(prng.NextBytes(kBits / 8));

  auto ctx = kcrypto::ModExpCtx::Create(m);
  if (!ctx.ok()) {
    std::fprintf(stderr, "FAIL: ModExpCtx::Create rejected an odd 512-bit modulus\n");
    return 1;
  }

  // The two engines must agree before being timed.
  auto oracle = kcrypto::BigInt::ModExpBinary(base, exp, m);
  if (!oracle.ok() || ctx.value().Pow(base, exp).Compare(oracle.value()) != 0) {
    std::fprintf(stderr, "FAIL: windowed engine disagrees with the binary ladder\n");
    return 1;
  }

  volatile uint32_t sink = 0;
  double speedup = 0.0;
  std::printf("modulus=%zu bits, %d calls per round, best of %d rounds\n", kBits, kCalls,
              kRounds);
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Best-of-N to shrug off scheduler noise on shared machines.
    double binary_best = 1e9;
    double windowed_best = 1e9;
    for (int round = 0; round < kRounds; ++round) {
      auto start = Clock::now();
      for (int i = 0; i < kCalls; ++i) {
        sink = sink ^ static_cast<uint32_t>(
            kcrypto::BigInt::ModExpBinary(base, exp, m).value().BitLength());
      }
      binary_best = std::min(binary_best, SecondsSince(start));

      start = Clock::now();
      for (int i = 0; i < kCalls; ++i) {
        sink = sink ^ static_cast<uint32_t>(ctx.value().Pow(base, exp).BitLength());
      }
      windowed_best = std::min(windowed_best, SecondsSince(start));
    }

    const double binary_rate = kCalls / binary_best;
    const double windowed_rate = kCalls / windowed_best;
    speedup = windowed_rate / binary_rate;
    std::printf("attempt %d/%d: binary %.0f modexp/sec, windowed %.0f modexp/sec, "
                "speedup %.2fx (floor: %.1fx)\n",
                attempt, kAttempts, binary_rate, windowed_rate, speedup, kFloor);
    if (speedup >= kFloor) {
      std::printf("PASS\n");
      return 0;
    }
  }
  std::fprintf(stderr, "FAIL: windowed engine below the %.1fx floor on all %d attempts "
               "(last: %.2fx)\n", kFloor, kAttempts, speedup);
  return 1;
}
