// E9 — CRC-32 fixup + ENC-TKT-IN-SKEY negates bidirectional authentication.

#include "bench/bench_util.h"
#include "src/attacks/cutpaste.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E9", "weak-checksum cut-and-paste (Appendix, ENC-TKT-IN-SKEY)");
  {
    kattack::CutPasteScenario scenario;
    auto r = kattack::RunEncTktInSkeyCutPaste(scenario);
    kbench::ResultRow("Draft 3 literal: CRC-32, no cname rule", r.mutual_auth_spoofed,
                      "attacker read: \"" + r.intercepted_data + "\"");
  }
  {
    kattack::CutPasteScenario scenario;
    scenario.request_checksum = kcrypto::ChecksumType::kMd4;
    auto r = kattack::RunEncTktInSkeyCutPaste(scenario);
    kbench::ResultRow("collision-proof checksum (rsa-md4)", r.mutual_auth_spoofed);
  }
  {
    kattack::CutPasteScenario scenario;
    scenario.request_checksum = kcrypto::ChecksumType::kMd4Des;
    auto r = kattack::RunEncTktInSkeyCutPaste(scenario);
    kbench::ResultRow("keyed collision-proof checksum (rsa-md4-des)",
                      r.mutual_auth_spoofed);
  }
  {
    kattack::CutPasteScenario scenario;
    scenario.enforce_cname_match = true;
    auto r = kattack::RunEncTktInSkeyCutPaste(scenario);
    kbench::ResultRow("CRC-32 + the intended cname-match rule", r.mutual_auth_spoofed);
  }
  kbench::Line("  Paper: 'the existence of the ENC-TKT-IN-SKEY option leads to a major"
               " security breach, and in particular to the complete negation of"
               " bidirectional authentication.'");
}

void BM_CutPasteAttackEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::CutPasteScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunEncTktInSkeyCutPaste(scenario));
  }
}
BENCHMARK(BM_CutPasteAttackEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
