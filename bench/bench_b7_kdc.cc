// B7 — KDC throughput under the recommended AS-exchange protections.
//
// Preauthentication costs the KDC one extra decryption per AS request;
// rate limiting costs a map lookup. The paper: "Security has real costs,
// and the benefits are intangible."

#include "bench/bench_util.h"
#include "src/attacks/testbed5.h"

namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

void PrintExperimentReport() {
  kbench::Header("B7", "AS exchange cost: bare vs preauthenticated vs rate-limited");
  kbench::Line("  Timed below. Expect preauth to add one seal+unseal pair per login;");
  kbench::Line("  the rate limiter's sliding window is noise by comparison.");
}

void RunLoginBenchmark(benchmark::State& state, bool preauth, uint32_t rate_limit) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = preauth;
  config.kdc_policy.as_rate_limit_per_minute = rate_limit;
  config.client_options.use_preauth = preauth;
  Testbed5 bed(config);
  for (auto _ : state) {
    auto r = bed.alice().Login(Testbed5::kAlicePassword);
    benchmark::DoNotOptimize(r);
    bed.alice().Logout();
    // Keep the rate limiter's window moving so throttling never triggers
    // in the timed path.
    bed.world().clock().Advance(ksim::kMinute);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_AsExchangeBare(benchmark::State& state) { RunLoginBenchmark(state, false, 0); }
BENCHMARK(BM_AsExchangeBare)->Unit(benchmark::kMicrosecond);

void BM_AsExchangePreauth(benchmark::State& state) { RunLoginBenchmark(state, true, 0); }
BENCHMARK(BM_AsExchangePreauth)->Unit(benchmark::kMicrosecond);

void BM_AsExchangeRateLimited(benchmark::State& state) {
  RunLoginBenchmark(state, false, 1000000);
}
BENCHMARK(BM_AsExchangeRateLimited)->Unit(benchmark::kMicrosecond);

void BM_TgsExchange(benchmark::State& state) {
  Testbed5Config config;
  Testbed5 bed(config);
  (void)bed.alice().Login(Testbed5::kAlicePassword);
  for (auto _ : state) {
    krb5::TgsRequest5 req;
    req.service = bed.mail_principal();
    req.lifetime = ksim::kHour;
    auto r = bed.alice().RawTgsRequest(bed.realm, req);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TgsExchange)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
