// B3 — the exponential-key-exchange trade-off.
//
// "LaMacchia and Odlyzko have demonstrated that exchanging small numbers is
// quite insecure, while using large ones is expensive in computation time."
// Two curves against modulus size: the legitimate parties' ModExp cost
// (polynomial) and the attacker's discrete-log cost (exponential). The
// crossover is the paper's argument in numbers.

#include "bench/bench_util.h"
#include "src/crypto/dh.h"
#include "src/crypto/dlog.h"
#include "src/crypto/primes.h"

namespace {

using kcrypto::BigInt;
using kcrypto::DhGroup;
using kcrypto::MakeToyGroup;
using kcrypto::Prng;

void PrintExperimentReport() {
  kbench::Header("B3", "modexp cost vs discrete-log break cost by modulus size");
  kbench::Line("  ModExp grows polynomially with bits; BSGS/rho grow as 2^(bits/2).");
  kbench::Line("  Timed results follow; 768/1024-bit groups are the Oakley primes,");
  kbench::Line("  smaller are random safe primes. Dlog rows stop at 40 bits because");
  kbench::Line("  beyond that the attacker's table no longer fits the point being made.");
}

void BM_ModExpToy(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)));
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  kcrypto::DhKeyPair pair = DhGenerate(group, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BigInt::ModExp(group.g, pair.private_key, group.p));
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus");
}
BENCHMARK(BM_ModExpToy)->Arg(16)->Arg(24)->Arg(32)->Arg(40)->Arg(56);

void BM_ModExpOakley(benchmark::State& state) {
  const DhGroup& group =
      state.range(0) == 768 ? kcrypto::OakleyGroup1() : kcrypto::OakleyGroup2();
  Prng prng(9);
  kcrypto::DhKeyPair pair = DhGenerate(group, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(group.g, pair.private_key, group.p));
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus");
}
BENCHMARK(BM_ModExpOakley)->Arg(768)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DlogBsgsBreak(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0xd106);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t secret = 2 + prng.NextBelow(p - 4);
  uint64_t target = kcrypto::PowMod64(g, secret, p);
  for (auto _ : state) {
    auto x = kcrypto::DlogBabyStepGiantStep(g, target, p);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus BROKEN");
}
BENCHMARK(BM_DlogBsgsBreak)->Arg(16)->Arg(24)->Arg(32)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_DlogPollardRhoBreak(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0x60);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t secret = 2 + prng.NextBelow(p - 4);
  uint64_t target = kcrypto::PowMod64(g, secret, p);
  Prng walk_prng(1);
  for (auto _ : state) {
    auto x = kcrypto::DlogPollardRho(g, target, p, walk_prng);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus BROKEN (O(1) memory)");
}
BENCHMARK(BM_DlogPollardRhoBreak)->Arg(20)->Arg(28)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_DlogBsgsTableSweep(benchmark::State& state) {
  // Times the baby-step table itself: the target is g^(p-2), which the
  // giant-step phase reaches last, so every iteration pays the full table
  // build (m inserts) plus ~m probes. This is the workload the flat
  // open-addressing table replaced unordered_map for.
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0x7ab1e);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t target = kcrypto::PowMod64(g, p - 2, p);
  for (auto _ : state) {
    auto x = kcrypto::DlogBabyStepGiantStep(g, target, p);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus, worst-case sweep");
}
BENCHMARK(BM_DlogBsgsTableSweep)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FullDhLoginHandshakeCost(benchmark::State& state) {
  // The per-login cost recommendation (h) adds: two modexps per side.
  const DhGroup& group = kcrypto::OakleyGroup1();
  Prng prng(11);
  for (auto _ : state) {
    kcrypto::DhKeyPair client = DhGenerate(group, prng);
    kcrypto::DhKeyPair server = DhGenerate(group, prng);
    benchmark::DoNotOptimize(
        kcrypto::DhSharedSecret(group, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_FullDhLoginHandshakeCost)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
