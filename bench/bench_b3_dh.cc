// B3 — the exponential-key-exchange trade-off.
//
// "LaMacchia and Odlyzko have demonstrated that exchanging small numbers is
// quite insecure, while using large ones is expensive in computation time."
// Two curves against modulus size: the legitimate parties' ModExp cost
// (polynomial) and the attacker's discrete-log cost (exponential). The
// crossover is the paper's argument in numbers.

#include "bench/bench_util.h"
#include "src/attacks/kdcload.h"
#include "src/crypto/dh.h"
#include "src/crypto/dlog.h"
#include "src/crypto/modexp.h"
#include "src/crypto/primes.h"
#include "src/crypto/str2key.h"
#include "src/krb4/kdccore.h"

namespace {

using kcrypto::BigInt;
using kcrypto::DhGroup;
using kcrypto::MakeToyGroup;
using kcrypto::Prng;

void PrintExperimentReport() {
  kbench::Header("B3", "modexp cost vs discrete-log break cost by modulus size");
  kbench::Line("  ModExp grows polynomially with bits; BSGS/rho grow as 2^(bits/2).");
  kbench::Line("  Timed results follow; 768/1024-bit groups are the Oakley primes,");
  kbench::Line("  smaller are random safe primes. Dlog rows stop at 40 bits because");
  kbench::Line("  beyond that the attacker's table no longer fits the point being made.");
  kbench::Line("  Engine rows compare the binary Montgomery ladder against the cached");
  kbench::Line("  sliding-window context and the fixed-base comb table, then drive");
  kbench::Line("  bulk PK-preauth logins through the threaded V4 KDC core.");
}

// Deterministic odd modulus of `bits` bits; 768/1024 use the Oakley primes
// so those rows measure the production groups.
BigInt BenchModulus(size_t bits) {
  if (bits == 768) {
    return kcrypto::OakleyGroup1().p;
  }
  if (bits == 1024) {
    return kcrypto::OakleyGroup2().p;
  }
  Prng prng(0xb3ull << 8 | bits);
  kerb::Bytes raw = prng.NextBytes(bits / 8);
  raw[0] |= 0x80;
  raw[raw.size() - 1] |= 1;
  return BigInt::FromBytes(raw);
}

// The three engines head to head, full-width exponents. Binary is the
// pre-PR-7 ladder (the oracle); windowed reuses one cached ModExpCtx;
// fixed-base additionally reuses a per-base comb table, the KDC's own g^x
// configuration.
void BM_ModExpBinary(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BenchModulus(bits);
  Prng prng(17);
  BigInt base = BigInt::FromBytes(prng.NextBytes(bits / 8)).Mod(m);
  BigInt exp = BigInt::FromBytes(prng.NextBytes(bits / 8));
  for (auto _ : state) {
    auto r = BigInt::ModExpBinary(base, exp, m);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(bits) + "-bit modulus, binary ladder");
}
BENCHMARK(BM_ModExpBinary)->Arg(256)->Arg(512)->Arg(768)->Arg(1024);

void BM_ModExpWindowed(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BenchModulus(bits);
  auto ctx = kcrypto::ModExpCtx::Create(m);
  Prng prng(17);
  BigInt base = BigInt::FromBytes(prng.NextBytes(bits / 8)).Mod(m);
  BigInt exp = BigInt::FromBytes(prng.NextBytes(bits / 8));
  for (auto _ : state) {
    BigInt r = ctx.value().Pow(base, exp);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(bits) + "-bit modulus, cached sliding window");
}
BENCHMARK(BM_ModExpWindowed)->Arg(256)->Arg(512)->Arg(768)->Arg(1024);

void BM_ModExpFixedBase(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BenchModulus(bits);
  auto shared =
      std::make_shared<const kcrypto::ModExpCtx>(std::move(kcrypto::ModExpCtx::Create(m)).value());
  Prng prng(17);
  BigInt base = BigInt::FromBytes(prng.NextBytes(bits / 8)).Mod(m);
  kcrypto::FixedBasePow fixed(shared, base, bits);
  BigInt exp = BigInt::FromBytes(prng.NextBytes(bits / 8));
  for (auto _ : state) {
    BigInt r = fixed.Pow(exp);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(bits) + "-bit modulus, fixed-base comb");
}
BENCHMARK(BM_ModExpFixedBase)->Arg(256)->Arg(512)->Arg(768)->Arg(1024);

void BM_ModExpToy(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)));
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  kcrypto::DhKeyPair pair = DhGenerate(group, prng);
  for (auto _ : state) {
    auto r = BigInt::ModExp(group.g, pair.private_key, group.p);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus");
}
BENCHMARK(BM_ModExpToy)->Arg(16)->Arg(24)->Arg(32)->Arg(40)->Arg(56);

void BM_ModExpOakley(benchmark::State& state) {
  const DhGroup& group =
      state.range(0) == 768 ? kcrypto::OakleyGroup1() : kcrypto::OakleyGroup2();
  Prng prng(9);
  kcrypto::DhKeyPair pair = DhGenerate(group, prng);
  for (auto _ : state) {
    auto r = BigInt::ModExp(group.g, pair.private_key, group.p);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus, ctx built per call");
}
BENCHMARK(BM_ModExpOakley)->Arg(768)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DlogBsgsBreak(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0xd106);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t secret = 2 + prng.NextBelow(p - 4);
  uint64_t target = kcrypto::PowMod64(g, secret, p);
  for (auto _ : state) {
    auto x = kcrypto::DlogBabyStepGiantStep(g, target, p);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus BROKEN");
}
BENCHMARK(BM_DlogBsgsBreak)->Arg(16)->Arg(24)->Arg(32)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_DlogPollardRhoBreak(benchmark::State& state) {
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0x60);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t secret = 2 + prng.NextBelow(p - 4);
  uint64_t target = kcrypto::PowMod64(g, secret, p);
  Prng walk_prng(1);
  for (auto _ : state) {
    auto x = kcrypto::DlogPollardRho(g, target, p, walk_prng);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus BROKEN (O(1) memory)");
}
BENCHMARK(BM_DlogPollardRhoBreak)->Arg(20)->Arg(28)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_DlogBsgsTableSweep(benchmark::State& state) {
  // Times the baby-step table itself: the target is g^(p-2), which the
  // giant-step phase reaches last, so every iteration pays the full table
  // build (m inserts) plus ~m probes. This is the workload the flat
  // open-addressing table replaced unordered_map for.
  Prng prng(static_cast<uint64_t>(state.range(0)) ^ 0x7ab1e);
  DhGroup group = MakeToyGroup(prng, static_cast<int>(state.range(0)));
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  uint64_t target = kcrypto::PowMod64(g, p - 2, p);
  for (auto _ : state) {
    auto x = kcrypto::DlogBabyStepGiantStep(g, target, p);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit modulus, worst-case sweep");
}
BENCHMARK(BM_DlogBsgsTableSweep)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FullDhLoginHandshakeCost(benchmark::State& state) {
  // The per-login cost recommendation (h) adds: two modexps per side.
  const DhGroup& group = kcrypto::OakleyGroup1();
  Prng prng(11);
  for (auto _ : state) {
    kcrypto::DhKeyPair client = DhGenerate(group, prng);
    kcrypto::DhKeyPair server = DhGenerate(group, prng);
    benchmark::DoNotOptimize(
        kcrypto::DhSharedSecret(group, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_FullDhLoginHandshakeCost)->Unit(benchmark::kMillisecond);

void BM_PkLogin4Bulk(benchmark::State& state) {
  // Bulk public-key preauthenticated logins through the threaded V4 KDC
  // core over Oakley group 1 — the workload tentpole: every login is two
  // fixed-base exponentiations (client and server g^x), two shared-secret
  // windowed exponentiations, and the double-sealed AS reply, all verified
  // end to end by the harness.
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const std::string realm = "ATHENA.SIM";
  krb4::Principal alice{"alice", "", realm};
  krb4::KdcDatabase db;
  db.AddUser(alice, "quantum-Leap_77");
  Prng key_prng(0x5eed);
  db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
  static ksim::SimClock clock;
  krb4::KdcCore4 core(ksim::HostClock(&clock), realm, std::move(db), krb4::KdcOptions{});
  core.EnablePkPreauth(kcrypto::OakleyGroup1());
  kcrypto::DesKey user_key = kcrypto::StringToKey("quantum-Leap_77", alice.Salt());
  kattack::KdcHandler handler = [&core](const ksim::Message& msg, krb4::KdcContext& ctx) {
    return core.HandleAs(msg, ctx);
  };

  constexpr uint64_t kPerWorker = 16;
  uint64_t logins = 0;
  for (auto _ : state) {
    auto result = kattack::RunPkLoginLoad(handler, alice, user_key, kcrypto::OakleyGroup1(),
                                          clock.Now(), threads, kPerWorker, 0xb3 + logins);
    if (result.logins_failed != 0) {
      state.SkipWithError("PK login failed");
      return;
    }
    logins += result.logins_ok;
  }
  state.SetItemsProcessed(static_cast<int64_t>(logins));
  state.SetLabel(std::to_string(threads) + " workers, Oakley-768, verified end to end");
}
BENCHMARK(BM_PkLogin4Bulk)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
