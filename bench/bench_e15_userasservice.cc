// E15 — clients treated as services (§Password-Guessing, final paragraph).

#include "bench/bench_util.h"
#include "src/attacks/userasservice.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E15", "tickets for user principals are password-guessing grist");
  {
    kattack::UserAsServiceScenario scenario;
    auto r = kattack::RunUserAsServiceHarvest(scenario);
    kbench::ResultRow("user principals usable as services", r.password_recovered,
                      r.password_recovered
                          ? "bob's password recovered: \"" + r.recovered_password + "\""
                          : "");
  }
  {
    kattack::UserAsServiceScenario scenario;
    scenario.forbid_user_principal_tickets = true;
    auto r = kattack::RunUserAsServiceHarvest(scenario);
    kbench::ResultRow("policy refuses user-principal tickets", r.password_recovered,
                      r.ticket_issued ? "ticket still issued?!" : "no ticket, no grist");
  }
  {
    kattack::UserAsServiceScenario scenario;
    auto r = kattack::RunUserAsServiceHarvest(scenario);
    kbench::ResultRow("registered instance with a truly random key",
                      r.instance_password_recovered,
                      "ticket issued but uncrackable");
  }
  kbench::Line("  Paper: 'any such scheme would seem to require repeated re-entry of the"
               " user's password ... We would prefer ... separate instances as services,"
               " with truly random keys.'");
}

void BM_UserAsServiceHarvest(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::UserAsServiceScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunUserAsServiceHarvest(scenario));
  }
}
BENCHMARK(BM_UserAsServiceHarvest)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
