// E4 — offline password guessing from recorded login dialogs.

#include "bench/bench_util.h"
#include "src/attacks/harvest.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E4", "password guessing by eavesdropping (§Password-Guessing Attacks)");
  kattack::HarvestScenario base;
  base.population = 30;
  base.weak_fraction = 0.5;
  {
    auto r = kattack::RunEavesdropCrackV4(base);
    kbench::ResultRow("V4 AS exchange, wiretapped", r.cracked > 0,
                      std::to_string(r.cracked) + "/" + std::to_string(r.population) +
                          " cracked (" + std::to_string(r.weak_users) + " weak)");
  }
  {
    kattack::DhCrackScenario dh;
    dh.base = base;
    auto r = kattack::RunEavesdropCrackAgainstDhLogin(dh);
    kbench::ResultRow("DH login layer, Oakley-1 (768-bit)", r.cracked > 0,
                      std::to_string(r.cracked) + " cracked");
  }
  {
    kattack::DhCrackScenario dh;
    dh.base = base;
    dh.base.population = 12;
    dh.toy_group_bits = 28;
    auto r = kattack::RunEavesdropCrackAgainstDhLogin(dh);
    kbench::ResultRow("DH login layer, 28-bit toy modulus", r.cracked > 0,
                      std::to_string(r.cracked) + "/" + std::to_string(r.population) +
                          " cracked after solving dlogs");
  }
  kbench::Line("  Paper: DH prevents the passive /etc/passwd harvest — unless the modulus"
               " is small [LaMa].");
}

void BM_EavesdropCrackPerUser(benchmark::State& state) {
  kattack::HarvestScenario scenario;
  scenario.population = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunEavesdropCrackV4(scenario));
    ++scenario.seed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * scenario.population);
  state.SetLabel("items = users processed (record + crack)");
}
BENCHMARK(BM_EavesdropCrackPerUser)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
