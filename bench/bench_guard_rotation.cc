// Regression guard: rotation availability must not regress.
//
// Not a google-benchmark binary — a plain pass/fail ctest (registered as
// bench_smoke_rotation_guard) so the drain-window guarantee is checked on
// every test run, not only when someone reads bench output. Two fixed
// configurations of the B15 rotation study:
//
//   blackout: the primary KDC (and the kadmin service on the same host)
//     goes dark for the middle third of the run while keys rotate around
//     the outage. The old-ticket holder never needs the KDC again — her
//     goodput must be 100%, rotations must still land (before/after the
//     blackout), and the dark host must visibly refuse at least once.
//
//   chaos: 20% drop + 20% duplicate + 10% reorder + ~7% corruption with
//     retries. Exhaustion (failing closed) is allowed; a terminal verdict
//     against a valid old ticket, a half-applied change, or any other
//     invariant breach fails the guard.
//
// Both runs are deterministic functions of their seeds, so a failure here
// is a code regression, never flake.

#include <cstdio>

#include "src/attacks/rotation.h"

namespace {

bool Check(const char* what, bool ok) {
  std::printf("%-44s %s\n", what, ok ? "ok" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  bool pass = true;

  {
    kattack::RotationConfig config;  // mirrors RotationChaosTest.PrimaryBlackout
    config.seed = 5150;
    config.primary_blackout = true;
    config.kdc_slaves = 1;
    config.retry.max_attempts = 6;
    kattack::RotationReport r = kattack::RunRotationStudy(config);
    std::printf("[blackout] old-ticket %llu/%llu, applied %llu, refusals in dark window\n",
                (unsigned long long)r.old_ticket_successes,
                (unsigned long long)r.old_ticket_calls,
                (unsigned long long)(r.changes_applied + r.rotations_applied));
    pass &= Check("blackout: invariants hold", kattack::RotationInvariantsHold(r));
    pass &= Check("blackout: old-ticket goodput is 100%",
                  r.old_ticket_calls > 0 && r.old_ticket_successes == r.old_ticket_calls);
    pass &= Check("blackout: drain window actually used", r.old_key_accepts > 0);
    pass &= Check("blackout: changes still applied", r.changes_applied >= 1);
    pass &= Check("blackout: rotations still applied", r.rotations_applied >= 1);
  }

  {
    kattack::RotationConfig config;
    config.seed = 0x60a7;
    config.drop = 0.20;
    config.duplicate = 0.20;
    config.reorder = 0.10;
    config.corrupt = 0.066;
    config.retry.max_attempts = 8;
    kattack::RotationReport r = kattack::RunRotationStudy(config);
    std::printf("[chaos]    old-ticket %llu/%llu, admin applied %llu/%llu, ack replays %llu\n",
                (unsigned long long)r.old_ticket_successes,
                (unsigned long long)r.old_ticket_calls,
                (unsigned long long)(r.changes_applied + r.rotations_applied),
                (unsigned long long)(r.changes_attempted + r.rotations_attempted),
                (unsigned long long)r.ack_replays);
    pass &= Check("chaos: invariants hold", kattack::RotationInvariantsHold(r));
    pass &= Check("chaos: no old-ticket hard failures", r.old_ticket_hard_failures == 0);
    pass &= Check("chaos: no admin hard failures", r.admin_hard_failures == 0);
    pass &= Check("chaos: most old-ticket calls still land",
                  r.old_ticket_successes * 2 > r.old_ticket_calls);
  }

  if (!pass) {
    std::fprintf(stderr, "FAIL: rotation availability regressed\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
