// B11 — KDC serving fast path: handler-level throughput, single and parallel.
//
// Unlike B7, which times the full client round trip (client-side request
// encode + network hop + KDC + client-side reply decode), these benches
// pre-encode one valid request and hand it straight to the KdcCore5 handler,
// isolating the serving cost the PR-2 fast path optimises: sharded principal
// lookups, the per-context derived-key cache, and the allocation-free encode
// path. BM_KdcParallel{As,Tgs} then drive the same handler from a worker
// pool (one KdcContext per worker) to measure multi-threaded serving;
// the *Env variants size the pool from KERB_KDC_THREADS.
//
// Replaying one pre-encoded request is sound here: the simulation clock
// never advances during the loop (preauth timestamps stay fresh) and the
// Draft 3 TGS keeps no replay cache — itself one of the paper's points.

#include "bench/bench_util.h"
#include "src/attacks/kdcload.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/checksum.h"
#include "src/crypto/str2key.h"
#include "src/krb5/enclayer.h"

namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

void PrintExperimentReport() {
  kbench::Header("B11", "KDC serving fast path: handler-level and parallel throughput");
  kbench::Line("  BM_Kdc{AsBare,AsPreauth,Tgs} time KdcCore5 handlers on pre-encoded");
  kbench::Line("  requests (no client-side work). BM_KdcParallel* add a worker pool;");
  kbench::Line("  the Env variants honour KERB_KDC_THREADS.");
}

// A testbed plus one pre-encoded request per exchange, built once. The
// request bytes are produced exactly the way Client5 produces them.
struct KdcBenchSetup {
  explicit KdcBenchSetup(bool preauth) : bed(MakeConfig(preauth)) {
    const ksim::Time now = bed.world().MakeHostClock().Now();
    const krb5::Principal alice = bed.alice_principal();
    const kcrypto::DesKey client_key =
        kcrypto::StringToKey(Testbed5::kAlicePassword, alice.Salt());
    kcrypto::Prng prng(0x5eedb11);

    krb5::AsRequest5 as_req;
    as_req.client = alice;
    as_req.service_realm = bed.realm;
    as_req.lifetime = 4 * ksim::kHour;
    as_req.nonce = prng.NextU64();
    if (preauth) {
      kenc::TlvMessage pre(krb5::kMsgPreauth);
      pre.SetU64(krb5::tag::kNonce, as_req.nonce);
      pre.SetU64(krb5::tag::kTimestamp, static_cast<uint64_t>(now));
      as_req.padata = krb5::SealTlv(client_key, pre, krb5::EncLayerConfig{}, prng);
    }
    as_request.src = Testbed5::kAliceAddr;
    as_request.dst = Testbed5::kAsAddr;
    as_request.payload = as_req.ToTlv().Encode();
    as_request.sent_at = now;

    // One real AS exchange yields the TGT and session key for the TGS request.
    krb4::KdcContext setup_ctx(prng.Fork());
    auto as_reply = bed.kdc().core().HandleAs(as_request, setup_ctx);
    auto as_tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgAsRep, as_reply.value());
    auto rep = krb5::AsReply5::FromTlv(as_tlv.value());
    auto part_tlv = krb5::UnsealTlv(client_key, krb5::kMsgEncAsRepPart,
                                    rep.value().sealed_enc_part, krb5::EncLayerConfig{});
    auto part = krb5::EncAsRepPart5::FromTlv(part_tlv.value());
    kcrypto::DesKey tgs_session(part.value().tgs_session_key);

    krb5::TgsRequest5 tgs_req;
    tgs_req.service = bed.mail_principal();
    tgs_req.lifetime = ksim::kHour;
    tgs_req.nonce = prng.NextU64();
    tgs_req.tgt_realm = bed.realm;
    tgs_req.sealed_tgt = rep.value().sealed_tgt;
    krb5::Authenticator5 auth;
    auth.client = alice;
    auth.timestamp = now;
    auth.checksum_type = kcrypto::ChecksumType::kCrc32;
    auth.request_checksum = kcrypto::ComputeChecksum(
        kcrypto::ChecksumType::kCrc32, tgs_req.ChecksumInput(), tgs_session);
    tgs_req.sealed_authenticator =
        auth.Seal(tgs_session, krb5::EncLayerConfig{}, prng);
    tgs_request.src = Testbed5::kAliceAddr;
    tgs_request.dst = Testbed5::kTgsAddr;
    tgs_request.payload = tgs_req.ToTlv().Encode();
    tgs_request.sent_at = now;
  }

  static Testbed5Config MakeConfig(bool preauth) {
    Testbed5Config config;
    config.kdc_policy.require_preauth = preauth;
    config.client_options.use_preauth = preauth;
    return config;
  }

  Testbed5 bed;
  ksim::Message as_request;
  ksim::Message tgs_request;
};

KdcBenchSetup& BareSetup() {
  static KdcBenchSetup setup(false);
  return setup;
}

KdcBenchSetup& PreauthSetup() {
  static KdcBenchSetup setup(true);
  return setup;
}

void RunHandlerBenchmark(benchmark::State& state, KdcBenchSetup& setup,
                         const ksim::Message& request, bool tgs) {
  krb5::KdcCore5& core = setup.bed.kdc().core();
  krb4::KdcContext ctx(kcrypto::Prng(0xb11c0de));
  for (auto _ : state) {
    auto reply = tgs ? core.HandleTgs(request, ctx) : core.HandleAs(request, ctx);
    if (!reply.ok()) {
      state.SkipWithError(reply.error().detail.c_str());
      return;
    }
    benchmark::DoNotOptimize(reply.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_KdcAsBare(benchmark::State& state) {
  RunHandlerBenchmark(state, BareSetup(), BareSetup().as_request, false);
}
BENCHMARK(BM_KdcAsBare)->Unit(benchmark::kMicrosecond);

void BM_KdcAsPreauth(benchmark::State& state) {
  RunHandlerBenchmark(state, PreauthSetup(), PreauthSetup().as_request, false);
}
BENCHMARK(BM_KdcAsPreauth)->Unit(benchmark::kMicrosecond);

void BM_KdcTgs(benchmark::State& state) {
  RunHandlerBenchmark(state, BareSetup(), BareSetup().tgs_request, true);
}
BENCHMARK(BM_KdcTgs)->Unit(benchmark::kMicrosecond);

// Worker-pool variants. Each timed iteration dispatches a fixed batch per
// worker through RunKdcLoad; items/sec is computed against wall-clock time
// (UseRealTime) so the scaling curve reflects serving throughput, not
// summed CPU time. The per-worker count must dwarf the fixed thread-spawn
// cost (hundreds of µs on small boxes): at the old value of 64 the spawn
// overhead dominated and made every multi-worker point read slower than
// one worker regardless of serving cost.
constexpr uint64_t kRequestsPerWorker = 2048;

void RunParallelBenchmark(benchmark::State& state, unsigned threads, bool tgs) {
  KdcBenchSetup& setup = BareSetup();
  krb5::KdcCore5& core = setup.bed.kdc().core();
  const ksim::Message& request = tgs ? setup.tgs_request : setup.as_request;
  kattack::KdcHandler handler = [&core, tgs](const ksim::Message& msg,
                                             krb4::KdcContext& ctx) {
    return tgs ? core.HandleTgs(msg, ctx) : core.HandleAs(msg, ctx);
  };
  int64_t total = 0;
  for (auto _ : state) {
    auto result =
        kattack::RunKdcLoad(handler, request, threads, kRequestsPerWorker, 0x5eed + threads);
    if (result.requests_failed != 0) {
      state.SkipWithError("KDC rejected requests under load");
      return;
    }
    total += static_cast<int64_t>(result.requests_ok);
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(total);
}

void BM_KdcParallelAs(benchmark::State& state) {
  RunParallelBenchmark(state, static_cast<unsigned>(state.range(0)), false);
}
BENCHMARK(BM_KdcParallelAs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_KdcParallelTgs(benchmark::State& state) {
  RunParallelBenchmark(state, static_cast<unsigned>(state.range(0)), true);
}
BENCHMARK(BM_KdcParallelTgs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batched dispatch variants (PR-6). Each worker drains its queue in
// dispatches of up to KERB_KDC_BATCH requests through HandleAsBatch /
// HandleTgsBatch — decode the dispatch, warm the key cache with one
// LookupMany pass per shard, then serve in order. The per-worker request
// count is larger than the sequential variant's so the fixed thread-spawn
// cost (~hundreds of µs on this box) amortises below the noise floor and
// the curve reflects serving throughput.
constexpr uint64_t kBatchedRequestsPerWorker = 2048;

void RunBatchedBenchmark(benchmark::State& state, unsigned threads, bool tgs) {
  KdcBenchSetup& setup = BareSetup();
  krb5::KdcCore5& core = setup.bed.kdc().core();
  const ksim::Message& request = tgs ? setup.tgs_request : setup.as_request;
  kattack::KdcBatchHandler handler =
      [&core, tgs](const ksim::Message* msgs, size_t n, krb4::KdcContext& ctx,
                   std::vector<kerb::Result<kerb::Bytes>>& replies) {
        if (tgs) {
          core.HandleTgsBatch(msgs, n, ctx, replies);
        } else {
          core.HandleAsBatch(msgs, n, ctx, replies);
        }
      };
  int64_t total = 0;
  for (auto _ : state) {
    auto result = kattack::RunKdcLoadBatched(handler, request, threads,
                                             kBatchedRequestsPerWorker, 0x5eed + threads);
    if (result.requests_failed != 0) {
      state.SkipWithError("KDC rejected requests under load");
      return;
    }
    total += static_cast<int64_t>(result.requests_ok);
  }
  state.counters["threads"] = threads;
  state.counters["batch"] = static_cast<double>(kattack::KdcBatchSize());
  state.SetItemsProcessed(total);
}

void BM_KdcParallelAsBatched(benchmark::State& state) {
  RunBatchedBenchmark(state, static_cast<unsigned>(state.range(0)), false);
}
BENCHMARK(BM_KdcParallelAsBatched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_KdcParallelTgsBatched(benchmark::State& state) {
  RunBatchedBenchmark(state, static_cast<unsigned>(state.range(0)), true);
}
BENCHMARK(BM_KdcParallelTgsBatched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_KdcParallelAsEnv(benchmark::State& state) {
  RunParallelBenchmark(state, kattack::KdcWorkerThreads(), false);
}
BENCHMARK(BM_KdcParallelAsEnv)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_KdcParallelTgsEnv(benchmark::State& state) {
  RunParallelBenchmark(state, kattack::KdcWorkerThreads(), true);
}
BENCHMARK(BM_KdcParallelTgsEnv)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
