// B16 — clustered KDC scale-out: consistent-hash sharding, referral
// routing, and a million-principal realm.
//
// The paper sizes Athena at thousands of principals and one master KDC
// with read-only slaves; this table asks what the same protocol stack does
// when the realm grows three orders of magnitude and the database is
// SHARDED across serving nodes instead of mirrored. Reported per node
// count: virtual aggregate throughput (ok operations over the busiest
// node's charged service time — the cluster's critical path), speedup over
// one node, latency percentiles from the kobs kClusterOp histogram, and
// the cold-client referral rate. Plus zipf-vs-uniform skew sensitivity and
// goodput through a blackout + crash chaos run.
//
// Population defaults to 20k users so smoke runs stay cheap; set
// KERB_CLUSTER_POP=1000000 for the full million-principal realm (the
// numbers in BENCH_PR10.json are recorded that way by bench_baseline.py).

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/obs/kobs.h"
#include "src/sim/faults.h"
#include "src/sim/world.h"

namespace {

size_t PopulationSize() {
  if (const char* env = std::getenv("KERB_CLUSTER_POP")) {
    const long v = std::atol(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 20000;
}

std::vector<kcluster::RingMember> MakeMembers(size_t n) {
  std::vector<kcluster::RingMember> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back({i + 1, 0x0a000010u + static_cast<uint32_t>(i)});
  }
  return members;
}

struct LoadResult {
  kcluster::ClusterLoadReport report;
  double p50_us = 0;
  double p99_us = 0;
};

// Percentile estimate from the power-of-two latency histogram: the upper
// bound of the bucket where the cumulative count crosses the rank.
double HistPercentile(const std::vector<uint64_t>& hist, double pct) {
  uint64_t total = 0;
  for (uint64_t b : hist) {
    total += b;
  }
  if (total == 0) {
    return 0;
  }
  const uint64_t rank = static_cast<uint64_t>(pct / 100.0 * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    seen += hist[i];
    if (seen > rank) {
      return i == 0 ? 0 : static_cast<double>(1ull << i);
    }
  }
  return static_cast<double>(1ull << (hist.size() - 1));
}

LoadResult RunLoad(size_t node_count, size_t population_size, size_t ops, bool zipf,
                   uint32_t login_mix_1024) {
  kobs::ScopedTrace trace;
  ksim::World world(0xb16 + node_count);
  kcluster::PopulationConfig pc;
  pc.users = population_size;
  pc.services = 32;
  kcluster::Population population(pc);
  kcluster::ClusterConfig cc;
  kcluster::ClusterController controller(&world, cc);
  population.Install(controller.logical_db());
  controller.Bootstrap(MakeMembers(node_count));

  kcluster::ClusterLoadConfig lc;
  lc.ops = ops;
  lc.zipf = zipf;
  lc.login_mix_1024 = login_mix_1024;
  LoadResult result;
  result.report = RunClusterLoad(world, controller, population, lc);
  const std::vector<uint64_t> hist = trace->HistogramA(kobs::Ev::kClusterOp);
  result.p50_us = HistPercentile(hist, 50);
  result.p99_us = HistPercentile(hist, 99);
  return result;
}

void PrintExperimentReport() {
  kbench::Header("B16", "clustered KDC scale-out: sharding, referrals, recovery");
  const size_t pop = PopulationSize();
  const size_t ops = pop >= 500000 ? 4000 : 1200;
  kbench::Line("  realm: " + std::to_string(pop) + " user principals, 32 services");
  kbench::Line("  (set KERB_CLUSTER_POP=1000000 for the full realm)");
  kbench::Line("");
  kbench::Line("  nodes   agg ops/s   speedup   p50(us)   p99(us)   cold-referral");
  double base_ops_per_sec = 0;
  for (size_t nodes : {1u, 2u, 4u, 8u}) {
    const LoadResult r = RunLoad(nodes, pop, ops, /*zipf=*/true, /*mix=*/512);
    if (nodes == 1) {
      base_ops_per_sec = r.report.aggregate_ops_per_sec;
    }
    const double speedup =
        base_ops_per_sec > 0 ? r.report.aggregate_ops_per_sec / base_ops_per_sec : 0;
    char row[160];
    std::snprintf(row, sizeof(row), "  %5zu   %9.0f   %6.2fx   %7.0f   %7.0f   %8.4f",
                  nodes, r.report.aggregate_ops_per_sec, speedup, r.p50_us, r.p99_us,
                  r.report.cold_referral_rate);
    kbench::Line(row);
    const std::string prefix = "cluster_" + std::to_string(nodes) + "node_";
    kbench::GlobalJson().AddMetric(prefix + "agg_ops_per_sec",
                                   r.report.aggregate_ops_per_sec);
    kbench::GlobalJson().AddMetric(prefix + "p50_us", r.p50_us);
    kbench::GlobalJson().AddMetric(prefix + "p99_us", r.p99_us);
    kbench::GlobalJson().AddMetric(prefix + "speedup", speedup);
    kbench::GlobalJson().AddMetric(prefix + "cold_referral_rate",
                                   r.report.cold_referral_rate);
  }

  kbench::Line("");
  kbench::Line("  traffic skew at 4 nodes (aggregate ops/s):");
  const LoadResult uniform = RunLoad(4, pop, ops, /*zipf=*/false, 512);
  const LoadResult zipf = RunLoad(4, pop, ops, /*zipf=*/true, 512);
  char skew[160];
  std::snprintf(skew, sizeof(skew), "    uniform %9.0f    zipf(s=1) %9.0f",
                uniform.report.aggregate_ops_per_sec,
                zipf.report.aggregate_ops_per_sec);
  kbench::Line(skew);
  kbench::GlobalJson().AddMetric("cluster_4node_uniform_agg_ops_per_sec",
                                 uniform.report.aggregate_ops_per_sec);
  kbench::GlobalJson().AddMetric("cluster_4node_zipf_agg_ops_per_sec",
                                 zipf.report.aggregate_ops_per_sec);

  // Goodput through the chaos scenario: a faulty network, a blackout
  // mid-traffic, a device crash + recovery, rebalances under load.
  ksim::FaultPlan plan;
  plan.link.drop_request = 0.03;
  plan.link.drop_reply = 0.03;
  plan.link.duplicate_request = 0.04;
  plan.link.corrupt_request = 0.02;
  plan.link.corrupt_reply = 0.02;
  plan.link.delay = 2 * ksim::kMillisecond;
  plan.link.delay_jitter = 3 * ksim::kMillisecond;
  ksim::World world(0xb16c4a05, plan);
  kcluster::PopulationConfig pc;
  pc.users = pop >= 500000 ? 100000 : pop;  // chaos phase needn't be huge
  pc.services = 16;
  kcluster::Population population(pc);
  kcluster::ClusterConfig cc;
  kcluster::ClusterController controller(&world, cc);
  population.Install(controller.logical_db());
  controller.Bootstrap(MakeMembers(4));
  kcluster::ClusterChaosConfig chaos;
  chaos.ops_per_phase = 150;
  const kcluster::ClusterChaosReport cr =
      RunClusterChaos(world, controller, population, chaos);
  const double goodput_pct =
      cr.attempted ? 100.0 * static_cast<double>(cr.ok) / static_cast<double>(cr.attempted)
                   : 0;
  kbench::Line("");
  char chaos_row[200];
  std::snprintf(chaos_row, sizeof(chaos_row),
                "  chaos goodput: %llu/%llu ops (%.1f%%), epoch %u, "
                "double-issues %llu, slices %s",
                (unsigned long long)cr.ok, (unsigned long long)cr.attempted, goodput_pct,
                cr.final_epoch, (unsigned long long)cr.double_issues,
                cr.slices_consistent ? "consistent" : "INCONSISTENT");
  kbench::Line(chaos_row);
  kbench::GlobalJson().AddMetric("cluster_chaos_goodput_pct", goodput_pct);
  kbench::ResultRow("cluster double-issue under blackout chaos",
                    cr.double_issues != 0 || !cr.slices_consistent ||
                        cr.internal_errors != 0,
                    "fail-closed: " + std::to_string(cr.failed_closed) + "/" +
                        std::to_string(cr.attempted) + " clean errors");
}

void BM_ClusterLoad(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  uint64_t ok = 0;
  double agg = 0;
  for (auto _ : state) {
    const LoadResult r = RunLoad(nodes, 5000, 300, /*zipf=*/true, 512);
    if (r.report.ok != r.report.attempted) {
      state.SkipWithError("faultless cluster load failed requests");
      return;
    }
    ok += r.report.ok;
    agg = r.report.aggregate_ops_per_sec;
  }
  state.counters["agg_ops_per_sec"] = agg;
  state.SetItemsProcessed(static_cast<int64_t>(ok));
}
BENCHMARK(BM_ClusterLoad)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ClusterRebalance(benchmark::State& state) {
  // Cost of one node-loss rebalance (detection + range moves + resync) at
  // 5k principals across 4 nodes, in wall time of the simulation.
  for (auto _ : state) {
    state.PauseTiming();
    ksim::World world(0xeba1 + state.iterations());
    kcluster::PopulationConfig pc;
    pc.users = 5000;
    pc.services = 16;
    kcluster::Population population(pc);
    kcluster::ClusterConfig cc;
    kcluster::ClusterController controller(&world, cc);
    population.Install(controller.logical_db());
    controller.Bootstrap(MakeMembers(4));
    controller.node(2)->Crash();
    state.ResumeTiming();
    if (!controller.ProbeAll() || !controller.AllSlicesConsistent()) {
      state.SkipWithError("rebalance failed");
      return;
    }
  }
}
BENCHMARK(BM_ClusterRebalance)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
