// E6 — login spoofing vs. the handheld-authenticator scheme.

#include "bench/bench_util.h"
#include "src/attacks/loginspoof.h"
#include "src/hsm/keystore.h"
#include "src/crypto/prng.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E6", "trojaned login (§Spoofing Login, recommendation c)");
  {
    auto r = kattack::RunLoginSpoofAgainstPassword();
    kbench::ResultRow("typed password, replayed next day", r.later_reuse_succeeded,
                      "captured: \"" + r.captured_input + "\"");
  }
  {
    auto r = kattack::RunLoginSpoofAgainstHandheld();
    kbench::ResultRow("handheld {R}Kc response, replayed next day", r.later_reuse_succeeded,
                      "captured one-time value " + r.captured_input);
  }
  kbench::Line("  Paper: 'the cost of our scheme is quite low, simply one extra"
               " encryption on each end.'");
}

void BM_HandheldDeviceResponse(benchmark::State& state) {
  // "one extra encryption on each end" — here it is.
  kcrypto::Prng prng(1);
  khsm::HandheldAuthenticator device(prng.NextDesKey());
  uint64_t challenge = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.Respond(challenge++));
  }
}
BENCHMARK(BM_HandheldDeviceResponse);

void BM_PasswordLoginSpoofEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunLoginSpoofAgainstPassword(seed++));
  }
}
BENCHMARK(BM_PasswordLoginSpoofEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_HandheldLoginSpoofEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunLoginSpoofAgainstHandheld(seed++));
  }
}
BENCHMARK(BM_HandheldLoginSpoofEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
