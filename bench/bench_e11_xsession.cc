// E11 — cross-session replay under multi-session keys vs true session keys
// and sequence numbers (§Exposure of Session Keys; Appendix KRB_SAFE/PRIV).

#include "bench/bench_util.h"
#include "src/krb5/safepriv.h"
#include "src/sim/world.h"

namespace {

krb5::ChannelConfig Config(krb5::ReplayProtection protection) {
  krb5::ChannelConfig config;
  config.protection = protection;
  return config;
}

void PrintExperimentReport() {
  kbench::Header("E11", "cross-session message replay under a shared multi-session key");
  ksim::World world(1);
  ksim::HostClock clock = world.MakeHostClock(0);
  kcrypto::Prng prng(2);
  kcrypto::DesKey multi = kcrypto::Prng(3).NextDesKey();

  {
    // Two concurrent sessions, one multi-session key, separate caches.
    krb5::SecureChannel s1_sender(multi, &clock, Config(krb5::ReplayProtection::kTimestamp));
    krb5::SecureChannel s1_recv(multi, &clock, Config(krb5::ReplayProtection::kTimestamp));
    krb5::SecureChannel s2_recv(multi, &clock, Config(krb5::ReplayProtection::kTimestamp));
    kerb::Bytes msg = s1_sender.SealMessage(kerb::ToBytes("delete draft"), prng);
    (void)s1_recv.OpenMessage(msg);
    bool crossed = s2_recv.OpenMessage(msg).ok();
    kbench::ResultRow("timestamps, shared multi-session key, split caches", crossed,
                      "'messages from one session can be replayed into the other'");
  }
  {
    // Negotiated true session keys (recommendation e).
    kcrypto::DesKey k1 = prng.NextDesKey();
    kcrypto::DesKey k2 = prng.NextDesKey();
    krb5::SecureChannel s1_sender(k1, &clock, Config(krb5::ReplayProtection::kTimestamp));
    krb5::SecureChannel s2_recv(k2, &clock, Config(krb5::ReplayProtection::kTimestamp));
    kerb::Bytes msg = s1_sender.SealMessage(kerb::ToBytes("delete draft"), prng);
    kbench::ResultRow("negotiated true session keys", s2_recv.OpenMessage(msg).ok());
  }
  {
    // Sequence numbers with per-session random initials.
    krb5::SecureChannel s1_sender(multi, &clock, Config(krb5::ReplayProtection::kSequence),
                                  1000);
    krb5::SecureChannel s2_recv(multi, &clock, Config(krb5::ReplayProtection::kSequence),
                                777000);
    kerb::Bytes msg = s1_sender.SealMessage(kerb::ToBytes("delete draft"), prng);
    kbench::ResultRow("sequence numbers, random initials", s2_recv.OpenMessage(msg).ok());
  }
  kbench::Line("  Paper: 'it would not be possible for an attacker to perform"
               " cross-stream replays.'");
}

void BM_ChannelSealOpen(benchmark::State& state) {
  ksim::World world(1);
  ksim::HostClock clock = world.MakeHostClock(0);
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = kcrypto::Prng(3).NextDesKey();
  auto protection = state.range(0) == 0 ? krb5::ReplayProtection::kTimestamp
                                        : krb5::ReplayProtection::kSequence;
  krb5::SecureChannel sender(key, &clock, Config(protection), 5);
  krb5::SecureChannel receiver(key, &clock, Config(protection), 5);
  kerb::Bytes payload = prng.NextBytes(256);
  for (auto _ : state) {
    auto r = receiver.OpenMessage(sender.SealMessage(payload, prng));
    benchmark::DoNotOptimize(r);
    world.clock().Advance(ksim::kMillisecond);
  }
  state.SetLabel(state.range(0) == 0 ? "timestamps" : "sequence numbers");
}
BENCHMARK(BM_ChannelSealOpen)->Arg(0)->Arg(1);

}  // namespace

KERB_BENCH_MAIN()
