// E14 — encryption unit / keystore leak sweep (§Kerberos Hardware Design
// Criteria).

#include "bench/bench_util.h"
#include "src/attacks/hsmleak.h"
#include "src/hsm/encryption_unit.h"
#include "src/crypto/prng.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E14", "key exposure: encryption unit vs software cache");
  auto r = kattack::RunEncryptionUnitLeakSweep(1312, 500);
  kbench::ResultRow("extract key octets from the encryption unit", r.key_octet_leaks > 0,
                    std::to_string(r.operations_attempted) + " ops, " +
                        std::to_string(r.outputs_scanned) + " outputs scanned, " +
                        std::to_string(r.keys_in_unit) + " keys inside");
  kbench::ResultRow("abuse keys across purposes (tag checks)",
                    r.usage_violations_blocked == 0,
                    std::to_string(r.usage_violations_blocked) + " misuse attempts blocked");
  kbench::ResultRow("read keys from the plain client's cache", r.software_cache_leaks,
                    "host compromise == key compromise without the unit");
  kbench::Line("  Paper: 'the box need not have the ability to transmit a key, thereby"
               " providing us with a very high level of assurance that it will not"
               " do so.'");
}

void BM_UnitSealData(benchmark::State& state) {
  khsm::EncryptionUnit unit(1);
  khsm::KeyHandle session = unit.GenerateKey(khsm::KeyUsage::kSessionKey);
  kcrypto::Prng prng(2);
  kerb::Bytes data = prng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.SealData(session, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_UnitSealData)->Arg(64)->Arg(1024);

void BM_LeakSweepEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunEncryptionUnitLeakSweep(seed++, 100));
  }
}
BENCHMARK(BM_LeakSweepEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
