// E13 — cascading trust and transit-realm compromise.

#include "bench/bench_util.h"
#include "src/attacks/interrealm.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E13", "inter-realm cascading trust (§Scope of Tickets; Appendix)");
  auto eng = kattack::RunTransitRealmForgery("ENG.CORP");
  std::printf("  baseline: honest ENG.CORP access %s, transited path %s\n",
              eng.honest_access_ok ? "works" : "FAILED", eng.honest_transited.c_str());
  kbench::ResultRow("compromised CORP forges ceo@ENG.CORP", eng.forged_access_ok,
                    "laundered path " + eng.forged_transited + " (identical)");
  auto corp = kattack::RunTransitRealmForgery("CORP");
  kbench::ResultRow("compromised CORP forges ceo@CORP", corp.forged_access_ok,
                    "path " + corp.forged_transited);
  kbench::ResultRow("forgery under a distrust-CORP policy", !eng.strict_policy_blocks_forgery);
  std::printf("  ...but the same policy also kills honest traffic: %s\n",
              eng.strict_policy_blocks_honest ? "yes" : "no");
  kbench::Line("  Paper: 'a server needs global knowledge of the trustworthiness of all"
               " possible transit realms. In a large internet, such knowledge is probably"
               " not possible.'");
}

void BM_CrossRealmTicketAcquisition(benchmark::State& state) {
  // The legitimate multi-hop walk: AS + two TGS hops + target TGS.
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunTransitRealmForgery("ENG.CORP", seed++));
  }
}
BENCHMARK(BM_CrossRealmTicketAcquisition)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
