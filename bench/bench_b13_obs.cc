// B13 — observability overhead: the kobs layer off, on, and under chaos.
//
// The contract is "zero-overhead when disabled": with no trace installed,
// every instrumented site costs one relaxed-ish atomic load and a predicted
// branch. BM_KdcAsObsOff / BM_KdcAsObsOn time the same handler-level AS
// exchange as B11 with tracing off and on; bench_baseline.py records both
// and the derived overhead percentage into BENCH_PR4.json (acceptance: the
// disabled path within 3% of the PR-2/PR-3 baseline, the enabled path
// whatever it honestly costs). BM_TracedChaos4 shows the layer earning its
// keep: one traced chaos study per iteration, with the trace's counters
// exported as benchmark counters.

#include "bench/bench_util.h"
#include "src/attacks/chaos.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/str2key.h"
#include "src/obs/kobs.h"

namespace {

using kattack::Testbed5;

void PrintExperimentReport() {
  kbench::Header("B13", "kobs tracing overhead: disabled, enabled, and under chaos");
  kbench::Line("  BM_EmitDisabled times the uninstalled fast path (one atomic load).");
  kbench::Line("  BM_KdcAsObs{Off,On} repeat B11's handler-level AS exchange with");
  kbench::Line("  tracing absent vs installed; the delta is the full tracing cost.");
}

void BM_EmitDisabled(benchmark::State& state) {
  if (kobs::Enabled()) {
    state.SkipWithError("a trace is unexpectedly installed");
    return;
  }
  int64_t t = 0;
  for (auto _ : state) {
    kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, t, static_cast<uint64_t>(t), 0);
    benchmark::DoNotOptimize(t++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EmitDisabled);

// Testbed plus one pre-encoded AS request, built once (same shape as B11's
// bare setup; duplicated here so B13 stays self-contained).
struct ObsBenchSetup {
  ObsBenchSetup() {
    kcrypto::Prng prng(0x5eedb13);
    krb5::AsRequest5 as_req;
    as_req.client = bed.alice_principal();
    as_req.service_realm = bed.realm;
    as_req.lifetime = 4 * ksim::kHour;
    as_req.nonce = prng.NextU64();
    as_request.src = Testbed5::kAliceAddr;
    as_request.dst = Testbed5::kAsAddr;
    as_request.payload = as_req.ToTlv().Encode();
    as_request.sent_at = bed.world().MakeHostClock().Now();
  }

  Testbed5 bed;
  ksim::Message as_request;
};

ObsBenchSetup& Setup() {
  static ObsBenchSetup setup;
  return setup;
}

void RunAsBenchmark(benchmark::State& state, bool traced) {
  ObsBenchSetup& setup = Setup();
  krb5::KdcCore5& core = setup.bed.kdc().core();
  krb4::KdcContext ctx(kcrypto::Prng(0xb13c0de));
  kobs::Trace trace;
  if (traced) {
    trace.Install();
  }
  uint64_t since_clear = 0;
  for (auto _ : state) {
    auto reply = core.HandleAs(setup.as_request, ctx);
    if (!reply.ok()) {
      if (traced) {
        trace.Uninstall();
      }
      state.SkipWithError(reply.error().detail.c_str());
      return;
    }
    benchmark::DoNotOptimize(reply.value().data());
    // Bound trace memory: the events themselves are the cost being measured,
    // unbounded growth is not.
    if (traced && ++since_clear == 1024) {
      trace.Clear();
      since_clear = 0;
    }
  }
  if (traced) {
    trace.Uninstall();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_KdcAsObsOff(benchmark::State& state) { RunAsBenchmark(state, false); }
BENCHMARK(BM_KdcAsObsOff)->Unit(benchmark::kMicrosecond);

void BM_KdcAsObsOn(benchmark::State& state) { RunAsBenchmark(state, true); }
BENCHMARK(BM_KdcAsObsOn)->Unit(benchmark::kMicrosecond);

void BM_TracedChaos4(benchmark::State& state) {
  kattack::ChaosConfig config;
  config.exchanges = 20;
  config.drop = 0.05;
  config.duplicate = 0.05;
  uint64_t events = 0, issues = 0, drops = 0, seal_bytes = 0, runs = 0;
  for (auto _ : state) {
    kobs::ScopedTrace trace;
    kattack::ChaosReport report = kattack::RunChaosStudy4(config);
    benchmark::DoNotOptimize(report.succeeded);
    events += trace->events().size();
    issues += trace->Count(kobs::Ev::kKdcIssue);
    drops += trace->Count(kobs::Ev::kNetDropRequest) + trace->Count(kobs::Ev::kNetDropReply) +
             trace->Count(kobs::Ev::kNetDatagramDrop);
    seal_bytes += trace->SumA(kobs::Ev::kSeal);
    ++runs;
  }
  state.counters["trace_events"] = static_cast<double>(events) / runs;
  state.counters["kdc_issues"] = static_cast<double>(issues) / runs;
  state.counters["net_drops"] = static_cast<double>(drops) / runs;
  state.counters["seal_bytes"] = static_cast<double>(seal_bytes) / runs;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * config.exchanges);
}
BENCHMARK(BM_TracedChaos4)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
