// B15 — the admin plane: protected password-change cost and rotation
// availability under chaos.
//
// Two quantitative questions about the PR-8 kadmin subsystem:
//
//   * What does one protected password change cost? The full sealed
//     round-trip — admin ticket, fresh authenticator, checksummed body,
//     sealed verdict — measured handler-to-handler on a clean simulated
//     network (BM_AdminChangePassword), with the read-only kvno query as
//     the floor (BM_AdminGetKvno).
//   * How much availability does live rotation cost the realm? The B15
//     rotation study (src/attacks/rotation.h) rotates service keys and
//     changes passwords WHILE serving traffic through a faulty network;
//     BM_RotationStudy sweeps the fault rate and exports old-ticket
//     goodput — the drain-window guarantee bench_baseline.py records.

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/admin/kadmin.h"
#include "src/attacks/rotation.h"
#include "src/attacks/testbed.h"

namespace {

using kattack::Testbed4;

struct AdminBench {
  AdminBench()
      : bed([] {
          kattack::TestbedConfig config;
          config.enable_kadmin = true;
          return config;
        }()) {
    oper = bed.MakeClient(bed.oper_principal(), Testbed4::kOperAddr);
    if (!oper->Login(Testbed4::kOperPassword).ok()) {
      std::abort();
    }
    admin = bed.MakeAdminClient(*oper);
  }

  Testbed4 bed;
  std::unique_ptr<krb4::Client4> oper;
  std::unique_ptr<kadmin::AdminClient> admin;
};

void PrintExperimentReport() {
  kbench::Header("B15", "admin plane under chaos: rotation with live traffic");
  kbench::Line("  Rotations and password changes run mid-sweep while an old-ticket");
  kbench::Line("  holder keeps calling the rotated service. Hard failures (a terminal");
  kbench::Line("  verdict against a valid old ticket, or a half-applied change) must");
  kbench::Line("  stay zero at every fault rate; corruption-rate payload hits are the");
  kbench::Line("  paper's plaintext-payload gap, counted separately.");
  kbench::Line("");
  kbench::Line("  rate   old-ticket ok   admin applied   drain unseals   hard   payload");
  kattack::RotationConfig config;
  config.retry.max_attempts = 8;
  for (double rate : {0.0, 0.10, 0.20, 0.30}) {
    config.drop = config.duplicate = rate;
    config.reorder = rate / 2;
    config.corrupt = rate / 3;
    kattack::RotationReport r = kattack::RunRotationStudy(config);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "  %3.0f%%      %2llu/%llu           %llu/%llu            %4llu        %llu       %llu",
                  rate * 100, (unsigned long long)r.old_ticket_successes,
                  (unsigned long long)r.old_ticket_calls,
                  (unsigned long long)(r.changes_applied + r.rotations_applied),
                  (unsigned long long)(r.changes_attempted + r.rotations_attempted),
                  (unsigned long long)r.old_key_accepts,
                  (unsigned long long)(r.old_ticket_hard_failures + r.fresh_hard_failures +
                                       r.admin_hard_failures),
                  (unsigned long long)r.payload_corruptions);
    kbench::Line(row);
  }
}

// One protected password change: ticket + authenticator + checksummed body
// out, sealed verdict back, key ring rotated under the target.
void BM_AdminChangePassword(benchmark::State& state) {
  AdminBench b;
  const krb4::Principal bob = b.bed.bob_principal();
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string pw = "Bench_Pw_" + std::to_string(i++) + "!";
    auto ack = b.admin->ChangePassword(bob, pw);
    if (!ack.ok()) {
      state.SkipWithError("password change denied");
      return;
    }
    benchmark::DoNotOptimize(ack.value().kvno);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_AdminChangePassword);

// The read-only floor: same sealed protocol, no database mutation.
void BM_AdminGetKvno(benchmark::State& state) {
  AdminBench b;
  const krb4::Principal bob = b.bed.bob_principal();
  uint64_t n = 0;
  for (auto _ : state) {
    auto ack = b.admin->GetKvno(bob);
    if (!ack.ok()) {
      state.SkipWithError("kvno query denied");
      return;
    }
    benchmark::DoNotOptimize(ack.value().kvno);
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_AdminGetKvno);

// The full rotation study at one fault rate; exports old-ticket goodput
// (the drain-window availability number) and the admin-plane apply rate.
void BM_RotationStudy(benchmark::State& state) {
  kattack::RotationConfig config;
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  config.drop = config.duplicate = rate;
  config.reorder = rate / 2;
  config.corrupt = rate / 3;
  config.retry.max_attempts = 8;

  uint64_t old_ok = 0;
  uint64_t old_calls = 0;
  uint64_t applied = 0;
  uint64_t attempted = 0;
  for (auto _ : state) {
    config.seed = 0xb15c0de + state.iterations();  // fresh schedule per run
    kattack::RotationReport report = kattack::RunRotationStudy(config);
    if (!kattack::RotationInvariantsHold(report)) {
      state.SkipWithError("rotation invariant violated");
      return;
    }
    old_ok += report.old_ticket_successes;
    old_calls += report.old_ticket_calls;
    applied += report.changes_applied + report.rotations_applied;
    attempted += report.changes_attempted + report.rotations_attempted;
  }
  state.counters["fault_pct"] = static_cast<double>(state.range(0));
  state.counters["old_ticket_goodput_pct"] =
      old_calls ? 100.0 * static_cast<double>(old_ok) / static_cast<double>(old_calls) : 0.0;
  state.counters["admin_applied_pct"] =
      attempted ? 100.0 * static_cast<double>(applied) / static_cast<double>(attempted) : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(old_ok));
}
BENCHMARK(BM_RotationStudy)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN();
