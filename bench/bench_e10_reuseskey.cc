// E10 — REUSE-SKEY shared-key ticket redirection.

#include "bench/bench_util.h"
#include "src/attacks/reuseskey.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E10", "REUSE-SKEY redirection (Appendix)");
  {
    kattack::ReuseSkeyScenario scenario;
    auto r = kattack::RunReuseSkeyRedirection(scenario);
    kbench::ResultRow("shared-key tickets, no name binding", r.splice_accepted,
                      r.backup_action);
  }
  {
    kattack::ReuseSkeyScenario scenario;
    scenario.service_name_binding = true;
    auto r = kattack::RunReuseSkeyRedirection(scenario);
    kbench::ResultRow("service name sealed in the authenticator", r.splice_accepted);
  }
  kbench::Line("  Paper: 'an attacker might redirect some requests to destroy archival"
               " copies of files being edited.'");
}

void BM_ReuseSkeyRedirectionEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::ReuseSkeyScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunReuseSkeyRedirection(scenario));
  }
}
BENCHMARK(BM_ReuseSkeyRedirectionEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
