// Shared scaffolding for the experiment benches: each binary prints its
// experiment table (the qualitative reproduction) and then runs
// google-benchmark timings (the quantitative side).
//
// Machine-readable output: every ResultRow is also recorded in a process-
// global JSON emitter. When the KERB_BENCH_JSON environment variable names a
// file, the emitter writes `{"outcomes": [...], "metrics": {...}}` there on
// exit from KERB_BENCH_MAIN — this is what bench/bench_baseline.py and the
// BENCH_*.json perf-trajectory files build on. Benches can add their own
// scalar metrics with kbench::GlobalJson().AddMetric(...).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/kobs.h"

namespace kbench {

// When the KERB_TRACE environment variable names a file, installs a kobs
// trace for its lifetime and writes the ndjson dump (events, counters,
// histograms, digest trailer) there on destruction. KERB_BENCH_MAIN wraps
// the experiment report in one of these, so
//
//     KERB_TRACE=/tmp/e01.ndjson bench_e01_replay --benchmark_filter=ZZZNOMATCH
//
// dumps the experiment's full trace without touching the timed loops.
class EnvTrace {
 public:
  EnvTrace() {
    const char* path = std::getenv("KERB_TRACE");
    if (path != nullptr && path[0] != '\0') {
      path_ = path;
      trace_.Install();
    }
  }
  ~EnvTrace() {
    if (!path_.empty()) {
      trace_.Uninstall();
      if (!trace_.WriteNdjsonFile(path_)) {
        std::fprintf(stderr, "failed to write KERB_TRACE ndjson to %s\n", path_.c_str());
      }
    }
  }
  EnvTrace(const EnvTrace&) = delete;
  EnvTrace& operator=(const EnvTrace&) = delete;

 private:
  kobs::Trace trace_;
  std::string path_;
};

// Minimal JSON document writer: experiment outcomes plus named scalar
// metrics. No dependencies, deliberately append-only.
class JsonEmitter {
 public:
  void AddOutcome(const std::string& configuration, bool attack_succeeded,
                  const std::string& note) {
    outcomes_.push_back({configuration, attack_succeeded, note});
  }

  void AddMetric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  bool empty() const { return outcomes_.empty() && metrics_.empty(); }

  std::string ToJson() const {
    std::string out = "{\n  \"outcomes\": [";
    for (size_t i = 0; i < outcomes_.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += "    {\"configuration\": " + Quote(outcomes_[i].configuration) +
             ", \"attack_succeeded\": " + (outcomes_[i].attack_succeeded ? "true" : "false") +
             ", \"note\": " + Quote(outcomes_[i].note) + "}";
    }
    out += outcomes_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      char value[64];
      std::snprintf(value, sizeof(value), "%.17g", metrics_[i].second);
      out += "    " + Quote(metrics_[i].first) + ": " + value;
    }
    out += metrics_.empty() ? "}\n}\n" : "\n  }\n}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::string doc = ToJson();
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  struct Outcome {
    std::string configuration;
    bool attack_succeeded;
    std::string note;
  };

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::vector<Outcome> outcomes_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline JsonEmitter& GlobalJson() {
  static JsonEmitter emitter;
  return emitter;
}

inline void Header(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("================================================================\n");
}

inline void Line(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void ResultRow(const std::string& configuration, bool attack_succeeded,
                      const std::string& note = "") {
  std::printf("  %-44s %-8s %s\n", configuration.c_str(),
              attack_succeeded ? "SUCCESS" : "blocked", note.c_str());
  GlobalJson().AddOutcome(configuration, attack_succeeded, note);
}

inline void MaybeWriteJson() {
  const char* path = std::getenv("KERB_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') {
    if (!GlobalJson().WriteTo(path)) {
      std::fprintf(stderr, "failed to write KERB_BENCH_JSON to %s\n", path);
    }
  }
}

}  // namespace kbench

// Each bench defines `void PrintExperimentReport();` and registers regular
// BENCHMARK()s, then instantiates this main.
#define KERB_BENCH_MAIN()                                       \
  int main(int argc, char** argv) {                             \
    {                                                           \
      ::kbench::EnvTrace env_trace;                             \
      PrintExperimentReport();                                  \
    }                                                           \
    ::benchmark::Initialize(&argc, argv);                       \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                 \
    }                                                           \
    ::benchmark::RunSpecifiedBenchmarks();                      \
    ::benchmark::Shutdown();                                    \
    ::kbench::MaybeWriteJson();                                 \
    return 0;                                                   \
  }

#endif  // BENCH_BENCH_UTIL_H_
