// Shared scaffolding for the experiment benches: each binary prints its
// experiment table (the qualitative reproduction) and then runs
// google-benchmark timings (the quantitative side).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace kbench {

inline void Header(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("================================================================\n");
}

inline void Line(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void ResultRow(const std::string& configuration, bool attack_succeeded,
                      const std::string& note = "") {
  std::printf("  %-44s %-8s %s\n", configuration.c_str(),
              attack_succeeded ? "SUCCESS" : "blocked", note.c_str());
}

}  // namespace kbench

// Each bench defines `void PrintExperimentReport();` and registers regular
// BENCHMARK()s, then instantiates this main.
#define KERB_BENCH_MAIN()                                       \
  int main(int argc, char** argv) {                             \
    PrintExperimentReport();                                    \
    ::benchmark::Initialize(&argc, argv);                       \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                 \
    }                                                           \
    ::benchmark::RunSpecifiedBenchmarks();                      \
    ::benchmark::Shutdown();                                    \
    return 0;                                                   \
  }

#endif  // BENCH_BENCH_UTIL_H_
