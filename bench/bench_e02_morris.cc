// E2 — the Morris sequence-number attack with a stolen live authenticator.

#include "bench/bench_util.h"
#include "src/attacks/morris.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E2", "Morris ISN spoof + live authenticator (§Replay Attacks, [Morr85])");
  {
    kattack::MorrisScenario scenario;
    auto r = kattack::RunMorrisSpoof(scenario);
    kbench::ResultRow("predictable ISNs, timestamp auth", r.command_executed, r.evidence);
  }
  {
    kattack::MorrisScenario scenario;
    scenario.isn_policy = ksim::IsnPolicy::kRandom;
    auto r = kattack::RunMorrisSpoof(scenario);
    kbench::ResultRow("random ISNs", r.command_executed);
  }
  {
    kattack::MorrisScenario scenario;
    scenario.challenge_response = true;
    auto r = kattack::RunMorrisSpoof(scenario);
    kbench::ResultRow("predictable ISNs + challenge/response", r.command_executed,
                      r.evidence);
  }
  kbench::Line("  Paper: 'would still work if accompanied by a stolen live authenticator,"
               " but not if a challenge/response protocol was used.'");
}

void BM_MorrisSpoofEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::MorrisScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunMorrisSpoof(scenario));
  }
}
BENCHMARK(BM_MorrisSpoofEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
