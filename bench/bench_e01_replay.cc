// E1 — authenticator replay within the clock-skew window.

#include "bench/bench_util.h"
#include "src/attacks/replay.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E1", "authenticator replay (§Replay Attacks, mail-check scenario)");
  {
    kattack::ReplayScenario scenario;
    auto r = kattack::RunMailCheckReplayV4(scenario);
    kbench::ResultRow("V4, timestamp auth, no replay cache", r.replay_accepted, r.evidence);
  }
  {
    kattack::ReplayScenario scenario;
    scenario.replay_delay = 6 * ksim::kMinute;
    auto r = kattack::RunMailCheckReplayV4(scenario);
    kbench::ResultRow("V4, replay delayed past 5-min window", r.replay_accepted);
  }
  {
    kattack::ReplayScenario scenario;
    scenario.server_replay_cache = true;
    auto r = kattack::RunMailCheckReplayV4(scenario);
    kbench::ResultRow("V4 + authenticator cache (the unimplemented fix)", r.replay_accepted);
  }
  {
    auto r = kattack::RunReplayAgainstChallengeResponse();
    kbench::ResultRow("V5 + challenge/response (recommendation a)", r.replay_accepted);
  }
  kbench::Line("  Paper: attack succeeds within the window; cache or challenge/response"
               " stops it.");
}

void BM_ReplayAttackEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::ReplayScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunMailCheckReplayV4(scenario));
  }
}
BENCHMARK(BM_ReplayAttackEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
