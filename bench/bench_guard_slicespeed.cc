// Regression guard: the bitsliced dictionary sweep must stay at least 3.5x
// faster than the table-driven scalar path it replaced.
//
// Not a google-benchmark binary — a plain pass/fail ctest (registered as
// bench_smoke_slice_guard) so the margin is checked on every test run, not
// only when someone reads bench output. Both sides sweep the same
// dictionary against the same recorded AS reply with a strong (uncrackable)
// password, so each runs the full dictionary:
//
//   scalar:    per-candidate kcrypto::StringToKey (table-driven DES) +
//              trial krb4::Unseal4 — the pre-PR-6 inner loop;
//   bitsliced: kattack::CrackSealedReply, whose sweep now runs 256-lane
//              bitsliced string-to-key + trial decryption.
//
// KERB_CRACK_THREADS is pinned to 1 so the guard measures the engine, not
// the worker pool. The 3.5x floor is conservative: the measured steady-state
// margin on the 1-core reference box is ~4-4.5x (a broken sweep — e.g. a
// silent scalar fallback — reads ~1x), so the guard only fires on a real
// regression.
// Like bench_guard_modexp, the wall-clock ratio is flake-hardened twice
// over: best-of-N rounds absorbs scheduler noise within an attempt, and a
// failed attempt is re-measured from scratch up to kAttempts times —
// interleaved timing makes a transiently loaded box slow BOTH sides, so
// only a persistent one-sided slowdown can fail every attempt.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/attacks/passwords.h"
#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  // One worker: compare engines, not thread counts.
  setenv("KERB_CRACK_THREADS", "1", 1);

  kcrypto::Prng prng(0x51ce);
  const krb4::Principal user = krb4::Principal::User("guard", "ATHENA.SIM");
  const kcrypto::DesKey key = kcrypto::StringToKey("Str0ng&Uncrackable!", user.Salt());
  krb4::AsReplyBody4 body;
  body.tgs_session_key = prng.NextDesKey().bytes();
  body.sealed_tgt = prng.NextBytes(64);
  const kerb::Bytes sealed = krb4::Seal4(key, body.Encode());
  // The stock dictionary (~210 words) fills less than one 256-lane slice;
  // replicate it so the bitsliced path runs mostly full chunks, as a real
  // harvest sweep (dictionary x many victims) does. Replication does not
  // change the scalar per-guess cost, and 40 copies stretches each timed
  // window past the millisecond scale where scheduler jitter dominates the
  // ratio.
  const std::vector<std::string>& base = kattack::CommonPasswordDictionary();
  std::vector<std::string> dictionary;
  dictionary.reserve(base.size() * 40);
  for (int copy = 0; copy < 40; ++copy) {
    dictionary.insert(dictionary.end(), base.begin(), base.end());
  }
  const std::string salt = user.Salt();

  constexpr int kRounds = 3;
  constexpr int kAttempts = 3;
  constexpr double kFloor = 3.5;
  const double n = static_cast<double>(dictionary.size());
  volatile bool sink = false;
  double speedup = 0.0;
  std::printf("dictionary=%zu candidates, best of %d rounds\n", dictionary.size(), kRounds);
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Best-of-N to shrug off scheduler noise on shared machines.
    double scalar_best = 1e9;
    double sliced_best = 1e9;
    for (int round = 0; round < kRounds; ++round) {
      auto start = Clock::now();
      for (const std::string& candidate : dictionary) {
        const kcrypto::DesKey guess = kcrypto::StringToKey(candidate, salt);
        sink = sink ^ krb4::Unseal4(guess, sealed).ok();
      }
      scalar_best = std::min(scalar_best, SecondsSince(start));

      start = Clock::now();
      if (kattack::CrackSealedReply(sealed, user, dictionary).has_value()) {
        std::fprintf(stderr, "FAIL: strong password was 'cracked' — sweep is broken\n");
        return 1;
      }
      sliced_best = std::min(sliced_best, SecondsSince(start));
    }

    const double scalar_rate = n / scalar_best;
    const double sliced_rate = n / sliced_best;
    speedup = sliced_rate / scalar_rate;
    std::printf("attempt %d/%d: scalar %.0f guesses/sec, bitsliced %.0f guesses/sec, "
                "speedup %.2fx (floor: %.1fx)\n",
                attempt, kAttempts, scalar_rate, sliced_rate, speedup, kFloor);
    if (speedup >= kFloor) {
      std::printf("PASS\n");
      return 0;
    }
  }
  std::fprintf(stderr, "FAIL: bitsliced sweep below the %.1fx floor on all %d attempts "
               "(last: %.2fx)\n", kFloor, kAttempts, speedup);
  return 1;
}
