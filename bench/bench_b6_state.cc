// B6 — server state: authenticator/timestamp caches vs sequence counters.
//
// "If such messages are used for things like file system requests, the size
// of the cache could rapidly become unmanageable" vs "the cache is then a
// simple last-message counter."

#include "bench/bench_util.h"
#include "src/krb5/safepriv.h"
#include "src/sim/world.h"

namespace {

krb5::ChannelConfig Config(krb5::ReplayProtection protection) {
  krb5::ChannelConfig config;
  config.protection = protection;
  return config;
}

void PrintExperimentReport() {
  kbench::Header("B6", "receiver state after N messages in one skew window");
  std::printf("  %-10s %-22s %-22s\n", "messages", "timestamp cache", "sequence counter");
  for (int n : {10, 100, 1000, 10000}) {
    ksim::World world(1);
    ksim::HostClock clock = world.MakeHostClock(0);
    kcrypto::Prng prng(2);
    kcrypto::DesKey key = kcrypto::Prng(3).NextDesKey();
    krb5::SecureChannel ts_sender(key, &clock, Config(krb5::ReplayProtection::kTimestamp));
    krb5::SecureChannel ts_receiver(key, &clock, Config(krb5::ReplayProtection::kTimestamp));
    krb5::SecureChannel seq_sender(key, &clock, Config(krb5::ReplayProtection::kSequence));
    krb5::SecureChannel seq_receiver(key, &clock, Config(krb5::ReplayProtection::kSequence));
    for (int i = 0; i < n; ++i) {
      (void)ts_receiver.OpenMessage(ts_sender.SealMessage(kerb::Bytes{1}, prng));
      (void)seq_receiver.OpenMessage(seq_sender.SealMessage(kerb::Bytes{1}, prng));
      world.clock().Advance(ksim::kMillisecond);  // all within the window
    }
    std::printf("  %-10d %-22zu %-22s\n", n, ts_receiver.timestamp_cache_size(),
                "1 counter (4 bytes)");
  }
}

void BM_TimestampChannelMessage(benchmark::State& state) {
  ksim::World world(1);
  ksim::HostClock clock = world.MakeHostClock(0);
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = kcrypto::Prng(3).NextDesKey();
  krb5::SecureChannel sender(key, &clock, Config(krb5::ReplayProtection::kTimestamp));
  krb5::SecureChannel receiver(key, &clock, Config(krb5::ReplayProtection::kTimestamp));
  // Pre-fill the cache to the configured size.
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)receiver.OpenMessage(sender.SealMessage(kerb::Bytes{1}, prng));
    world.clock().Advance(ksim::kMillisecond);
  }
  for (auto _ : state) {
    world.clock().Advance(ksim::kMillisecond);
    auto r = receiver.OpenMessage(sender.SealMessage(kerb::Bytes{1}, prng));
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("cache preloaded with " + std::to_string(state.range(0)) + " entries");
}
BENCHMARK(BM_TimestampChannelMessage)->Arg(0)->Arg(1000)->Arg(10000);

void BM_SequenceChannelMessage(benchmark::State& state) {
  ksim::World world(1);
  ksim::HostClock clock = world.MakeHostClock(0);
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = kcrypto::Prng(3).NextDesKey();
  krb5::SecureChannel sender(key, &clock, Config(krb5::ReplayProtection::kSequence), 1);
  krb5::SecureChannel receiver(key, &clock, Config(krb5::ReplayProtection::kSequence), 1);
  for (auto _ : state) {
    auto r = receiver.OpenMessage(sender.SealMessage(kerb::Bytes{1}, prng));
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("state is one counter regardless of traffic");
}
BENCHMARK(BM_SequenceChannelMessage);

}  // namespace

KERB_BENCH_MAIN()
