// Regression guard: clustering must actually scale serving capacity.
//
// Not a google-benchmark binary — a plain pass/fail ctest (registered as
// bench_smoke_cluster_guard). One fixed AS-only workload against a
// single-node "cluster" and the same workload against four nodes; the
// four-node virtual aggregate throughput (ok logins over the busiest
// node's charged service time) must hold at least a 1.5x margin. With a
// balanced ring the expected margin is near 4x, so 1.5x trips only when
// sharding or referral routing genuinely regresses — hot-spotting the
// ring, serving every request from one node, or charging referral chases
// as service time. Deterministic seeds: a failure is a regression, not
// flake.

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/sim/world.h"

namespace {

bool Check(const char* what, bool ok) {
  std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
  return ok;
}

kcluster::ClusterLoadReport RunAsOnly(size_t node_count) {
  ksim::World world(0x6a2d + node_count);
  kcluster::PopulationConfig pc;
  pc.users = 8000;
  pc.services = 16;
  kcluster::Population population(pc);
  kcluster::ClusterConfig cc;
  kcluster::ClusterController controller(&world, cc);
  population.Install(controller.logical_db());
  std::vector<kcluster::RingMember> members;
  for (size_t i = 0; i < node_count; ++i) {
    members.push_back({i + 1, 0x0a000010u + static_cast<uint32_t>(i)});
  }
  controller.Bootstrap(members);

  kcluster::ClusterLoadConfig lc;
  lc.ops = 1000;
  lc.login_mix_1024 = 1024;  // AS-only: every op is a login
  return RunClusterLoad(world, controller, population, lc);
}

}  // namespace

int main() {
  bool pass = true;

  const kcluster::ClusterLoadReport one = RunAsOnly(1);
  const kcluster::ClusterLoadReport four = RunAsOnly(4);
  std::printf("[cluster] 1 node: %.0f logins/s   4 nodes: %.0f logins/s (%.2fx)\n",
              one.aggregate_ops_per_sec, four.aggregate_ops_per_sec,
              one.aggregate_ops_per_sec > 0
                  ? four.aggregate_ops_per_sec / one.aggregate_ops_per_sec
                  : 0.0);

  pass &= Check("1-node: every login succeeds", one.ok == one.attempted && one.ok > 0);
  pass &= Check("4-node: every login succeeds", four.ok == four.attempted && four.ok > 0);
  pass &= Check("no internal errors", one.internal_errors == 0 && four.internal_errors == 0);
  pass &= Check("4-node referral routing exercised",
                four.routing.referrals_followed > 0 && four.routing.direct_routes > 0);
  pass &= Check("4-node aggregate AS throughput >= 1.5x single node",
                four.aggregate_ops_per_sec >= 1.5 * one.aggregate_ops_per_sec);

  if (!pass) {
    std::printf("cluster guard FAILED\n");
    return 1;
  }
  std::printf("cluster guard passed\n");
  return 0;
}
