// E8 — PCBC message-stream modification (§The Encryption Layer).
//
// "This mode was observed to have poor propagation properties that permit
// message-stream modification: specifically, if two blocks of ciphertext
// are interchanged, only the corresponding blocks are garbled on
// decryption."

#include "bench/bench_util.h"
#include "src/crypto/checksum.h"
#include "src/crypto/modes.h"
#include "src/crypto/prng.h"

namespace {

struct SwapOutcome {
  int garbled_blocks = 0;
  bool tail_intact = false;
};

SwapOutcome SwapAndDecrypt(bool use_pcbc, size_t block_a, size_t block_b) {
  kcrypto::Prng prng(1);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(96);  // 12 blocks
  kcrypto::DesBlock iv = kcrypto::U64ToBlock(prng.NextU64());
  kerb::Bytes ct = use_pcbc ? EncryptPcbc(key, iv, pt) : EncryptCbc(key, iv, pt);
  for (size_t i = 0; i < 8; ++i) {
    std::swap(ct[8 * block_a + i], ct[8 * block_b + i]);
  }
  kerb::Bytes out = use_pcbc ? DecryptPcbc(key, iv, ct) : DecryptCbc(key, iv, ct);
  SwapOutcome outcome;
  for (size_t b = 0; b < 12; ++b) {
    if (!std::equal(out.begin() + 8 * b, out.begin() + 8 * b + 8, pt.begin() + 8 * b)) {
      ++outcome.garbled_blocks;
    }
  }
  size_t last = std::max(block_a, block_b);
  outcome.tail_intact = std::equal(out.begin() + 8 * (last + 1), out.end(),
                                   pt.begin() + 8 * (last + 1));
  return outcome;
}

void PrintExperimentReport() {
  kbench::Header("E8", "PCBC block-swap splice (§The Encryption Layer)");
  auto pcbc = SwapAndDecrypt(true, 4, 5);
  kbench::ResultRow("PCBC, swap adjacent blocks 4/5", pcbc.tail_intact,
                    std::to_string(pcbc.garbled_blocks) +
                        " garbled blocks; tail decrypts clean — splice works");
  auto cbc = SwapAndDecrypt(false, 4, 5);
  kbench::ResultRow("CBC, same swap", cbc.tail_intact,
                    std::to_string(cbc.garbled_blocks) +
                        " garbled blocks (CBC also heals — which is why a checksum"
                        " is mandatory)");

  // The actual fix: a sealed collision-proof checksum notices any swap.
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes pt = prng.NextBytes(96);
  kerb::Bytes digest = kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4Des, pt, key);
  kerb::Bytes swapped = pt;
  for (size_t i = 0; i < 8; ++i) {
    std::swap(swapped[32 + i], swapped[40 + i]);
  }
  bool detected = !kcrypto::VerifyChecksum(kcrypto::ChecksumType::kMd4Des, swapped, digest,
                                           key);
  kbench::ResultRow("CBC + sealed MD4-DES checksum (Draft 3 layer)", !detected,
                    detected ? "swap detected" : "");
}

void BM_PcbcSpliceAttempt(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SwapAndDecrypt(true, 4, 5));
  }
}
BENCHMARK(BM_PcbcSpliceAttempt)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
