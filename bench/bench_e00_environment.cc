// E0 — environment assumptions (§THE KERBEROS ENVIRONMENT).

#include "bench/bench_util.h"
#include "src/attacks/environment.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E0", "environment assumptions: caches, disks, and hosts");
  {
    auto r = kattack::RunDisklessTmpCacheTheft();
    kbench::ResultRow("diskless workstation: /tmp cache on a file server",
                      r.impersonation_succeeded,
                      "session key read off the wire; " + r.evidence);
  }
  {
    auto r = kattack::RunHostExposureStudy();
    kbench::ResultRow("multi-user host: concurrent cache read",
                      r.concurrent_theft_succeeded, "live keys available to any root");
    kbench::ResultRow("workstation: cache read after logout",
                      r.post_logout_theft_succeeded, "keys wiped at logoff");
  }
  kbench::Line("  Paper: 'Kerberos is designed to authenticate the end-user ... It is"
               " not a peer-to-peer system ... Attempting to use Kerberos in such a mode"
               " can cause trouble.'");
}

void BM_DisklessCacheTheft(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunDisklessTmpCacheTheft(seed++));
  }
}
BENCHMARK(BM_DisklessCacheTheft)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
