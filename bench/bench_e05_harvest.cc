// E5 — ticket harvesting without eavesdropping.

#include "bench/bench_util.h"
#include "src/attacks/harvest.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E5", "AS harvesting without a wiretap (§Password-Guessing Attacks)");
  kattack::ActiveHarvestScenario base;
  base.base.population = 40;
  {
    auto r = kattack::RunActiveHarvest(base);
    kbench::ResultRow("no preauth, no rate limit", r.replies_obtained > 0,
                      std::to_string(r.replies_obtained) + " replies, " +
                          std::to_string(r.cracked) + " cracked");
  }
  {
    auto scenario = base;
    scenario.kdc_rate_limit_per_minute = 10;
    auto r = kattack::RunActiveHarvest(scenario);
    kbench::ResultRow("rate limit 10/min", r.replies_obtained > 0,
                      std::to_string(r.replies_obtained) + " replies before throttle, " +
                          std::to_string(r.rejected_by_kdc) + " refused");
  }
  {
    auto scenario = base;
    scenario.kdc_requires_preauth = true;
    auto r = kattack::RunActiveHarvest(scenario);
    kbench::ResultRow("preauthentication required (recommendation g)",
                      r.replies_obtained > 0,
                      std::to_string(r.rejected_by_kdc) + " requests refused");
  }
  kbench::Line("  Paper: 'there is no need to provide grist for their mill.'");
}

void BM_HarvestOneRealm(benchmark::State& state) {
  kattack::ActiveHarvestScenario scenario;
  scenario.base.population = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunActiveHarvest(scenario));
    ++scenario.base.seed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HarvestOneRealm)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
