// B14 — durable-store throughput: WAL append rate, recovery replay rate,
// and the incremental-vs-wholesale propagation byte cost.
//
// The quantitative side of the kstore subsystem (src/store): how fast the
// primary can journal registrations, how fast a crashed KDC replays its
// log back into a serving database, and the wire-size argument for kprop
// deltas — shipping the few records a slave is missing instead of the
// whole database. bench_baseline.py records all four numbers into the
// BENCH_*.json "persist" section; the delta/wholesale ratio is the
// headline (acceptance: strictly below 1 for small changes).

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/crypto/prng.h"
#include "src/krb4/database.h"
#include "src/krb4/kdcstore.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"
#include "src/store/kstore.h"

namespace {

using krb4::KdcDatabase;
using krb4::Principal;

constexpr int kBaseUsers = 64;  // population snapshotted before journaling

KdcDatabase PopulatedDatabase() {
  KdcDatabase db;
  for (int i = 0; i < kBaseUsers; ++i) {
    db.AddUser(Principal::User("user" + std::to_string(i), "R"), "pw" + std::to_string(i));
  }
  return db;
}

void PrintExperimentReport() {
  kbench::Header("B14", "durable KDC database: WAL, recovery, and kprop transfer cost");
  kbench::Line("  BM_WalAppend journals principal upserts (frame + CRC + flush) on an");
  kbench::Line("  honest simulated device. BM_WalRecover replays a durable snapshot +");
  kbench::Line("  WAL suffix back into a serving database. BM_PropDelta runs full kprop");
  kbench::Line("  cycles and exports the delta vs wholesale bytes for a one-user change");
  kbench::Line("  against a " + std::to_string(kBaseUsers) + "-user database.");
}

void BM_WalAppend(benchmark::State& state) {
  KdcDatabase db = PopulatedDatabase();
  kstore::KStore store(kcrypto::Prng(0xb14), {}, krb4::SnapshotDatabase(db, 0));
  db.AttachJournal(&store);
  kcrypto::Prng prng(0x5eedb14);
  const kcrypto::DesKey key = prng.NextDesKey();
  uint64_t bytes = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    db.ApplyUpsert(Principal::User("user" + std::to_string(i % kBaseUsers), "R"), key,
                   krb4::PrincipalKind::kUser);
    ++i;
    // Bound log growth: the append path is the cost under test, an
    // ever-longer live window is not.
    if (store.last_lsn() % 4096 == 0) {
      bytes += store.device().durable_size("kdb.wal");
      store.Compact(krb4::SnapshotDatabase(db, store.last_lsn()));
    }
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WalAppend)->Unit(benchmark::kMicrosecond);

void BM_WalRecover(benchmark::State& state) {
  const int64_t records = state.range(0);
  KdcDatabase db = PopulatedDatabase();
  kstore::KStore store(kcrypto::Prng(0xb14), {}, krb4::SnapshotDatabase(db, 0));
  db.AttachJournal(&store);
  kcrypto::Prng prng(0x5eedb14);
  for (int64_t i = 0; i < records; ++i) {
    db.ApplyUpsert(Principal::User("user" + std::to_string(i % kBaseUsers), "R"),
                   prng.NextDesKey(), krb4::PrincipalKind::kUser);
  }
  for (auto _ : state) {
    auto recovered = store.Recover();
    if (!recovered.ok()) {
      state.SkipWithError(recovered.error().detail.c_str());
      return;
    }
    KdcDatabase rebuilt;
    if (!krb4::LoadSnapshotEntries(rebuilt, recovered.value().base).ok()) {
      state.SkipWithError("snapshot load failed");
      return;
    }
    for (const kstore::WalRecord& record : recovered.value().records) {
      if (!krb4::ApplyStoreRecord(rebuilt, record.op, record.payload).ok()) {
        state.SkipWithError("record replay failed");
        return;
      }
    }
    benchmark::DoNotOptimize(rebuilt.size());
  }
  // Rate of WAL records replayed (the snapshot-load cost is amortised into
  // the same loop, matching what a real restart pays).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * records);
}
BENCHMARK(BM_WalRecover)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

// One full kprop cycle per iteration, alternating a one-record delta cycle
// with a compaction-forced wholesale cycle so both costs are measured on
// the same database. The registered counters are what bench_baseline.py
// distills into the persist section.
void BM_PropDelta(benchmark::State& state) {
  ksim::SimClock clock;
  ksim::Network net(&clock);
  KdcDatabase primary = PopulatedDatabase();
  KdcDatabase slave = primary;
  krb4::ReplicaPropagation prop(&net, "R", &primary, /*primary_host=*/0x0a000058);
  prop.AddSlave(0x0a000059, &slave);

  const Principal carol = Principal::User("carol", "R");
  uint64_t delta_bytes = 0, wholesale_bytes = 0, delta_records = 0, cycles = 0;
  kcrypto::Prng prng(0x5eedb14);
  for (auto _ : state) {
    // Delta cycle: one new registration, shipped incrementally.
    primary.ApplyUpsert(carol, prng.NextDesKey(), krb4::PrincipalKind::kUser);
    auto report = prop.Propagate();
    if (!report.slaves_converged) {
      state.SkipWithError("delta cycle failed to converge");
      return;
    }
    delta_bytes += report.bytes_sent;
    delta_records += report.records_shipped;

    // Wholesale cycle: remove it again, compact past the slave's ack.
    primary.Remove(carol);
    prop.Compact();
    report = prop.Propagate();
    if (!report.slaves_converged || report.wholesale_transfers == 0) {
      state.SkipWithError("wholesale cycle failed to converge");
      return;
    }
    wholesale_bytes += report.wholesale_bytes;
    ++cycles;
  }
  state.counters["delta_bytes"] = static_cast<double>(delta_bytes) / cycles;
  state.counters["wholesale_bytes"] = static_cast<double>(wholesale_bytes) / cycles;
  state.counters["delta_records"] = static_cast<double>(delta_records) / cycles;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);  // cycles
}
BENCHMARK(BM_PropDelta)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
