// E3 — stale-authenticator replay via time-service spoofing.

#include "bench/bench_util.h"
#include "src/attacks/timespoof.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E3", "time-service spoofing (§Secure Time Services)");
  {
    kattack::TimeSpoofScenario scenario;
    auto r = kattack::RunTimeSpoofReplay(scenario);
    kbench::ResultRow("unauthenticated time service",
                      r.stale_replay_accepted_after,
                      r.server_clock_corrupted ? "server clock rolled back 2h" : "");
  }
  {
    kattack::TimeSpoofScenario scenario;
    scenario.staleness = 24 * ksim::kHour;
    auto r = kattack::RunTimeSpoofReplay(scenario);
    kbench::ResultRow("unauth time, 24h-old authenticator", r.stale_replay_accepted_after);
  }
  {
    kattack::TimeSpoofScenario scenario;
    scenario.authenticated_time_service = true;
    auto r = kattack::RunTimeSpoofReplay(scenario);
    kbench::ResultRow("authenticated (MAC'd, nonced) time service",
                      r.stale_replay_accepted_after);
  }
  kbench::Line("  Paper: 'the Kerberos protocols involve mutual trust among four parties:"
               " the client, server, authentication server and time server.'");
}

void BM_TimeSpoofEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::TimeSpoofScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunTimeSpoofReplay(scenario));
  }
}
BENCHMARK(BM_TimeSpoofEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
