// B4 — password-guessing rates and expected yield.
//
// "An intruder who has recorded many such login dialogs has good odds of
// finding several new passwords." This bench measures the attacker's inner
// loop (string-to-key + trial decryption) and tabulates the yield against
// the weak-password fraction.

#include "bench/bench_util.h"
#include "src/attacks/harvest.h"
#include "src/attacks/passwords.h"
#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("B4", "dictionary attack yield vs weak-password fraction");
  std::printf("  %-12s %-10s %-10s %-10s %-14s\n", "weak frac", "users", "weak", "cracked",
              "guesses");
  for (double weak : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    kattack::HarvestScenario scenario;
    scenario.population = 40;
    scenario.weak_fraction = weak;
    auto r = kattack::RunEavesdropCrackV4(scenario);
    std::printf("  %-12.2f %-10d %-10d %-10d %-14llu\n", weak, r.population, r.weak_users,
                r.cracked, static_cast<unsigned long long>(r.guess_attempts));
  }
  kbench::Line("  Every dictionary password falls; no strong password does.");
}

void BM_StringToKey(benchmark::State& state) {
  // The attacker's unit of work.
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kcrypto::StringToKey("candidate" + std::to_string(i++), "ATHENA.SIMalice"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StringToKey);

void BM_GuessConfirmation(benchmark::State& state) {
  // string-to-key + trial unseal of a recorded AS reply.
  kcrypto::Prng prng(1);
  krb4::Principal alice = krb4::Principal::User("alice", "ATHENA.SIM");
  kcrypto::DesKey real_key = kcrypto::StringToKey("the-real-password", alice.Salt());
  krb4::AsReplyBody4 body;
  body.tgs_session_key = prng.NextDesKey().bytes();
  body.sealed_tgt = prng.NextBytes(64);
  kerb::Bytes sealed = krb4::Seal4(real_key, body.Encode());

  int i = 0;
  for (auto _ : state) {
    kcrypto::DesKey guess =
        kcrypto::StringToKey("wrong" + std::to_string(i++), alice.Salt());
    benchmark::DoNotOptimize(krb4::Unseal4(guess, sealed));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("guesses/sec is items_per_second");
}
BENCHMARK(BM_GuessConfirmation);

void BM_ParallelCrackSweep(benchmark::State& state) {
  // Worst case for the attacker: the password is strong, so the sweep runs
  // the whole dictionary through the worker pool every iteration.
  // items/sec == guesses/sec through the parallel harness.
  kcrypto::Prng prng(3);
  krb4::Principal user = krb4::Principal::User("user9", "ATHENA.SIM");
  kcrypto::DesKey key = kcrypto::StringToKey("Tr0ub4dor&3", user.Salt());
  krb4::AsReplyBody4 body;
  body.tgs_session_key = prng.NextDesKey().bytes();
  body.sealed_tgt = prng.NextBytes(64);
  kerb::Bytes sealed = krb4::Seal4(key, body.Encode());
  const auto& dictionary = kattack::CommonPasswordDictionary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::CrackSealedReply(sealed, user, dictionary));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dictionary.size()));
  state.SetLabel(std::to_string(kattack::CrackWorkerThreads()) + " worker thread(s)");
}
BENCHMARK(BM_ParallelCrackSweep)->Unit(benchmark::kMicrosecond);

void BM_FullDictionaryPerUser(benchmark::State& state) {
  kcrypto::Prng prng(2);
  krb4::Principal user = krb4::Principal::User("user7", "ATHENA.SIM");
  kcrypto::DesKey key = kcrypto::StringToKey("tigger", user.Salt());  // weak
  krb4::AsReplyBody4 body;
  body.tgs_session_key = prng.NextDesKey().bytes();
  body.sealed_tgt = prng.NextBytes(64);
  kerb::Bytes sealed = krb4::Seal4(key, body.Encode());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kattack::CrackSealedReply(sealed, user, kattack::CommonPasswordDictionary()));
  }
}
BENCHMARK(BM_FullDictionaryPerUser)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
