// E17 — hosts as principals: the srvtab problem (§The Kerberos Environment).

#include "bench/bench_util.h"
#include "src/attacks/hosttrust.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E17", "srvtab compromise: one host key, every user");
  {
    kattack::HostTrustScenario scenario;
    auto r = kattack::RunSrvtabCompromise(scenario);
    kbench::ResultRow("host-asserted identities (NFS-mount pattern)",
                      !r.impersonated.empty(),
                      "impersonated " + std::to_string(r.impersonated.size()) +
                          " users with one stolen key");
  }
  {
    kattack::HostTrustScenario scenario;
    scenario.require_per_user_tickets = true;
    auto r = kattack::RunSrvtabCompromise(scenario);
    kbench::ResultRow("per-user tickets required", !r.impersonated.empty());
  }
  kbench::Line("  Paper: 'Kerberos is designed to authenticate the end-user ... It is"
               " not a peer-to-peer system; it is not intended to be used by one"
               " computer's daemons when contacting another computer.'");
}

void BM_SrvtabCompromiseEndToEnd(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    kattack::HostTrustScenario scenario;
    scenario.seed = seed++;
    benchmark::DoNotOptimize(kattack::RunSrvtabCompromise(scenario));
  }
}
BENCHMARK(BM_SrvtabCompromiseEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
