// B12 — goodput under chaos: the retry/failover stack against a faulty
// network.
//
// Sweeps the chaos study (src/attacks/chaos.h) over fault rates 0–30% and
// reports goodput (exchanges that returned exactly the honest payload) per
// wall-clock second of simulation, plus the goodput percentage as a
// counter. The simulation runs on virtual time, so wall-clock here measures
// the cost of *simulating* resilience — the recorded trajectory number is
// goodput_pct: how much of the workload the retry stack salvages as the
// network degrades.

#include "bench/bench_util.h"
#include "src/attacks/chaos.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("B12", "goodput vs fault rate under the chaos harness");
  kattack::ChaosConfig config;
  config.retry.max_attempts = 8;
  kbench::Line("  rate   V4 goodput   V5 goodput   retries(V4)   cache hits(V4)");
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    config.drop = config.duplicate = rate;
    config.reorder = rate / 2;
    auto v4 = kattack::RunChaosStudy4(config);
    auto v5 = kattack::RunChaosStudy5(config);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "  %3.0f%%     %2llu/%llu        %2llu/%llu        %4llu          %4llu",
                  rate * 100, (unsigned long long)v4.succeeded,
                  (unsigned long long)v4.attempted, (unsigned long long)v5.succeeded,
                  (unsigned long long)v5.attempted, (unsigned long long)v4.retry.retries,
                  (unsigned long long)v4.kdc_reply_cache_hits);
    kbench::Line(row);
  }
}

void RunChaosBenchmark(benchmark::State& state, bool v5) {
  kattack::ChaosConfig config;
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  config.drop = config.duplicate = rate;
  config.reorder = rate / 2;
  config.retry.max_attempts = 8;

  uint64_t succeeded = 0;
  uint64_t attempted = 0;
  for (auto _ : state) {
    config.seed = 0xb12c0de + state.iterations();  // fresh schedule per run
    kattack::ChaosReport report =
        v5 ? kattack::RunChaosStudy5(config) : kattack::RunChaosStudy4(config);
    if (report.internal_errors != 0 || report.kdc_divergences != 0) {
      state.SkipWithError("chaos invariant violated");
      return;
    }
    succeeded += report.succeeded;
    attempted += report.attempted;
  }
  state.counters["fault_pct"] = static_cast<double>(state.range(0));
  state.counters["goodput_pct"] =
      attempted ? 100.0 * static_cast<double>(succeeded) / static_cast<double>(attempted)
                : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(succeeded));
}

void BM_ChaosGoodput4(benchmark::State& state) { RunChaosBenchmark(state, false); }
BENCHMARK(BM_ChaosGoodput4)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_ChaosGoodput5(benchmark::State& state) { RunChaosBenchmark(state, true); }
BENCHMARK(BM_ChaosGoodput5)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KERB_BENCH_MAIN()
