// B9 — encryption-layer ablation: what each Draft 3 mechanism buys.
//
// The paper insists these mechanisms "belong in a separate encryption
// layer" with requirements stated explicitly. This bench removes them one
// at a time and measures what breaks:
//   * no confounder  → identical plaintexts produce identical ciphertexts
//     (a traffic-analysis leak);
//   * CRC-32 checksum → random noise detected, adversaries not (E9);
//   * no checksum at all (Draft 2 style) → truncations pass (E7).

#include "bench/bench_util.h"
#include "src/crypto/crc32.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/messages.h"

namespace {

using krb5::EncLayerConfig;

kenc::TlvMessage Sample() {
  kenc::TlvMessage msg(krb5::kMsgPriv);
  msg.SetString(krb5::tag::kAppData, "transfer $100 to account 7");
  return msg;
}

void PrintExperimentReport() {
  kbench::Header("B9", "encryption-layer ablation");
  kcrypto::Prng prng(1);
  kcrypto::DesKey key = prng.NextDesKey();

  // Ablate the confounder.
  {
    EncLayerConfig config{kcrypto::ChecksumType::kMd4Des, /*use_confounder=*/false};
    kerb::Bytes a = SealTlv(key, Sample(), config, prng);
    kerb::Bytes b = SealTlv(key, Sample(), config, prng);
    kbench::ResultRow("no confounder: equal plaintexts visible on the wire", a == b,
                      "ciphertexts identical — repeat traffic leaks");
    EncLayerConfig with{kcrypto::ChecksumType::kMd4Des, true};
    kerb::Bytes c = SealTlv(key, Sample(), with, prng);
    kerb::Bytes d = SealTlv(key, Sample(), with, prng);
    kbench::ResultRow("with confounder", c == d);
  }

  // Ablate checksum strength: blind flips vs compensated rewrites.
  {
    EncLayerConfig crc{kcrypto::ChecksumType::kCrc32, true};
    kerb::Bytes sealed = SealTlv(key, Sample(), crc, prng);
    int blind_accepted = 0;
    for (size_t i = 0; i < sealed.size(); ++i) {
      kerb::Bytes tampered = sealed;
      tampered[i] ^= 0x01;
      if (UnsealTlv(key, krb5::kMsgPriv, tampered, crc).ok()) {
        ++blind_accepted;
      }
    }
    kbench::ResultRow("CRC-32 vs blind bit flips", blind_accepted > 0,
                      std::to_string(blind_accepted) + " of " +
                          std::to_string(sealed.size()) + " mutations accepted");
    kbench::Line("  ...but CRC-32 vs a COMPENSATING adversary falls (E9): four chosen"
                 " bytes steer it to any value.");
  }

  // Ablate the checksum entirely (the Draft 2 shape). A NAIVE truncation
  // trips over the padding; but an attacker who can choose part of the
  // plaintext aligns a fake pad + trailer and the prefix sails through —
  // that full construction is bench_e07_prefix.
  {
    krb5::Draft2Priv msg;
    msg.data = kerb::ToBytes("no integrity protection at all");
    kerb::Bytes sealed = krb5::Draft2PrivSeal(key, msg);
    kerb::Bytes truncated(sealed.begin(), sealed.end() - 8);
    bool truncation_accepted = krb5::Draft2PrivUnseal(key, truncated).ok();
    kbench::ResultRow("no checksum (Draft 2): naive truncation", truncation_accepted,
                      "padding luck; the chosen-plaintext version succeeds (E7)");
  }
}

void BM_SealWithConfounder(benchmark::State& state) {
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{kcrypto::ChecksumType::kMd4Des, state.range(0) != 0};
  kenc::TlvMessage msg = Sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SealTlv(key, msg, config, prng));
  }
  state.SetLabel(state.range(0) ? "with confounder" : "without confounder");
}
BENCHMARK(BM_SealWithConfounder)->Arg(0)->Arg(1);

void BM_SealByChecksumType(benchmark::State& state) {
  kcrypto::Prng prng(3);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{static_cast<kcrypto::ChecksumType>(state.range(0)), true};
  kenc::TlvMessage msg = Sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SealTlv(key, msg, config, prng));
  }
  state.SetLabel(kcrypto::ChecksumTypeName(config.checksum));
}
BENCHMARK(BM_SealByChecksumType)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

KERB_BENCH_MAIN()
