// E16 — the replay cache vs. legitimate UDP retransmissions.

#include "bench/bench_util.h"
#include "src/attacks/retransmit.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E16", "replay cache vs lost replies (§Replay Attacks, UDP discussion)");
  {
    auto r = kattack::RunRetransmissionStudy(false);
    std::printf("  reply lost, identical retransmission:   %s (%llu false alarm%s)\n",
                r.retransmission_accepted ? "accepted" : "REJECTED — honest user locked out",
                static_cast<unsigned long long>(r.false_alarms),
                r.false_alarms == 1 ? "" : "s");
  }
  {
    auto r = kattack::RunRetransmissionStudy(true);
    std::printf("  reply lost, fresh authenticator retry:  %s (%llu false alarms)\n",
                r.retransmission_accepted ? "accepted" : "REJECTED",
                static_cast<unsigned long long>(r.false_alarms));
  }
  kbench::Line("  Paper: 'Legitimate requests could be rejected, and a security alarm"
               " raised inappropriately. One possible solution would be for the"
               " application to generate a new authenticator when retransmitting.'");
}

void BM_RetransmissionStudy(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunRetransmissionStudy(state.range(0) != 0, seed++));
  }
  state.SetLabel(state.range(0) ? "fresh authenticator" : "identical retry");
}
BENCHMARK(BM_RetransmissionStudy)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
