// E12 — address binding vs a network-level adversary (§The Scope of Tickets).

#include "bench/bench_util.h"
#include "src/attacks/address.h"

namespace {

void PrintExperimentReport() {
  kbench::Header("E12", "address binding (§The Scope of Tickets)");
  auto r = kattack::RunAddressBindingStudy();
  kbench::ResultRow("stolen creds used honestly from eve's host", !r.naive_reuse_rejected,
                    "the binding's only win");
  kbench::ResultRow("stolen creds + spoofed source address", r.spoofed_reuse_accepted);
  kbench::ResultRow("post-authentication session hijack", r.hijack_accepted,
                    r.hijack_evidence);
  kbench::Line("  Paper: 'the primary benefit of including it appears to be preventing"
               " immediate reuse of authenticators from a different host.'");
}

void BM_AddressBindingStudy(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kattack::RunAddressBindingStudy(seed++));
  }
}
BENCHMARK(BM_AddressBindingStudy)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
