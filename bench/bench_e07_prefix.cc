// E7 — the inter-session chosen-plaintext prefix attack on the Draft 2
// KRB_PRIV format, contrasted with the V4 format's leading length field.

#include "bench/bench_util.h"
#include "src/crypto/prng.h"
#include "src/encoding/io.h"
#include "src/krb4/krbpriv.h"
#include "src/krb5/enclayer.h"

namespace {

// Builds the attacker's chosen DATA such that a ciphertext prefix of the
// server's encryption is itself a complete valid Draft 2 message carrying
// `spoof_payload`.
std::pair<kerb::Bytes, size_t> BuildChosenData(std::string spoof_payload) {
  // Align so payload + 13-byte trailer fills whole blocks.
  while ((spoof_payload.size() + 13) % 8 != 0) {
    spoof_payload.push_back(' ');
  }
  kenc::Writer w;
  w.PutBytes(kerb::ToBytes(spoof_payload));
  w.PutU64(77);  // timestamp of the forged message
  w.PutU8(1);    // direction: "from the server"
  w.PutU32(0x0a000010);
  kerb::Bytes chosen = w.Take();
  size_t forged_len = chosen.size() + 8;
  chosen.insert(chosen.end(), 8, 0x08);  // a full PKCS#5 pad block
  kerb::Append(chosen, kerb::ToBytes("innocuous remainder of the mail body"));
  return {chosen, forged_len};
}

void PrintExperimentReport() {
  kbench::Header("E7", "chosen-plaintext prefix attack (§Inter-Session Chosen Plaintext)");
  kcrypto::Prng prng(1);
  kcrypto::DesKey session_key = prng.NextDesKey();
  const std::string spoof = "rm -rf /archive/tax-records ....";  // 32 bytes

  // The mail server encrypts attacker-supplied content with the session key
  // (Draft 2 format).
  auto [chosen, forged_len] = BuildChosenData(spoof);
  krb5::Draft2Priv victim;
  victim.data = chosen;
  victim.timestamp = 100;
  victim.direction = 1;
  victim.host_address = 0x0a000010;
  kerb::Bytes ciphertext = krb5::Draft2PrivSeal(session_key, victim);

  // The attacker truncates to the prefix covering the embedded message.
  kerb::Bytes forged(ciphertext.begin(), ciphertext.begin() + forged_len);
  auto opened = krb5::Draft2PrivUnseal(session_key, forged);
  bool accepted = opened.ok();
  kbench::ResultRow("Draft 2 KRB_PRIV (DATA first, no length)", accepted,
                    accepted ? "forged server message: \"" +
                                   kerb::ToString(opened.value().data) + "\""
                             : "");

  // Same trick against the V4 format with its leading length field.
  krb4::PrivMessage4 v4;
  v4.data = chosen;
  v4.timestamp = 100;
  v4.direction = 1;
  kerb::Bytes v4_ct = v4.Seal(session_key);
  bool v4_accepted = false;
  for (size_t blocks = 1; blocks * 8 < v4_ct.size(); ++blocks) {
    kerb::Bytes cut(v4_ct.begin(), v4_ct.begin() + 8 * blocks);
    if (krb4::PrivMessage4::Unseal(session_key, cut).ok()) {
      v4_accepted = true;
    }
  }
  kbench::ResultRow("V4 KRB_PRIV (leading length field)", v4_accepted,
                    "every truncation rejected");
  kbench::Line("  Paper: 'the leading length(DATA) field disrupts the prefix-based"
               " attack.'");
}

void BM_PrefixForgeryConstruction(benchmark::State& state) {
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = prng.NextDesKey();
  for (auto _ : state) {
    auto [chosen, forged_len] = BuildChosenData("payload-0123456789abcdef-payload");
    krb5::Draft2Priv victim;
    victim.data = chosen;
    kerb::Bytes ct = krb5::Draft2PrivSeal(key, victim);
    kerb::Bytes forged(ct.begin(), ct.begin() + forged_len);
    benchmark::DoNotOptimize(krb5::Draft2PrivUnseal(key, forged));
  }
}
BENCHMARK(BM_PrefixForgeryConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

KERB_BENCH_MAIN()
