#!/usr/bin/env python3
"""Records the repo's performance trajectory into a BENCH_*.json file.

Runs the headline benchmark binaries (DES mode throughput, dictionary-attack
guess rate, KDC exchange rate) with google-benchmark's JSON output and
distills the numbers every PR cares about:

    blocks_per_sec: ECB / CBC / PCBC at 8 KiB buffers
    guesses_per_sec: string-to-key alone, and string-to-key + trial unseal
    kdc_requests_per_sec: bare AS, preauth AS, TGS — handler-level (B11),
        i.e. KdcCore5 serving cost on a pre-encoded request, without the
        client-side encode/decode the PR-1 numbers included
    kdc_parallel: requests/sec per worker-pool size (wall-clock), plus the
        machine's core count for interpreting the scaling curve; the
        *_workers_batched curves drive the same cores through the PR-6
        batched dispatch (HandleAsBatch/HandleTgsBatch via RunKdcLoadBatched)
    chaos: goodput percentage (exchanges that returned the honest payload)
        per injected fault rate, V4 and V5, under the B12 chaos study —
        the robustness trajectory of the retry/failover stack
    obs: kobs tracing cost on the handler-level AS exchange (B13) — the
        disabled path (the zero-overhead contract, acceptance: within 3%
        of kdc_requests_per_sec.as_bare), the enabled path, the derived
        overhead percentage, and the per-run trace counters of one traced
        chaos study
    persist: durable-store throughput (B14) — WAL appends/sec on the
        journaled registration path, recovery replay records/sec, and the
        kprop transfer cost of a one-user change: delta bytes vs wholesale
        bytes (acceptance: the ratio is strictly below 1)
    pk: the PR-7 public-key preauth pipeline (B3) — modexp/sec for the
        binary ladder, the cached sliding-window context, and the
        fixed-base comb at 256/512/768/1024-bit moduli (768/1024 are the
        Oakley groups), the windowed- and fixed-base-over-binary speedups
        at 1024 bits (acceptance: windowed >= 3x), and bulk verified DH
        logins/sec through the threaded V4 KDC core per worker count
    admin: the PR-8 admin plane (B15) — protected password changes/sec and
        sealed kvno queries/sec through the kadmin service, plus old-ticket
        goodput and admin apply rate per fault rate while keys rotate
        under live traffic (acceptance: goodput 100 at rate 0, and every
        rotation invariant holds at every rate — the bench skips with an
        error otherwise)
    cluster: the PR-10 scale-out plane (B16) — a million-principal realm
        sharded across consistent-hash KDC nodes: virtual aggregate AS/TGS
        throughput and latency percentiles at 1/2/4/8 nodes, the speedup
        curve over a single node (acceptance: >= 1.5x at 4 nodes, guarded
        by bench_guard_cluster), zipf-vs-uniform skew sensitivity, the
        cold-client referral rate, and goodput through the blackout +
        crash chaos run. Recorded at KERB_CLUSTER_POP principals
        (default one million here; export it to record smaller realms).

Usage:
    python3 bench/bench_baseline.py --build-dir build --out BENCH_PR10.json

or via the CMake target:  cmake --build build --target bench_baseline
Stdlib only; no third-party packages.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_bench(binary, bench_filter, min_time=None):
    """Runs one bench binary, returns google-benchmark's parsed JSON list."""
    out_path = tempfile.mktemp(suffix=".json")
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    if min_time is not None:
        cmd.append(f"--benchmark_min_time={min_time}")
    try:
        try:
            subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
        except FileNotFoundError:
            sys.exit(f"error: bench binary not found: {binary} "
                     "(build it first, or pass --build-dir)")
        with open(out_path) as f:
            return json.load(f)["benchmarks"]
    finally:
        if os.path.exists(out_path):
            os.unlink(out_path)


def run_bench_best_of(binary, bench_filter, min_time=None, runs=3):
    """run_bench N times, keeping each benchmark's best throughput fields.

    The perf-gating sections (cipher core, sweep, KDC scaling) are recorded
    as best-of-N because shared 1-core boxes drift ±10% over a multi-minute
    recording run; the best sustained rate is the machine-speed-independent
    number, and taking it per benchmark stops a mid-run slowdown from
    masquerading as a scaling regression.
    """
    merged = {}
    for _ in range(runs):
        for b in run_bench(binary, bench_filter, min_time):
            prev = merged.get(b["name"])
            if prev is None:
                merged[b["name"]] = dict(b)
            else:
                for field in ("items_per_second", "bytes_per_second"):
                    if field in b and field in prev:
                        prev[field] = max(prev[field], b[field])
    return list(merged.values())


def run_report_metrics(binary, extra_env=None):
    """Runs a bench's experiment report only (no timing loops) and returns
    the scalar metrics it recorded via KERB_BENCH_JSON."""
    out_path = tempfile.mktemp(suffix=".json")
    env = dict(os.environ)
    env["KERB_BENCH_JSON"] = out_path
    env.update(extra_env or {})
    cmd = [binary, "--benchmark_filter=ZZZNOMATCH"]
    try:
        try:
            subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL, env=env)
        except FileNotFoundError:
            sys.exit(f"error: bench binary not found: {binary} "
                     "(build it first, or pass --build-dir)")
        with open(out_path) as f:
            return json.load(f)["metrics"]
    finally:
        if os.path.exists(out_path):
            os.unlink(out_path)


def build_meta(build_dir):
    """Provenance for the numbers: compiler, flags, git SHA, core count."""
    cache = {}
    cache_path = os.path.join(build_dir, "CMakeCache.txt")
    if os.path.exists(cache_path):
        with open(cache_path) as f:
            for line in f:
                line = line.strip()
                if "=" in line and not line.startswith(("//", "#")):
                    key, _, value = line.partition("=")
                    cache[key.partition(":")[0]] = value
    build_type = cache.get("CMAKE_BUILD_TYPE", "")
    flags = " ".join(
        part for part in (
            cache.get("CMAKE_CXX_FLAGS", ""),
            cache.get(f"CMAKE_CXX_FLAGS_{build_type.upper()}", ""),
        ) if part
    )
    compiler = cache.get("CMAKE_CXX_COMPILER", "c++")
    try:
        version = subprocess.run([compiler, "--version"], capture_output=True,
                                 text=True, check=True).stdout.splitlines()[0]
    except (OSError, subprocess.CalledProcessError, IndexError):
        version = ""
    # Anchor git at the repo root (this script's parent directory) so the
    # recorded SHA is the repo's HEAD no matter where the script is invoked
    # from, and ignore untracked files: build leftovers are not "dirty".
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        sha = subprocess.run(["git", "-C", repo_root, "rev-parse", "HEAD"],
                             capture_output=True, text=True,
                             check=True).stdout.strip()
        dirty = subprocess.run(["git", "-C", repo_root, "status",
                                "--porcelain", "--untracked-files=no"],
                               capture_output=True, text=True,
                               check=True).stdout.strip() != ""
    except (OSError, subprocess.CalledProcessError):
        sha, dirty = "", False
    return {
        "compiler": version or compiler,
        "build_type": build_type,
        "cxx_flags": flags,
        "git_sha": sha + ("-dirty" if dirty else ""),
        "cores": os.cpu_count() or 1,
    }


def metric(benchmarks, name, field):
    for b in benchmarks:
        if b["name"] == name:
            return b[field]
    raise KeyError(f"benchmark {name!r} not found; got "
                   f"{[b['name'] for b in benchmarks]}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--min-time", default=None,
                        help="override --benchmark_min_time (bare seconds, e.g. 0.05)")
    args = parser.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")

    b1 = run_bench_best_of(os.path.join(bench_dir, "bench_b1_desmodes"),
                           "BM_Des(Ecb|Cbc|Pcbc)/8192$", args.min_time)
    b4 = run_bench_best_of(os.path.join(bench_dir, "bench_b4_crack"),
                           "BM_StringToKey|BM_GuessConfirmation"
                           "|BM_ParallelCrackSweep", args.min_time, runs=5)
    b11 = run_bench_best_of(os.path.join(bench_dir, "bench_b11_kdcparallel"),
                            "BM_KdcAsBare|BM_KdcAsPreauth|BM_KdcTgs$"
                            "|BM_KdcParallel(As|Tgs)(Batched)?/",
                            args.min_time)
    b12 = run_bench(os.path.join(bench_dir, "bench_b12_chaos"),
                    "BM_ChaosGoodput(4|5)/", args.min_time or "0.01")
    b13 = run_bench(os.path.join(bench_dir, "bench_b13_obs"),
                    "BM_EmitDisabled|BM_KdcAsObs(Off|On)$|BM_TracedChaos4",
                    args.min_time)
    b14 = run_bench(os.path.join(bench_dir, "bench_b14_persist"),
                    "BM_WalAppend$|BM_WalRecover/|BM_PropDelta$",
                    args.min_time)
    b3 = run_bench_best_of(os.path.join(bench_dir, "bench_b3_dh"),
                           "BM_ModExp(Binary|Windowed|FixedBase)/"
                           "|BM_PkLogin4Bulk/", args.min_time)
    b15 = run_bench(os.path.join(bench_dir, "bench_b15_admin"),
                    "BM_AdminChangePassword$|BM_AdminGetKvno$"
                    "|BM_RotationStudy/", args.min_time)

    doc = {
        "meta": build_meta(args.build_dir),
        "blocks_per_sec": {
            "ecb": metric(b1, "BM_DesEcb/8192", "bytes_per_second") / 8,
            "cbc": metric(b1, "BM_DesCbc/8192", "bytes_per_second") / 8,
            "pcbc": metric(b1, "BM_DesPcbc/8192", "bytes_per_second") / 8,
        },
        "guesses_per_sec": {
            "string_to_key": metric(b4, "BM_StringToKey", "items_per_second"),
            "confirmed_guess": metric(b4, "BM_GuessConfirmation",
                                      "items_per_second"),
            "parallel_sweep": metric(b4, "BM_ParallelCrackSweep",
                                     "items_per_second"),
        },
        "kdc_requests_per_sec": {
            "as_bare": metric(b11, "BM_KdcAsBare", "items_per_second"),
            "as_preauth": metric(b11, "BM_KdcAsPreauth", "items_per_second"),
            "tgs": metric(b11, "BM_KdcTgs", "items_per_second"),
        },
        "kdc_parallel": {
            "cores": os.cpu_count() or 1,
            "as_workers": {
                str(n): metric(b11, f"BM_KdcParallelAs/{n}/real_time",
                               "items_per_second")
                for n in (1, 2, 4, 8)
            },
            "tgs_workers": {
                str(n): metric(b11, f"BM_KdcParallelTgs/{n}/real_time",
                               "items_per_second")
                for n in (1, 2, 4, 8)
            },
            "as_workers_batched": {
                str(n): metric(b11, f"BM_KdcParallelAsBatched/{n}/real_time",
                               "items_per_second")
                for n in (1, 2, 4, 8)
            },
            "tgs_workers_batched": {
                str(n): metric(b11, f"BM_KdcParallelTgsBatched/{n}/real_time",
                               "items_per_second")
                for n in (1, 2, 4, 8)
            },
        },
        "chaos": {
            "goodput_pct_v4": {
                str(pct): metric(b12, f"BM_ChaosGoodput4/{pct}", "goodput_pct")
                for pct in (0, 5, 10, 20, 30)
            },
            "goodput_pct_v5": {
                str(pct): metric(b12, f"BM_ChaosGoodput5/{pct}", "goodput_pct")
                for pct in (0, 5, 10, 20, 30)
            },
        },
    }

    as_off = metric(b13, "BM_KdcAsObsOff", "items_per_second")
    as_on = metric(b13, "BM_KdcAsObsOn", "items_per_second")
    doc["obs"] = {
        "emit_disabled_per_sec": metric(b13, "BM_EmitDisabled", "items_per_second"),
        "kdc_as_per_sec": {"tracing_off": as_off, "tracing_on": as_on},
        "tracing_overhead_pct": (as_off - as_on) / as_off * 100.0,
        "traced_chaos_per_run": {
            name: metric(b13, "BM_TracedChaos4", name)
            for name in ("trace_events", "kdc_issues", "net_drops", "seal_bytes")
        },
    }

    delta_bytes = metric(b14, "BM_PropDelta", "delta_bytes")
    wholesale_bytes = metric(b14, "BM_PropDelta", "wholesale_bytes")
    doc["persist"] = {
        "wal_appends_per_sec": metric(b14, "BM_WalAppend", "items_per_second"),
        "recovery_records_per_sec": {
            str(n): metric(b14, f"BM_WalRecover/{n}", "items_per_second")
            for n in (64, 1024)
        },
        "prop_one_user_change": {
            "delta_bytes": delta_bytes,
            "wholesale_bytes": wholesale_bytes,
            "delta_over_wholesale": delta_bytes / wholesale_bytes,
        },
    }

    pk_sizes = (256, 512, 768, 1024)
    modexp = {
        engine: {
            str(bits): metric(b3, f"BM_ModExp{name}/{bits}", "items_per_second")
            for bits in pk_sizes
        }
        for engine, name in (("binary", "Binary"), ("windowed", "Windowed"),
                             ("fixed_base", "FixedBase"))
    }
    doc["pk"] = {
        "modexp_per_sec": modexp,
        "speedup_1024": {
            "windowed_over_binary":
                modexp["windowed"]["1024"] / modexp["binary"]["1024"],
            "fixed_base_over_binary":
                modexp["fixed_base"]["1024"] / modexp["binary"]["1024"],
        },
        "dh_logins_per_sec": {
            str(n): metric(b3, f"BM_PkLogin4Bulk/{n}/real_time",
                           "items_per_second")
            for n in (1, 2, 4)
        },
    }

    doc["admin"] = {
        "password_changes_per_sec": metric(b15, "BM_AdminChangePassword",
                                           "items_per_second"),
        "kvno_queries_per_sec": metric(b15, "BM_AdminGetKvno",
                                       "items_per_second"),
        "rotation_old_ticket_goodput_pct": {
            str(pct): metric(b15, f"BM_RotationStudy/{pct}",
                             "old_ticket_goodput_pct")
            for pct in (0, 10, 20, 30)
        },
        "rotation_admin_applied_pct": {
            str(pct): metric(b15, f"BM_RotationStudy/{pct}",
                             "admin_applied_pct")
            for pct in (0, 10, 20, 30)
        },
    }

    cluster_pop = os.environ.get("KERB_CLUSTER_POP", "1000000")
    b16 = run_report_metrics(os.path.join(bench_dir, "bench_b16_cluster"),
                             {"KERB_CLUSTER_POP": cluster_pop})
    node_counts = (1, 2, 4, 8)
    doc["cluster"] = {
        "population": int(cluster_pop),
        "aggregate_ops_per_sec": {
            str(n): b16[f"cluster_{n}node_agg_ops_per_sec"] for n in node_counts
        },
        "speedup_over_1node": {
            str(n): b16[f"cluster_{n}node_speedup"] for n in node_counts
        },
        "latency_p50_us": {
            str(n): b16[f"cluster_{n}node_p50_us"] for n in node_counts
        },
        "latency_p99_us": {
            str(n): b16[f"cluster_{n}node_p99_us"] for n in node_counts
        },
        "cold_referral_rate": {
            str(n): b16[f"cluster_{n}node_cold_referral_rate"] for n in node_counts
        },
        "skew_4node_agg_ops_per_sec": {
            "uniform": b16["cluster_4node_uniform_agg_ops_per_sec"],
            "zipf": b16["cluster_4node_zipf_agg_ops_per_sec"],
        },
        "chaos_goodput_pct": b16["cluster_chaos_goodput_pct"],
    }

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    def show(prefix, values):
        for name, value in values.items():
            if isinstance(value, dict):
                show(f"{prefix}.{name}", value)
            elif isinstance(value, str):
                print(f"  {prefix}.{name}: {value}")
            else:
                print(f"  {prefix}.{name}: {value:,.0f}")
    for section, values in doc.items():
        show(section, values)
    return 0


if __name__ == "__main__":
    sys.exit(main())
