// Error-path coverage for the V4 KDC and application server.

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"

namespace krb4 {
namespace {

using kattack::Testbed4;

TEST(ErrorPaths4Test, GarbageToEveryPort) {
  Testbed4 bed;
  kcrypto::Prng prng(1);
  for (const auto& addr :
       {Testbed4::kAsAddr, Testbed4::kTgsAddr, Testbed4::kMailAddr, Testbed4::kFileAddr}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(
          bed.world().network().Call(Testbed4::kEveAddr, addr, prng.NextBytes(80)).ok());
    }
  }
}

TEST(ErrorPaths4Test, WrongMessageTypeToAsPort) {
  Testbed4 bed;
  // A well-formed TGS request delivered to the AS port.
  TgsRequest4 req;
  req.service = bed.mail_principal();
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kAsAddr,
                                          Frame4(MsgType::kTgsRequest, req.Encode()));
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kBadFormat);
}

TEST(ErrorPaths4Test, TgsRejectsAuthenticatorClientMismatch) {
  // A valid TGT for alice presented with an authenticator claiming bob —
  // only possible for someone who knows the TGT session key, but the check
  // must exist regardless.
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  const auto& creds = *bed.alice().tgs_credentials();

  Authenticator4 auth;
  auth.client = bed.bob_principal();  // mismatch
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now();

  TgsRequest4 req;
  req.service = bed.mail_principal();
  req.sealed_tgt = creds.sealed_tgt;
  req.sealed_auth = auth.Seal(creds.session_key);
  req.lifetime = ksim::kHour;
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kTgsAddr,
                                          Frame4(MsgType::kTgsRequest, req.Encode()));
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths4Test, TgsRejectsStaleAuthenticator) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  const auto& creds = *bed.alice().tgs_credentials();
  Authenticator4 auth;
  auth.client = bed.alice_principal();
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now() - ksim::kHour;  // stale
  TgsRequest4 req;
  req.service = bed.mail_principal();
  req.sealed_tgt = creds.sealed_tgt;
  req.sealed_auth = auth.Seal(creds.session_key);
  req.lifetime = ksim::kHour;
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kTgsAddr,
                                          Frame4(MsgType::kTgsRequest, req.Encode()));
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kSkew);
}

TEST(ErrorPaths4Test, TgsRejectsWrongSourceAddress) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  const auto& creds = *bed.alice().tgs_credentials();
  Authenticator4 auth;
  auth.client = bed.alice_principal();
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now();
  TgsRequest4 req;
  req.service = bed.mail_principal();
  req.sealed_tgt = creds.sealed_tgt;
  req.sealed_auth = auth.Seal(creds.session_key);
  req.lifetime = ksim::kHour;
  // Honest delivery from eve's own host: the address binding fires.
  auto reply = bed.world().network().Call(Testbed4::kEveAddr, Testbed4::kTgsAddr,
                                          Frame4(MsgType::kTgsRequest, req.Encode()));
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths4Test, ServerRejectsTicketSealedWithWrongKey) {
  Testbed4 bed;
  kcrypto::Prng prng(2);
  Ticket4 forged;
  forged.service = bed.mail_principal();
  forged.client = bed.alice_principal();
  forged.client_addr = Testbed4::kAliceAddr.host;
  forged.issued_at = bed.world().clock().Now();
  forged.lifetime = ksim::kHour;
  forged.session_key = prng.NextDesKey().bytes();

  kcrypto::DesKey session(forged.session_key);
  Authenticator4 auth;
  auth.client = bed.alice_principal();
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now();

  ApRequest4 req;
  req.sealed_ticket = forged.Seal(prng.NextDesKey());  // not the mail key
  req.sealed_auth = auth.Seal(session);
  auto verdict = bed.mail_server().VerifyApRequest(req, Testbed4::kAliceAddr.host);
  EXPECT_EQ(verdict.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths4Test, ForgedTicketWithRealKeyWouldWork_KerckhoffsBaseline) {
  // Sanity check of the threat model: the ONLY thing protecting tickets is
  // the service key. An adversary holding it forges freely — "Kerberos is
  // secure if and only if ... these client and server keys are secret."
  Testbed4 bed;
  kcrypto::Prng prng(3);
  Ticket4 forged;
  forged.service = bed.mail_principal();
  forged.client = krb4::Principal::User("made-up-user", bed.realm);
  forged.client_addr = Testbed4::kEveAddr.host;
  forged.issued_at = bed.world().clock().Now();
  forged.lifetime = ksim::kHour;
  forged.session_key = prng.NextDesKey().bytes();

  kcrypto::DesKey session(forged.session_key);
  Authenticator4 auth;
  auth.client = forged.client;
  auth.client_addr = Testbed4::kEveAddr.host;
  auth.timestamp = bed.world().clock().Now();

  ApRequest4 req;
  req.sealed_ticket = forged.Seal(bed.mail_key());  // the compromised key
  req.sealed_auth = auth.Seal(session);
  auto verdict = bed.mail_server().VerifyApRequest(req, Testbed4::kEveAddr.host);
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.value().client.name, "made-up-user");
}

}  // namespace
}  // namespace krb4
