#include "src/krb4/messages.h"

#include <gtest/gtest.h>

#include "src/crypto/prng.h"

namespace krb4 {
namespace {

kcrypto::Prng MakePrng() { return kcrypto::Prng(77); }

Principal Alice() { return Principal::User("alice", "ATHENA.SIM"); }
Principal Rlogin() { return Principal::Service("rlogin", "myhost", "ATHENA.SIM"); }

TEST(PrincipalTest, ToStringForms) {
  EXPECT_EQ(Alice().ToString(), "alice@ATHENA.SIM");
  EXPECT_EQ(Rlogin().ToString(), "rlogin.myhost@ATHENA.SIM");
  EXPECT_EQ(TgsPrincipal("R").ToString(), "krbtgt.R@R");
}

TEST(PrincipalTest, EncodeDecodeRoundTrip) {
  kenc::Writer w;
  Rlogin().EncodeTo(w);
  kenc::Reader r(w.Peek());
  auto decoded = Principal::DecodeFrom(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == Rlogin());
}

TEST(Seal4Test, RoundTrip) {
  auto prng = MakePrng();
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes plain = kerb::ToBytes("some protocol body");
  kerb::Bytes sealed = Seal4(key, plain);
  EXPECT_EQ(sealed.size() % 8, 0u);
  auto unsealed = Unseal4(key, sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value(), plain);
}

TEST(Seal4Test, WrongKeyDetected) {
  auto prng = MakePrng();
  kcrypto::DesKey key = prng.NextDesKey();
  kcrypto::DesKey other = prng.NextDesKey();
  kerb::Bytes sealed = Seal4(key, kerb::ToBytes("payload"));
  auto unsealed = Unseal4(other, sealed);
  EXPECT_FALSE(unsealed.ok());
  EXPECT_EQ(unsealed.error().code, kerb::ErrorCode::kIntegrity);
}

TEST(Seal4Test, WrongKeyIsDetectable_ThePasswordGuessingPredicate) {
  // This detectability is a double-edged sword: it is exactly what lets an
  // offline attacker confirm a password guess (experiment E4).
  auto prng = MakePrng();
  kcrypto::DesKey real_key = prng.NextDesKey();
  kerb::Bytes sealed = Seal4(real_key, kerb::ToBytes("AS reply body"));
  int hits = 0;
  for (int i = 0; i < 64; ++i) {
    kcrypto::DesKey guess = prng.NextDesKey();
    if (Unseal4(guess, sealed).ok()) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 0);                       // wrong guesses rejected...
  EXPECT_TRUE(Unseal4(real_key, sealed).ok());  // ...right key confirmed
}

TEST(Ticket4Test, EncodeDecodeRoundTrip) {
  auto prng = MakePrng();
  Ticket4 t;
  t.service = Rlogin();
  t.client = Alice();
  t.client_addr = 0x0a000101;
  t.issued_at = 1000 * ksim::kSecond;
  t.lifetime = 8 * ksim::kHour;
  t.session_key = prng.NextDesKey().bytes();

  auto decoded = Ticket4::Decode(t.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().service == t.service);
  EXPECT_TRUE(decoded.value().client == t.client);
  EXPECT_EQ(decoded.value().client_addr, t.client_addr);
  EXPECT_EQ(decoded.value().issued_at, t.issued_at);
  EXPECT_EQ(decoded.value().lifetime, t.lifetime);
  EXPECT_EQ(decoded.value().session_key, t.session_key);
}

TEST(Ticket4Test, SealUnsealWithServiceKey) {
  auto prng = MakePrng();
  kcrypto::DesKey service_key = prng.NextDesKey();
  Ticket4 t;
  t.service = Rlogin();
  t.client = Alice();
  t.session_key = prng.NextDesKey().bytes();
  kerb::Bytes sealed = t.Seal(service_key);
  auto opened = Ticket4::Unseal(service_key, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().session_key, t.session_key);
  EXPECT_FALSE(Ticket4::Unseal(prng.NextDesKey(), sealed).ok());
}

TEST(Ticket4Test, Expiry) {
  Ticket4 t;
  t.issued_at = 100 * ksim::kSecond;
  t.lifetime = 10 * ksim::kSecond;
  EXPECT_FALSE(t.Expired(105 * ksim::kSecond));
  EXPECT_FALSE(t.Expired(110 * ksim::kSecond));
  EXPECT_TRUE(t.Expired(111 * ksim::kSecond));
}

TEST(Authenticator4Test, SealUnsealRoundTrip) {
  auto prng = MakePrng();
  kcrypto::DesKey session = prng.NextDesKey();
  Authenticator4 a;
  a.client = Alice();
  a.client_addr = 42;
  a.timestamp = 555 * ksim::kSecond;
  auto opened = Authenticator4::Unseal(session, a.Seal(session));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().client == a.client);
  EXPECT_EQ(opened.value().timestamp, a.timestamp);
}

TEST(Authenticator4Test, NotConfusableWithTicket) {
  // Structural check: a sealed authenticator must not unseal-and-parse as a
  // ticket under the same key.
  auto prng = MakePrng();
  kcrypto::DesKey key = prng.NextDesKey();
  Authenticator4 a;
  a.client = Alice();
  a.timestamp = 1;
  kerb::Bytes sealed = a.Seal(key);
  auto unsealed = Unseal4(key, sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_FALSE(Ticket4::Decode(unsealed.value()).ok());
}

TEST(AsExchangeTest, RequestAndReplyRoundTrip) {
  auto prng = MakePrng();
  AsRequest4 req;
  req.client = Alice();
  req.service_realm = "ATHENA.SIM";
  req.lifetime = ksim::kHour;
  auto decoded_req = AsRequest4::Decode(req.Encode());
  ASSERT_TRUE(decoded_req.ok());
  EXPECT_TRUE(decoded_req.value().client == Alice());
  EXPECT_EQ(decoded_req.value().lifetime, ksim::kHour);

  AsReplyBody4 body;
  body.tgs_session_key = prng.NextDesKey().bytes();
  body.sealed_tgt = prng.NextBytes(40);
  body.issued_at = 9;
  body.lifetime = 10;
  auto decoded_body = AsReplyBody4::Decode(body.Encode());
  ASSERT_TRUE(decoded_body.ok());
  EXPECT_EQ(decoded_body.value().tgs_session_key, body.tgs_session_key);
  EXPECT_EQ(decoded_body.value().sealed_tgt, body.sealed_tgt);
}

TEST(TgsExchangeTest, RequestAndReplyRoundTrip) {
  auto prng = MakePrng();
  TgsRequest4 req;
  req.service = Rlogin();
  req.sealed_tgt = prng.NextBytes(48);
  req.sealed_auth = prng.NextBytes(24);
  req.lifetime = 2 * ksim::kHour;
  auto decoded = TgsRequest4::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sealed_tgt, req.sealed_tgt);
  EXPECT_EQ(decoded.value().sealed_auth, req.sealed_auth);

  TgsReplyBody4 body;
  body.session_key = prng.NextDesKey().bytes();
  body.sealed_ticket = prng.NextBytes(56);
  auto decoded_body = TgsReplyBody4::Decode(body.Encode());
  ASSERT_TRUE(decoded_body.ok());
  EXPECT_EQ(decoded_body.value().sealed_ticket, body.sealed_ticket);
}

TEST(ApExchangeTest, RequestRoundTripWithAppData) {
  auto prng = MakePrng();
  ApRequest4 req;
  req.sealed_ticket = prng.NextBytes(48);
  req.sealed_auth = prng.NextBytes(24);
  req.want_mutual = true;
  req.app_data = kerb::ToBytes("DELETE /archive");
  auto decoded = ApRequest4::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().want_mutual);
  EXPECT_EQ(decoded.value().app_data, req.app_data);
}

TEST(ApExchangeTest, MutualReplyVerifies) {
  auto prng = MakePrng();
  kcrypto::DesKey session = prng.NextDesKey();
  ksim::Time auth_time = 777 * ksim::kSecond;
  kerb::Bytes reply = MakeApReply4(session, auth_time);
  EXPECT_TRUE(VerifyApReply4(session, reply, auth_time).ok());
  // Wrong time or wrong key fails.
  EXPECT_FALSE(VerifyApReply4(session, reply, auth_time + 1).ok());
  EXPECT_FALSE(VerifyApReply4(prng.NextDesKey(), reply, auth_time).ok());
}

TEST(V4LifetimeTest, UnitRoundTripAndSaturation) {
  EXPECT_EQ(LifetimeToV4Units(0), 0);
  EXPECT_EQ(LifetimeToV4Units(1), 1);  // rounds up to one unit
  EXPECT_EQ(LifetimeToV4Units(5 * ksim::kMinute), 1);
  EXPECT_EQ(LifetimeToV4Units(5 * ksim::kMinute + 1), 2);
  EXPECT_EQ(LifetimeToV4Units(8 * ksim::kHour), 96);
  EXPECT_EQ(LifetimeToV4Units(kV4MaxLifetime), 255);
  // The one-byte cap: nothing representable beyond 21h15m.
  EXPECT_EQ(LifetimeToV4Units(100 * ksim::kHour), 255);
  EXPECT_EQ(V4UnitsToLifetime(255), 21 * ksim::kHour + 15 * ksim::kMinute);
  for (int units = 0; units <= 255; ++units) {
    EXPECT_EQ(LifetimeToV4Units(V4UnitsToLifetime(static_cast<uint8_t>(units))), units);
  }
}

TEST(FramingTest, RoundTripAndVersionCheck) {
  kerb::Bytes body = kerb::ToBytes("body");
  kerb::Bytes framed = Frame4(MsgType::kApRequest, body);
  auto unframed = Unframe4(framed);
  ASSERT_TRUE(unframed.ok());
  EXPECT_EQ(unframed.value().first, MsgType::kApRequest);
  EXPECT_EQ(unframed.value().second, body);

  framed[0] = 5;  // wrong protocol version
  EXPECT_FALSE(Unframe4(framed).ok());
}

}  // namespace
}  // namespace krb4
