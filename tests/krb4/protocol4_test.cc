// End-to-end Kerberos V4 protocol tests over the simulated network,
// using the standard experiment testbed.

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"

namespace krb4 {
namespace {

using kattack::Testbed4;
using kattack::TestbedConfig;

TEST(Protocol4Test, LoginSucceedsWithCorrectPassword) {
  Testbed4 bed;
  EXPECT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(bed.alice().logged_in());
}

TEST(Protocol4Test, LoginFailsWithWrongPassword) {
  Testbed4 bed;
  auto status = bed.alice().Login("not-the-password");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), kerb::ErrorCode::kAuthFailed);
  EXPECT_FALSE(bed.alice().logged_in());
}

TEST(Protocol4Test, ServiceTicketAndApExchange) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto reply = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(kerb::ToString(reply.value()), "You have 3 messages.");
  ASSERT_EQ(bed.mail_log().size(), 1u);
  EXPECT_EQ(bed.mail_log()[0], "mail-check alice@ATHENA.SIM");
}

TEST(Protocol4Test, MutualAuthenticationRoundTrip) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto reply = bed.alice().CallService(Testbed4::kFileAddr, bed.file_principal(), true,
                                       kerb::ToBytes("mount /home/alice"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(kerb::ToString(reply.value()), "ok: mount /home/alice");
}

TEST(Protocol4Test, CannotUseServiceWithoutLogin) {
  Testbed4 bed;
  auto reply = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  EXPECT_FALSE(reply.ok());
}

TEST(Protocol4Test, TicketForWrongServiceRejected) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  // Get a valid AP request for the mail service, then deliver it to the
  // file server: its key cannot unseal the ticket.
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kFileAddr,
                                          request.value());
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(bed.file_server().rejected_requests(), 1u);
}

TEST(Protocol4Test, ExpiredTicketRejected) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword, ksim::kHour).ok());
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal(), ksim::kHour);
  ASSERT_TRUE(creds.ok());
  bed.world().clock().Advance(2 * ksim::kHour);
  // Build the AP request by hand with the stale cached ticket.
  Authenticator4 auth;
  auth.client = bed.alice_principal();
  auth.client_addr = Testbed4::kAliceAddr.host;
  auth.timestamp = bed.world().clock().Now();
  ApRequest4 req;
  req.sealed_ticket = creds.value().sealed_ticket;
  req.sealed_auth = auth.Seal(creds.value().session_key);
  auto verdict = bed.mail_server().VerifyApRequest(req, Testbed4::kAliceAddr.host);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), kerb::ErrorCode::kExpired);
}

TEST(Protocol4Test, ExpiredTgtRejectedByTgs) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword, ksim::kHour).ok());
  bed.world().clock().Advance(3 * ksim::kHour);
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  EXPECT_FALSE(creds.ok());
}

TEST(Protocol4Test, StaleAuthenticatorOutsideSkewRejected) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  // Deliver it six minutes later — outside the five-minute window.
  bed.world().clock().Advance(6 * ksim::kMinute);
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr,
                                          request.value());
  EXPECT_FALSE(reply.ok());
}

TEST(Protocol4Test, AuthenticatorWithinSkewAccepted) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  bed.world().clock().Advance(4 * ksim::kMinute);  // inside the window
  auto reply = bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr,
                                          request.value());
  EXPECT_TRUE(reply.ok());
}

TEST(Protocol4Test, ServiceTicketsAreCachedPerService) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  uint64_t after_first = bed.kdc().tgs_requests_served();
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  EXPECT_EQ(bed.kdc().tgs_requests_served(), after_first);  // cache hit
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.file_principal()).ok());
  EXPECT_EQ(bed.kdc().tgs_requests_served(), after_first + 1);
}

TEST(Protocol4Test, LogoutWipesCredentials) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  bed.alice().Logout();
  EXPECT_FALSE(bed.alice().logged_in());
  EXPECT_TRUE(bed.alice().credentials().empty());
  EXPECT_FALSE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
}

TEST(Protocol4Test, UnknownUserGetsError) {
  Testbed4 bed;
  auto mallory = bed.MakeClient(Principal::User("mallory", bed.realm), Testbed4::kEveAddr);
  EXPECT_EQ(mallory->Login("whatever").code(), kerb::ErrorCode::kNotFound);
}

TEST(Protocol4Test, UnknownServiceGetsError) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto creds =
      bed.alice().GetServiceTicket(Principal::Service("nosuch", "host", bed.realm));
  EXPECT_EQ(creds.code(), kerb::ErrorCode::kNotFound);
}

TEST(Protocol4Test, TwoUsersIndependentSessions) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.bob().Login(Testbed4::kBobPassword).ok());
  ASSERT_TRUE(bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false).ok());
  ASSERT_TRUE(bed.bob().CallService(Testbed4::kMailAddr, bed.mail_principal(), false).ok());
  ASSERT_EQ(bed.mail_log().size(), 2u);
  EXPECT_EQ(bed.mail_log()[0], "mail-check alice@ATHENA.SIM");
  EXPECT_EQ(bed.mail_log()[1], "mail-check bob@ATHENA.SIM");
}

TEST(Protocol4Test, SessionKeysDifferAcrossTicketGrants) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.bob().Login(Testbed4::kBobPassword).ok());
  auto a = bed.alice().GetServiceTicket(bed.mail_principal());
  auto b = bed.bob().GetServiceTicket(bed.mail_principal());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a.value().session_key == b.value().session_key);
}

TEST(Protocol4Test, LifetimesAreQuantizedToV4Units) {
  Testbed4 bed;
  // Ask for an un-round lifetime; the grant snaps to 5-minute units.
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword, 47 * ksim::kMinute).ok());
  EXPECT_EQ(bed.alice().tgs_credentials()->lifetime % krb4::kV4LifetimeUnit, 0);
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal(), 23 * ksim::kMinute);
  ASSERT_TRUE(creds.ok());
  EXPECT_EQ(creds.value().lifetime % krb4::kV4LifetimeUnit, 0);
  EXPECT_LE(creds.value().lifetime, 23 * ksim::kMinute);  // TGS rounds down
}

TEST(Protocol4Test, NoTicketOutlivesTheOneByteCap) {
  TestbedConfig config;
  config.seed = 77;
  Testbed4 bed(config);
  // Even with a permissive KDC maximum, V4's encoding caps at 21h15m.
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword, 100 * ksim::kHour).ok());
  EXPECT_LE(bed.alice().tgs_credentials()->lifetime, krb4::kV4MaxLifetime);
}

TEST(Protocol4Test, ServiceTicketCappedByTgtRemainingLife) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword, 2 * ksim::kHour).ok());
  bed.world().clock().Advance(90 * ksim::kMinute);
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal(), 8 * ksim::kHour);
  ASSERT_TRUE(creds.ok());
  EXPECT_LE(creds.value().lifetime, 30 * ksim::kMinute);
}

TEST(Protocol4Test, KdcCountsRequests) {
  Testbed4 bed;
  EXPECT_EQ(bed.kdc().as_requests_served(), 0u);
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_EQ(bed.kdc().as_requests_served(), 1u);
}

TEST(Protocol4Test, ChallengeResponseModeWorks) {
  Testbed4 bed;
  krb4::AppServerOptions options = bed.mail_server().options();
  options.challenge_response = true;
  bed.mail_server().set_options(options);
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto reply = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(kerb::ToString(reply.value()), "You have 3 messages.");
  EXPECT_EQ(bed.mail_server().outstanding_challenges(), 0u);  // consumed
}

TEST(Protocol4Test, ChallengeResponseDefeatsReplayedExchange) {
  Testbed4 bed;
  krb4::AppServerOptions options = bed.mail_server().options();
  options.challenge_response = true;
  bed.mail_server().set_options(options);
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());

  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  ASSERT_TRUE(
      bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false).ok());
  bed.world().network().SetAdversary(nullptr);
  uint64_t accepted = bed.mail_server().accepted_requests();

  // Replaying BOTH recorded legs (challenge request + answered request)
  // yields nothing: the answered nonce is consumed, and the new challenge
  // issued to the replayer is one it cannot answer without the key.
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == Testbed4::kMailAddr) {
      (void)bed.world().network().Call(Testbed4::kAliceAddr, Testbed4::kMailAddr,
                                       exchange.request.payload);
    }
  }
  EXPECT_EQ(bed.mail_server().accepted_requests(), accepted);
}

TEST(Protocol4Test, ChallengeResponseIgnoresServerClockSkew) {
  // The whole point: the server's view of time no longer matters to the AP
  // exchange. (A timestamp-mode server two hours off rejects everyone; a
  // challenge/response server doesn't care.)
  Testbed4 bed;
  bed.mail_server().clock().SetOffset(-2 * ksim::kHour);  // server clock is way off
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());

  // Timestamp mode: the skewed server rejects a perfectly fresh request.
  auto rejected = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  EXPECT_FALSE(rejected.ok());

  // Challenge/response mode on the same skewed server: works.
  krb4::AppServerOptions options = bed.mail_server().options();
  options.challenge_response = true;
  bed.mail_server().set_options(options);
  auto reply = bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false);
  EXPECT_TRUE(reply.ok()) << "challenge/response must not depend on clock agreement";
}

TEST(Protocol4Test, ReplayCachePopulatesWhenEnabled) {
  TestbedConfig config;
  config.server_replay_cache = true;
  Testbed4 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), false).ok());
  EXPECT_EQ(bed.mail_server().replay_cache_size(), 1u);
}

}  // namespace
}  // namespace krb4
