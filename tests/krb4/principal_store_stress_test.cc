// PrincipalStore at realm scale: a million entries, rehash growth, and
// Erase-heavy churn. Linear probing has exactly two failure modes — a load
// factor allowed to creep toward 1, and deletion holes that break probe
// chains — and these tests measure both directly via MaxProbeLength and a
// reference-model comparison. The full population defaults to one million;
// set KERB_STRESS_POP to scale it (the invariants are size-independent).

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/krb4/principal.h"
#include "src/krb4/principal_store.h"

namespace {

using krb4::Principal;
using krb4::PrincipalKind;
using krb4::PrincipalStore;

constexpr char kRealm[] = "ATHENA.MIT.EDU";

size_t StressPopulation() {
  if (const char* env = std::getenv("KERB_STRESS_POP")) {
    const long v = std::atol(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 1000000;
}

Principal UserAt(size_t i) {
  return Principal::User("u" + std::to_string(i), kRealm);
}

// With capacity reserved up front the table never rehashes and the load
// factor stays below 3/4, so probe clusters stay short even at a million
// entries. A probe-length blowup here is the capacity cliff this test pins.
TEST(PrincipalStoreStressTest, MillionEntriesReservedStaysFlat) {
  const size_t n = StressPopulation();
  kcrypto::Prng prng(0xbead);
  PrincipalStore store;
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.Upsert(UserAt(i), prng.NextDesKey(), PrincipalKind::kUser);
  }
  ASSERT_EQ(store.size(), n);

  // Spot-check membership across the whole index range.
  for (size_t i = 0; i < n; i += n / 1000 + 1) {
    EXPECT_TRUE(store.Contains(UserAt(i))) << i;
  }
  EXPECT_FALSE(store.Contains(UserAt(n)));

  // Load factor < 3/4 keeps expected probe length O(1); 64 leaves generous
  // slack over the statistical worst cluster at this size.
  EXPECT_LT(store.MaxProbeLength(), 64u) << "probe cluster cliff";
}

// The no-Reserve path grows by doubling. Growth must preserve every entry
// and land at the same probe-quality plateau as the pre-sized table.
TEST(PrincipalStoreStressTest, IncrementalGrowthMatchesReservedQuality) {
  const size_t n = std::min<size_t>(StressPopulation(), 200000);
  kcrypto::Prng prng(0x94a55);
  PrincipalStore grown;  // no Reserve: pays every doubling rehash
  PrincipalStore reserved;
  reserved.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const kcrypto::DesKey key = prng.NextDesKey();
    grown.Upsert(UserAt(i), key, PrincipalKind::kUser);
    reserved.Upsert(UserAt(i), key, PrincipalKind::kUser);
  }
  ASSERT_EQ(grown.size(), n);
  for (size_t i = 0; i < n; i += 997) {
    EXPECT_TRUE(grown.Contains(UserAt(i))) << i;
  }
  // Rehash re-probes from scratch, so the grown table must not be
  // meaningfully worse than the reserved one.
  EXPECT_LT(grown.MaxProbeLength(), 64u);
}

// Erase-heavy churn: linear probing without backward-shift compaction
// either breaks probe chains (lost entries) or accretes tombstones
// (unbounded probe growth). Run a randomized insert/erase/lookup walk
// against a std::unordered_map reference model and then re-verify the
// final state and probe length.
TEST(PrincipalStoreStressTest, EraseChurnMatchesReferenceModel) {
  const size_t universe = std::min<size_t>(StressPopulation() / 4, 50000);
  const size_t steps = universe * 8;
  kcrypto::Prng prng(0xc4052);
  PrincipalStore store;
  store.Reserve(universe);
  std::unordered_map<size_t, uint8_t> model;  // index → kind tag

  for (size_t step = 0; step < steps; ++step) {
    const size_t i = prng.NextBelow(universe);
    switch (prng.NextBelow(4)) {
      case 0:
      case 1: {  // upsert (2x weight keeps the table ~2/3 populated)
        const auto kind =
            (i & 1) != 0 ? PrincipalKind::kService : PrincipalKind::kUser;
        store.Upsert(UserAt(i), prng.NextDesKey(), kind);
        model[i] = static_cast<uint8_t>(kind);
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(store.Erase(UserAt(i)), model.erase(i) > 0) << "step " << step;
        break;
      }
      default: {  // lookup
        PrincipalKind kind;
        const bool found = store.Lookup(UserAt(i), nullptr, &kind);
        const auto it = model.find(i);
        ASSERT_EQ(found, it != model.end()) << "step " << step << " index " << i;
        if (found) {
          ASSERT_EQ(static_cast<uint8_t>(kind), it->second);
        }
        break;
      }
    }
  }

  ASSERT_EQ(store.size(), model.size());
  for (const auto& [i, kind] : model) {
    PrincipalKind got;
    ASSERT_TRUE(store.Lookup(UserAt(i), nullptr, &got)) << i;
    EXPECT_EQ(static_cast<uint8_t>(got), kind);
  }
  // After heavy churn the backward-shift discipline must have kept clusters
  // compact — no tombstone accretion.
  EXPECT_LT(store.MaxProbeLength(), 64u);
}

// Erasing every other entry then re-verifying the survivors exercises the
// backward-shift path on long runs specifically.
TEST(PrincipalStoreStressTest, AlternatingEraseKeepsSurvivorsReachable) {
  const size_t n = std::min<size_t>(StressPopulation() / 10, 100000);
  kcrypto::Prng prng(0x5117);
  PrincipalStore store;
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.Upsert(UserAt(i), prng.NextDesKey(), PrincipalKind::kUser);
  }
  for (size_t i = 0; i < n; i += 2) {
    ASSERT_TRUE(store.Erase(UserAt(i)));
  }
  ASSERT_EQ(store.size(), n / 2);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(store.Contains(UserAt(i)), (i % 2) == 1) << i;
  }
  EXPECT_LT(store.MaxProbeLength(), 64u);
}

// ForEach must visit each live entry exactly once — the cluster slice
// extraction path depends on it.
TEST(PrincipalStoreStressTest, ForEachVisitsEveryEntryOnce) {
  const size_t n = 10000;
  kcrypto::Prng prng(0xf0ea);
  PrincipalStore store;
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.Upsert(UserAt(i), prng.NextDesKey(), PrincipalKind::kUser);
  }
  std::vector<uint8_t> seen(n, 0);
  store.ForEach([&](const Principal& p, const krb4::PrincipalEntry& entry) {
    (void)entry;
    const size_t i = std::stoul(p.name.substr(1));
    ASSERT_LT(i, n);
    seen[i]++;
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[i], 1u) << i;
  }
}

}  // namespace
