#include "src/krb4/krbpriv.h"

#include <gtest/gtest.h>

#include "src/crypto/prng.h"

namespace krb4 {
namespace {

TEST(KrbPriv4Test, SealUnsealRoundTrip) {
  kcrypto::Prng prng(5);
  kcrypto::DesKey key = prng.NextDesKey();
  PrivMessage4 msg;
  msg.data = kerb::ToBytes("secret file contents");
  msg.timestamp = 123 * ksim::kSecond;
  msg.sender_addr = 0x0a000001;
  msg.direction = 0;

  auto opened = PrivMessage4::Unseal(key, msg.Seal(key));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().data, msg.data);
  EXPECT_EQ(opened.value().timestamp, msg.timestamp);
  EXPECT_EQ(opened.value().sender_addr, msg.sender_addr);
  EXPECT_EQ(opened.value().direction, msg.direction);
}

TEST(KrbPriv4Test, WrongKeyRejected) {
  kcrypto::Prng prng(6);
  kcrypto::DesKey key = prng.NextDesKey();
  PrivMessage4 msg;
  msg.data = kerb::ToBytes("payload");
  kerb::Bytes sealed = msg.Seal(key);
  EXPECT_FALSE(PrivMessage4::Unseal(prng.NextDesKey(), sealed).ok());
}

TEST(KrbPriv4Test, LeadingLengthDefeatsPrefixTruncation) {
  // The paper: "the leading length(DATA) field disrupts the prefix-based
  // attack." Truncating V4 KRB_PRIV ciphertext never yields a shorter valid
  // message.
  kcrypto::Prng prng(7);
  kcrypto::DesKey key = prng.NextDesKey();
  PrivMessage4 msg;
  msg.data = prng.NextBytes(64);
  msg.timestamp = 1;
  kerb::Bytes sealed = msg.Seal(key);
  for (size_t blocks = 1; blocks * 8 < sealed.size(); ++blocks) {
    kerb::Bytes truncated(sealed.begin(), sealed.begin() + 8 * blocks);
    EXPECT_FALSE(PrivMessage4::Unseal(key, truncated).ok()) << "blocks=" << blocks;
  }
}

TEST(KrbPriv4Test, EmptyDataAllowed) {
  kcrypto::Prng prng(8);
  kcrypto::DesKey key = prng.NextDesKey();
  PrivMessage4 msg;
  msg.direction = 1;
  auto opened = PrivMessage4::Unseal(key, msg.Seal(key));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().data.empty());
  EXPECT_EQ(opened.value().direction, 1);
}

TEST(KrbPriv4Test, BlockAlignmentEnforced) {
  kcrypto::Prng prng(9);
  kcrypto::DesKey key = prng.NextDesKey();
  EXPECT_FALSE(PrivMessage4::Unseal(key, kerb::Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(PrivMessage4::Unseal(key, kerb::Bytes{}).ok());
}

TEST(KrbPriv4Test, TamperedCiphertextDetectedByStructure) {
  kcrypto::Prng prng(10);
  kcrypto::DesKey key = prng.NextDesKey();
  PrivMessage4 msg;
  msg.data = prng.NextBytes(16);
  kerb::Bytes sealed = msg.Seal(key);
  // Flip a bit in the first block: PCBC garbles everything after, so the
  // length field and padding checks fail.
  sealed[0] ^= 0x80;
  EXPECT_FALSE(PrivMessage4::Unseal(key, sealed).ok());
}

}  // namespace
}  // namespace krb4
