// Message-encoding ambiguity: the paper's §Message Encoding and
// Cut-and-Paste Attacks — "a ticket should never be interpretable as an
// authenticator, or vice versa. Such an analysis depends on redundancy in
// the pre-encryption binary encodings... This repetitive and often
// intricate analysis would be unnecessary if standard encodings were used."
//
// Demonstrated here concretely: two *different* V4 reply structures share a
// byte layout and cross-decode silently, while the V5 tagged encoding
// rejects every cross-interpretation by type.

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/krb4/messages.h"
#include "src/krb5/messages.h"

namespace {

TEST(TypeConfusionTest, V4AsAndTgsReplyBodiesAreIndistinguishable) {
  // AsReplyBody4 and TgsReplyBody4 have the same field layout (key, blob,
  // times). A V4 decoder cannot tell which one it holds — the ambiguity a
  // type tag would remove.
  kcrypto::Prng prng(1);
  krb4::TgsReplyBody4 tgs_body;
  tgs_body.session_key = prng.NextDesKey().bytes();
  tgs_body.sealed_ticket = prng.NextBytes(48);
  tgs_body.issued_at = 100;
  tgs_body.lifetime = 200;

  auto as_view = krb4::AsReplyBody4::Decode(tgs_body.Encode());
  ASSERT_TRUE(as_view.ok()) << "V4 happily decodes a TGS body as an AS body";
  EXPECT_EQ(as_view.value().tgs_session_key, tgs_body.session_key);
  EXPECT_EQ(as_view.value().sealed_tgt, tgs_body.sealed_ticket);
}

TEST(TypeConfusionTest, V5TypeTagsRejectEveryCrossInterpretation) {
  kcrypto::Prng prng(2);
  krb5::EncTgsRepPart5 part;
  part.session_key = prng.NextDesKey().bytes();
  part.nonce = 7;
  kenc::TlvMessage tlv = part.ToTlv();
  // The same bytes refuse to parse as anything but what they are.
  EXPECT_TRUE(krb5::EncTgsRepPart5::FromTlv(tlv).ok());
  EXPECT_FALSE(krb5::EncAsRepPart5::FromTlv(tlv).ok());
  EXPECT_FALSE(krb5::Ticket5::FromTlv(tlv).ok());
  EXPECT_FALSE(krb5::Authenticator5::FromTlv(tlv).ok());
  EXPECT_FALSE(krb5::ApRequest5::FromTlv(tlv).ok());
  EXPECT_FALSE(krb5::KrbError5::FromTlv(tlv).ok());
}

TEST(TypeConfusionTest, V5SealedBlobsCarryTypeThroughEncryption) {
  // "All encrypted data is labeled with the message type prior to
  // encryption" — the check survives the encryption layer.
  kcrypto::Prng prng(3);
  kcrypto::DesKey key = prng.NextDesKey();
  krb5::EncLayerConfig enc;
  krb5::Ticket5 ticket;
  ticket.service = krb4::Principal::Service("nfs", "fs", "R");
  ticket.client = krb4::Principal::User("alice", "R");
  ticket.session_key = prng.NextDesKey().bytes();
  kerb::Bytes sealed = ticket.Seal(key, enc, prng);

  EXPECT_TRUE(krb5::Ticket5::Unseal(key, sealed, enc).ok());
  EXPECT_FALSE(krb5::Authenticator5::Unseal(key, sealed, enc).ok());
  EXPECT_FALSE(UnsealTlv(key, krb5::kMsgEncAsRepPart, sealed, enc).ok());
  EXPECT_FALSE(UnsealTlv(key, krb5::kMsgPriv, sealed, enc).ok());
}

TEST(TypeConfusionTest, V4SealedAuthenticatorIsNotATicketOnlyByLuck) {
  // The V4 structures differ in field count, so the magic+length check plus
  // field parsing happens to reject this pair — but it is structural luck,
  // not a type system. We record the current behaviour.
  kcrypto::Prng prng(4);
  kcrypto::DesKey key = prng.NextDesKey();
  krb4::Authenticator4 auth;
  auth.client = krb4::Principal::User("alice", "R");
  auth.timestamp = 1;
  auto unsealed = krb4::Unseal4(key, auth.Seal(key));
  ASSERT_TRUE(unsealed.ok());
  EXPECT_FALSE(krb4::Ticket4::Decode(unsealed.value()).ok());
}

}  // namespace
