// Smoke tests for the kobs core: zero-overhead-when-disabled, the
// thread-merge determinism contract, and the aggregation API.
//
// The disabled-mode budget here is deliberately generous (an absolute
// bound, not a cross-binary comparison) so the test never flakes on a busy
// machine; the real ±3% throughput comparison is measured and recorded by
// bench_b13_obs into BENCH_PR4.json.

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/kobs.h"

namespace {

TEST(ObsOverheadTest, DisabledEmitStaysWithinNoiseBudget) {
  ASSERT_FALSE(kobs::Enabled());
  constexpr int kIters = 2'000'000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, i, static_cast<uint64_t>(i), 0);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  double ns_per_emit =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      kIters;
  // One acquire load and a branch: single-digit nanoseconds on any machine
  // this runs on. 100 ns leaves two orders of magnitude for noise.
  EXPECT_LT(ns_per_emit, 100.0) << "disabled Emit costs " << ns_per_emit << " ns";
}

TEST(ObsOverheadTest, DisabledEmitsRecordNothing) {
  ASSERT_FALSE(kobs::Enabled());
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, 1, 2, 3);
  kobs::EmitNow(kobs::kSrcSeal4, kobs::Ev::kSeal, 64, 0);
  kobs::Trace trace;  // never installed
  EXPECT_EQ(trace.events().size(), 0u);
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, 1, 2, 3);
  EXPECT_EQ(trace.events().size(), 0u);
}

TEST(ObsOverheadTest, MergedStreamIsIndependentOfThreadInterleaving) {
  // A fixed global multiset of events is partitioned round-robin across the
  // workers, so every thread count emits exactly the same multiset; the
  // merged stream (and digest) must not depend on who emitted what.
  constexpr int kTotal = 2000;
  auto emit_all = [](unsigned thread_count) {
    kobs::ScopedTrace trace;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < thread_count; ++t) {
      workers.emplace_back([t, thread_count] {
        for (int i = static_cast<int>(t); i < kTotal; i += static_cast<int>(thread_count)) {
          kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcIssue, i % 97, 0, 100 + i % 7);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    EXPECT_EQ(trace->events().size(), static_cast<size_t>(kTotal));
    return trace.trace().digest();
  };
  uint64_t solo = emit_all(1);
  EXPECT_NE(solo, 0u);
  EXPECT_EQ(emit_all(4), solo);
  EXPECT_EQ(emit_all(7), solo);
}

TEST(ObsOverheadTest, CountersSumsAndHistogramsAggregate) {
  kobs::ScopedTrace trace;
  kobs::Emit(kobs::kSrcSeal5, kobs::Ev::kSeal, 10, 64, 1);
  kobs::Emit(kobs::kSrcSeal5, kobs::Ev::kSeal, 11, 128, 1);
  kobs::Emit(kobs::kSrcSeal5, kobs::Ev::kSeal, 12, 0, 1);
  kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcIssue, 13, 0, 200);

  EXPECT_EQ(trace->Count(kobs::Ev::kSeal), 3u);
  EXPECT_EQ(trace->SumA(kobs::Ev::kSeal), 192u);
  EXPECT_EQ(trace->CountA(kobs::Ev::kSeal, 128), 1u);
  auto hist = trace->HistogramA(kobs::Ev::kSeal);
  ASSERT_EQ(hist.size(), kobs::Trace::kHistBuckets);
  EXPECT_EQ(hist[0], 1u);  // a == 0
  EXPECT_EQ(hist[7], 1u);  // 64 ∈ [2^6, 2^7)
  EXPECT_EQ(hist[8], 1u);  // 128 ∈ [2^7, 2^8)

  // Counter-only kinds aggregate but stay out of the digest.
  EXPECT_FALSE(kobs::DigestStable(kobs::Ev::kSeal));
  EXPECT_TRUE(kobs::DigestStable(kobs::Ev::kKdcIssue));
  kobs::ScopedTrace reference;
  kobs::Emit(kobs::kSrcKdc5, kobs::Ev::kKdcIssue, 13, 0, 200);
  EXPECT_EQ(reference->digest(), trace->digest());
}

TEST(ObsOverheadTest, ClearDiscardsEventsAndKeepsRecording) {
  kobs::ScopedTrace trace;
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, 1, 2, 3);
  EXPECT_EQ(trace->events().size(), 1u);
  trace->Clear();
  EXPECT_EQ(trace->events().size(), 0u);
  kobs::Emit(kobs::kSrcNet, kobs::Ev::kNetCall, 4, 5, 6);
  EXPECT_EQ(trace->events().size(), 1u);
  EXPECT_EQ(trace->events()[0].t, 4);
}

TEST(ObsOverheadTest, EveryEventKindHasANameAndAClass) {
  for (size_t k = 0; k < kobs::kEvCount; ++k) {
    auto kind = static_cast<kobs::Ev>(k);
    ASSERT_NE(kobs::EvName(kind), nullptr);
    EXPECT_STRNE(kobs::EvName(kind), "invalid");
    // DigestStable must be callable for every kind (the classification
    // table and the enum must stay the same length).
    (void)kobs::DigestStable(kind);
  }
}

TEST(ObsOverheadTest, NdjsonContainsEventsCountersAndTrailer) {
  kobs::ScopedTrace trace;
  kobs::Emit(kobs::kSrcXchg, kobs::Ev::kXchgAttempt, 42, 7, 0);
  std::ostringstream os;
  trace->WriteNdjson(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ev\":\"xchg_attempt\""), std::string::npos);
  EXPECT_NE(out.find("\"counter\":\"xchg_attempt\""), std::string::npos);
  EXPECT_NE(out.find("\"histogram\":\"xchg_attempt\""), std::string::npos);
  EXPECT_NE(out.find("{\"trace\":{\"events\":1,"), std::string::npos);
}

}  // namespace
