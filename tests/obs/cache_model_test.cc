// Property-based tests: the concurrent caches against naive reference
// models.
//
// ShardedReplayCache is checked for exact agreement with a plain ordered
// set over in-window presentations (the only inputs it is specified for —
// upstream freshness checks reject out-of-window timestamps first). The
// security property is asymmetric: a false *positive* (honest request
// rejected) is an availability bug, a false *negative* (replay admitted)
// breaks the paper's "cache all live authenticators" defense, so the replay
// side is additionally re-verified wholesale after the random walk.
//
// KdcReplyCache is direct-mapped and allowed to evict, so the model check
// is one-sided: a miss is always acceptable, but a hit must return exactly
// the reply the model stored for that (source, request) pair within the
// freshness window — never another client's reply, never a stale one.
//
// PrincipalStore is checked for exact agreement with a plain ordered map
// across a mixed walk of registrations, whole-record (ring) upserts, and
// erases. Erase is the structurally interesting op: linear probing cannot
// leave holes, so removal backward-shifts the rest of the probe cluster —
// a small principal pool keeps the clusters dense and the shift path hot.

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/krb4/kdccore.h"
#include "src/krb4/principal_store.h"
#include "src/sim/clock.h"
#include "src/sim/replaycache.h"

namespace {

using ReplayEntry = std::tuple<ksim::Time, std::string, uint32_t>;

TEST(CacheModelTest, ShardedReplayCacheMatchesNaiveModelExactly) {
  constexpr int kOps = 20000;
  const ksim::Duration window = ksim::kMinute;
  kcrypto::Prng prng(0x5eed'cafe);
  ksim::ShardedReplayCache cache;
  std::set<ReplayEntry> model;
  ksim::Time now = 10 * ksim::kMinute;

  for (int i = 0; i < kOps; ++i) {
    if (prng.NextBelow(8) == 0) {
      now += static_cast<ksim::Time>(prng.NextBelow(static_cast<uint64_t>(window / 4)));
    }
    std::string identity = "client" + std::to_string(prng.NextBelow(32)) + "@mail";
    uint32_t addr = 0x0a000000u + static_cast<uint32_t>(prng.NextBelow(4));
    // In-window timestamps only: stamp ∈ (now - window, now].
    ksim::Time stamp =
        now - static_cast<ksim::Time>(prng.NextBelow(static_cast<uint64_t>(window)));

    bool admitted = cache.CheckAndInsert(identity, addr, stamp, now, window);
    std::erase_if(model, [&](const ReplayEntry& e) { return std::get<0>(e) < now - window; });
    bool expected = model.emplace(stamp, identity, addr).second;
    ASSERT_EQ(admitted, expected)
        << "op " << i << ": cache and model disagree for (" << identity << ", " << addr
        << ", " << stamp << ") at now=" << now;
  }

  // No false-negative replay admission, wholesale: every tuple the model
  // still holds live is a replay and must be refused.
  for (const ReplayEntry& e : model) {
    EXPECT_FALSE(cache.CheckAndInsert(std::get<1>(e), std::get<2>(e), std::get<0>(e), now,
                                      window))
        << "live tuple re-admitted: (" << std::get<1>(e) << ", " << std::get<2>(e) << ", "
        << std::get<0>(e) << ")";
  }
}

TEST(CacheModelTest, ShardedReplayCacheNeverAdmitsConcurrentDuplicates) {
  // Sequential re-presentation at varying `now` values inside the window:
  // once admitted, a tuple stays a replay for as long as it is live.
  const ksim::Duration window = ksim::kMinute;
  ksim::ShardedReplayCache cache;
  const std::string identity = "alice@mail";
  const ksim::Time stamp = 5 * ksim::kMinute;
  ASSERT_TRUE(cache.CheckAndInsert(identity, 1, stamp, stamp, window));
  for (ksim::Time now = stamp; now <= stamp + window; now += window / 16) {
    EXPECT_FALSE(cache.CheckAndInsert(identity, 1, stamp, now, window)) << "now=" << now;
  }
}

struct ReplyKey {
  uint32_t host;
  uint16_t port;
  kerb::Bytes request;
  bool operator<(const ReplyKey& o) const {
    return std::tie(host, port, request) < std::tie(o.host, o.port, o.request);
  }
};

struct ReplyValue {
  kerb::Bytes reply;
  ksim::Time stored_at = 0;
};

TEST(CacheModelTest, KdcReplyCacheHitsAlwaysMatchTheModel) {
  constexpr int kOps = 20000;
  const ksim::Duration window = 30 * ksim::kSecond;
  kcrypto::Prng prng(0x4b5e'99d1);
  krb4::KdcReplyCache cache;
  std::map<ReplyKey, ReplyValue> model;
  ksim::Time now = 0;

  // A small pool of distinct requests and sources maximises collisions in
  // the direct-mapped table — the interesting regime.
  std::vector<kerb::Bytes> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(prng.NextBytes(16 + prng.NextBelow(48)));
  }

  uint64_t hits = 0;
  for (int i = 0; i < kOps; ++i) {
    if (prng.NextBelow(4) == 0) {
      now += static_cast<ksim::Time>(prng.NextBelow(static_cast<uint64_t>(window / 2)));
    }
    ksim::NetAddress src{0x0a000100u + static_cast<uint32_t>(prng.NextBelow(4)),
                         static_cast<uint16_t>(1000 + prng.NextBelow(3))};
    const kerb::Bytes& request = requests[prng.NextBelow(requests.size())];
    ReplyKey key{src.host, src.port, request};

    const kerb::Bytes* got = cache.Get(src, request, now, window);
    if (got != nullptr) {
      ++hits;
      auto it = model.find(key);
      ASSERT_NE(it, model.end()) << "op " << i << ": hit for a never-stored request";
      ASSERT_LE(now - it->second.stored_at, window)
          << "op " << i << ": hit served a stale reply";
      ASSERT_EQ(*got, it->second.reply) << "op " << i << ": hit served the wrong reply";
    }

    if (got == nullptr) {
      // Miss path: the server mints a fresh reply and remembers it.
      kerb::Bytes reply = prng.NextBytes(32 + prng.NextBelow(64));
      cache.Put(src, request, reply, now);
      model[key] = ReplyValue{reply, now};
    }
  }
  // The pools are small, so the walk must actually exercise the hit path.
  EXPECT_GT(hits, 0u);
}

bool SameEntry(const krb4::PrincipalEntry& a, const krb4::PrincipalEntry& b) {
  if (a.kind != b.kind || a.max_life != b.max_life || a.max_renew != b.max_renew ||
      a.keys.size() != b.keys.size()) {
    return false;
  }
  for (size_t i = 0; i < a.keys.size(); ++i) {
    if (a.keys[i].kvno != b.keys[i].kvno || a.keys[i].not_after != b.keys[i].not_after ||
        !(a.keys[i].key == b.keys[i].key)) {
      return false;
    }
  }
  return true;
}

TEST(CacheModelTest, PrincipalStoreMatchesNaiveModelWithEraseInTheMix) {
  constexpr int kOps = 20000;
  kcrypto::Prng prng(0xe4a5'e001);
  krb4::PrincipalStore store;
  std::map<krb4::Principal, krb4::PrincipalEntry> model;

  // A small pool keeps the open-addressing table's probe clusters dense, so
  // Erase's backward shift constantly rearranges live entries.
  std::vector<krb4::Principal> pool;
  for (int i = 0; i < 48; ++i) {
    pool.push_back(krb4::Principal{"p" + std::to_string(i),
                                   i % 3 == 0 ? "svc" : "", "ATHENA.SIM"});
  }

  auto check_one = [&](const krb4::Principal& p, int op) {
    krb4::PrincipalEntry got;
    const bool found = store.LookupEntry(p, &got);
    auto it = model.find(p);
    ASSERT_EQ(found, it != model.end()) << "op " << op << ": presence disagrees for "
                                        << p.ToString();
    if (found) {
      ASSERT_TRUE(SameEntry(got, it->second))
          << "op " << op << ": record disagrees for " << p.ToString();
    }
    // The narrow lookup must agree with the wide one: current key and kind.
    kcrypto::DesKey key;
    krb4::PrincipalKind kind;
    ASSERT_EQ(store.Lookup(p, &key, &kind), found) << "op " << op;
    if (found) {
      ASSERT_TRUE(key == it->second.keys.front().key) << "op " << op;
      ASSERT_EQ(kind, it->second.kind) << "op " << op;
    }
  };

  for (int i = 0; i < kOps; ++i) {
    const krb4::Principal& p = pool[prng.NextBelow(pool.size())];
    switch (prng.NextBelow(6)) {
      case 0: {  // registration: fresh single-version ring at kvno 1
        const kcrypto::DesKey key = prng.NextDesKey();
        const krb4::PrincipalKind kind = prng.NextBelow(2) == 0
                                             ? krb4::PrincipalKind::kUser
                                             : krb4::PrincipalKind::kService;
        store.Upsert(p, key, kind);
        krb4::PrincipalEntry e;
        e.kind = kind;
        e.keys.push_back(krb4::KeyVersion{1, key, 0});
        model[p] = e;
        break;
      }
      case 1: {  // rotation-style whole-record upsert, ring of 1..kRingCap
        krb4::PrincipalEntry e;
        e.kind = prng.NextBelow(2) == 0 ? krb4::PrincipalKind::kUser
                                        : krb4::PrincipalKind::kService;
        e.max_life = static_cast<ksim::Duration>(prng.NextBelow(8)) * ksim::kHour;
        e.max_renew = static_cast<ksim::Duration>(prng.NextBelow(8)) * ksim::kHour;
        const uint32_t top =
            2 + static_cast<uint32_t>(prng.NextBelow(30));
        const size_t depth = 1 + prng.NextBelow(krb4::PrincipalEntry::kRingCap);
        for (size_t v = 0; v < depth && v < top; ++v) {
          e.keys.push_back(krb4::KeyVersion{
              top - static_cast<uint32_t>(v), prng.NextDesKey(),
              v == 0 ? 0 : static_cast<ksim::Time>(prng.NextBelow(1000)) * ksim::kMinute});
        }
        ASSERT_TRUE(store.UpsertEntry(p, e)) << "op " << i;
        model[p] = e;
        break;
      }
      case 2: {  // an empty ring is rejected and must change nothing
        ASSERT_FALSE(store.UpsertEntry(p, krb4::PrincipalEntry{})) << "op " << i;
        break;
      }
      case 3:
      case 4: {  // erase: agreement on the return AND on the survivors
        ASSERT_EQ(store.Erase(p), model.erase(p) == 1) << "op " << i << " " << p.ToString();
        break;
      }
      default:
        check_one(p, i);
        break;
    }
    // Spot-check an unrelated principal each op: erase's backward shift
    // must never lose or duplicate a neighbour in the same probe cluster.
    check_one(pool[prng.NextBelow(pool.size())], i);
  }

  // Wholesale sweep: every pool principal agrees in both directions.
  for (const krb4::Principal& p : pool) {
    check_one(p, kOps);
  }
}

}  // namespace
