// Cluster metrics through kobs: the load/chaos harness reports re-derived
// from trace counters, proving the cluster events measure what the harness
// claims — and that the trace digest over a clustered run is rerun-stable.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/obs/kobs.h"
#include "src/sim/world.h"

namespace {

using kcluster::ClusterConfig;
using kcluster::ClusterController;
using kcluster::ClusterLoadConfig;
using kcluster::ClusterLoadReport;
using kcluster::Population;
using kcluster::PopulationConfig;
using kcluster::Protocol;
using kcluster::RingMember;

struct Fixture {
  ksim::World world;
  Population population;
  ClusterController controller;

  Fixture()
      : world(0xebb5),
        population(SmallPopulation()),
        controller(&world, ClusterConfig{}) {
    population.Install(controller.logical_db());
    controller.Bootstrap(
        {{1, 0x0a000010}, {2, 0x0a000011}, {3, 0x0a000012}, {4, 0x0a000013}});
  }

  static PopulationConfig SmallPopulation() {
    PopulationConfig pc;
    pc.users = 800;
    pc.services = 8;
    return pc;
  }
};

TEST(ClusterMetricsTest, LoadReportIsReDerivableFromCounters) {
  kobs::ScopedTrace trace;
  Fixture fx;
  ClusterLoadConfig lc;
  lc.ops = 120;
  lc.client_pool = 8;
  lc.cold_clients = 2;
  const ClusterLoadReport report =
      RunClusterLoad(fx.world, fx.controller, fx.population, lc);
  ASSERT_EQ(report.ok, report.attempted);

  // One kClusterOp event per attempted operation, with b distinguishing
  // login-only ops from login+TGS pairs.
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterOp), report.attempted);
  uint64_t login_ops = 0;
  uint64_t tgs_ops = 0;
  for (const kobs::Event& ev : trace->events()) {
    if (ev.kind != kobs::Ev::kClusterOp) {
      continue;
    }
    (ev.b == 0 ? login_ops : tgs_ops)++;
  }
  EXPECT_EQ(login_ops + tgs_ops, report.attempted);
  EXPECT_EQ(tgs_ops, report.tgs_ops);
  EXPECT_EQ(login_ops, report.logins);  // login-only operations

  // Route decisions and referral teaching match the summed router stats.
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterRoute), report.routing.direct_routes);
  // Every referral a client followed was emitted by some node; nodes may
  // also have referred requests that then failed over elsewhere.
  EXPECT_GE(trace->Count(kobs::Ev::kClusterReferral),
            report.routing.referrals_followed);
  EXPECT_GT(report.routing.referrals_followed, 0u);

  // The latency histogram covers every operation.
  uint64_t histogram_total = 0;
  for (uint64_t bucket : trace->HistogramA(kobs::Ev::kClusterOp)) {
    histogram_total += bucket;
  }
  EXPECT_EQ(histogram_total, report.attempted);
}

TEST(ClusterMetricsTest, MembershipEventsMatchControllerStats) {
  kobs::ScopedTrace trace;
  Fixture fx;
  fx.controller.node(2)->Crash();
  ASSERT_TRUE(fx.controller.ProbeAll());
  ASSERT_TRUE(fx.controller.node(2)->Recover().ok());
  ASSERT_TRUE(fx.controller.ProbeAll());

  EXPECT_EQ(trace->Count(kobs::Ev::kClusterNodeDown), fx.controller.stats().nodes_lost);
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterNodeUp), fx.controller.stats().nodes_rejoined);
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterRebalance), fx.controller.stats().rebalances);
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterNodeDown), 1u);
  EXPECT_EQ(trace->Count(kobs::Ev::kClusterNodeUp), 1u);
  // The down event records the node and the post-removal epoch; the up
  // event the post-rejoin epoch.
  EXPECT_EQ(trace->CountA(kobs::Ev::kClusterNodeDown, 2), 1u);
  EXPECT_EQ(trace->CountA(kobs::Ev::kClusterNodeUp, 2), 1u);
}

TEST(ClusterMetricsTest, TraceDigestIsRerunStableAndSeedSensitive) {
  auto run = [](uint64_t load_seed) {
    kobs::ScopedTrace trace;
    Fixture fx;
    ClusterLoadConfig lc;
    lc.ops = 60;
    lc.seed = load_seed;
    RunClusterLoad(fx.world, fx.controller, fx.population, lc);
    fx.controller.node(3)->Crash();
    fx.controller.ProbeAll();
    return trace->digest();
  };
  const uint64_t a = run(5);
  EXPECT_EQ(a, run(5));
  EXPECT_NE(a, run(6));
}

}  // namespace
