// Metric-assertion tests for the admin plane: the rotation harness read
// through kobs counters.
//
// The rotation invariants are asserted from the harness's own RotationReport
// elsewhere (tests/admin/); these tests re-derive the admin-plane accounting
// from the trace — proving the kAdmin*/kKvno* events measure what the report
// claims, that the database layer and the kadmin service agree with each
// other, and that an admin-free workload emits no admin events at all.

#include <gtest/gtest.h>

#include "src/attacks/chaos.h"
#include "src/attacks/rotation.h"
#include "src/obs/kobs.h"

namespace {

TEST(RotationMetricsTest, AdminCountersAgreeWithACleanRun) {
  kobs::ScopedTrace trace;
  kattack::RotationConfig config;  // every fault probability defaults to zero
  config.exchanges = 36;
  kattack::RotationReport report = kattack::RunRotationStudy(config);
  ASSERT_TRUE(kattack::RotationInvariantsHold(report));
  ASSERT_EQ(report.changes_applied, static_cast<uint64_t>(config.password_changes));
  ASSERT_EQ(report.rotations_applied, static_cast<uint64_t>(config.service_rotations));

  // Every applied op is exactly one apply event. The harness's post-chaos
  // probe lands one extra password change beyond the scheduled workload.
  EXPECT_EQ(trace->Count(kobs::Ev::kAdminApply),
            report.changes_applied + report.rotations_applied + 1);
  // Cross-layer agreement: the database's ring-rotation events match the
  // admin service's applies one-for-one (nothing else rotates keys, and
  // slave replicas apply shipped deltas without re-rotating).
  EXPECT_EQ(trace->Count(kobs::Ev::kKvnoRotate), trace->Count(kobs::Ev::kAdminApply));
  // Drain-window unseals at the mail server carry kvno 0 (the app layer
  // knows only the key, not its version); the KDC's own old-key accepts
  // always name a real kvno, so the a == 0 slice is exactly the mail count.
  EXPECT_EQ(trace->CountA(kobs::Ev::kKvnoOldKeyAccept, 0), report.old_key_accepts);
  EXPECT_GT(report.old_key_accepts, 0u);
  // The deterministic probes: one byte-identical replay served from the
  // reply cache plus the ack-cache splice the report counts.
  EXPECT_EQ(trace->Count(kobs::Ev::kAdminReplayServe), 1 + report.ack_replays);
  // Stale replay, interception, and tampering each produce a denial.
  EXPECT_GE(trace->Count(kobs::Ev::kAdminDeny), 3u);
  // Every apply and every denial was a request first.
  EXPECT_GE(trace->Count(kobs::Ev::kAdminRequest),
            trace->Count(kobs::Ev::kAdminApply) + trace->Count(kobs::Ev::kAdminDeny));
}

TEST(RotationMetricsTest, FaultedRunBoundsApplyCountAndStaysExactlyOnce) {
  kobs::ScopedTrace trace;
  kattack::RotationConfig config;
  config.seed = 77;
  config.exchanges = 36;
  config.drop = 0.15;
  config.duplicate = 0.15;
  config.reorder = 0.05;
  config.retry.max_attempts = 8;
  kattack::RotationReport report = kattack::RunRotationStudy(config);
  ASSERT_TRUE(kattack::RotationInvariantsHold(report));

  // Under loss the client can see an exhausted exchange whose request DID
  // land (the acks were lost), so server-side applies bound the report from
  // above — but never exceed one per issued nonce: the scheduled ops plus
  // the one probe change.
  const uint64_t client_applied = report.changes_applied + report.rotations_applied;
  const uint64_t applies = trace->Count(kobs::Ev::kAdminApply);
  EXPECT_GE(applies, client_applied);
  EXPECT_LE(applies, report.changes_attempted + report.rotations_attempted + 1);
  EXPECT_EQ(trace->Count(kobs::Ev::kKvnoRotate), applies);
  // Duplicated and retried frames are absorbed by the caches, visibly.
  EXPECT_GE(trace->Count(kobs::Ev::kAdminReplayServe), report.ack_replays);
}

TEST(RotationMetricsTest, SameConfigSameTraceDigest) {
  kattack::RotationConfig config;
  config.seed = 4242;
  config.exchanges = 24;
  config.drop = 0.10;
  config.duplicate = 0.10;
  config.retry.max_attempts = 8;

  uint64_t first = 0;
  uint64_t second = 0;
  {
    kobs::ScopedTrace trace;
    kattack::RunRotationStudy(config);
    first = trace->digest();
  }
  {
    kobs::ScopedTrace trace;
    kattack::RunRotationStudy(config);
    second = trace->digest();
  }
  EXPECT_NE(first, 0u);
  EXPECT_EQ(first, second);
}

TEST(RotationMetricsTest, AdminFreeWorkloadEmitsNoAdminEvents) {
  kobs::ScopedTrace trace;
  kattack::ChaosConfig config;  // B12 testbed: no kadmin server at all
  config.exchanges = 10;
  kattack::ChaosReport report = kattack::RunChaosStudy4(config);
  ASSERT_GT(report.succeeded, 0u);

  EXPECT_EQ(trace->Count(kobs::Ev::kAdminRequest), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kAdminApply), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kAdminDeny), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kAdminReplayServe), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kKvnoRotate), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kKvnoOldKeyAccept), 0u);
}

}  // namespace
