// Golden-trace regression tests for the kobs observability layer.
//
// Each test runs a canonical experiment under an installed trace and pins
// the resulting digest. The digest folds only digest-stable events (wire
// traffic, KDC verdicts, replay-cache admissions, retry decisions), all
// stamped with virtual time, so it is a pure function of the experiment's
// (seed, workload, fault plan) — byte-stable across reruns, machines, and
// KERB_KDC_THREADS values.
//
// If a deliberate protocol or instrumentation change shifts a digest,
// regenerate the constant from the failure message (printed in hex) and
// say so in the commit: a golden digest moving silently is exactly the
// regression class this file exists to catch.

#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/attacks/chaos.h"
#include "src/attacks/cutpaste.h"
#include "src/attacks/kdcload.h"
#include "src/attacks/replay.h"
#include "src/attacks/retransmit.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/prng.h"
#include "src/obs/kobs.h"

namespace {

// Pinned digests. Regenerate by running this binary and copying the hex
// value from the failure message.
constexpr uint64_t kGoldenE01Replay = 0xad07c607c6895075;
constexpr uint64_t kGoldenE09CutPaste = 0x9e84a7d8457aa830;
constexpr uint64_t kGoldenE16Retransmit = 0x54e38ad9a8e5d957;
constexpr uint64_t kGoldenChaosBlackout = 0x5793bd1144d8254e;

template <typename Fn>
uint64_t TracedDigest(Fn&& fn) {
  kobs::ScopedTrace trace;
  fn();
  EXPECT_GT(trace->events().size(), 0u) << "experiment emitted no events";
  return trace->digest();
}

kattack::ChaosConfig BlackoutChaosConfig() {
  kattack::ChaosConfig config;
  config.seed = 55;
  config.exchanges = 24;
  config.drop = 0.05;
  config.duplicate = 0.08;
  config.primary_blackout = true;
  config.kdc_slaves = 1;
  return config;
}

TEST(GoldenTraceTest, E01ReplayDigestPinnedAndRerunStable) {
  auto run = [] { kattack::RunMailCheckReplayV4(kattack::ReplayScenario{}); };
  uint64_t first = TracedDigest(run);
  uint64_t second = TracedDigest(run);
  EXPECT_EQ(first, second) << "E01 trace digest varies across reruns";
  EXPECT_EQ(first, kGoldenE01Replay) << "actual digest 0x" << std::hex << first;
}

TEST(GoldenTraceTest, E09CutPasteDigestPinnedAndRerunStable) {
  auto run = [] { kattack::RunEncTktInSkeyCutPaste(kattack::CutPasteScenario{}); };
  uint64_t first = TracedDigest(run);
  uint64_t second = TracedDigest(run);
  EXPECT_EQ(first, second) << "E09 trace digest varies across reruns";
  EXPECT_EQ(first, kGoldenE09CutPaste) << "actual digest 0x" << std::hex << first;
}

TEST(GoldenTraceTest, E16RetransmitDigestPinnedAndRerunStable) {
  auto run = [] { kattack::RunRetransmissionStudy(/*fresh_authenticator_per_retry=*/false); };
  uint64_t first = TracedDigest(run);
  uint64_t second = TracedDigest(run);
  EXPECT_EQ(first, second) << "E16 trace digest varies across reruns";
  EXPECT_EQ(first, kGoldenE16Retransmit) << "actual digest 0x" << std::hex << first;
}

TEST(GoldenTraceTest, NdjsonExportByteStableAcrossReruns) {
  auto dump = [] {
    kobs::ScopedTrace trace;
    kattack::RunMailCheckReplayV4(kattack::ReplayScenario{});
    std::ostringstream os;
    trace->WriteNdjson(os);
    return os.str();
  };
  std::string first = dump();
  std::string second = dump();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "ndjson export varies across reruns";
  // The export ends with the digest trailer.
  EXPECT_NE(first.find("{\"trace\":{\"events\":"), std::string::npos);
}

TEST(GoldenTraceTest, ChaosBlackoutDigestPinnedAcrossRerunsAndThreadEnv) {
  // The acceptance bar: the chaos scenario's digest is identical across
  // reruns and across KERB_KDC_THREADS ∈ {1, 4}. The harness itself runs on
  // the simulation thread, so the env setting exercises the process-wide
  // configuration path rather than worker scheduling — the threaded case is
  // covered end-to-end by KdcLoadDigestIndependentOfWorkerCount below.
  auto run = [] { kattack::RunChaosStudy5(BlackoutChaosConfig()); };

  ASSERT_EQ(setenv("KERB_KDC_THREADS", "1", 1), 0);
  uint64_t with_one = TracedDigest(run);
  uint64_t with_one_again = TracedDigest(run);
  ASSERT_EQ(setenv("KERB_KDC_THREADS", "4", 1), 0);
  uint64_t with_four = TracedDigest(run);
  unsetenv("KERB_KDC_THREADS");

  EXPECT_EQ(with_one, with_one_again) << "chaos digest varies across reruns";
  EXPECT_EQ(with_one, with_four) << "chaos digest varies with KERB_KDC_THREADS";
  EXPECT_EQ(with_one, kGoldenChaosBlackout) << "actual digest 0x" << std::hex << with_one;
}

TEST(GoldenTraceTest, KdcLoadDigestIndependentOfWorkerCount) {
  // A fixed total of 64 identical AS requests served by the worker pool:
  // the digest-stable stream (request + issue verdicts) must not depend on
  // how the pool distributes them. Per-context artifacts (key-cache hits,
  // seal calls) differ with the distribution, which is exactly why they are
  // counter-only.
  auto digest_with_threads = [](unsigned threads) {
    constexpr uint64_t kTotalRequests = 64;
    EXPECT_EQ(setenv("KERB_KDC_THREADS", std::to_string(threads).c_str(), 1), 0);
    EXPECT_EQ(kattack::KdcWorkerThreads(), threads);

    kobs::ScopedTrace trace;
    kattack::Testbed5 bed;
    kcrypto::Prng prng(0x7e57);
    krb5::AsRequest5 as_req;
    as_req.client = bed.alice_principal();
    as_req.service_realm = bed.realm;
    as_req.lifetime = ksim::kHour;
    as_req.nonce = prng.NextU64();
    ksim::Message request;
    request.src = kattack::Testbed5::kAliceAddr;
    request.dst = kattack::Testbed5::kAsAddr;
    request.payload = as_req.ToTlv().Encode();
    request.sent_at = bed.world().MakeHostClock().Now();

    krb5::KdcCore5& core = bed.kdc().core();
    kattack::KdcHandler handler = [&core](const ksim::Message& msg, krb4::KdcContext& ctx) {
      return core.HandleAs(msg, ctx);
    };
    auto result = kattack::RunKdcLoad(handler, request, kattack::KdcWorkerThreads(),
                                      kTotalRequests / threads, 0xfeed);
    EXPECT_EQ(result.requests_ok, kTotalRequests);
    EXPECT_EQ(result.requests_failed, 0u);
    EXPECT_EQ(trace->Count(kobs::Ev::kKdcAsRequest), kTotalRequests);
    EXPECT_EQ(trace->Count(kobs::Ev::kKdcIssue), kTotalRequests);
    return trace.trace().digest();
  };

  uint64_t with_one = 0;
  uint64_t with_four = 0;
  with_one = digest_with_threads(1);
  uint64_t with_one_again = digest_with_threads(1);
  with_four = digest_with_threads(4);
  unsetenv("KERB_KDC_THREADS");

  EXPECT_EQ(with_one, with_one_again) << "threaded KDC digest varies across reruns";
  EXPECT_EQ(with_one, with_four) << "threaded KDC digest varies with worker count";
}

}  // namespace
