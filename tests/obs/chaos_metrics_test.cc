// Metric-assertion tests: the chaos harness read through kobs counters.
//
// The chaos invariants were previously asserted from the harness's own
// ChaosReport; these tests re-derive them from the trace — proving the
// counters measure what the report claims, and that the observability layer
// can stand in for bespoke per-harness accounting.

#include <gtest/gtest.h>

#include "src/attacks/chaos.h"
#include "src/attacks/testbed5.h"
#include "src/obs/kobs.h"

namespace {

TEST(ChaosMetricsTest, ZeroFaultRatesProduceZeroFaultAndRetryCounters) {
  kobs::ScopedTrace trace;
  kattack::ChaosConfig config;  // every fault probability defaults to zero
  config.exchanges = 10;
  kattack::ChaosReport report = kattack::RunChaosStudy4(config);
  ASSERT_GT(report.succeeded, 0u);

  EXPECT_EQ(trace->Count(kobs::Ev::kNetDropRequest), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDropReply), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDuplicate), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetCorruptRequest), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetCorruptReply), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetReorder), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetBlackout), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgRetry), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgFailover), 0u);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgExhausted), 0u);
  // The workload itself still shows up.
  EXPECT_GT(trace->Count(kobs::Ev::kKdcIssue), 0u);
  EXPECT_GT(trace->Count(kobs::Ev::kXchgSuccess), 0u);
}

TEST(ChaosMetricsTest, CountersAgreeWithTheHarnessReport) {
  kobs::ScopedTrace trace;
  kattack::ChaosConfig config;
  config.seed = 919;
  config.exchanges = 24;
  config.drop = 0.08;
  config.duplicate = 0.08;
  config.corrupt = 0.04;
  kattack::ChaosReport report = kattack::RunChaosStudy4(config);
  ASSERT_GT(report.attempted, 0u);

  // Request drops split across the call and datagram paths in the stats.
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDropRequest) + trace->Count(kobs::Ev::kNetDatagramDrop),
            report.net.requests_dropped);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDropReply), report.net.replies_dropped);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDuplicate), report.net.duplicates_delivered);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetCorruptRequest), report.net.requests_corrupted);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetCorruptReply), report.net.replies_corrupted);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetRedeliver), report.net.late_redeliveries);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetBlackout), report.net.blackout_refusals);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDupMatch), report.net.duplicate_reply_matches);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDupDiverge), report.net.duplicate_reply_divergences);
  EXPECT_EQ(trace->Count(kobs::Ev::kNetDupReject), report.net.duplicate_rejections);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgRetry), report.retry.retries);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgFailover), report.retry.failovers);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgSuccess), report.retry.successes);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgExhausted), report.retry.exhausted);
  EXPECT_EQ(trace->Count(kobs::Ev::kXchgAttempt), report.retry.attempts);
}

TEST(ChaosMetricsTest, BlackoutScenarioFailsOverWithoutDoubleIssue) {
  // The PR-3 blackout scenario: primary KDC dark for the middle third, one
  // slave standing by, duplicates on the wire. The trace must show real
  // failover traffic and a double-issue count of zero at every KDC host —
  // the reply cache absorbing duplicates.
  kobs::ScopedTrace trace;
  kattack::ChaosConfig config;
  config.seed = 55;
  config.exchanges = 24;
  config.drop = 0.05;
  config.duplicate = 0.10;
  config.primary_blackout = true;
  config.kdc_slaves = 1;
  kattack::ChaosReport report = kattack::RunChaosStudy5(config);

  EXPECT_GT(trace->Count(kobs::Ev::kXchgFailover), 0u);
  EXPECT_GT(trace->Count(kobs::Ev::kNetBlackout), 0u);
  EXPECT_EQ(report.bad_successes, 0u);
  EXPECT_EQ(report.internal_errors, 0u);

  const uint32_t kdc_host = kattack::Testbed5::kAsAddr.host;
  EXPECT_EQ(trace->CountA(kobs::Ev::kNetDupDiverge, kdc_host), 0u);
  EXPECT_EQ(trace->CountA(kobs::Ev::kNetDupDiverge, kdc_host + 1), 0u);  // the slave
  EXPECT_EQ(report.kdc_divergences, 0u);
}

}  // namespace
