// Unit coverage for the admin plane: the kadmin protocol end to end over
// the simulated network (policy, authorization, replay/interception
// hardening, exactly-once mutation) and the kvno lifecycle it drives
// (old-ticket drain windows, TGS key rotation with ring fallback,
// principal CRUD).

#include <gtest/gtest.h>

#include <string>

#include "src/admin/kadmin.h"
#include "src/admin/messages.h"
#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/common/bytes.h"
#include "src/krb4/database.h"
#include "src/krb4/principal.h"

namespace {

using kattack::Testbed4;
using kattack::TestbedConfig;

kerb::BytesView StrView(std::string_view s) {
  return kerb::BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

struct AdminBed {
  explicit AdminBed(TestbedConfig config = {}) : bed([&] {
    config.enable_kadmin = true;
    return config;
  }()) {
    oper = bed.MakeClient(bed.oper_principal(), Testbed4::kOperAddr);
    EXPECT_TRUE(oper->Login(Testbed4::kOperPassword).ok());
    admin = bed.MakeAdminClient(*oper);
  }

  Testbed4 bed;
  std::unique_ptr<krb4::Client4> oper;
  std::unique_ptr<kadmin::AdminClient> admin;
};

TEST(KadminTest, OperChangesBobPassword) {
  AdminBed t;
  krb4::KdcDatabase& db = t.bed.kdc().database();
  const krb4::Principal bob = t.bed.bob_principal();
  ASSERT_EQ(db.Kvno(bob), 1u);

  auto ack = t.admin->ChangePassword(bob, "brand-New_Secret1");
  ASSERT_TRUE(ack.ok()) << ack.error().detail;
  EXPECT_EQ(ack.value().kvno, 2u);
  EXPECT_EQ(db.Kvno(bob), 2u);

  // The old password is dead immediately; the new one logs in.
  EXPECT_FALSE(t.bed.bob().Login(Testbed4::kBobPassword).ok());
  EXPECT_TRUE(t.bed.bob().Login("brand-New_Secret1").ok());

  auto kvno = t.admin->GetKvno(bob);
  ASSERT_TRUE(kvno.ok());
  EXPECT_EQ(kvno.value().kvno, 2u);
}

TEST(KadminTest, SelfServicePasswordChange) {
  AdminBed t;
  ASSERT_TRUE(t.bed.bob().Login(Testbed4::kBobPassword).ok());
  auto self_admin = t.bed.MakeAdminClient(t.bed.bob());

  // bob may change his own password and read his own kvno...
  auto ack = self_admin->ChangePassword(t.bed.bob_principal(), "bespoke-Choice_22");
  ASSERT_TRUE(ack.ok()) << ack.error().detail;
  EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.bob_principal()), 2u);
  EXPECT_TRUE(self_admin->GetKvno(t.bed.bob_principal()).ok());

  // ...but nothing about anyone else, and no service-key operations.
  EXPECT_EQ(self_admin->ChangePassword(t.bed.alice_principal(), "hostile-Reset_1").code(),
            kerb::ErrorCode::kPolicy);
  EXPECT_EQ(self_admin->RotateKey(t.bed.mail_principal()).code(), kerb::ErrorCode::kPolicy);
  EXPECT_EQ(self_admin->GetKey(t.bed.mail_principal()).code(), kerb::ErrorCode::kPolicy);
  EXPECT_EQ(self_admin->DelPrincipal(t.bed.alice_principal()).code(),
            kerb::ErrorCode::kPolicy);
  EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.mail_principal()), 1u);
}

TEST(KadminTest, PasswordPolicyEnforced) {
  AdminBed t;
  const krb4::Principal bob = t.bed.bob_principal();
  EXPECT_EQ(t.admin->ChangePassword(bob, "short").code(), kerb::ErrorCode::kPolicy);
  EXPECT_EQ(t.admin->ChangePassword(bob, "contains-bob-here").code(),
            kerb::ErrorCode::kPolicy);
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 1u);
  EXPECT_TRUE(t.bed.bob().Login(Testbed4::kBobPassword).ok());
}

TEST(KadminTest, ByteReplayServedFromCacheWithoutReapply) {
  AdminBed t;
  ksim::Network& net = t.bed.world().network();
  const krb4::Principal bob = t.bed.bob_principal();

  auto wire = t.admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                    StrView("replayed-Pw_001!"), /*nonce=*/42);
  ASSERT_TRUE(wire.ok());
  auto r1 = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, wire.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);

  // The same bytes again: identical reply, no second apply.
  auto r2 = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, wire.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);
  EXPECT_GE(t.bed.kadmin_server()->reply_cache_hits(), 1u);
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 2u);
}

TEST(KadminTest, FreshAuthenticatorSameNonceHitsAckCache) {
  AdminBed t;
  ksim::Network& net = t.bed.world().network();
  const krb4::Principal bob = t.bed.bob_principal();

  auto w1 = t.admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                  StrView("retry-Pw_77abc!"), /*nonce=*/7);
  ASSERT_TRUE(w1.ok());
  auto r1 = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, w1.value());
  ASSERT_TRUE(r1.ok());

  // A client retransmission: fresh authenticator, same nonce, same body.
  // Different wire bytes, so the byte cache misses — the ack cache serves
  // the stored verdict and nothing applies twice.
  t.bed.world().clock().Advance(ksim::kSecond);
  auto w2 = t.admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                  StrView("retry-Pw_77abc!"), /*nonce=*/7);
  ASSERT_TRUE(w2.ok());
  ASSERT_NE(w1.value(), w2.value());
  auto r2 = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, w2.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);
  EXPECT_EQ(t.bed.kadmin_server()->ack_replays(), 1u);
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 2u);

  // A splice — applied nonce, different body — earns the ORIGINAL verdict
  // bytes, and the spliced mutation never applies.
  t.bed.world().clock().Advance(ksim::kSecond);
  auto w3 = t.admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                  StrView("spliced-Pw_666!"), /*nonce=*/7);
  ASSERT_TRUE(w3.ok());
  auto r3 = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, w3.value());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r1.value(), r3.value());
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 2u);
  EXPECT_FALSE(t.bed.bob().Login("spliced-Pw_666!").ok());
  EXPECT_TRUE(t.bed.bob().Login("retry-Pw_77abc!").ok());
}

TEST(KadminTest, StaleReplayAndTamperAndInterceptRejected) {
  AdminBed t;
  ksim::Network& net = t.bed.world().network();
  const krb4::Principal bob = t.bed.bob_principal();

  auto wire = t.admin->BuildRequest(kadmin::AdminOp::kChangePassword, bob,
                                    StrView("window-Pw_31337"), /*nonce=*/9);
  ASSERT_TRUE(wire.ok());

  // Interception: eve re-originates the honest bytes from her own host.
  // The ticket and authenticator bind the operator's address, so the
  // request dies before the mutation, and the nonce stays unapplied.
  auto ri = net.Call(Testbed4::kEveAddr, Testbed4::kAdminAddr, wire.value());
  EXPECT_FALSE(ri.ok());
  EXPECT_EQ(ri.code(), kerb::ErrorCode::kAuthFailed);
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 1u);

  // Tampering: any flipped bit in the frame fails closed.
  kerb::Bytes bent = wire.value();
  bent.back() ^= 0x01;
  auto rt = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, bent);
  EXPECT_FALSE(rt.ok());
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 1u);

  // Stale replay: past the skew window the authenticator is dead even
  // though the bytes are honest.
  t.bed.world().clock().Advance(6 * ksim::kMinute);
  auto rs = net.Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, wire.value());
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 1u);
}

TEST(KadminTest, OldTicketDrainsAcrossRotationThenExpires) {
  AdminBed t;
  krb4::KdcDatabase& db = t.bed.kdc().database();
  const krb4::Principal mail = t.bed.mail_principal();
  ksim::SimClock& clock = t.bed.world().clock();

  ASSERT_TRUE(t.bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(t.bed.alice().GetServiceTicket(mail).ok());

  // Rotate the mail key over the admin channel; the server installs the
  // new key out of band and grants the outgoing one a short drain window.
  auto ack = t.admin->RotateKey(mail);
  ASSERT_TRUE(ack.ok()) << ack.error().detail;
  EXPECT_EQ(ack.value().kvno, 2u);
  auto entry = db.LookupEntry(mail);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ(entry.value().keys.size(), 2u);
  const ksim::Time drain_until = clock.Now() + 10 * ksim::kMinute;
  t.bed.mail_server().Rekey(entry.value().keys.front().key, drain_until);

  // Inside the drain window the old ticket keeps working, via the
  // server's retained old key.
  auto r1 = t.bed.alice().CallService(Testbed4::kMailAddr, mail, /*want_mutual=*/true);
  ASSERT_TRUE(r1.ok()) << r1.error().detail;
  EXPECT_EQ(kerb::ToString(r1.value()), "You have 3 messages.");
  EXPECT_GE(t.bed.mail_server().old_key_accepts(), 1u);

  // New tickets are sealed under the new kvno and work too.
  auto fresh = t.bed.MakeClient(t.bed.bob_principal(), Testbed4::kBobAddr);
  ASSERT_TRUE(fresh->Login(Testbed4::kBobPassword).ok());
  auto r2 = fresh->CallService(Testbed4::kMailAddr, mail, /*want_mutual=*/true);
  ASSERT_TRUE(r2.ok()) << r2.error().detail;

  // Past the drain window the old seal is dead — fail closed, not open.
  clock.Advance(11 * ksim::kMinute);
  auto r3 = t.bed.alice().CallService(Testbed4::kMailAddr, mail, /*want_mutual=*/true);
  EXPECT_FALSE(r3.ok());
}

TEST(KadminTest, TgsKeyRotationHonorsOutstandingTgtV4) {
  AdminBed t;
  krb4::KdcDatabase& db = t.bed.kdc().database();
  ksim::SimClock& clock = t.bed.world().clock();

  // alice's TGT is sealed under the TGS key at kvno 1.
  ASSERT_TRUE(t.bed.alice().Login(Testbed4::kAlicePassword).ok());

  kcrypto::Prng prng(db.Kvno(t.bed.mail_principal()) + 98765);
  auto rotated = db.RotateKey(krb4::TgsPrincipal(t.bed.realm), prng.NextDesKey(),
                              clock.Now(), clock.Now() + 8 * ksim::kHour);
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(rotated.value(), 2u);

  // The outstanding TGT still buys service tickets (ring fallback in the
  // TGS path), and a fresh login rides the new key.
  EXPECT_TRUE(t.bed.alice().GetServiceTicket(t.bed.file_principal()).ok());
  auto r = t.bed.alice().CallService(Testbed4::kMailAddr, t.bed.mail_principal(),
                                     /*want_mutual=*/true);
  ASSERT_TRUE(r.ok()) << r.error().detail;
  t.bed.alice().Logout();
  EXPECT_TRUE(t.bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(t.bed.alice().GetServiceTicket(t.bed.mail_principal()).ok());
}

TEST(KadminTest, TgsKeyRotationHonorsOutstandingTgtV5) {
  kattack::Testbed5 bed;
  krb4::KdcDatabase& db = bed.kdc().database();
  ksim::SimClock& clock = bed.world().clock();

  ASSERT_TRUE(bed.alice().Login(kattack::Testbed5::kAlicePassword).ok());

  kcrypto::Prng prng(24680);
  auto rotated = db.RotateKey(krb4::TgsPrincipal(bed.realm), prng.NextDesKey(),
                              clock.Now(), clock.Now() + 8 * ksim::kHour);
  ASSERT_TRUE(rotated.ok());

  EXPECT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  auto r = bed.alice().CallService(kattack::Testbed5::kMailAddr, bed.mail_principal(),
                                   /*want_mutual=*/true);
  ASSERT_TRUE(r.ok()) << r.error().detail;
  bed.alice().Logout();
  EXPECT_TRUE(bed.alice().Login(kattack::Testbed5::kAlicePassword).ok());
}

TEST(KadminTest, PrincipalCrudAndProtection) {
  AdminBed t;
  krb4::KdcDatabase& db = t.bed.kdc().database();
  const krb4::Principal carol{"carol", "", t.bed.realm};
  const krb4::Principal print{"print", "athena", t.bed.realm};

  auto add = t.admin->AddUser(carol, "initial-Entry_9!");
  ASSERT_TRUE(add.ok()) << add.error().detail;
  EXPECT_EQ(add.value().kvno, 1u);
  auto carol_client = t.bed.MakeClient(carol, ksim::NetAddress{0x0a000120, 1023});
  EXPECT_TRUE(carol_client->Login("initial-Entry_9!").ok());

  // Duplicates and weak bootstrap passwords are refused.
  EXPECT_EQ(t.admin->AddUser(carol, "second-Entry_10!").code(), kerb::ErrorCode::kPolicy);
  EXPECT_EQ(t.admin->AddUser(krb4::Principal{"dave", "", t.bed.realm}, "pw").code(),
            kerb::ErrorCode::kPolicy);

  auto svc = t.admin->AddService(print);
  ASSERT_TRUE(svc.ok()) << svc.error().detail;
  EXPECT_EQ(db.Kind(print), krb4::PrincipalKind::kService);
  ASSERT_TRUE(t.bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(t.bed.alice().GetServiceTicket(print).ok());

  // Deletion works, is idempotently NOT re-deletable, and the realm's
  // load-bearing principals are protected.
  ASSERT_TRUE(t.admin->DelPrincipal(carol).ok());
  carol_client->Logout();
  EXPECT_FALSE(carol_client->Login("initial-Entry_9!").ok());
  EXPECT_EQ(t.admin->DelPrincipal(carol).code(), kerb::ErrorCode::kNotFound);
  EXPECT_EQ(t.admin->DelPrincipal(krb4::TgsPrincipal(t.bed.realm)).code(),
            kerb::ErrorCode::kPolicy);
  EXPECT_EQ(t.admin->DelPrincipal(kadmin::AdminPrincipal(t.bed.realm)).code(),
            kerb::ErrorCode::kPolicy);
  EXPECT_TRUE(db.Has(krb4::TgsPrincipal(t.bed.realm)));
}

TEST(KadminTest, GetKeyMatchesDatabase) {
  AdminBed t;
  const krb4::Principal mail = t.bed.mail_principal();
  auto got = t.admin->GetKey(mail);
  ASSERT_TRUE(got.ok()) << got.error().detail;
  auto entry = t.bed.kdc().database().LookupEntry(mail);
  ASSERT_TRUE(entry.ok());
  const auto& key_bytes = entry.value().keys.front().key.bytes();
  ASSERT_EQ(got.value().detail.size(), key_bytes.size());
  EXPECT_TRUE(std::equal(key_bytes.begin(), key_bytes.end(), got.value().detail.begin()));
  EXPECT_EQ(got.value().kvno, 1u);
}

TEST(KadminTest, ExactlyOnceAcrossLossyRetries) {
  TestbedConfig config;
  config.seed = 97531;
  ksim::FaultPlan plan;
  plan.link.drop_request = 0.2;
  plan.link.drop_reply = 0.2;
  plan.link.duplicate_request = 0.3;
  plan.link.delay = ksim::kMillisecond;
  plan.link.delay_jitter = 5 * ksim::kMillisecond;
  config.faults = plan;
  ksim::RetryPolicy retry;
  retry.max_attempts = 8;
  config.client_retry = retry;
  AdminBed t(config);

  const krb4::Principal bob = t.bed.bob_principal();
  auto ack = t.admin->ChangePassword(bob, "lossy-Network_1!");
  // Whatever the network did, the mutation applied at most once, and the
  // ack (when it arrived) reported the truth.
  EXPECT_LE(t.bed.kadmin_server()->applied(), 1u);
  if (ack.ok()) {
    EXPECT_EQ(t.bed.kdc().database().Kvno(bob), 2u);
    EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);
  } else {
    EXPECT_TRUE(kerb::IsRetryable(ack.error().code)) << ack.error().detail;
  }
}

}  // namespace
