// The admin plane under chaos (experiment B15): live key rotation and
// password changes while the realm serves traffic over a faulty network,
// with kprop delayed or paused and the primary KDC blacking out mid-change.
//
// The invariants (see src/attacks/rotation.h): old-kvno tickets ride out
// rotations with zero hard failures, mutations apply exactly once or fail
// closed, no replica ever holds a half-applied key ring, and the whole run
// is a deterministic function of its config.

#include <gtest/gtest.h>

#include "src/attacks/rotation.h"

namespace kattack {
namespace {

RotationConfig SweepConfig(double rate, uint64_t seed) {
  RotationConfig config;
  config.seed = seed;
  config.drop = rate;
  config.duplicate = rate;
  config.reorder = rate / 2;
  config.corrupt = rate / 3;
  config.retry.max_attempts = 8;
  return config;
}

void CheckInvariants(const RotationReport& r) {
  EXPECT_TRUE(RotationInvariantsHold(r));
  EXPECT_EQ(r.old_ticket_hard_failures, 0u) << "old-kvno ticket got a terminal verdict";
  EXPECT_EQ(r.fresh_hard_failures, 0u);
  EXPECT_EQ(r.admin_hard_failures, 0u) << "legitimate admin op terminally denied";
  EXPECT_EQ(r.kdc_divergences, 0u);
  // Every attempt accounted for: applied or failed closed, nothing lost.
  EXPECT_EQ(r.changes_applied + r.changes_failed_closed, r.changes_attempted);
  EXPECT_EQ(r.rotations_applied + r.rotations_failed_closed, r.rotations_attempted);
  // Post-chaos probes all landed.
  EXPECT_TRUE(r.replay_served_from_cache);
  EXPECT_TRUE(r.stale_replay_rejected);
  EXPECT_TRUE(r.intercept_rejected);
  EXPECT_TRUE(r.tamper_rejected);
  EXPECT_TRUE(r.splice_no_apply);
  EXPECT_TRUE(r.old_password_rejected);
  EXPECT_TRUE(r.new_password_accepted);
  // Consistency held before catch-up, after catch-up, and across a crash.
  EXPECT_TRUE(r.rotation_atomic);
  EXPECT_TRUE(r.replicas_converged);
  EXPECT_TRUE(r.recovery_consistent);
}

void CheckSameRun(const RotationReport& a, const RotationReport& b) {
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.old_ticket_successes, b.old_ticket_successes);
  EXPECT_EQ(a.old_ticket_failed_closed, b.old_ticket_failed_closed);
  EXPECT_EQ(a.old_key_accepts, b.old_key_accepts);
  EXPECT_EQ(a.fresh_successes, b.fresh_successes);
  EXPECT_EQ(a.changes_applied, b.changes_applied);
  EXPECT_EQ(a.rotations_applied, b.rotations_applied);
  EXPECT_EQ(a.ack_replays, b.ack_replays);
  EXPECT_EQ(a.bob_kvno, b.bob_kvno);
  EXPECT_EQ(a.mail_kvno, b.mail_kvno);
  EXPECT_EQ(a.net.calls, b.net.calls);
  EXPECT_EQ(a.net.requests_dropped, b.net.requests_dropped);
  EXPECT_EQ(a.net.duplicates_delivered, b.net.duplicates_delivered);
  EXPECT_EQ(a.retry.attempts, b.retry.attempts);
  EXPECT_EQ(a.retry.virtual_wait, b.retry.virtual_wait);
}

TEST(RotationChaosTest, CleanRunEveryRotationLandsAndNothingBreaks) {
  RotationConfig config;  // delays only — a healthy network
  RotationReport r = RunRotationStudy(config);
  CheckInvariants(r);
  // Healthy network: full goodput for the old-ticket holder, and every
  // scheduled admin op applies.
  EXPECT_EQ(r.old_ticket_successes, r.old_ticket_calls);
  EXPECT_EQ(r.old_ticket_calls, 60u);
  EXPECT_EQ(r.fresh_successes, r.fresh_calls);
  EXPECT_EQ(r.changes_applied, 3u);
  EXPECT_EQ(r.rotations_applied, 3u);
  // Three mail rotations happened under the old ticket: the drain window
  // did real work.
  EXPECT_GT(r.old_key_accepts, 0u);
  // bob: 3 changes + the replay-probe change; mail: 3 rotations.
  EXPECT_EQ(r.bob_kvno, 5u);
  EXPECT_EQ(r.mail_kvno, 4u);
}

TEST(RotationChaosTest, SurvivesFaultSweep) {
  for (double rate : {0.10, 0.20, 0.30}) {
    RotationReport r = RunRotationStudy(SweepConfig(rate, 4000 + uint64_t(rate * 100)));
    CheckInvariants(r);
    // Retries keep the realm and the admin plane live under ≤30% faults.
    EXPECT_GT(r.old_ticket_successes, r.old_ticket_calls / 2) << "rate " << rate;
    EXPECT_GE(r.changes_applied, 1u) << "rate " << rate;
    EXPECT_GE(r.rotations_applied, 1u) << "rate " << rate;
    EXPECT_GT(r.old_key_accepts, 0u) << "rate " << rate;
  }
}

TEST(RotationChaosTest, PrimaryBlackoutNeverTouchesOldTicketHolders) {
  RotationConfig config;
  config.seed = 5150;
  config.primary_blackout = true;  // KDC + kadmin host dark, middle third
  config.kdc_slaves = 1;
  config.retry.max_attempts = 6;
  RotationReport r = RunRotationStudy(config);
  CheckInvariants(r);
  // The mail host stays up and the old ticket needs no KDC: goodput is
  // 100% straight through the outage — the availability claim of the
  // drain-window design.
  EXPECT_EQ(r.old_ticket_successes, r.old_ticket_calls);
  // Admin ops scheduled inside the outage fail closed (the kadmin server
  // rides the blacked-out primary); the rest apply.
  EXPECT_GE(r.changes_applied, 1u);
  EXPECT_GE(r.rotations_applied, 1u);
  EXPECT_GT(r.net.blackout_refusals, 0u);
}

TEST(RotationChaosTest, PausedPropagationStaysAtomicAndConverges) {
  RotationConfig config;
  config.seed = 616;
  config.kprop_paused = true;  // no kprop until recovery
  config.drop = 0.15;
  config.duplicate = 0.15;
  config.retry.max_attempts = 8;
  config.kdc_slaves = 2;
  RotationReport r = RunRotationStudy(config);
  // rotation_atomic checked the slaves BEFORE any catch-up cycle: stale is
  // fine, torn is not. replicas_converged then proves catch-up completes.
  CheckInvariants(r);
  EXPECT_GE(r.changes_applied + r.rotations_applied, 2u);
}

TEST(RotationChaosTest, SameConfigSameReport) {
  RotationConfig config = SweepConfig(0.25, 424242);
  config.primary_blackout = true;
  RotationReport first = RunRotationStudy(config);
  RotationReport second = RunRotationStudy(config);
  CheckInvariants(first);
  CheckSameRun(first, second);

  RotationConfig other = config;
  other.seed = 24;
  RotationReport third = RunRotationStudy(other);
  EXPECT_NE(first.schedule_digest, third.schedule_digest);
}

TEST(RotationChaosTest, BatchedDispatchMatchesSequential) {
  // The KDCs route through the batched entry points (n=1 batches); every
  // verdict, counter, and the fault schedule itself must be identical to
  // sequential serving — batching is a performance path, not a semantic
  // one, even under faults and rotation.
  RotationConfig sequential = SweepConfig(0.20, 8686);
  RotationConfig batched = sequential;
  batched.batched = true;
  RotationReport a = RunRotationStudy(sequential);
  RotationReport b = RunRotationStudy(batched);
  CheckInvariants(a);
  CheckInvariants(b);
  CheckSameRun(a, b);
  EXPECT_EQ(a.old_ticket_calls, b.old_ticket_calls);
  EXPECT_EQ(a.fresh_calls, b.fresh_calls);
}

}  // namespace
}  // namespace kattack
