#include "src/hsm/encryption_unit.h"

#include <gtest/gtest.h>

namespace khsm {
namespace {

krb4::Principal Alice() { return krb4::Principal::User("alice", "ATHENA.SIM"); }

struct UnitFixture {
  kcrypto::Prng prng{55};
  EncryptionUnit unit{99};
  kcrypto::DesKey login_key{prng.NextDesKey()};
  kcrypto::DesKey tgs_key{prng.NextDesKey()};
  KeyHandle login{unit.LoadKey(login_key, KeyUsage::kLoginKey)};
};

TEST(EncryptionUnitTest, OpenAsReplyCapturesSessionKeyAsHandle) {
  UnitFixture f;
  kcrypto::DesKey session = f.prng.NextDesKey();
  krb4::AsReplyBody4 body;
  body.tgs_session_key = session.bytes();
  body.sealed_tgt = f.prng.NextBytes(32);
  kerb::Bytes sealed = krb4::Seal4(f.login_key, body.Encode());

  kerb::Bytes tgt_out;
  auto handle = f.unit.OpenAsReply(f.login, sealed, &tgt_out);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(tgt_out, body.sealed_tgt);
  // The handle works where a TGS session key should.
  auto auth = f.unit.MakeAuthenticator(handle.value(), Alice(), 1, 0);
  ASSERT_TRUE(auth.ok());
  EXPECT_TRUE(krb4::Authenticator4::Unseal(session, auth.value()).ok());
}

TEST(EncryptionUnitTest, UsageTagsPreventCrossPurposeUse) {
  UnitFixture f;
  // The login key must not function as a session key.
  auto sealed = f.unit.SealData(f.login, kerb::ToBytes("data"));
  EXPECT_EQ(sealed.code(), kerb::ErrorCode::kPolicy);
  // Or as a service key.
  auto ticket = f.unit.DecryptTicket(f.login, f.prng.NextBytes(32));
  EXPECT_EQ(ticket.code(), kerb::ErrorCode::kPolicy);
}

TEST(EncryptionUnitTest, UnknownHandleRejected) {
  UnitFixture f;
  EXPECT_EQ(f.unit.SealData(424242, kerb::ToBytes("x")).code(), kerb::ErrorCode::kNotFound);
}

TEST(EncryptionUnitTest, DestroyKeyMakesHandleDead) {
  UnitFixture f;
  KeyHandle session = f.unit.GenerateKey(KeyUsage::kSessionKey);
  ASSERT_TRUE(f.unit.SealData(session, kerb::ToBytes("x")).ok());
  f.unit.DestroyKey(session);
  EXPECT_FALSE(f.unit.SealData(session, kerb::ToBytes("x")).ok());
}

TEST(EncryptionUnitTest, SealOpenRoundTripThroughHandles) {
  UnitFixture f;
  KeyHandle session = f.unit.GenerateKey(KeyUsage::kSessionKey);
  auto sealed = f.unit.SealData(session, kerb::ToBytes("secret"));
  ASSERT_TRUE(sealed.ok());
  auto opened = f.unit.OpenData(session, sealed.value());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(kerb::ToString(opened.value()), "secret");
}

TEST(EncryptionUnitTest, DecryptTicketReturnsMetadataNotKey) {
  UnitFixture f;
  kcrypto::DesKey service_key = f.prng.NextDesKey();
  KeyHandle service = f.unit.LoadKey(service_key, KeyUsage::kServiceKey);
  krb4::Ticket4 ticket;
  ticket.service = krb4::Principal::Service("nfs", "fs", "ATHENA.SIM");
  ticket.client = Alice();
  ticket.client_addr = 7;
  ticket.lifetime = ksim::kHour;
  ticket.session_key = f.prng.NextDesKey().bytes();

  auto info = f.unit.DecryptTicket(service, ticket.Seal(service_key));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().client == Alice());
  EXPECT_EQ(info.value().client_addr, 7u);
  // The session key came back as a live handle.
  EXPECT_TRUE(f.unit.SealData(info.value().session_key, kerb::ToBytes("x")).ok());
}

TEST(EncryptionUnitTest, OperationLogRecordsActivity) {
  UnitFixture f;
  KeyHandle session = f.unit.GenerateKey(KeyUsage::kSessionKey);
  (void)f.unit.SealData(session, kerb::ToBytes("x"));
  (void)f.unit.SealData(f.login, kerb::ToBytes("x"));  // violation
  bool saw_seal = false, saw_violation = false;
  for (const auto& entry : f.unit.operation_log()) {
    if (entry == "seal-data") {
      saw_seal = true;
    }
    if (entry.find("usage-violation") != std::string::npos) {
      saw_violation = true;
    }
  }
  EXPECT_TRUE(saw_seal);
  EXPECT_TRUE(saw_violation);
}

TEST(EncryptionUnitTest, KeyUsageNames) {
  EXPECT_STREQ(KeyUsageName(KeyUsage::kLoginKey), "login");
  EXPECT_STREQ(KeyUsageName(KeyUsage::kTicketGranting), "ticket-granting");
  EXPECT_STREQ(KeyUsageName(KeyUsage::kServiceKey), "service");
  EXPECT_STREQ(KeyUsageName(KeyUsage::kSessionKey), "session");
}

}  // namespace
}  // namespace khsm
