// The HSM-backed client: the full V4 protocol with no key ever leaving the
// encryption unit.

#include "src/hsm/hsm_client.h"

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"
#include "src/crypto/str2key.h"

namespace khsm {
namespace {

using kattack::Testbed4;

struct HsmFixture {
  Testbed4 bed;
  EncryptionUnit unit{1234};
  HsmClient4 client{&bed.world().network(),
                    Testbed4::kAliceAddr,
                    bed.world().MakeHostClock(0),
                    bed.alice_principal(),
                    Testbed4::kAsAddr,
                    Testbed4::kTgsAddr,
                    &unit};
  KeyHandle login_key{unit.LoadKey(
      kcrypto::StringToKey(Testbed4::kAlicePassword, bed.alice_principal().Salt()),
      KeyUsage::kLoginKey)};
};

TEST(HsmClientTest, FullFlowWorksEndToEnd) {
  HsmFixture f;
  ASSERT_TRUE(f.client.Login(f.login_key).ok());
  auto reply = f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal(),
                                    kerb::ToBytes(""));
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(kerb::ToString(reply.value()), "You have 3 messages.");
  ASSERT_EQ(f.bed.mail_log().size(), 1u);
  EXPECT_EQ(f.bed.mail_log()[0], "mail-check alice@ATHENA.SIM");
}

TEST(HsmClientTest, MutualAuthVerifiedThroughTheUnit) {
  HsmFixture f;
  ASSERT_TRUE(f.client.Login(f.login_key).ok());
  // A forged server (wrong key) cannot produce a verifiable mutual reply.
  // Rebind the mail address to an impostor.
  f.bed.world().network().Bind(
      Testbed4::kMailAddr, [](const ksim::Message&) -> kerb::Result<kerb::Bytes> {
        kenc::Writer w;
        w.PutLengthPrefixed(kerb::Bytes(16, 0xaa));  // junk "mutual" proof
        return krb4::Frame4(krb4::MsgType::kApReply, w.Peek());
      });
  auto reply = f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal());
  EXPECT_FALSE(reply.ok());
}

TEST(HsmClientTest, NoKeyOctetsInHostResidentState) {
  HsmFixture f;
  ASSERT_TRUE(f.client.Login(f.login_key).ok());
  ASSERT_TRUE(f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal()).ok());
  ASSERT_TRUE(f.client.CallService(Testbed4::kFileAddr, f.bed.file_principal()).ok());

  auto keys = f.unit.DangerouslyExportAllKeyMaterialForLeakScan();
  ASSERT_GE(keys.size(), 3u);  // login + TGS session + 2 service sessions
  for (const auto& blob : f.client.HostResidentState()) {
    for (const auto& key : keys) {
      EXPECT_FALSE(kerb::ContainsSubsequence(blob, key))
          << "host-resident state must not contain key material";
    }
  }
}

TEST(HsmClientTest, ContrastSoftwareClientCacheHoldsRawKeys) {
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  // The plain client's cache contains the raw session key by design.
  const auto& creds = bed.alice().credentials().begin()->second;
  EXPECT_EQ(creds.session_key.bytes().size(), 8u);  // right there for the taking
}

TEST(HsmClientTest, LogoutDestroysHandles) {
  HsmFixture f;
  ASSERT_TRUE(f.client.Login(f.login_key).ok());
  ASSERT_TRUE(f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal()).ok());
  size_t keys_before = f.unit.key_count();
  f.client.Logout();
  EXPECT_LT(f.unit.key_count(), keys_before);
  EXPECT_FALSE(f.client.logged_in());
  EXPECT_FALSE(f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal()).ok());
}

TEST(HsmClientTest, ServiceTicketsCachedAsHandles) {
  HsmFixture f;
  ASSERT_TRUE(f.client.Login(f.login_key).ok());
  ASSERT_TRUE(f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal()).ok());
  uint64_t tgs_served = f.bed.kdc().tgs_requests_served();
  ASSERT_TRUE(f.client.CallService(Testbed4::kMailAddr, f.bed.mail_principal()).ok());
  EXPECT_EQ(f.bed.kdc().tgs_requests_served(), tgs_served);  // no second TGS trip
}

}  // namespace
}  // namespace khsm
