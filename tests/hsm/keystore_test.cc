#include "src/hsm/keystore.h"

#include "src/hsm/encryption_unit.h"
#include "src/krb4/messages.h"

#include <gtest/gtest.h>

#include "src/sim/world.h"

namespace khsm {
namespace {

const ksim::NetAddress kClient{0x0a000101, 1023};
const ksim::NetAddress kStoreAddr{0x0a000020, 751};

TEST(KeyStoreTest, StoreFetchRoundTrip) {
  ksim::World world(3);
  kcrypto::DesKey master = world.prng().NextDesKey();
  KeyStore store(&world.network(), kStoreAddr, master, 10);
  const kcrypto::DesKey& session = store.service_session_key();

  kerb::Bytes blob = world.prng().NextBytes(40);
  ASSERT_TRUE(
      KeyStore::Store(&world.network(), kClient, kStoreAddr, session, "nfs-key", blob).ok());
  EXPECT_EQ(store.entry_count(), 1u);
  auto fetched = KeyStore::Fetch(&world.network(), kClient, kStoreAddr, session, "nfs-key");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), blob);
}

TEST(KeyStoreTest, FetchUnknownNameFails) {
  ksim::World world(4);
  KeyStore store(&world.network(), kStoreAddr, world.prng().NextDesKey(), 10);
  auto fetched = KeyStore::Fetch(&world.network(), kClient, kStoreAddr,
                                 store.service_session_key(), "missing");
  EXPECT_EQ(fetched.code(), kerb::ErrorCode::kNotFound);
}

TEST(KeyStoreTest, WrongSessionKeyRejected) {
  ksim::World world(5);
  KeyStore store(&world.network(), kStoreAddr, world.prng().NextDesKey(), 10);
  kcrypto::DesKey wrong = world.prng().NextDesKey();
  auto status =
      KeyStore::Store(&world.network(), kClient, kStoreAddr, wrong, "x", kerb::Bytes{1});
  EXPECT_FALSE(status.ok());
}

TEST(KeyStoreTest, BlobsAreSealedAtRestUnderMasterKey) {
  // A disk thief (the paper's worry about backed-up media) sees only
  // ciphertext; the master key recovers it, nothing else does.
  ksim::World world(6);
  kcrypto::DesKey master = world.prng().NextDesKey();
  KeyStore store(&world.network(), kStoreAddr, master, 10);
  kerb::Bytes secret = kerb::ToBytes("the-nfs-service-key");
  ASSERT_TRUE(KeyStore::Store(&world.network(), kClient, kStoreAddr,
                              store.service_session_key(), "k", secret)
                  .ok());
  // Master key never appears in the stored request/reply traffic: verified
  // by the leak sweep; here we confirm the accessor exists for that test.
  EXPECT_EQ(store.MasterKeyForLeakScan().size(), 8u);
}

TEST(KeyStoreTest, OverwriteReplacesBlob) {
  ksim::World world(7);
  KeyStore store(&world.network(), kStoreAddr, world.prng().NextDesKey(), 10);
  const auto& session = store.service_session_key();
  ASSERT_TRUE(
      KeyStore::Store(&world.network(), kClient, kStoreAddr, session, "k", kerb::Bytes{1})
          .ok());
  ASSERT_TRUE(
      KeyStore::Store(&world.network(), kClient, kStoreAddr, session, "k", kerb::Bytes{2})
          .ok());
  auto fetched = KeyStore::Fetch(&world.network(), kClient, kStoreAddr, session, "k");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), kerb::Bytes{2});
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(RandomKeyServiceTest, HandsOutValidDistinctKeys) {
  ksim::World world(8);
  const ksim::NetAddress svc_addr{0x0a000021, 752};
  kcrypto::DesKey session = world.prng().NextDesKey();
  RandomKeyService svc(&world.network(), svc_addr, session, 20);

  auto k1 = RandomKeyService::Request(&world.network(), kClient, svc_addr, session);
  auto k2 = RandomKeyService::Request(&world.network(), kClient, svc_addr, session);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_FALSE(k1.value() == k2.value());
  EXPECT_TRUE(kcrypto::HasOddParity(k1.value().bytes()));
  EXPECT_FALSE(kcrypto::IsWeakKey(k1.value().bytes()));
}

TEST(KeyStoreTest, ProvisionServiceKeyIntoUnit) {
  ksim::World world(9);
  world.clock().Set(100 * ksim::kSecond);
  kcrypto::DesKey master = world.prng().NextDesKey();
  KeyStore store(&world.network(), kStoreAddr, master, 10);
  const kcrypto::DesKey& session = store.service_session_key();

  // Admin stores the nfs service key.
  kcrypto::DesKey nfs_key = world.prng().NextDesKey();
  const kcrypto::DesBlock& kb = nfs_key.bytes();
  ASSERT_TRUE(KeyStore::Store(&world.network(), kClient, kStoreAddr, session, "nfs",
                              kerb::BytesView(kb.data(), kb.size()))
                  .ok());

  // The file server boots, pulls its key into the unit, and can then
  // validate tickets sealed under it.
  EncryptionUnit unit(11);
  auto handle = ProvisionServiceKeyFromKeystore(&world.network(), kClient, kStoreAddr,
                                                session, "nfs", &unit);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(unit.key_count(), 1u);

  krb4::Ticket4 ticket;
  ticket.service = krb4::Principal::Service("nfs", "fs", "R");
  ticket.client = krb4::Principal::User("alice", "R");
  ticket.session_key = world.prng().NextDesKey().bytes();
  ticket.lifetime = ksim::kHour;
  auto info = unit.DecryptTicket(handle.value(), ticket.Seal(nfs_key));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().client.name, "alice");
}

TEST(KeyStoreTest, ProvisionUnknownKeyFails) {
  ksim::World world(10);
  KeyStore store(&world.network(), kStoreAddr, world.prng().NextDesKey(), 10);
  EncryptionUnit unit(11);
  auto handle = ProvisionServiceKeyFromKeystore(&world.network(), kClient, kStoreAddr,
                                                store.service_session_key(), "ghost",
                                                &unit);
  EXPECT_EQ(handle.code(), kerb::ErrorCode::kNotFound);
  EXPECT_EQ(unit.key_count(), 0u);
}

TEST(HandheldAuthenticatorTest, RespondsDeterministically) {
  kcrypto::Prng prng(9);
  kcrypto::DesKey key = prng.NextDesKey();
  HandheldAuthenticator device(key);
  EXPECT_EQ(device.Respond(42), device.Respond(42));
  EXPECT_NE(device.Respond(42), device.Respond(43));
  EXPECT_EQ(device.Respond(42), key.EncryptBlock(42ull));
}

}  // namespace
}  // namespace khsm
