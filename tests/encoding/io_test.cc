#include "src/encoding/io.h"

#include <gtest/gtest.h>

namespace kenc {
namespace {

TEST(IoTest, IntegerRoundTrip) {
  Writer w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  kerb::Bytes data = w.Take();
  EXPECT_EQ(data.size(), 1u + 2 + 4 + 8);

  Reader r(data);
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(IoTest, BigEndianOnTheWire) {
  Writer w;
  w.PutU32(0x01020304);
  EXPECT_EQ(w.Peek(), (kerb::Bytes{1, 2, 3, 4}));
}

TEST(IoTest, StringsAndLengthPrefixed) {
  Writer w;
  w.PutString("kerberos");
  w.PutLengthPrefixed(kerb::Bytes{9, 8, 7});
  w.PutString("");
  kerb::Bytes data = w.Take();

  Reader r(data);
  EXPECT_EQ(r.GetString().value(), "kerberos");
  EXPECT_EQ(r.GetLengthPrefixed().value(), (kerb::Bytes{9, 8, 7}));
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(IoTest, TruncationDetected) {
  Writer w;
  w.PutU32(42);
  kerb::Bytes data = w.Take();
  data.pop_back();
  Reader r(data);
  EXPECT_EQ(r.GetU32().error().code, kerb::ErrorCode::kBadFormat);
}

TEST(IoTest, LengthPrefixBeyondBufferRejected) {
  Writer w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutBytes(kerb::Bytes{1, 2, 3});
  Reader r(w.Peek());
  EXPECT_EQ(r.GetLengthPrefixed().error().code, kerb::ErrorCode::kBadFormat);
}

TEST(IoTest, RestReturnsUnconsumed) {
  Writer w;
  w.PutU8(1);
  w.PutBytes(kerb::Bytes{2, 3, 4});
  Reader r(w.Peek());
  ASSERT_TRUE(r.GetU8().ok());
  EXPECT_EQ(r.Rest(), (kerb::Bytes{2, 3, 4}));
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(IoTest, GetBytesExact) {
  kerb::Bytes data{1, 2, 3, 4, 5};
  Reader r(data);
  EXPECT_EQ(r.GetBytes(2).value(), (kerb::Bytes{1, 2}));
  EXPECT_EQ(r.GetBytes(3).value(), (kerb::Bytes{3, 4, 5}));
  EXPECT_FALSE(r.GetBytes(1).ok());
}

}  // namespace
}  // namespace kenc
