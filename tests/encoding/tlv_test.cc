#include "src/encoding/tlv.h"

#include <gtest/gtest.h>

namespace kenc {
namespace {

constexpr uint16_t kTypeTicket = 10;
constexpr uint16_t kTypeAuthenticator = 11;

TEST(TlvTest, RoundTripAllFieldKinds) {
  TlvMessage msg(kTypeTicket);
  msg.SetU32(1, 0xdeadbeef);
  msg.SetU64(2, 0x0123456789abcdefull);
  msg.SetString(3, "rlogin.myhost");
  msg.SetBytes(4, kerb::Bytes{9, 9, 9});

  auto decoded = TlvMessage::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type(), kTypeTicket);
  EXPECT_EQ(decoded.value().GetU32(1).value(), 0xdeadbeefu);
  EXPECT_EQ(decoded.value().GetU64(2).value(), 0x0123456789abcdefull);
  EXPECT_EQ(decoded.value().GetString(3).value(), "rlogin.myhost");
  EXPECT_EQ(decoded.value().GetBytes(4).value(), (kerb::Bytes{9, 9, 9}));
  EXPECT_TRUE(decoded.value() == msg);
}

TEST(TlvTest, MessageTypeDistinguishesContexts) {
  // The paper: "a ticket should never be interpretable as an authenticator,
  // or vice versa."
  TlvMessage ticket(kTypeTicket);
  ticket.SetString(1, "payload");
  kerb::Bytes wire = ticket.Encode();

  EXPECT_TRUE(TlvMessage::DecodeExpecting(kTypeTicket, wire).ok());
  auto as_auth = TlvMessage::DecodeExpecting(kTypeAuthenticator, wire);
  EXPECT_FALSE(as_auth.ok());
  EXPECT_EQ(as_auth.error().code, kerb::ErrorCode::kBadFormat);
}

TEST(TlvTest, TruncationRejected) {
  // "it is no longer possible for an attacker to truncate a message and
  // present the shortened form as a valid encrypted message."
  TlvMessage msg(kTypeTicket);
  msg.SetBytes(1, kerb::Bytes(32, 0xaa));
  msg.SetBytes(2, kerb::Bytes(32, 0xbb));
  kerb::Bytes wire = msg.Encode();
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    kerb::Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(TlvMessage::Decode(truncated).ok()) << "cut=" << cut;
  }
}

TEST(TlvTest, TrailingGarbageRejected) {
  TlvMessage msg(kTypeTicket);
  msg.SetU32(1, 7);
  kerb::Bytes wire = msg.Encode();
  wire.push_back(0x00);
  EXPECT_FALSE(TlvMessage::Decode(wire).ok());
}

TEST(TlvTest, DuplicateTagRejectedOnDecode) {
  // Hand-craft a message with the same tag twice.
  TlvMessage msg(kTypeTicket);
  msg.SetU32(1, 7);
  kerb::Bytes wire = msg.Encode();
  // Bump the field count and append a second copy of the tag-1 field.
  wire[3] = 2;
  kerb::Bytes field(wire.begin() + 4, wire.end());
  kerb::Append(wire, field);
  EXPECT_FALSE(TlvMessage::Decode(wire).ok());
}

TEST(TlvTest, OptionalFields) {
  TlvMessage msg(kTypeTicket);
  msg.SetU32(5, 99);
  EXPECT_EQ(msg.GetOptionalU32(5), std::optional<uint32_t>(99));
  EXPECT_EQ(msg.GetOptionalU32(6), std::nullopt);
  EXPECT_EQ(msg.GetOptionalBytes(6), std::nullopt);
  EXPECT_FALSE(msg.GetU32(6).ok());
}

TEST(TlvTest, RemoveAndOverwrite) {
  TlvMessage msg(kTypeTicket);
  msg.SetU32(1, 1);
  msg.SetU32(1, 2);  // overwrite
  EXPECT_EQ(msg.GetU32(1).value(), 2u);
  EXPECT_EQ(msg.field_count(), 1u);
  msg.Remove(1);
  EXPECT_FALSE(msg.Has(1));
}

TEST(TlvTest, MisSizedIntegerFieldRejected) {
  TlvMessage msg(kTypeTicket);
  msg.SetBytes(1, kerb::Bytes{1, 2, 3});  // 3 bytes, not 4
  EXPECT_FALSE(msg.GetU32(1).ok());
  EXPECT_FALSE(msg.GetU64(1).ok());
}

TEST(TlvTest, EmptyMessageRoundTrips) {
  TlvMessage msg(kTypeAuthenticator);
  auto decoded = TlvMessage::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type(), kTypeAuthenticator);
  EXPECT_EQ(decoded.value().field_count(), 0u);
}

TEST(TlvTest, DecodeRejectsEmptyBuffer) {
  EXPECT_FALSE(TlvMessage::Decode(kerb::Bytes{}).ok());
}

}  // namespace
}  // namespace kenc
