// Consistent-hash ring properties: determinism, balance, and the minimal-
// movement guarantee a rebalance leans on.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/ring.h"
#include "src/crypto/prng.h"

namespace {

using kcluster::HashRing;
using kcluster::RingConfig;
using kcluster::RingMember;

std::vector<RingMember> Members(int n) {
  std::vector<RingMember> members;
  for (int i = 0; i < n; ++i) {
    members.push_back({static_cast<uint64_t>(i + 1), 0x0a000010u + static_cast<uint32_t>(i)});
  }
  return members;
}

TEST(RingTest, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.OwnerOf(12345), nullptr);
}

TEST(RingTest, OwnershipIsDeterministicAcrossIndependentRings) {
  HashRing a((RingConfig()));
  HashRing b((RingConfig()));
  a.SetMembers(1, Members(5));
  b.SetMembers(7, Members(5));  // epoch does not affect placement
  kcrypto::Prng prng(42);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t h = prng.NextU64();
    ASSERT_EQ(a.OwnerOf(h)->node_id, b.OwnerOf(h)->node_id);
  }
}

TEST(RingTest, PointPlacementIsPureInSeedNodeAndVnode) {
  EXPECT_EQ(HashRing::PointOf(1, 2, 3), HashRing::PointOf(1, 2, 3));
  EXPECT_NE(HashRing::PointOf(1, 2, 3), HashRing::PointOf(1, 2, 4));
  EXPECT_NE(HashRing::PointOf(1, 2, 3), HashRing::PointOf(1, 3, 3));
  EXPECT_NE(HashRing::PointOf(2, 2, 3), HashRing::PointOf(1, 2, 3));
}

TEST(RingTest, VirtualNodesKeepThePartitionBalanced) {
  HashRing ring((RingConfig()));  // 64 vnodes
  ring.SetMembers(1, Members(4));
  std::map<uint64_t, int> counts;
  kcrypto::Prng prng(7);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[ring.OwnerOf(prng.NextU64())->node_id]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [id, count] : counts) {
    // Expected 25%; 64 vnodes keep the spread comfortably inside [12%, 42%].
    EXPECT_GT(count, kSamples * 12 / 100) << "node " << id;
    EXPECT_LT(count, kSamples * 42 / 100) << "node " << id;
  }
}

TEST(RingTest, RemovingOneMemberMovesOnlyItsKeys) {
  HashRing before((RingConfig()));
  before.SetMembers(1, Members(5));
  HashRing after((RingConfig()));
  std::vector<RingMember> survivors = Members(5);
  const uint64_t removed = survivors.back().node_id;
  survivors.pop_back();
  after.SetMembers(2, survivors);

  kcrypto::Prng prng(99);
  int moved = 0;
  int total = 20000;
  for (int i = 0; i < total; ++i) {
    const uint64_t h = prng.NextU64();
    const uint64_t owner_before = before.OwnerOf(h)->node_id;
    const uint64_t owner_after = after.OwnerOf(h)->node_id;
    if (owner_before != removed) {
      // The consistency property: survivors keep every key they had.
      ASSERT_EQ(owner_before, owner_after);
    } else {
      ++moved;
      ASSERT_NE(owner_after, removed);
    }
  }
  // Roughly a fifth of the space belonged to the removed node.
  EXPECT_GT(moved, total / 10);
  EXPECT_LT(moved, total * 4 / 10);
}

TEST(RingTest, AddingAMemberOnlyStealsKeys) {
  HashRing before((RingConfig()));
  before.SetMembers(1, Members(4));
  HashRing after((RingConfig()));
  after.SetMembers(2, Members(5));
  const uint64_t added = 5;

  kcrypto::Prng prng(1234);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t h = prng.NextU64();
    const uint64_t owner_before = before.OwnerOf(h)->node_id;
    const uint64_t owner_after = after.OwnerOf(h)->node_id;
    // A key either stays put or moves to the new member — never between
    // two old members.
    if (owner_after != owner_before) {
      ASSERT_EQ(owner_after, added);
    }
  }
}

TEST(RingTest, FindMemberLocatesByIdOnly) {
  HashRing ring((RingConfig()));
  ring.SetMembers(1, Members(3));
  ASSERT_NE(ring.FindMember(2), nullptr);
  EXPECT_EQ(ring.FindMember(2)->host, 0x0a000011u);
  EXPECT_EQ(ring.FindMember(42), nullptr);
}

TEST(RingTest, PrincipalOwnershipUsesTheStoreHash) {
  HashRing ring((RingConfig()));
  ring.SetMembers(1, Members(4));
  const krb4::Principal p = krb4::Principal::User("alice", "REALM");
  ASSERT_NE(ring.OwnerOfPrincipal(p), nullptr);
  EXPECT_EQ(ring.OwnerOfPrincipal(p)->node_id,
            ring.OwnerOf(krb4::PrincipalStore::Hash(p))->node_id);
}

}  // namespace
