// Cluster chaos: traffic through a faulty network while a node blacks out
// mid-stream, the controller rebalances under load, and a second node takes
// a device crash. The invariants under test are the paper's fail-closed
// discipline lifted to a cluster: every request either yields a verified
// credential or a clean error, no KDC node ever double-issues, and after
// recovery every node's database is byte-equivalent to its ring slice.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/obs/kobs.h"
#include "src/sim/faults.h"
#include "src/sim/world.h"

namespace {

using kcluster::ClusterChaosConfig;
using kcluster::ClusterChaosReport;
using kcluster::ClusterConfig;
using kcluster::ClusterController;
using kcluster::Population;
using kcluster::PopulationConfig;
using kcluster::Protocol;
using kcluster::RingMember;

ksim::FaultPlan ChaosPlan() {
  ksim::FaultPlan plan;
  plan.link.drop_request = 0.04;
  plan.link.drop_reply = 0.04;
  plan.link.duplicate_request = 0.05;
  plan.link.corrupt_request = 0.03;
  plan.link.corrupt_reply = 0.03;
  plan.link.delay = 2 * ksim::kMillisecond;
  plan.link.delay_jitter = 3 * ksim::kMillisecond;
  // Deliberately no reorder: a pre-rebalance request replayed after an epoch
  // change legitimately earns a different (referral) reply, which the
  // divergence detector would mis-read as a double issue.
  return plan;
}

struct ChaosRun {
  ClusterChaosReport report;
  uint64_t trace_digest = 0;
};

ChaosRun RunOnce(Protocol protocol, uint64_t world_seed) {
  kobs::ScopedTrace trace;
  ksim::World world(world_seed, ChaosPlan());

  PopulationConfig pc;
  pc.users = 1200;
  pc.services = 8;
  Population population(pc);

  ClusterConfig cc;
  cc.protocol = protocol;
  ClusterController controller(&world, cc);
  population.Install(controller.logical_db());
  controller.Bootstrap(
      {{1, 0x0a000010}, {2, 0x0a000011}, {3, 0x0a000012}, {4, 0x0a000013}});

  ClusterChaosConfig chaos;
  chaos.ops_per_phase = 120;
  ChaosRun run;
  run.report = RunClusterChaos(world, controller, population, chaos);
  run.trace_digest = trace->digest();
  return run;
}

TEST(ClusterChaosTest, EveryRequestSucceedsOrFailsClosedV4) {
  const ChaosRun run = RunOnce(Protocol::kV4, 0xc4a05);
  EXPECT_EQ(run.report.attempted, run.report.ok + run.report.failed_closed);
  EXPECT_GT(run.report.ok, 0u);
  // Faults make SOME requests fail even after retries — otherwise the plan
  // is too tame to mean anything.
  EXPECT_GT(run.report.failed_closed, 0u);
  EXPECT_EQ(run.report.internal_errors, 0u) << "kInternal leaked to a client";
  EXPECT_EQ(run.report.double_issues, 0u);
  EXPECT_TRUE(run.report.slices_consistent);
  // Blackout detection and the rejoin each bump the epoch at least once.
  EXPECT_GE(run.report.final_epoch, 3u);
}

TEST(ClusterChaosTest, EveryRequestSucceedsOrFailsClosedV5) {
  const ChaosRun run = RunOnce(Protocol::kV5, 0xc5a05);
  EXPECT_EQ(run.report.attempted, run.report.ok + run.report.failed_closed);
  EXPECT_GT(run.report.ok, 0u);
  EXPECT_EQ(run.report.internal_errors, 0u);
  EXPECT_EQ(run.report.double_issues, 0u);
  EXPECT_TRUE(run.report.slices_consistent);
}

TEST(ClusterChaosTest, ScheduleAndTraceDigestsAreRerunStable) {
  const ChaosRun a = RunOnce(Protocol::kV4, 0xd16e57);
  const ChaosRun b = RunOnce(Protocol::kV4, 0xd16e57);
  ASSERT_NE(a.report.schedule_digest, 0u);
  EXPECT_EQ(a.report.schedule_digest, b.report.schedule_digest);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.report.ok, b.report.ok);
  EXPECT_EQ(a.report.failed_closed, b.report.failed_closed);
  EXPECT_EQ(a.report.final_epoch, b.report.final_epoch);

  // A different seed produces a different fault schedule.
  const ChaosRun c = RunOnce(Protocol::kV4, 0xd16e58);
  EXPECT_NE(a.report.schedule_digest, c.report.schedule_digest);
}

}  // namespace
