// Tier-1 cluster smoke: a small population served across four nodes, with
// referral routing, node loss + rebalance, rejoin catch-up, and digest
// rerun-stability. The million-principal version of this scenario lives in
// bench/bench_b16_cluster.cc; this suite keeps the protocol honest at a
// size every CI run affords.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/cluster/router.h"
#include "src/krb4/client.h"
#include "src/krb5/client.h"
#include "src/obs/kobs.h"
#include "src/sim/world.h"

namespace {

using kcluster::ClusterConfig;
using kcluster::ClusterController;
using kcluster::ClusterLoadConfig;
using kcluster::ClusterLoadReport;
using kcluster::Population;
using kcluster::PopulationConfig;
using kcluster::Protocol;
using kcluster::RingMember;

std::vector<RingMember> FourNodes() {
  return {{1, 0x0a000010}, {2, 0x0a000011}, {3, 0x0a000012}, {4, 0x0a000013}};
}

PopulationConfig SmokePopulation() {
  PopulationConfig pc;
  pc.users = 1500;
  pc.services = 12;
  return pc;
}

ClusterLoadConfig SmokeLoad() {
  ClusterLoadConfig lc;
  lc.ops = 160;
  lc.client_pool = 8;
  lc.cold_clients = 2;
  return lc;
}

struct Cluster {
  ksim::World world;
  Population population;
  ClusterController controller;

  explicit Cluster(Protocol protocol, uint64_t seed = 0x5310c)
      : world(seed), population(SmokePopulation()), controller(&world, Config(protocol)) {
    population.Install(controller.logical_db());
    controller.Bootstrap(FourNodes());
  }

  static ClusterConfig Config(Protocol protocol) {
    ClusterConfig cc;
    cc.protocol = protocol;
    return cc;
  }
};

TEST(ClusterSmokeTest, LoadSpreadsAcrossAllFourNodesV4) {
  Cluster cluster(Protocol::kV4);
  const ClusterLoadReport report =
      RunClusterLoad(cluster.world, cluster.controller, cluster.population, SmokeLoad());

  EXPECT_EQ(report.attempted, 160u);
  EXPECT_EQ(report.ok, report.attempted) << "faultless world must not fail requests";
  EXPECT_EQ(report.internal_errors, 0u);
  EXPECT_GT(report.logins, 0u);
  EXPECT_GT(report.tgs_ops, 0u);
  // Cold clients bootstrap through referrals; warm ones hash-route direct.
  EXPECT_GT(report.routing.referrals_followed, 0u);
  EXPECT_GT(report.routing.direct_routes, 0u);
  EXPECT_GT(report.cold_referral_rate, 0.0);
  EXPECT_LT(report.cold_referral_rate, 0.5);
  // Zipf or not, four nodes all see work at this op count.
  for (uint64_t id : cluster.controller.node_ids()) {
    EXPECT_GT(cluster.controller.node(id)->requests_served(), 0u) << "node " << id;
  }
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());
}

TEST(ClusterSmokeTest, LoadSpreadsAcrossAllFourNodesV5) {
  Cluster cluster(Protocol::kV5);
  const ClusterLoadReport report =
      RunClusterLoad(cluster.world, cluster.controller, cluster.population, SmokeLoad());

  EXPECT_EQ(report.ok, report.attempted);
  EXPECT_EQ(report.internal_errors, 0u);
  EXPECT_GT(report.routing.referrals_followed, 0u);
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());
}

TEST(ClusterSmokeTest, ReferralTeachesAColdClientTheRing) {
  Cluster cluster(Protocol::kV4);
  // Find a user NOT owned by node 1, so a bootstrap login through node 1
  // must take exactly one referral hop.
  size_t ui = 0;
  while (cluster.controller.ring()
             .OwnerOfPrincipal(cluster.population.UserPrincipal(ui))
             ->node_id == 1) {
    ++ui;
  }
  const ClusterConfig& cc = cluster.controller.config();
  kcluster::ClientRouter router;  // cold: no view
  krb4::Client4 client(&cluster.world.network(), {0x0b000001, 4000},
                       cluster.world.MakeHostClock(),
                       cluster.population.UserPrincipal(ui), {0x0a000010, cc.as_port},
                       {0x0a000010, cc.tgs_port});
  router.Attach(client);

  ASSERT_TRUE(client.LoginWithKey(cluster.population.UserKey(ui)).ok());
  EXPECT_EQ(router.stats().referrals_followed, 1u);
  EXPECT_EQ(router.epoch(), 1u);

  // Second exchange goes straight to the owner: no new referral.
  client.Logout();
  ASSERT_TRUE(client.LoginWithKey(cluster.population.UserKey(ui)).ok());
  EXPECT_EQ(router.stats().referrals_followed, 1u);
  EXPECT_GT(router.stats().direct_routes, 0u);
}

TEST(ClusterSmokeTest, NodeLossRebalancesAndServingContinues) {
  Cluster cluster(Protocol::kV4);
  // Warm-up traffic, then kill node 2.
  ClusterLoadConfig warm = SmokeLoad();
  warm.ops = 40;
  ASSERT_EQ(RunClusterLoad(cluster.world, cluster.controller, cluster.population, warm).ok,
            40u);

  cluster.controller.node(2)->Crash();
  ASSERT_TRUE(cluster.controller.ProbeAll());
  EXPECT_FALSE(cluster.controller.node_up(2));
  EXPECT_EQ(cluster.controller.epoch(), 2u);
  // Survivors hold exactly the re-assigned slices.
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());

  // Serving continues: every request succeeds against the 3-node ring.
  ClusterLoadConfig degraded = SmokeLoad();
  degraded.ops = 60;
  degraded.seed = 99;
  const ClusterLoadReport report = RunClusterLoad(cluster.world, cluster.controller,
                                                  cluster.population, degraded);
  EXPECT_EQ(report.ok, report.attempted);
}

TEST(ClusterSmokeTest, RejoinCatchesUpWholesaleAndMatchesItsSlice) {
  Cluster cluster(Protocol::kV4);
  cluster.controller.node(3)->Crash();
  ASSERT_TRUE(cluster.controller.ProbeAll());

  // Mutations the dead node misses entirely.
  for (int i = 0; i < 8; ++i) {
    cluster.controller.logical_db().ApplyUpsert(
        krb4::Principal::User("late" + std::to_string(i), "ATHENA.MIT.EDU"),
        kcrypto::Prng(1000 + i).NextDesKey(), krb4::PrincipalKind::kUser);
  }
  cluster.controller.PropagateAll();
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());

  ASSERT_TRUE(cluster.controller.node(3)->Recover().ok());
  ASSERT_TRUE(cluster.controller.ProbeAll());
  EXPECT_TRUE(cluster.controller.node_up(3));
  EXPECT_EQ(cluster.controller.epoch(), 3u);
  EXPECT_GT(cluster.controller.stats().wholesale_transfers, 0u);

  // The recovered node's database is byte-equivalent to its ring slice,
  // and its durable LSN matches the controller's.
  EXPECT_TRUE(cluster.controller.NodeSliceConsistent(3));
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());
  EXPECT_EQ(cluster.controller.node(3)->applied_lsn(),
            cluster.controller.store().last_lsn());

  ClusterLoadConfig after = SmokeLoad();
  after.ops = 40;
  after.seed = 123;
  const ClusterLoadReport report = RunClusterLoad(cluster.world, cluster.controller,
                                                  cluster.population, after);
  EXPECT_EQ(report.ok, report.attempted);
}

TEST(ClusterSmokeTest, CrashRecoverWithoutMembershipChangeResyncs) {
  Cluster cluster(Protocol::kV4);
  // Quick crash + in-place recovery between probes: the node answers pings
  // again before the controller ever saw it down, but reports epoch 0.
  cluster.controller.node(1)->Crash();
  ASSERT_TRUE(cluster.controller.node(1)->Recover().ok());
  EXPECT_FALSE(cluster.controller.ProbeAll()) << "membership must not change";
  EXPECT_EQ(cluster.controller.epoch(), 1u);
  EXPECT_EQ(cluster.controller.node(1)->view_epoch(), 1u) << "ring re-taught";
  EXPECT_TRUE(cluster.controller.AllSlicesConsistent());
}

TEST(ClusterSmokeTest, DigestIsRerunStable) {
  auto run = [](Protocol protocol) {
    kobs::ScopedTrace trace;
    Cluster cluster(protocol);
    ClusterLoadConfig lc = SmokeLoad();
    lc.ops = 60;
    RunClusterLoad(cluster.world, cluster.controller, cluster.population, lc);
    cluster.controller.node(4)->Crash();
    cluster.controller.ProbeAll();
    cluster.controller.node(4)->Recover();
    cluster.controller.ProbeAll();
    return trace->digest();
  };
  EXPECT_EQ(run(Protocol::kV4), run(Protocol::kV4));
  EXPECT_EQ(run(Protocol::kV5), run(Protocol::kV5));
  EXPECT_NE(run(Protocol::kV4), run(Protocol::kV5));
}

}  // namespace
