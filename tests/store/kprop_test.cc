// Authenticated incremental propagation (kprop) tests.
//
// Three layers of coverage:
//   * sink-level — hand-built frames against a PropagationSink: replay,
//     reorder, splice, tamper, and wrong-key frames must all bounce off
//     the MAC/version checks (the paper's network adversary, pointed at
//     the database-propagation channel);
//   * replica-set level — Testbed4/Testbed5 with slave KDCs: registrations
//     reach slaves only through Propagate(), wholesale fallback after
//     compaction, interruption leaves a slave at a consistent prefix,
//     lost acks converge on retry;
//   * determinism — the full propagation event stream folds into the kobs
//     digest identically across reruns.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/str2key.h"
#include "src/krb4/kdcstore.h"
#include "src/obs/kobs.h"
#include "src/store/kprop.h"

namespace {

using kerb::ErrorCode;
using krb4::Principal;

kcrypto::DesKey PropKey() { return kcrypto::StringToKey("kprop-test", "R"); }

std::vector<kstore::WalRecord> Records(uint64_t from_lsn, int count) {
  std::vector<kstore::WalRecord> records;
  for (int i = 0; i < count; ++i) {
    records.push_back(kstore::WalRecord{from_lsn + 1 + static_cast<uint64_t>(i),
                                        kstore::kWalOpUpsert,
                                        kerb::ToBytes("payload" + std::to_string(i))});
  }
  return records;
}

ksim::Message Frame(kerb::Bytes payload) {
  ksim::Message msg;
  msg.src = {0x0a000058, kstore::kPropPort};
  msg.dst = {0x0a000059, kstore::kPropPort};
  msg.payload = std::move(payload);
  return msg;
}

// A sink whose applier counts every applied record, so the tests can tell
// "idempotently ignored" apart from "silently re-applied".
struct CountingSink {
  uint64_t applies = 0;
  uint64_t loads = 0;
  uint64_t loaded_lsn = 0;
  kstore::PropagationSink sink;

  explicit CountingSink(uint64_t applied_lsn = 0)
      : sink(PropKey(), applied_lsn,
             [this](uint8_t, kerb::BytesView) {
               ++applies;
               return kerb::Status::Ok();
             },
             [this](const kstore::Snapshot& snapshot) {
               ++loads;
               loaded_lsn = snapshot.lsn;
               return kerb::Status::Ok();
             }) {}
};

TEST(PropSinkTest, AppliesInOrderAndAcksTheNewLsn) {
  CountingSink s;
  auto reply = s.sink.Handle(Frame(kstore::EncodeDeltaFrame(PropKey(), 0, 3, Records(0, 3))));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(s.applies, 3u);
  EXPECT_EQ(s.sink.applied_lsn(), 3u);
  auto ack = kstore::ParseAckFrame(PropKey(), reply.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 3u);
}

TEST(PropSinkTest, ReplayedFrameIsIdempotentlyReAcked) {
  CountingSink s;
  const kerb::Bytes frame = kstore::EncodeDeltaFrame(PropKey(), 0, 2, Records(0, 2));
  ASSERT_TRUE(s.sink.Handle(Frame(frame)).ok());
  EXPECT_EQ(s.applies, 2u);

  // The adversary replays the transfer. Nothing is re-applied; the slave
  // re-acks its position so a primary that lost the first ack converges.
  auto reply = s.sink.Handle(Frame(frame));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(s.applies, 2u);
  EXPECT_EQ(s.sink.applied_lsn(), 2u);
  auto ack = kstore::ParseAckFrame(PropKey(), reply.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 2u);
}

TEST(PropSinkTest, ReorderedOldDeltaCannotRollBack) {
  CountingSink s;
  const kerb::Bytes first = kstore::EncodeDeltaFrame(PropKey(), 0, 2, Records(0, 2));
  const kerb::Bytes second = kstore::EncodeDeltaFrame(PropKey(), 2, 4, Records(2, 2));
  ASSERT_TRUE(s.sink.Handle(Frame(first)).ok());
  ASSERT_TRUE(s.sink.Handle(Frame(second)).ok());
  ASSERT_TRUE(s.sink.Handle(Frame(first)).ok());  // late re-delivery
  EXPECT_EQ(s.applies, 4u);
  EXPECT_EQ(s.sink.applied_lsn(), 4u);
}

TEST(PropSinkTest, OverlappingDeltaAppliesOnlyTheUnseenSuffix) {
  CountingSink s;
  // A delayed (0,2] frame lands first; the primary, whose ack for it was
  // lost, re-sends from its older cursor as (0,4]. The overlap frame is
  // authentic and contiguous, so the slave applies just the unseen (2,4]
  // suffix and acks 4 — the lost-ack race self-heals instead of wedging
  // propagation in a permanent reject loop.
  ASSERT_TRUE(s.sink.Handle(Frame(kstore::EncodeDeltaFrame(PropKey(), 0, 2, Records(0, 2)))).ok());
  EXPECT_EQ(s.applies, 2u);
  auto reply = s.sink.Handle(Frame(kstore::EncodeDeltaFrame(PropKey(), 0, 4, Records(0, 4))));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(s.applies, 4u);  // records 3 and 4 once, 1 and 2 never again
  EXPECT_EQ(s.sink.applied_lsn(), 4u);
  auto ack = kstore::ParseAckFrame(PropKey(), reply.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 4u);
}

TEST(PropSinkTest, SplicedGapIsARejectedReplay) {
  CountingSink s;
  // The adversary suppresses (0,2] and forwards only (2,4] — an interior
  // splice. The slave must refuse rather than apply records out of order.
  auto reply = s.sink.Handle(Frame(kstore::EncodeDeltaFrame(PropKey(), 2, 4, Records(2, 2))));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kReplay);
  EXPECT_EQ(s.applies, 0u);
  EXPECT_EQ(s.sink.applied_lsn(), 0u);
}

TEST(PropSinkTest, TamperedAndForgedFramesFailTheMac) {
  CountingSink s;
  kerb::Bytes frame = kstore::EncodeDeltaFrame(PropKey(), 0, 1, Records(0, 1));
  for (size_t i = 0; i < frame.size(); ++i) {
    kerb::Bytes bent = frame;
    bent[i] ^= 0x40;
    auto reply = s.sink.Handle(Frame(bent));
    ASSERT_FALSE(reply.ok()) << "bit flip at byte " << i << " accepted";
    EXPECT_EQ(reply.error().code, ErrorCode::kIntegrity) << "byte " << i;
  }
  // A frame sealed under the wrong key is a forgery, not a protocol error.
  kcrypto::DesKey wrong = kcrypto::StringToKey("not-the-kprop-key", "R");
  auto reply = s.sink.Handle(Frame(kstore::EncodeDeltaFrame(wrong, 0, 1, Records(0, 1))));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kIntegrity);
  EXPECT_EQ(s.applies, 0u);
}

TEST(PropSinkTest, StaleWholesaleSnapshotCannotRollBack) {
  CountingSink s(/*applied_lsn=*/10);
  kstore::Snapshot old_snapshot;
  old_snapshot.lsn = 4;
  old_snapshot.entries.push_back(kerb::ToBytes("ancient"));
  auto reply = s.sink.Handle(
      Frame(kstore::EncodeWholesaleFrame(PropKey(), kstore::EncodeSnapshot(old_snapshot))));
  ASSERT_TRUE(reply.ok());  // acked, so the primary learns the real position
  EXPECT_EQ(s.loads, 0u);
  auto ack = kstore::ParseAckFrame(PropKey(), reply.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 10u);

  kstore::Snapshot fresh = old_snapshot;
  fresh.lsn = 11;
  ASSERT_TRUE(
      s.sink.Handle(Frame(kstore::EncodeWholesaleFrame(PropKey(), kstore::EncodeSnapshot(fresh))))
          .ok());
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.loaded_lsn, 11u);
  EXPECT_EQ(s.sink.applied_lsn(), 11u);
}

// --- Replica-set level ------------------------------------------------------

TEST(PropReplicaTest, RegistrationsReachSlavesOnlyThroughPropagation) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 2;
  kattack::Testbed4 tb(config);

  const Principal carol = Principal::User("carol", tb.realm);
  tb.kdc().database().AddUser(carol, "carols-password");
  EXPECT_TRUE(tb.kdc().database().Has(carol));
  EXPECT_FALSE(tb.kdc_replicas().slave(0).database().Has(carol));
  EXPECT_FALSE(tb.kdc_replicas().slave(1).database().Has(carol));

  tb.kdc_replicas().Propagate();

  const auto& report = tb.kdc_replicas().propagation()->last_report();
  EXPECT_TRUE(report.slaves_converged);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.records_shipped, 2u);  // one record to each of two slaves
  EXPECT_EQ(report.wholesale_transfers, 0u);
  for (int i = 0; i < 2; ++i) {
    auto& slave_db = tb.kdc_replicas().slave(i).database();
    ASSERT_TRUE(slave_db.Has(carol)) << "slave " << i;
    EXPECT_EQ(slave_db.Lookup(carol).value().bytes(),
              tb.kdc().database().Lookup(carol).value().bytes());
  }
}

TEST(PropReplicaTest, DeletionsPropagateToo) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 1;
  kattack::Testbed4 tb(config);

  const Principal bob = tb.bob_principal();
  ASSERT_TRUE(tb.kdc().database().Remove(bob));
  ASSERT_TRUE(tb.kdc_replicas().slave(0).database().Has(bob));  // not yet shipped
  tb.kdc_replicas().Propagate();
  EXPECT_FALSE(tb.kdc_replicas().slave(0).database().Has(bob));
  EXPECT_EQ(tb.kdc_replicas().slave(0).database().size(), tb.kdc().database().size());
}

TEST(PropReplicaTest, CompactionForcesWholesaleAndConverges) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 1;
  config.extra_users = 20;
  kattack::Testbed4 tb(config);
  auto* prop = tb.kdc_replicas().propagation();

  // The slave converges at LSN 1, then the primary registers another user
  // and compacts: the delta the slave needs is now behind the horizon.
  tb.kdc().database().AddUser(Principal::User("carol", tb.realm), "pw-carol");
  tb.kdc_replicas().Propagate();
  ASSERT_TRUE(prop->last_report().slaves_converged);

  tb.kdc().database().AddUser(Principal::User("dave", tb.realm), "pw-dave");
  prop->Compact();
  tb.kdc_replicas().Propagate();

  const auto& report = prop->last_report();
  EXPECT_TRUE(report.slaves_converged);
  EXPECT_EQ(report.wholesale_transfers, 1u);
  EXPECT_EQ(report.records_shipped, 0u);
  auto& slave_db = tb.kdc_replicas().slave(0).database();
  EXPECT_TRUE(slave_db.Has(Principal::User("dave", tb.realm)));
  EXPECT_EQ(slave_db.size(), tb.kdc().database().size());
  EXPECT_EQ(slave_db.Principals(), tb.kdc().database().Principals());
}

TEST(PropReplicaTest, DeltaIsStrictlySmallerThanWholesaleForSmallChanges) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 1;
  config.extra_users = 30;
  kattack::Testbed4 tb(config);
  auto* prop = tb.kdc_replicas().propagation();

  // One-user delta...
  tb.kdc().database().AddUser(Principal::User("carol", tb.realm), "pw-carol");
  tb.kdc_replicas().Propagate();
  const uint64_t delta_bytes = prop->last_report().bytes_sent;
  ASSERT_TRUE(prop->last_report().slaves_converged);

  // ...versus a wholesale transfer of the (mostly unchanged) database.
  tb.kdc().database().AddUser(Principal::User("dave", tb.realm), "pw-dave");
  prop->Compact();
  tb.kdc_replicas().Propagate();
  const uint64_t wholesale_bytes = prop->last_report().wholesale_bytes;

  ASSERT_GT(delta_bytes, 0u);
  ASSERT_GT(wholesale_bytes, 0u);
  EXPECT_LT(delta_bytes * 10, wholesale_bytes)
      << "incremental propagation should beat wholesale by an order of "
         "magnitude on a 30-user database (delta="
      << delta_bytes << " wholesale=" << wholesale_bytes << ")";
}

TEST(PropReplicaTest, DroppedFramesLeavePrefixThenRetryConverges) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 1;
  config.faults = ksim::FaultPlan{};
  kattack::Testbed4 tb(config);
  const uint32_t slave_host = kattack::Testbed4::kAsAddr.host + 1;
  auto& slave_db = tb.kdc_replicas().slave(0).database();

  std::vector<Principal> added;
  for (int i = 0; i < 10; ++i) {
    Principal p = Principal::User("prefix-user" + std::to_string(i), tb.realm);
    tb.kdc().database().AddUser(p, "pw" + std::to_string(i));
    added.push_back(p);
  }

  // Half the requests to the slave vanish: the cycle is interrupted at a
  // chunk boundary. Whatever happened, the slave must hold a PREFIX of the
  // registration history — never user k without every user before k.
  tb.world().faults()->plan().per_host[slave_host].drop_request = 0.5;
  tb.kdc_replicas().Propagate();
  size_t prefix = 0;
  while (prefix < added.size() && slave_db.Has(added[prefix])) {
    ++prefix;
  }
  for (size_t i = prefix; i < added.size(); ++i) {
    EXPECT_FALSE(slave_db.Has(added[i]))
        << "slave holds user " << i << " but is missing user " << prefix
        << " — not a prefix of the history";
  }
  EXPECT_LT(prefix, added.size()) << "with 50% request drop some frame should have failed";
  EXPECT_GT(tb.kdc_replicas().propagation()->last_report().failures, 0u);

  // Faults clear; the next cycle resumes from the acknowledged prefix.
  tb.world().faults()->plan().per_host[slave_host].drop_request = 0;
  tb.kdc_replicas().Propagate();
  EXPECT_TRUE(tb.kdc_replicas().propagation()->last_report().slaves_converged);
  for (const Principal& p : added) {
    EXPECT_TRUE(slave_db.Has(p));
  }
}

TEST(PropReplicaTest, LostAcksConvergeOnRetryWithoutDoubleApply) {
  kattack::TestbedConfig config;
  config.kdc_slaves = 1;
  config.faults = ksim::FaultPlan{};
  kattack::Testbed4 tb(config);
  const uint32_t slave_host = kattack::Testbed4::kAsAddr.host + 1;
  auto& slave_db = tb.kdc_replicas().slave(0).database();

  const Principal carol = Principal::User("carol", tb.realm);
  tb.kdc().database().AddUser(carol, "pw-carol");

  // The slave applies the delta but its ack never arrives: from the
  // primary's side the cycle failed.
  tb.world().faults()->plan().per_host[slave_host].drop_reply = 1.0;
  tb.kdc_replicas().Propagate();
  EXPECT_GT(tb.kdc_replicas().propagation()->last_report().failures, 0u);
  EXPECT_FALSE(tb.kdc_replicas().propagation()->last_report().slaves_converged);
  EXPECT_TRUE(slave_db.Has(carol));  // the delta itself did land

  // On retry the slave sees a stale re-send, re-acks idempotently, and the
  // primary catches up to reality.
  tb.world().faults()->plan().per_host[slave_host].drop_reply = 0;
  tb.kdc_replicas().Propagate();
  const auto& report = tb.kdc_replicas().propagation()->last_report();
  EXPECT_TRUE(report.slaves_converged);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(slave_db.Lookup(carol).value().bytes(),
            tb.kdc().database().Lookup(carol).value().bytes());
}

TEST(PropReplicaTest, Krb5ReplicaSetPropagatesTheSameWay) {
  kattack::Testbed5Config config;
  config.kdc_slaves = 2;
  kattack::Testbed5 tb(config);

  const Principal carol = Principal::User("carol", tb.realm);
  tb.kdc().database().AddUser(carol, "carols-password");
  EXPECT_FALSE(tb.kdc_replicas().slave(0).database().Has(carol));

  tb.kdc_replicas().Propagate();

  const auto& report = tb.kdc_replicas().propagation()->last_report();
  EXPECT_TRUE(report.slaves_converged);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(tb.kdc_replicas().slave(i).database().Has(carol)) << "slave " << i;
  }
}

TEST(PropReplicaTest, ZeroSlaveSetsBuildNoPropagationMachinery) {
  kattack::Testbed4 tb4;
  EXPECT_EQ(tb4.kdc_replicas().propagation(), nullptr);
  kattack::Testbed5 tb5;
  EXPECT_EQ(tb5.kdc_replicas().propagation(), nullptr);
}

// --- Determinism ------------------------------------------------------------

TEST(PropObsTest, PropagationDigestIsRerunStable) {
  auto run = [] {
    kobs::ScopedTrace trace;
    kattack::TestbedConfig config;
    config.kdc_slaves = 2;
    config.extra_users = 5;
    kattack::Testbed4 tb(config);
    tb.kdc().database().AddUser(Principal::User("carol", tb.realm), "pw-carol");
    tb.kdc_replicas().Propagate();
    tb.kdc().database().Remove(Principal::User("carol", tb.realm));
    tb.kdc_replicas().propagation()->Compact();
    tb.kdc_replicas().Propagate();
    return trace->digest();
  };
  const uint64_t first = run();
  const uint64_t second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0xcbf29ce484222325ull) << "trace saw no digest-stable events";
}

}  // namespace
