// Recovery-equivalence property test: snapshot + replayed WAL prefix must
// reconstruct exactly the in-memory database state at the recovered LSN.
//
// A random walk of journaled mutations (upserts, deletes, compactions) on
// a KdcDatabase backed by a faulty simulated disk, punctuated by crashes.
// After each crash + recovery the test rebuilds a database from the
// recovered durable state (base snapshot load + record replay) and
// independently rebuilds the model database by applying the logical
// operation history up to the recovered LSN. The two must agree principal
// for principal, key for key — the same model-vs-implementation discipline
// as tests/obs/cache_model_test.cc, pointed at the storage engine.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/krb4/database.h"
#include "src/krb4/kdcstore.h"
#include "src/store/kstore.h"

namespace {

using krb4::KdcDatabase;
using krb4::Principal;
using krb4::PrincipalKind;

struct LoggedOp {
  uint8_t op;
  Principal principal;
  kcrypto::DesKey key;
  PrincipalKind kind = PrincipalKind::kUser;
  // Key rotations ride the same WAL upsert records but are logically
  // distinct: the model must re-derive the ring (kvno bump, drain deadline
  // on the outgoing version, cap pruning) rather than overwrite it.
  bool rotate = false;
  ksim::Time now = 0;
  ksim::Time retain_until = 0;
};

// Applies history[0..upto) to a fresh database holding `initial`.
KdcDatabase ModelAt(const KdcDatabase& initial, const std::vector<LoggedOp>& history,
                    size_t upto) {
  KdcDatabase model = initial;  // copies entries only, never the journal
  for (size_t i = 0; i < upto; ++i) {
    const LoggedOp& op = history[i];
    if (op.rotate) {
      EXPECT_TRUE(model.RotateKey(op.principal, op.key, op.now, op.retain_until).ok());
    } else if (op.op == kstore::kWalOpUpsert) {
      model.ApplyUpsert(op.principal, op.key, op.kind);
    } else {
      model.Remove(op.principal);
    }
  }
  return model;
}

void ExpectSameDatabase(KdcDatabase& got, KdcDatabase& want, const char* what) {
  auto got_principals = got.Principals();
  auto want_principals = want.Principals();
  ASSERT_EQ(got_principals, want_principals) << what << ": entry sets differ";
  for (const Principal& principal : want_principals) {
    auto got_entry = got.LookupEntry(principal);
    auto want_entry = want.LookupEntry(principal);
    ASSERT_TRUE(got_entry.ok() && want_entry.ok());
    EXPECT_EQ(static_cast<int>(got_entry.value().kind),
              static_cast<int>(want_entry.value().kind))
        << what << ": kind differs for " << principal.ToString();
    EXPECT_EQ(got_entry.value().max_life, want_entry.value().max_life)
        << what << ": max_life differs for " << principal.ToString();
    EXPECT_EQ(got_entry.value().max_renew, want_entry.value().max_renew)
        << what << ": max_renew differs for " << principal.ToString();
    // The whole ring, version for version: a recovery that restored only
    // the current key would break every in-flight old-kvno ticket.
    ASSERT_EQ(got_entry.value().keys.size(), want_entry.value().keys.size())
        << what << ": ring depth differs for " << principal.ToString();
    for (size_t v = 0; v < want_entry.value().keys.size(); ++v) {
      EXPECT_EQ(got_entry.value().keys[v].kvno, want_entry.value().keys[v].kvno)
          << what << ": kvno[" << v << "] differs for " << principal.ToString();
      EXPECT_EQ(got_entry.value().keys[v].not_after, want_entry.value().keys[v].not_after)
          << what << ": not_after[" << v << "] differs for " << principal.ToString();
      EXPECT_EQ(got_entry.value().keys[v].key.bytes(), want_entry.value().keys[v].key.bytes())
          << what << ": key[" << v << "] differs for " << principal.ToString();
    }
  }
}

TEST(RecoveryModelTest, SnapshotPlusWalPrefixEqualsModel) {
  kcrypto::Prng prng(0x57012e'01);
  kstore::KStoreOptions options;
  options.dev_faults = kstore::DevFaultPlan{/*lost_flush=*/0.25, /*torn_tail=*/0.5};

  // Pre-journal population — captured by the base snapshot at LSN 0.
  KdcDatabase db;
  for (int i = 0; i < 6; ++i) {
    db.AddUser(Principal::User("seed" + std::to_string(i), "R"), "pw" + std::to_string(i));
  }
  const KdcDatabase initial = db;

  kstore::KStore store(kcrypto::Prng(0xd15c), options, krb4::SnapshotDatabase(db, 0));
  db.AttachJournal(&store);

  std::vector<LoggedOp> history;  // history[i] holds the op journaled at LSN i+1
  int crashes = 0;
  int compactions = 0;
  int rotations = 0;
  ksim::Time now = 0;  // virtual clock for rotation drain deadlines

  auto random_principal = [&] {
    return Principal::User("u" + std::to_string(prng.NextBelow(10)), "R");
  };

  for (int step = 0; step < 600; ++step) {
    now += static_cast<ksim::Time>(prng.NextBelow(60)) * ksim::kSecond;
    const uint64_t dice = prng.NextBelow(100);
    if (dice < 45) {
      LoggedOp op{kstore::kWalOpUpsert, random_principal(), prng.NextDesKey(),
                  prng.NextBelow(2) == 0 ? PrincipalKind::kUser : PrincipalKind::kService};
      db.ApplyUpsert(op.principal, op.key, op.kind);
      history.push_back(std::move(op));
    } else if (dice < 60) {
      // Rotation: one journaled upsert of the whole ring — kvno bump, drain
      // deadline on the outgoing version, cap pruning.
      LoggedOp op{kstore::kWalOpUpsert, random_principal(), prng.NextDesKey(),
                  PrincipalKind::kUser, /*rotate=*/true, now, now + 8 * ksim::kHour};
      if (db.Has(op.principal)) {
        ASSERT_TRUE(db.RotateKey(op.principal, op.key, op.now, op.retain_until).ok());
        history.push_back(std::move(op));
        ++rotations;
      }
    } else if (dice < 75) {
      Principal victim = random_principal();
      if (db.Has(victim)) {
        db.Remove(victim);
        history.push_back(LoggedOp{kstore::kWalOpDelete, std::move(victim), {}, {}});
      }
    } else if (dice < 85) {
      store.Compact(krb4::SnapshotDatabase(db, store.last_lsn()));
      ++compactions;
    } else {
      store.Crash();
      auto recovered = store.Recover();
      ASSERT_TRUE(recovered.ok()) << "step " << step << ": " << recovered.error().ToString();
      const uint64_t last = recovered.value().last_lsn;
      ASSERT_LE(last, history.size()) << "recovered past everything ever journaled";

      // Rebuild from durable state: base snapshot, then record replay.
      KdcDatabase rebuilt;
      ASSERT_TRUE(krb4::LoadSnapshotEntries(rebuilt, recovered.value().base).ok());
      for (const kstore::WalRecord& record : recovered.value().records) {
        ASSERT_TRUE(krb4::ApplyStoreRecord(rebuilt, record.op, record.payload).ok());
      }

      KdcDatabase model = ModelAt(initial, history, static_cast<size_t>(last));
      ExpectSameDatabase(rebuilt, model, "recovery");
      if (HasFatalFailure()) {
        return;
      }

      // "Restart": adopt the recovered state as the live database (the
      // copy assignment keeps the journal attachment) and forget the ops
      // the disk lost — they were never acknowledged as durable.
      db = rebuilt;
      history.resize(static_cast<size_t>(last));
      ++crashes;
    }
  }
  // The walk must actually have exercised the interesting transitions.
  EXPECT_GT(crashes, 10);
  EXPECT_GT(compactions, 10);
  EXPECT_GT(rotations, 10);
  EXPECT_GT(store.device().flushes_lost(), 0u);
  EXPECT_GT(store.device().tails_torn(), 0u);
}

TEST(RecoveryModelTest, HonestDiskLosesNothing) {
  // With no device faults every acknowledged op survives any crash point.
  kcrypto::Prng prng(0xbeef);
  KdcDatabase db;
  db.AddUser(Principal::User("root", "R"), "toor");
  const KdcDatabase initial = db;
  kstore::KStore store(kcrypto::Prng(3), {}, krb4::SnapshotDatabase(db, 0));
  db.AttachJournal(&store);

  std::vector<LoggedOp> history;
  for (int i = 0; i < 100; ++i) {
    LoggedOp op{kstore::kWalOpUpsert, Principal::User("u" + std::to_string(i % 7), "R"),
                prng.NextDesKey(), PrincipalKind::kUser};
    db.ApplyUpsert(op.principal, op.key, op.kind);
    history.push_back(std::move(op));
    if (i % 17 == 0) {
      store.Crash();
      auto recovered = store.Recover();
      ASSERT_TRUE(recovered.ok());
      ASSERT_EQ(recovered.value().last_lsn, history.size())
          << "an honest disk must lose no acknowledged append";
      ASSERT_EQ(recovered.value().discarded_bytes, 0u);
      KdcDatabase rebuilt;
      ASSERT_TRUE(krb4::LoadSnapshotEntries(rebuilt, recovered.value().base).ok());
      for (const kstore::WalRecord& record : recovered.value().records) {
        ASSERT_TRUE(krb4::ApplyStoreRecord(rebuilt, record.op, record.payload).ok());
      }
      KdcDatabase model = ModelAt(initial, history, history.size());
      ExpectSameDatabase(rebuilt, model, "honest-disk recovery");
    }
  }
}

}  // namespace
