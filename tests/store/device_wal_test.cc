// The simulated device, the WAL codec, and the KStore engine — durability
// semantics under honest operation, injected storage faults, and crashes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/store/blockdev.h"
#include "src/store/kstore.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"

namespace {

kerb::Bytes B(std::string_view s) { return kerb::ToBytes(s); }

// --- SimDevice --------------------------------------------------------------

TEST(SimDeviceTest, AppendIsVolatileUntilFlushed) {
  kstore::SimDevice dev;
  dev.Append("f", B("hello"));
  EXPECT_EQ(dev.size("f"), 5u);
  EXPECT_EQ(dev.durable_size("f"), 0u);
  dev.Crash();
  EXPECT_EQ(dev.size("f"), 0u) << "unflushed tail must not survive power loss";

  dev.Append("f", B("hello"));
  dev.Flush("f");
  EXPECT_EQ(dev.durable_size("f"), 5u);
  dev.Crash();
  EXPECT_EQ(dev.ReadAll("f"), B("hello"));
}

TEST(SimDeviceTest, WriteAtomicIsAllOrNothing) {
  kstore::SimDevice dev;
  dev.Append("f", B("old"));
  dev.Flush("f");

  // Staged but not flushed: readers see the new content, a crash reverts.
  dev.WriteAtomic("f", B("replacement"));
  EXPECT_EQ(dev.ReadAll("f"), B("replacement"));
  dev.Crash();
  EXPECT_EQ(dev.ReadAll("f"), B("old")) << "unflushed rename must revert wholesale";

  dev.WriteAtomic("f", B("replacement"));
  dev.Flush("f");
  dev.Crash();
  EXPECT_EQ(dev.ReadAll("f"), B("replacement"));
}

TEST(SimDeviceTest, LostFlushLeavesBytesVolatile) {
  kstore::SimDevice dev(kcrypto::Prng(7), kstore::DevFaultPlan{/*lost_flush=*/1.0, 0});
  dev.Append("f", B("doomed"));
  dev.Flush("f");
  EXPECT_EQ(dev.flushes_lost(), 1u);
  EXPECT_EQ(dev.durable_size("f"), 0u) << "a lost flush hardened nothing";
  dev.Crash();
  EXPECT_EQ(dev.size("f"), 0u);
}

TEST(SimDeviceTest, TornTailPersistsAPrefix) {
  kstore::SimDevice dev(kcrypto::Prng(7), kstore::DevFaultPlan{0, /*torn_tail=*/1.0});
  const kerb::Bytes tail = B("0123456789abcdef");
  dev.Append("f", tail);
  dev.Crash();
  EXPECT_EQ(dev.tails_torn(), 1u);
  const kerb::Bytes after = dev.ReadAll("f");
  ASSERT_LT(after.size(), tail.size());
  EXPECT_TRUE(std::equal(after.begin(), after.end(), tail.begin()))
      << "a torn write may keep only a prefix of the tail";
}

TEST(SimDeviceTest, OpDigestIsDeterministicAndHistorySensitive) {
  auto run = [](bool extra) {
    kstore::SimDevice dev(kcrypto::Prng(99), kstore::DevFaultPlan{0.5, 0.5});
    dev.Append("wal", B("abc"));
    dev.Flush("wal");
    dev.WriteAtomic("snap", B("s1"));
    dev.Flush("snap");
    if (extra) {
      dev.Append("wal", B("d"));
    }
    dev.Crash();
    return dev.op_digest();
  };
  EXPECT_EQ(run(false), run(false)) << "same seed + same ops must replay identically";
  EXPECT_NE(run(false), run(true));
}

// --- WAL framing ------------------------------------------------------------

TEST(WalTest, FrameRoundTrips) {
  kstore::WalRecord record{42, kstore::kWalOpUpsert, B("payload-bytes")};
  kerb::Bytes frame = kstore::EncodeWalFrame(record);
  kenc::Reader r(frame);
  auto parsed = kstore::ParseWalFrame(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(parsed.value().lsn, 42u);
  EXPECT_EQ(parsed.value().op, kstore::kWalOpUpsert);
  EXPECT_EQ(parsed.value().payload, B("payload-bytes"));
}

TEST(WalTest, EveryTruncationAndBitFlipFailsClosed) {
  kerb::Bytes frame =
      kstore::EncodeWalFrame(kstore::WalRecord{7, kstore::kWalOpDelete, B("victim")});
  for (size_t len = 0; len < frame.size(); ++len) {
    kerb::Bytes cut(frame.begin(), frame.begin() + len);
    kenc::Reader r(cut);
    auto parsed = kstore::ParseWalFrame(r);
    ASSERT_FALSE(parsed.ok()) << "truncation to " << len;
    EXPECT_NE(parsed.error().code, kerb::ErrorCode::kInternal);
  }
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    kerb::Bytes flipped = frame;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    kenc::Reader r(flipped);
    auto parsed = kstore::ParseWalFrame(r);
    // A flip confined to the payload-length byte could in principle still
    // frame validly, but the CRC covers the whole body, so every flip that
    // parses must have been caught — i.e. none may parse.
    ASSERT_FALSE(parsed.ok() && r.AtEnd() && parsed.value().payload == B("victim") &&
                 parsed.value().lsn == 7)
        << "bit " << bit << " flip went unnoticed";
  }
}

TEST(WalTest, ScanToleratesTornTailOnly) {
  kerb::Bytes image;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    kerb::Append(image, kstore::EncodeWalFrame(
                            {lsn, kstore::kWalOpUpsert, B("r" + std::to_string(lsn))}));
  }
  const size_t intact = image.size();
  // A torn 4th frame: only half of it made the platter.
  kerb::Bytes torn = kstore::EncodeWalFrame({4, kstore::kWalOpUpsert, B("torn")});
  torn.resize(torn.size() / 2);
  kerb::Append(image, torn);

  auto scan = kstore::ScanWal(image);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 3u);
  EXPECT_EQ(scan.value().valid_bytes, intact);
  EXPECT_EQ(scan.value().discarded_bytes, torn.size());
}

TEST(WalTest, ScanRejectsInteriorLsnGap) {
  kerb::Bytes image;
  kerb::Append(image, kstore::EncodeWalFrame({1, kstore::kWalOpUpsert, B("a")}));
  kerb::Append(image, kstore::EncodeWalFrame({3, kstore::kWalOpUpsert, B("spliced")}));
  auto scan = kstore::ScanWal(image);
  ASSERT_FALSE(scan.ok()) << "a CRC-valid gap means splicing, not a crash";
  EXPECT_EQ(scan.error().code, kerb::ErrorCode::kBadFormat);
}

// --- Snapshot codec ---------------------------------------------------------

TEST(SnapshotTest, RoundTripsAndFailsClosed) {
  kstore::Snapshot snapshot;
  snapshot.lsn = 17;
  snapshot.entries = {B("alpha"), B(""), B("gamma")};
  kerb::Bytes image = kstore::EncodeSnapshot(snapshot);

  auto decoded = kstore::DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().lsn, 17u);
  EXPECT_EQ(decoded.value().entries, snapshot.entries);

  for (size_t len = 0; len < image.size(); ++len) {
    kerb::Bytes cut(image.begin(), image.begin() + len);
    auto bad = kstore::DecodeSnapshot(cut);
    ASSERT_FALSE(bad.ok()) << "truncation to " << len;
    EXPECT_EQ(bad.error().code, kerb::ErrorCode::kBadFormat);
  }
  for (size_t i = 0; i < image.size(); ++i) {
    kerb::Bytes flipped = image;
    flipped[i] ^= 0x40;
    EXPECT_FALSE(kstore::DecodeSnapshot(flipped).ok()) << "byte " << i;
  }
}

// --- KStore engine ----------------------------------------------------------

kstore::Snapshot EmptyBase() { return kstore::Snapshot{}; }

TEST(KStoreTest, AppendRecoverRoundTrip) {
  kstore::KStore store(kcrypto::Prng(1), {}, EmptyBase());
  EXPECT_EQ(store.Append(kstore::kWalOpUpsert, B("one")), 1u);
  EXPECT_EQ(store.Append(kstore::kWalOpDelete, B("two")), 2u);
  EXPECT_EQ(store.Append(kstore::kWalOpUpsert, B("three")), 3u);

  store.Crash();  // every append flushed, so nothing is lost
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().last_lsn, 3u);
  ASSERT_EQ(recovered.value().records.size(), 3u);
  EXPECT_EQ(recovered.value().records[1].op, kstore::kWalOpDelete);
  EXPECT_EQ(recovered.value().records[2].payload, B("three"));
  EXPECT_EQ(recovered.value().discarded_bytes, 0u);

  // Appends resume exactly after the recovered position.
  EXPECT_EQ(store.Append(kstore::kWalOpUpsert, B("four")), 4u);
}

TEST(KStoreTest, LostFlushesShortenTheRecoveredPrefixConsistently) {
  kstore::KStoreOptions options;
  options.dev_faults = kstore::DevFaultPlan{/*lost_flush=*/0.4, /*torn_tail=*/0.5};
  kstore::KStore store(kcrypto::Prng(0xabcdef), options, EmptyBase());
  constexpr uint64_t kAppends = 40;
  for (uint64_t i = 1; i <= kAppends; ++i) {
    store.Append(kstore::kWalOpUpsert, B("record-" + std::to_string(i)));
  }
  store.Crash();
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << "faulty-disk recovery must still parse cleanly";
  const uint64_t last = recovered.value().last_lsn;
  EXPECT_LE(last, kAppends);
  // Whatever survived is an exact LSN-contiguous prefix with intact payloads.
  for (size_t i = 0; i < recovered.value().records.size(); ++i) {
    EXPECT_EQ(recovered.value().records[i].lsn, i + 1);
    EXPECT_EQ(recovered.value().records[i].payload,
              B("record-" + std::to_string(i + 1)));
  }
}

TEST(KStoreTest, CompactionBoundsDeltaHistory) {
  kstore::KStore store(kcrypto::Prng(1), {}, EmptyBase());
  store.Append(kstore::kWalOpUpsert, B("a"));
  store.Append(kstore::kWalOpUpsert, B("b"));

  std::vector<kstore::WalRecord> delta;
  ASSERT_TRUE(store.Delta(0, &delta));
  EXPECT_EQ(delta.size(), 2u);

  kstore::Snapshot snapshot;
  snapshot.lsn = store.last_lsn();
  snapshot.entries = {B("a"), B("b")};
  store.Compact(snapshot);
  EXPECT_EQ(store.snapshot_lsn(), 2u);

  EXPECT_FALSE(store.Delta(0, &delta)) << "pre-snapshot history is compacted away";
  ASSERT_TRUE(store.Delta(2, &delta));
  EXPECT_TRUE(delta.empty());

  store.Append(kstore::kWalOpUpsert, B("c"));
  ASSERT_TRUE(store.Delta(2, &delta));
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].lsn, 3u);

  // Crash + recover lands on the snapshot plus the post-compaction suffix.
  store.Crash();
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().base.lsn, 2u);
  EXPECT_EQ(recovered.value().base.entries.size(), 2u);
  ASSERT_EQ(recovered.value().records.size(), 1u);
  EXPECT_EQ(recovered.value().records[0].lsn, 3u);
}

TEST(KStoreTest, RecoveryIsIdempotent) {
  kstore::KStore store(kcrypto::Prng(5), {}, EmptyBase());
  for (int i = 0; i < 5; ++i) {
    store.Append(kstore::kWalOpUpsert, B("x" + std::to_string(i)));
  }
  store.Crash();
  auto first = store.Recover();
  auto second = store.Recover();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().last_lsn, second.value().last_lsn);
  EXPECT_EQ(first.value().records.size(), second.value().records.size());
}

}  // namespace
