// Pins the exact bytes of KDC replies produced by deterministic simulated
// exchanges. The KdcCore refactor (PR 2) must leave the single-threaded sim
// path bit-identical: every AS and TGS reply, V4 and V5, bare and
// preauthenticated, is digested here and compared against values captured
// from the pre-refactor handlers.
//
// If a legitimate protocol change ever invalidates these digests, re-run
// with --gtest_also_run_disabled_tests=0 and read the failure message — it
// prints the new digest to pin.

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/common/hex.h"
#include "src/crypto/md4.h"

namespace {

using kattack::Testbed4;
using kattack::Testbed5;
using kattack::Testbed5Config;

// Digest of every KDC reply seen on the wire, in order, length-prefixed so
// reply boundaries are part of the digest.
class KdcReplyDigest : public ksim::Adversary {
 public:
  bool OnReply(const ksim::Message& request, kerb::Bytes& reply) override {
    if (request.dst.port == 88 || request.dst.port == 750) {
      uint8_t len[4] = {static_cast<uint8_t>(reply.size() >> 24),
                        static_cast<uint8_t>(reply.size() >> 16),
                        static_cast<uint8_t>(reply.size() >> 8),
                        static_cast<uint8_t>(reply.size())};
      state_.Update(kerb::BytesView(len, 4));
      state_.Update(reply);
      ++replies_;
    }
    return false;
  }

  std::string HexDigest() {
    auto d = state_.Final();
    return kerb::HexEncode(kerb::BytesView(d.data(), d.size()));
  }
  int replies() const { return replies_; }

 private:
  kcrypto::Md4State state_;
  int replies_ = 0;
};

TEST(KdcCaptureTest, V4RepliesByteIdentical) {
  Testbed4 bed;
  KdcReplyDigest digest;
  bed.world().network().SetAdversary(&digest);

  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  ASSERT_TRUE(bed.alice().GetServiceTicket(bed.file_principal()).ok());
  bed.world().clock().Advance(ksim::kMinute);
  ASSERT_TRUE(bed.bob().Login(Testbed4::kBobPassword).ok());
  ASSERT_TRUE(bed.bob().GetServiceTicket(bed.backup_principal()).ok());

  EXPECT_EQ(digest.replies(), 5);
  EXPECT_EQ(digest.HexDigest(), "1f8eec6c922a90f285b8964dc044517e") << "V4 KDC replies changed";
}

TEST(KdcCaptureTest, V5RepliesByteIdentical) {
  Testbed5 bed;
  KdcReplyDigest digest;
  bed.world().network().SetAdversary(&digest);

  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  krb5::TgsRequest5 req;
  req.service = bed.mail_principal();
  req.lifetime = ksim::kHour;
  ASSERT_TRUE(bed.alice().RawTgsRequest(bed.realm, req).ok());
  bed.world().clock().Advance(ksim::kMinute);
  ASSERT_TRUE(bed.bob().Login(Testbed5::kBobPassword).ok());

  EXPECT_EQ(digest.replies(), 3);
  EXPECT_EQ(digest.HexDigest(), "3fcbac0036409b5c1a460d4e2a3ea391") << "V5 KDC replies changed";
}

TEST(KdcCaptureTest, V5PreauthRepliesByteIdentical) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  config.client_options.use_preauth = true;
  Testbed5 bed(config);
  KdcReplyDigest digest;
  bed.world().network().SetAdversary(&digest);

  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  krb5::TgsRequest5 req;
  req.service = bed.file_principal();
  req.lifetime = ksim::kHour;
  ASSERT_TRUE(bed.alice().RawTgsRequest(bed.realm, req).ok());

  EXPECT_EQ(digest.replies(), 2);
  EXPECT_EQ(digest.HexDigest(), "2ca7de0797c407d141af5429e963705d") << "V5 preauth KDC replies changed";
}

}  // namespace
