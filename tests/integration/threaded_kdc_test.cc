// Threaded stress tests for the PR-2 concurrent serving structures: the
// sharded principal store, the sharded replay cache, and the KdcCore5
// worker-pool path. Run these under a TSan build to check the locking:
//   cmake -B build-tsan -S . -DKERB_SANITIZE=thread && ctest
//
// The invariants asserted here are the ones a multi-threaded KDC needs:
// no upsert is ever lost, a replayed tuple is admitted exactly once no
// matter how many threads race on it, and the accept/reject decisions are
// independent of the worker count.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/attacks/kdcload.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/prng.h"
#include "src/krb4/principal_store.h"
#include "src/sim/replaycache.h"

namespace {

using kattack::Testbed5;
using krb4::Principal;
using krb4::PrincipalKind;
using krb4::PrincipalStore;

constexpr unsigned kThreads = 8;

TEST(ThreadedKdcTest, PrincipalStoreConcurrentUpsertsLoseNothing) {
  constexpr int kPerThread = 200;
  PrincipalStore store;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      kcrypto::Prng prng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        Principal p{"user" + std::to_string(t) + "_" + std::to_string(i), "", "ATHENA.SIM"};
        store.Upsert(p, prng.NextDesKey(), PrincipalKind::kUser);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  EXPECT_EQ(store.size(), kThreads * kPerThread);
  // Every write must be present with the exact key that was stored; the
  // per-thread PRNGs are re-run to reproduce the expected keys.
  for (unsigned t = 0; t < kThreads; ++t) {
    kcrypto::Prng prng(1000 + t);
    for (int i = 0; i < kPerThread; ++i) {
      Principal p{"user" + std::to_string(t) + "_" + std::to_string(i), "", "ATHENA.SIM"};
      kcrypto::DesKey expected = prng.NextDesKey();
      kcrypto::DesKey got;
      ASSERT_TRUE(store.Lookup(p, &got)) << "lost principal " << p.name;
      EXPECT_EQ(got.bytes(), expected.bytes()) << "wrong key for " << p.name;
    }
  }
}

TEST(ThreadedKdcTest, PrincipalStoreRacingUpsertsOnOneKeyKeepSomeWrite) {
  // All threads hammer the same principal; the surviving value must be one
  // of the written keys, never a torn mixture.
  PrincipalStore store;
  const Principal shared{"shared", "", "ATHENA.SIM"};
  std::vector<kcrypto::DesKey> written(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    written[t] = kcrypto::Prng(2000 + t).NextDesKey();
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &written, &shared, t] {
      for (int i = 0; i < 500; ++i) {
        store.Upsert(shared, written[t], PrincipalKind::kService);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  kcrypto::DesKey got;
  ASSERT_TRUE(store.Lookup(shared, &got));
  bool matches_some_write = false;
  for (const auto& key : written) {
    matches_some_write = matches_some_write || got.bytes() == key.bytes();
  }
  EXPECT_TRUE(matches_some_write);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ThreadedKdcTest, ReplayCacheAdmitsEachTupleExactlyOnceUnderRace) {
  // Every thread presents the full tuple set; across all threads each tuple
  // must be admitted exactly once, so the accept total equals the tuple
  // count for ANY thread count — the thread-count-independence property.
  constexpr int kTuples = 256;
  for (unsigned threads : {1u, 4u, kThreads}) {
    ksim::ShardedReplayCache cache;
    std::atomic<uint64_t> accepted{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&cache, &accepted] {
        for (int i = 0; i < kTuples; ++i) {
          std::string identity = "client" + std::to_string(i % 16);
          uint32_t addr = 0x0a000000u + static_cast<uint32_t>(i);
          ksim::Time stamp = 1000 + i;
          if (cache.CheckAndInsert(identity, addr, stamp, /*now=*/2000, ksim::kMinute)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    EXPECT_EQ(accepted.load(), static_cast<uint64_t>(kTuples)) << "threads=" << threads;
    // A second full pass must be rejected wholesale: everything is a replay.
    for (int i = 0; i < kTuples; ++i) {
      EXPECT_FALSE(cache.CheckAndInsert("client" + std::to_string(i % 16),
                                        0x0a000000u + static_cast<uint32_t>(i), 1000 + i,
                                        2000, ksim::kMinute));
    }
  }
}

TEST(ThreadedKdcTest, ParallelKdcCoreServesEveryRequest) {
  // The worker-pool path (one KdcContext per worker) against a live
  // KdcCore5: every request must be accepted regardless of pool size, and
  // the accept count must scale exactly with the request count.
  Testbed5 bed;
  const ksim::Time now = bed.world().MakeHostClock().Now();
  kcrypto::Prng prng(0x7e57);

  krb5::AsRequest5 as_req;
  as_req.client = bed.alice_principal();
  as_req.service_realm = bed.realm;
  as_req.lifetime = ksim::kHour;
  as_req.nonce = prng.NextU64();
  ksim::Message request;
  request.src = Testbed5::kAliceAddr;
  request.dst = Testbed5::kAsAddr;
  request.payload = as_req.ToTlv().Encode();
  request.sent_at = now;

  krb5::KdcCore5& core = bed.kdc().core();
  kattack::KdcHandler handler = [&core](const ksim::Message& msg, krb4::KdcContext& ctx) {
    return core.HandleAs(msg, ctx);
  };
  constexpr uint64_t kPerWorker = 32;
  for (unsigned threads : {1u, 2u, 4u, kThreads}) {
    auto result = kattack::RunKdcLoad(handler, request, threads, kPerWorker, 0xfeed + threads);
    EXPECT_EQ(result.requests_failed, 0u) << "threads=" << threads;
    EXPECT_EQ(result.requests_ok, threads * kPerWorker) << "threads=" << threads;
  }
}

}  // namespace
