// Long-horizon integration: a day of simulated traffic from many users
// against both the permissive and the hardened deployments, with an active
// adversary corrupting a slice of everything. Invariants:
//   * honest traffic always succeeds when untouched;
//   * no corrupted message is ever accepted;
//   * server logs contain exactly the honest operations;
//   * credential caches and replay caches stay bounded.

#include <gtest/gtest.h>

#include "src/attacks/testbed5.h"
#include "src/hardened/policy.h"

namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

// Corrupts every Nth request to application servers.
class SliceCorruptor : public ksim::Adversary {
 public:
  explicit SliceCorruptor(int every_nth) : every_nth_(every_nth) {}

  Decision OnRequest(ksim::Message& msg) override {
    if (msg.dst.port == 88 || msg.dst.port == 750) {
      return {};  // leave the KDC traffic alone in this test
    }
    if (++count_ % every_nth_ == 0 && !msg.payload.empty()) {
      msg.payload[count_ % msg.payload.size()] ^= 0x55;
      ++corrupted_;
    }
    return {};
  }

  int corrupted() const { return corrupted_; }

 private:
  int every_nth_;
  int count_ = 0;
  int corrupted_ = 0;
};

struct SoakOutcome {
  int honest_attempts = 0;
  int honest_successes = 0;
  int corrupted_messages = 0;
  int corrupted_accepted = 0;
  size_t mail_log_entries = 0;
};

SoakOutcome RunSoak(const Testbed5Config& config, int rounds) {
  Testbed5 bed(config);
  SoakOutcome outcome;
  SliceCorruptor corruptor(5);

  EXPECT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  EXPECT_TRUE(bed.bob().Login(Testbed5::kBobPassword).ok());

  uint64_t accepted_before = 0;
  for (int round = 0; round < rounds; ++round) {
    krb5::Client5& user = (round % 2 == 0) ? bed.alice() : bed.bob();
    // Every third round the adversary is on the wire.
    bool adversarial = (round % 3 == 2);
    bed.world().network().SetAdversary(adversarial ? &corruptor : nullptr);
    int corrupted_before_round = corruptor.corrupted();
    accepted_before = bed.mail_server().accepted_requests();

    auto result = user.CallService(Testbed5::kMailAddr, bed.mail_principal(), true);
    bool was_corrupted = corruptor.corrupted() > corrupted_before_round;
    if (was_corrupted) {
      ++outcome.corrupted_messages;
      if (bed.mail_server().accepted_requests() > accepted_before && !result.ok()) {
        // A corrupted exchange that the server nevertheless acted on.
        ++outcome.corrupted_accepted;
      }
    } else {
      ++outcome.honest_attempts;
      if (result.ok()) {
        ++outcome.honest_successes;
      }
    }
    bed.world().network().SetAdversary(nullptr);
    bed.world().clock().Advance(ksim::kMinute);
  }
  outcome.mail_log_entries = bed.mail_log().size();
  return outcome;
}

TEST(SoakTest, PermissiveDeploymentDayOfTraffic) {
  SoakOutcome outcome = RunSoak(Testbed5Config{}, 240);
  EXPECT_EQ(outcome.honest_successes, outcome.honest_attempts);
  EXPECT_GT(outcome.corrupted_messages, 0);
  EXPECT_EQ(outcome.corrupted_accepted, 0) << "corruption must never be honoured";
}

TEST(SoakTest, HardenedDeploymentDayOfTraffic) {
  Testbed5Config config;
  config.kdc_policy = khard::RecommendedKdcPolicy();
  config.server_options = khard::RecommendedServerOptions();
  config.client_options = khard::RecommendedClientOptions();
  SoakOutcome outcome = RunSoak(config, 240);
  EXPECT_EQ(outcome.honest_successes, outcome.honest_attempts)
      << "hardening must not break honest traffic over a long horizon";
  EXPECT_EQ(outcome.corrupted_accepted, 0);
}

TEST(SoakTest, TicketExpiryAndRenewalOverLongHorizon) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword, 2 * ksim::kHour).ok());
  int relogins = 0;
  int successes = 0;
  for (int hour = 0; hour < 48; ++hour) {
    auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
    if (!result.ok()) {
      // Credentials expired: a real client re-logs in.
      bed.alice().Logout();
      ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword, 2 * ksim::kHour).ok());
      ++relogins;
      result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
    }
    if (result.ok()) {
      ++successes;
    }
    bed.world().clock().Advance(ksim::kHour);
  }
  EXPECT_EQ(successes, 48);
  EXPECT_GT(relogins, 10) << "2-hour tickets over 48 hours force many renewals";
}

TEST(SoakTest, ReplayCacheStaysBoundedByTheWindow) {
  Testbed5Config config;
  config.server_options.replay_cache = true;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false).ok());
    bed.world().clock().Advance(ksim::kMinute);
  }
  // The pruning keeps only the 5-minute window's worth of entries.
  EXPECT_LE(bed.mail_server().replay_cache_size(), 6u);
}

}  // namespace
