// Chaos study (experiment B12): the full V4 and V5 stacks under seeded
// fault injection — drops, duplicates, reordering, delay, corruption, and a
// scripted primary-KDC blackout with slave failover.
//
// The robustness invariant under test: every exchange either succeeds with
// exactly the honest payload or fails closed with a clean protocol error —
// never a fabricated acceptance, never an internal error, never a
// double-issued ticket at a KDC, and never a hang (the suite completing is
// itself the no-hang assertion; everything runs on virtual time).
//
// Every run is a deterministic function of (config, seed): the determinism
// tests replay a run and require byte-identical fault schedules (equal
// FNV-1a schedule digests) and equal counters.

#include <gtest/gtest.h>

#include "src/attacks/chaos.h"

namespace kattack {
namespace {

ChaosConfig SweepConfig(double rate, uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.drop = rate;
  config.duplicate = rate;
  config.reorder = rate / 2;
  config.retry.max_attempts = 8;  // two failover rounds deep at 30% loss
  return config;
}

void CheckInvariants(const ChaosReport& report) {
  EXPECT_EQ(report.attempted, 40u);
  // Every exchange accounted for: clean success or clean failure.
  EXPECT_EQ(report.succeeded + report.failed_closed, report.attempted);
  EXPECT_EQ(report.bad_successes, 0u) << "accepted bytes nobody honest sent";
  EXPECT_EQ(report.internal_errors, 0u) << "invariant breach surfaced as kInternal";
  // The reply cache kept every duplicated KDC request idempotent: no
  // double-issued tickets anywhere in the replica set.
  EXPECT_EQ(report.kdc_divergences, 0u) << "a KDC answered a duplicate with fresh bytes";
}

void CheckSameRun(const ChaosReport& a, const ChaosReport& b) {
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.failed_closed, b.failed_closed);
  EXPECT_EQ(a.logins, b.logins);
  EXPECT_EQ(a.net.calls, b.net.calls);
  EXPECT_EQ(a.net.requests_dropped, b.net.requests_dropped);
  EXPECT_EQ(a.net.duplicates_delivered, b.net.duplicates_delivered);
  EXPECT_EQ(a.retry.attempts, b.retry.attempts);
  EXPECT_EQ(a.retry.virtual_wait, b.retry.virtual_wait);
}

TEST(ChaosTest, LosslessRunSucceedsCompletely) {
  ChaosConfig config;
  config.drop = config.duplicate = config.reorder = config.corrupt = 0;
  for (bool v5 : {false, true}) {
    ChaosReport report = v5 ? RunChaosStudy5(config) : RunChaosStudy4(config);
    CheckInvariants(report);
    EXPECT_EQ(report.succeeded, report.attempted);
    EXPECT_EQ(report.retry.retries, 0u);
  }
}

TEST(ChaosTest, V4SurvivesFaultSweep) {
  for (double rate : {0.05, 0.10, 0.20, 0.30}) {
    ChaosReport report = RunChaosStudy4(SweepConfig(rate, 1000 + uint64_t(rate * 100)));
    CheckInvariants(report);
    // The retry stack must be earning its keep, not coasting on luck.
    EXPECT_GT(report.succeeded, report.attempted / 2) << "rate " << rate;
    if (rate >= 0.10) {
      EXPECT_GT(report.retry.retries, 0u);
      EXPECT_GT(report.net.requests_dropped + report.net.replies_dropped, 0u);
    }
  }
}

TEST(ChaosTest, V5SurvivesFaultSweep) {
  for (double rate : {0.05, 0.10, 0.20, 0.30}) {
    ChaosReport report = RunChaosStudy5(SweepConfig(rate, 2000 + uint64_t(rate * 100)));
    CheckInvariants(report);
    EXPECT_GT(report.succeeded, report.attempted / 2) << "rate " << rate;
  }
}

TEST(ChaosTest, DuplicatedKdcTrafficHitsTheReplyCache) {
  ChaosConfig config = SweepConfig(0.0, 77);
  config.duplicate = 0.5;  // only duplication: isolate the reply cache
  ChaosReport report = RunChaosStudy4(config);
  CheckInvariants(report);
  EXPECT_EQ(report.succeeded, report.attempted);  // duplication alone loses nothing
  EXPECT_GT(report.net.duplicates_delivered, 0u);
  EXPECT_GT(report.kdc_reply_cache_hits, 0u);
}

TEST(ChaosTest, CorruptionFailsClosedThroughTheTicketMachinery) {
  // Corruption exercises a different edge: every KDC and AP exchange is
  // integrity-protected, so flipped bits there fail closed (and retries
  // recover). The exception is V4/V5 application payload, which rides in
  // plaintext after the mutual-auth proof — the paper's point that data on
  // the session needs KRB_SAFE/KRB_PRIV, not just authentication. Such
  // corrupted payloads show up as bad_successes and are *expected* here;
  // what must never happen is an internal error or a double-issued ticket.
  ChaosConfig config;
  config.seed = 31;
  config.corrupt = 0.3;
  config.retry.max_attempts = 8;
  for (bool v5 : {false, true}) {
    ChaosReport report = v5 ? RunChaosStudy5(config) : RunChaosStudy4(config);
    EXPECT_EQ(report.succeeded + report.failed_closed + report.bad_successes,
              report.attempted);
    EXPECT_EQ(report.internal_errors, 0u);
    EXPECT_EQ(report.kdc_divergences, 0u);
    EXPECT_GT(report.succeeded, 0u);
    EXPECT_GT(report.net.requests_corrupted + report.net.replies_corrupted, 0u);
  }
}

TEST(ChaosTest, PrimaryBlackoutFailsOverToSlave) {
  ChaosConfig config;
  config.seed = 55;
  config.primary_blackout = true;  // KDC host dark for the middle third
  config.kdc_slaves = 1;
  for (bool v5 : {false, true}) {
    ChaosReport report = v5 ? RunChaosStudy5(config) : RunChaosStudy4(config);
    CheckInvariants(report);
    // With a slave standing by, the outage is invisible to goodput...
    EXPECT_EQ(report.succeeded, report.attempted);
    // ...but not to the failover machinery.
    EXPECT_GT(report.retry.failovers, 0u);
    EXPECT_GT(report.net.blackout_refusals, 0u);
  }
}

TEST(ChaosTest, BlackoutWithoutSlavesFailsClosed) {
  ChaosConfig config;
  config.seed = 56;
  config.primary_blackout = true;
  config.kdc_slaves = 0;
  ChaosReport report = RunChaosStudy4(config);
  CheckInvariants(report);
  EXPECT_GT(report.failed_closed, 0u);  // outage visible, but clean
  EXPECT_GT(report.succeeded, 0u);      // first and last thirds unaffected
}

TEST(ChaosTest, BatchedDispatchMatchesSequentialUnderFaults) {
  // The batched KDC entry points (n=1 batches through the Bind handlers)
  // are a performance path, not a semantic one: under the same faults they
  // must produce the same verdicts, the same counters, and the very same
  // fault schedule as sequential serving.
  ChaosConfig sequential = SweepConfig(0.20, 9090);
  sequential.primary_blackout = true;
  ChaosConfig batched = sequential;
  batched.batched = true;
  for (bool v5 : {false, true}) {
    ChaosReport a = v5 ? RunChaosStudy5(sequential) : RunChaosStudy4(sequential);
    ChaosReport b = v5 ? RunChaosStudy5(batched) : RunChaosStudy4(batched);
    CheckInvariants(a);
    CheckInvariants(b);
    CheckSameRun(a, b);
    EXPECT_EQ(a.bad_successes, b.bad_successes);
    EXPECT_EQ(a.kdc_reply_cache_hits, b.kdc_reply_cache_hits);
    EXPECT_EQ(a.retry.failovers, b.retry.failovers);
  }
}

TEST(ChaosTest, SameSeedSameSchedule) {
  ChaosConfig config = SweepConfig(0.25, 12345);
  config.primary_blackout = true;
  for (bool v5 : {false, true}) {
    ChaosReport first = v5 ? RunChaosStudy5(config) : RunChaosStudy4(config);
    ChaosReport second = v5 ? RunChaosStudy5(config) : RunChaosStudy4(config);
    CheckInvariants(first);
    CheckSameRun(first, second);

    ChaosConfig other = config;
    other.seed = 54321;
    ChaosReport third = v5 ? RunChaosStudy5(other) : RunChaosStudy4(other);
    EXPECT_NE(first.schedule_digest, third.schedule_digest);
  }
}

}  // namespace
}  // namespace kattack
