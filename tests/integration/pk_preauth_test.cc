// Public-key preauthenticated AS exchange, V4 and V5 (the paper's
// "exponential key exchange" fix for offline password guessing, §6.3).
//
// Covers the full protocol loop — client DH pair, framed request with its
// proof-of-possession padata, KDC serving path, double unseal on the
// client — plus the fail-closed edges (degenerate publics, PK disabled,
// wrong password, missing/stale/unbound padata, the active key-substitution
// oracle) and the threaded bulk harness RunPkLoginLoad, which is both the
// kdcload throughput driver and an end-to-end correctness check: every
// counted login verified its reply.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/attacks/kdcload.h"
#include "src/crypto/checksum.h"
#include "src/crypto/dh.h"
#include "src/crypto/prng.h"
#include "src/crypto/str2key.h"
#include "src/encoding/io.h"
#include "src/krb4/kdccore.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/kdccore.h"
#include "src/krb5/messages.h"
#include "src/sim/clock.h"

namespace {

using krb4::Principal;

constexpr const char* kRealm = "ATHENA.SIM";
constexpr const char* kPassword = "quantum-Leap_77";
constexpr ksim::NetAddress kClientAddr{0x0a000101, 1023};

Principal Alice() { return Principal{"alice", "", kRealm}; }

struct Bed4 {
  explicit Bed4(bool enable_pk = true) {
    krb4::KdcDatabase db;
    db.AddUser(Alice(), kPassword);
    kcrypto::Prng key_prng(0x5eed);
    tgs_key = db.AddServiceWithRandomKey(krb4::TgsPrincipal(kRealm), key_prng);
    user_key = kcrypto::StringToKey(kPassword, Alice().Salt());
    core.emplace(ksim::HostClock(&clock), kRealm, std::move(db), krb4::KdcOptions{});
    if (enable_pk) {
      core->EnablePkPreauth(kcrypto::OakleyGroup1());
    }
  }

  kattack::KdcHandler handler() {
    return [this](const ksim::Message& msg, krb4::KdcContext& ctx) {
      return core->HandleAs(msg, ctx);
    };
  }

  ksim::SimClock clock;
  std::optional<krb4::KdcCore4> core;
  kcrypto::DesKey tgs_key;
  kcrypto::DesKey user_key;
};

// The V4 proof-of-possession padata: {timestamp, md4(client_pub)}K.
kerb::Bytes MakePadata4(const kcrypto::DesKey& key, kerb::BytesView client_pub,
                        ksim::Time timestamp) {
  kenc::Writer pa;
  pa.PutU64(static_cast<uint64_t>(timestamp));
  pa.PutLengthPrefixed(kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, client_pub));
  return krb4::Seal4(key, pa.Take());
}

TEST(PkPreauth4Test, FullExchangeIssuesVerifiableTicket) {
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  auto body = kattack::DoPkLogin4(bed.handler(), Alice(), bed.user_key,
                                  kcrypto::OakleyGroup1(), bed.clock.Now(), ctx, client_prng,
                                  kClientAddr);
  ASSERT_TRUE(body.ok()) << body.error().detail;
  EXPECT_EQ(bed.core->pk_as_requests_served(), 1u);

  // The TGT inside the body must unseal with the TGS key and carry the
  // session key the body advertises.
  auto tgt = krb4::Ticket4::Unseal(bed.tgs_key, body.value().sealed_tgt);
  ASSERT_TRUE(tgt.ok());
  EXPECT_EQ(tgt.value().client, Alice());
  EXPECT_EQ(tgt.value().session_key, body.value().tgs_session_key);
  EXPECT_EQ(tgt.value().client_addr, kClientAddr.host);
}

TEST(PkPreauth4Test, WrongPasswordIsRefusedByTheKdc) {
  // A requester who cannot seal the padata under K_c gets NO reply at all —
  // in particular, no {...}K_c ciphertext to grind offline.
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  kcrypto::DesKey wrong = kcrypto::StringToKey("not-the-password", Alice().Salt());
  auto body = kattack::DoPkLogin4(bed.handler(), Alice(), wrong, kcrypto::OakleyGroup1(),
                                  bed.clock.Now(), ctx, client_prng, kClientAddr);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth4Test, DisabledCoreRefusesPkRequests) {
  Bed4 bed(/*enable_pk=*/false);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  auto body = kattack::DoPkLogin4(bed.handler(), Alice(), bed.user_key,
                                  kcrypto::OakleyGroup1(), bed.clock.Now(), ctx, client_prng,
                                  kClientAddr);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.error().code, kerb::ErrorCode::kUnsupported);
}

// Builds a well-formed V4 PK request by hand so individual fields can be
// perturbed.
krb4::AsPkRequest4 BaseRequest4(Bed4& bed, kcrypto::Prng& client_prng) {
  kcrypto::DhKeyPair pair = kcrypto::DhGenerate(kcrypto::OakleyGroup1(), client_prng);
  krb4::AsPkRequest4 req;
  req.client = Alice();
  req.service_realm = kRealm;
  req.lifetime = ksim::kHour;
  req.client_pub = pair.public_key.ToBytes();
  req.sealed_padata = MakePadata4(bed.user_key, req.client_pub, bed.clock.Now());
  return req;
}

kerb::Result<kerb::Bytes> Send4(Bed4& bed, krb4::KdcContext& ctx,
                                const krb4::AsPkRequest4& req) {
  ksim::Message msg;
  msg.src = kClientAddr;
  msg.payload = krb4::Frame4(krb4::MsgType::kAsPkRequest, req.Encode());
  return bed.core->HandleAs(msg, ctx);
}

TEST(PkPreauth4Test, ActiveAttackerWithOwnKeyGetsNoPasswordCiphertext) {
  // THE oracle the padata closes: an active attacker substitutes their own
  // ephemeral public (whose private key they hold) while replaying a
  // captured padata from a legitimate login. The md4 binding inside the
  // sealed padata no longer matches the public in the request, so the KDC
  // refuses — the attacker never receives a strippable double-sealed reply.
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb4::AsPkRequest4 req = BaseRequest4(bed, client_prng);  // victim's request
  kcrypto::Prng attacker_prng(0x666);
  kcrypto::DhKeyPair attacker_pair =
      kcrypto::DhGenerate(kcrypto::OakleyGroup1(), attacker_prng);
  req.client_pub = attacker_pair.public_key.ToBytes();  // substituted key
  auto reply = Send4(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth4Test, MissingPadataIsRefused) {
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb4::AsPkRequest4 req = BaseRequest4(bed, client_prng);
  req.sealed_padata.clear();
  auto reply = Send4(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth4Test, StalePadataIsRefused) {
  Bed4 bed;
  bed.clock.Set(2 * ksim::kHour);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb4::AsPkRequest4 req = BaseRequest4(bed, client_prng);
  req.sealed_padata =
      MakePadata4(bed.user_key, req.client_pub, bed.clock.Now() - ksim::kHour);
  auto reply = Send4(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth4Test, DegenerateClientPublicsAreRejected) {
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  const kcrypto::DhGroup& group = kcrypto::OakleyGroup1();
  for (const kcrypto::BigInt& pub :
       {kcrypto::BigInt(0), kcrypto::BigInt(1), group.p.Sub(kcrypto::BigInt(1)), group.p,
        group.p.Add(kcrypto::BigInt(42))}) {
    krb4::AsPkRequest4 req;
    req.client = Alice();
    req.service_realm = kRealm;
    req.lifetime = ksim::kHour;
    req.client_pub = pub.ToBytes();
    ksim::Message msg;
    msg.src = kClientAddr;
    msg.payload = krb4::Frame4(krb4::MsgType::kAsPkRequest, req.Encode());
    auto reply = bed.core->HandleAs(msg, ctx);
    ASSERT_FALSE(reply.ok()) << pub.ToHex();
    EXPECT_EQ(reply.error().code, kerb::ErrorCode::kBadFormat) << pub.ToHex();
  }
}

TEST(PkPreauth4Test, OrdinaryAsRequestsStillServed) {
  // Enabling PK must not disturb the password path on the same core.
  Bed4 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  krb4::AsRequest4 req;
  req.client = Alice();
  req.service_realm = kRealm;
  req.lifetime = ksim::kHour;
  ksim::Message msg;
  msg.src = kClientAddr;
  msg.payload = krb4::Frame4(krb4::MsgType::kAsRequest, req.Encode());
  auto reply = bed.core->HandleAs(msg, ctx);
  ASSERT_TRUE(reply.ok());
  auto framed = krb4::Unframe4(reply.value());
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed.value().first, krb4::MsgType::kAsReply);
}

TEST(PkPreauth4Test, BulkThreadedLoginsAllVerify) {
  // The kdcload path: every worker runs complete verified exchanges against
  // the shared core. A toy group keeps thousands of logins fast; the DH
  // math is identical modulo size.
  kcrypto::Prng group_prng(0x97);
  kcrypto::DhGroup group = kcrypto::MakeToyGroup(group_prng, 62);
  Bed4 bed;
  bed.core->EnablePkPreauth(group);
  auto handler = bed.handler();
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    constexpr uint64_t kPerWorker = 128;
    auto result = kattack::RunPkLoginLoad(handler, Alice(), bed.user_key, group,
                                          bed.clock.Now(), threads, kPerWorker,
                                          0xfeed + threads);
    EXPECT_EQ(result.logins_failed, 0u) << "threads=" << threads;
    EXPECT_EQ(result.logins_ok, threads * kPerWorker) << "threads=" << threads;
  }
  EXPECT_GE(bed.core->pk_as_requests_served(), (1u + 2u + 4u + 8u) * 128u);
}

// --------------------------------------------------------------------------- V5

struct Bed5 {
  explicit Bed5(bool enable_pk = true) {
    krb4::KdcDatabase db;
    db.AddUser(Alice(), kPassword);
    kcrypto::Prng key_prng(0x5eed);
    tgs_key = db.AddServiceWithRandomKey(krb4::TgsPrincipal(kRealm), key_prng);
    user_key = kcrypto::StringToKey(kPassword, Alice().Salt());
    core.emplace(ksim::HostClock(&clock), kRealm, std::move(db), krb5::KdcPolicy5{});
    if (enable_pk) {
      core->EnablePkPreauth(kcrypto::OakleyGroup1());
    }
  }

  ksim::SimClock clock;
  std::optional<krb5::KdcCore5> core;
  kcrypto::DesKey tgs_key;
  kcrypto::DesKey user_key;
};

// The V5 proof-of-possession padata: sealed kMsgPreauth TLV carrying the
// request nonce, a timestamp, and the md4 binding of the DH public.
kerb::Bytes MakePadata5(Bed5& bed, const kcrypto::DesKey& key, uint64_t nonce,
                        kerb::BytesView client_pub, ksim::Time timestamp,
                        kcrypto::Prng& prng) {
  kenc::TlvMessage pa(krb5::kMsgPreauth);
  pa.SetU64(krb5::tag::kNonce, nonce);
  pa.SetU64(krb5::tag::kTimestamp, static_cast<uint64_t>(timestamp));
  pa.SetBytes(krb5::tag::kChecksum,
              kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, client_pub));
  return krb5::SealTlv(key, pa, bed.core->policy().enc, prng);
}

// One full V5 PK exchange; returns the decrypted EncAsRepPart5.
kerb::Result<krb5::EncAsRepPart5> DoPkLogin5(Bed5& bed, krb4::KdcContext& ctx,
                                             kcrypto::Prng& client_prng,
                                             const kcrypto::DesKey& user_key, uint64_t nonce) {
  const kcrypto::DhGroup& group = kcrypto::OakleyGroup1();
  kcrypto::DhKeyPair client_pair = kcrypto::DhGenerate(group, client_prng);

  krb5::AsPkRequest5 req;
  req.client = Alice();
  req.service_realm = kRealm;
  req.lifetime = ksim::kHour;
  req.nonce = nonce;
  req.client_pub = client_pair.public_key.ToBytes();
  req.padata = MakePadata5(bed, user_key, nonce, req.client_pub, bed.clock.Now(), client_prng);

  ksim::Message msg;
  msg.src = kClientAddr;
  msg.payload = req.ToTlv().Encode();
  auto reply = bed.core->HandleAs(msg, ctx);
  if (!reply.ok()) {
    return reply.error();
  }
  auto rep_tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgAsPkRep, reply.value());
  if (!rep_tlv.ok()) {
    return rep_tlv.error();
  }
  auto rep = krb5::AsPkReply5::FromTlv(rep_tlv.value());
  if (!rep.ok()) {
    return rep.error();
  }
  kcrypto::BigInt server_pub = kcrypto::BigInt::FromBytes(rep.value().server_pub);
  if (auto valid = kcrypto::ValidateDhPublic(group, server_pub); !valid.ok()) {
    return valid.error();
  }
  kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(
      kcrypto::DhSharedSecret(group, client_pair.private_key, server_pub));
  const krb5::EncLayerConfig& enc = bed.core->policy().enc;
  auto wrap = krb5::UnsealTlv(dh_key, krb5::kMsgPkEncWrap, rep.value().sealed_wrap, enc);
  if (!wrap.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "DH layer decryption failed");
  }
  auto inner = wrap.value().GetBytes(krb5::tag::kSealedPart);
  if (!inner.ok()) {
    return inner.error();
  }
  auto part_tlv = krb5::UnsealTlv(user_key, krb5::kMsgEncAsRepPart, inner.value(), enc);
  if (!part_tlv.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "password layer decryption failed");
  }
  return krb5::EncAsRepPart5::FromTlv(part_tlv.value());
}

TEST(PkPreauth5Test, FullExchangeEchoesNonceAndIssuesTicket) {
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  auto part = DoPkLogin5(bed, ctx, client_prng, bed.user_key, 0xabcdef1234ull);
  ASSERT_TRUE(part.ok()) << part.error().detail;
  EXPECT_EQ(part.value().nonce, 0xabcdef1234ull);
  EXPECT_EQ(bed.core->pk_as_requests_served(), 1u);
}

TEST(PkPreauth5Test, TicketBlobUnsealsWithTgsKey) {
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  const kcrypto::DhGroup& group = kcrypto::OakleyGroup1();
  kcrypto::DhKeyPair client_pair = kcrypto::DhGenerate(group, client_prng);
  krb5::AsPkRequest5 req;
  req.client = Alice();
  req.service_realm = kRealm;
  req.lifetime = ksim::kHour;
  req.nonce = 7;
  req.client_pub = client_pair.public_key.ToBytes();
  req.padata = MakePadata5(bed, bed.user_key, req.nonce, req.client_pub, bed.clock.Now(),
                           client_prng);
  ksim::Message msg;
  msg.src = kClientAddr;
  msg.payload = req.ToTlv().Encode();
  auto reply = bed.core->HandleAs(msg, ctx);
  ASSERT_TRUE(reply.ok());
  auto rep = krb5::AsPkReply5::FromTlv(
      kenc::TlvMessage::DecodeExpecting(krb5::kMsgAsPkRep, reply.value()).value());
  ASSERT_TRUE(rep.ok());
  auto tgt_tlv = krb5::UnsealTlv(bed.tgs_key, krb5::kMsgTicket, rep.value().sealed_tgt,
                                 bed.core->policy().enc);
  ASSERT_TRUE(tgt_tlv.ok());
  auto tgt = krb5::Ticket5::FromTlv(tgt_tlv.value());
  ASSERT_TRUE(tgt.ok());
  EXPECT_EQ(tgt.value().client, Alice());
}

TEST(PkPreauth5Test, WrongPasswordIsRefusedByTheKdc) {
  // The padata seals under the wrong key, so the KDC refuses outright — no
  // password-keyed ciphertext ever reaches the requester.
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  kcrypto::DesKey wrong = kcrypto::StringToKey("not-the-password", Alice().Salt());
  auto part = DoPkLogin5(bed, ctx, client_prng, wrong, 9);
  ASSERT_FALSE(part.ok());
  EXPECT_EQ(part.error().code, kerb::ErrorCode::kAuthFailed);
}

// Builds a well-formed V5 PK request by hand so fields can be perturbed.
krb5::AsPkRequest5 BaseRequest5(Bed5& bed, kcrypto::Prng& client_prng, uint64_t nonce) {
  kcrypto::DhKeyPair pair = kcrypto::DhGenerate(kcrypto::OakleyGroup1(), client_prng);
  krb5::AsPkRequest5 req;
  req.client = Alice();
  req.service_realm = kRealm;
  req.lifetime = ksim::kHour;
  req.nonce = nonce;
  req.client_pub = pair.public_key.ToBytes();
  req.padata = MakePadata5(bed, bed.user_key, nonce, req.client_pub, bed.clock.Now(),
                           client_prng);
  return req;
}

kerb::Result<kerb::Bytes> Send5(Bed5& bed, krb4::KdcContext& ctx,
                                const krb5::AsPkRequest5& req) {
  ksim::Message msg;
  msg.src = kClientAddr;
  msg.payload = req.ToTlv().Encode();
  return bed.core->HandleAs(msg, ctx);
}

TEST(PkPreauth5Test, MissingPadataIsRefused) {
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb5::AsPkRequest5 req = BaseRequest5(bed, client_prng, 11);
  req.padata.reset();
  auto reply = Send5(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth5Test, ActiveAttackerWithOwnKeyGetsNoPasswordCiphertext) {
  // The review scenario: replay a captured padata but substitute an
  // attacker-held ephemeral public. The md4 binding sealed under K_c no
  // longer matches, so no strippable reply is issued.
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb5::AsPkRequest5 req = BaseRequest5(bed, client_prng, 12);
  kcrypto::Prng attacker_prng(0x666);
  req.client_pub =
      kcrypto::DhGenerate(kcrypto::OakleyGroup1(), attacker_prng).public_key.ToBytes();
  auto reply = Send5(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth5Test, PadataNonceMustMatchRequestNonce) {
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb5::AsPkRequest5 req = BaseRequest5(bed, client_prng, 13);
  req.nonce = 14;  // padata still proves nonce 13
  auto reply = Send5(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth5Test, StalePadataIsRefused) {
  Bed5 bed;
  bed.clock.Set(2 * ksim::kHour);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  krb5::AsPkRequest5 req = BaseRequest5(bed, client_prng, 15);
  req.padata = MakePadata5(bed, bed.user_key, req.nonce, req.client_pub,
                           bed.clock.Now() - ksim::kHour, client_prng);
  auto reply = Send5(bed, ctx, req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, kerb::ErrorCode::kAuthFailed);
}

TEST(PkPreauth5Test, DisabledCoreRefusesPkRequests) {
  Bed5 bed(/*enable_pk=*/false);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  auto part = DoPkLogin5(bed, ctx, client_prng, bed.user_key, 1);
  ASSERT_FALSE(part.ok());
  EXPECT_EQ(part.error().code, kerb::ErrorCode::kUnsupported);
}

TEST(PkPreauth5Test, DegenerateClientPublicsAreRejected) {
  Bed5 bed;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  const kcrypto::DhGroup& group = kcrypto::OakleyGroup1();
  for (const kcrypto::BigInt& pub :
       {kcrypto::BigInt(0), kcrypto::BigInt(1), group.p.Sub(kcrypto::BigInt(1)), group.p}) {
    krb5::AsPkRequest5 req;
    req.client = Alice();
    req.service_realm = kRealm;
    req.lifetime = ksim::kHour;
    req.nonce = 3;
    req.client_pub = pub.ToBytes();
    ksim::Message msg;
    msg.src = kClientAddr;
    msg.payload = req.ToTlv().Encode();
    auto reply = bed.core->HandleAs(msg, ctx);
    ASSERT_FALSE(reply.ok()) << pub.ToHex();
    EXPECT_EQ(reply.error().code, kerb::ErrorCode::kBadFormat) << pub.ToHex();
  }
}

TEST(PkPreauth5Test, PkRequestsShareTheAsRateLimit) {
  Bed5 bed;
  bed.core->policy().as_rate_limit_per_minute = 3;
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};
  kcrypto::Prng client_prng(0x2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(DoPkLogin5(bed, ctx, client_prng, bed.user_key, 100 + i).ok()) << i;
  }
  auto part = DoPkLogin5(bed, ctx, client_prng, bed.user_key, 200);
  ASSERT_FALSE(part.ok());
  EXPECT_EQ(part.error().code, kerb::ErrorCode::kRateLimited);
}

TEST(PkPreauth5Test, ParallelPkServingAllVerify) {
  Bed5 bed;
  std::atomic<uint64_t> ok{0};
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&bed, &ok, t] {
      krb4::KdcContext ctx{kcrypto::Prng(0x100 + t)};
      kcrypto::Prng client_prng(0x200 + t);
      for (int i = 0; i < kPerThread; ++i) {
        if (DoPkLogin5(bed, ctx, client_prng, bed.user_key, t * 1000 + i).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(bed.core->pk_as_requests_served(), kThreads * kPerThread);
}

}  // namespace
