// Byte-identity of the batched KDC dispatch (PR-6).
//
// HandleAsBatch/HandleTgsBatch restructure the serving hot path — decode
// the whole batch, resolve principal keys through one LookupMany pass per
// shard, then serve in request order — and their contract is that none of
// that restructuring is observable in the replies: a batch of requests
// produces byte-for-byte the replies the one-at-a-time handlers produce,
// for every mix of valid requests, malformed frames, unknown principals,
// and in-batch duplicates (reply-cache hits), and independently of how the
// queue is carved into dispatches. These tests pin that contract for both
// the V4 and the V5 cores.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/attacks/kdcload.h"
#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/checksum.h"
#include "src/crypto/prng.h"
#include "src/crypto/str2key.h"
#include "src/krb4/messages.h"
#include "src/krb5/enclayer.h"
#include "src/krb5/messages.h"

namespace {

using kattack::Testbed4;
using kattack::Testbed5;

// Serves every message one-at-a-time through `seq`, then as batches through
// `batch`, and asserts the two reply streams are identical result-by-result
// and byte-by-byte. `serve_one` and `serve_batch` adapt to the V4/V5 cores.
template <typename ServeOne, typename ServeBatch>
void ExpectBatchMatchesSequential(const std::vector<ksim::Message>& msgs, uint64_t seed,
                                  ServeOne serve_one, ServeBatch serve_batch) {
  krb4::KdcContext seq_ctx{kcrypto::Prng(seed)};
  std::vector<kerb::Result<kerb::Bytes>> sequential;
  sequential.reserve(msgs.size());
  for (const auto& msg : msgs) {
    sequential.push_back(serve_one(msg, seq_ctx));
  }

  // Whole queue in one dispatch.
  {
    krb4::KdcContext batch_ctx{kcrypto::Prng(seed)};
    std::vector<kerb::Result<kerb::Bytes>> batched;
    serve_batch(msgs.data(), msgs.size(), batch_ctx, batched);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_EQ(batched[i].ok(), sequential[i].ok()) << "reply " << i;
      if (sequential[i].ok()) {
        EXPECT_EQ(batched[i].value(), sequential[i].value()) << "reply " << i;
      } else {
        EXPECT_EQ(batched[i].error().code, sequential[i].error().code) << "reply " << i;
        EXPECT_EQ(batched[i].error().detail, sequential[i].error().detail) << "reply " << i;
      }
    }
  }

  // Same queue carved into uneven dispatches — how a draining worker
  // actually sees it. The carve points must not be observable either.
  for (size_t first : {size_t{1}, size_t{3}}) {
    if (first >= msgs.size()) {
      continue;
    }
    krb4::KdcContext batch_ctx{kcrypto::Prng(seed)};
    std::vector<kerb::Result<kerb::Bytes>> batched;
    serve_batch(msgs.data(), first, batch_ctx, batched);
    serve_batch(msgs.data() + first, msgs.size() - first, batch_ctx, batched);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_EQ(batched[i].ok(), sequential[i].ok()) << "split " << first << " reply " << i;
      if (sequential[i].ok()) {
        EXPECT_EQ(batched[i].value(), sequential[i].value())
            << "split " << first << " reply " << i;
      }
    }
  }
}

ksim::Message Msg4(const ksim::NetAddress& src, kerb::Bytes payload, ksim::Time now) {
  ksim::Message msg;
  msg.src = src;
  msg.dst = Testbed4::kAsAddr;
  msg.payload = std::move(payload);
  msg.sent_at = now;
  return msg;
}

kerb::Bytes AsRequestBytes4(const krb4::Principal& client, const std::string& realm) {
  krb4::AsRequest4 req;
  req.client = client;
  req.service_realm = realm;
  req.lifetime = 4 * ksim::kHour;
  return krb4::Frame4(krb4::MsgType::kAsRequest, req.Encode());
}

TEST(KdcBatchTest, V4AsBatchIsByteIdenticalToSequential) {
  kattack::TestbedConfig config;
  config.kdc_reply_cache_window = ksim::kMinute;  // exercise in-batch duplicates
  Testbed4 bed(config);
  const ksim::Time now = bed.world().MakeHostClock().Now();

  std::vector<ksim::Message> msgs;
  msgs.push_back(Msg4(Testbed4::kAliceAddr, AsRequestBytes4(bed.alice_principal(), bed.realm), now));
  msgs.push_back(Msg4(Testbed4::kBobAddr,
                      AsRequestBytes4({"bob", "", bed.realm}, bed.realm), now));
  // Unknown principal: the error reply must match too.
  msgs.push_back(Msg4(Testbed4::kEveAddr,
                      AsRequestBytes4({"nobody", "", bed.realm}, bed.realm), now));
  // Garbage payload: bad-format path.
  msgs.push_back(Msg4(Testbed4::kEveAddr, kerb::Bytes{0xde, 0xad, 0xbe, 0xef}, now));
  // Exact duplicate of the first request: a reply-cache hit inside the batch.
  msgs.push_back(msgs.front());
  // A second alice request from a different port: NOT a duplicate (distinct
  // source), so it must mint a fresh ticket in both harnesses.
  msgs.push_back(Msg4({Testbed4::kAliceAddr.host, 1024},
                      AsRequestBytes4(bed.alice_principal(), bed.realm), now));

  krb4::KdcCore4& core = bed.kdc().core();
  ExpectBatchMatchesSequential(
      msgs, 0x6b646334,
      [&core](const ksim::Message& m, krb4::KdcContext& ctx) { return core.HandleAs(m, ctx); },
      [&core](const ksim::Message* m, size_t n, krb4::KdcContext& ctx,
              std::vector<kerb::Result<kerb::Bytes>>& out) { core.HandleAsBatch(m, n, ctx, out); });
}

TEST(KdcBatchTest, V4TgsBatchIsByteIdenticalToSequential) {
  kattack::TestbedConfig config;
  config.kdc_reply_cache_window = ksim::kMinute;
  Testbed4 bed(config);
  const ksim::Time now = bed.world().MakeHostClock().Now();
  krb4::KdcCore4& core = bed.kdc().core();

  // One real AS exchange yields the TGT + session key the TGS requests need.
  krb4::KdcContext setup_ctx{kcrypto::Prng(0x5e70)};
  ksim::Message as_msg =
      Msg4(Testbed4::kAliceAddr, AsRequestBytes4(bed.alice_principal(), bed.realm), now);
  auto as_reply = core.HandleAs(as_msg, setup_ctx);
  ASSERT_TRUE(as_reply.ok());
  auto framed = krb4::Unframe4(as_reply.value());
  ASSERT_TRUE(framed.ok());
  const kcrypto::DesKey alice_key =
      kcrypto::StringToKey(Testbed4::kAlicePassword, bed.alice_principal().Salt());
  auto body_plain = krb4::Unseal4(alice_key, framed.value().second);
  ASSERT_TRUE(body_plain.ok());
  auto body = krb4::AsReplyBody4::Decode(body_plain.value());
  ASSERT_TRUE(body.ok());
  kcrypto::DesKey tgs_session(body.value().tgs_session_key);

  auto tgs_request = [&](const krb4::Principal& service) {
    krb4::TgsRequest4 req;
    req.service = service;
    req.sealed_tgt = body.value().sealed_tgt;
    krb4::Authenticator4 auth;
    auth.client = bed.alice_principal();
    auth.client_addr = Testbed4::kAliceAddr.host;
    auth.timestamp = now;
    req.sealed_auth = auth.Seal(tgs_session);
    req.lifetime = ksim::kHour;
    ksim::Message msg = Msg4(Testbed4::kAliceAddr,
                             krb4::Frame4(krb4::MsgType::kTgsRequest, req.Encode()), now);
    msg.dst = Testbed4::kTgsAddr;
    return msg;
  };

  std::vector<ksim::Message> msgs;
  msgs.push_back(tgs_request(bed.mail_principal()));
  msgs.push_back(tgs_request(bed.file_principal()));
  msgs.push_back(tgs_request({"no-such-service", "", bed.realm}));  // unknown service
  msgs.push_back(Msg4(Testbed4::kEveAddr, kerb::Bytes{0x00, 0x01}, now));  // bad format
  msgs.push_back(msgs.front());  // in-batch duplicate → reply-cache hit

  ExpectBatchMatchesSequential(
      msgs, 0x6b646335,
      [&core](const ksim::Message& m, krb4::KdcContext& ctx) { return core.HandleTgs(m, ctx); },
      [&core](const ksim::Message* m, size_t n, krb4::KdcContext& ctx,
              std::vector<kerb::Result<kerb::Bytes>>& out) {
        core.HandleTgsBatch(m, n, ctx, out);
      });
}

TEST(KdcBatchTest, V5AsBatchIsByteIdenticalToSequential) {
  kattack::Testbed5Config config;
  config.kdc_policy.reply_cache_window = ksim::kMinute;
  Testbed5 bed(config);
  const ksim::Time now = bed.world().MakeHostClock().Now();
  krb5::KdcCore5& core = bed.kdc().core();
  kcrypto::Prng nonce_prng(0xa5a5);

  auto as_request = [&](const krb5::Principal& client, const ksim::NetAddress& src) {
    krb5::AsRequest5 req;
    req.client = client;
    req.service_realm = bed.realm;
    req.lifetime = 2 * ksim::kHour;
    req.nonce = nonce_prng.NextU64();
    ksim::Message msg;
    msg.src = src;
    msg.dst = Testbed5::kAsAddr;
    msg.payload = req.ToTlv().Encode();
    msg.sent_at = now;
    return msg;
  };

  std::vector<ksim::Message> msgs;
  msgs.push_back(as_request(bed.alice_principal(), Testbed5::kAliceAddr));
  msgs.push_back(as_request({"bob", "", bed.realm}, Testbed5::kBobAddr));
  msgs.push_back(as_request({"nobody", "", bed.realm}, Testbed5::kEveAddr));
  {
    ksim::Message garbage;
    garbage.src = Testbed5::kEveAddr;
    garbage.dst = Testbed5::kAsAddr;
    garbage.payload = kerb::Bytes{0xff, 0xfe, 0xfd};
    garbage.sent_at = now;
    msgs.push_back(garbage);
  }
  msgs.push_back(msgs.front());  // duplicate → reply-cache hit

  ExpectBatchMatchesSequential(
      msgs, 0x6b646355,
      [&core](const ksim::Message& m, krb4::KdcContext& ctx) { return core.HandleAs(m, ctx); },
      [&core](const ksim::Message* m, size_t n, krb4::KdcContext& ctx,
              std::vector<kerb::Result<kerb::Bytes>>& out) { core.HandleAsBatch(m, n, ctx, out); });
}

TEST(KdcBatchTest, V5TgsBatchIsByteIdenticalToSequential) {
  Testbed5 bed;
  const ksim::Time now = bed.world().MakeHostClock().Now();
  krb5::KdcCore5& core = bed.kdc().core();
  kcrypto::Prng prng(0xbeef5);

  // Real AS exchange for the TGT.
  krb5::AsRequest5 as_req;
  as_req.client = bed.alice_principal();
  as_req.service_realm = bed.realm;
  as_req.lifetime = 4 * ksim::kHour;
  as_req.nonce = prng.NextU64();
  ksim::Message as_msg;
  as_msg.src = Testbed5::kAliceAddr;
  as_msg.dst = Testbed5::kAsAddr;
  as_msg.payload = as_req.ToTlv().Encode();
  as_msg.sent_at = now;
  krb4::KdcContext setup_ctx{prng.Fork()};
  auto as_reply = core.HandleAs(as_msg, setup_ctx);
  ASSERT_TRUE(as_reply.ok());
  auto as_tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgAsRep, as_reply.value());
  ASSERT_TRUE(as_tlv.ok());
  auto rep = krb5::AsReply5::FromTlv(as_tlv.value());
  ASSERT_TRUE(rep.ok());
  const kcrypto::DesKey alice_key =
      kcrypto::StringToKey(Testbed5::kAlicePassword, bed.alice_principal().Salt());
  auto part_tlv = krb5::UnsealTlv(alice_key, krb5::kMsgEncAsRepPart,
                                  rep.value().sealed_enc_part, krb5::EncLayerConfig{});
  ASSERT_TRUE(part_tlv.ok());
  auto part = krb5::EncAsRepPart5::FromTlv(part_tlv.value());
  ASSERT_TRUE(part.ok());
  kcrypto::DesKey tgs_session(part.value().tgs_session_key);

  auto tgs_request = [&](const krb5::Principal& service) {
    krb5::TgsRequest5 req;
    req.service = service;
    req.lifetime = ksim::kHour;
    req.nonce = prng.NextU64();
    req.tgt_realm = bed.realm;
    req.sealed_tgt = rep.value().sealed_tgt;
    krb5::Authenticator5 auth;
    auth.client = bed.alice_principal();
    auth.timestamp = now;
    auth.checksum_type = kcrypto::ChecksumType::kCrc32;
    auth.request_checksum = kcrypto::ComputeChecksum(kcrypto::ChecksumType::kCrc32,
                                                     req.ChecksumInput(), tgs_session);
    req.sealed_authenticator = auth.Seal(tgs_session, krb5::EncLayerConfig{}, prng);
    ksim::Message msg;
    msg.src = Testbed5::kAliceAddr;
    msg.dst = Testbed5::kTgsAddr;
    msg.payload = req.ToTlv().Encode();
    msg.sent_at = now;
    return msg;
  };

  std::vector<ksim::Message> msgs;
  msgs.push_back(tgs_request(bed.mail_principal()));
  msgs.push_back(tgs_request({"no-such-service", "", bed.realm}));
  {
    ksim::Message garbage;
    garbage.src = Testbed5::kEveAddr;
    garbage.dst = Testbed5::kTgsAddr;
    garbage.payload = kerb::Bytes{0x42};
    garbage.sent_at = now;
    msgs.push_back(garbage);
  }
  msgs.push_back(tgs_request(bed.mail_principal()));  // fresh nonce: distinct request

  ExpectBatchMatchesSequential(
      msgs, 0x6b646356,
      [&core](const ksim::Message& m, krb4::KdcContext& ctx) { return core.HandleTgs(m, ctx); },
      [&core](const ksim::Message* m, size_t n, krb4::KdcContext& ctx,
              std::vector<kerb::Result<kerb::Bytes>>& out) {
        core.HandleTgsBatch(m, n, ctx, out);
      });
}

// The batched load harness must agree with the sequential one on aggregate
// accept counts for every batch size, including batch sizes that do not
// divide the queue length.
TEST(KdcBatchTest, BatchedLoadHarnessMatchesSequentialCounts) {
  Testbed5 bed;
  const ksim::Time now = bed.world().MakeHostClock().Now();
  krb5::KdcCore5& core = bed.kdc().core();
  kcrypto::Prng prng(0x10adb);

  krb5::AsRequest5 as_req;
  as_req.client = bed.alice_principal();
  as_req.service_realm = bed.realm;
  as_req.lifetime = ksim::kHour;
  as_req.nonce = prng.NextU64();
  ksim::Message request;
  request.src = Testbed5::kAliceAddr;
  request.dst = Testbed5::kAsAddr;
  request.payload = as_req.ToTlv().Encode();
  request.sent_at = now;

  kattack::KdcBatchHandler batch_handler =
      [&core](const ksim::Message* msgs, size_t n, krb4::KdcContext& ctx,
              std::vector<kerb::Result<kerb::Bytes>>& replies) {
        core.HandleAsBatch(msgs, n, ctx, replies);
      };
  constexpr uint64_t kPerWorker = 37;  // deliberately not a batch multiple
  for (unsigned threads : {1u, 2u, 4u}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      auto result = kattack::RunKdcLoadBatched(batch_handler, request, threads, kPerWorker,
                                               0xfade + threads, batch);
      EXPECT_EQ(result.requests_failed, 0u) << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result.requests_ok, threads * kPerWorker)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

}  // namespace
