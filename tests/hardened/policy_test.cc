#include "src/hardened/policy.h"

#include <gtest/gtest.h>

#include "src/attacks/testbed5.h"

namespace khard {
namespace {

TEST(PolicyTest, RecommendedKdcPolicyDisablesOverloadedOptions) {
  krb5::KdcPolicy5 policy = RecommendedKdcPolicy();
  EXPECT_FALSE(policy.allow_enc_tkt_in_skey);
  EXPECT_FALSE(policy.allow_reuse_skey);
  EXPECT_TRUE(policy.enforce_enc_tkt_cname_match);
  EXPECT_TRUE(policy.require_preauth);
  EXPECT_TRUE(policy.require_collision_proof_checksum);
  EXPECT_GT(policy.as_rate_limit_per_minute, 0u);
  EXPECT_TRUE(kcrypto::IsCollisionProof(policy.enc.checksum));
}

TEST(PolicyTest, RecommendedServerUsesChallengeResponseAndSubkeys) {
  krb5::AppServer5Options options = RecommendedServerOptions();
  EXPECT_EQ(options.mode, krb5::ApAuthMode::kChallengeResponse);
  EXPECT_TRUE(options.negotiate_subkey);
  EXPECT_TRUE(options.verify_service_name_check);
  EXPECT_TRUE(options.replay_cache);
}

TEST(PolicyTest, RecommendedChannelUsesSequenceNumbers) {
  krb5::ChannelConfig config = RecommendedChannelConfig();
  EXPECT_EQ(config.protection, krb5::ReplayProtection::kSequence);
  EXPECT_TRUE(kcrypto::IsCollisionProof(config.enc.checksum));
}

TEST(PolicyTest, Draft3DefaultsArePermissive) {
  krb5::KdcPolicy5 policy = Draft3KdcPolicy();
  EXPECT_TRUE(policy.allow_enc_tkt_in_skey);
  EXPECT_TRUE(policy.allow_reuse_skey);
  EXPECT_FALSE(policy.require_preauth);
  EXPECT_EQ(policy.enc.checksum, kcrypto::ChecksumType::kCrc32);
}

TEST(PolicyTest, FullyHardenedDeploymentStillWorksEndToEnd) {
  // The recommendations must compose into a functioning system.
  kattack::Testbed5Config config;
  config.kdc_policy = RecommendedKdcPolicy();
  config.server_options = RecommendedServerOptions();
  config.client_options = RecommendedClientOptions();
  kattack::Testbed5 bed(config);

  ASSERT_TRUE(bed.alice().Login(kattack::Testbed5::kAlicePassword).ok());
  auto result = bed.alice().CallService(kattack::Testbed5::kMailAddr, bed.mail_principal(),
                                        true, kerb::ToBytes("check"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(bed.mail_log().size(), 1u);

  // The negotiated channel key differs from the multi-session key.
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  ASSERT_TRUE(creds.ok());
  EXPECT_FALSE(result.value().channel_key == creds.value().session_key);
}

TEST(PolicyTest, HardenedDeploymentRejectsDraft3Client) {
  // A CRC-32 client cannot get service tickets from a hardened KDC.
  kattack::Testbed5Config config;
  config.kdc_policy = RecommendedKdcPolicy();
  config.client_options = Draft3ClientOptions();  // CRC-32, no preauth
  config.kdc_policy.enc = krb5::EncLayerConfig{};  // wire compat for this check
  config.client_options.enc = krb5::EncLayerConfig{};
  kattack::Testbed5 bed(config);
  EXPECT_FALSE(bed.alice().Login(kattack::Testbed5::kAlicePassword).ok())
      << "no preauth, no ticket";
}

}  // namespace
}  // namespace khard
