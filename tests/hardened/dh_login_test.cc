#include "src/hardened/dh_login.h"

#include <gtest/gtest.h>

#include "src/attacks/passwords.h"
#include "src/sim/world.h"

namespace khard {
namespace {

struct DhFixture {
  ksim::World world{23};
  std::string realm = "ATHENA.SIM";
  krb4::Principal alice = krb4::Principal::User("alice", realm);
  std::string password = "correct-horse";
  ksim::NetAddress login_addr{0x0a000058, 789};
  ksim::NetAddress alice_addr{0x0a000101, 1023};
  kcrypto::Prng client_prng{41};
  std::unique_ptr<DhLoginServer> server;

  explicit DhFixture(kcrypto::DhGroup group) {
    world.clock().Set(500 * ksim::kSecond);
    krb4::KdcDatabase db;
    db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), world.prng());
    db.AddUser(alice, password);
    server = std::make_unique<DhLoginServer>(&world.network(), login_addr,
                                             world.MakeHostClock(0), realm, std::move(db),
                                             world.prng().Fork(), std::move(group));
  }
};

TEST(DhLoginTest, SucceedsWithCorrectPassword) {
  DhFixture f(kcrypto::OakleyGroup1());
  auto result = DhLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice, f.password,
                        f.server->group(), f.client_prng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().sealed_tgt.empty());
}

TEST(DhLoginTest, FailsWithWrongPassword) {
  DhFixture f(kcrypto::OakleyGroup1());
  auto result = DhLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice, "wrong",
                        f.server->group(), f.client_prng);
  EXPECT_FALSE(result.ok());
}

TEST(DhLoginTest, WorksWithToyGroupToo) {
  kcrypto::Prng group_prng(1);
  DhFixture f(kcrypto::MakeToyGroup(group_prng, 32));
  auto result = DhLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice, f.password,
                        f.server->group(), f.client_prng);
  EXPECT_TRUE(result.ok());
}

TEST(DhLoginTest, WiretapSeesNoPasswordCrackableMaterial) {
  DhFixture f(kcrypto::OakleyGroup1());
  ksim::RecordingAdversary recorder;
  f.world.network().SetAdversary(&recorder);
  ASSERT_TRUE(DhLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice, f.password,
                      f.server->group(), f.client_prng)
                  .ok());
  f.world.network().SetAdversary(nullptr);

  // Try the dictionary (which contains nothing) AND the actual password
  // against every recorded byte-string — nothing confirms.
  std::vector<std::string> dictionary = kattack::CommonPasswordDictionary();
  dictionary.push_back(f.password);  // the attacker even guesses right!
  for (const auto& exchange : recorder.exchanges()) {
    EXPECT_FALSE(
        kattack::CrackSealedReply(exchange.reply, f.alice, dictionary).has_value());
  }
}

}  // namespace
}  // namespace khard
