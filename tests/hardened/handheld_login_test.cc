#include "src/hardened/handheld_login.h"

#include <gtest/gtest.h>

#include "src/sim/world.h"

namespace khard {
namespace {

struct LoginFixture {
  ksim::World world{17};
  std::string realm = "ATHENA.SIM";
  krb4::Principal alice = krb4::Principal::User("alice", realm);
  kcrypto::DesKey device_key{world.prng().NextDesKey()};
  khsm::HandheldAuthenticator device{device_key};
  ksim::NetAddress login_addr{0x0a000058, 790};
  ksim::NetAddress alice_addr{0x0a000101, 1023};

  std::unique_ptr<HandheldLoginServer> server;

  LoginFixture() {
    world.clock().Set(500 * ksim::kSecond);
    krb4::KdcDatabase db;
    db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), world.prng());
    db.AddService(alice, device_key);
    server = std::make_unique<HandheldLoginServer>(&world.network(), login_addr,
                                                   world.MakeHostClock(0), realm,
                                                   std::move(db), world.prng().Fork());
  }
};

TEST(HandheldLoginTest, FullFlowSucceeds) {
  LoginFixture f;
  auto result = HandheldLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice,
                              f.device);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().sealed_tgt.empty());
  EXPECT_EQ(f.server->challenges_issued(), 1u);
}

TEST(HandheldLoginTest, WrongDeviceFails) {
  LoginFixture f;
  khsm::HandheldAuthenticator wrong_device(f.world.prng().NextDesKey());
  auto result = HandheldLogin(&f.world.network(), f.alice_addr, f.login_addr, f.alice,
                              wrong_device);
  EXPECT_FALSE(result.ok());
}

TEST(HandheldLoginTest, ChallengesAreSingleUse) {
  LoginFixture f;
  auto challenge = RequestLoginChallenge(&f.world.network(), f.alice_addr, f.login_addr,
                                         f.alice);
  ASSERT_TRUE(challenge.ok());
  uint64_t response = f.device.Respond(challenge.value());
  ASSERT_TRUE(CompleteLoginWithResponse(&f.world.network(), f.alice_addr, f.login_addr,
                                        f.alice, response)
                  .ok());
  // Second completion without a new challenge: refused.
  auto again = CompleteLoginWithResponse(&f.world.network(), f.alice_addr, f.login_addr,
                                         f.alice, response);
  EXPECT_FALSE(again.ok());
}

TEST(HandheldLoginTest, ChallengesExpire) {
  LoginFixture f;
  auto challenge = RequestLoginChallenge(&f.world.network(), f.alice_addr, f.login_addr,
                                         f.alice);
  ASSERT_TRUE(challenge.ok());
  f.world.clock().Advance(2 * ksim::kMinute);  // past the 1-minute lifetime
  auto result = CompleteLoginWithResponse(&f.world.network(), f.alice_addr, f.login_addr,
                                          f.alice, f.device.Respond(challenge.value()));
  EXPECT_FALSE(result.ok());
}

TEST(HandheldLoginTest, DistinctChallengesPerRequest) {
  LoginFixture f;
  auto c1 = RequestLoginChallenge(&f.world.network(), f.alice_addr, f.login_addr, f.alice);
  auto c2 = RequestLoginChallenge(&f.world.network(), f.alice_addr, f.login_addr, f.alice);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST(HandheldLoginTest, UnknownUserRejected) {
  LoginFixture f;
  auto result = RequestLoginChallenge(&f.world.network(), f.alice_addr, f.login_addr,
                                      krb4::Principal::User("mallory", f.realm));
  EXPECT_EQ(result.code(), kerb::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace khard
