// E13: a compromised transit realm forges cross-realm identities.

#include "src/attacks/interrealm.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(InterRealmE13Test, CompromisedTransitForgesForeignIdentity) {
  InterRealmForgeReport report = RunTransitRealmForgery("ENG.CORP");
  EXPECT_TRUE(report.honest_access_ok);
  EXPECT_EQ(report.honest_transited, "[ENG.CORP,CORP]");
  EXPECT_TRUE(report.forged_access_ok)
      << "CORP holds the inter-realm key; SALES cannot tell";
  EXPECT_EQ(report.forged_client, "ceo@ENG.CORP");
  // The laundered path is byte-identical to the honest one.
  EXPECT_EQ(report.forged_transited, report.honest_transited);
}

TEST(InterRealmE13Test, ForgedLocalTransitIdentityIndistinguishable) {
  InterRealmForgeReport report = RunTransitRealmForgery("CORP");
  EXPECT_TRUE(report.forged_access_ok);
  EXPECT_EQ(report.forged_client, "ceo@CORP");
  EXPECT_EQ(report.forged_transited, "[CORP]");
}

TEST(InterRealmE13Test, DistrustingTransitBlocksEverything) {
  // "each prospective user of Kerberos is responsible for judging its
  // security": the only stopping policy throws out honest traffic too.
  InterRealmForgeReport report = RunTransitRealmForgery("ENG.CORP");
  EXPECT_TRUE(report.strict_policy_blocks_forgery);
  EXPECT_TRUE(report.strict_policy_blocks_honest)
      << "the cost of distrust is the loss of the whole subtree";
}

}  // namespace
}  // namespace kattack
