// E1: authenticator replay within the clock-skew window.

#include "src/attacks/replay.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(ReplayE1Test, SucceedsWithinWindowWithoutCache) {
  // Draft-era reality: no replay cache, timestamp-only freshness.
  ReplayScenario scenario;
  scenario.server_replay_cache = false;
  scenario.replay_delay = 2 * ksim::kMinute;
  ReplayReport report = RunMailCheckReplayV4(scenario);
  EXPECT_TRUE(report.captured);
  EXPECT_TRUE(report.replay_accepted) << "the paper's attack must succeed here";
  EXPECT_EQ(report.server_accepted, 2u);  // original + replay
  EXPECT_EQ(report.evidence, "mail-check alice@ATHENA.SIM");
}

TEST(ReplayE1Test, WorksEvenAfterVictimLogsOut) {
  // "Kerberos attempts to wipe out old keys at logoff time" — but the wire
  // capture is unaffected; the attack in RunMailCheckReplayV4 replays after
  // alice's logout by construction.
  ReplayReport report = RunMailCheckReplayV4(ReplayScenario{});
  EXPECT_TRUE(report.replay_accepted);
}

TEST(ReplayE1Test, BlockedOutsideSkewWindow) {
  ReplayScenario scenario;
  scenario.replay_delay = 6 * ksim::kMinute;  // beyond the 5-minute window
  ReplayReport report = RunMailCheckReplayV4(scenario);
  EXPECT_TRUE(report.captured);
  EXPECT_FALSE(report.replay_accepted);
}

TEST(ReplayE1Test, BlockedByReplayCache) {
  // The defence V4 specified but "never implemented".
  ReplayScenario scenario;
  scenario.server_replay_cache = true;
  ReplayReport report = RunMailCheckReplayV4(scenario);
  EXPECT_TRUE(report.captured);
  EXPECT_FALSE(report.replay_accepted);
  EXPECT_EQ(report.server_accepted, 1u);  // only the original
}

TEST(ReplayE1Test, BlockedByChallengeResponse) {
  // Recommendation (a): freshness from the server's nonce, not the clock.
  ReplayReport report = RunReplayAgainstChallengeResponse();
  EXPECT_TRUE(report.captured);
  EXPECT_FALSE(report.replay_accepted);
}

TEST(ReplayE1Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {1ull, 99ull, 31337ull}) {
    ReplayScenario scenario;
    scenario.seed = seed;
    EXPECT_TRUE(RunMailCheckReplayV4(scenario).replay_accepted) << seed;
  }
}

}  // namespace
}  // namespace kattack
