// E10: REUSE-SKEY shared-key ticket redirection.

#include "src/attacks/reuseskey.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(ReuseSkeyE10Test, RedirectedRequestDestroysArchives) {
  ReuseSkeyScenario scenario;  // no service-name binding
  ReuseSkeyReport report = RunReuseSkeyRedirection(scenario);
  EXPECT_TRUE(report.shared_key_issued) << "REUSE-SKEY must actually share the key";
  EXPECT_TRUE(report.splice_accepted)
      << "'an attacker might redirect some requests to destroy archival copies'";
  EXPECT_EQ(report.backup_action, "DELETE /archive/thesis.tex by alice@ATHENA.SIM");
}

TEST(ReuseSkeyE10Test, ServiceNameBindingBlocksRedirection) {
  // "A solution to this particular attack is to include ... the service
  // name ... in the authenticator."
  ReuseSkeyScenario scenario;
  scenario.service_name_binding = true;
  ReuseSkeyReport report = RunReuseSkeyRedirection(scenario);
  EXPECT_TRUE(report.shared_key_issued);  // the option still shares keys...
  EXPECT_FALSE(report.splice_accepted);   // ...but the splice dies
  EXPECT_TRUE(report.backup_action.empty());
}

TEST(ReuseSkeyE10Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {8ull, 808ull}) {
    ReuseSkeyScenario scenario;
    scenario.seed = seed;
    EXPECT_TRUE(RunReuseSkeyRedirection(scenario).splice_accepted) << seed;
  }
}

}  // namespace
}  // namespace kattack
