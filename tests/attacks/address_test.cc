// E12: address binding buys nothing against a network-level adversary.

#include "src/attacks/address.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(AddressE12Test, BindingStopsOnlyTheHonestThief) {
  AddressBindingReport report = RunAddressBindingStudy();
  EXPECT_TRUE(report.naive_reuse_rejected)
      << "the check works against an attacker who doesn't spoof";
  EXPECT_TRUE(report.spoofed_reuse_accepted)
      << "'no extra security is gained by relying on the network address'";
}

TEST(AddressE12Test, PostAuthHijackSucceeds) {
  // "an attacker can always wait until the connection is set up and
  // authenticated, and then take it over."
  AddressBindingReport report = RunAddressBindingStudy();
  EXPECT_TRUE(report.hijack_accepted);
  EXPECT_EQ(report.hijack_evidence, "cat /home/alice/secrets");
}

}  // namespace
}  // namespace kattack
