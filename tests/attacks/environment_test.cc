// E0: environment assumptions — diskless /tmp and host exposure windows.

#include "src/attacks/environment.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(EnvironmentE0Test, DisklessTmpCacheIsAWiretapPrize) {
  DisklessCacheReport report = RunDisklessTmpCacheTheft();
  EXPECT_TRUE(report.cache_written_over_network);
  EXPECT_TRUE(report.session_key_recovered_from_wire)
      << "'this is highly insecure on diskless workstations'";
  EXPECT_TRUE(report.impersonation_succeeded);
  EXPECT_EQ(report.evidence, "mail-check alice@ATHENA.SIM");
}

TEST(EnvironmentE0Test, MultiUserHostExposesLiveKeys) {
  HostExposureReport report = RunHostExposureStudy();
  EXPECT_TRUE(report.concurrent_theft_succeeded)
      << "'an attacker has concurrent access to the keys'";
}

TEST(EnvironmentE0Test, WorkstationLogoutClosesTheWindow) {
  HostExposureReport report = RunHostExposureStudy();
  EXPECT_FALSE(report.post_logout_theft_succeeded)
      << "'Kerberos attempts to wipe out old keys at logoff time'";
}

}  // namespace
}  // namespace kattack
