// E15: clients treated as services expose password-derived keys.

#include "src/attacks/userasservice.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(UserAsServiceE15Test, TicketForUserPrincipalCracksPassword) {
  UserAsServiceScenario scenario;  // permissive Draft-era behaviour
  UserAsServiceReport report = RunUserAsServiceHarvest(scenario);
  EXPECT_TRUE(report.ticket_issued)
      << "'tickets to the client, encrypted by Kc, may be obtained by any user'";
  EXPECT_TRUE(report.password_recovered);
  EXPECT_EQ(report.recovered_password, "password");  // bob's weak choice
}

TEST(UserAsServiceE15Test, PolicyRefusesUserPrincipalTickets) {
  UserAsServiceScenario scenario;
  scenario.forbid_user_principal_tickets = true;
  UserAsServiceReport report = RunUserAsServiceHarvest(scenario);
  EXPECT_FALSE(report.ticket_issued);
  EXPECT_FALSE(report.password_recovered);
}

TEST(UserAsServiceE15Test, RandomKeyInstanceIsSafeEitherWay) {
  // The paper's preferred alternative: "clients register separate instances
  // as services, with truly random keys."
  for (bool forbid : {false, true}) {
    UserAsServiceScenario scenario;
    scenario.forbid_user_principal_tickets = forbid;
    UserAsServiceReport report = RunUserAsServiceHarvest(scenario);
    EXPECT_TRUE(report.instance_ticket_issued) << forbid;
    EXPECT_FALSE(report.instance_password_recovered) << forbid;
  }
}

}  // namespace
}  // namespace kattack
