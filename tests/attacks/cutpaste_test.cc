// E9: CRC-32 cut-and-paste through ENC-TKT-IN-SKEY.

#include "src/attacks/cutpaste.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(CutPasteE9Test, Crc32PlusEncTktInSkeyNegatesMutualAuth) {
  CutPasteScenario scenario;  // Draft 3 literal reading: CRC-32, no cname rule
  CutPasteReport report = RunEncTktInSkeyCutPaste(scenario);
  EXPECT_TRUE(report.request_modified);
  EXPECT_TRUE(report.kdc_accepted) << "the forged CRC must verify at the TGS";
  EXPECT_TRUE(report.session_key_recovered)
      << "the ticket is sealed in the attacker's TGT session key";
  EXPECT_TRUE(report.mutual_auth_spoofed)
      << "'the bidirectional authentication dialog may be spoofed without trouble'";
  EXPECT_EQ(report.intercepted_data, "FETCH inbox/secret-draft");
}

TEST(CutPasteE9Test, CollisionProofChecksumBlocksIt) {
  CutPasteScenario scenario;
  scenario.request_checksum = kcrypto::ChecksumType::kMd4;
  CutPasteReport report = RunEncTktInSkeyCutPaste(scenario);
  EXPECT_TRUE(report.request_modified);  // the rewrite still goes out
  EXPECT_FALSE(report.kdc_accepted) << "no four-byte patch fixes an MD4";
  EXPECT_FALSE(report.session_key_recovered);
  EXPECT_FALSE(report.mutual_auth_spoofed);
}

TEST(CutPasteE9Test, KeyedMd4AlsoBlocks) {
  CutPasteScenario scenario;
  scenario.request_checksum = kcrypto::ChecksumType::kMd4Des;
  CutPasteReport report = RunEncTktInSkeyCutPaste(scenario);
  EXPECT_FALSE(report.kdc_accepted);
}

TEST(CutPasteE9Test, CnameMatchRuleBlocksEvenWithCrc32) {
  // "The designers intended to require that the cname in the additional
  // ticket match the name of the server ... the requirement was
  // inadvertently omitted from Draft 3."
  CutPasteScenario scenario;
  scenario.enforce_cname_match = true;
  CutPasteReport report = RunEncTktInSkeyCutPaste(scenario);
  EXPECT_TRUE(report.request_modified);
  EXPECT_FALSE(report.kdc_accepted) << "eve's TGT names eve, not pop.mailhub";
  EXPECT_FALSE(report.mutual_auth_spoofed);
}

TEST(CutPasteE9Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {2ull, 77ull}) {
    CutPasteScenario scenario;
    scenario.seed = seed;
    EXPECT_TRUE(RunEncTktInSkeyCutPaste(scenario).mutual_auth_spoofed) << seed;
  }
}

}  // namespace
}  // namespace kattack
