// E3: replaying a stale authenticator by spoofing the time service.

#include "src/attacks/timespoof.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(TimeSpoofE3Test, StaleReplaySucceedsAfterClockRollback) {
  TimeSpoofScenario scenario;
  TimeSpoofReport report = RunTimeSpoofReplay(scenario);
  EXPECT_TRUE(report.stale_replay_rejected_first) << "sanity: stale means stale";
  EXPECT_TRUE(report.time_sync_succeeded);
  EXPECT_TRUE(report.server_clock_corrupted);
  EXPECT_TRUE(report.stale_replay_accepted_after)
      << "a stale authenticator can be replayed without any trouble at all";
  EXPECT_EQ(report.evidence, "mail-check alice@ATHENA.SIM");
}

TEST(TimeSpoofE3Test, BlockedByAuthenticatedTimeService) {
  TimeSpoofScenario scenario;
  scenario.authenticated_time_service = true;
  TimeSpoofReport report = RunTimeSpoofReplay(scenario);
  EXPECT_TRUE(report.stale_replay_rejected_first);
  EXPECT_FALSE(report.time_sync_succeeded);  // the forged reply fails its MAC
  EXPECT_FALSE(report.server_clock_corrupted);
  EXPECT_FALSE(report.stale_replay_accepted_after);
}

TEST(TimeSpoofE3Test, WorksForVeryStaleAuthenticators) {
  // Even a day-old authenticator replays once the clock lies.
  TimeSpoofScenario scenario;
  scenario.staleness = 24 * ksim::kHour;
  // The 8-hour ticket lifetime also matters: past it the rolled-back clock
  // ALSO resurrects the ticket, which is the point of rolling all the way
  // back to capture time.
  TimeSpoofReport report = RunTimeSpoofReplay(scenario);
  EXPECT_TRUE(report.stale_replay_accepted_after);
}

}  // namespace
}  // namespace kattack
