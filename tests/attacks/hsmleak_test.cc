// E14: no key octet ever leaves the encryption unit.

#include "src/attacks/hsmleak.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(HsmLeakE14Test, SweepFindsNoKeyMaterialInAnyOutput) {
  HsmLeakReport report = RunEncryptionUnitLeakSweep();
  EXPECT_GT(report.operations_attempted, 200u);
  EXPECT_GT(report.outputs_scanned, 0u);
  EXPECT_GT(report.keys_in_unit, 4u);  // loaded + generated + captured
  EXPECT_EQ(report.key_octet_leaks, 0u) << report.detail;
}

TEST(HsmLeakE14Test, UsageTagsAreEnforced) {
  HsmLeakReport report = RunEncryptionUnitLeakSweep();
  EXPECT_GT(report.usage_violations_blocked, 0u)
      << "the fuzz phase must have tripped the purpose-tag checks";
}

TEST(HsmLeakE14Test, SoftwareCacheIsTheContrast) {
  HsmLeakReport report = RunEncryptionUnitLeakSweep();
  EXPECT_TRUE(report.software_cache_leaks)
      << "the all-software client hands keys to any host compromise";
}

TEST(HsmLeakE14Test, StableAcrossSeedsAndLongerFuzz) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(RunEncryptionUnitLeakSweep(seed, 400).key_octet_leaks, 0u) << seed;
  }
}

}  // namespace
}  // namespace kattack
