// E17: a stolen srvtab makes the attacker everyone on the machine.

#include "src/attacks/hosttrust.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(HostTrustE17Test, StolenSrvtabImpersonatesEveryUser) {
  HostTrustScenario scenario;  // host-asserted identities, the NFS pattern
  HostTrustReport report = RunSrvtabCompromise(scenario);
  EXPECT_TRUE(report.srvtab_readable);
  EXPECT_TRUE(report.host_login_succeeded)
      << "the host's plaintext key authenticates whoever holds it";
  EXPECT_EQ(report.impersonated, (std::vector<std::string>{"alice", "bob", "carol"}))
      << "'the intruder can likely impersonate any user on that computer'";
}

TEST(HostTrustE17Test, PerUserTicketsCloseTheHole) {
  HostTrustScenario scenario;
  scenario.require_per_user_tickets = true;
  HostTrustReport report = RunSrvtabCompromise(scenario);
  EXPECT_TRUE(report.host_login_succeeded);  // the host key still works...
  EXPECT_TRUE(report.impersonated.empty());  // ...but asserts nobody
  EXPECT_TRUE(report.per_user_tickets_blocked);
}

TEST(HostTrustE17Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {4ull, 44ull}) {
    HostTrustScenario scenario;
    scenario.seed = seed;
    EXPECT_EQ(RunSrvtabCompromise(scenario).impersonated.size(), 3u) << seed;
  }
}

}  // namespace
}  // namespace kattack
