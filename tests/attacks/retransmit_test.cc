// E16: the replay cache vs. legitimate retransmissions.

#include "src/attacks/retransmit.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(RetransmitE16Test, NaiveRetransmissionRaisesFalseAlarm) {
  RetransmitReport report = RunRetransmissionStudy(/*fresh_authenticator_per_retry=*/false);
  EXPECT_TRUE(report.first_attempt_lost);
  EXPECT_TRUE(report.server_acted_once);
  EXPECT_FALSE(report.retransmission_accepted)
      << "'Legitimate requests could be rejected, and a security alarm raised"
         " inappropriately.'";
  EXPECT_EQ(report.false_alarms, 1u);
}

TEST(RetransmitE16Test, FreshAuthenticatorPerRetryWorks) {
  RetransmitReport report = RunRetransmissionStudy(/*fresh_authenticator_per_retry=*/true);
  EXPECT_TRUE(report.first_attempt_lost);
  EXPECT_TRUE(report.retransmission_accepted)
      << "'generate a new authenticator when retransmitting a request'";
  EXPECT_EQ(report.false_alarms, 0u);
}

TEST(RetransmitE16Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_FALSE(RunRetransmissionStudy(false, seed).retransmission_accepted) << seed;
    EXPECT_TRUE(RunRetransmissionStudy(true, seed).retransmission_accepted) << seed;
  }
}

}  // namespace
}  // namespace kattack
