// E16: the replay cache vs. legitimate retransmissions — plus the KDC-side
// fix this repo adds (the retransmit-safe reply cache) and the proof that it
// does not weaken the app-server authenticator replay defence.

#include "src/attacks/retransmit.h"

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"

namespace kattack {
namespace {

TEST(RetransmitE16Test, NaiveRetransmissionRaisesFalseAlarm) {
  RetransmitReport report = RunRetransmissionStudy(/*fresh_authenticator_per_retry=*/false);
  EXPECT_TRUE(report.first_attempt_lost);
  EXPECT_TRUE(report.server_acted_once);
  EXPECT_FALSE(report.retransmission_accepted)
      << "'Legitimate requests could be rejected, and a security alarm raised"
         " inappropriately.'";
  EXPECT_EQ(report.false_alarms, 1u);
}

TEST(RetransmitE16Test, FreshAuthenticatorPerRetryWorks) {
  RetransmitReport report = RunRetransmissionStudy(/*fresh_authenticator_per_retry=*/true);
  EXPECT_TRUE(report.first_attempt_lost);
  EXPECT_TRUE(report.retransmission_accepted)
      << "'generate a new authenticator when retransmitting a request'";
  EXPECT_EQ(report.false_alarms, 0u);
}

TEST(RetransmitE16Test, DeterministicAcrossSeeds) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_FALSE(RunRetransmissionStudy(false, seed).retransmission_accepted) << seed;
    EXPECT_TRUE(RunRetransmissionStudy(true, seed).retransmission_accepted) << seed;
  }
}

// ---------------------------------------------------------------------------
// The KDC reply cache: identical retransmissions get identical bytes.

// Captures the request bytes of alice's login session and returns them by
// destination.
ksim::Message CaptureRequestTo(Testbed4& bed, const ksim::NetAddress& dst) {
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  EXPECT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(bed.alice().GetServiceTicket(bed.mail_principal()).ok());
  bed.world().network().SetAdversary(nullptr);
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == dst) {
      return exchange.request;
    }
  }
  ADD_FAILURE() << "no request captured to " << dst.ToString();
  return {};
}

TEST(KdcReplyCacheTest, DuplicateAsRequestGetsIdenticalBytesNotASecondTicket) {
  TestbedConfig config;
  config.kdc_reply_cache_window = 30 * ksim::kSecond;
  Testbed4 bed(config);
  ksim::Message as_req = CaptureRequestTo(bed, Testbed4::kAsAddr);

  auto first = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  auto second = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Byte-identical reply: same session key, same ticket — the KDC acted
  // once. Without the cache each call would mint a fresh session key and
  // the replies would diverge.
  EXPECT_EQ(first.value(), second.value());
  EXPECT_GE(bed.kdc().core().reply_cache_hits(), 1u);
}

TEST(KdcReplyCacheTest, DuplicateTgsRequestGetsIdenticalBytes) {
  TestbedConfig config;
  config.kdc_reply_cache_window = 30 * ksim::kSecond;
  Testbed4 bed(config);
  ksim::Message tgs_req = CaptureRequestTo(bed, Testbed4::kTgsAddr);

  auto replay = bed.world().network().Call(tgs_req.src, tgs_req.dst, tgs_req.payload);
  ASSERT_TRUE(replay.ok());
  uint64_t hits = bed.kdc().core().reply_cache_hits();
  EXPECT_GE(hits, 1u);
  auto again = bed.world().network().Call(tgs_req.src, tgs_req.dst, tgs_req.payload);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(replay.value(), again.value());
}

TEST(KdcReplyCacheTest, DifferentSourceAddressMisses) {
  // The cache keys on (claimed source, request bytes): the same bytes from
  // another host are a new request, answered with a fresh ticket.
  TestbedConfig config;
  config.kdc_reply_cache_window = 30 * ksim::kSecond;
  Testbed4 bed(config);
  ksim::Message as_req = CaptureRequestTo(bed, Testbed4::kAsAddr);

  auto original = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  uint64_t hits_before = bed.kdc().core().reply_cache_hits();
  auto elsewhere =
      bed.world().network().Call(Testbed4::kEveAddr, as_req.dst, as_req.payload);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_EQ(bed.kdc().core().reply_cache_hits(), hits_before);
  EXPECT_NE(original.value(), elsewhere.value()) << "fresh issue expected on a miss";
}

TEST(KdcReplyCacheTest, EntriesExpireAfterTheFreshnessWindow) {
  TestbedConfig config;
  config.kdc_reply_cache_window = 30 * ksim::kSecond;
  Testbed4 bed(config);
  ksim::Message as_req = CaptureRequestTo(bed, Testbed4::kAsAddr);

  auto first = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  bed.world().clock().Advance(config.kdc_reply_cache_window + ksim::kSecond);
  uint64_t hits_before = bed.kdc().core().reply_cache_hits();
  auto stale = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(bed.kdc().core().reply_cache_hits(), hits_before)
      << "the cache answers retransmissions, not history";
  EXPECT_NE(first.value(), stale.value());
}

TEST(KdcReplyCacheTest, DisabledByDefault) {
  // With the default zero window, duplicated AS requests each mint a ticket
  // — the historical behaviour every pinned-bytes test depends on.
  Testbed4 bed;
  ksim::Message as_req = CaptureRequestTo(bed, Testbed4::kAsAddr);
  auto a = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  auto b = bed.world().network().Call(as_req.src, as_req.dst, as_req.payload);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(bed.kdc().core().reply_cache_hits(), 0u);
}

TEST(KdcReplyCacheTest, DoesNotWeakenAppServerReplayDetection) {
  // The pairing that matters: absorbing KDC retransmissions must not blunt
  // the paper's authenticator replay defence at the application server. With
  // the reply cache on and the server replay cache on, a wiretapped AP
  // request replayed by eve is still rejected.
  TestbedConfig config;
  config.kdc_reply_cache_window = 30 * ksim::kSecond;
  config.server_replay_cache = true;
  Testbed4 bed(config);

  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  ASSERT_TRUE(
      bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), true).ok());
  bed.world().network().SetAdversary(nullptr);

  const ksim::Message* ap_req = nullptr;
  for (const auto& exchange : recorder.exchanges()) {
    if (exchange.request.dst == Testbed4::kMailAddr) {
      ap_req = &exchange.request;
    }
  }
  ASSERT_NE(ap_req, nullptr);

  size_t served_before = bed.mail_log().size();
  auto replay = bed.world().network().Call(ap_req->src, ap_req->dst, ap_req->payload);
  EXPECT_FALSE(replay.ok()) << "replayed authenticator accepted";
  EXPECT_EQ(bed.mail_log().size(), served_before) << "the server acted on a replay";
}

}  // namespace
}  // namespace kattack
