// E6: login spoofing vs. the handheld-authenticator scheme.

#include "src/attacks/loginspoof.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(LoginSpoofE6Test, CapturedPasswordWorksForever) {
  LoginSpoofReport report = RunLoginSpoofAgainstPassword();
  EXPECT_TRUE(report.victim_login_ok) << "the trojan is invisible to the victim";
  EXPECT_FALSE(report.captured_input.empty());
  EXPECT_TRUE(report.later_reuse_succeeded)
      << "a recorded password is a permanent compromise";
}

TEST(LoginSpoofE6Test, CapturedDeviceResponseIsSingleUse) {
  LoginSpoofReport report = RunLoginSpoofAgainstHandheld();
  EXPECT_TRUE(report.victim_login_ok) << "the scheme must not break honest logins";
  EXPECT_FALSE(report.captured_input.empty());
  EXPECT_FALSE(report.later_reuse_succeeded)
      << "{R}K_c for an old R must not open a reply keyed to a fresh R";
}

TEST(LoginSpoofE6Test, BothScenariosDeterministic) {
  for (uint64_t seed : {5ull, 500ull}) {
    EXPECT_TRUE(RunLoginSpoofAgainstPassword(seed).later_reuse_succeeded);
    EXPECT_FALSE(RunLoginSpoofAgainstHandheld(seed).later_reuse_succeeded);
  }
}

}  // namespace
}  // namespace kattack
