// E2: the Morris ISN-prediction attack with a stolen live authenticator.

#include "src/attacks/morris.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(MorrisE2Test, BlindSpoofSucceedsAgainstPredictableIsn) {
  MorrisScenario scenario;
  MorrisReport report = RunMorrisSpoof(scenario);
  EXPECT_TRUE(report.isn_predicted);
  EXPECT_TRUE(report.handshake_spoofed);
  EXPECT_TRUE(report.command_executed);
  EXPECT_EQ(report.evidence, "rm thesis.tex as alice@ATHENA.SIM");
}

TEST(MorrisE2Test, BlockedByRandomIsns) {
  MorrisScenario scenario;
  scenario.isn_policy = ksim::IsnPolicy::kRandom;
  MorrisReport report = RunMorrisSpoof(scenario);
  EXPECT_FALSE(report.isn_predicted);
  EXPECT_FALSE(report.handshake_spoofed);
  EXPECT_FALSE(report.command_executed);
}

TEST(MorrisE2Test, BlockedByChallengeResponse) {
  // "his attack would still work if accompanied by a stolen live
  // authenticator, but not if a challenge/response protocol was used."
  MorrisScenario scenario;
  scenario.challenge_response = true;
  MorrisReport report = RunMorrisSpoof(scenario);
  EXPECT_TRUE(report.isn_predicted);       // the TCP layer still falls
  EXPECT_TRUE(report.handshake_spoofed);   // the connection spoofs fine
  EXPECT_FALSE(report.command_executed);   // but the command never runs
  EXPECT_EQ(report.evidence, "server issued a challenge the blind attacker cannot read");
}

TEST(MorrisE2Test, StableAcrossSeeds) {
  for (uint64_t seed : {3ull, 17ull, 4242ull}) {
    MorrisScenario scenario;
    scenario.seed = seed;
    EXPECT_TRUE(RunMorrisSpoof(scenario).command_executed) << seed;
  }
}

}  // namespace
}  // namespace kattack
