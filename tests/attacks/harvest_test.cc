// E4/E5: password-guessing by eavesdropping and by direct harvesting.

#include "src/attacks/harvest.h"

#include <gtest/gtest.h>

namespace kattack {
namespace {

TEST(PwGuessE4Test, EavesdropperCracksWeakPasswords) {
  HarvestScenario scenario;
  scenario.population = 30;
  scenario.weak_fraction = 0.5;
  CrackReport report = RunEavesdropCrackV4(scenario);
  EXPECT_EQ(report.population, 30);
  EXPECT_EQ(report.replies_obtained, 30);  // every login dialog was recorded
  EXPECT_GT(report.weak_users, 0);
  // "good odds of finding several new passwords": every dictionary password
  // falls, no strong password does.
  EXPECT_EQ(report.cracked, report.weak_users);
  EXPECT_GT(report.guess_attempts, 0u);
}

TEST(PwGuessE4Test, NoWeakPasswordsNothingCracked) {
  HarvestScenario scenario;
  scenario.population = 15;
  scenario.weak_fraction = 0.0;
  CrackReport report = RunEavesdropCrackV4(scenario);
  EXPECT_EQ(report.weak_users, 0);
  EXPECT_EQ(report.cracked, 0);
}

TEST(PwGuessE4Test, AllWeakAllCracked) {
  HarvestScenario scenario;
  scenario.population = 15;
  scenario.weak_fraction = 1.0;
  CrackReport report = RunEavesdropCrackV4(scenario);
  EXPECT_EQ(report.weak_users, 15);
  EXPECT_EQ(report.cracked, 15);
}

TEST(PwGuessE4Test, DhLoginLayerDefeatsPassiveCracking) {
  // Recommendation (h): "prevent a passive wiretapper from accumulating
  // the network equivalent of /etc/passwd".
  DhCrackScenario scenario;
  scenario.base.population = 12;
  scenario.base.weak_fraction = 1.0;  // every password is weak...
  scenario.toy_group_bits = 0;        // ...but the group is Oakley-1 (768-bit)
  CrackReport report = RunEavesdropCrackAgainstDhLogin(scenario);
  EXPECT_EQ(report.replies_obtained, 12);
  EXPECT_EQ(report.cracked, 0) << "the DH layer must hide everything";
}

TEST(PwGuessE4Test, ToyDhGroupFallsToDiscreteLog) {
  // "exchanging small numbers is quite insecure" [LaMa]: with a word-sized
  // modulus the attacker strips the DH layer and cracks as before.
  DhCrackScenario scenario;
  scenario.base.population = 8;
  scenario.base.weak_fraction = 1.0;
  scenario.toy_group_bits = 28;
  CrackReport report = RunEavesdropCrackAgainstDhLogin(scenario);
  EXPECT_EQ(report.replies_obtained, 8);
  EXPECT_EQ(report.cracked, 8) << "small moduli provide no protection";
}

TEST(HarvestE5Test, NoEavesdroppingNeededWithoutPreauth) {
  // "Requests for tickets are not themselves encrypted; an attacker could
  // simply request ticket-granting tickets for many different users."
  ActiveHarvestScenario scenario;
  scenario.base.population = 20;
  scenario.base.weak_fraction = 0.5;
  CrackReport report = RunActiveHarvest(scenario);
  EXPECT_EQ(report.replies_obtained, 20);
  EXPECT_EQ(report.rejected_by_kdc, 0);
  EXPECT_EQ(report.cracked, report.weak_users);
}

TEST(HarvestE5Test, PreauthenticationStopsHarvesting) {
  // Recommendation (g).
  ActiveHarvestScenario scenario;
  scenario.base.population = 20;
  scenario.kdc_requires_preauth = true;
  CrackReport report = RunActiveHarvest(scenario);
  EXPECT_EQ(report.replies_obtained, 0);
  EXPECT_EQ(report.rejected_by_kdc, 20);
  EXPECT_EQ(report.cracked, 0);
}

TEST(HarvestE5Test, RateLimitingSlowsHarvesting) {
  ActiveHarvestScenario scenario;
  scenario.base.population = 40;
  scenario.kdc_rate_limit_per_minute = 10;
  CrackReport report = RunActiveHarvest(scenario);
  EXPECT_EQ(report.replies_obtained, 10);  // the burst hits the ceiling
  EXPECT_EQ(report.rejected_by_kdc, 30);
}

}  // namespace
}  // namespace kattack
