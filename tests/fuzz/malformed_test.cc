// Malformed-input robustness: truncated, bit-flipped, and garbage bytes
// against every decoder and live KDC/app-server network path.
//
// The contract under test is narrow but absolute: hostile bytes may be
// rejected with any honest protocol error (kBadFormat, kIntegrity,
// kAuthFailed, ...), but must never crash a handler and never surface
// kInternal — an invariant breach — no matter where they are cut or which
// bits are flipped. Run with KERB_SANITIZE=address for the memory-safety
// half of the claim; the assertions here cover the fail-closed half.

#include <gtest/gtest.h>

#include <vector>

#include "src/admin/kadmin.h"
#include "src/admin/messages.h"
#include "src/attacks/kdcload.h"
#include "src/cluster/cluster.h"
#include "src/cluster/population.h"
#include "src/cluster/router.h"
#include "src/cluster/wire.h"
#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/checksum.h"
#include "src/crypto/dh.h"
#include "src/crypto/prng.h"
#include "src/crypto/str2key.h"
#include "src/encoding/io.h"
#include "src/encoding/tlv.h"
#include "src/krb4/messages.h"
#include "src/krb4/kdcstore.h"
#include "src/store/kprop.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"

namespace {

using kattack::Testbed4;
using kattack::Testbed5;

// Any honest rejection is fine; kInternal is an invariant breach, and
// kTransport would mean the harness hit an unbound address.
void ExpectCleanFailure(kerb::ErrorCode code, const char* what) {
  EXPECT_NE(code, kerb::ErrorCode::kInternal) << what;
  EXPECT_NE(code, kerb::ErrorCode::kTransport) << what;
}

// Captures the live request bytes of one full V4 session (AS, TGS, AP) by
// recording alice's traffic.
std::vector<ksim::Message> CaptureSession4(Testbed4& bed) {
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  EXPECT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(
      bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), true).ok());
  bed.world().network().SetAdversary(nullptr);
  std::vector<ksim::Message> requests;
  for (const auto& exchange : recorder.exchanges()) {
    requests.push_back(exchange.request);
  }
  return requests;
}

std::vector<ksim::Message> CaptureSession5(Testbed5& bed) {
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  EXPECT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  EXPECT_TRUE(
      bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true).ok());
  bed.world().network().SetAdversary(nullptr);
  std::vector<ksim::Message> requests;
  for (const auto& exchange : recorder.exchanges()) {
    requests.push_back(exchange.request);
  }
  return requests;
}

// Replays every strict prefix of each captured request to its original
// destination. A message cut anywhere must be refused cleanly.
template <typename Bed>
void TruncationSweep(Bed& bed, const std::vector<ksim::Message>& requests) {
  for (const auto& msg : requests) {
    for (size_t len = 0; len < msg.payload.size(); ++len) {
      kerb::Bytes cut(msg.payload.begin(), msg.payload.begin() + len);
      auto r = bed.world().network().Call(msg.src, msg.dst, cut);
      ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
      ExpectCleanFailure(r.error().code, "truncated request");
    }
  }
}

// Flips every bit of every captured request and replays it. Flips in
// plaintext header fields may legally still be served (V4 AS requests are
// unauthenticated — the paper's point); what is forbidden is a crash or an
// internal error.
template <typename Bed>
void BitFlipSweep(Bed& bed, const std::vector<ksim::Message>& requests) {
  for (const auto& msg : requests) {
    for (size_t bit = 0; bit < msg.payload.size() * 8; ++bit) {
      kerb::Bytes flipped = msg.payload;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      auto r = bed.world().network().Call(msg.src, msg.dst, flipped);
      if (!r.ok()) {
        ExpectCleanFailure(r.error().code, "bit-flipped request");
      }
    }
  }
}

// Pure noise at every service address: never accepted, never kInternal.
template <typename Bed>
void GarbageSweep(Bed& bed, const std::vector<ksim::NetAddress>& targets, uint64_t seed) {
  kcrypto::Prng prng(seed);
  constexpr ksim::NetAddress kEveAddr{0x0a000666, 31337};
  for (const auto& dst : targets) {
    for (int i = 0; i < 300; ++i) {
      kerb::Bytes garbage = prng.NextBytes(prng.NextBelow(160));
      auto r = bed.world().network().Call(kEveAddr, dst, garbage);
      ASSERT_FALSE(r.ok()) << "garbage accepted at " << dst.ToString();
      ExpectCleanFailure(r.error().code, "garbage request");
    }
  }
}

TEST(MalformedTest, V4TruncationsFailCleanly) {
  Testbed4 bed;
  TruncationSweep(bed, CaptureSession4(bed));
}

TEST(MalformedTest, V4BitFlipsFailCleanly) {
  Testbed4 bed;
  bed.world().clock().Advance(ksim::kSecond);  // replayed flips aren't "now"
  BitFlipSweep(bed, CaptureSession4(bed));
}

TEST(MalformedTest, V4GarbageFailsCleanly) {
  Testbed4 bed;
  GarbageSweep(bed, {Testbed4::kAsAddr, Testbed4::kTgsAddr, Testbed4::kMailAddr}, 11);
}

TEST(MalformedTest, V5TruncationsFailCleanly) {
  Testbed5 bed;
  TruncationSweep(bed, CaptureSession5(bed));
}

TEST(MalformedTest, V5BitFlipsFailCleanly) {
  Testbed5 bed;
  BitFlipSweep(bed, CaptureSession5(bed));
}

TEST(MalformedTest, V5GarbageFailsCleanly) {
  Testbed5 bed;
  GarbageSweep(bed, {Testbed5::kAsAddr, Testbed5::kTgsAddr, Testbed5::kMailAddr}, 12);
}

TEST(MalformedTest, V4DecodersRejectEveryTruncation) {
  // Decoder-level truncation sweep over a real AS request encoding: every
  // strict prefix must be a clean decode error for every V4 decoder.
  Testbed4 bed;
  auto requests = CaptureSession4(bed);
  ASSERT_FALSE(requests.empty());
  const kerb::Bytes& as_request = requests.front().payload;
  for (size_t len = 0; len < as_request.size(); ++len) {
    kerb::Bytes cut(as_request.begin(), as_request.begin() + len);
    (void)krb4::Unframe4(cut);
    (void)krb4::AsRequest4::Decode(cut);
    (void)krb4::TgsRequest4::Decode(cut);
    (void)krb4::ApRequest4::Decode(cut);
    (void)krb4::Ticket4::Decode(cut);
    (void)krb4::Authenticator4::Decode(cut);
  }
  SUCCEED();  // no crash under the sanitizer is the assertion
}

// --- Degenerate DH group parameters and PK AS request sweeps ----------------

TEST(MalformedTest, DegenerateDhGroupParametersFailClosed) {
  // A hostile "DH group" with a zero, one, or even modulus must be refused
  // by every layer — BigInt::ModExp no longer asserts, it errors.
  for (uint64_t m : {0ull, 1ull, 2ull, 4096ull, 0xfffffffeull}) {
    auto r = kcrypto::BigInt::ModExp(kcrypto::BigInt(3), kcrypto::BigInt(7), kcrypto::BigInt(m));
    ASSERT_FALSE(r.ok()) << m;
    ExpectCleanFailure(r.error().code, "degenerate modulus modexp");
    EXPECT_EQ(kcrypto::ModExpCtx::Create(kcrypto::BigInt(m)).code(),
              kerb::ErrorCode::kBadFormat)
        << m;
    EXPECT_EQ(kcrypto::DhEngine::Create(kcrypto::BigInt(m), kcrypto::BigInt(2)), nullptr) << m;
    // A hand-built group with this modulus: validation refuses every public
    // value, so no exchange can proceed.
    kcrypto::DhGroup bad{kcrypto::BigInt(m), kcrypto::BigInt(2), nullptr};
    EXPECT_FALSE(kcrypto::ValidateDhPublic(bad, kcrypto::BigInt(3)).ok()) << m;
  }
}

TEST(MalformedTest, PkAsRequestSweepsFailCleanly) {
  // Truncations and bit flips over a valid PK AS request against a live
  // core with PK preauth enabled: any rejection is fine, a crash or
  // kInternal is not — and the DH public inside the frame is hostile input
  // by construction once the flip lands in it.
  kcrypto::Prng group_prng(0x97);
  kcrypto::DhGroup group = kcrypto::MakeToyGroup(group_prng, 48);
  ksim::SimClock clock;
  krb4::KdcDatabase db;
  krb4::Principal alice{"alice", "", "ATHENA.SIM"};
  db.AddUser(alice, "pw");
  kcrypto::Prng key_prng(0x5eed);
  db.AddServiceWithRandomKey(krb4::TgsPrincipal("ATHENA.SIM"), key_prng);
  krb4::KdcCore4 core(ksim::HostClock(&clock), "ATHENA.SIM", std::move(db),
                      krb4::KdcOptions{});
  core.EnablePkPreauth(group);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};

  kcrypto::Prng client_prng(0x2);
  kcrypto::DhKeyPair pair = kcrypto::DhGenerate(group, client_prng);
  krb4::AsPkRequest4 req;
  req.client = alice;
  req.service_realm = "ATHENA.SIM";
  req.lifetime = ksim::kHour;
  req.client_pub = pair.public_key.ToBytes();
  kcrypto::DesKey user_key = kcrypto::StringToKey("pw", alice.Salt());
  kenc::Writer pa;
  pa.PutU64(0);  // timestamp: the sim clock sits at 0
  pa.PutLengthPrefixed(
      kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, req.client_pub));
  req.sealed_padata = krb4::Seal4(user_key, pa.Take());
  ksim::Message msg;
  msg.src = {0x0a000101, 1023};
  msg.payload = krb4::Frame4(krb4::MsgType::kAsPkRequest, req.Encode());
  ASSERT_TRUE(core.HandleAs(msg, ctx).ok());

  for (size_t len = 0; len < msg.payload.size(); ++len) {
    ksim::Message cut = msg;
    cut.payload.assign(msg.payload.begin(), msg.payload.begin() + len);
    auto r = core.HandleAs(cut, ctx);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated PK AS request");
  }
  for (size_t bit = 0; bit < msg.payload.size() * 8; ++bit) {
    ksim::Message flipped = msg;
    flipped.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = core.HandleAs(flipped, ctx);
    if (!r.ok()) {
      ExpectCleanFailure(r.error().code, "bit-flipped PK AS request");
    }
  }
  (void)krb4::AsPkRequest4::Decode(kerb::Bytes{});
  (void)krb4::AsPkReply4::Decode(kerb::Bytes{});
}

// --- Durability-subsystem parsers (src/store) -------------------------------

TEST(MalformedTest, WalFrameSweepsFailCleanly) {
  kstore::WalRecord record{/*lsn=*/7, kstore::kWalOpUpsert, kcrypto::Prng(21).NextBytes(40)};
  const kerb::Bytes frame = kstore::EncodeWalFrame(record);

  auto parse = [](const kerb::Bytes& bytes) {
    kenc::Reader reader(bytes);
    return kstore::ParseWalFrame(reader);
  };
  for (size_t len = 0; len < frame.size(); ++len) {
    kerb::Bytes cut(frame.begin(), frame.begin() + len);
    auto r = parse(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated WAL frame");
  }
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    kerb::Bytes flipped = frame;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = parse(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (CRC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped WAL frame");
  }
  kcrypto::Prng prng(22);
  for (int i = 0; i < 500; ++i) {
    auto r = parse(prng.NextBytes(prng.NextBelow(200)));
    if (!r.ok()) {
      ExpectCleanFailure(r.error().code, "garbage WAL frame");
    }
  }
  // ScanWal over every truncation of a multi-record log: a cut log is a
  // torn tail, so the scan must still succeed with a record PREFIX.
  kerb::Bytes log;
  for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
    kerb::Append(log, kstore::EncodeWalFrame(
                          kstore::WalRecord{lsn, kstore::kWalOpDelete, prng.NextBytes(10)}));
  }
  for (size_t len = 0; len < log.size(); ++len) {
    kerb::Bytes cut(log.begin(), log.begin() + len);
    auto scan = kstore::ScanWal(cut);
    ASSERT_TRUE(scan.ok()) << "torn tail at " << len << " must not fail the scan";
    ASSERT_LE(scan.value().records.size(), 4u);
    for (size_t i = 0; i < scan.value().records.size(); ++i) {
      EXPECT_EQ(scan.value().records[i].lsn, i + 1);
    }
  }
}

TEST(MalformedTest, SnapshotImageSweepsFailCleanly) {
  kstore::Snapshot snapshot;
  snapshot.lsn = 9;
  kcrypto::Prng prng(23);
  for (int i = 0; i < 5; ++i) {
    snapshot.entries.push_back(prng.NextBytes(24));
  }
  const kerb::Bytes image = kstore::EncodeSnapshot(snapshot);

  for (size_t len = 0; len < image.size(); ++len) {
    kerb::Bytes cut(image.begin(), image.begin() + len);
    auto r = kstore::DecodeSnapshot(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated snapshot");
  }
  for (size_t bit = 0; bit < image.size() * 8; ++bit) {
    kerb::Bytes flipped = image;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = kstore::DecodeSnapshot(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (CRC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped snapshot");
  }
}

// Hostile bytes against the slave-side propagation endpoint: every frame is
// MAC-checked before anything is parsed, so cuts, flips, garbage, and
// spliced LSN windows must all bounce without touching the database.
TEST(MalformedTest, PropagationSinkSweepsFailCleanly) {
  const kcrypto::DesKey key = kcrypto::StringToKey("kprop/fuzz", "FUZZ");
  int applies = 0;
  int loads = 0;
  kstore::PropagationSink sink(
      key, /*applied_lsn=*/0,
      [&](uint8_t, kerb::BytesView) {
        ++applies;
        return kerb::Status::Ok();
      },
      [&](const kstore::Snapshot&) {
        ++loads;
        return kerb::Status::Ok();
      });
  auto deliver = [&](kerb::Bytes payload) {
    ksim::Message msg;
    msg.src = {0x0a000058, kstore::kPropPort};
    msg.dst = {0x0a000059, kstore::kPropPort};
    msg.payload = std::move(payload);
    return sink.Handle(msg);
  };

  std::vector<kstore::WalRecord> records;
  kcrypto::Prng prng(24);
  for (int i = 0; i < 3; ++i) {
    records.push_back(kstore::WalRecord{static_cast<uint64_t>(i + 1),
                                        kstore::kWalOpUpsert, prng.NextBytes(32)});
  }
  const kerb::Bytes delta = kstore::EncodeDeltaFrame(key, 0, 3, records);

  for (size_t len = 0; len < delta.size(); ++len) {
    kerb::Bytes cut(delta.begin(), delta.begin() + len);
    auto r = deliver(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated prop frame");
  }
  for (size_t bit = 0; bit < delta.size() * 8; ++bit) {
    kerb::Bytes flipped = delta;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = deliver(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (MAC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped prop frame");
  }
  for (int i = 0; i < 500; ++i) {
    auto r = deliver(prng.NextBytes(prng.NextBelow(200)));
    ASSERT_FALSE(r.ok()) << "garbage prop frame accepted";
    ExpectCleanFailure(r.error().code, "garbage prop frame");
  }
  // Correctly MAC'd but spliced: a gapped window is an honest kReplay, an
  // inconsistent (window, count) pair an honest kBadFormat — never internal.
  std::vector<kstore::WalRecord> gapped = records;
  for (auto& rec : gapped) {
    rec.lsn += 5;
  }
  auto r = deliver(kstore::EncodeDeltaFrame(key, 5, 8, gapped));
  ASSERT_FALSE(r.ok());
  ExpectCleanFailure(r.error().code, "gapped prop frame");
  EXPECT_EQ(applies, 0) << "a rejected frame mutated the database";
  EXPECT_EQ(loads, 0);

  // The untampered frame still applies afterwards — the sweeps above left
  // the sink's version state untouched.
  ASSERT_TRUE(deliver(delta).ok());
  EXPECT_EQ(applies, 3);
}

TEST(MalformedTest, V5DecoderRejectsEveryTruncation) {
  Testbed5 bed;
  auto requests = CaptureSession5(bed);
  ASSERT_FALSE(requests.empty());
  const kerb::Bytes& as_request = requests.front().payload;
  int accepted = 0;
  for (size_t len = 0; len < as_request.size(); ++len) {
    kerb::Bytes cut(as_request.begin(), as_request.begin() + len);
    if (kenc::TlvMessage::Decode(cut).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0) << "TLV length accounting admitted a truncated message";
}

// --- kadmin wire sweeps (PR 8) ---------------------------------------------

// A testbed with the admin plane up plus a logged-in operator, and one
// valid admin request frame built but not yet sent.
struct AdminFuzzBed {
  AdminFuzzBed() : bed([] {
    kattack::TestbedConfig config;
    config.enable_kadmin = true;
    return config;
  }()) {
    oper = bed.MakeClient(bed.oper_principal(), Testbed4::kOperAddr);
    EXPECT_TRUE(oper->Login(Testbed4::kOperPassword).ok());
    admin = bed.MakeAdminClient(*oper);
  }

  kerb::Bytes BuildChange(uint64_t nonce) {
    auto pw = std::string("fuzzer-Probe_1!");
    auto wire = admin->BuildRequest(
        kadmin::AdminOp::kChangePassword, bed.bob_principal(),
        kerb::BytesView(reinterpret_cast<const uint8_t*>(pw.data()), pw.size()), nonce);
    EXPECT_TRUE(wire.ok());
    return wire.value();
  }

  Testbed4 bed;
  std::unique_ptr<krb4::Client4> oper;
  std::unique_ptr<kadmin::AdminClient> admin;
};

TEST(MalformedTest, KadminTruncationsFailCleanly) {
  AdminFuzzBed t;
  const kerb::Bytes wire = t.BuildChange(1);
  const uint32_t kvno_before = t.bed.kdc().database().Kvno(t.bed.bob_principal());
  for (size_t len = 0; len < wire.size(); ++len) {
    kerb::Bytes cut(wire.begin(), wire.begin() + len);
    auto r = t.bed.world().network().Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated admin request");
  }
  EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.bob_principal()), kvno_before);
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 0u);
}

TEST(MalformedTest, KadminBitFlipsNeverForgeOrDoubleApply) {
  AdminFuzzBed t;
  const kerb::Bytes wire = t.BuildChange(2);
  const uint32_t kvno_before = t.bed.kdc().database().Kvno(t.bed.bob_principal());
  // Almost every byte of an admin request is load-bearing (frame header,
  // length prefixes, three sealed blobs), but Seal4 carries no MAC — the
  // paper's V4 integrity complaint — so a flip is not guaranteed to be
  // refused. DES ignores key parity bits and Unseal4 never re-checks its
  // padding, so a flip in the ticket's final ciphertext block occasionally
  // rewrites nothing but a parity bit of the embedded session key: the
  // authenticator and the checksummed body then verify under a functionally
  // identical key, and the server is looking at a request semantically
  // equal to the one the operator sealed. What the sweep can and does pin
  // down: an accepted flip never carries an attacker-chosen mutation (the
  // payload that lands is bit-for-bit the operator's), the op applies at
  // most once across the whole sweep, and every refused flip fails cleanly.
  uint64_t accepted = 0;
  for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
    kerb::Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = t.bed.world().network().Call(Testbed4::kOperAddr, Testbed4::kAdminAddr, flipped);
    if (r.ok()) {
      ++accepted;
      continue;
    }
    ExpectCleanFailure(r.error().code, "bit-flipped admin request");
  }
  if (accepted == 0) {
    EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.bob_principal()), kvno_before);
    EXPECT_EQ(t.bed.kadmin_server()->applied(), 0u);
  } else {
    // Exactly-once despite multiple equivalent frames: the nonce ack cache
    // absorbs every accepted duplicate after the first.
    EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.bob_principal()), kvno_before + 1);
    EXPECT_EQ(t.bed.kadmin_server()->applied(), 1u);
    EXPECT_TRUE(t.bed.bob().Login("fuzzer-Probe_1!").ok());
  }
}

TEST(MalformedTest, KadminGarbageFailsCleanly) {
  AdminFuzzBed t;
  GarbageSweep(t.bed, {Testbed4::kAdminAddr}, 0xad111);
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 0u);
}

TEST(MalformedTest, KadminCrossSessionSpliceFailsCleanly) {
  AdminFuzzBed t;
  // bob runs his own self-service session: a second, different session key.
  EXPECT_TRUE(t.bed.bob().Login(Testbed4::kBobPassword).ok());
  auto bob_admin = t.bed.MakeAdminClient(t.bed.bob());
  auto bob_pw = std::string("bobs-Own_Pick_3!");
  auto bob_wire = bob_admin->BuildRequest(
      kadmin::AdminOp::kChangePassword, t.bed.bob_principal(),
      kerb::BytesView(reinterpret_cast<const uint8_t*>(bob_pw.data()), bob_pw.size()), 31);
  ASSERT_TRUE(bob_wire.ok());
  const kerb::Bytes oper_wire = t.BuildChange(32);

  auto oper_parts = krb4::Unframe4(oper_wire);
  auto bob_parts = krb4::Unframe4(bob_wire.value());
  ASSERT_TRUE(oper_parts.ok());
  ASSERT_TRUE(bob_parts.ok());
  auto oper_req = kadmin::AdminRequest::Decode(oper_parts.value().second);
  auto bob_req = kadmin::AdminRequest::Decode(bob_parts.value().second);
  ASSERT_TRUE(oper_req.ok());
  ASSERT_TRUE(bob_req.ok());

  // Every cross-session recombination of the three sealed blobs decrypts
  // to garbage somewhere (the session keys differ), so each must be
  // refused without crashing — and without mutating the database.
  const kadmin::AdminRequest& a = oper_req.value();
  const kadmin::AdminRequest& b = bob_req.value();
  kadmin::AdminRequest splices[] = {
      {a.sealed_ticket, a.sealed_auth, b.sealed_req},
      {a.sealed_ticket, b.sealed_auth, a.sealed_req},
      {a.sealed_ticket, b.sealed_auth, b.sealed_req},
      {b.sealed_ticket, a.sealed_auth, a.sealed_req},
      {b.sealed_ticket, a.sealed_auth, b.sealed_req},
      {b.sealed_ticket, b.sealed_auth, a.sealed_req},
  };
  for (const auto& spliced : splices) {
    auto r = t.bed.world().network().Call(Testbed4::kOperAddr, Testbed4::kAdminAddr,
                                          spliced.Encode());
    ASSERT_FALSE(r.ok()) << "cross-session splice accepted";
    ExpectCleanFailure(r.error().code, "spliced admin request");
  }
  EXPECT_EQ(t.bed.kadmin_server()->applied(), 0u);
  EXPECT_EQ(t.bed.kdc().database().Kvno(t.bed.bob_principal()), 1u);
}

TEST(MalformedTest, AdminBodyDecodersRejectTruncationAndFlips) {
  kadmin::AdminReqBody req;
  req.op = kadmin::AdminOp::kChangePassword;
  req.target = krb4::Principal{"bob", "", "ATHENA.SIM"};
  req.nonce = 0x1122334455667788ull;
  req.timestamp = 1234567;
  req.sender_addr = 0x0a000103;
  req.payload = {0x61, 0x62, 0x63, 0x64};
  const kerb::Bytes req_bytes = req.Encode();

  kadmin::AdminReplyBody reply;
  reply.nonce_plus_one = req.nonce + 1;
  reply.timestamp = 1234568;
  reply.code = 0;
  reply.kvno = 2;
  reply.detail = {0x6f, 0x6b};
  const kerb::Bytes reply_bytes = reply.Encode();

  ASSERT_TRUE(kadmin::AdminReqBody::Decode(req_bytes).ok());
  ASSERT_TRUE(kadmin::AdminReplyBody::Decode(reply_bytes).ok());
  for (size_t len = 0; len < req_bytes.size(); ++len) {
    kerb::Bytes cut(req_bytes.begin(), req_bytes.begin() + len);
    EXPECT_FALSE(kadmin::AdminReqBody::Decode(cut).ok()) << "req cut at " << len;
  }
  for (size_t len = 0; len < reply_bytes.size(); ++len) {
    kerb::Bytes cut(reply_bytes.begin(), reply_bytes.begin() + len);
    EXPECT_FALSE(kadmin::AdminReplyBody::Decode(cut).ok()) << "reply cut at " << len;
  }
  // The trailing MD4 checksum covers every plaintext field, so every
  // single-bit flip — including flips inside the checksum itself — dies.
  for (size_t bit = 0; bit < req_bytes.size() * 8; ++bit) {
    kerb::Bytes flipped = req_bytes;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(kadmin::AdminReqBody::Decode(flipped).ok()) << "req bit " << bit;
  }
  for (size_t bit = 0; bit < reply_bytes.size() * 8; ++bit) {
    kerb::Bytes flipped = reply_bytes;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(kadmin::AdminReplyBody::Decode(flipped).ok()) << "reply bit " << bit;
  }
}

TEST(MalformedTest, RingRecordPayloadSweepsFailClosed) {
  // The kvno-ring WAL payload (EncodePrincipalEntry) is the atomicity unit
  // for rotation; a truncated or bit-damaged record must leave the target
  // database untouched.
  krb4::PrincipalEntry entry;
  entry.kind = krb4::PrincipalKind::kUser;
  entry.max_life = 8 * ksim::kHour;
  kcrypto::Prng prng(77);
  for (uint32_t kvno = 3; kvno >= 1; --kvno) {
    krb4::KeyVersion kv;
    kv.kvno = kvno;
    kv.key = prng.NextDesKey();
    kv.not_after = kvno == 3 ? 0 : 1000000 + kvno;
    entry.keys.push_back(kv);
  }
  const krb4::Principal who{"ring", "", "ATHENA.SIM"};
  const kerb::Bytes payload = krb4::EncodePrincipalEntry(who, entry);

  krb4::KdcDatabase db;
  ASSERT_TRUE(krb4::ApplyStoreRecord(db, kstore::kWalOpUpsert, payload).ok());
  ASSERT_EQ(db.Kvno(who), 3u);

  krb4::KdcDatabase scratch;
  for (size_t len = 0; len < payload.size(); ++len) {
    kerb::Bytes cut(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(krb4::ApplyStoreRecord(scratch, kstore::kWalOpUpsert, cut).ok())
        << "ring record cut at " << len;
    EXPECT_EQ(scratch.size(), 0u) << "partial apply at len " << len;
  }
  // Structural flips (kvno order, ring count, lengths) must be refused;
  // flips confined to key bytes or policy durations still decode — what
  // matters is that no flip half-applies or crashes.
  for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
    kerb::Bytes flipped = payload;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    krb4::KdcDatabase per_flip;
    auto status = krb4::ApplyStoreRecord(per_flip, kstore::kWalOpUpsert, flipped);
    if (!status.ok()) {
      EXPECT_EQ(per_flip.size(), 0u) << "rejected flip " << bit << " left state";
      ExpectCleanFailure(status.code(), "flipped ring record");
    }
  }
}

// --- Cluster wire sweeps ----------------------------------------------------

kcluster::RingAnnounce SampleView() {
  kcluster::RingAnnounce view;
  view.epoch = 3;
  view.as_port = 88;
  view.tgs_port = 89;
  view.members = {{1, 0x0a000010}, {2, 0x0a000011}, {3, 0x0a000012}, {4, 0x0a000013}};
  return view;
}

TEST(MalformedTest, ClusterReferralBodySweepsFailClosed) {
  // Referral bodies are plaintext by design (see src/cluster/wire.h), so
  // the decoder and the client router are the whole defence: truncations
  // must be refused, and a bit-flipped body that still parses must only
  // ever change where the client *asks*, never crash or wedge the router.
  kcluster::ReferralBody body;
  body.view = SampleView();
  body.owner_node_id = 2;
  const kerb::Bytes encoded = kcluster::EncodeReferralBody(body);
  ASSERT_TRUE(kcluster::DecodeReferralBody(encoded).ok());

  for (size_t len = 0; len < encoded.size(); ++len) {
    kerb::Bytes cut(encoded.begin(), encoded.begin() + len);
    auto r = kcluster::DecodeReferralBody(cut);
    ASSERT_FALSE(r.ok()) << "referral cut at " << len;
    ExpectCleanFailure(r.error().code, "truncated referral");
  }
  for (size_t bit = 0; bit < encoded.size() * 8; ++bit) {
    kerb::Bytes flipped = encoded;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = kcluster::DecodeReferralBody(flipped);
    if (!r.ok()) {
      ExpectCleanFailure(r.error().code, "flipped referral");
    }
    // The router must survive adopting (or rejecting) any flipped body.
    kcluster::ClientRouter router;
    (void)router.ApplyReferral(flipped);
  }
  // A member-count field inflated past the decoder ceiling fails closed
  // instead of allocating.
  kcluster::RingAnnounce huge = SampleView();
  kerb::Bytes inflated = kcluster::EncodeReferralBody({huge, 1});
  // count lives after epoch(4) + seed(8) + vnodes(4) + 3 ports(6) = offset 22.
  inflated[22] = 0xff;
  inflated[23] = 0xff;
  inflated[24] = 0xff;
  inflated[25] = 0xff;
  EXPECT_FALSE(kcluster::DecodeReferralBody(inflated).ok());
}

TEST(MalformedTest, ClusterControlFrameSweepsFailClosed) {
  // Control frames are MAC'd under the cluster key: EVERY single-bit flip
  // and every truncation — including within the MAC trailer itself — must
  // be a clean rejection. Splices of two authentic frames likewise.
  const kcrypto::DesKey key = kcluster::ClusterKey("ATHENA.SIM");
  kcluster::LoadFrame load;
  load.epoch = 3;
  kcrypto::Prng prng(0x10ad);
  for (int i = 0; i < 6; ++i) {
    krb4::PrincipalEntry entry;
    entry.kind = krb4::PrincipalKind::kUser;
    entry.keys.push_back({1, prng.NextDesKey(), 0});
    load.entries.push_back(krb4::EncodePrincipalEntry(
        krb4::Principal{"u" + std::to_string(i), "", "ATHENA.SIM"}, entry));
  }
  const std::vector<kerb::Bytes> frames = {
      kcluster::EncodePingFrame(key, 7),
      kcluster::EncodePongFrame(key, {7, 3, 41}),
      kcluster::EncodeRingFrame(key, SampleView()),
      kcluster::EncodeRingAckFrame(key, {7, 3}),
      kcluster::EncodeLoadFrame(key, load),
      kcluster::EncodeLoadAckFrame(key, 6),
  };
  for (const kerb::Bytes& frame : frames) {
    ASSERT_TRUE(kcluster::OpenCtlFrame(key, frame).ok());
    for (size_t len = 0; len < frame.size(); ++len) {
      kerb::Bytes cut(frame.begin(), frame.begin() + len);
      auto r = kcluster::OpenCtlFrame(key, cut);
      ASSERT_FALSE(r.ok()) << "ctl frame cut at " << len;
      ExpectCleanFailure(r.error().code, "truncated ctl frame");
    }
    for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
      kerb::Bytes flipped = frame;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      auto r = kcluster::OpenCtlFrame(key, flipped);
      ASSERT_FALSE(r.ok()) << "ctl frame bit " << bit << " accepted";
      ExpectCleanFailure(r.error().code, "flipped ctl frame");
    }
  }
  // Splice: head of the ring frame, tail of the load frame. Both halves are
  // authentic bytes; the MAC still refuses the combination.
  const kerb::Bytes& ring_frame = frames[2];
  const kerb::Bytes& load_frame = frames[4];
  kerb::Bytes spliced(ring_frame.begin(), ring_frame.begin() + ring_frame.size() / 2);
  spliced.insert(spliced.end(), load_frame.begin() + load_frame.size() / 2,
                 load_frame.end());
  EXPECT_FALSE(kcluster::OpenCtlFrame(key, spliced).ok());
  // The right frame under the wrong realm's key is equally dead.
  EXPECT_FALSE(kcluster::OpenCtlFrame(kcluster::ClusterKey("OTHER.REALM"), ring_frame).ok());

  // A load body whose count field promises more entries than the ceiling
  // fails before allocation. Forge the body then re-MAC it so only the
  // count check can reject it. (ParseLoadBody takes the opened body.)
  auto opened = kcluster::OpenCtlFrame(key, load_frame);
  ASSERT_TRUE(opened.ok());
  kerb::Bytes body = opened.value().second;
  body[4] = 0xff;  // count (after u32 epoch)
  body[5] = 0xff;
  body[6] = 0xff;
  body[7] = 0xff;
  auto r = kcluster::ParseLoadBody(body);
  ASSERT_FALSE(r.ok());
  ExpectCleanFailure(r.error().code, "inflated load count");
}

TEST(MalformedTest, ClusterLiveNodeSweepsFailClosed) {
  // Sweeps against LIVE node ports: the KDC port (referral-routing front
  // end), the control port, and the propagation port (wholesale/delta
  // catch-up handshake). Damaged frames must bounce cleanly off every one
  // of them, and the cluster must stay fully consistent afterwards.
  ksim::World world(0xfa2e);
  kcluster::PopulationConfig pc;
  pc.users = 300;
  pc.services = 4;
  kcluster::Population population(pc);
  kcluster::ClusterConfig cc;
  kcluster::ClusterController controller(&world, cc);
  population.Install(controller.logical_db());
  controller.Bootstrap({{1, 0x0a000010}, {2, 0x0a000011}});

  const ksim::NetAddress eve{0x0a000666, 31337};
  const uint32_t host = 0x0a000010;
  const kcrypto::DesKey ctl_key = kcluster::ClusterKey(cc.realm);
  const kcrypto::DesKey prop_key =
      kcrypto::StringToKey("kprop/" + cc.realm, cc.realm);

  // Authentic frames for each port, then damage them on the wire.
  kstore::Snapshot snap = krb4::SnapshotDatabase(controller.logical_db(), 99);
  const std::vector<std::pair<uint16_t, kerb::Bytes>> probes = {
      {cc.ctl_port, kcluster::EncodeRingFrame(ctl_key, SampleView())},
      {cc.ctl_port, kcluster::EncodeLoadFrame(ctl_key, {1, {}})},
      {cc.prop_port, kstore::EncodeWholesaleFrame(prop_key, kstore::EncodeSnapshot(snap))},
      {cc.prop_port, kstore::EncodeDeltaFrame(prop_key, 1, 0, {})},
  };
  kcrypto::Prng prng(0x5eed);
  for (const auto& [port, frame] : probes) {
    for (size_t len = 0; len < frame.size(); len += 7) {
      kerb::Bytes cut(frame.begin(), frame.begin() + len);
      auto r = world.network().Call(eve, {host, port}, cut);
      ASSERT_FALSE(r.ok()) << "port " << port << " accepted a truncation";
      EXPECT_NE(r.error().code, kerb::ErrorCode::kInternal);
    }
    for (int i = 0; i < 2000; ++i) {
      kerb::Bytes flipped = frame;
      const size_t bit = prng.NextBelow(flipped.size() * 8);
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      auto r = world.network().Call(eve, {host, port}, flipped);
      ASSERT_FALSE(r.ok()) << "port " << port << " accepted bit " << bit;
      EXPECT_NE(r.error().code, kerb::ErrorCode::kInternal);
    }
    for (int i = 0; i < 200; ++i) {
      auto r = world.network().Call(eve, {host, port},
                                    prng.NextBytes(prng.NextBelow(120)));
      ASSERT_FALSE(r.ok());
      EXPECT_NE(r.error().code, kerb::ErrorCode::kInternal);
    }
  }
  // None of it moved the cluster: slices still match the ring assignment,
  // and no node adopted the forged epoch-3 view.
  EXPECT_TRUE(controller.AllSlicesConsistent());
  EXPECT_EQ(controller.node(1)->view_epoch(), 1u);
  EXPECT_EQ(controller.node(1)->applied_lsn(), controller.store().last_lsn());
}

}  // namespace
