// Malformed-input robustness: truncated, bit-flipped, and garbage bytes
// against every decoder and live KDC/app-server network path.
//
// The contract under test is narrow but absolute: hostile bytes may be
// rejected with any honest protocol error (kBadFormat, kIntegrity,
// kAuthFailed, ...), but must never crash a handler and never surface
// kInternal — an invariant breach — no matter where they are cut or which
// bits are flipped. Run with KERB_SANITIZE=address for the memory-safety
// half of the claim; the assertions here cover the fail-closed half.

#include <gtest/gtest.h>

#include <vector>

#include "src/attacks/kdcload.h"
#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/checksum.h"
#include "src/crypto/dh.h"
#include "src/crypto/prng.h"
#include "src/crypto/str2key.h"
#include "src/encoding/io.h"
#include "src/encoding/tlv.h"
#include "src/krb4/messages.h"
#include "src/store/kprop.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"

namespace {

using kattack::Testbed4;
using kattack::Testbed5;

// Any honest rejection is fine; kInternal is an invariant breach, and
// kTransport would mean the harness hit an unbound address.
void ExpectCleanFailure(kerb::ErrorCode code, const char* what) {
  EXPECT_NE(code, kerb::ErrorCode::kInternal) << what;
  EXPECT_NE(code, kerb::ErrorCode::kTransport) << what;
}

// Captures the live request bytes of one full V4 session (AS, TGS, AP) by
// recording alice's traffic.
std::vector<ksim::Message> CaptureSession4(Testbed4& bed) {
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  EXPECT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  EXPECT_TRUE(
      bed.alice().CallService(Testbed4::kMailAddr, bed.mail_principal(), true).ok());
  bed.world().network().SetAdversary(nullptr);
  std::vector<ksim::Message> requests;
  for (const auto& exchange : recorder.exchanges()) {
    requests.push_back(exchange.request);
  }
  return requests;
}

std::vector<ksim::Message> CaptureSession5(Testbed5& bed) {
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  EXPECT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  EXPECT_TRUE(
      bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true).ok());
  bed.world().network().SetAdversary(nullptr);
  std::vector<ksim::Message> requests;
  for (const auto& exchange : recorder.exchanges()) {
    requests.push_back(exchange.request);
  }
  return requests;
}

// Replays every strict prefix of each captured request to its original
// destination. A message cut anywhere must be refused cleanly.
template <typename Bed>
void TruncationSweep(Bed& bed, const std::vector<ksim::Message>& requests) {
  for (const auto& msg : requests) {
    for (size_t len = 0; len < msg.payload.size(); ++len) {
      kerb::Bytes cut(msg.payload.begin(), msg.payload.begin() + len);
      auto r = bed.world().network().Call(msg.src, msg.dst, cut);
      ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
      ExpectCleanFailure(r.error().code, "truncated request");
    }
  }
}

// Flips every bit of every captured request and replays it. Flips in
// plaintext header fields may legally still be served (V4 AS requests are
// unauthenticated — the paper's point); what is forbidden is a crash or an
// internal error.
template <typename Bed>
void BitFlipSweep(Bed& bed, const std::vector<ksim::Message>& requests) {
  for (const auto& msg : requests) {
    for (size_t bit = 0; bit < msg.payload.size() * 8; ++bit) {
      kerb::Bytes flipped = msg.payload;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      auto r = bed.world().network().Call(msg.src, msg.dst, flipped);
      if (!r.ok()) {
        ExpectCleanFailure(r.error().code, "bit-flipped request");
      }
    }
  }
}

// Pure noise at every service address: never accepted, never kInternal.
template <typename Bed>
void GarbageSweep(Bed& bed, const std::vector<ksim::NetAddress>& targets, uint64_t seed) {
  kcrypto::Prng prng(seed);
  constexpr ksim::NetAddress kEveAddr{0x0a000666, 31337};
  for (const auto& dst : targets) {
    for (int i = 0; i < 300; ++i) {
      kerb::Bytes garbage = prng.NextBytes(prng.NextBelow(160));
      auto r = bed.world().network().Call(kEveAddr, dst, garbage);
      ASSERT_FALSE(r.ok()) << "garbage accepted at " << dst.ToString();
      ExpectCleanFailure(r.error().code, "garbage request");
    }
  }
}

TEST(MalformedTest, V4TruncationsFailCleanly) {
  Testbed4 bed;
  TruncationSweep(bed, CaptureSession4(bed));
}

TEST(MalformedTest, V4BitFlipsFailCleanly) {
  Testbed4 bed;
  bed.world().clock().Advance(ksim::kSecond);  // replayed flips aren't "now"
  BitFlipSweep(bed, CaptureSession4(bed));
}

TEST(MalformedTest, V4GarbageFailsCleanly) {
  Testbed4 bed;
  GarbageSweep(bed, {Testbed4::kAsAddr, Testbed4::kTgsAddr, Testbed4::kMailAddr}, 11);
}

TEST(MalformedTest, V5TruncationsFailCleanly) {
  Testbed5 bed;
  TruncationSweep(bed, CaptureSession5(bed));
}

TEST(MalformedTest, V5BitFlipsFailCleanly) {
  Testbed5 bed;
  BitFlipSweep(bed, CaptureSession5(bed));
}

TEST(MalformedTest, V5GarbageFailsCleanly) {
  Testbed5 bed;
  GarbageSweep(bed, {Testbed5::kAsAddr, Testbed5::kTgsAddr, Testbed5::kMailAddr}, 12);
}

TEST(MalformedTest, V4DecodersRejectEveryTruncation) {
  // Decoder-level truncation sweep over a real AS request encoding: every
  // strict prefix must be a clean decode error for every V4 decoder.
  Testbed4 bed;
  auto requests = CaptureSession4(bed);
  ASSERT_FALSE(requests.empty());
  const kerb::Bytes& as_request = requests.front().payload;
  for (size_t len = 0; len < as_request.size(); ++len) {
    kerb::Bytes cut(as_request.begin(), as_request.begin() + len);
    (void)krb4::Unframe4(cut);
    (void)krb4::AsRequest4::Decode(cut);
    (void)krb4::TgsRequest4::Decode(cut);
    (void)krb4::ApRequest4::Decode(cut);
    (void)krb4::Ticket4::Decode(cut);
    (void)krb4::Authenticator4::Decode(cut);
  }
  SUCCEED();  // no crash under the sanitizer is the assertion
}

// --- Degenerate DH group parameters and PK AS request sweeps ----------------

TEST(MalformedTest, DegenerateDhGroupParametersFailClosed) {
  // A hostile "DH group" with a zero, one, or even modulus must be refused
  // by every layer — BigInt::ModExp no longer asserts, it errors.
  for (uint64_t m : {0ull, 1ull, 2ull, 4096ull, 0xfffffffeull}) {
    auto r = kcrypto::BigInt::ModExp(kcrypto::BigInt(3), kcrypto::BigInt(7), kcrypto::BigInt(m));
    ASSERT_FALSE(r.ok()) << m;
    ExpectCleanFailure(r.error().code, "degenerate modulus modexp");
    EXPECT_EQ(kcrypto::ModExpCtx::Create(kcrypto::BigInt(m)).code(),
              kerb::ErrorCode::kBadFormat)
        << m;
    EXPECT_EQ(kcrypto::DhEngine::Create(kcrypto::BigInt(m), kcrypto::BigInt(2)), nullptr) << m;
    // A hand-built group with this modulus: validation refuses every public
    // value, so no exchange can proceed.
    kcrypto::DhGroup bad{kcrypto::BigInt(m), kcrypto::BigInt(2), nullptr};
    EXPECT_FALSE(kcrypto::ValidateDhPublic(bad, kcrypto::BigInt(3)).ok()) << m;
  }
}

TEST(MalformedTest, PkAsRequestSweepsFailCleanly) {
  // Truncations and bit flips over a valid PK AS request against a live
  // core with PK preauth enabled: any rejection is fine, a crash or
  // kInternal is not — and the DH public inside the frame is hostile input
  // by construction once the flip lands in it.
  kcrypto::Prng group_prng(0x97);
  kcrypto::DhGroup group = kcrypto::MakeToyGroup(group_prng, 48);
  ksim::SimClock clock;
  krb4::KdcDatabase db;
  krb4::Principal alice{"alice", "", "ATHENA.SIM"};
  db.AddUser(alice, "pw");
  kcrypto::Prng key_prng(0x5eed);
  db.AddServiceWithRandomKey(krb4::TgsPrincipal("ATHENA.SIM"), key_prng);
  krb4::KdcCore4 core(ksim::HostClock(&clock), "ATHENA.SIM", std::move(db),
                      krb4::KdcOptions{});
  core.EnablePkPreauth(group);
  krb4::KdcContext ctx{kcrypto::Prng(0x1)};

  kcrypto::Prng client_prng(0x2);
  kcrypto::DhKeyPair pair = kcrypto::DhGenerate(group, client_prng);
  krb4::AsPkRequest4 req;
  req.client = alice;
  req.service_realm = "ATHENA.SIM";
  req.lifetime = ksim::kHour;
  req.client_pub = pair.public_key.ToBytes();
  kcrypto::DesKey user_key = kcrypto::StringToKey("pw", alice.Salt());
  kenc::Writer pa;
  pa.PutU64(0);  // timestamp: the sim clock sits at 0
  pa.PutLengthPrefixed(
      kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, req.client_pub));
  req.sealed_padata = krb4::Seal4(user_key, pa.Take());
  ksim::Message msg;
  msg.src = {0x0a000101, 1023};
  msg.payload = krb4::Frame4(krb4::MsgType::kAsPkRequest, req.Encode());
  ASSERT_TRUE(core.HandleAs(msg, ctx).ok());

  for (size_t len = 0; len < msg.payload.size(); ++len) {
    ksim::Message cut = msg;
    cut.payload.assign(msg.payload.begin(), msg.payload.begin() + len);
    auto r = core.HandleAs(cut, ctx);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated PK AS request");
  }
  for (size_t bit = 0; bit < msg.payload.size() * 8; ++bit) {
    ksim::Message flipped = msg;
    flipped.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = core.HandleAs(flipped, ctx);
    if (!r.ok()) {
      ExpectCleanFailure(r.error().code, "bit-flipped PK AS request");
    }
  }
  (void)krb4::AsPkRequest4::Decode(kerb::Bytes{});
  (void)krb4::AsPkReply4::Decode(kerb::Bytes{});
}

// --- Durability-subsystem parsers (src/store) -------------------------------

TEST(MalformedTest, WalFrameSweepsFailCleanly) {
  kstore::WalRecord record{/*lsn=*/7, kstore::kWalOpUpsert, kcrypto::Prng(21).NextBytes(40)};
  const kerb::Bytes frame = kstore::EncodeWalFrame(record);

  auto parse = [](const kerb::Bytes& bytes) {
    kenc::Reader reader(bytes);
    return kstore::ParseWalFrame(reader);
  };
  for (size_t len = 0; len < frame.size(); ++len) {
    kerb::Bytes cut(frame.begin(), frame.begin() + len);
    auto r = parse(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated WAL frame");
  }
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    kerb::Bytes flipped = frame;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = parse(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (CRC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped WAL frame");
  }
  kcrypto::Prng prng(22);
  for (int i = 0; i < 500; ++i) {
    auto r = parse(prng.NextBytes(prng.NextBelow(200)));
    if (!r.ok()) {
      ExpectCleanFailure(r.error().code, "garbage WAL frame");
    }
  }
  // ScanWal over every truncation of a multi-record log: a cut log is a
  // torn tail, so the scan must still succeed with a record PREFIX.
  kerb::Bytes log;
  for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
    kerb::Append(log, kstore::EncodeWalFrame(
                          kstore::WalRecord{lsn, kstore::kWalOpDelete, prng.NextBytes(10)}));
  }
  for (size_t len = 0; len < log.size(); ++len) {
    kerb::Bytes cut(log.begin(), log.begin() + len);
    auto scan = kstore::ScanWal(cut);
    ASSERT_TRUE(scan.ok()) << "torn tail at " << len << " must not fail the scan";
    ASSERT_LE(scan.value().records.size(), 4u);
    for (size_t i = 0; i < scan.value().records.size(); ++i) {
      EXPECT_EQ(scan.value().records[i].lsn, i + 1);
    }
  }
}

TEST(MalformedTest, SnapshotImageSweepsFailCleanly) {
  kstore::Snapshot snapshot;
  snapshot.lsn = 9;
  kcrypto::Prng prng(23);
  for (int i = 0; i < 5; ++i) {
    snapshot.entries.push_back(prng.NextBytes(24));
  }
  const kerb::Bytes image = kstore::EncodeSnapshot(snapshot);

  for (size_t len = 0; len < image.size(); ++len) {
    kerb::Bytes cut(image.begin(), image.begin() + len);
    auto r = kstore::DecodeSnapshot(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated snapshot");
  }
  for (size_t bit = 0; bit < image.size() * 8; ++bit) {
    kerb::Bytes flipped = image;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = kstore::DecodeSnapshot(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (CRC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped snapshot");
  }
}

// Hostile bytes against the slave-side propagation endpoint: every frame is
// MAC-checked before anything is parsed, so cuts, flips, garbage, and
// spliced LSN windows must all bounce without touching the database.
TEST(MalformedTest, PropagationSinkSweepsFailCleanly) {
  const kcrypto::DesKey key = kcrypto::StringToKey("kprop/fuzz", "FUZZ");
  int applies = 0;
  int loads = 0;
  kstore::PropagationSink sink(
      key, /*applied_lsn=*/0,
      [&](uint8_t, kerb::BytesView) {
        ++applies;
        return kerb::Status::Ok();
      },
      [&](const kstore::Snapshot&) {
        ++loads;
        return kerb::Status::Ok();
      });
  auto deliver = [&](kerb::Bytes payload) {
    ksim::Message msg;
    msg.src = {0x0a000058, kstore::kPropPort};
    msg.dst = {0x0a000059, kstore::kPropPort};
    msg.payload = std::move(payload);
    return sink.Handle(msg);
  };

  std::vector<kstore::WalRecord> records;
  kcrypto::Prng prng(24);
  for (int i = 0; i < 3; ++i) {
    records.push_back(kstore::WalRecord{static_cast<uint64_t>(i + 1),
                                        kstore::kWalOpUpsert, prng.NextBytes(32)});
  }
  const kerb::Bytes delta = kstore::EncodeDeltaFrame(key, 0, 3, records);

  for (size_t len = 0; len < delta.size(); ++len) {
    kerb::Bytes cut(delta.begin(), delta.begin() + len);
    auto r = deliver(cut);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    ExpectCleanFailure(r.error().code, "truncated prop frame");
  }
  for (size_t bit = 0; bit < delta.size() * 8; ++bit) {
    kerb::Bytes flipped = delta;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = deliver(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip " << bit << " accepted (MAC must catch it)";
    ExpectCleanFailure(r.error().code, "bit-flipped prop frame");
  }
  for (int i = 0; i < 500; ++i) {
    auto r = deliver(prng.NextBytes(prng.NextBelow(200)));
    ASSERT_FALSE(r.ok()) << "garbage prop frame accepted";
    ExpectCleanFailure(r.error().code, "garbage prop frame");
  }
  // Correctly MAC'd but spliced: a gapped window is an honest kReplay, an
  // inconsistent (window, count) pair an honest kBadFormat — never internal.
  std::vector<kstore::WalRecord> gapped = records;
  for (auto& rec : gapped) {
    rec.lsn += 5;
  }
  auto r = deliver(kstore::EncodeDeltaFrame(key, 5, 8, gapped));
  ASSERT_FALSE(r.ok());
  ExpectCleanFailure(r.error().code, "gapped prop frame");
  EXPECT_EQ(applies, 0) << "a rejected frame mutated the database";
  EXPECT_EQ(loads, 0);

  // The untampered frame still applies afterwards — the sweeps above left
  // the sink's version state untouched.
  ASSERT_TRUE(deliver(delta).ok());
  EXPECT_EQ(applies, 3);
}

TEST(MalformedTest, V5DecoderRejectsEveryTruncation) {
  Testbed5 bed;
  auto requests = CaptureSession5(bed);
  ASSERT_FALSE(requests.empty());
  const kerb::Bytes& as_request = requests.front().payload;
  int accepted = 0;
  for (size_t len = 0; len < as_request.size(); ++len) {
    kerb::Bytes cut(as_request.begin(), as_request.begin() + len);
    if (kenc::TlvMessage::Decode(cut).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0) << "TLV length accounting admitted a truncated message";
}

}  // namespace
