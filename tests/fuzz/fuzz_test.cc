// Adversarial-input sweeps: decoders must never crash and protocol
// verifiers must never accept corrupted input. "Systems must be subjected
// to the strongest scrutiny possible."

#include <gtest/gtest.h>

#include "src/attacks/testbed.h"
#include "src/attacks/testbed5.h"
#include "src/crypto/prng.h"
#include "src/encoding/tlv.h"
#include "src/krb4/krbpriv.h"
#include "src/krb4/messages.h"
#include "src/krb5/enclayer.h"

namespace {

using kattack::Testbed4;
using kattack::Testbed5;

TEST(FuzzTest, TlvDecodeNeverCrashesOnRandomBytes) {
  kcrypto::Prng prng(1);
  int decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    kerb::Bytes garbage = prng.NextBytes(prng.NextBelow(128));
    auto result = kenc::TlvMessage::Decode(garbage);
    if (result.ok()) {
      ++decoded_ok;
    }
  }
  // Random bytes essentially never form a valid message (requires a
  // consistent field count and exact length accounting).
  EXPECT_LT(decoded_ok, 5);
}

TEST(FuzzTest, V4DecodersNeverCrashOnRandomBytes) {
  kcrypto::Prng prng(2);
  for (int i = 0; i < 2000; ++i) {
    kerb::Bytes garbage = prng.NextBytes(prng.NextBelow(96));
    (void)krb4::Ticket4::Decode(garbage);
    (void)krb4::Authenticator4::Decode(garbage);
    (void)krb4::AsRequest4::Decode(garbage);
    (void)krb4::AsReplyBody4::Decode(garbage);
    (void)krb4::TgsRequest4::Decode(garbage);
    (void)krb4::TgsReplyBody4::Decode(garbage);
    (void)krb4::ApRequest4::Decode(garbage);
    (void)krb4::Unframe4(garbage);
  }
  SUCCEED();
}

TEST(FuzzTest, EncLayerRejectsRandomCiphertext) {
  kcrypto::Prng prng(3);
  kcrypto::DesKey key = prng.NextDesKey();
  krb5::EncLayerConfig enc;
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    kerb::Bytes garbage = prng.NextBytes(8 * (1 + prng.NextBelow(12)));
    if (UnsealTlv(key, krb5::kMsgTicket, garbage, enc).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzTest, EveryBitFlipInV4ApRequestIsRejected) {
  // Flip each byte of a valid AP request; the server must reject every
  // mutation that touches sealed material and never crash on any.
  Testbed4 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed4::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());

  auto framed = krb4::Unframe4(request.value());
  ASSERT_TRUE(framed.ok());
  auto req = krb4::ApRequest4::Decode(framed.value().second);
  ASSERT_TRUE(req.ok());

  int accepted_mutations = 0;
  for (size_t i = 0; i < req.value().sealed_ticket.size(); ++i) {
    krb4::ApRequest4 mutated = req.value();
    mutated.sealed_ticket[i] ^= 0x40;
    if (bed.mail_server().VerifyApRequest(mutated, Testbed4::kAliceAddr.host).ok()) {
      ++accepted_mutations;
    }
  }
  for (size_t i = 0; i < req.value().sealed_auth.size(); ++i) {
    krb4::ApRequest4 mutated = req.value();
    mutated.sealed_auth[i] ^= 0x40;
    if (bed.mail_server().VerifyApRequest(mutated, Testbed4::kAliceAddr.host).ok()) {
      ++accepted_mutations;
    }
  }
  EXPECT_EQ(accepted_mutations, 0);
}

TEST(FuzzTest, EveryBitFlipInV5ApRequestIsRejected) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  auto tlv = kenc::TlvMessage::DecodeExpecting(krb5::kMsgApReq, request.value());
  ASSERT_TRUE(tlv.ok());
  auto req = krb5::ApRequest5::FromTlv(tlv.value());
  ASSERT_TRUE(req.ok());

  int accepted_mutations = 0;
  for (size_t i = 0; i < req.value().sealed_ticket.size(); ++i) {
    krb5::ApRequest5 mutated = req.value();
    mutated.sealed_ticket[i] ^= 0x40;
    if (bed.mail_server()
            .VerifyApRequest(mutated, Testbed5::kAliceAddr.host, nullptr)
            .ok()) {
      ++accepted_mutations;
    }
  }
  EXPECT_EQ(accepted_mutations, 0);
}

TEST(FuzzTest, Seal4TamperSweepDocumentsV4IntegrityLimits) {
  // V4's seal is magic + length + PCBC — NOT a MAC, as the paper stresses.
  // PCBC error propagation runs FORWARD only: corrupting ciphertext block j
  // garbles plaintext blocks j..end but leaves blocks before j intact. The
  // magic and length live in block 0, so only block-0 corruption is caught
  // structurally; any later corruption hands the application garbled
  // payload with no alarm. This test pins down that boundary — the gap the
  // paper's checksum recommendations exist to close.
  kcrypto::Prng prng(4);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes payload = prng.NextBytes(40);
  kerb::Bytes sealed = krb4::Seal4(key, payload);  // 48 bytes, 6 blocks
  int header_block_undetected = 0;
  int later_blocks_undetected = 0;
  int silent_payload_corruptions = 0;
  for (size_t i = 0; i < sealed.size(); ++i) {
    for (uint8_t mask : {0x01, 0x80}) {
      kerb::Bytes tampered = sealed;
      tampered[i] ^= mask;
      auto opened = krb4::Unseal4(key, tampered);
      if (opened.ok()) {
        (i < 8 ? header_block_undetected : later_blocks_undetected) += 1;
        if (opened.value() != payload) {
          ++silent_payload_corruptions;
        }
      }
    }
  }
  EXPECT_EQ(header_block_undetected, 0) << "magic/length corruption must be caught";
  EXPECT_GT(later_blocks_undetected, 0) << "V4 has no payload integrity — by design flaw";
  EXPECT_EQ(silent_payload_corruptions, later_blocks_undetected)
      << "every structurally-accepted mutation silently corrupted the payload";
  // The V5 layer with a sealed checksum has no such gap (see
  // EncLayerParamTest.RandomBitFlipsDetected).
}

TEST(FuzzTest, DesAvalancheProperty) {
  // One flipped input bit flips ~half the output bits — a sanity property
  // of the round function across many random keys/blocks.
  kcrypto::Prng prng(5);
  int64_t total_flips = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    kcrypto::DesKey key = prng.NextDesKey();
    uint64_t pt = prng.NextU64();
    uint64_t flipped = pt ^ (1ull << prng.NextBelow(64));
    total_flips += __builtin_popcountll(key.EncryptBlock(pt) ^ key.EncryptBlock(flipped));
  }
  double average = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(average, 28.0);
  EXPECT_LT(average, 36.0);
}

TEST(FuzzTest, RandomCiphertextNeverOpensAsPriv4) {
  kcrypto::Prng prng(6);
  kcrypto::DesKey key = prng.NextDesKey();
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    kerb::Bytes garbage = prng.NextBytes(8 * (2 + prng.NextBelow(10)));
    if (krb4::PrivMessage4::Unseal(key, garbage).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

}  // namespace
