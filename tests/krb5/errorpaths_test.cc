// Error-path coverage for the V5 KDC, client, and application server:
// every rejection branch an adversary (or misconfiguration) can reach must
// produce a clean error, never a crash or a silent success.

#include <gtest/gtest.h>

#include "src/attacks/testbed5.h"
#include "src/crypto/str2key.h"
#include "src/hardened/policy.h"

namespace krb5 {
namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

TEST(ErrorPaths5Test, AsRequestForUnknownPrincipal) {
  Testbed5 bed;
  AsRequest5 req;
  req.client = Principal::User("nobody", bed.realm);
  req.service_realm = bed.realm;
  req.nonce = 1;
  auto reply = bed.world().network().Call(Testbed5::kEveAddr, Testbed5::kAsAddr,
                                          req.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kNotFound);
}

TEST(ErrorPaths5Test, GarbageToEveryKdcPort) {
  Testbed5 bed;
  kcrypto::Prng prng(1);
  for (const auto& addr : {Testbed5::kAsAddr, Testbed5::kTgsAddr}) {
    for (int i = 0; i < 50; ++i) {
      auto reply =
          bed.world().network().Call(Testbed5::kEveAddr, addr, prng.NextBytes(64));
      EXPECT_FALSE(reply.ok());
    }
  }
}

TEST(ErrorPaths5Test, MalformedPreauthRejectedCleanly) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  Testbed5 bed(config);
  kcrypto::Prng prng(2);
  AsRequest5 req;
  req.client = bed.alice_principal();
  req.service_realm = bed.realm;
  req.nonce = 7;
  req.padata = prng.NextBytes(40);  // not even block-aligned-sealed data
  auto reply = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kAsAddr,
                                          req.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths5Test, PreauthWithWrongNonceRejected) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  Testbed5 bed(config);
  kcrypto::Prng prng(3);
  kcrypto::DesKey alice_key =
      kcrypto::StringToKey(Testbed5::kAlicePassword, bed.alice_principal().Salt());

  AsRequest5 req;
  req.client = bed.alice_principal();
  req.service_realm = bed.realm;
  req.nonce = 7;
  kenc::TlvMessage preauth(kMsgPreauth);
  preauth.SetU64(tag::kNonce, 8);  // mismatched
  preauth.SetU64(tag::kTimestamp, static_cast<uint64_t>(bed.world().clock().Now()));
  req.padata = SealTlv(alice_key, preauth, EncLayerConfig{}, prng);
  auto reply = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kAsAddr,
                                          req.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths5Test, StalePreauthRejected) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  Testbed5 bed(config);
  kcrypto::Prng prng(4);
  kcrypto::DesKey alice_key =
      kcrypto::StringToKey(Testbed5::kAlicePassword, bed.alice_principal().Salt());
  AsRequest5 req;
  req.client = bed.alice_principal();
  req.service_realm = bed.realm;
  req.nonce = 7;
  kenc::TlvMessage preauth(kMsgPreauth);
  preauth.SetU64(tag::kNonce, 7);
  preauth.SetU64(tag::kTimestamp,
                 static_cast<uint64_t>(bed.world().clock().Now() - ksim::kHour));
  req.padata = SealTlv(alice_key, preauth, EncLayerConfig{}, prng);
  auto reply = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kAsAddr,
                                          req.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths5Test, TgsRequestWithoutChecksumRejected) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  kcrypto::Prng prng(5);
  TgsRequest5 req;
  req.service = bed.mail_principal();
  req.lifetime = ksim::kHour;
  req.nonce = 1;
  req.tgt_realm = bed.realm;
  req.sealed_tgt = bed.alice().tgs_credentials()->sealed_tgt;
  Authenticator5 auth;
  auth.client = bed.alice_principal();
  auth.timestamp = bed.world().clock().Now();
  // No checksum fields at all.
  req.sealed_authenticator =
      auth.Seal(bed.alice().tgs_credentials()->session_key, EncLayerConfig{}, prng);
  auto reply = bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kTgsAddr,
                                          req.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths5Test, TgsRequestFromWrongAddressRejected) {
  Testbed5 bed;  // tickets carry addresses by default
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  // An otherwise-valid request built from alice's stolen material, sent
  // from eve's host WITHOUT source spoofing: the ticket's address binding
  // catches this (and only this — see E12) case.
  kcrypto::Prng prng(6);
  TgsRequest5 raw;
  raw.service = bed.mail_principal();
  raw.lifetime = ksim::kHour;
  raw.nonce = 1;
  raw.tgt_realm = bed.realm;
  raw.sealed_tgt = bed.alice().tgs_credentials()->sealed_tgt;
  Authenticator5 auth;
  auth.client = bed.alice_principal();
  auth.timestamp = bed.world().clock().Now();
  auth.checksum_type = kcrypto::ChecksumType::kCrc32;
  auth.request_checksum =
      kcrypto::ComputeChecksum(kcrypto::ChecksumType::kCrc32, raw.ChecksumInput(),
                               bed.alice().tgs_credentials()->session_key);
  raw.sealed_authenticator =
      auth.Seal(bed.alice().tgs_credentials()->session_key, EncLayerConfig{}, prng);
  auto reply = bed.world().network().Call(Testbed5::kEveAddr, Testbed5::kTgsAddr,
                                          raw.ToTlv().Encode());
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kAuthFailed);
}

TEST(ErrorPaths5Test, ChallengesExpireAtTheServer) {
  Testbed5Config config;
  config.server_options.mode = ApAuthMode::kChallengeResponse;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  // First leg: collect a challenge by sending a bare AP request.
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  (void)bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kMailAddr,
                                   request.value());
  EXPECT_EQ(bed.mail_server().outstanding_challenges(), 1u);
  // Outstanding challenges age out of the window.
  bed.world().clock().Advance(10 * ksim::kMinute);
  auto request2 = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request2.ok());
  (void)bed.world().network().Call(Testbed5::kAliceAddr, Testbed5::kMailAddr,
                                   request2.value());
  EXPECT_EQ(bed.mail_server().outstanding_challenges(), 1u)
      << "the stale challenge must have been pruned, leaving only the new one";
}

TEST(ErrorPaths5Test, ClientRejectsRealmWithoutDirectoryEntry) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto creds =
      bed.alice().GetServiceTicket(Principal::Service("svc", "h", "NOWHERE.EXAMPLE"));
  EXPECT_FALSE(creds.ok());
}

TEST(ErrorPaths5Test, HardenedKdcRejectsReplayedPreauth) {
  // Replaying a captured preauth blob fails once the timestamp ages out;
  // within the window the AS reply is useless without K_c anyway.
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  config.client_options.use_preauth = true;
  Testbed5 bed(config);
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  bed.world().network().SetAdversary(nullptr);
  kerb::Bytes captured = recorder.exchanges()[0].request.payload;

  bed.world().clock().Advance(ksim::kHour);
  auto replay =
      bed.world().network().Call(Testbed5::kEveAddr, Testbed5::kAsAddr, captured);
  EXPECT_EQ(replay.code(), kerb::ErrorCode::kAuthFailed);
}

}  // namespace
}  // namespace krb5
