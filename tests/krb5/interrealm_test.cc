// Inter-realm authentication across the ENG.CORP ← CORP → SALES.CORP tree.

#include <gtest/gtest.h>

#include "src/attacks/testbed5.h"

namespace krb5 {
namespace {

using kattack::RealmTree5;

TEST(InterRealmTest, CrossRealmServiceAccessWorks) {
  RealmTree5 tree;
  ASSERT_TRUE(tree.alice().Login(RealmTree5::kAlicePassword).ok());
  auto result = tree.alice().CallService(RealmTree5::kPayrollAddr, tree.payroll_principal(),
                                         false, kerb::ToBytes("view-salary"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(kerb::ToString(result.value().app_reply), "payroll-ok: view-salary");
}

TEST(InterRealmTest, TransitedPathRecordsIntermediateRealms) {
  // "A user's ticket request is signed by each TGS and passed along."
  RealmTree5 tree;
  ASSERT_TRUE(tree.alice().Login(RealmTree5::kAlicePassword).ok());
  ASSERT_TRUE(tree.alice()
                  .CallService(RealmTree5::kPayrollAddr, tree.payroll_principal(), false)
                  .ok());
  ASSERT_EQ(tree.payroll_log().size(), 1u);
  // Path must show ENG.CORP (origin hop) and CORP (transit).
  EXPECT_NE(tree.payroll_log()[0].find("alice@ENG.CORP"), std::string::npos);
  EXPECT_NE(tree.payroll_log()[0].find("ENG.CORP,CORP"), std::string::npos)
      << tree.payroll_log()[0];
}

TEST(InterRealmTest, LocalServiceUnaffected) {
  RealmTree5 tree;
  ASSERT_TRUE(tree.alice().Login(RealmTree5::kAlicePassword).ok());
  // alice's own realm has no services registered besides the TGS; asking
  // for an unknown local service errors cleanly.
  auto creds = tree.alice().GetServiceTicket(
      Principal::Service("nosuch", "host", "ENG.CORP"));
  EXPECT_EQ(creds.code(), kerb::ErrorCode::kNotFound);
}

TEST(InterRealmTest, UnroutableRealmFails) {
  RealmTree5 tree;
  ASSERT_TRUE(tree.alice().Login(RealmTree5::kAlicePassword).ok());
  auto creds = tree.alice().GetServiceTicket(
      Principal::Service("svc", "host", "OUTSIDE.WORLD"));
  EXPECT_FALSE(creds.ok());
}

TEST(InterRealmTest, TransitPolicyCanRejectPaths) {
  // A payroll server configured to distrust CORP rejects transited tickets.
  RealmTree5 tree;
  tree.payroll_server().options().transited_policy = [](const Ticket5& ticket) {
    for (const auto& realm : ticket.transited) {
      if (realm == "CORP") {
        return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(tree.alice().Login(RealmTree5::kAlicePassword).ok());
  auto result =
      tree.alice().CallService(RealmTree5::kPayrollAddr, tree.payroll_principal(), false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(tree.payroll_server().rejected_requests(), 1u);
}

TEST(InterRealmTest, ForgedDirectTicketLacksTransitRecord) {
  // The E13 core: a party holding the CORP↔SALES key (a compromised CORP)
  // can mint a TGT claiming any client with an EMPTY transited path — the
  // record the honest path would carry is simply absent.
  RealmTree5 tree;
  kcrypto::Prng prng(1);

  Ticket5 forged;
  forged.service = Principal{"krbtgt", "SALES.CORP", "CORP"};
  forged.client = Principal::User("ceo", "ENG.CORP");  // a fabricated identity
  forged.issued_at = tree.world().clock().Now();
  forged.lifetime = ksim::kHour;
  forged.session_key = prng.NextDesKey().bytes();
  // transited deliberately left empty: CORP "forgets" to record anything.
  kerb::Bytes sealed = forged.Seal(tree.corp_sales_key(), tree.policy().enc, prng);

  // SALES' TGS accepts it — it is sealed with the right key and looks local
  // to the CORP hop.
  auto sales_tgs_key = tree.sales().database().Lookup(krb4::TgsPrincipal("SALES.CORP"));
  ASSERT_TRUE(sales_tgs_key.ok());
  // Ticket decodes under the inter-realm key: structurally indistinguishable
  // from an honest one.
  auto opened = Ticket5::Unseal(tree.corp_sales_key(), sealed, tree.policy().enc);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().transited.empty());
  EXPECT_EQ(opened.value().client.ToString(), "ceo@ENG.CORP");
}

}  // namespace
}  // namespace krb5
