// End-to-end Version 5 protocol tests over the simulated network.

#include <gtest/gtest.h>

#include "src/attacks/testbed5.h"

namespace krb5 {
namespace {

using kattack::Testbed5;
using kattack::Testbed5Config;

TEST(Protocol5Test, LoginAndServiceCall) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(kerb::ToString(result.value().app_reply), "mail-ok: mail-check");
  ASSERT_EQ(bed.mail_log().size(), 1u);
  EXPECT_EQ(bed.mail_log()[0], "mail-check by alice@ATHENA.SIM");
}

TEST(Protocol5Test, WrongPasswordFails) {
  Testbed5 bed;
  EXPECT_FALSE(bed.alice().Login("wrong").ok());
}

TEST(Protocol5Test, NonceEchoDetectsFabricatedReply) {
  // Draft 3's AS nonce: a fabricated AS reply (e.g. a replayed one from an
  // earlier login) fails the nonce check even when the password matches.
  Testbed5 bed;
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  kerb::Bytes old_reply = recorder.exchanges()[0].reply;
  bed.world().network().SetAdversary(nullptr);

  class Replayer : public ksim::Adversary {
   public:
    explicit Replayer(kerb::Bytes reply) : reply_(std::move(reply)) {}
    Decision OnRequest(ksim::Message& msg) override {
      if (msg.dst.port == 88) {
        return Decision{false, reply_};
      }
      return {};
    }
    kerb::Bytes reply_;
  } replayer(old_reply);
  bed.world().network().SetAdversary(&replayer);

  auto status = bed.alice().Login(Testbed5::kAlicePassword);
  EXPECT_FALSE(status.ok());
}

TEST(Protocol5Test, MutualAuthentication) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto result = bed.alice().CallService(Testbed5::kFileAddr, bed.file_principal(), true,
                                        kerb::ToBytes("mount /home/alice"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(kerb::ToString(result.value().app_reply), "file-ok: mount /home/alice");
}

TEST(Protocol5Test, PreauthRequiredRejectsBareRequests) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  Testbed5 bed(config);
  // Client not configured for preauth: rejected.
  EXPECT_FALSE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  // Client with preauth: accepted.
  auto options = bed.alice().options();
  options.use_preauth = true;
  auto alice2 = bed.MakeClient(bed.alice_principal(), Testbed5::kAliceAddr, options);
  EXPECT_TRUE(alice2->Login(Testbed5::kAlicePassword).ok());
}

TEST(Protocol5Test, PreauthWithWrongPasswordRejected) {
  Testbed5Config config;
  config.kdc_policy.require_preauth = true;
  config.client_options.use_preauth = true;
  Testbed5 bed(config);
  EXPECT_FALSE(bed.alice().Login("wrong-password").ok());
}

TEST(Protocol5Test, RateLimitThrottlesAsRequests) {
  Testbed5Config config;
  config.kdc_policy.as_rate_limit_per_minute = 3;
  Testbed5 bed(config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok()) << i;
  }
  auto status = bed.alice().Login(Testbed5::kAlicePassword);
  EXPECT_EQ(status.code(), kerb::ErrorCode::kRateLimited);
  EXPECT_EQ(bed.kdc().as_requests_rate_limited(), 1u);
  // The window slides: a minute later requests flow again.
  bed.world().clock().Advance(ksim::kMinute + ksim::kSecond);
  EXPECT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
}

TEST(Protocol5Test, AddressOmissionProducesPortableTickets) {
  Testbed5Config config;
  config.client_options.omit_address = true;
  config.server_options.check_address = true;  // enforced but vacuous
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  // Delivered from a completely different host: still accepted, because the
  // ticket binds no address.
  auto reply = bed.world().network().Call(Testbed5::kEveAddr, Testbed5::kMailAddr,
                                          request.value());
  EXPECT_TRUE(reply.ok());
}

TEST(Protocol5Test, AddressBindingBlocksNaiveCrossHostUse) {
  Testbed5 bed;  // addresses bound by default
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto request = bed.alice().MakeApRequest(bed.mail_principal(), false);
  ASSERT_TRUE(request.ok());
  auto reply = bed.world().network().Call(Testbed5::kEveAddr, Testbed5::kMailAddr,
                                          request.value());
  EXPECT_FALSE(reply.ok());  // naive reuse fails; E12 shows spoofing defeats it
}

TEST(Protocol5Test, ChallengeResponseModeWorksForHonestClients) {
  Testbed5Config config;
  config.server_options.mode = ApAuthMode::kChallengeResponse;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(bed.mail_log().size(), 1u);
  // The challenge was consumed.
  EXPECT_EQ(bed.mail_server().outstanding_challenges(), 0u);
}

TEST(Protocol5Test, SubkeyNegotiationYieldsSharedChannelKey) {
  Testbed5Config config;
  config.server_options.negotiate_subkey = true;
  config.client_options.send_subkey = true;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());

  kcrypto::DesKey server_channel_key;
  // Capture the channel key the server derived.
  bed.mail_server();  // server handler stores nothing; use a second call path
  auto result = bed.alice().CallService(Testbed5::kMailAddr, bed.mail_principal(), true);
  ASSERT_TRUE(result.ok());
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  ASSERT_TRUE(creds.ok());
  // The negotiated key differs from the ticket's multi-session key.
  EXPECT_FALSE(result.value().channel_key == creds.value().session_key);
}

TEST(Protocol5Test, ForwardedTgtFlaggedAndUsable) {
  Testbed5Config config;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto forwarded = bed.alice().ForwardTgt(/*omit_address=*/true);
  ASSERT_TRUE(forwarded.ok());
  // The forwarded TGT carries the FORWARDED flag but "does not include the
  // original source" — verify by unsealing with the TGS key via the KDC db.
  auto tgs_key = bed.kdc().database().Lookup(krb4::TgsPrincipal(bed.realm));
  ASSERT_TRUE(tgs_key.ok());
  auto ticket = Ticket5::Unseal(tgs_key.value(), forwarded.value().sealed_tgt,
                                bed.kdc().policy().enc);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket.value().flags & kFlagForwarded);
  EXPECT_FALSE(ticket.value().client_addr.has_value());
}

TEST(Protocol5Test, ForwardedTicketOmitsOriginalSource) {
  // "Kerberos has a flag bit to indicate that a ticket was forwarded, but
  // does not include the original source." Two TGTs forwarded through
  // completely different hosts are structurally indistinguishable: the
  // accepting party cannot evaluate the forwarding chain.
  auto forward_from = [](uint64_t seed, const ksim::NetAddress&) -> krb5::Ticket5 {
    kattack::Testbed5Config config;
    config.seed = seed;
    kattack::Testbed5 bed(config);
    EXPECT_TRUE(bed.alice().Login(kattack::Testbed5::kAlicePassword).ok());
    auto fwd = bed.alice().ForwardTgt(/*omit_address=*/true);
    EXPECT_TRUE(fwd.ok());
    auto tgs_key = bed.kdc().database().Lookup(krb4::TgsPrincipal(bed.realm));
    EXPECT_TRUE(tgs_key.ok());
    auto ticket = Ticket5::Unseal(tgs_key.value(), fwd.value().sealed_tgt,
                                  bed.kdc().policy().enc);
    EXPECT_TRUE(ticket.ok());
    return ticket.value();
  };
  // Same user, same realm — forwarded via two different "hosts" (the
  // request source is the only thing that differs, and it is not recorded).
  krb5::Ticket5 a = forward_from(1, kattack::Testbed5::kAliceAddr);
  krb5::Ticket5 b = forward_from(1, kattack::Testbed5::kEveAddr);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.client_addr, b.client_addr);  // both absent
  EXPECT_EQ(a.transited, b.transited);
  // Nothing in the ticket distinguishes the forwarding origins: every field
  // that is not a random key or a timestamp is identical.
}

TEST(Protocol5Test, EncTktInSkeyDisabledByPolicy) {
  Testbed5Config config;
  config.kdc_policy.allow_enc_tkt_in_skey = false;
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  TgsRequest5 req;
  req.service = bed.mail_principal();
  req.lifetime = ksim::kHour;
  req.options = kOptEncTktInSkey;
  req.additional_ticket = bed.alice().tgs_credentials()->sealed_tgt;
  auto reply = bed.alice().RawTgsRequest(bed.realm, req);
  EXPECT_FALSE(reply.ok());
}

TEST(Protocol5Test, CollisionProofChecksumPolicyRejectsCrc32Clients) {
  Testbed5Config config;
  config.kdc_policy.require_collision_proof_checksum = true;
  // Client uses the Draft 3 CRC-32 default.
  Testbed5 bed(config);
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  EXPECT_EQ(creds.code(), kerb::ErrorCode::kPolicy);

  // An MD4-DES client passes.
  auto options = bed.alice().options();
  options.request_checksum = kcrypto::ChecksumType::kMd4Des;
  auto alice2 = bed.MakeClient(bed.alice_principal(), Testbed5::kAliceAddr, options);
  ASSERT_TRUE(alice2->Login(Testbed5::kAlicePassword).ok());
  EXPECT_TRUE(alice2->GetServiceTicket(bed.mail_principal()).ok());
}

TEST(Protocol5Test, TamperedTgsRequestDetectedEvenWithCrc32WhenNotCompensated) {
  // A blind bit-flip in the options field fails the checksum: CRC-32 does
  // detect NOISE; E9 shows it fails against a compensating adversary.
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword).ok());

  class OptionFlipper : public ksim::Adversary {
   public:
    Decision OnRequest(ksim::Message& msg) override {
      if (msg.dst.port != 750) {
        return {};
      }
      auto tlv = kenc::TlvMessage::Decode(msg.payload);
      if (!tlv.ok()) {
        return {};
      }
      auto req = TgsRequest5::FromTlv(tlv.value());
      if (!req.ok()) {
        return {};
      }
      req.value().options |= kOptOmitAddress;  // no checksum compensation
      msg.payload = req.value().ToTlv().Encode();
      return {};
    }
  } flipper;
  bed.world().network().SetAdversary(&flipper);

  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  EXPECT_FALSE(creds.ok());
}

TEST(Protocol5Test, ServiceTicketNeverOutlivesTheTgt) {
  // "The latter is a security measure; the longer a ticket is in use, the
  // greater the risk of it being stolen or compromised." Tickets derive
  // their authority from the TGT; they must expire with it.
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword, 2 * ksim::kHour).ok());
  bed.world().clock().Advance(90 * ksim::kMinute);  // 30 minutes of TGT left
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal(), 8 * ksim::kHour);
  ASSERT_TRUE(creds.ok());
  EXPECT_LE(creds.value().lifetime, 30 * ksim::kMinute);
}

TEST(Protocol5Test, ExpiredTicketsRejected) {
  Testbed5 bed;
  ASSERT_TRUE(bed.alice().Login(Testbed5::kAlicePassword, ksim::kHour).ok());
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal(), ksim::kHour);
  ASSERT_TRUE(creds.ok());
  bed.world().clock().Advance(2 * ksim::kHour);
  ApRequest5 req;
  req.sealed_ticket = creds.value().sealed_ticket;
  Authenticator5 auth;
  auth.client = bed.alice_principal();
  auth.timestamp = bed.world().clock().Now();
  kcrypto::Prng prng(1);
  req.sealed_authenticator =
      auth.Seal(creds.value().session_key, bed.kdc().policy().enc, prng);
  auto verdict = bed.mail_server().VerifyApRequest(req, Testbed5::kAliceAddr.host, nullptr);
  EXPECT_EQ(verdict.code(), kerb::ErrorCode::kExpired);
}

}  // namespace
}  // namespace krb5
