// A deeper hierarchy: TEAM.ENG.CORP → ENG.CORP → CORP → SALES.CORP.
// Exercises the multi-hop realm walk ("realms will normally be configured
// in a hierarchical fashion") across three inter-realm edges.

#include <gtest/gtest.h>

#include "src/krb5/appserver.h"
#include "src/krb5/client.h"
#include "src/krb5/kdc.h"
#include "src/sim/world.h"

namespace krb5 {
namespace {

struct DeepTree {
  ksim::World world{1234};
  std::vector<std::unique_ptr<Kdc5>> kdcs;
  std::unique_ptr<AppServer5> payroll;
  std::unique_ptr<Client5> dev;
  std::vector<std::string> payroll_log;

  static constexpr ksim::NetAddress kTeamAs{0x0a040058, 88};
  static constexpr ksim::NetAddress kTeamTgs{0x0a040058, 750};
  static constexpr ksim::NetAddress kEngAs{0x0a010058, 88};
  static constexpr ksim::NetAddress kEngTgs{0x0a010058, 750};
  static constexpr ksim::NetAddress kCorpAs{0x0a020058, 88};
  static constexpr ksim::NetAddress kCorpTgs{0x0a020058, 750};
  static constexpr ksim::NetAddress kSalesAs{0x0a030058, 88};
  static constexpr ksim::NetAddress kSalesTgs{0x0a030058, 750};
  static constexpr ksim::NetAddress kPayrollAddr{0x0a030010, 7000};
  static constexpr ksim::NetAddress kDevAddr{0x0a040101, 1023};

  DeepTree() {
    world.clock().Set(3000000 * ksim::kSecond);
    kcrypto::Prng key_prng = world.prng().Fork();
    kcrypto::DesKey team_eng = key_prng.NextDesKey();
    kcrypto::DesKey eng_corp = key_prng.NextDesKey();
    kcrypto::DesKey corp_sales = key_prng.NextDesKey();

    auto make_kdc = [&](const std::string& realm, const ksim::NetAddress& as,
                        const ksim::NetAddress& tgs) {
      KdcDatabase db;
      db.AddServiceWithRandomKey(krb4::TgsPrincipal(realm), key_prng);
      kdcs.push_back(std::make_unique<Kdc5>(&world.network(), as, tgs,
                                            world.MakeHostClock(0), realm, std::move(db),
                                            world.prng().Fork()));
      return kdcs.back().get();
    };

    Kdc5* team = make_kdc("TEAM.ENG.CORP", kTeamAs, kTeamTgs);
    Kdc5* eng = make_kdc("ENG.CORP", kEngAs, kEngTgs);
    Kdc5* corp = make_kdc("CORP", kCorpAs, kCorpTgs);
    Kdc5* sales = make_kdc("SALES.CORP", kSalesAs, kSalesTgs);

    team->database().AddUser(dev_principal(), "deep-password");
    team->AddInterRealmKey("ENG.CORP", team_eng);
    team->AddRealmRoute("CORP", "ENG.CORP");
    team->AddRealmRoute("SALES.CORP", "ENG.CORP");
    eng->AddInterRealmKey("TEAM.ENG.CORP", team_eng);
    eng->AddInterRealmKey("CORP", eng_corp);
    eng->AddRealmRoute("SALES.CORP", "CORP");
    corp->AddInterRealmKey("ENG.CORP", eng_corp);
    corp->AddInterRealmKey("SALES.CORP", corp_sales);
    sales->AddInterRealmKey("CORP", corp_sales);

    kcrypto::DesKey payroll_key =
        sales->database().AddServiceWithRandomKey(payroll_principal(), key_prng);
    payroll = std::make_unique<AppServer5>(
        &world.network(), kPayrollAddr, payroll_principal(), payroll_key,
        world.MakeHostClock(0), world.prng().Fork(),
        [this](const VerifiedSession5& session, const kerb::Bytes&) {
          std::string path;
          for (const auto& realm : session.transited) {
            path += (path.empty() ? "" : ",") + realm;
          }
          payroll_log.push_back(session.client.ToString() + " via [" + path + "]");
          return kerb::ToBytes("ok");
        },
        AppServer5Options{});

    dev = std::make_unique<Client5>(&world.network(), kDevAddr, world.MakeHostClock(0),
                                    dev_principal(), kTeamAs, world.prng().Fork(),
                                    Client5Options{});
    dev->AddRealmTgs("TEAM.ENG.CORP", kTeamTgs);
    dev->AddRealmTgs("ENG.CORP", kEngTgs);
    dev->AddRealmTgs("CORP", kCorpTgs);
    dev->AddRealmTgs("SALES.CORP", kSalesTgs);
  }

  krb4::Principal dev_principal() const {
    return krb4::Principal::User("dev", "TEAM.ENG.CORP");
  }
  krb4::Principal payroll_principal() const {
    return krb4::Principal::Service("payroll", "hr-host", "SALES.CORP");
  }
};

TEST(DeepRealmTest, ThreeHopWalkSucceeds) {
  DeepTree tree;
  ASSERT_TRUE(tree.dev->Login("deep-password").ok());
  auto result =
      tree.dev->CallService(DeepTree::kPayrollAddr, tree.payroll_principal(), false);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  ASSERT_EQ(tree.payroll_log.size(), 1u);
  EXPECT_EQ(tree.payroll_log[0],
            "dev@TEAM.ENG.CORP via [TEAM.ENG.CORP,ENG.CORP,CORP]");
}

TEST(DeepRealmTest, IntermediateTgtsAreCached) {
  DeepTree tree;
  ASSERT_TRUE(tree.dev->Login("deep-password").ok());
  ASSERT_TRUE(
      tree.dev->CallService(DeepTree::kPayrollAddr, tree.payroll_principal(), false).ok());
  uint64_t sales_tgs_served = tree.kdcs[3]->tgs_requests_served();
  // A second service in SALES.CORP reuses the cached SALES TGT directly.
  kcrypto::Prng key_prng(42);
  krb4::Principal hr = krb4::Principal::Service("hr", "hr-host", "SALES.CORP");
  tree.kdcs[3]->database().AddServiceWithRandomKey(hr, key_prng);
  ASSERT_TRUE(tree.dev->GetServiceTicket(hr).ok());
  // One more SALES TGS request, but no new walk through TEAM/ENG/CORP.
  EXPECT_EQ(tree.kdcs[3]->tgs_requests_served(), sales_tgs_served + 1);
  EXPECT_EQ(tree.kdcs[0]->tgs_requests_served(), 1u);  // only the original walk
}

TEST(DeepRealmTest, TransitPolicySeesTheWholePath) {
  DeepTree tree;
  tree.payroll->options().transited_policy = [](const Ticket5& ticket) {
    return ticket.transited.size() <= 2;  // refuse long chains
  };
  ASSERT_TRUE(tree.dev->Login("deep-password").ok());
  auto result =
      tree.dev->CallService(DeepTree::kPayrollAddr, tree.payroll_principal(), false);
  EXPECT_FALSE(result.ok()) << "a 3-realm transited path must trip the policy";
}

}  // namespace
}  // namespace krb5
