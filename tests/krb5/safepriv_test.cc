#include "src/krb5/safepriv.h"

#include <gtest/gtest.h>

#include "src/sim/world.h"

namespace krb5 {
namespace {

struct ChannelPair {
  ksim::World world{7};
  ksim::HostClock clock_a{world.MakeHostClock(0)};
  ksim::HostClock clock_b{world.MakeHostClock(0)};
  kcrypto::Prng prng{11};
  kcrypto::DesKey key{kcrypto::Prng(3).NextDesKey()};
};

ChannelConfig TimestampConfig() {
  ChannelConfig c;
  c.protection = ReplayProtection::kTimestamp;
  return c;
}

ChannelConfig SequenceConfig() {
  ChannelConfig c;
  c.protection = ReplayProtection::kSequence;
  return c;
}

TEST(SecureChannelTest, PrivRoundTripTimestamp) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel receiver(p.key, &p.clock_b, TimestampConfig());
  kerb::Bytes sealed = sender.SealMessage(kerb::ToBytes("hello"), p.prng);
  auto opened = receiver.OpenMessage(sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(kerb::ToString(opened.value()), "hello");
}

TEST(SecureChannelTest, PrivRoundTripSequence) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, SequenceConfig(), 1000);
  SecureChannel receiver(p.key, &p.clock_b, SequenceConfig(), 1000);
  for (int i = 0; i < 5; ++i) {
    auto opened = receiver.OpenMessage(
        sender.SealMessage(kerb::ToBytes("msg" + std::to_string(i)), p.prng));
    ASSERT_TRUE(opened.ok()) << i;
  }
}

TEST(SecureChannelTest, SafeModeDetectsTampering) {
  ChannelPair p;
  ChannelConfig config = SequenceConfig();
  config.private_messages = false;  // KRB_SAFE
  SecureChannel sender(p.key, &p.clock_a, config, 5);
  SecureChannel receiver(p.key, &p.clock_b, config, 5);
  kerb::Bytes sealed = sender.SealMessage(kerb::ToBytes("integrity only"), p.prng);
  // KRB_SAFE carries the plaintext — visible but protected.
  EXPECT_TRUE(kerb::ContainsSubsequence(sealed, kerb::ToBytes("integrity only")));
  kerb::Bytes tampered = sealed;
  tampered[6] ^= 0x01;
  EXPECT_FALSE(receiver.OpenMessage(tampered).ok());
  EXPECT_TRUE(receiver.OpenMessage(sealed).ok());
}

TEST(SecureChannelTest, TimestampModeDetectsSameWindowReplay) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel receiver(p.key, &p.clock_b, TimestampConfig());
  kerb::Bytes sealed = sender.SealMessage(kerb::ToBytes("pay $100"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(sealed).ok());
  auto replay = receiver.OpenMessage(sealed);
  EXPECT_EQ(replay.code(), kerb::ErrorCode::kReplay);
  EXPECT_EQ(receiver.replays_detected(), 1u);
}

TEST(SecureChannelTest, TimestampCacheGrowsWithTraffic) {
  // The server-state cost the paper calls "rapidly unmanageable" for
  // file-system-style request rates.
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel receiver(p.key, &p.clock_b, TimestampConfig());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        receiver.OpenMessage(sender.SealMessage(kerb::ToBytes("op"), p.prng)).ok());
    p.world.clock().Advance(ksim::kMillisecond);
  }
  EXPECT_EQ(receiver.timestamp_cache_size(), 100u);
}

TEST(SecureChannelTest, SequenceModeStateIsConstant) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, SequenceConfig(), 42);
  SecureChannel receiver(p.key, &p.clock_b, SequenceConfig(), 42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        receiver.OpenMessage(sender.SealMessage(kerb::ToBytes("op"), p.prng)).ok());
  }
  EXPECT_EQ(receiver.timestamp_cache_size(), 0u);  // just a counter
}

TEST(SecureChannelTest, SequenceModeDetectsReplay) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, SequenceConfig(), 7);
  SecureChannel receiver(p.key, &p.clock_b, SequenceConfig(), 7);
  kerb::Bytes first = sender.SealMessage(kerb::ToBytes("a"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(first).ok());
  EXPECT_EQ(receiver.OpenMessage(first).code(), kerb::ErrorCode::kReplay);
}

TEST(SecureChannelTest, SequenceModeDetectsDeletion) {
  // "This mechanism also provides the ability to detect deleted messages,
  // by watching for gaps in sequence number utilization."
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, SequenceConfig(), 0);
  SecureChannel receiver(p.key, &p.clock_b, SequenceConfig(), 0);
  kerb::Bytes m0 = sender.SealMessage(kerb::ToBytes("first"), p.prng);
  kerb::Bytes m1 = sender.SealMessage(kerb::ToBytes("second"), p.prng);
  kerb::Bytes m2 = sender.SealMessage(kerb::ToBytes("third"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(m0).ok());
  // The adversary deletes m1; m2 arrives next.
  auto result = receiver.OpenMessage(m2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(receiver.gaps_detected(), 1u);
}

TEST(SecureChannelTest, TimestampModeCannotDetectDeletion) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel receiver(p.key, &p.clock_b, TimestampConfig());
  kerb::Bytes m0 = sender.SealMessage(kerb::ToBytes("first"), p.prng);
  p.world.clock().Advance(ksim::kMillisecond);
  kerb::Bytes m1 = sender.SealMessage(kerb::ToBytes("second"), p.prng);
  p.world.clock().Advance(ksim::kMillisecond);
  kerb::Bytes m2 = sender.SealMessage(kerb::ToBytes("third"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(m0).ok());
  // m1 deleted: m2 is accepted without any alarm — silence is the flaw.
  EXPECT_TRUE(receiver.OpenMessage(m2).ok());
  EXPECT_EQ(receiver.gaps_detected(), 0u);
}

TEST(SecureChannelTest, CrossSessionReplayTimestampSharedKey) {
  // Two concurrent sessions under the same multi-session key with separate
  // caches: a message from session 1 replays into session 2 (E11).
  ChannelPair p;
  SecureChannel session1_sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel session1_receiver(p.key, &p.clock_b, TimestampConfig());
  SecureChannel session2_receiver(p.key, &p.clock_b, TimestampConfig());

  kerb::Bytes msg = session1_sender.SealMessage(kerb::ToBytes("delete file"), p.prng);
  ASSERT_TRUE(session1_receiver.OpenMessage(msg).ok());
  // Same bytes replayed into the other session's receiver: accepted.
  EXPECT_TRUE(session2_receiver.OpenMessage(msg).ok());
}

TEST(SecureChannelTest, CrossSessionReplayBlockedBySessionKeys) {
  // With negotiated per-session keys, the replay fails outright.
  ChannelPair p;
  kcrypto::DesKey key1 = p.prng.NextDesKey();
  kcrypto::DesKey key2 = p.prng.NextDesKey();
  SecureChannel session1_sender(key1, &p.clock_a, TimestampConfig());
  SecureChannel session2_receiver(key2, &p.clock_b, TimestampConfig());
  kerb::Bytes msg = session1_sender.SealMessage(kerb::ToBytes("delete file"), p.prng);
  EXPECT_FALSE(session2_receiver.OpenMessage(msg).ok());
}

TEST(SecureChannelTest, CrossSessionReplayBlockedBySequenceNumbers) {
  // Even under a shared key, distinct random initial sequence numbers make
  // cross-stream replay fail — the appendix's point.
  ChannelPair p;
  SecureChannel session1_sender(p.key, &p.clock_a, SequenceConfig(), 1000);
  SecureChannel session2_receiver(p.key, &p.clock_b, SequenceConfig(), 555000);
  kerb::Bytes msg = session1_sender.SealMessage(kerb::ToBytes("delete file"), p.prng);
  EXPECT_FALSE(session2_receiver.OpenMessage(msg).ok());
}

ChannelConfig ChainedIvConfig() {
  ChannelConfig c;
  c.protection = ReplayProtection::kChainedIv;
  return c;
}

TEST(SecureChannelTest, ChainedIvRoundTrip) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, ChainedIvConfig(), 42);
  SecureChannel receiver(p.key, &p.clock_b, ChainedIvConfig(), 42);
  for (int i = 0; i < 10; ++i) {
    auto opened = receiver.OpenMessage(
        sender.SealMessage(kerb::ToBytes("msg" + std::to_string(i)), p.prng));
    ASSERT_TRUE(opened.ok()) << i;
    EXPECT_EQ(kerb::ToString(opened.value()), "msg" + std::to_string(i));
  }
}

TEST(SecureChannelTest, ChainedIvDetectsReplay) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, ChainedIvConfig(), 1);
  SecureChannel receiver(p.key, &p.clock_b, ChainedIvConfig(), 1);
  kerb::Bytes msg = sender.SealMessage(kerb::ToBytes("pay"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(msg).ok());
  EXPECT_EQ(receiver.OpenMessage(msg).code(), kerb::ErrorCode::kReplay);
}

TEST(SecureChannelTest, ChainedIvDetectsDeletion) {
  // "this scheme would also allow detection of message deletions by
  // interested applications" — the next message decrypts under the wrong
  // position.
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, ChainedIvConfig(), 7);
  SecureChannel receiver(p.key, &p.clock_b, ChainedIvConfig(), 7);
  kerb::Bytes m0 = sender.SealMessage(kerb::ToBytes("a"), p.prng);
  kerb::Bytes m1 = sender.SealMessage(kerb::ToBytes("b"), p.prng);
  kerb::Bytes m2 = sender.SealMessage(kerb::ToBytes("c"), p.prng);
  ASSERT_TRUE(receiver.OpenMessage(m0).ok());
  // m1 deleted in transit.
  EXPECT_FALSE(receiver.OpenMessage(m2).ok());
}

TEST(SecureChannelTest, ChainedIvDetectsReordering) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, ChainedIvConfig(), 9);
  SecureChannel receiver(p.key, &p.clock_b, ChainedIvConfig(), 9);
  kerb::Bytes m0 = sender.SealMessage(kerb::ToBytes("first"), p.prng);
  kerb::Bytes m1 = sender.SealMessage(kerb::ToBytes("second"), p.prng);
  EXPECT_FALSE(receiver.OpenMessage(m1).ok());  // out of order
}

TEST(SecureChannelTest, ChainedIvCrossSessionReplayFails) {
  // Different handshake material → different IV chains, even with the same
  // multi-session key.
  ChannelPair p;
  SecureChannel session1_sender(p.key, &p.clock_a, ChainedIvConfig(), 1000);
  SecureChannel session2_receiver(p.key, &p.clock_b, ChainedIvConfig(), 2000);
  kerb::Bytes msg = session1_sender.SealMessage(kerb::ToBytes("x"), p.prng);
  EXPECT_FALSE(session2_receiver.OpenMessage(msg).ok());
}

TEST(SecureChannelTest, ChainedIvNeedsNoTimestampOrSequenceField) {
  // The wire message carries no freshness field at all; position lives in
  // the cipher state. State: one 8-byte IV.
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, ChainedIvConfig(), 3);
  SecureChannel receiver(p.key, &p.clock_b, ChainedIvConfig(), 3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(receiver.OpenMessage(sender.SealMessage(kerb::Bytes{1}, p.prng)).ok());
  }
  EXPECT_EQ(receiver.timestamp_cache_size(), 0u);
}

TEST(SecureChannelTest, StaleMessageOutsideWindowRejected) {
  ChannelPair p;
  SecureChannel sender(p.key, &p.clock_a, TimestampConfig());
  SecureChannel receiver(p.key, &p.clock_b, TimestampConfig());
  kerb::Bytes sealed = sender.SealMessage(kerb::ToBytes("old"), p.prng);
  p.world.clock().Advance(10 * ksim::kMinute);
  EXPECT_EQ(receiver.OpenMessage(sealed).code(), kerb::ErrorCode::kSkew);
}

}  // namespace
}  // namespace krb5
