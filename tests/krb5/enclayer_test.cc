#include "src/krb5/enclayer.h"

#include <gtest/gtest.h>

#include "src/krb5/messages.h"

namespace krb5 {
namespace {

EncLayerConfig Crc32Config() { return EncLayerConfig{kcrypto::ChecksumType::kCrc32, true}; }
EncLayerConfig Md4Config() { return EncLayerConfig{kcrypto::ChecksumType::kMd4Des, true}; }

kenc::TlvMessage SampleMessage() {
  kenc::TlvMessage msg(kMsgEncAsRepPart);
  msg.SetU64(tag::kNonce, 12345);
  msg.SetString(tag::kErrorText, "payload");
  return msg;
}

class EncLayerParamTest : public ::testing::TestWithParam<kcrypto::ChecksumType> {};

TEST_P(EncLayerParamTest, SealUnsealRoundTrip) {
  kcrypto::Prng prng(1);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{GetParam(), true};
  kerb::Bytes sealed = SealTlv(key, SampleMessage(), config, prng);
  auto opened = UnsealTlv(key, kMsgEncAsRepPart, sealed, config);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().GetU64(tag::kNonce).value(), 12345u);
}

TEST_P(EncLayerParamTest, WrongKeyRejected) {
  kcrypto::Prng prng(2);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{GetParam(), true};
  kerb::Bytes sealed = SealTlv(key, SampleMessage(), config, prng);
  EXPECT_FALSE(UnsealTlv(prng.NextDesKey(), kMsgEncAsRepPart, sealed, config).ok());
}

TEST_P(EncLayerParamTest, WrongTypeRejected) {
  // "All encrypted data is labeled with the message type prior to
  // encryption" — the sealed blob cannot be replayed into another context.
  kcrypto::Prng prng(3);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{GetParam(), true};
  kerb::Bytes sealed = SealTlv(key, SampleMessage(), config, prng);
  auto as_ticket = UnsealTlv(key, kMsgTicket, sealed, config);
  EXPECT_FALSE(as_ticket.ok());
}

TEST_P(EncLayerParamTest, RandomBitFlipsDetected) {
  kcrypto::Prng prng(4);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{GetParam(), true};
  kerb::Bytes sealed = SealTlv(key, SampleMessage(), config, prng);
  int undetected = 0;
  for (size_t i = 0; i < sealed.size(); ++i) {
    kerb::Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    if (UnsealTlv(key, kMsgEncAsRepPart, tampered, config).ok()) {
      ++undetected;
    }
  }
  EXPECT_EQ(undetected, 0);
}

INSTANTIATE_TEST_SUITE_P(Checksums, EncLayerParamTest,
                         ::testing::Values(kcrypto::ChecksumType::kCrc32,
                                           kcrypto::ChecksumType::kMd4,
                                           kcrypto::ChecksumType::kMd4Des));

TEST(EncLayerTest, ConfounderRandomizesCiphertext) {
  // "In order to ensure that duplicate messages have different encryptions,
  // random initial confounders are added."
  kcrypto::Prng prng(5);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes a = SealTlv(key, SampleMessage(), Crc32Config(), prng);
  kerb::Bytes b = SealTlv(key, SampleMessage(), Crc32Config(), prng);
  EXPECT_NE(a, b);
}

TEST(EncLayerTest, WithoutConfounderCiphertextRepeats) {
  kcrypto::Prng prng(6);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config{kcrypto::ChecksumType::kMd4, false};
  kerb::Bytes a = SealTlv(key, SampleMessage(), config, prng);
  kerb::Bytes b = SealTlv(key, SampleMessage(), config, prng);
  EXPECT_EQ(a, b);  // identical plaintext, identical ciphertext — traffic leak
}

TEST(EncLayerTest, TruncationRejectedEvenWithCrc32) {
  // The ASN.1-style length means truncation cannot yield a valid message —
  // "it is no longer possible for an attacker to truncate a message".
  kcrypto::Prng prng(7);
  kcrypto::DesKey key = prng.NextDesKey();
  kenc::TlvMessage big(kMsgEncAsRepPart);
  big.SetBytes(tag::kEData, prng.NextBytes(64));
  big.SetU64(tag::kNonce, 1);
  kerb::Bytes sealed = SealTlv(key, big, Crc32Config(), prng);
  for (size_t blocks = 1; blocks * 8 < sealed.size(); ++blocks) {
    kerb::Bytes truncated(sealed.begin(), sealed.begin() + 8 * blocks);
    EXPECT_FALSE(UnsealTlv(key, kMsgEncAsRepPart, truncated, Crc32Config()).ok());
  }
}

TEST(EncLayerTest, Md4ConfigRejectsCrc32Sealed) {
  kcrypto::Prng prng(8);
  kcrypto::DesKey key = prng.NextDesKey();
  kerb::Bytes sealed = SealTlv(key, SampleMessage(), Crc32Config(), prng);
  EXPECT_FALSE(UnsealTlv(key, kMsgEncAsRepPart, sealed, Md4Config()).ok());
}

// --------------------------------------------------------------------------- Draft 2 KRB_PRIV

TEST(Draft2PrivTest, RoundTrip) {
  kcrypto::Prng prng(9);
  kcrypto::DesKey key = prng.NextDesKey();
  Draft2Priv msg;
  msg.data = kerb::ToBytes("mail body");
  msg.timestamp = 42 * ksim::kSecond;
  msg.direction = 1;
  msg.host_address = 0x0a000001;
  auto opened = Draft2PrivUnseal(key, Draft2PrivSeal(key, msg));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().data, msg.data);
  EXPECT_EQ(opened.value().timestamp, msg.timestamp);
  EXPECT_EQ(opened.value().direction, msg.direction);
  EXPECT_EQ(opened.value().host_address, msg.host_address);
}

TEST(Draft2PrivTest, PrefixTruncationYieldsValidMessage_TheE7Property) {
  // The chosen-plaintext attack precondition: an attacker who controls DATA
  // can make a ciphertext PREFIX decode as a complete valid message with
  // attacker-chosen content.
  kcrypto::Prng prng(10);
  kcrypto::DesKey key = prng.NextDesKey();

  // Attacker-chosen spoof content, formatted as a full Draft 2 plaintext
  // (data || trailer || PKCS5 pad) occupying exactly 5 blocks.
  kerb::Bytes spoof_plain;
  {
    kenc::Writer w;
    w.PutBytes(kerb::ToBytes("rm -rf /archive/tax-records"));  // 27 bytes
    w.PutU64(static_cast<uint64_t>(77 * ksim::kSecond));
    w.PutU8(1);
    w.PutU32(0x0a000010);
    spoof_plain = w.Take();  // 40 bytes = 5 blocks exactly
    ASSERT_EQ(spoof_plain.size() % 8, 0u);
  }

  // The attacker submits DATA = spoof_plain || full pad block || filler, so
  // the server's encryption of its own message contains, as a prefix, the
  // encryption of (spoof_plain || valid-pad).
  kerb::Bytes chosen_data = spoof_plain;
  chosen_data.insert(chosen_data.end(), 8, 0x08);  // a full PKCS5 pad block
  kerb::Append(chosen_data, kerb::ToBytes("harmless remainder"));

  Draft2Priv victim;
  victim.data = chosen_data;
  victim.timestamp = 100 * ksim::kSecond;
  victim.direction = 1;
  victim.host_address = 0x0a000010;
  kerb::Bytes full_ct = Draft2PrivSeal(key, victim);

  // Truncate to the prefix covering spoof_plain + the pad block.
  kerb::Bytes forged(full_ct.begin(), full_ct.begin() + spoof_plain.size() + 8);
  auto opened = Draft2PrivUnseal(key, forged);
  ASSERT_TRUE(opened.ok()) << "prefix should decode as a valid message";
  EXPECT_EQ(kerb::ToString(opened.value().data), "rm -rf /archive/tax-records");
  EXPECT_EQ(opened.value().direction, 1);
}

TEST(Draft2PrivTest, V4FormatResistsTheSameTruncation) {
  // Contrast (also in tests/krb4/krbpriv4_test.cc): the V4 leading length
  // field makes every truncation invalid. Here we just confirm the Draft 2
  // format is the odd one out by checking its trailer carries no binding.
  kcrypto::Prng prng(11);
  kcrypto::DesKey key = prng.NextDesKey();
  Draft2Priv msg;
  msg.data = prng.NextBytes(100);
  kerb::Bytes sealed = Draft2PrivSeal(key, msg);
  // At least one shorter prefix decodes "successfully" (data garbage but
  // structurally valid) with non-negligible probability is NOT asserted —
  // only the attacker-steered case above is deterministic. What we assert:
  // the full message still round-trips.
  EXPECT_TRUE(Draft2PrivUnseal(key, sealed).ok());
}

}  // namespace
}  // namespace krb5
