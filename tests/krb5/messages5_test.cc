#include "src/krb5/messages.h"

#include <gtest/gtest.h>

namespace krb5 {
namespace {

Principal Alice() { return Principal::User("alice", "ATHENA.SIM"); }
Principal Payroll() { return Principal::Service("payroll", "hr-host", "SALES.CORP"); }

TEST(Ticket5Test, TlvRoundTripAllFields) {
  kcrypto::Prng prng(1);
  Ticket5 t;
  t.service = Payroll();
  t.client = Alice();
  t.flags = kFlagForwardable | kFlagForwarded;
  t.client_addr = 0x0a000001;
  t.issued_at = 55 * ksim::kSecond;
  t.lifetime = ksim::kHour;
  t.session_key = prng.NextDesKey().bytes();
  t.transited = {"ENG.CORP", "CORP"};

  auto back = Ticket5::FromTlv(t.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().service == t.service);
  EXPECT_TRUE(back.value().client == t.client);
  EXPECT_EQ(back.value().flags, t.flags);
  EXPECT_EQ(back.value().client_addr, t.client_addr);
  EXPECT_EQ(back.value().session_key, t.session_key);
  EXPECT_EQ(back.value().transited, t.transited);
}

TEST(Ticket5Test, AddressOmissionSurvivesRoundTrip) {
  kcrypto::Prng prng(2);
  Ticket5 t;
  t.service = Payroll();
  t.client = Alice();
  t.session_key = prng.NextDesKey().bytes();
  // no client_addr
  auto back = Ticket5::FromTlv(t.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().client_addr.has_value());
}

TEST(Ticket5Test, SealUnsealAndTypeSeparation) {
  kcrypto::Prng prng(3);
  kcrypto::DesKey key = prng.NextDesKey();
  EncLayerConfig config;
  Ticket5 t;
  t.service = Payroll();
  t.client = Alice();
  t.session_key = prng.NextDesKey().bytes();
  kerb::Bytes sealed = t.Seal(key, config, prng);
  ASSERT_TRUE(Ticket5::Unseal(key, sealed, config).ok());
  // A sealed ticket must not unseal as an authenticator.
  EXPECT_FALSE(Authenticator5::Unseal(key, sealed, config).ok());
}

TEST(Authenticator5Test, OptionalFieldsRoundTrip) {
  kcrypto::Prng prng(4);
  Authenticator5 a;
  a.client = Alice();
  a.timestamp = 9 * ksim::kSecond;
  a.checksum_type = kcrypto::ChecksumType::kMd4Des;
  a.request_checksum = prng.NextBytes(16);
  a.subkey = prng.NextDesKey().bytes();
  a.initial_seq = 0xdeadbeef;
  a.service_name_check = "nfs.fileserver@ATHENA.SIM";

  auto back = Authenticator5::FromTlv(a.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().checksum_type, a.checksum_type);
  EXPECT_EQ(back.value().request_checksum, a.request_checksum);
  EXPECT_EQ(back.value().subkey, a.subkey);
  EXPECT_EQ(back.value().initial_seq, a.initial_seq);
  EXPECT_EQ(back.value().service_name_check, a.service_name_check);
}

TEST(Authenticator5Test, MinimalFieldsRoundTrip) {
  Authenticator5 a;
  a.client = Alice();
  a.timestamp = 1;
  auto back = Authenticator5::FromTlv(a.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().subkey.has_value());
  EXPECT_FALSE(back.value().request_checksum.has_value());
}

TEST(AsMessages5Test, RequestRoundTripWithPadata) {
  kcrypto::Prng prng(5);
  AsRequest5 req;
  req.client = Alice();
  req.service_realm = "ATHENA.SIM";
  req.lifetime = ksim::kHour;
  req.options = kOptOmitAddress;
  req.nonce = 777;
  req.padata = prng.NextBytes(24);
  auto back = AsRequest5::FromTlv(req.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().options, kOptOmitAddress);
  EXPECT_EQ(back.value().nonce, 777u);
  EXPECT_EQ(back.value().padata, req.padata);
}

TEST(TgsMessages5Test, ChecksumInputCoversRewritableFields) {
  // Changing any adversary-visible field must change the checksum input.
  TgsRequest5 req;
  req.service = Payroll();
  req.lifetime = ksim::kHour;
  req.options = 0;
  req.nonce = 1;
  req.tgt_realm = "ATHENA.SIM";
  req.additional_ticket = kerb::ToBytes("TICKET");
  req.authorization_data = kerb::ToBytes("AUTHZ");
  kerb::Bytes base = req.ChecksumInput();

  TgsRequest5 changed = req;
  changed.options = kOptEncTktInSkey;
  EXPECT_NE(changed.ChecksumInput(), base);

  changed = req;
  changed.additional_ticket = kerb::ToBytes("OTHER");
  EXPECT_NE(changed.ChecksumInput(), base);

  changed = req;
  changed.authorization_data = kerb::ToBytes("AUTHZ2");
  EXPECT_NE(changed.ChecksumInput(), base);

  changed = req;
  changed.service.name = "other";
  EXPECT_NE(changed.ChecksumInput(), base);
}

TEST(TgsMessages5Test, FullRoundTrip) {
  kcrypto::Prng prng(6);
  TgsRequest5 req;
  req.service = Payroll();
  req.lifetime = ksim::kHour;
  req.options = kOptEncTktInSkey | kOptOmitAddress;
  req.nonce = 42;
  req.tgt_realm = "CORP";
  req.additional_ticket = prng.NextBytes(48);
  req.additional_ticket_service = Principal::Service("nfs", "fs", "ATHENA.SIM");
  req.authorization_data = prng.NextBytes(12);
  req.sealed_tgt = prng.NextBytes(64);
  req.sealed_authenticator = prng.NextBytes(40);

  auto back = TgsRequest5::FromTlv(req.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().options, req.options);
  EXPECT_EQ(back.value().tgt_realm, "CORP");
  EXPECT_EQ(back.value().additional_ticket, req.additional_ticket);
  ASSERT_TRUE(back.value().additional_ticket_service.has_value());
  EXPECT_TRUE(*back.value().additional_ticket_service == *req.additional_ticket_service);
  EXPECT_EQ(back.value().authorization_data, req.authorization_data);
}

TEST(ApMessages5Test, RoundTripWithChallengeResponse) {
  kcrypto::Prng prng(7);
  ApRequest5 req;
  req.sealed_ticket = prng.NextBytes(32);
  req.sealed_authenticator = prng.NextBytes(32);
  req.want_mutual = true;
  req.app_data = kerb::ToBytes("GET /inbox");
  req.challenge_response = prng.NextBytes(16);
  auto back = ApRequest5::FromTlv(req.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().want_mutual);
  EXPECT_EQ(back.value().challenge_response, req.challenge_response);
}

TEST(ApMessages5Test, EncApRepPartRoundTrip) {
  kcrypto::Prng prng(8);
  EncApRepPart5 part;
  part.timestamp = 12 * ksim::kSecond;
  part.subkey = prng.NextDesKey().bytes();
  part.initial_seq = 99;
  auto back = EncApRepPart5::FromTlv(part.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().timestamp, part.timestamp);
  EXPECT_EQ(back.value().subkey, part.subkey);
  EXPECT_EQ(back.value().initial_seq, part.initial_seq);
}

TEST(KrbError5Test, RoundTrip) {
  KrbError5 err;
  err.code = kErrMethod;
  err.text = "challenge/response required";
  err.e_data = kerb::Bytes{1, 2, 3};
  auto back = KrbError5::FromTlv(err.ToTlv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().code, kErrMethod);
  EXPECT_EQ(back.value().e_data, err.e_data);
}

}  // namespace
}  // namespace krb5
