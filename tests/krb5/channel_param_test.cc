// Parameterized sweep over every SecureChannel replay-protection mode:
// behaviours every mode must share, and the replay/tamper rejections each
// must enforce.

#include <gtest/gtest.h>

#include "src/krb5/safepriv.h"
#include "src/sim/world.h"

namespace krb5 {
namespace {

class ChannelModeTest : public ::testing::TestWithParam<ReplayProtection> {
 protected:
  ChannelConfig Config() const {
    ChannelConfig config;
    config.protection = GetParam();
    return config;
  }

  ksim::World world_{77};
  ksim::HostClock clock_{world_.MakeHostClock(0)};
  kcrypto::Prng prng_{78};
  kcrypto::DesKey key_{kcrypto::Prng(79).NextDesKey()};
};

TEST_P(ChannelModeTest, InOrderStreamDelivers) {
  SecureChannel sender(key_, &clock_, Config(), 500);
  SecureChannel receiver(key_, &clock_, Config(), 500);
  for (int i = 0; i < 25; ++i) {
    std::string payload = "message-" + std::to_string(i);
    auto opened = receiver.OpenMessage(sender.SealMessage(kerb::ToBytes(payload), prng_));
    ASSERT_TRUE(opened.ok()) << i;
    EXPECT_EQ(kerb::ToString(opened.value()), payload);
    world_.clock().Advance(ksim::kMillisecond);
  }
}

TEST_P(ChannelModeTest, ImmediateReplayRejected) {
  SecureChannel sender(key_, &clock_, Config(), 500);
  SecureChannel receiver(key_, &clock_, Config(), 500);
  kerb::Bytes msg = sender.SealMessage(kerb::ToBytes("once"), prng_);
  ASSERT_TRUE(receiver.OpenMessage(msg).ok());
  EXPECT_FALSE(receiver.OpenMessage(msg).ok());
}

TEST_P(ChannelModeTest, WrongKeyRejected) {
  SecureChannel sender(key_, &clock_, Config(), 500);
  SecureChannel receiver(kcrypto::Prng(99).NextDesKey(), &clock_, Config(), 500);
  kerb::Bytes msg = sender.SealMessage(kerb::ToBytes("x"), prng_);
  EXPECT_FALSE(receiver.OpenMessage(msg).ok());
}

TEST_P(ChannelModeTest, TamperedCiphertextRejected) {
  SecureChannel sender(key_, &clock_, Config(), 500);
  SecureChannel receiver(key_, &clock_, Config(), 500);
  kerb::Bytes msg = sender.SealMessage(kerb::ToBytes("tamper me"), prng_);
  for (size_t i = 0; i < msg.size(); i += 3) {
    kerb::Bytes bad = msg;
    bad[i] ^= 0x20;
    EXPECT_FALSE(receiver.OpenMessage(bad).ok()) << "byte " << i;
  }
  // The pristine message still goes through afterwards.
  EXPECT_TRUE(receiver.OpenMessage(msg).ok());
}

TEST_P(ChannelModeTest, EmptyAndLargePayloads) {
  SecureChannel sender(key_, &clock_, Config(), 1);
  SecureChannel receiver(key_, &clock_, Config(), 1);
  auto small = receiver.OpenMessage(sender.SealMessage(kerb::Bytes{}, prng_));
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small.value().empty());
  kerb::Bytes big = prng_.NextBytes(4096);
  world_.clock().Advance(ksim::kMillisecond);
  auto large = receiver.OpenMessage(sender.SealMessage(big, prng_));
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large.value(), big);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ChannelModeTest,
                         ::testing::Values(ReplayProtection::kTimestamp,
                                           ReplayProtection::kSequence,
                                           ReplayProtection::kChainedIv),
                         [](const auto& mode_info) {
                           switch (mode_info.param) {
                             case ReplayProtection::kTimestamp:
                               return "Timestamp";
                             case ReplayProtection::kSequence:
                               return "Sequence";
                             default:
                               return "ChainedIv";
                           }
                         });

}  // namespace
}  // namespace krb5
