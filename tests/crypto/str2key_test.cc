#include "src/crypto/str2key.h"

#include <gtest/gtest.h>

namespace kcrypto {
namespace {

TEST(Str2KeyTest, Deterministic) {
  EXPECT_TRUE(StringToKey("hunter2", "ATHENA.MIT.EDUpat") ==
              StringToKey("hunter2", "ATHENA.MIT.EDUpat"));
}

TEST(Str2KeyTest, PasswordSensitivity) {
  EXPECT_FALSE(StringToKey("hunter2", "salt") == StringToKey("hunter3", "salt"));
  EXPECT_FALSE(StringToKey("hunter2", "salt") == StringToKey("Hunter2", "salt"));
}

TEST(Str2KeyTest, SaltSensitivity) {
  // Same password in two realms must produce different keys.
  EXPECT_FALSE(StringToKey("hunter2", "REALM.Apat") == StringToKey("hunter2", "REALM.Bpat"));
}

TEST(Str2KeyTest, ProducesValidDesKeys) {
  const char* passwords[] = {"", "a", "password", "correct horse battery staple",
                             "x!@#$%^&*()_+{}|:\"<>?"};
  for (const char* pw : passwords) {
    DesKey key = StringToKey(pw, "salt");
    EXPECT_TRUE(HasOddParity(key.bytes())) << pw;
    EXPECT_FALSE(IsWeakKey(key.bytes())) << pw;
  }
}

TEST(Str2KeyTest, LongPasswordsFold) {
  std::string pw(200, 'q');
  DesKey key = StringToKey(pw, "salt");
  EXPECT_TRUE(HasOddParity(key.bytes()));
  // Folding must still distinguish long inputs.
  std::string pw2 = pw;
  pw2[150] = 'r';
  EXPECT_FALSE(key == StringToKey(pw2, "salt"));
}

TEST(Str2KeyTest, PublicAlgorithmIsRepeatable) {
  // The paper's point: the transform is public, so an eavesdropper can run
  // it over a dictionary. Confirm an "attacker" computing independently
  // derives the identical key.
  DesKey victim = StringToKey("joshua", "REALM.Cuser");
  DesKey attacker_guess = StringToKey("joshua", "REALM.Cuser");
  EXPECT_TRUE(victim == attacker_guess);
}

}  // namespace
}  // namespace kcrypto
