#include "src/crypto/str2key.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crypto/des_slice.h"

namespace kcrypto {
namespace {

TEST(Str2KeyTest, Deterministic) {
  EXPECT_TRUE(StringToKey("hunter2", "ATHENA.MIT.EDUpat") ==
              StringToKey("hunter2", "ATHENA.MIT.EDUpat"));
}

TEST(Str2KeyTest, PasswordSensitivity) {
  EXPECT_FALSE(StringToKey("hunter2", "salt") == StringToKey("hunter3", "salt"));
  EXPECT_FALSE(StringToKey("hunter2", "salt") == StringToKey("Hunter2", "salt"));
}

TEST(Str2KeyTest, SaltSensitivity) {
  // Same password in two realms must produce different keys.
  EXPECT_FALSE(StringToKey("hunter2", "REALM.Apat") == StringToKey("hunter2", "REALM.Bpat"));
}

TEST(Str2KeyTest, ProducesValidDesKeys) {
  const char* passwords[] = {"", "a", "password", "correct horse battery staple",
                             "x!@#$%^&*()_+{}|:\"<>?"};
  for (const char* pw : passwords) {
    DesKey key = StringToKey(pw, "salt");
    EXPECT_TRUE(HasOddParity(key.bytes())) << pw;
    EXPECT_FALSE(IsWeakKey(key.bytes())) << pw;
  }
}

TEST(Str2KeyTest, LongPasswordsFold) {
  std::string pw(200, 'q');
  DesKey key = StringToKey(pw, "salt");
  EXPECT_TRUE(HasOddParity(key.bytes()));
  // Folding must still distinguish long inputs.
  std::string pw2 = pw;
  pw2[150] = 'r';
  EXPECT_FALSE(key == StringToKey(pw2, "salt"));
}

TEST(Str2KeyTest, PinnedRegressionVectors) {
  // Outputs captured from the original bit-loop implementation before the
  // table-driven DES rewrite. The fast path must preserve V4 string-to-key
  // semantics bit for bit — these pin fold, CBC-MAC, parity fixing, and the
  // weak-key escape hatch.
  struct Vector {
    const char* password;
    const char* salt;
    uint64_t key;
  };
  constexpr Vector kPinned[] = {
      {"", "", 0x984c4cc157b96d52ull},
      {"", "ATHENA.SIM", 0xbfa42304a1adcedcull},
      {"password", "ATHENA.SIMalice", 0x7f13108cbf15b516ull},
      {"hunter2", "ATHENA.MIT.EDUpat", 0xf4c4379ef2c7d0feull},
      {"tigger", "ATHENA.SIMuser7", 0x3ba28043ab407380ull},
      {"the-real-password", "ATHENA.SIMalice", 0x0e733e169b3e290eull},
      {"correct horse battery staple", "REALM.Bpat", 0x7f7fe0ce6d76daaeull},
      {"x!@#$%^&*()_+{}|:\"<>?", "salt", 0xb334f185ab76865bull},
      {"joshua", "REALM.Cuser", 0x1980f407f1436eeaull},
      {"qqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqq", "salt", 0x3b1a5bbca851cb70ull},
  };
  for (const auto& v : kPinned) {
    EXPECT_EQ(StringToKey(v.password, v.salt).AsU64(), v.key)
        << "password=\"" << v.password << "\" salt=\"" << v.salt << "\"";
  }
}

TEST(Str2KeyTest, BatchMatchesScalarOnDictionaryAndEdgeCases) {
  // The batched (bitsliced) derivation must be byte-identical to the scalar
  // path for every lane: dictionary-like words, empty strings, long inputs
  // past the batch's scalar-fallback threshold, and inputs whose MAC lands
  // on the weak-key fixup.
  std::vector<std::string> words;
  for (size_t j = 0; j < kDesSliceLanes + 17; ++j) {
    switch (j % 5) {
      case 0: words.push_back("password" + std::to_string(j)); break;
      case 1: words.push_back(""); break;
      case 2: words.push_back(std::string(j % 40, 'q')); break;
      case 3: words.push_back("Tr0ub4dor&" + std::to_string(j)); break;
      default: words.push_back(std::string(120 + j % 40, 'z')); break;  // > batch cap
    }
  }
  for (const char* salt : {"", "ATHENA.SIMuser9", "REALM.Cuser"}) {
    for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{65}, words.size()}) {
      if (n > words.size()) continue;
      std::vector<DesBlock> got(n);
      StringToKeyBatch(words.data(), n, salt, got.data());
      const size_t checked = n < kDesSliceLanes ? n : kDesSliceLanes;
      for (size_t j = 0; j < checked; ++j) {
        EXPECT_EQ(got[j], StringToKey(words[j], salt).bytes())
            << "lane " << j << " word \"" << words[j] << "\" salt \"" << salt << "\"";
      }
    }
  }
}

TEST(Str2KeyTest, PublicAlgorithmIsRepeatable) {
  // The paper's point: the transform is public, so an eavesdropper can run
  // it over a dictionary. Confirm an "attacker" computing independently
  // derives the identical key.
  DesKey victim = StringToKey("joshua", "REALM.Cuser");
  DesKey attacker_guess = StringToKey("joshua", "REALM.Cuser");
  EXPECT_TRUE(victim == attacker_guess);
}

}  // namespace
}  // namespace kcrypto
