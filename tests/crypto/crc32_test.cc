#include "src/crypto/crc32.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

using kerb::Bytes;
using kerb::ToBytes;

TEST(Crc32Test, KnownVectors) {
  // CRC-32/ISO-HDLC standard vectors, including the canonical "123456789"
  // check value.
  EXPECT_EQ(Crc32(ToBytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(ToBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(ToBytes("The quick brown fox jumps over the lazy dog")), 0x414FA339u);
  EXPECT_EQ(Crc32(Bytes{0x00}), 0xD202EF8Du);
  EXPECT_EQ(Crc32(ToBytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(ToBytes("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32(ToBytes("message digest")), 0x20159D7Fu);
  EXPECT_EQ(Crc32(ToBytes("abcdefghijklmnopqrstuvwxyz")), 0x4C2750BDu);
  EXPECT_EQ(Crc32(Bytes{0xFF, 0xFF, 0xFF, 0xFF}), 0xFFFFFFFFu);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Prng prng(1);
  Bytes data = prng.NextBytes(1000);
  Crc32State state;
  state.Update(kerb::BytesView(data.data(), 100));
  state.Update(kerb::BytesView(data.data() + 100, 900));
  EXPECT_EQ(state.Final(), Crc32(data));
}

// The weakness the paper exploits: CRC-32 is forgeable. Four attacker-chosen
// bytes steer the checksum to any target value.
TEST(Crc32Test, ForgePatchHitsArbitraryTargets) {
  Prng prng(2);
  for (int i = 0; i < 200; ++i) {
    Bytes prefix = prng.NextBytes(prng.NextBelow(64));
    uint32_t target = prng.NextU32();
    auto patch = ForgePatch(prefix, target);
    Bytes forged = prefix;
    forged.insert(forged.end(), patch.begin(), patch.end());
    EXPECT_EQ(Crc32(forged), target);
  }
}

TEST(Crc32Test, ForgeCanMatchAnotherMessagesCrc) {
  // The concrete cut-and-paste scenario: make a *different* message carry
  // the CRC of the original, so a CRC check cannot tell them apart.
  Bytes original = ToBytes("TGS request: ticket for service S, no options");
  Bytes tampered = ToBytes("TGS request: ticket for service S, ENC-TKT-IN-SKEY");
  uint32_t original_crc = Crc32(original);
  auto patch = ForgePatch(tampered, original_crc);
  kerb::Append(tampered, kerb::BytesView(patch.data(), patch.size()));
  EXPECT_EQ(Crc32(tampered), original_crc);
  EXPECT_NE(tampered, original);
}

TEST(Crc32Test, ForgeOnEmptyPrefix) {
  auto patch = ForgePatch(Bytes{}, 0xDEADBEEFu);
  EXPECT_EQ(Crc32(Bytes(patch.begin(), patch.end())), 0xDEADBEEFu);
}

TEST(Crc32Test, CrcIsLinearInXorDifference) {
  // CRC(a) ^ CRC(b) == CRC(a ^ b) ^ CRC(0...0) for equal-length inputs —
  // the affine structure that makes forgery possible.
  Prng prng(3);
  for (int i = 0; i < 50; ++i) {
    size_t len = 1 + prng.NextBelow(64);
    Bytes a = prng.NextBytes(len);
    Bytes b = prng.NextBytes(len);
    Bytes zero(len, 0);
    uint32_t lhs = Crc32(a) ^ Crc32(b);
    uint32_t rhs = Crc32(kerb::Xor(a, b)) ^ Crc32(zero);
    EXPECT_EQ(lhs, rhs);
  }
}

}  // namespace
}  // namespace kcrypto
