#include "src/crypto/des.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

TEST(DesTest, ClassicTestVector) {
  // The worked example from many DES expositions.
  DesKey key(0x133457799BBCDFF1ull);
  EXPECT_EQ(key.EncryptBlock(0x0123456789ABCDEFull), 0x85E813540F0AB405ull);
  EXPECT_EQ(key.DecryptBlock(0x85E813540F0AB405ull), 0x0123456789ABCDEFull);
}

TEST(DesTest, ZeroCiphertextVector) {
  // Encrypting 0x8787878787878787 under 0x0E329232EA6D0D73 yields zero.
  DesKey key(0x0E329232EA6D0D73ull);
  EXPECT_EQ(key.EncryptBlock(0x8787878787878787ull), 0x0ull);
  EXPECT_EQ(key.DecryptBlock(0x0ull), 0x8787878787878787ull);
}

TEST(DesTest, RoundTripManyRandomBlocks) {
  Prng prng(42);
  for (int i = 0; i < 200; ++i) {
    DesKey key = prng.NextDesKey();
    uint64_t pt = prng.NextU64();
    uint64_t ct = key.EncryptBlock(pt);
    EXPECT_EQ(key.DecryptBlock(ct), pt);
    EXPECT_NE(ct, pt);  // astronomically unlikely to be a fixed point
  }
}

TEST(DesTest, BlockByteInterfaceMatchesU64) {
  DesKey key(0x133457799BBCDFF1ull);
  DesBlock pt = U64ToBlock(0x0123456789ABCDEFull);
  DesBlock ct = key.EncryptBlock(pt);
  EXPECT_EQ(BlockToU64(ct), 0x85E813540F0AB405ull);
}

TEST(DesTest, ComplementationProperty) {
  // DES(~k, ~p) == ~DES(k, p) — a structural property of the cipher; a
  // strong regression check on the round function and key schedule.
  Prng prng(7);
  for (int i = 0; i < 20; ++i) {
    uint64_t k = prng.NextU64();
    uint64_t p = prng.NextU64();
    DesKey key(k);
    DesKey comp_key(~k);
    EXPECT_EQ(comp_key.EncryptBlock(~p), ~key.EncryptBlock(p));
  }
}

TEST(DesTest, FixParityProducesOddParity) {
  Prng prng(3);
  for (int i = 0; i < 100; ++i) {
    DesBlock raw;
    uint64_t v = prng.NextU64();
    for (int j = 0; j < 8; ++j) {
      raw[j] = static_cast<uint8_t>(v >> (8 * j));
    }
    DesBlock fixed = FixParity(raw);
    EXPECT_TRUE(HasOddParity(fixed));
    // Parity fixing only touches bit 0 of each byte.
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(fixed[j] & 0xfe, raw[j] & 0xfe);
    }
  }
}

TEST(DesTest, FixParityIdempotent) {
  DesBlock raw{0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1};
  EXPECT_EQ(FixParity(FixParity(raw)), FixParity(raw));
}

TEST(DesTest, WeakKeysDetected) {
  EXPECT_TRUE(IsWeakKey(U64ToBlock(0x0101010101010101ull)));
  EXPECT_TRUE(IsWeakKey(U64ToBlock(0xFEFEFEFEFEFEFEFEull)));
  EXPECT_TRUE(IsWeakKey(U64ToBlock(0x1F1F1F1F0E0E0E0Eull)));
  EXPECT_TRUE(IsWeakKey(U64ToBlock(0xE0E0E0E0F1F1F1F1ull)));
  // Semi-weak.
  EXPECT_TRUE(IsWeakKey(U64ToBlock(0x01FE01FE01FE01FEull)));
  EXPECT_FALSE(IsWeakKey(U64ToBlock(0x133457799BBCDFF1ull)));
}

TEST(DesTest, WeakKeyEncryptTwiceIsIdentity) {
  // The defining property of a weak key: encryption is an involution.
  DesKey weak(0x0101010101010101ull);
  uint64_t pt = 0x0123456789ABCDEFull;
  EXPECT_EQ(weak.EncryptBlock(weak.EncryptBlock(pt)), pt);
}

TEST(DesTest, SemiWeakPairsInvertEachOther) {
  // For a semi-weak pair (k1, k2): E_k2(E_k1(p)) == p — the structural
  // property that makes these keys unusable for Kerberos.
  const std::pair<uint64_t, uint64_t> kPairs[] = {
      {0x011F011F010E010Eull, 0x1F011F010E010E01ull},
      {0x01E001E001F101F1ull, 0xE001E001F101F101ull},
      {0x01FE01FE01FE01FEull, 0xFE01FE01FE01FE01ull},
      {0x1FE01FE00EF10EF1ull, 0xE01FE01FF10EF10Eull},
      {0x1FFE1FFE0EFE0EFEull, 0xFE1FFE1FFE0EFE0Eull},
      {0xE0FEE0FEF1FEF1FEull, 0xFEE0FEE0FEF1FEF1ull},
  };
  Prng prng(21);
  for (const auto& [k1, k2] : kPairs) {
    DesKey a(k1), b(k2);
    for (int i = 0; i < 5; ++i) {
      uint64_t pt = prng.NextU64();
      EXPECT_EQ(b.EncryptBlock(a.EncryptBlock(pt)), pt)
          << std::hex << k1 << "/" << k2;
    }
  }
}

TEST(DesTest, VariantKeyDiffersAndHasParity) {
  DesKey key(0x133457799BBCDFF1ull);
  DesKey variant = key.Variant(0xf0);
  EXPECT_FALSE(key == variant);
  EXPECT_TRUE(HasOddParity(variant.bytes()));
  // Variant derivation is deterministic.
  EXPECT_TRUE(variant == key.Variant(0xf0));
}

TEST(DesTest, DistinctKeysProduceDistinctCiphertext) {
  DesKey a(0x133457799BBCDFF1ull);
  DesKey b(0x0E329232EA6D0D73ull);
  uint64_t pt = 0x1122334455667788ull;
  EXPECT_NE(a.EncryptBlock(pt), b.EncryptBlock(pt));
}

TEST(DesTest, BlockU64RoundTrip) {
  Prng prng(11);
  for (int i = 0; i < 50; ++i) {
    uint64_t v = prng.NextU64();
    EXPECT_EQ(BlockToU64(U64ToBlock(v)), v);
  }
}

}  // namespace
}  // namespace kcrypto
