#include "src/crypto/dh.h"

#include <gtest/gtest.h>

#include "src/crypto/primes.h"

namespace kcrypto {
namespace {

TEST(DhTest, ToyGroupAgreement) {
  Prng prng(41);
  DhGroup group = MakeToyGroup(prng, 32);
  DhKeyPair alice = DhGenerate(group, prng);
  DhKeyPair bob = DhGenerate(group, prng);
  BigInt s1 = DhSharedSecret(group, alice.private_key, bob.public_key);
  BigInt s2 = DhSharedSecret(group, bob.private_key, alice.public_key);
  EXPECT_EQ(s1.Compare(s2), 0);
}

TEST(DhTest, OakleyGroup1Agreement) {
  Prng prng(42);
  const DhGroup& group = OakleyGroup1();
  EXPECT_EQ(group.bits(), 768u);
  DhKeyPair alice = DhGenerate(group, prng);
  DhKeyPair bob = DhGenerate(group, prng);
  BigInt s1 = DhSharedSecret(group, alice.private_key, bob.public_key);
  BigInt s2 = DhSharedSecret(group, bob.private_key, alice.public_key);
  EXPECT_EQ(s1.Compare(s2), 0);
  EXPECT_FALSE(s1.IsZero());
}

TEST(DhTest, OakleyGroup2Size) { EXPECT_EQ(OakleyGroup2().bits(), 1024u); }

TEST(DhTest, DistinctSessionsDistinctSecrets) {
  Prng prng(43);
  DhGroup group = MakeToyGroup(prng, 40);
  DhKeyPair a1 = DhGenerate(group, prng);
  DhKeyPair b1 = DhGenerate(group, prng);
  DhKeyPair a2 = DhGenerate(group, prng);
  DhKeyPair b2 = DhGenerate(group, prng);
  BigInt s1 = DhSharedSecret(group, a1.private_key, b1.public_key);
  BigInt s2 = DhSharedSecret(group, a2.private_key, b2.public_key);
  EXPECT_NE(s1.Compare(s2), 0);
}

TEST(DhTest, DerivedKeysValid) {
  Prng prng(44);
  DhGroup group = MakeToyGroup(prng, 48);
  for (int i = 0; i < 20; ++i) {
    DhKeyPair a = DhGenerate(group, prng);
    DhKeyPair b = DhGenerate(group, prng);
    BigInt s = DhSharedSecret(group, a.private_key, b.public_key);
    DesKey key = DhDeriveKey(s);
    EXPECT_TRUE(HasOddParity(key.bytes()));
    EXPECT_FALSE(IsWeakKey(key.bytes()));
  }
}

TEST(DhTest, DeriveKeyDeterministic) {
  BigInt secret = BigInt::MustFromHex("123456789abcdef00fedcba987654321");
  EXPECT_TRUE(DhDeriveKey(secret) == DhDeriveKey(secret));
}

TEST(DhTest, ToyGroupParametersAreValid) {
  Prng prng(45);
  for (int bits : {16, 24, 32, 40}) {
    DhGroup g = MakeToyGroup(prng, bits);
    uint64_t p = g.p.LowU64();
    EXPECT_TRUE(IsPrime64(p));
    EXPECT_TRUE(IsPrime64((p - 1) / 2)) << "safe prime expected";
    EXPECT_EQ(static_cast<int>(g.p.BitLength()), bits);
    // Generator has full order p-1: g^((p-1)/2) != 1 and g^2 != 1.
    uint64_t gen = g.g.LowU64();
    EXPECT_NE(PowMod64(gen, (p - 1) / 2, p), 1u);
  }
}

TEST(DhTest, PrivateKeyInRange) {
  Prng prng(46);
  DhGroup group = MakeToyGroup(prng, 24);
  for (int i = 0; i < 50; ++i) {
    DhKeyPair kp = DhGenerate(group, prng);
    EXPECT_GE(kp.private_key.BitLength(), 2u);
    EXPECT_TRUE(kp.private_key < group.p);
    EXPECT_TRUE(kp.public_key < group.p);
    EXPECT_FALSE(kp.public_key.IsZero());
  }
}

}  // namespace
}  // namespace kcrypto
