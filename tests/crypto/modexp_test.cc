// Property tests for the fast-modexp engine (src/crypto/modexp.*).
//
// Every fast path — sliding-window ModExpCtx::Pow, the fixed-base comb
// table, and the cached-context reuse pattern — is cross-checked against the
// pre-engine binary Montgomery ladder (BigInt::ModExpBinary), the same
// oracle strategy the DES rewrite used with DesKeyRef. Small cases are
// additionally pinned to the independent 64-bit PowMod64.

#include "src/crypto/modexp.h"

#include <gtest/gtest.h>

#include "src/crypto/bigint.h"
#include "src/crypto/dh.h"
#include "src/crypto/primes.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

// Random odd modulus of roughly `bits` bits with the top bit set.
BigInt RandomOddModulus(Prng& prng, size_t bits) {
  kerb::Bytes raw = prng.NextBytes((bits + 7) / 8);
  raw[0] |= 0x80;                // full width
  raw[raw.size() - 1] |= 1;      // odd
  return BigInt::FromBytes(raw);
}

BigInt RandomBelow(Prng& prng, const BigInt& modulus) {
  return BigInt::FromBytes(prng.NextBytes((modulus.BitLength() + 7) / 8)).Mod(modulus);
}

TEST(ModExpCtxTest, CreateFailsClosedOnDegenerateModuli) {
  EXPECT_EQ(ModExpCtx::Create(BigInt(0)).code(), kerb::ErrorCode::kBadFormat);
  EXPECT_EQ(ModExpCtx::Create(BigInt(1)).code(), kerb::ErrorCode::kBadFormat);
  EXPECT_EQ(ModExpCtx::Create(BigInt(2)).code(), kerb::ErrorCode::kBadFormat);
  EXPECT_EQ(ModExpCtx::Create(BigInt(65536)).code(), kerb::ErrorCode::kBadFormat);
  EXPECT_TRUE(ModExpCtx::Create(BigInt(3)).ok());
}

TEST(ModExpCtxTest, MatchesPowMod64OnSmallInputs) {
  Prng prng(0x9e1);
  for (int i = 0; i < 200; ++i) {
    uint64_t mod = (prng.NextU64() >> 1) | 1;
    if (mod <= 2) {
      continue;
    }
    uint64_t base = prng.NextU64();
    uint64_t exp = prng.NextU64() >> (prng.NextBelow(50));
    auto ctx = ModExpCtx::Create(BigInt(mod));
    ASSERT_TRUE(ctx.ok());
    EXPECT_EQ(ctx.value().Pow(BigInt(base), BigInt(exp)).LowU64(),
              PowMod64(base % mod, exp, mod))
        << base << "^" << exp << " mod " << mod;
  }
}

TEST(ModExpCtxTest, WindowedMatchesBinaryOracleAcrossWidths) {
  Prng prng(0x5117);
  for (size_t bits : {33u, 64u, 96u, 160u, 256u, 512u, 777u, 1024u}) {
    BigInt m = RandomOddModulus(prng, bits);
    auto ctx = ModExpCtx::Create(m);
    ASSERT_TRUE(ctx.ok()) << bits;
    for (int i = 0; i < 8; ++i) {
      BigInt base = RandomBelow(prng, m);
      // Exponent width varied independently of the modulus so every window
      // size (2..5) gets exercised.
      BigInt exp = BigInt::FromBytes(prng.NextBytes(1 + prng.NextBelow(bits / 8 + 1)));
      BigInt oracle = BigInt::ModExpBinary(base, exp, m).value();
      EXPECT_EQ(ctx.value().Pow(base, exp).Compare(oracle), 0)
          << bits << "-bit modulus, iteration " << i;
    }
  }
}

TEST(ModExpCtxTest, ExponentEdgeCases) {
  Prng prng(0xed6e);
  BigInt m = RandomOddModulus(prng, 192);
  auto ctx = ModExpCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt base = RandomBelow(prng, m);

  std::vector<BigInt> exponents;
  exponents.push_back(BigInt(0));
  exponents.push_back(BigInt(1));
  exponents.push_back(BigInt(2));
  for (size_t k : {1u, 31u, 32u, 63u, 64u, 65u, 191u, 250u}) {
    exponents.push_back(BigInt(1).ShiftLeft(k));                    // 2^k
    exponents.push_back(BigInt(1).ShiftLeft(k).Sub(BigInt(1)));     // all-ones
  }
  for (const BigInt& exp : exponents) {
    BigInt oracle = BigInt::ModExpBinary(base, exp, m).value();
    EXPECT_EQ(ctx.value().Pow(base, exp).Compare(oracle), 0) << exp.ToHex();
    // Base edge cases under the same exponent.
    EXPECT_EQ(ctx.value().Pow(BigInt(0), exp).Compare(
                  BigInt::ModExpBinary(BigInt(0), exp, m).value()),
              0);
    EXPECT_EQ(ctx.value().Pow(BigInt(1), exp).Compare(BigInt(1)), 0);
    // Unreduced base must behave as its residue.
    EXPECT_EQ(ctx.value().Pow(base.Add(m), exp).Compare(
                  ctx.value().Pow(base, exp)),
              0);
  }
}

TEST(ModExpCtxTest, ContextReuseAcrossCallsIsStateless) {
  // One cached context serving many (base, exponent) pairs must give the
  // same answers as a fresh context per call — the whole point of hoisting
  // the setup out of the loop.
  Prng prng(0xca11);
  BigInt m = RandomOddModulus(prng, 384);
  auto shared_ctx = ModExpCtx::Create(m);
  ASSERT_TRUE(shared_ctx.ok());
  for (int i = 0; i < 20; ++i) {
    BigInt base = RandomBelow(prng, m);
    BigInt exp = RandomBelow(prng, m);
    BigInt fresh = ModExpCtx::Create(m).value().Pow(base, exp);
    EXPECT_EQ(shared_ctx.value().Pow(base, exp).Compare(fresh), 0) << i;
  }
}

TEST(FixedBasePowTest, MatchesBinaryOracle) {
  Prng prng(0xf1eb);
  for (size_t bits : {64u, 192u, 512u}) {
    BigInt m = RandomOddModulus(prng, bits);
    auto ctx = ModExpCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    auto shared = std::make_shared<const ModExpCtx>(std::move(ctx).value());
    BigInt base = RandomBelow(prng, m);
    FixedBasePow fixed(shared, base, bits);
    for (int i = 0; i < 10; ++i) {
      BigInt exp = BigInt::FromBytes(prng.NextBytes(1 + prng.NextBelow(bits / 8)));
      BigInt oracle = BigInt::ModExpBinary(base, exp, m).value();
      EXPECT_EQ(fixed.Pow(exp).Compare(oracle), 0) << bits << "-bit, iter " << i;
    }
  }
}

TEST(FixedBasePowTest, EdgeExponentsAndOffTableFallback) {
  Prng prng(0x0ff7);
  BigInt m = RandomOddModulus(prng, 128);
  auto shared = std::make_shared<const ModExpCtx>(std::move(ModExpCtx::Create(m)).value());
  BigInt base = RandomBelow(prng, m);
  FixedBasePow fixed(shared, base, 128);

  EXPECT_EQ(fixed.Pow(BigInt(0)).Compare(BigInt(1)), 0);
  EXPECT_EQ(fixed.Pow(BigInt(1)).Compare(base.Mod(m)), 0);
  // All-ones at exactly the covered width.
  BigInt all_ones = BigInt(1).ShiftLeft(128).Sub(BigInt(1));
  EXPECT_EQ(fixed.Pow(all_ones).Compare(BigInt::ModExpBinary(base, all_ones, m).value()), 0);
  // Wider than the table: must fall back to the general ladder, same answer.
  BigInt wide = BigInt(1).ShiftLeft(200).Add(BigInt(12345));
  EXPECT_EQ(fixed.Pow(wide).Compare(BigInt::ModExpBinary(base, wide, m).value()), 0);
}

TEST(FixedBasePowTest, DhEngineGeneratorPathMatchesGeneralPath) {
  // The engine the DH layer actually serves logins with: g^x by comb table
  // vs g^x by sliding window vs the oracle, on a real group.
  const DhGroup& group = OakleyGroup1();
  ASSERT_NE(group.engine, nullptr);
  Prng prng(0xd4);
  for (int i = 0; i < 5; ++i) {
    BigInt x = RandomBelow(prng, group.p);
    BigInt by_comb = group.engine->PowG(x);
    BigInt by_window = group.engine->Pow(group.g, x);
    EXPECT_EQ(by_comb.Compare(by_window), 0) << i;
    EXPECT_EQ(by_comb.Compare(BigInt::ModExpBinary(group.g, x, group.p).value()), 0) << i;
  }
}

TEST(DhValidationTest, ValidateDhPublicRejectsDegenerateValues) {
  const DhGroup& group = OakleyGroup1();
  EXPECT_FALSE(ValidateDhPublic(group, BigInt(0)).ok());
  EXPECT_FALSE(ValidateDhPublic(group, BigInt(1)).ok());
  EXPECT_FALSE(ValidateDhPublic(group, group.p.Sub(BigInt(1))).ok());
  EXPECT_FALSE(ValidateDhPublic(group, group.p).ok());
  EXPECT_FALSE(ValidateDhPublic(group, group.p.Add(BigInt(7))).ok());
  EXPECT_TRUE(ValidateDhPublic(group, BigInt(2)).ok());
  EXPECT_TRUE(ValidateDhPublic(group, group.p.Sub(BigInt(2))).ok());
}

}  // namespace
}  // namespace kcrypto
