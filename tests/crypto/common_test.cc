#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/hex.h"
#include "src/common/result.h"

namespace kerb {
namespace {

TEST(BytesTest, ToBytesToStringRoundTrip) {
  std::string s = "kerberos";
  EXPECT_EQ(ToString(ToBytes(s)), s);
  EXPECT_TRUE(ToBytes("").empty());
}

TEST(BytesTest, Concat) {
  Bytes a{1, 2}, b{3}, c{};
  EXPECT_EQ(Concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_EQ(Concat({}), Bytes{});
}

TEST(BytesTest, AppendGrows) {
  Bytes a{1};
  Append(a, Bytes{2, 3});
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
}

TEST(BytesTest, XorBasics) {
  Bytes a{0xff, 0x00, 0xaa};
  Bytes b{0x0f, 0xf0, 0xaa};
  EXPECT_EQ(Xor(a, b), (Bytes{0xf0, 0xf0, 0x00}));
  Bytes c = a;
  XorInto(c, b);
  EXPECT_EQ(c, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual(Bytes{}, Bytes{}));
}

TEST(BytesTest, ContainsSubsequence) {
  Bytes hay{1, 2, 3, 4, 5};
  EXPECT_TRUE(ContainsSubsequence(hay, Bytes{3, 4}));
  EXPECT_TRUE(ContainsSubsequence(hay, Bytes{1}));
  EXPECT_TRUE(ContainsSubsequence(hay, Bytes{1, 2, 3, 4, 5}));
  EXPECT_FALSE(ContainsSubsequence(hay, Bytes{4, 3}));
  EXPECT_FALSE(ContainsSubsequence(hay, Bytes{}));
  EXPECT_FALSE(ContainsSubsequence(hay, Bytes{1, 2, 3, 4, 5, 6}));
}

TEST(BytesTest, SecureWipeZeroes) {
  Bytes b{1, 2, 3, 4};
  SecureWipe(b);
  EXPECT_EQ(b, (Bytes{0, 0, 0, 0}));
}

TEST(HexTest, EncodeDecodeRoundTrip) {
  Bytes data{0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abcdefff");
  auto decoded = HexDecode("0001abcdefff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(HexTest, DecodeAcceptsWhitespaceAndCase) {
  auto r = HexDecode("AB cd\nEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(HexTest, DecodeRejectsBadInput) {
  EXPECT_EQ(HexDecode("xyz").error().code, ErrorCode::kBadFormat);
  EXPECT_EQ(HexDecode("abc").error().code, ErrorCode::kBadFormat);  // odd length
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  Result<int> err(MakeError(ErrorCode::kReplay, "seen before"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kReplay);
  EXPECT_EQ(err.error().ToString(), "REPLAY: seen before");
}

TEST(ResultTest, StatusBasics) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad(MakeError(ErrorCode::kSkew, "clock off"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kSkew);
}

TEST(ResultTest, ErrorCodeNamesAllDistinct) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_STRNE(ErrorCodeName(static_cast<ErrorCode>(i)), "UNKNOWN");
  }
}

}  // namespace
}  // namespace kerb
