#include "src/crypto/bigint.h"

#include <gtest/gtest.h>

#include "src/crypto/dh.h"
#include "src/crypto/primes.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

TEST(BigIntTest, HexRoundTrip) {
  for (const char* hex : {"0", "1", "ff", "100", "deadbeef", "123456789abcdef0123456789abcdef"}) {
    BigInt v = BigInt::MustFromHex(hex);
    EXPECT_EQ(v.ToHex(), hex);
  }
}

TEST(BigIntTest, FromHexRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
  EXPECT_TRUE(BigInt::FromHex("ab cd\n12").ok());  // whitespace permitted
}

TEST(BigIntTest, U64ConstructionAndLow) {
  Prng prng(31);
  for (int i = 0; i < 50; ++i) {
    uint64_t v = prng.NextU64();
    EXPECT_EQ(BigInt(v).LowU64(), v);
  }
  EXPECT_TRUE(BigInt(0).IsZero());
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
}

TEST(BigIntTest, BytesRoundTrip) {
  Prng prng(32);
  for (int i = 0; i < 30; ++i) {
    kerb::Bytes raw = prng.NextBytes(1 + prng.NextBelow(40));
    raw[0] |= 1;  // avoid leading-zero ambiguity
    BigInt v = BigInt::FromBytes(raw);
    EXPECT_EQ(v.ToBytes(), raw);
  }
}

TEST(BigIntTest, AddSubInverse) {
  Prng prng(33);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    BigInt b = BigInt::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    BigInt sum = a.Add(b);
    EXPECT_EQ(sum.Sub(b).Compare(a), 0);
    EXPECT_EQ(sum.Sub(a).Compare(b), 0);
    EXPECT_TRUE(a <= sum);
  }
}

TEST(BigIntTest, MulMatchesU64) {
  Prng prng(34);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = prng.NextU64() >> 33;
    uint64_t b = prng.NextU64() >> 33;
    EXPECT_EQ(BigInt(a).Mul(BigInt(b)).LowU64(), a * b);
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  Prng prng(35);
  for (int i = 0; i < 50; ++i) {
    BigInt v = BigInt::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    size_t s = prng.NextBelow(70);
    EXPECT_EQ(v.ShiftLeft(s).ShiftRight(s).Compare(v), 0);
  }
}

TEST(BigIntTest, ModMatchesU64) {
  Prng prng(36);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = prng.NextU64();
    uint64_t m = 1 + prng.NextBelow(UINT64_MAX - 1);
    EXPECT_EQ(BigInt(a).Mod(BigInt(m)).LowU64(), a % m) << a << " % " << m;
  }
}

TEST(BigIntTest, ModExpMatchesU64Reference) {
  Prng prng(37);
  for (int i = 0; i < 100; ++i) {
    uint64_t base = prng.NextU64();
    uint64_t exp = prng.NextU64() >> 40;
    uint64_t mod = (prng.NextU64() >> 1) | 1;  // odd, < 2^63
    if (mod <= 1) {
      continue;
    }
    EXPECT_EQ(BigInt::ModExp(BigInt(base), BigInt(exp), BigInt(mod)).value().LowU64(),
              PowMod64(base % mod, exp, mod))
        << base << "^" << exp << " mod " << mod;
  }
}

TEST(BigIntTest, FermatLittleTheoremOnOakleyPrime) {
  // 2^(p-1) ≡ 1 (mod p) for the 768-bit Oakley prime — exercises the full
  // Montgomery pipeline at production width.
  const BigInt& p = OakleyGroup1().p;
  BigInt result = BigInt::ModExp(BigInt(2), p.Sub(BigInt(1)), p).value();
  EXPECT_EQ(result.Compare(BigInt(1)), 0);
}

TEST(BigIntTest, ModExpEdgeCases) {
  BigInt p = BigInt(1009);  // odd prime
  EXPECT_EQ(BigInt::ModExp(BigInt(0), BigInt(5), p).value().LowU64(), 0u);
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(0), p).value().LowU64(), 1u);
  EXPECT_EQ(BigInt::ModExp(BigInt(1), BigInt(123456), p).value().LowU64(), 1u);
  // Base larger than modulus must be reduced first.
  EXPECT_EQ(BigInt::ModExp(BigInt(1009 * 3 + 7), BigInt(2), p).value().LowU64(),
            (7 * 7) % 1009u);
}

TEST(BigIntTest, ModExpRejectsDegenerateModulus) {
  // Fail-closed, not assert: degenerate DH parameters are hostile input.
  for (auto fn : {&BigInt::ModExp, &BigInt::ModExpBinary}) {
    EXPECT_EQ(fn(BigInt(3), BigInt(5), BigInt(0)).code(), kerb::ErrorCode::kBadFormat);
    EXPECT_EQ(fn(BigInt(3), BigInt(5), BigInt(1)).code(), kerb::ErrorCode::kBadFormat);
    EXPECT_EQ(fn(BigInt(3), BigInt(5), BigInt(1024)).code(), kerb::ErrorCode::kBadFormat);
  }
}

TEST(BigIntTest, KnownValueModExpAgainstExternalReference) {
  // Reference values computed with an independent big-number implementation
  // (CPython pow()).
  const BigInt& p = OakleyGroup1().p;
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(1000), p).value().ToHex(),
            "cf89aef7cc8b160c1d48367756a6978f82c4f2d1b47b45497db7dfdfb081193644b0baa5121beb1b"
            "751abb309f12d02a4067fb6a6f9ed01511b6aecc55f1f14d3e14c29dcb5842ca93f5c7efc3f0aebc"
            "aa31e3e5a92c4c79811c3ae7551a2c0b");
  EXPECT_EQ(BigInt::ModExp(BigInt(0xdeadbeefcafebabeull), BigInt(0x123456789abcdefull), p)
                .value()
                .ToHex(),
            "39d24409927f64d6574a14b6fc3ee96a94ab0eef0ae9bd21985b9601f5633f833a3f7511b358cd44"
            "d21f9241db9e0eb3f36a5ef357178b1e2cfbd0a6259a1ae082f50182f968b34ef7bc529f6753c77b"
            "03e6ed8710615cc6c9dfef11b09472a5");
}

TEST(BigIntTest, KnownValueMulAndModAgainstExternalReference) {
  BigInt a = BigInt::MustFromHex("123456789abcdef0fedcba9876543210");
  BigInt b = BigInt::MustFromHex("feedfacecafef00ddeadbeef12345678");
  EXPECT_EQ(a.Mul(b).ToHex(),
            "1220da15882d6f717aff74bbcf3a6a896cdc90458596a1d2e80340c70b88d780");
  EXPECT_EQ(a.Mod(BigInt(0xfff1)).ToHex(), "351c");
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == BigInt(5));
  BigInt big = BigInt::MustFromHex("1ffffffffffffffffff");
  EXPECT_TRUE(b < big);
}

}  // namespace
}  // namespace kcrypto
