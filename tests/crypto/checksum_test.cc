#include "src/crypto/checksum.h"

#include <gtest/gtest.h>

#include "src/crypto/crc32.h"
#include "src/crypto/md4.h"
#include "src/crypto/modes.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

using kerb::Bytes;

class ChecksumParamTest : public ::testing::TestWithParam<ChecksumType> {};

TEST_P(ChecksumParamTest, ComputeVerifyRoundTrip) {
  Prng prng(21);
  DesKey key = prng.NextDesKey();
  for (int i = 0; i < 20; ++i) {
    Bytes data = prng.NextBytes(prng.NextBelow(200));
    Bytes sum = ComputeChecksum(GetParam(), data, key);
    EXPECT_EQ(sum.size(), ChecksumSize(GetParam()) == 16 && GetParam() == ChecksumType::kMd4Des
                              ? 16u
                              : ChecksumSize(GetParam()));
    EXPECT_TRUE(VerifyChecksum(GetParam(), data, sum, key));
  }
}

TEST_P(ChecksumParamTest, DetectsSingleBitFlips) {
  Prng prng(22);
  DesKey key = prng.NextDesKey();
  Bytes data = prng.NextBytes(64);
  Bytes sum = ComputeChecksum(GetParam(), data, key);
  for (size_t i = 0; i < data.size(); ++i) {
    Bytes tweaked = data;
    tweaked[i] ^= 0x80;
    EXPECT_FALSE(VerifyChecksum(GetParam(), tweaked, sum, key));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ChecksumParamTest,
                         ::testing::Values(ChecksumType::kCrc32, ChecksumType::kMd4,
                                           ChecksumType::kMd4Des),
                         [](const auto& param_info) {
                           std::string name = ChecksumTypeName(param_info.param);
                           if (name == "crc32") {
                             return std::string("Crc32");
                           }
                           return name == "rsa-md4" ? std::string("Md4") : std::string("Md4Des");
                         });

TEST(ChecksumTest, Classification) {
  // The paper: the meaningful property is collision-proofness, not "is it
  // encrypted".
  EXPECT_FALSE(IsCollisionProof(ChecksumType::kCrc32));
  EXPECT_TRUE(IsCollisionProof(ChecksumType::kMd4));
  EXPECT_TRUE(IsCollisionProof(ChecksumType::kMd4Des));
  EXPECT_FALSE(IsKeyed(ChecksumType::kCrc32));
  EXPECT_FALSE(IsKeyed(ChecksumType::kMd4));
  EXPECT_TRUE(IsKeyed(ChecksumType::kMd4Des));
}

TEST(ChecksumTest, Crc32ChecksumIsForgeable) {
  // End-to-end demonstration that the CRC-32 checksum type offers no
  // integrity against an adversary who controls part of the message.
  Prng prng(23);
  Bytes original = prng.NextBytes(40);
  Bytes sum = ComputeChecksum(ChecksumType::kCrc32, original);
  uint32_t target = static_cast<uint32_t>(sum[0]) | (static_cast<uint32_t>(sum[1]) << 8) |
                    (static_cast<uint32_t>(sum[2]) << 16) | (static_cast<uint32_t>(sum[3]) << 24);

  Bytes substitute = prng.NextBytes(40);  // attacker's replacement content
  auto patch = ForgePatch(substitute, target);
  kerb::Append(substitute, kerb::BytesView(patch.data(), patch.size()));
  EXPECT_TRUE(VerifyChecksum(ChecksumType::kCrc32, substitute, sum));
}

TEST(ChecksumTest, Md4DesDependsOnKey) {
  Prng prng(24);
  DesKey k1 = prng.NextDesKey();
  DesKey k2 = prng.NextDesKey();
  Bytes data = prng.NextBytes(32);
  EXPECT_NE(ComputeChecksum(ChecksumType::kMd4Des, data, k1),
            ComputeChecksum(ChecksumType::kMd4Des, data, k2));
}

TEST(ChecksumTest, Md4DesUsesVariantKeyNotMessageKey) {
  // The checksum must not be a raw encryption under the session key, or it
  // could be confused with message ciphertext.
  Prng prng(25);
  DesKey key = prng.NextDesKey();
  Bytes data = prng.NextBytes(16);
  Md4Digest digest = Md4(data);
  Bytes with_session_key =
      EncryptCbc(key, kZeroIv, kerb::BytesView(digest.data(), digest.size()));
  EXPECT_NE(ComputeChecksum(ChecksumType::kMd4Des, data, key), with_session_key);
}

TEST(ChecksumTest, SizesAndNames) {
  EXPECT_EQ(ChecksumSize(ChecksumType::kCrc32), 4u);
  EXPECT_EQ(ChecksumSize(ChecksumType::kMd4), 16u);
  EXPECT_EQ(ChecksumSize(ChecksumType::kMd4Des), 16u);
  EXPECT_STREQ(ChecksumTypeName(ChecksumType::kCrc32), "crc32");
  EXPECT_STREQ(ChecksumTypeName(ChecksumType::kMd4), "rsa-md4");
  EXPECT_STREQ(ChecksumTypeName(ChecksumType::kMd4Des), "rsa-md4-des");
}

}  // namespace
}  // namespace kcrypto
