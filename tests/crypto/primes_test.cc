#include "src/crypto/primes.h"

#include <gtest/gtest.h>

namespace kcrypto {
namespace {

TEST(PrimesTest, SmallKnownValues) {
  EXPECT_FALSE(IsPrime64(0));
  EXPECT_FALSE(IsPrime64(1));
  EXPECT_TRUE(IsPrime64(2));
  EXPECT_TRUE(IsPrime64(3));
  EXPECT_FALSE(IsPrime64(4));
  EXPECT_TRUE(IsPrime64(97));
  EXPECT_FALSE(IsPrime64(91));  // 7 * 13
}

TEST(PrimesTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes that fool weak tests.
  for (uint64_t n : {561ull, 1105ull, 1729ull, 2465ull, 2821ull, 6601ull, 8911ull}) {
    EXPECT_FALSE(IsPrime64(n)) << n;
  }
}

TEST(PrimesTest, LargeKnownPrimes) {
  EXPECT_TRUE(IsPrime64(2147483647ull));            // 2^31 - 1 (Mersenne)
  EXPECT_TRUE(IsPrime64(9223372036854775783ull));   // largest prime < 2^63
  EXPECT_FALSE(IsPrime64(9223372036854775807ull));  // 2^63 - 1 = 7*73*127*337*92737*649657
}

TEST(PrimesTest, MulModNoOverflow) {
  uint64_t big = 0xfffffffffffffff0ull;
  EXPECT_EQ(MulMod64(big, big, 0xfffffffffffffffbull),
            static_cast<uint64_t>((static_cast<__uint128_t>(big) * big) % 0xfffffffffffffffbull));
}

TEST(PrimesTest, PowModKnown) {
  EXPECT_EQ(PowMod64(2, 10, 1000), 24u);
  EXPECT_EQ(PowMod64(3, 0, 7), 1u);
  EXPECT_EQ(PowMod64(0, 5, 7), 0u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(PowMod64(12345, 2147483646ull, 2147483647ull), 1u);
}

TEST(PrimesTest, RandomPrimeHasRequestedBits) {
  Prng prng(61);
  for (int bits : {8, 16, 24, 32, 48, 63}) {
    uint64_t p = RandomPrime64(prng, bits);
    EXPECT_TRUE(IsPrime64(p));
    EXPECT_EQ(64 - __builtin_clzll(p), bits);
  }
}

TEST(PrimesTest, SafePrimeStructure) {
  Prng prng(62);
  for (int bits : {10, 16, 24, 32}) {
    uint64_t p = RandomSafePrime64(prng, bits);
    EXPECT_TRUE(IsPrime64(p));
    EXPECT_TRUE(IsPrime64((p - 1) / 2));
    EXPECT_EQ(64 - __builtin_clzll(p), bits);
  }
}

TEST(PrimesTest, GeneratorHasFullOrder) {
  Prng prng(63);
  uint64_t p = RandomSafePrime64(prng, 24);
  uint64_t g = FindGenerator64(p, prng);
  uint64_t q = (p - 1) / 2;
  EXPECT_NE(PowMod64(g, q, p), 1u);
  EXPECT_NE(PowMod64(g, 2, p), 1u);
  EXPECT_EQ(PowMod64(g, p - 1, p), 1u);
}

}  // namespace
}  // namespace kcrypto
