#include "src/crypto/md4.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

std::string Md4Hex(std::string_view s) {
  Md4Digest d = Md4(kerb::ToBytes(s));
  return kerb::HexEncode(kerb::BytesView(d.data(), d.size()));
}

TEST(Md4Test, Rfc1320Vectors) {
  EXPECT_EQ(Md4Hex(""), "31d6cfe0d16ae931b73c59d7e0c089c0");
}

TEST(Md4Test, Rfc1320VectorsFull) {
  EXPECT_EQ(Md4Hex(""), "31d6cfe0d16ae931b73c59d7e0c089c0");
  EXPECT_EQ(Md4Hex("a"), "bde52cb31de33e46245e05fbdbd6fb24");
  EXPECT_EQ(Md4Hex("abc"), "a448017aaf21d8525fc10ae87aa6729d");
  EXPECT_EQ(Md4Hex("message digest"), "d9130a8164549fe818874806e1c7014b");
  EXPECT_EQ(Md4Hex("abcdefghijklmnopqrstuvwxyz"), "d79e1c308aa5bbcdeea8ed63df412da9");
  EXPECT_EQ(Md4Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "043f8582f241db351ce627e153e7f0e4");
  EXPECT_EQ(
      Md4Hex("12345678901234567890123456789012345678901234567890123456789012345678901234567890"),
      "e33b4ddc9c38f2199c3e7b164fcc0536");
}

TEST(Md4Test, IncrementalMatchesOneShot) {
  Prng prng(4);
  kerb::Bytes data = prng.NextBytes(1777);
  for (size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 1000ul, 1777ul}) {
    Md4State state;
    state.Update(kerb::BytesView(data.data(), split));
    state.Update(kerb::BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(state.Final(), Md4(data)) << "split=" << split;
  }
}

TEST(Md4Test, BoundarySizes) {
  // Exercise the padding edge cases around the 56- and 64-byte boundaries.
  Prng prng(5);
  for (size_t len : {55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul, 120ul, 128ul}) {
    kerb::Bytes data = prng.NextBytes(len);
    Md4Digest a = Md4(data);
    Md4State st;
    st.Update(data);
    EXPECT_EQ(st.Final(), a) << len;
  }
}

TEST(Md4Test, SingleBitChangesDigest) {
  kerb::Bytes data = kerb::ToBytes("an authenticator linking ticket to request");
  Md4Digest base = Md4(data);
  for (size_t i = 0; i < data.size(); ++i) {
    kerb::Bytes tweaked = data;
    tweaked[i] ^= 1;
    EXPECT_NE(Md4(tweaked), base);
  }
}

}  // namespace
}  // namespace kcrypto
