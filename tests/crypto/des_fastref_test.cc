// Cross-validation of the table-driven DES fast path (des.h) against the
// bit-loop reference oracle (des_ref.h), plus FIPS 46 known-answer vectors
// pinned against both. A bug in either implementation's tables, schedule, or
// round structure shows up here as a disagreement.

#include <gtest/gtest.h>

#include "src/crypto/des.h"
#include "src/crypto/des_ref.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

struct KnownAnswer {
  uint64_t key;
  uint64_t plaintext;
  uint64_t ciphertext;
};

// Published single-block vectors: the classic worked example, the
// zero-ciphertext vector, and the three blocks of the FIPS 81 ECB example
// ("Now is the time for all " under 0123456789abcdef).
constexpr KnownAnswer kVectors[] = {
    {0x133457799BBCDFF1ull, 0x0123456789ABCDEFull, 0x85E813540F0AB405ull},
    {0x0E329232EA6D0D73ull, 0x8787878787878787ull, 0x0000000000000000ull},
    {0x0123456789ABCDEFull, 0x4E6F772069732074ull, 0x3FA40E8A984D4815ull},
    {0x0123456789ABCDEFull, 0x68652074696D6520ull, 0x6A271787AB8883F9ull},
    {0x0123456789ABCDEFull, 0x666F7220616C6C20ull, 0x893D51EC4B563B53ull},
};

TEST(DesFastRefTest, FipsKnownAnswersFastPath) {
  for (const auto& v : kVectors) {
    DesKey key(v.key);
    EXPECT_EQ(key.EncryptBlock(v.plaintext), v.ciphertext) << std::hex << v.key;
    EXPECT_EQ(key.DecryptBlock(v.ciphertext), v.plaintext) << std::hex << v.key;
  }
}

TEST(DesFastRefTest, FipsKnownAnswersReferencePath) {
  for (const auto& v : kVectors) {
    DesKeyRef key(v.key);
    EXPECT_EQ(key.EncryptBlock(v.plaintext), v.ciphertext) << std::hex << v.key;
    EXPECT_EQ(key.DecryptBlock(v.ciphertext), v.plaintext) << std::hex << v.key;
  }
}

TEST(DesFastRefTest, RandomizedCrossCheckBothDirections) {
  // ≥10k randomized (key, block) pairs; every pair goes through both
  // implementations in both directions and must agree bit for bit. This is
  // the contract that lets the table-driven path replace the reference.
  Prng prng(20250806);
  for (int i = 0; i < 12000; ++i) {
    uint64_t k = prng.NextU64();
    uint64_t p = prng.NextU64();
    DesKey fast(k);
    DesKeyRef ref(k);
    uint64_t ct_fast = fast.EncryptBlock(p);
    ASSERT_EQ(ct_fast, ref.EncryptBlock(p)) << "encrypt divergence at pair " << i;
    ASSERT_EQ(fast.DecryptBlock(p), ref.DecryptBlock(p))
        << "decrypt divergence at pair " << i;
    ASSERT_EQ(fast.DecryptBlock(ct_fast), p) << "round-trip failure at pair " << i;
  }
}

TEST(DesFastRefTest, CrossCheckOnWeakAndSemiWeakKeys) {
  // The degenerate key schedules are where a table-driven PC-1/PC-2 bug
  // would hide: all subkeys equal (weak) or alternating (semi-weak).
  constexpr uint64_t kWeakish[] = {
      0x0101010101010101ull, 0xfefefefefefefefeull, 0x1f1f1f1f0e0e0e0eull,
      0xe0e0e0e0f1f1f1f1ull, 0x011f011f010e010eull, 0x1f011f010e010e01ull,
      0x01e001e001f101f1ull, 0xe001e001f101f101ull, 0x01fe01fe01fe01feull,
      0xfe01fe01fe01fe01ull, 0x1fe01fe00ef10ef1ull, 0xe01fe01ff10ef10eull,
      0x1ffe1ffe0efe0efeull, 0xfe1ffe1ffe0efe0eull, 0xe0fee0fef1fef1feull,
      0xfee0fee0fef1fef1ull,
  };
  Prng prng(99);
  for (uint64_t k : kWeakish) {
    EXPECT_TRUE(IsWeakKey(U64ToBlock(k))) << std::hex << k;
    DesKey fast(k);
    DesKeyRef ref(k);
    for (int i = 0; i < 16; ++i) {
      uint64_t p = prng.NextU64();
      EXPECT_EQ(fast.EncryptBlock(p), ref.EncryptBlock(p)) << std::hex << k;
      EXPECT_EQ(fast.DecryptBlock(p), ref.DecryptBlock(p)) << std::hex << k;
    }
  }
  // And the boundary patterns a byte-indexed permutation can get wrong.
  for (uint64_t k : {0x0ull, ~0x0ull, 0x8000000000000001ull, 0x0102040810204080ull}) {
    DesKey fast(k);
    DesKeyRef ref(k);
    for (uint64_t p : {0x0ull, ~0x0ull, 0x1ull, 0x8000000000000000ull}) {
      EXPECT_EQ(fast.EncryptBlock(p), ref.EncryptBlock(p)) << std::hex << k << "/" << p;
    }
  }
}

TEST(DesFastRefTest, ComplementationPropertyBothPaths) {
  // DES(~k, ~p) == ~DES(k, p) must hold for both implementations.
  Prng prng(7);
  for (int i = 0; i < 25; ++i) {
    uint64_t k = prng.NextU64();
    uint64_t p = prng.NextU64();
    EXPECT_EQ(DesKey(~k).EncryptBlock(~p), ~DesKey(k).EncryptBlock(p));
    EXPECT_EQ(DesKeyRef(~k).EncryptBlock(~p), ~DesKeyRef(k).EncryptBlock(p));
  }
}

TEST(DesFastRefTest, LoadStoreU64BERoundTrip) {
  Prng prng(17);
  for (int i = 0; i < 100; ++i) {
    uint64_t v = prng.NextU64();
    uint8_t buf[8];
    StoreU64BE(buf, v);
    EXPECT_EQ(LoadU64BE(buf), v);
    EXPECT_EQ(buf[0], static_cast<uint8_t>(v >> 56));  // big-endian per FIPS
  }
}

}  // namespace
}  // namespace kcrypto
