#include "src/crypto/dlog.h"

#include <gtest/gtest.h>

#include "src/crypto/dh.h"
#include "src/crypto/primes.h"

namespace kcrypto {
namespace {

TEST(DlogTest, BsgsSmallKnownCase) {
  // 3^x = 13 (mod 17): 3^4 = 81 = 13 (mod 17).
  auto x = DlogBabyStepGiantStep(3, 13, 17);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(PowMod64(3, *x, 17), 13u);
}

TEST(DlogTest, BsgsRecoversDhPrivateKeys) {
  Prng prng(51);
  for (int bits : {16, 20, 24, 28, 32}) {
    DhGroup group = MakeToyGroup(prng, bits);
    uint64_t p = group.p.LowU64();
    uint64_t g = group.g.LowU64();
    DhKeyPair victim = DhGenerate(group, prng);
    uint64_t pub = victim.public_key.LowU64();
    auto x = DlogBabyStepGiantStep(g, pub, p);
    ASSERT_TRUE(x.has_value()) << "bits=" << bits;
    // Any exponent mapping to the same public key breaks the exchange.
    EXPECT_EQ(PowMod64(g, *x, p), pub);
  }
}

TEST(DlogTest, BsgsBreakRecoversSharedSecret) {
  // Full attack: eavesdrop both public values, solve one dlog, compute the
  // shared secret exactly as the victim would.
  Prng prng(52);
  DhGroup group = MakeToyGroup(prng, 30);
  uint64_t p = group.p.LowU64();
  uint64_t g = group.g.LowU64();
  DhKeyPair alice = DhGenerate(group, prng);
  DhKeyPair bob = DhGenerate(group, prng);
  BigInt real_secret = DhSharedSecret(group, alice.private_key, bob.public_key);

  auto x = DlogBabyStepGiantStep(g, alice.public_key.LowU64(), p);
  ASSERT_TRUE(x.has_value());
  uint64_t recovered = PowMod64(bob.public_key.LowU64(), *x, p);
  EXPECT_EQ(recovered, real_secret.LowU64());
}

TEST(DlogTest, PollardRhoRecoversExponent) {
  Prng prng(53);
  for (int bits : {20, 26, 32}) {
    DhGroup group = MakeToyGroup(prng, bits);
    uint64_t p = group.p.LowU64();
    uint64_t g = group.g.LowU64();
    uint64_t secret = 2 + prng.NextBelow(p - 4);
    uint64_t target = PowMod64(g, secret, p);
    auto x = DlogPollardRho(g, target, p, prng);
    ASSERT_TRUE(x.has_value()) << "bits=" << bits;
    EXPECT_EQ(PowMod64(g, *x, p), target);
  }
}

TEST(DlogTest, SolversAgreeOnRandomInstances) {
  // Cross-check: BSGS (deterministic, flat-table) and Pollard rho (Brent
  // cycle detection) must both recover a working exponent for the same
  // random instances — any disagreement means one walk or table is broken.
  Prng prng(55);
  for (int trial = 0; trial < 12; ++trial) {
    int bits = 18 + 2 * (trial % 6);  // 18..28 bit moduli
    DhGroup group = MakeToyGroup(prng, bits);
    uint64_t p = group.p.LowU64();
    uint64_t g = group.g.LowU64();
    uint64_t secret = 2 + prng.NextBelow(p - 4);
    uint64_t target = PowMod64(g, secret, p);
    auto bsgs = DlogBabyStepGiantStep(g, target, p);
    auto rho = DlogPollardRho(g, target, p, prng);
    ASSERT_TRUE(bsgs.has_value()) << "bsgs failed: bits=" << bits << " p=" << p;
    ASSERT_TRUE(rho.has_value()) << "rho failed: bits=" << bits << " p=" << p;
    EXPECT_EQ(PowMod64(g, *bsgs, p), target);
    EXPECT_EQ(PowMod64(g, *rho, p), target);
  }
}

TEST(DlogTest, IdentityTargetIsZeroExponent) {
  Prng prng(54);
  DhGroup group = MakeToyGroup(prng, 20);
  auto x = DlogPollardRho(group.g.LowU64(), 1, group.p.LowU64(), prng);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x % (group.p.LowU64() - 1), 0u);
}

}  // namespace
}  // namespace kcrypto
