// Cross-validation of the bitsliced DES engine (des_slice.h) against the
// bit-loop reference oracle (des_ref.h) — the same anchoring the table-driven
// fast path gets in des_fastref_test.cc. The bitsliced engine's novel failure
// modes all have dedicated coverage: per-lane key independence (every lane a
// different key), partial batches (<64 lanes), the broadcast load, the
// wire-form chaining helpers (Xor/Select), and the weak keys whose schedules
// are degenerate.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/crypto/des.h"
#include "src/crypto/des_ref.h"
#include "src/crypto/des_slice.h"
#include "src/crypto/modes.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

struct KnownAnswer {
  uint64_t key;
  uint64_t plaintext;
  uint64_t ciphertext;
};

// Same published vectors des_fastref_test.cc pins: the classic worked
// example, the zero-ciphertext vector, and the FIPS 81 ECB example blocks.
constexpr KnownAnswer kVectors[] = {
    {0x133457799BBCDFF1ull, 0x0123456789ABCDEFull, 0x85E813540F0AB405ull},
    {0x0E329232EA6D0D73ull, 0x8787878787878787ull, 0x0000000000000000ull},
    {0x0123456789ABCDEFull, 0x4E6F772069732074ull, 0x3FA40E8A984D4815ull},
    {0x0123456789ABCDEFull, 0x68652074696D6520ull, 0x6A271787AB8883F9ull},
    {0x0123456789ABCDEFull, 0x666F7220616C6C20ull, 0x893D51EC4B563B53ull},
};

TEST(DesSliceTest, FipsKnownAnswersEveryLanePosition) {
  // Each vector is placed in every lane of an otherwise-random batch, so a
  // lane-ordering or transpose bug cannot hide at any position.
  Prng prng(0x51ce);
  for (const auto& v : kVectors) {
    DesBlock keys[kDesSliceLanes];
    DesBlock in[kDesSliceLanes];
    uint64_t want[kDesSliceLanes];
    for (size_t j = 0; j < kDesSliceLanes; ++j) {
      const uint64_t kv = prng.NextU64();
      DesKeyRef ref(kv);
      keys[j] = U64ToBlock(kv);
      uint64_t pt = prng.NextU64();
      in[j] = U64ToBlock(pt);
      want[j] = ref.EncryptBlock(pt);
    }
    for (size_t lane = 0; lane < kDesSliceLanes; lane += 7) {
      DesBlock k = keys[lane];
      DesBlock p = in[lane];
      keys[lane] = U64ToBlock(v.key);
      in[lane] = U64ToBlock(v.plaintext);
      uint64_t w = want[lane];
      want[lane] = v.ciphertext;

      DesBlock out[kDesSliceLanes];
      DesSliceEcbEncrypt(keys, in, out, kDesSliceLanes);
      for (size_t j = 0; j < kDesSliceLanes; ++j) {
        EXPECT_EQ(BlockToU64(out[j]), want[j]) << "lane " << j;
      }

      keys[lane] = k;
      in[lane] = p;
      want[lane] = w;
    }
  }
}

TEST(DesSliceTest, RandomSweepAgainstReferenceBothDirections) {
  // 64 batches x 64 lanes = 4096 random (key, block) pairs, every lane a
  // different key, checked against DesKeyRef in both directions.
  Prng prng(0xde551);
  for (int batch = 0; batch < 64; ++batch) {
    DesBlock keys[kDesSliceLanes];
    DesBlock in[kDesSliceLanes];
    for (size_t j = 0; j < kDesSliceLanes; ++j) {
      keys[j] = U64ToBlock(prng.NextU64());
      in[j] = U64ToBlock(prng.NextU64());
    }
    DesBlock enc[kDesSliceLanes];
    DesSliceEcbEncrypt(keys, in, enc, kDesSliceLanes);
    DesBlock dec[kDesSliceLanes];
    DesSliceEcbDecrypt(keys, enc, dec, kDesSliceLanes);
    for (size_t j = 0; j < kDesSliceLanes; ++j) {
      DesKeyRef ref(BlockToU64(keys[j]));
      EXPECT_EQ(BlockToU64(enc[j]), ref.EncryptBlock(BlockToU64(in[j]))) << "lane " << j;
      EXPECT_EQ(dec[j], in[j]) << "lane " << j;
    }
  }
}

TEST(DesSliceTest, PartialBatchTails) {
  // Every batch size from 1 to 64 must fill exactly its lanes and leave the
  // caller's remaining output untouched.
  Prng prng(0x7a11);
  for (size_t n = 1; n <= kDesSliceLanes; ++n) {
    DesBlock keys[kDesSliceLanes];
    DesBlock in[kDesSliceLanes];
    DesBlock out[kDesSliceLanes];
    for (size_t j = 0; j < kDesSliceLanes; ++j) {
      keys[j] = U64ToBlock(prng.NextU64());
      in[j] = U64ToBlock(prng.NextU64());
      out[j] = U64ToBlock(0xA5A5A5A5A5A5A5A5ull);
    }
    DesSliceEcbEncrypt(keys, in, out, n);
    for (size_t j = 0; j < n; ++j) {
      DesKeyRef ref(BlockToU64(keys[j]));
      EXPECT_EQ(BlockToU64(out[j]), ref.EncryptBlock(BlockToU64(in[j])))
          << "n=" << n << " lane " << j;
    }
    for (size_t j = n; j < kDesSliceLanes; ++j) {
      EXPECT_EQ(BlockToU64(out[j]), 0xA5A5A5A5A5A5A5A5ull) << "n=" << n << " lane " << j;
    }
  }
}

TEST(DesSliceTest, WeakAndSemiWeakKeys) {
  // The degenerate schedules (all-equal subkeys, palindromic pairs) exercise
  // the key-wiring differently from random keys; check all sixteen at once,
  // including the E(E(x)) == x involution property of the four weak keys.
  constexpr uint64_t kWeak[] = {
      0x0101010101010101ull, 0xfefefefefefefefeull, 0x1f1f1f1f0e0e0e0eull,
      0xe0e0e0e0f1f1f1f1ull, 0x011f011f010e010eull, 0x1f011f010e010e01ull,
      0x01e001e001f101f1ull, 0xe001e001f101f101ull, 0x01fe01fe01fe01feull,
      0xfe01fe01fe01fe01ull, 0x1fe01fe00ef10ef1ull, 0xe01fe01ff10ef10eull,
      0x1ffe1ffe0efe0efeull, 0xfe1ffe1ffe0efe0eull, 0xe0fee0fef1fef1feull,
      0xfee0fee0fef1fef1ull,
  };
  constexpr size_t kN = sizeof(kWeak) / sizeof(kWeak[0]);
  DesBlock keys[kN];
  DesBlock in[kN];
  for (size_t j = 0; j < kN; ++j) {
    keys[j] = U64ToBlock(kWeak[j]);
    in[j] = U64ToBlock(0x0123456789ABCDEFull * (j + 1));
  }
  DesBlock once[kN];
  DesSliceEcbEncrypt(keys, in, once, kN);
  DesBlock twice[kN];
  DesSliceEcbEncrypt(keys, once, twice, kN);
  for (size_t j = 0; j < kN; ++j) {
    DesKeyRef ref(kWeak[j]);
    EXPECT_EQ(BlockToU64(once[j]), ref.EncryptBlock(BlockToU64(in[j]))) << "key " << j;
    if (j < 4) {
      EXPECT_EQ(twice[j], in[j]) << "weak key " << j << " not an involution";
    }
  }
}

TEST(DesSliceTest, BroadcastMatchesPerLaneLoad) {
  // Trying 64 keys against one ciphertext — the dictionary-sweep shape.
  Prng prng(0xb04d);
  const uint64_t block = prng.NextU64();
  DesBlock keys[kDesSliceLanes];
  for (size_t j = 0; j < kDesSliceLanes; ++j) {
    keys[j] = U64ToBlock(prng.NextU64());
  }
  DesSliceKeys ks;
  DesSliceSchedule(keys, kDesSliceLanes, ks);
  DesSliceState st;
  DesSliceBroadcast(block, st);
  DesSliceDecrypt(ks, st);
  uint64_t out[kDesSliceLanes];
  DesSliceStore(st, out, kDesSliceLanes);
  for (size_t j = 0; j < kDesSliceLanes; ++j) {
    DesKeyRef ref(BlockToU64(keys[j]));
    EXPECT_EQ(out[j], ref.DecryptBlock(block)) << "lane " << j;
  }
}

TEST(DesSliceTest, WireXorAndSelectMatchScalarCbcMac) {
  // Variable-length CBC-MAC in wire form — the string-to-key inner loop:
  // lane j MACs (j % 17) + 1 blocks; frozen lanes must keep their chain
  // bit-exact while their neighbours keep encrypting.
  Prng prng(0xcbc);
  constexpr size_t kN = kDesSliceLanes;
  constexpr size_t kMaxBlocks = 17;
  std::vector<DesBlock> keys(kN);
  std::vector<uint64_t> iv(kN);
  std::vector<std::array<uint64_t, kMaxBlocks>> data(kN);
  std::vector<size_t> nblocks(kN);
  for (size_t j = 0; j < kN; ++j) {
    keys[j] = U64ToBlock(prng.NextU64());
    iv[j] = prng.NextU64();
    nblocks[j] = (j % kMaxBlocks) + 1;
    for (size_t b = 0; b < kMaxBlocks; ++b) {
      data[j][b] = prng.NextU64();
    }
  }
  DesSliceKeys ks;
  DesSliceSchedule(keys.data(), kN, ks);
  DesSliceState chain;
  DesSliceLoad(iv.data(), kN, chain);
  for (size_t b = 0; b < kMaxBlocks; ++b) {
    uint64_t mb[kN];
    DesSliceMask mask;
    for (size_t j = 0; j < kN; ++j) {
      mb[j] = b < nblocks[j] ? data[j][b] : 0;
      if (b < nblocks[j]) {
        mask.Set(j);
      }
    }
    DesSliceState x = chain;
    DesSliceState m;
    DesSliceLoad(mb, kN, m);
    DesSliceXor(m, x);
    DesSliceEncrypt(ks, x);
    DesSliceSelect(mask, x, chain);
  }
  uint64_t mac[kN];
  DesSliceStore(chain, mac, kN);
  for (size_t j = 0; j < kN; ++j) {
    DesKey key(keys[j]);
    EXPECT_EQ(mac[j], CbcMacBlocks(key, iv[j], data[j].data(), nblocks[j])) << "lane " << j;
  }
}

}  // namespace
}  // namespace kcrypto
