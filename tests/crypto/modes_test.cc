#include "src/crypto/modes.h"

#include <gtest/gtest.h>

#include "src/common/hex.h"
#include "src/crypto/prng.h"

namespace kcrypto {
namespace {

using kerb::Bytes;
using kerb::MustHexDecode;

const DesKey kFipsKey(0x0123456789abcdefull);
const DesBlock kFipsIv = U64ToBlock(0x1234567890abcdefull);
// "Now is the time for all " — the FIPS 81 sample plaintext.
const char* kFipsPlain = "4e6f77206973207468652074696d6520666f7220616c6c20";

TEST(ModesTest, Fips81EcbVector) {
  Bytes ct = EncryptEcb(kFipsKey, MustHexDecode(kFipsPlain));
  EXPECT_EQ(kerb::HexEncode(ct), "3fa40e8a984d48156a271787ab8883f9893d51ec4b563b53");
  EXPECT_EQ(DecryptEcb(kFipsKey, ct), MustHexDecode(kFipsPlain));
}

TEST(ModesTest, Fips81CbcVector) {
  Bytes ct = EncryptCbc(kFipsKey, kFipsIv, MustHexDecode(kFipsPlain));
  EXPECT_EQ(kerb::HexEncode(ct), "e5c7cdde872bf27c43e934008c389c0f683788499a7c05f6");
  EXPECT_EQ(DecryptCbc(kFipsKey, kFipsIv, ct), MustHexDecode(kFipsPlain));
}

TEST(ModesTest, PcbcRoundTrip) {
  Prng prng(9);
  for (int i = 0; i < 50; ++i) {
    DesKey key = prng.NextDesKey();
    DesBlock iv = U64ToBlock(prng.NextU64());
    Bytes pt = prng.NextBytes(8 * (1 + prng.NextBelow(10)));
    Bytes ct = EncryptPcbc(key, iv, pt);
    EXPECT_EQ(DecryptPcbc(key, iv, ct), pt);
  }
}

TEST(ModesTest, CbcRoundTripRandom) {
  Prng prng(10);
  for (int i = 0; i < 50; ++i) {
    DesKey key = prng.NextDesKey();
    DesBlock iv = U64ToBlock(prng.NextU64());
    Bytes pt = prng.NextBytes(8 * (1 + prng.NextBelow(10)));
    Bytes ct = EncryptCbc(key, iv, pt);
    EXPECT_EQ(DecryptCbc(key, iv, ct), pt);
  }
}

// The property the chosen-plaintext attack (E7) exploits: with a fixed IV, a
// prefix of a CBC encryption is the encryption of the plaintext prefix.
TEST(ModesTest, CbcPrefixProperty) {
  Prng prng(11);
  DesKey key = prng.NextDesKey();
  Bytes pt = prng.NextBytes(64);
  Bytes full = EncryptCbc(key, kZeroIv, pt);
  for (size_t blocks = 1; blocks < 8; ++blocks) {
    Bytes prefix_pt(pt.begin(), pt.begin() + 8 * blocks);
    Bytes prefix_ct = EncryptCbc(key, kZeroIv, prefix_pt);
    Bytes truncated(full.begin(), full.begin() + 8 * blocks);
    EXPECT_EQ(prefix_ct, truncated) << "CBC prefix property must hold at block " << blocks;
  }
}

// PCBC does NOT have the error-containment of CBC: flipping ciphertext block
// i garbles every plaintext block from i onward.
TEST(ModesTest, PcbcErrorPropagatesToEnd) {
  Prng prng(12);
  DesKey key = prng.NextDesKey();
  Bytes pt = prng.NextBytes(48);
  DesBlock iv = U64ToBlock(prng.NextU64());
  Bytes ct = EncryptPcbc(key, iv, pt);
  ct[8] ^= 0x01;  // corrupt block 1
  Bytes bad = DecryptPcbc(key, iv, ct);
  EXPECT_EQ(Bytes(bad.begin(), bad.begin() + 8), Bytes(pt.begin(), pt.begin() + 8));
  for (size_t block = 1; block < 6; ++block) {
    EXPECT_NE(Bytes(bad.begin() + 8 * block, bad.begin() + 8 * block + 8),
              Bytes(pt.begin() + 8 * block, pt.begin() + 8 * block + 8))
        << "block " << block << " should be garbled";
  }
}

// The paper's §Encryption Layer observation (E8): interchanging two adjacent
// PCBC ciphertext blocks garbles only those blocks; later blocks decrypt
// correctly. CBC by contrast recovers after one block.
TEST(ModesTest, PcbcBlockSwapGarblesOnlySwappedBlocks) {
  Prng prng(13);
  DesKey key = prng.NextDesKey();
  Bytes pt = prng.NextBytes(64);  // 8 blocks
  DesBlock iv = U64ToBlock(prng.NextU64());
  Bytes ct = EncryptPcbc(key, iv, pt);
  // Swap ciphertext blocks 2 and 3.
  for (int i = 0; i < 8; ++i) {
    std::swap(ct[16 + i], ct[24 + i]);
  }
  Bytes out = DecryptPcbc(key, iv, ct);
  // Blocks 0..1 intact.
  EXPECT_EQ(Bytes(out.begin(), out.begin() + 16), Bytes(pt.begin(), pt.begin() + 16));
  // Blocks 2..3 garbled.
  EXPECT_NE(Bytes(out.begin() + 16, out.begin() + 32), Bytes(pt.begin() + 16, pt.begin() + 32));
  // Blocks 4..7 intact again — the flaw the paper highlights.
  EXPECT_EQ(Bytes(out.begin() + 32, out.end()), Bytes(pt.begin() + 32, pt.end()));
}

TEST(ModesTest, Pkcs5PadRoundTrip) {
  Prng prng(14);
  for (size_t len = 0; len < 40; ++len) {
    Bytes data = prng.NextBytes(len);
    Bytes padded = Pkcs5Pad(data);
    EXPECT_EQ(padded.size() % 8, 0u);
    EXPECT_GT(padded.size(), data.size());
    auto unpadded = Pkcs5Unpad(padded);
    ASSERT_TRUE(unpadded.ok());
    EXPECT_EQ(unpadded.value(), data);
  }
}

TEST(ModesTest, Pkcs5UnpadRejectsGarbage) {
  EXPECT_FALSE(Pkcs5Unpad(Bytes{}).ok());
  EXPECT_FALSE(Pkcs5Unpad(Bytes{1, 2, 3}).ok());  // not multiple of 8
  Bytes bad(8, 0);
  bad[7] = 9;  // pad length out of range
  EXPECT_FALSE(Pkcs5Unpad(bad).ok());
  Bytes inconsistent{0, 0, 0, 0, 0, 0, 7, 2};  // pad bytes don't match
  EXPECT_FALSE(Pkcs5Unpad(inconsistent).ok());
}

TEST(ModesTest, ZeroPadTo8) {
  EXPECT_EQ(ZeroPadTo8(Bytes{}).size(), 0u);
  EXPECT_EQ(ZeroPadTo8(Bytes{1}).size(), 8u);
  EXPECT_EQ(ZeroPadTo8(Bytes(8, 1)).size(), 8u);
  EXPECT_EQ(ZeroPadTo8(Bytes(9, 1)).size(), 16u);
}

TEST(ModesTest, CbcMacDeterministicAndKeyed) {
  Prng prng(15);
  DesKey k1 = prng.NextDesKey();
  DesKey k2 = prng.NextDesKey();
  Bytes data = prng.NextBytes(33);
  EXPECT_EQ(CbcMac(k1, kZeroIv, data), CbcMac(k1, kZeroIv, data));
  EXPECT_NE(CbcMac(k1, kZeroIv, data), CbcMac(k2, kZeroIv, data));
  Bytes tweaked = data;
  tweaked[0] ^= 1;
  EXPECT_NE(CbcMac(k1, kZeroIv, data), CbcMac(k1, kZeroIv, tweaked));
}

// Regression: CbcMac on empty input must not return the (public) IV — it
// processes one zero block, so the MAC is always at least one encryption.
TEST(ModesTest, CbcMacEmptyInputIsEncrypted) {
  Prng prng(22);
  DesKey key = prng.NextDesKey();
  DesBlock iv = U64ToBlock(prng.NextU64());
  DesBlock mac = CbcMac(key, iv, Bytes{});
  EXPECT_NE(mac, iv);
  // One zero block XORed into the chain is the chain itself: MAC == E(IV).
  EXPECT_EQ(BlockToU64(mac), key.EncryptBlock(BlockToU64(iv)));
  // And padding equivalence still holds for nonempty data: a 3-byte message
  // MACs the same as its zero-padded 8-byte form.
  Bytes short_msg{0xde, 0xad, 0xbe};
  EXPECT_EQ(CbcMac(key, iv, short_msg), CbcMac(key, iv, ZeroPadTo8(short_msg)));
}

// The uint64_t-span bulk primitives and the in-place byte transforms must
// agree exactly with the allocating wrappers (which the seed pinned to
// FIPS 81 vectors above).
TEST(ModesTest, BulkPrimitivesMatchWrappers) {
  Prng prng(23);
  for (int i = 0; i < 20; ++i) {
    DesKey key = prng.NextDesKey();
    DesBlock iv = U64ToBlock(prng.NextU64());
    size_t nblocks = 1 + prng.NextBelow(12);
    Bytes pt = prng.NextBytes(8 * nblocks);

    std::vector<uint64_t> blocks(nblocks);
    for (size_t b = 0; b < nblocks; ++b) {
      blocks[b] = LoadU64BE(pt.data() + 8 * b);
    }

    auto as_bytes = [&](const std::vector<uint64_t>& v) {
      Bytes out(8 * v.size());
      for (size_t b = 0; b < v.size(); ++b) {
        StoreU64BE(out.data() + 8 * b, v[b]);
      }
      return out;
    };

    std::vector<uint64_t> tmp(nblocks);
    EcbEncryptBlocks(key, blocks.data(), tmp.data(), nblocks);
    EXPECT_EQ(as_bytes(tmp), EncryptEcb(key, pt));
    CbcEncryptBlocks(key, BlockToU64(iv), blocks.data(), tmp.data(), nblocks);
    EXPECT_EQ(as_bytes(tmp), EncryptCbc(key, iv, pt));
    PcbcEncryptBlocks(key, BlockToU64(iv), blocks.data(), tmp.data(), nblocks);
    EXPECT_EQ(as_bytes(tmp), EncryptPcbc(key, iv, pt));
    EXPECT_EQ(CbcMacBlocks(key, BlockToU64(iv), blocks.data(), nblocks),
              BlockToU64(CbcMac(key, iv, pt)));

    // In-place aliasing (in == out) for the decrypt direction, which must
    // stash the previous ciphertext before overwriting it.
    std::vector<uint64_t> alias = tmp;  // PCBC ciphertext from above
    PcbcDecryptBlocks(key, BlockToU64(iv), alias.data(), alias.data(), nblocks);
    EXPECT_EQ(as_bytes(alias), pt);
    CbcEncryptBlocks(key, BlockToU64(iv), blocks.data(), tmp.data(), nblocks);
    alias = tmp;
    CbcDecryptBlocks(key, BlockToU64(iv), alias.data(), alias.data(), nblocks);
    EXPECT_EQ(as_bytes(alias), pt);

    Bytes inplace = pt;
    EncryptCbcInPlace(key, iv, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, EncryptCbc(key, iv, pt));
    DecryptCbcInPlace(key, iv, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, pt);
    EncryptPcbcInPlace(key, iv, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, EncryptPcbc(key, iv, pt));
    DecryptPcbcInPlace(key, iv, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, pt);
    EncryptEcbInPlace(key, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, EncryptEcb(key, pt));
    DecryptEcbInPlace(key, inplace.data(), inplace.size());
    EXPECT_EQ(inplace, pt);
  }
}

TEST(ModesTest, Pkcs5PadInPlaceMatchesCopy) {
  Prng prng(24);
  for (size_t len = 0; len < 20; ++len) {
    Bytes data = prng.NextBytes(len);
    Bytes copied = Pkcs5Pad(data);
    Pkcs5PadInPlace(data);
    EXPECT_EQ(data, copied);
  }
}

TEST(ModesTest, DifferentIvDifferentCiphertext) {
  Prng prng(16);
  DesKey key = prng.NextDesKey();
  Bytes pt = prng.NextBytes(24);
  Bytes c1 = EncryptCbc(key, kZeroIv, pt);
  Bytes c2 = EncryptCbc(key, U64ToBlock(1), pt);
  EXPECT_NE(c1, c2);
}

}  // namespace
}  // namespace kcrypto
