#include "src/crypto/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace kcrypto {
namespace {

TEST(PrngTest, Deterministic) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, NextBelowInRange) {
  Prng prng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(prng.NextBelow(bound), bound);
    }
  }
}

TEST(PrngTest, NextBelowCoversRange) {
  Prng prng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(prng.NextBelow(10));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PrngTest, NextBytesLengthAndDeterminism) {
  Prng a(7), b(7);
  for (size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 100ul}) {
    EXPECT_EQ(a.NextBytes(n).size(), n);
  }
  Prng c(8), d(8);
  EXPECT_EQ(c.NextBytes(37), d.NextBytes(37));
}

TEST(PrngTest, DesKeysValidAndDistinct) {
  Prng prng(9);
  std::set<uint64_t> keys;
  for (int i = 0; i < 200; ++i) {
    DesKey key = prng.NextDesKey();
    EXPECT_TRUE(HasOddParity(key.bytes()));
    EXPECT_FALSE(IsWeakKey(key.bytes()));
    keys.insert(key.AsU64());
  }
  EXPECT_EQ(keys.size(), 200u);
}

TEST(PrngTest, ForkIndependentStreams) {
  Prng parent(10);
  Prng child = parent.Fork();
  // Parent and child should not produce the same stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace kcrypto
