#include "src/sim/clock.h"

#include <gtest/gtest.h>

namespace ksim {
namespace {

TEST(ClockTest, AdvanceAndSet) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(5 * kSecond);
  EXPECT_EQ(clock.Now(), 5 * kSecond);
  clock.Set(kHour);
  EXPECT_EQ(clock.Now(), kHour);
}

TEST(ClockTest, HostClockTracksBaseWithOffset) {
  SimClock base;
  HostClock host(&base, 2 * kMinute);
  EXPECT_EQ(host.Now(), 2 * kMinute);
  base.Advance(kSecond);
  EXPECT_EQ(host.Now(), 2 * kMinute + kSecond);
}

TEST(ClockTest, NegativeSkew) {
  SimClock base;
  base.Set(kHour);
  HostClock host(&base, -10 * kMinute);
  EXPECT_EQ(host.Now(), kHour - 10 * kMinute);
}

TEST(ClockTest, AdjustToSlews) {
  SimClock base;
  base.Set(100 * kSecond);
  HostClock host(&base, 0);
  host.AdjustTo(50 * kSecond);  // a time service told us it's earlier
  EXPECT_EQ(host.Now(), 50 * kSecond);
  EXPECT_EQ(host.offset(), -50 * kSecond);
  base.Advance(kSecond);
  EXPECT_EQ(host.Now(), 51 * kSecond);
}

TEST(ClockTest, UnitsCompose) {
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDefaultClockSkewLimit, 5 * kMinute);
}

}  // namespace
}  // namespace ksim
