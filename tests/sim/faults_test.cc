// Unit tests for the fault-injection fabric (src/sim/faults.h) and the
// resilient exchanger (src/sim/retry.h).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/faults.h"
#include "src/sim/retry.h"
#include "src/sim/world.h"

namespace ksim {
namespace {

constexpr NetAddress kClient{0x0a000001, 1000};
constexpr NetAddress kEcho{0x0a000002, 80};
constexpr NetAddress kEcho2{0x0a000003, 80};

// Binds a service at `addr` that echoes its payload back.
void BindEcho(Network& net, const NetAddress& addr) {
  net.Bind(addr, [](const Message& msg) -> kerb::Result<kerb::Bytes> {
    return msg.payload;
  });
}

// Binds a service whose reply differs on every call — a stand-in for a KDC
// minting a fresh session key per request.
void BindCounter(Network& net, const NetAddress& addr) {
  auto count = std::make_shared<int>(0);
  net.Bind(addr, [count](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::ToBytes("reply " + std::to_string((*count)++));
  });
}

TEST(FaultyNetworkTest, ZeroRatePlanIsTransparent) {
  // An all-zero plan must behave exactly like the plain Network: same
  // replies, nothing dropped, and — because Chance(0) draws nothing — no
  // PRNG consumption that could perturb a seeded workload.
  World plain(42);
  World faulty(42, FaultPlan{});
  BindEcho(plain.network(), kEcho);
  BindEcho(faulty.network(), kEcho);

  for (int i = 0; i < 10; ++i) {
    kerb::Bytes payload = kerb::ToBytes("ping " + std::to_string(i));
    auto a = plain.network().Call(kClient, kEcho, payload);
    auto b = faulty.network().Call(kClient, kEcho, payload);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  // Zero-probability faults drew nothing: the schedule digest never moved
  // off its FNV-1a basis, so every downstream PRNG fork is undisturbed.
  EXPECT_EQ(faulty.faults()->schedule_digest(), 0xcbf29ce484222325ull);
  EXPECT_EQ(faulty.faults()->stats().requests_dropped, 0u);
  EXPECT_EQ(faulty.faults()->stats().delivered, 10u);
}

TEST(FaultyNetworkTest, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.link.drop_request = 0.2;
  plan.link.drop_reply = 0.1;
  plan.link.duplicate_request = 0.15;
  plan.link.corrupt_reply = 0.1;
  plan.link.delay_jitter = 3 * kMillisecond;

  auto run = [&](uint64_t seed) {
    World world(seed, plan);
    BindEcho(world.network(), kEcho);
    int ok = 0;
    for (int i = 0; i < 200; ++i) {
      if (world.network().Call(kClient, kEcho, kerb::ToBytes("x")).ok()) ++ok;
    }
    return std::make_pair(world.faults()->schedule_digest(), ok);
  };

  auto [digest1, ok1] = run(7);
  auto [digest2, ok2] = run(7);
  auto [digest3, ok3] = run(8);
  EXPECT_EQ(digest1, digest2);
  EXPECT_EQ(ok1, ok2);
  EXPECT_NE(digest1, digest3);  // different seed, different schedule
}

TEST(FaultyNetworkTest, DropsSurfaceAsTransport) {
  FaultPlan plan;
  plan.link.drop_request = 1.0;
  World world(1, plan);
  BindEcho(world.network(), kEcho);

  auto r = world.network().Call(kClient, kEcho, kerb::ToBytes("hello"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kerb::ErrorCode::kTransport);
  EXPECT_TRUE(kerb::IsRetryable(r.error().code));
  EXPECT_EQ(world.faults()->stats().requests_dropped, 1u);
}

TEST(FaultyNetworkTest, BlackoutWindowRefusesCalls) {
  FaultPlan plan;
  plan.blackouts.push_back(Blackout{kEcho.host, 10 * kSecond, 20 * kSecond});
  World world(1, plan);
  BindEcho(world.network(), kEcho);

  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("a")).ok());
  world.clock().Set(15 * kSecond);
  auto blocked = world.network().Call(kClient, kEcho, kerb::ToBytes("b"));
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error().code, kerb::ErrorCode::kTransport);
  world.clock().Set(25 * kSecond);
  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("c")).ok());
  EXPECT_EQ(world.faults()->stats().blackout_refusals, 1u);
}

TEST(FaultyNetworkTest, StallAddsLatencyButDelivers) {
  FaultPlan plan;
  plan.stalls.push_back(Stall{kEcho.host, 0, kMinute, 2 * kSecond});
  World world(1, plan);
  BindEcho(world.network(), kEcho);

  Time before = world.clock().Now();
  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("a")).ok());
  EXPECT_GE(world.clock().Now() - before, 2 * kSecond);
  EXPECT_EQ(world.faults()->stats().stalled_deliveries, 1u);
}

TEST(FaultyNetworkTest, CorruptionFlipsBitsButDelivers) {
  FaultPlan plan;
  plan.link.corrupt_reply = 1.0;
  World world(1, plan);
  BindEcho(world.network(), kEcho);

  kerb::Bytes payload = kerb::ToBytes("a long enough payload to corrupt");
  auto r = world.network().Call(kClient, kEcho, payload);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value(), payload);
  EXPECT_EQ(r.value().size(), payload.size());  // bit flips, not truncation
}

TEST(FaultyNetworkTest, DuplicateDivergenceDetectsDoubleIssue) {
  FaultPlan plan;
  plan.link.duplicate_request = 1.0;
  World world(1, plan);
  BindEcho(world.network(), kEcho);       // idempotent service
  BindCounter(world.network(), kEcho2);   // fresh-state service (naive KDC)

  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("x")).ok());
  EXPECT_TRUE(world.network().Call(kClient, kEcho2, kerb::ToBytes("x")).ok());

  const auto& stats = world.faults()->stats();
  EXPECT_EQ(stats.duplicates_delivered, 2u);
  EXPECT_EQ(stats.duplicate_reply_matches, 1u);      // echo answered identically
  EXPECT_EQ(stats.duplicate_reply_divergences, 1u);  // counter double-issued
  EXPECT_EQ(world.faults()->divergences_at(kEcho.host), 0u);
  EXPECT_EQ(world.faults()->divergences_at(kEcho2.host), 1u);
}

TEST(FaultyNetworkTest, ReorderRedeliversStaleCopyLater) {
  FaultPlan plan;
  plan.link.reorder_request = 1.0;
  World world(1, plan);
  BindCounter(world.network(), kEcho);

  // First call's request is held; the second call flushes it to the server
  // again before sending its own bytes.
  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("x")).ok());
  world.faults()->plan().link.reorder_request = 0;  // stop holding more
  EXPECT_TRUE(world.network().Call(kClient, kEcho, kerb::ToBytes("y")).ok());
  EXPECT_EQ(world.faults()->stats().late_redeliveries, 1u);
  EXPECT_EQ(world.faults()->stats().duplicate_reply_divergences, 1u);
}

// ---------------------------------------------------------------------------
// Exchanger

TEST(ExchangerTest, RetriesThroughTransientLoss) {
  // Drop exactly the first attempt, then deliver.
  World world(3);
  auto failures = std::make_shared<int>(1);
  world.network().Bind(kEcho, [failures](const Message& msg) -> kerb::Result<kerb::Bytes> {
    if ((*failures)-- > 0) {
      return kerb::MakeError(kerb::ErrorCode::kTransport, "lost");
    }
    return msg.payload;
  });

  Exchanger ex(&world.network(), &world.clock(), world.prng().Fork(), RetryPolicy{});
  auto r = ex.Exchange(kClient, {kEcho}, [] { return kerb::Result<kerb::Bytes>(kerb::ToBytes("req")); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ex.stats().attempts, 2u);
  EXPECT_EQ(ex.stats().retries, 1u);
  EXPECT_EQ(ex.stats().successes, 1u);
  // The failed attempt charged its timeout to the virtual clock.
  EXPECT_GE(ex.stats().virtual_wait, RetryPolicy{}.timeout);
}

TEST(ExchangerTest, TerminalErrorReturnsImmediately) {
  World world(3);
  world.network().Bind(kEcho, [](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "bad password");
  });

  Exchanger ex(&world.network(), &world.clock(), world.prng().Fork(), RetryPolicy{});
  auto r = ex.Exchange(kClient, {kEcho}, [] { return kerb::Result<kerb::Bytes>(kerb::ToBytes("req")); });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kerb::ErrorCode::kAuthFailed);
  EXPECT_EQ(ex.stats().attempts, 1u);  // no retry of an authoritative verdict
  EXPECT_EQ(ex.stats().terminal_failures, 1u);
}

TEST(ExchangerTest, FailsOverToSecondEndpoint) {
  World world(3);
  // Primary is dead; the slave echoes.
  world.network().Bind(kEcho, [](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::MakeError(kerb::ErrorCode::kTransport, "down");
  });
  BindEcho(world.network(), kEcho2);

  Exchanger ex(&world.network(), &world.clock(), world.prng().Fork(), RetryPolicy{});
  auto r = ex.Exchange(kClient, {kEcho, kEcho2},
                       [] { return kerb::Result<kerb::Bytes>(kerb::ToBytes("req")); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ex.stats().failovers, 1u);
  EXPECT_EQ(ex.stats().successes, 1u);
}

TEST(ExchangerTest, ExhaustsBudgetAgainstDeadService) {
  World world(3);  // nothing bound: every call is kTransport
  RetryPolicy policy;
  policy.max_attempts = 3;
  Exchanger ex(&world.network(), &world.clock(), world.prng().Fork(), policy);
  auto r = ex.Exchange(kClient, {kEcho}, [] { return kerb::Result<kerb::Bytes>(kerb::ToBytes("req")); });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kerb::ErrorCode::kTransport);
  EXPECT_EQ(ex.stats().attempts, 3u);
  EXPECT_EQ(ex.stats().exhausted, 1u);
}

TEST(ExchangerTest, JitterIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    World world(seed);
    RetryPolicy policy;
    policy.max_attempts = 4;
    Exchanger ex(&world.network(), &world.clock(), kcrypto::Prng(seed), policy);
    (void)ex.Exchange(kClient, {kEcho},
                      [] { return kerb::Result<kerb::Bytes>(kerb::ToBytes("req")); });
    return ex.stats().virtual_wait;
  };
  EXPECT_EQ(run(11), run(11));
}

}  // namespace
}  // namespace ksim
