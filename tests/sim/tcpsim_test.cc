#include "src/sim/tcpsim.h"

#include <gtest/gtest.h>

namespace ksim {
namespace {

const NetAddress kAlice{0x0a000001, 1000};
const NetAddress kEveProbe{0x0a000066, 2000};

TEST(TcpSimTest, LegitimateConnectionDeliversData) {
  kerb::Bytes received;
  TcpServer server(IsnPolicy::kPredictableCounter, 1,
                   [&](const NetAddress&, const kerb::Bytes& d) { received = d; });
  ASSERT_TRUE(TcpConnectAndSend(server, kAlice, kerb::Bytes{1, 2, 3}).ok());
  EXPECT_EQ(received, (kerb::Bytes{1, 2, 3}));
}

TEST(TcpSimTest, WrongAckResetsConnection) {
  TcpServer server(IsnPolicy::kPredictableCounter, 1,
                   [](const NetAddress&, const kerb::Bytes&) {});
  uint32_t isn = server.Syn(kAlice);
  EXPECT_FALSE(server.Ack(kAlice, isn + 2).ok());
  // Connection was reset; even the right ACK now fails.
  EXPECT_FALSE(server.Ack(kAlice, isn + 1).ok());
}

TEST(TcpSimTest, DataBeforeEstablishRejected) {
  TcpServer server(IsnPolicy::kPredictableCounter, 1,
                   [](const NetAddress&, const kerb::Bytes&) {});
  uint32_t isn = server.Syn(kAlice);
  EXPECT_FALSE(server.Data(kAlice, isn + 1, kerb::Bytes{1}).ok());
}

TEST(TcpSimTest, PredictableIsnIsPredictable) {
  // The Morris precondition: probe once, predict the next ISN exactly.
  TcpServer server(IsnPolicy::kPredictableCounter, 7,
                   [](const NetAddress&, const kerb::Bytes&) {});
  uint32_t probe_isn = server.Syn(kEveProbe);
  uint32_t predicted = probe_isn + kIsnIncrement;
  uint32_t actual = server.Syn(kAlice);
  EXPECT_EQ(actual, predicted);
}

TEST(TcpSimTest, BlindSpoofSucceedsAgainstPredictableIsn) {
  // Eve spoofs Alice without ever seeing the SYN-ACK.
  bool delivered = false;
  TcpServer server(IsnPolicy::kPredictableCounter, 7,
                   [&](const NetAddress& peer, const kerb::Bytes&) {
                     delivered = (peer == kAlice);
                   });
  uint32_t probe_isn = server.Syn(kEveProbe);  // Eve's own legitimate probe
  server.Ack(kEveProbe, probe_isn + 1).ok();

  uint32_t predicted = probe_isn + kIsnIncrement;
  server.Syn(kAlice);  // SYN claiming to be Alice; SYN-ACK goes to Alice, not Eve
  ASSERT_TRUE(server.Ack(kAlice, predicted + 1).ok());
  ASSERT_TRUE(server.Data(kAlice, predicted + 1, kerb::Bytes{0x42}).ok());
  EXPECT_TRUE(delivered);
}

TEST(TcpSimTest, BlindSpoofFailsAgainstRandomIsn) {
  TcpServer server(IsnPolicy::kRandom, 7, [](const NetAddress&, const kerb::Bytes&) {});
  uint32_t probe_isn = server.Syn(kEveProbe);
  uint32_t predicted = probe_isn + kIsnIncrement;
  server.Syn(kAlice);
  EXPECT_FALSE(server.Ack(kAlice, predicted + 1).ok());
}

TEST(TcpSimTest, RandomIsnsDiffer) {
  TcpServer server(IsnPolicy::kRandom, 7, [](const NetAddress&, const kerb::Bytes&) {});
  uint32_t a = server.Syn(kAlice);
  uint32_t b = server.Syn(kEveProbe);
  EXPECT_NE(b, a + kIsnIncrement);
}

}  // namespace
}  // namespace ksim
