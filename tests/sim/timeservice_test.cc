#include "src/sim/timeservice.h"

#include <gtest/gtest.h>

#include "src/encoding/io.h"
#include "src/sim/world.h"

namespace ksim {
namespace {

const NetAddress kClient{0x0a000001, 1000};
const NetAddress kTimeSvc{0x0a000037, 37};

TEST(TimeServiceTest, UnauthQueryReturnsServerTime) {
  World world(1);
  world.clock().Set(1000 * kSecond);
  HostClock server_clock = world.MakeHostClock(0);
  UnauthTimeService svc(&world.network(), kTimeSvc, &server_clock);

  auto t = UnauthTimeService::Query(&world.network(), kClient, kTimeSvc);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 1000 * kSecond);
}

TEST(TimeServiceTest, UnauthQueryTrustsWhateverArrives) {
  // The E3 precondition: a fabricated reply is indistinguishable from a
  // real one.
  World world(1);
  HostClock server_clock = world.MakeHostClock(0);
  UnauthTimeService svc(&world.network(), kTimeSvc, &server_clock);

  class TimeSpoofer : public Adversary {
   public:
    Decision OnRequest(Message& request) override {
      if (request.dst.port == 37) {
        kenc::Writer w;
        w.PutU64(static_cast<uint64_t>(12345 * kSecond));  // a lie
        return Decision{false, w.Take()};
      }
      return {};
    }
  } spoofer;
  world.network().SetAdversary(&spoofer);

  auto t = UnauthTimeService::Query(&world.network(), kClient, kTimeSvc);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 12345 * kSecond);  // client believed the forgery

  // And a client that slews to it now has a wrong clock.
  HostClock victim = world.MakeHostClock(0);
  victim.AdjustTo(t.value());
  EXPECT_EQ(victim.Now(), 12345 * kSecond);
}

TEST(TimeServiceTest, AuthQueryVerifies) {
  World world(2);
  world.clock().Set(777 * kSecond);
  HostClock server_clock = world.MakeHostClock(0);
  kcrypto::DesKey key = world.prng().NextDesKey();
  AuthTimeService svc(&world.network(), kTimeSvc, &server_clock, key);

  auto t = AuthTimeService::Query(&world.network(), kClient, kTimeSvc, key, 42);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 777 * kSecond);
}

TEST(TimeServiceTest, AuthQueryRejectsForgery) {
  World world(3);
  HostClock server_clock = world.MakeHostClock(0);
  kcrypto::DesKey key = world.prng().NextDesKey();
  AuthTimeService svc(&world.network(), kTimeSvc, &server_clock, key);

  // A forger who does not hold the key cannot construct a valid MAC.
  class Forger : public Adversary {
   public:
    Decision OnRequest(Message& request) override {
      kenc::Reader r(request.payload);
      auto nonce_field = r.GetU64();
      uint64_t nonce = nonce_field.ok() ? nonce_field.value() : 0;
      kenc::Writer w;
      w.PutU64(nonce);
      w.PutU64(static_cast<uint64_t>(99999 * kSecond));
      w.PutU64(0xdeadbeefdeadbeefull);  // bogus MAC
      return Decision{false, w.Take()};
    }
  } forger;
  world.network().SetAdversary(&forger);

  auto t = AuthTimeService::Query(&world.network(), kClient, kTimeSvc, key, 42);
  EXPECT_FALSE(t.ok());
}

TEST(TimeServiceTest, AuthQueryRejectsWrongNonce) {
  // Replaying yesterday's (authentic) reply fails the nonce check.
  World world(4);
  HostClock server_clock = world.MakeHostClock(0);
  kcrypto::DesKey key = world.prng().NextDesKey();
  AuthTimeService svc(&world.network(), kTimeSvc, &server_clock, key);

  // Record a genuine exchange for nonce 1.
  RecordingAdversary recorder;
  world.network().SetAdversary(&recorder);
  ASSERT_TRUE(AuthTimeService::Query(&world.network(), kClient, kTimeSvc, key, 1).ok());
  kerb::Bytes recorded_reply = recorder.exchanges()[0].reply;
  world.network().SetAdversary(nullptr);

  // Replay it against a query using nonce 2.
  class Replayer : public Adversary {
   public:
    explicit Replayer(kerb::Bytes reply) : reply_(std::move(reply)) {}
    Decision OnRequest(Message&) override { return Decision{false, reply_}; }
    kerb::Bytes reply_;
  } replayer(recorded_reply);
  world.network().SetAdversary(&replayer);

  auto t = AuthTimeService::Query(&world.network(), kClient, kTimeSvc, key, 2);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.code(), kerb::ErrorCode::kAuthFailed);
}

}  // namespace
}  // namespace ksim
