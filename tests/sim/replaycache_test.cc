// ShardedReplayCache behaviour, including the bounded-growth guarantee:
// every insert prunes its shard's expired prefix, so the cache never holds
// more than one liveness window of entries no matter how long it runs.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/replaycache.h"

namespace ksim {
namespace {

constexpr Duration kWindow = 5 * kMinute;

TEST(ShardedReplayCacheTest, AcceptsOnceRejectsReplay) {
  ShardedReplayCache cache;
  EXPECT_TRUE(cache.CheckAndInsert("alice", 1, 1000, 1000, kWindow));
  EXPECT_FALSE(cache.CheckAndInsert("alice", 1, 1000, 1000, kWindow));
  // Different identity, address, or timestamp: distinct tuples.
  EXPECT_TRUE(cache.CheckAndInsert("bob", 1, 1000, 1000, kWindow));
  EXPECT_TRUE(cache.CheckAndInsert("alice", 2, 1000, 1000, kWindow));
  EXPECT_TRUE(cache.CheckAndInsert("alice", 1, 1001, 1001, kWindow));
}

TEST(ShardedReplayCacheTest, ExpiredEntriesStopCountingAsReplays) {
  ShardedReplayCache cache;
  EXPECT_TRUE(cache.CheckAndInsert("alice", 1, 1000, 1000, kWindow));
  // Re-presenting the same tuple after the window would be caught by the
  // timestamp freshness check upstream; the cache itself only promises not
  // to remember it forever.
  EXPECT_TRUE(cache.CheckAndInsert("alice", 1, 1000, 1000 + 2 * kWindow, kWindow));
}

TEST(ShardedReplayCacheTest, SizeStaysBoundedOverALongRun) {
  // A server hammered with distinct authenticators over hours must keep
  // only one window's worth. Before prune-on-insert this grew without
  // bound whenever inserts outpaced clock observation.
  ShardedReplayCache cache;
  const Duration step = kSecond;
  size_t max_size = 0;
  for (int i = 0; i < 100000; ++i) {
    Time now = 1000000 + i * step;
    ASSERT_TRUE(cache.CheckAndInsert("user" + std::to_string(i % 64), 1, now, now, kWindow));
    max_size = std::max(max_size, cache.size());
  }
  // One entry per second, five-minute window: ~300 live entries, never the
  // 100000 inserted.
  EXPECT_LE(max_size, 400u);
  EXPECT_GE(max_size, 300u);
}

TEST(ShardedReplayCacheTest, FrozenClockStaysBoundedToTheWindow) {
  // The degenerate case the old prune-on-tick logic got wrong: the clock
  // never advances, and every entry is legitimately live — but entries
  // older than the window still get erased as time eventually moves.
  ShardedReplayCache cache;
  Time now = 1000000;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cache.CheckAndInsert("u" + std::to_string(i), 1, now, now, kWindow));
  }
  EXPECT_EQ(cache.size(), 1000u);  // all live: nothing to evict yet
  // One tick past expiry: re-presenting each identity lands in the same
  // shard as its stale entry and sweeps it, so the total never reaches 2000.
  now += kWindow + 1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cache.CheckAndInsert("u" + std::to_string(i), 1, now, now, kWindow));
  }
  EXPECT_EQ(cache.size(), 1000u);
}

}  // namespace
}  // namespace ksim
