#include "src/sim/network.h"

#include <gtest/gtest.h>

#include "src/sim/world.h"

namespace ksim {
namespace {

const NetAddress kClient{0x0a000001, 1000};
const NetAddress kServer{0x0a000002, 88};

TEST(NetworkTest, CallRoundTrip) {
  World world(1);
  world.network().Bind(kServer, [](const Message& msg) -> kerb::Result<kerb::Bytes> {
    kerb::Bytes reply = msg.payload;
    reply.push_back(0xff);
    return reply;
  });
  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{1, 2});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), (kerb::Bytes{1, 2, 0xff}));
}

TEST(NetworkTest, UnboundAddressIsTransportError) {
  World world(1);
  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{});
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kTransport);
}

TEST(NetworkTest, RebindReplacesHandlerAndUnbindRemovesIt) {
  // Bind/lookup semantics pinned across the map -> hashed-container change:
  // rebinding an address replaces its handler (how attacks take over a
  // service's address), unbinding makes it a transport error again, and
  // other bindings are unaffected.
  World world(1);
  const NetAddress kOther{0x0a000003, 750};
  world.network().Bind(kServer, [](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::Bytes{1};
  });
  world.network().Bind(kOther, [](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::Bytes{9};
  });

  auto first = world.network().Call(kClient, kServer, kerb::Bytes{});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), kerb::Bytes{1});

  world.network().Bind(kServer, [](const Message&) -> kerb::Result<kerb::Bytes> {
    return kerb::Bytes{2};
  });
  auto rebound = world.network().Call(kClient, kServer, kerb::Bytes{});
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound.value(), kerb::Bytes{2});

  world.network().Unbind(kServer);
  EXPECT_EQ(world.network().Call(kClient, kServer, kerb::Bytes{}).code(),
            kerb::ErrorCode::kTransport);

  // A same-host different-port binding must not be disturbed by any of it.
  auto other = world.network().Call(kClient, kOther, kerb::Bytes{});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value(), kerb::Bytes{9});
}

TEST(NetworkTest, DatagramBindingsFollowTheSameSemantics) {
  World world(1);
  int delivered_to_first = 0;
  int delivered_to_second = 0;
  world.network().BindDatagram(kServer, [&](const Message&) { ++delivered_to_first; });
  ASSERT_TRUE(world.network().SendDatagram(kClient, kServer, kerb::Bytes{1}).ok());
  world.network().BindDatagram(kServer, [&](const Message&) { ++delivered_to_second; });
  ASSERT_TRUE(world.network().SendDatagram(kClient, kServer, kerb::Bytes{2}).ok());
  world.network().Unbind(kServer);
  EXPECT_FALSE(world.network().SendDatagram(kClient, kServer, kerb::Bytes{3}).ok());
  EXPECT_EQ(delivered_to_first, 1);
  EXPECT_EQ(delivered_to_second, 1);
}

TEST(NetworkTest, SourceAddressIsAClaim) {
  // Core threat-model property: the handler sees whatever source the caller
  // asserts. Address spoofing needs no special machinery.
  World world(1);
  NetAddress observed{};
  world.network().Bind(kServer, [&](const Message& msg) -> kerb::Result<kerb::Bytes> {
    observed = msg.src;
    return kerb::Bytes{};
  });
  NetAddress forged{0xc0a80001, 77};
  ASSERT_TRUE(world.network().Call(forged, kServer, kerb::Bytes{}).ok());
  EXPECT_EQ(observed, forged);
}

TEST(NetworkTest, AdversaryCanModifyRequests) {
  World world(1);
  world.network().Bind(kServer, [](const Message& msg) -> kerb::Result<kerb::Bytes> {
    return msg.payload;
  });

  class Flipper : public Adversary {
   public:
    Decision OnRequest(Message& request) override {
      if (!request.payload.empty()) {
        request.payload[0] ^= 0xff;
      }
      return {};
    }
  } flipper;
  world.network().SetAdversary(&flipper);

  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{0x00, 0x55});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), (kerb::Bytes{0xff, 0x55}));
}

TEST(NetworkTest, AdversaryCanFabricateReplies) {
  World world(1);
  bool server_saw_it = false;
  world.network().Bind(kServer, [&](const Message&) -> kerb::Result<kerb::Bytes> {
    server_saw_it = true;
    return kerb::Bytes{};
  });

  class Fabricator : public Adversary {
   public:
    Decision OnRequest(Message&) override {
      return Decision{false, kerb::Bytes{0xde, 0xad}};
    }
  } fabricator;
  world.network().SetAdversary(&fabricator);

  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{1});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), (kerb::Bytes{0xde, 0xad}));
  EXPECT_FALSE(server_saw_it);  // the real server never heard the request
}

TEST(NetworkTest, AdversaryCanDrop) {
  World world(1);
  world.network().Bind(kServer,
                       [](const Message&) -> kerb::Result<kerb::Bytes> { return kerb::Bytes{}; });
  class Dropper : public Adversary {
   public:
    Decision OnRequest(Message&) override { return Decision{true, std::nullopt}; }
  } dropper;
  world.network().SetAdversary(&dropper);
  EXPECT_EQ(world.network().Call(kClient, kServer, kerb::Bytes{}).code(),
            kerb::ErrorCode::kTransport);
}

TEST(NetworkTest, AdversaryCanRedirect) {
  World world(1);
  NetAddress other{0x0a000003, 99};
  bool server_hit = false, other_hit = false;
  world.network().Bind(kServer, [&](const Message&) -> kerb::Result<kerb::Bytes> {
    server_hit = true;
    return kerb::Bytes{};
  });
  world.network().Bind(other, [&](const Message&) -> kerb::Result<kerb::Bytes> {
    other_hit = true;
    return kerb::Bytes{};
  });

  class Redirector : public Adversary {
   public:
    explicit Redirector(NetAddress target) : target_(target) {}
    Decision OnRequest(Message& request) override {
      request.dst = target_;
      return {};
    }
    NetAddress target_;
  } redirector(other);
  world.network().SetAdversary(&redirector);

  ASSERT_TRUE(world.network().Call(kClient, kServer, kerb::Bytes{}).ok());
  EXPECT_FALSE(server_hit);
  EXPECT_TRUE(other_hit);
}

TEST(NetworkTest, RecordingAdversaryCapturesExchanges) {
  World world(1);
  world.network().Bind(kServer, [](const Message& msg) -> kerb::Result<kerb::Bytes> {
    return kerb::Bytes{static_cast<uint8_t>(msg.payload.size())};
  });
  RecordingAdversary recorder;
  world.network().SetAdversary(&recorder);

  ASSERT_TRUE(world.network().Call(kClient, kServer, kerb::Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(world.network().Call(kClient, kServer, kerb::Bytes{4}).ok());

  ASSERT_EQ(recorder.exchanges().size(), 2u);
  EXPECT_EQ(recorder.exchanges()[0].request.payload, (kerb::Bytes{1, 2, 3}));
  ASSERT_TRUE(recorder.exchanges()[0].has_reply);
  EXPECT_EQ(recorder.exchanges()[0].reply, kerb::Bytes{3});
  EXPECT_EQ(recorder.exchanges()[1].reply, kerb::Bytes{1});
}

TEST(NetworkTest, DatagramsDeliverAndRecord) {
  World world(1);
  kerb::Bytes received;
  world.network().BindDatagram(kServer, [&](const Message& msg) { received = msg.payload; });
  RecordingAdversary recorder;
  world.network().SetAdversary(&recorder);

  ASSERT_TRUE(world.network().SendDatagram(kClient, kServer, kerb::Bytes{7, 8}).ok());
  EXPECT_EQ(received, (kerb::Bytes{7, 8}));
  ASSERT_EQ(recorder.datagrams().size(), 1u);

  EXPECT_EQ(world.network().SendDatagram(kClient, NetAddress{1, 1}, kerb::Bytes{}).code(),
            kerb::ErrorCode::kTransport);
}

TEST(NetworkTest, CompositeAdversaryChainsRecordingAndAction) {
  World world(1);
  world.network().Bind(kServer, [](const Message& msg) -> kerb::Result<kerb::Bytes> {
    return msg.payload;
  });

  class Flipper : public Adversary {
   public:
    Decision OnRequest(Message& request) override {
      if (!request.payload.empty()) {
        request.payload[0] ^= 0xff;
      }
      return {};
    }
  } flipper;
  RecordingAdversary recorder;
  CompositeAdversary composite;
  composite.Add(&recorder);  // records the original...
  composite.Add(&flipper);   // ...then the manipulation happens
  world.network().SetAdversary(&composite);

  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{0x00, 0x11});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), (kerb::Bytes{0xff, 0x11}));  // flipped on delivery
  ASSERT_EQ(recorder.exchanges().size(), 1u);
  EXPECT_EQ(recorder.exchanges()[0].request.payload, (kerb::Bytes{0x00, 0x11}))
      << "the recorder saw the pristine original";
}

TEST(NetworkTest, CompositeAdversaryFirstFabricationWins) {
  World world(1);
  bool server_hit = false;
  world.network().Bind(kServer, [&](const Message&) -> kerb::Result<kerb::Bytes> {
    server_hit = true;
    return kerb::Bytes{};
  });
  class Fabricator : public Adversary {
   public:
    Decision OnRequest(Message&) override { return Decision{false, kerb::Bytes{0x42}}; }
  } fabricator;
  class NeverReached : public Adversary {
   public:
    Decision OnRequest(Message&) override {
      ADD_FAILURE() << "later adversaries must not run after a fabrication";
      return {};
    }
  } never;
  CompositeAdversary composite;
  composite.Add(&fabricator);
  composite.Add(&never);
  world.network().SetAdversary(&composite);
  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{1});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), kerb::Bytes{0x42});
  EXPECT_FALSE(server_hit);
}

TEST(NetworkTest, AdversaryCanDropReplies) {
  World world(1);
  int served = 0;
  world.network().Bind(kServer, [&](const Message&) -> kerb::Result<kerb::Bytes> {
    ++served;
    return kerb::Bytes{1};
  });
  class ReplyDropper : public Adversary {
   public:
    bool OnReply(const Message&, kerb::Bytes&) override { return true; }
  } dropper;
  world.network().SetAdversary(&dropper);
  auto reply = world.network().Call(kClient, kServer, kerb::Bytes{});
  EXPECT_EQ(reply.code(), kerb::ErrorCode::kTransport);
  EXPECT_EQ(served, 1) << "the server acted even though the caller saw a failure";
}

TEST(NetworkTest, AddressToString) {
  NetAddress a{0x0a000001, 88};
  EXPECT_EQ(a.ToString(), "10.0.0.1:88");
}

}  // namespace
}  // namespace ksim
