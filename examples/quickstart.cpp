// Quickstart: stand up a simulated Kerberos V4 realm, log a user in, and
// use an authenticated service — the basic flow the paper's WHAT'S A
// KERBEROS? section walks through.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/attacks/testbed.h"

int main() {
  std::printf("== Kerberos V4 quickstart (simulated Athena realm) ==\n\n");

  // One call builds the whole deployment: KDC (AS+TGS), three application
  // servers, and clients for alice and bob, all on a simulated network.
  kattack::Testbed4 bed;
  std::printf("realm:        %s\n", bed.realm.c_str());
  std::printf("KDC (AS/TGS): %s / %s\n", kattack::Testbed4::kAsAddr.ToString().c_str(),
              kattack::Testbed4::kTgsAddr.ToString().c_str());
  std::printf("mail server:  %s as %s\n\n",
              kattack::Testbed4::kMailAddr.ToString().c_str(),
              bed.mail_principal().ToString().c_str());

  // 1. Login: the AS exchange. The password never crosses the network; the
  //    reply is decrypted with the password-derived key K_c.
  auto login = bed.alice().Login(kattack::Testbed4::kAlicePassword);
  std::printf("[1] alice logs in ................ %s\n", login.ok() ? "OK" : "FAILED");

  // A wrong password simply fails to decrypt the reply.
  auto bad = bed.bob().Login("not-bobs-password");
  std::printf("    bob with a wrong password .... %s (%s)\n",
              bad.ok() ? "ACCEPTED?!" : "rejected", bad.error().ToString().c_str());

  // 2. Service ticket: the TGS exchange, driven automatically.
  auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
  std::printf("[2] ticket for %s ... %s\n", bed.mail_principal().ToString().c_str(),
              creds.ok() ? "OK" : "FAILED");

  // 3. The AP exchange with mutual authentication: alice proves herself
  //    with a ticket + authenticator; the server proves itself by returning
  //    {timestamp + 1} under the session key.
  auto reply = bed.alice().CallService(kattack::Testbed4::kMailAddr, bed.mail_principal(),
                                       /*want_mutual=*/true);
  std::printf("[3] authenticated mail check ..... %s\n", reply.ok() ? "OK" : "FAILED");
  if (reply.ok()) {
    std::printf("    server says: \"%s\"\n", kerb::ToString(reply.value()).c_str());
  }
  std::printf("    server log: %s\n", bed.mail_log().empty() ? "(empty)"
                                                             : bed.mail_log().back().c_str());

  // 4. Logout wipes the credential cache.
  bed.alice().Logout();
  std::printf("[4] after logout, service call ... %s\n",
              bed.alice()
                      .CallService(kattack::Testbed4::kMailAddr, bed.mail_principal(), false)
                      .ok()
                  ? "still works?!"
                  : "correctly refused");

  std::printf("\nDone. See examples/attack_gallery.cpp for what an adversary\n"
              "can do to this exact deployment, and examples/hardened_deployment.cpp\n"
              "for the paper's fixes.\n");
  return 0;
}
