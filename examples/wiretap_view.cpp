// The wiretapper's view: what a passive adversary actually sees on the
// wire during a login and an authenticated mail check — and which of those
// bytes the paper's attacks feed on.
//
// Build & run:  ./build/examples/wiretap_view

#include <cstdio>

#include "src/attacks/passwords.h"
#include "src/attacks/testbed.h"
#include "src/common/hex.h"

namespace {

void Show(const char* label, kerb::BytesView bytes, const char* note) {
  std::string hex = kerb::HexEncode(bytes);
  if (hex.size() > 48) {
    hex = hex.substr(0, 48) + "...";
  }
  std::printf("  %-34s %4zu bytes  %s\n      %s\n", label, bytes.size(), note, hex.c_str());
}

}  // namespace

int main() {
  std::printf("== The wiretapper's view of one Kerberos V4 session ==\n\n");

  kattack::Testbed4 bed;
  ksim::RecordingAdversary recorder;
  bed.world().network().SetAdversary(&recorder);

  if (!bed.alice().Login(kattack::Testbed4::kAlicePassword).ok()) {
    std::printf("login failed\n");
    return 1;
  }
  (void)bed.alice().CallService(kattack::Testbed4::kMailAddr, bed.mail_principal(), true);
  bed.world().network().SetAdversary(nullptr);

  std::printf("captured %zu exchanges:\n\n", recorder.exchanges().size());
  struct ExchangeLabel {
    const char* request_label;
    const char* request_note;
    const char* reply_note;
  };
  const ExchangeLabel kLabels[] = {
      {"AS exchange (alice <-> KDC)",
       "request PLAINTEXT: principal visible, unauthenticated (E5)",
       "reply sealed under K_c = f(password): the dictionary target (E4)"},
      {"TGS exchange (alice <-> TGS)",
       "TGT + authenticator: replayable within 5 min (E1)",
       "reply sealed under K_c,tgs from the AS exchange"},
      {"AP exchange (alice <-> mail)",
       "ticket + authenticator in the clear: the E1/E10 splice material",
       "mutual-auth proof {t+1} under the (multi-)session key (E11)"},
  };
  size_t i = 0;
  for (const auto& exchange : recorder.exchanges()) {
    const ExchangeLabel& label = kLabels[std::min<size_t>(i, 2)];
    Show(label.request_label, exchange.request.payload, label.request_note);
    if (exchange.has_reply) {
      Show("  -> reply", exchange.reply, label.reply_note);
    }
    ++i;
  }

  std::printf("\nWhat the wiretapper does next (paper, §Password-Guessing):\n");
  // Run the dictionary against the recorded AS reply.
  for (const auto& exchange : recorder.exchanges()) {
    if (!(exchange.request.dst == kattack::Testbed4::kAsAddr) || !exchange.has_reply) {
      continue;
    }
    auto framed = krb4::Unframe4(exchange.reply);
    if (!framed.ok()) {
      continue;
    }
    uint64_t attempts = 0;
    auto cracked = kattack::CrackSealedReply(framed.value().second, bed.alice_principal(),
                                             kattack::CommonPasswordDictionary(), &attempts);
    std::printf("  dictionary attack on the AS reply: %s after %llu guesses\n",
                cracked ? ("recovered \"" + *cracked + "\"").c_str()
                        : "nothing (alice chose well)",
                static_cast<unsigned long long>(attempts));
  }
  std::printf("  (bob's \"password\" falls in the same sweep — see bench_e04_pwguess.)\n");
  return 0;
}
