// The attack gallery: every attack from "Limitations of the Kerberos
// Authentication System" run against this codebase's Kerberos, first in the
// configuration the paper criticises and then with the recommended fix.
//
// Build & run:  ./build/examples/attack_gallery

#include <cstdio>

#include "src/attacks/address.h"
#include "src/attacks/cutpaste.h"
#include "src/attacks/environment.h"
#include "src/attacks/harvest.h"
#include "src/attacks/hosttrust.h"
#include "src/attacks/hsmleak.h"
#include "src/attacks/interrealm.h"
#include "src/attacks/loginspoof.h"
#include "src/attacks/morris.h"
#include "src/attacks/replay.h"
#include "src/attacks/retransmit.h"
#include "src/attacks/reuseskey.h"
#include "src/attacks/timespoof.h"
#include "src/attacks/userasservice.h"

namespace {

void Row(const char* id, const char* attack, const char* config, bool succeeded,
         const std::string& note = "") {
  std::printf("  %-4s %-38s %-28s %-8s %s\n", id, attack, config,
              succeeded ? "SUCCESS" : "blocked", note.c_str());
}

}  // namespace

int main() {
  std::printf("== Attack gallery: Bellovin & Merritt 1991, reproduced ==\n\n");
  std::printf("  %-4s %-38s %-28s %-8s %s\n", "id", "attack", "configuration", "result",
              "evidence");
  std::printf("  %.110s\n",
              "--------------------------------------------------------------------------"
              "------------------------------------");

  {  // E0
    auto tmp = kattack::RunDisklessTmpCacheTheft();
    Row("E0", "diskless /tmp credential cache theft", "cache on network file srv",
        tmp.impersonation_succeeded, tmp.evidence);
    auto host = kattack::RunHostExposureStudy();
    Row("E0", "credential cache read from host", "multi-user host, concurrent",
        host.concurrent_theft_succeeded);
    Row("E0", "", "workstation, after logout", host.post_logout_theft_succeeded,
        "keys wiped at logoff");
  }

  {  // E1
    kattack::ReplayScenario vulnerable;
    auto r = kattack::RunMailCheckReplayV4(vulnerable);
    Row("E1", "authenticator replay (5-min window)", "V4, no replay cache",
        r.replay_accepted, r.evidence);
    kattack::ReplayScenario cached = vulnerable;
    cached.server_replay_cache = true;
    Row("E1", "", "V4 + replay cache", kattack::RunMailCheckReplayV4(cached).replay_accepted);
    Row("E1", "", "V5 + challenge/response",
        kattack::RunReplayAgainstChallengeResponse().replay_accepted);
  }

  {  // E2
    kattack::MorrisScenario vulnerable;
    auto r = kattack::RunMorrisSpoof(vulnerable);
    Row("E2", "Morris ISN spoof + live authenticator", "predictable ISNs",
        r.command_executed, r.evidence);
    kattack::MorrisScenario cr = vulnerable;
    cr.challenge_response = true;
    Row("E2", "", "challenge/response", kattack::RunMorrisSpoof(cr).command_executed);
  }

  {  // E3
    kattack::TimeSpoofScenario vulnerable;
    auto r = kattack::RunTimeSpoofReplay(vulnerable);
    Row("E3", "time-service spoof, stale replay", "unauthenticated time",
        r.stale_replay_accepted_after, r.evidence);
    kattack::TimeSpoofScenario fixed = vulnerable;
    fixed.authenticated_time_service = true;
    Row("E3", "", "authenticated time",
        kattack::RunTimeSpoofReplay(fixed).stale_replay_accepted_after);
  }

  {  // E4
    kattack::HarvestScenario scenario;
    scenario.population = 30;
    auto r = kattack::RunEavesdropCrackV4(scenario);
    Row("E4", "offline dictionary attack (wiretap)", "V4 AS exchange", r.cracked > 0,
        std::to_string(r.cracked) + "/" + std::to_string(r.population) + " passwords");
    kattack::DhCrackScenario dh;
    dh.base = scenario;
    auto rd = kattack::RunEavesdropCrackAgainstDhLogin(dh);
    Row("E4", "", "DH login layer (Oakley-1)", rd.cracked > 0,
        std::to_string(rd.cracked) + " cracked");
    kattack::DhCrackScenario toy = dh;
    toy.toy_group_bits = 28;
    auto rt = kattack::RunEavesdropCrackAgainstDhLogin(toy);
    Row("E4", "", "DH login, 28-bit toy group", rt.cracked > 0,
        std::to_string(rt.cracked) + " cracked via discrete log");
  }

  {  // E5
    kattack::ActiveHarvestScenario vulnerable;
    vulnerable.base.population = 30;
    auto r = kattack::RunActiveHarvest(vulnerable);
    Row("E5", "ticket harvesting (no wiretap)", "no preauthentication",
        r.replies_obtained > 0,
        std::to_string(r.replies_obtained) + " replies, " + std::to_string(r.cracked) +
            " cracked");
    kattack::ActiveHarvestScenario fixed = vulnerable;
    fixed.kdc_requires_preauth = true;
    Row("E5", "", "preauthentication required",
        kattack::RunActiveHarvest(fixed).replies_obtained > 0);
  }

  {  // E6
    auto pw = kattack::RunLoginSpoofAgainstPassword();
    Row("E6", "trojaned login records input", "typed password",
        pw.later_reuse_succeeded, "capture reusable forever");
    auto hh = kattack::RunLoginSpoofAgainstHandheld();
    Row("E6", "", "handheld {R}Kc login", hh.later_reuse_succeeded,
        "capture is single-use");
  }

  {  // E9
    kattack::CutPasteScenario vulnerable;
    auto r = kattack::RunEncTktInSkeyCutPaste(vulnerable);
    Row("E9", "CRC-32 cut-paste via ENC-TKT-IN-SKEY", "Draft 3 (CRC-32)",
        r.mutual_auth_spoofed, "read: \"" + r.intercepted_data + "\"");
    kattack::CutPasteScenario md4 = vulnerable;
    md4.request_checksum = kcrypto::ChecksumType::kMd4;
    Row("E9", "", "collision-proof checksum",
        kattack::RunEncTktInSkeyCutPaste(md4).mutual_auth_spoofed);
    kattack::CutPasteScenario cname = vulnerable;
    cname.enforce_cname_match = true;
    Row("E9", "", "cname-match rule",
        kattack::RunEncTktInSkeyCutPaste(cname).mutual_auth_spoofed);
  }

  {  // E10
    kattack::ReuseSkeyScenario vulnerable;
    auto r = kattack::RunReuseSkeyRedirection(vulnerable);
    Row("E10", "REUSE-SKEY request redirection", "no name binding", r.splice_accepted,
        r.backup_action);
    kattack::ReuseSkeyScenario fixed = vulnerable;
    fixed.service_name_binding = true;
    Row("E10", "", "service name in authenticator",
        kattack::RunReuseSkeyRedirection(fixed).splice_accepted);
  }

  {  // E12
    auto r = kattack::RunAddressBindingStudy();
    Row("E12", "stolen creds + spoofed address", "V4 address binding",
        r.spoofed_reuse_accepted, "binding stopped only the naive thief");
    Row("E12", "post-auth session hijack", "address-gated session", r.hijack_accepted,
        r.hijack_evidence);
  }

  {  // E13
    auto r = kattack::RunTransitRealmForgery("ENG.CORP");
    Row("E13", "compromised transit realm forgery", "hierarchical realms",
        r.forged_access_ok, "as " + r.forged_client + " path " + r.forged_transited);
    Row("E13", "", "distrust-CORP policy", !r.strict_policy_blocks_forgery,
        r.strict_policy_blocks_honest ? "honest traffic also dies" : "");
  }

  {  // E14
    auto r = kattack::RunEncryptionUnitLeakSweep();
    Row("E14", "key extraction from encryption unit", "HSM + usage tags",
        r.key_octet_leaks > 0,
        std::to_string(r.outputs_scanned) + " outputs scanned, " +
            std::to_string(r.usage_violations_blocked) + " misuses blocked");
    Row("E14", "key extraction from software cache", "plain V4 client",
        r.software_cache_leaks, "cache hands over raw keys");
  }

  {  // E15
    kattack::UserAsServiceScenario vulnerable;
    auto r = kattack::RunUserAsServiceHarvest(vulnerable);
    Row("E15", "tickets for user principals", "clients usable as services",
        r.password_recovered,
        r.password_recovered ? "recovered \"" + r.recovered_password + "\"" : "");
    kattack::UserAsServiceScenario fixed = vulnerable;
    fixed.forbid_user_principal_tickets = true;
    Row("E15", "", "policy refuses; random-key instances",
        kattack::RunUserAsServiceHarvest(fixed).password_recovered);
  }

  {  // E17
    kattack::HostTrustScenario vulnerable;
    auto r = kattack::RunSrvtabCompromise(vulnerable);
    Row("E17", "stolen srvtab, host-asserted identities", "NFS-mount trust pattern",
        !r.impersonated.empty(),
        "impersonated " + std::to_string(r.impersonated.size()) + " users");
    kattack::HostTrustScenario fixed = vulnerable;
    fixed.require_per_user_tickets = true;
    Row("E17", "", "per-user tickets required",
        !kattack::RunSrvtabCompromise(fixed).impersonated.empty());
  }

  {  // E16 (a functionality failure, not an attack)
    auto naive = kattack::RunRetransmissionStudy(false);
    Row("E16", "replay cache vs lost replies", "identical retransmission",
        !naive.retransmission_accepted, "honest user rejected — false alarm");
    auto fresh = kattack::RunRetransmissionStudy(true);
    Row("E16", "", "fresh authenticator per retry", !fresh.retransmission_accepted);
  }

  std::printf("\n(E7/E8 are encryption-layer attacks — see bench_e07_prefix and\n"
              " bench_e08_pcbc; E11 cross-session replay — see bench_e11_xsession.)\n");
  return 0;
}
