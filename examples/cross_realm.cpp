// Cross-realm authentication across a realm hierarchy, the transited-path
// record, and the cascading-trust problem the paper analyses.
//
// Build & run:  ./build/examples/cross_realm

#include <cstdio>

#include "src/attacks/interrealm.h"
#include "src/attacks/testbed5.h"

int main() {
  std::printf("== Inter-realm authentication: ENG.CORP <-> CORP <-> SALES.CORP ==\n\n");

  kattack::RealmTree5 tree;
  std::printf("alice lives in ENG.CORP; payroll runs in SALES.CORP.\n");
  std::printf("Reaching it requires TGTs from ENG.CORP -> CORP -> SALES.CORP.\n\n");

  bool login = tree.alice().Login(kattack::RealmTree5::kAlicePassword).ok();
  std::printf("[1] alice logs in at ENG.CORP ......... %s\n", login ? "OK" : "FAILED");

  auto call = tree.alice().CallService(kattack::RealmTree5::kPayrollAddr,
                                       tree.payroll_principal(), false,
                                       kerb::ToBytes("view-salary"));
  std::printf("[2] cross-realm payroll access ........ %s\n", call.ok() ? "OK" : "FAILED");
  if (!tree.payroll_log().empty()) {
    std::printf("    payroll saw: %s\n", tree.payroll_log().back().c_str());
  }

  std::printf("\n[3] Now the cascading-trust problem. A compromised CORP (the\n"
              "    transit realm) mints a ticket for a fabricated identity and\n"
              "    launders the transited path:\n\n");
  auto forge = kattack::RunTransitRealmForgery("ENG.CORP");
  std::printf("    honest path seen by payroll:  %s\n", forge.honest_transited.c_str());
  std::printf("    forged access:                %s as %s, path %s\n",
              forge.forged_access_ok ? "SUCCEEDED" : "blocked",
              forge.forged_client.c_str(), forge.forged_transited.c_str());
  std::printf("    (the forged path is identical — 'a server needs global\n"
              "     knowledge of the trustworthiness of all possible transit\n"
              "     realms. In a large internet, such knowledge is probably\n"
              "     not possible.')\n\n");
  std::printf("    distrust-CORP policy blocks forgery:   %s\n",
              forge.strict_policy_blocks_forgery ? "yes" : "no");
  std::printf("    ...and blocks honest traffic too:      %s\n",
              forge.strict_policy_blocks_honest ? "yes (the price)" : "no");
  return 0;
}
