// A deployment with every recommendation from the paper applied:
// preauthentication, collision-proof checksums, challenge/response
// application servers, true session keys, sequence-numbered private
// channels, handheld-authenticator login, the DH login layer, and the
// encryption-unit/keystore hardware design.
//
// Build & run:  ./build/examples/hardened_deployment

#include <cstdio>

#include "src/attacks/testbed5.h"
#include "src/hardened/dh_login.h"
#include "src/hardened/handheld_login.h"
#include "src/hardened/policy.h"
#include "src/hsm/encryption_unit.h"
#include "src/hsm/keystore.h"
#include "src/krb5/safepriv.h"

int main() {
  std::printf("== Hardened deployment: every recommendation applied ==\n\n");

  kattack::Testbed5Config config;
  config.kdc_policy = khard::RecommendedKdcPolicy();
  config.server_options = khard::RecommendedServerOptions();
  config.client_options = khard::RecommendedClientOptions();
  kattack::Testbed5 bed(config);

  // Preauthenticated login (recommendation g) with nonce echo.
  bool login = bed.alice().Login(kattack::Testbed5::kAlicePassword).ok();
  std::printf("[g ] preauthenticated login .................. %s\n", login ? "OK" : "FAILED");

  // Challenge/response AP exchange (a) + subkey negotiation (e) + service
  // name binding (c') — all transparent to the caller.
  auto call = bed.alice().CallService(kattack::Testbed5::kMailAddr, bed.mail_principal(),
                                      true, kerb::ToBytes("check"));
  std::printf("[a ] challenge/response service call ......... %s\n",
              call.ok() ? "OK" : "FAILED");
  if (call.ok()) {
    auto creds = bed.alice().GetServiceTicket(bed.mail_principal());
    bool negotiated = creds.ok() && !(call.value().channel_key == creds.value().session_key);
    std::printf("[e ] true session key negotiated ............. %s\n",
                negotiated ? "OK (differs from multi-session key)" : "NO");
  }

  // Sequence-numbered KRB_PRIV channel (appendix recommendation).
  if (call.ok()) {
    kcrypto::Prng channel_prng(7);
    ksim::HostClock clock = bed.world().MakeHostClock(0);
    krb5::ChannelConfig channel_config = khard::RecommendedChannelConfig();
    krb5::SecureChannel sender(call.value().channel_key, &clock, channel_config, 1000);
    krb5::SecureChannel receiver(call.value().channel_key, &clock, channel_config, 1000);
    kerb::Bytes msg = sender.SealMessage(kerb::ToBytes("RETR 1"), channel_prng);
    bool first = receiver.OpenMessage(msg).ok();
    bool replay = receiver.OpenMessage(msg).ok();
    std::printf("[sq] sequence-numbered channel ............... %s, replay %s\n",
                first ? "OK" : "FAILED", replay ? "ACCEPTED?!" : "rejected");
  }

  // Handheld-authenticator login (c): no password anywhere.
  {
    ksim::World hw_world(101);
    hw_world.clock().Set(1000 * ksim::kSecond);
    krb4::Principal carol = krb4::Principal::User("carol", "ATHENA.SIM");
    kcrypto::DesKey device_key = hw_world.prng().NextDesKey();
    khsm::HandheldAuthenticator device(device_key);
    krb4::KdcDatabase db;
    db.AddServiceWithRandomKey(krb4::TgsPrincipal("ATHENA.SIM"), hw_world.prng());
    db.AddService(carol, device_key);
    ksim::NetAddress login_addr{0x0a000058, 790};
    khard::HandheldLoginServer login_server(&hw_world.network(), login_addr,
                                            hw_world.MakeHostClock(0), "ATHENA.SIM",
                                            std::move(db), hw_world.prng().Fork());
    auto hh = khard::HandheldLogin(&hw_world.network(), ksim::NetAddress{0x0a000103, 1023},
                                   login_addr, carol, device);
    std::printf("[c ] handheld-authenticator login ............ %s\n",
                hh.ok() ? "OK" : "FAILED");
  }

  // DH-protected login (h): wiretap-proof password dialog.
  {
    ksim::World dh_world(102);
    dh_world.clock().Set(1000 * ksim::kSecond);
    krb4::Principal dave = krb4::Principal::User("dave", "ATHENA.SIM");
    krb4::KdcDatabase db;
    db.AddServiceWithRandomKey(krb4::TgsPrincipal("ATHENA.SIM"), dh_world.prng());
    db.AddUser(dave, "daves-password");
    ksim::NetAddress login_addr{0x0a000058, 789};
    khard::DhLoginServer dh_server(&dh_world.network(), login_addr,
                                   dh_world.MakeHostClock(0), "ATHENA.SIM", std::move(db),
                                   dh_world.prng().Fork(), kcrypto::OakleyGroup1());
    kcrypto::Prng client_prng(103);
    auto dh = khard::DhLogin(&dh_world.network(), ksim::NetAddress{0x0a000104, 1023},
                             login_addr, dave, "daves-password", dh_server.group(),
                             client_prng);
    std::printf("[h ] exponential-key-exchange login .......... %s\n",
                dh.ok() ? "OK" : "FAILED");
  }

  // Hardware (f): a service host keeps its key in the encryption unit,
  // loaded from the keystore.
  {
    ksim::World hsm_world(103);
    kcrypto::DesKey master = hsm_world.prng().NextDesKey();
    ksim::NetAddress store_addr{0x0a000020, 751};
    ksim::NetAddress nfs_host{0x0a000011, 2049};
    khsm::KeyStore store(&hsm_world.network(), store_addr, master, 55);
    kcrypto::DesKey nfs_key = hsm_world.prng().NextDesKey();
    const kcrypto::DesBlock& kb = nfs_key.bytes();
    (void)khsm::KeyStore::Store(&hsm_world.network(), nfs_host, store_addr,
                                store.service_session_key(), "nfs",
                                kerb::BytesView(kb.data(), kb.size()));
    khsm::EncryptionUnit unit(77);
    auto handle = khsm::ProvisionServiceKeyFromKeystore(
        &hsm_world.network(), nfs_host, store_addr, store.service_session_key(), "nfs",
        &unit);
    std::printf("[f ] service key via keystore → HSM .......... %s (%zu keys in unit)\n",
                handle.ok() ? "OK" : "FAILED", unit.key_count());
  }

  std::printf("\nEvery attack in examples/attack_gallery.cpp is blocked against\n"
              "this configuration; the gallery shows each pairing explicitly.\n");
  return 0;
}
