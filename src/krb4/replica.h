// V4 KDC replica set: one primary plus N read-only slaves.
//
// The paper's availability story, made concrete: "there are several slave
// Kerberos servers which can respond to ticket requests", with database
// changes flowing master → slaves by periodic transfer (kprop). The primary
// owns the authoritative database, journaled through the kstore durability
// subsystem (src/store); each slave starts from a snapshot copy and serves
// AS/TGS requests at its own derived address (primary host + 1 + index,
// same ports). Registrations made on the primary after construction reach
// the slaves only through Propagate() — one kprop cycle shipping
// authenticated WAL deltas over the simulated network, exactly the real
// system's propagation lag, which several experiments depend on noticing.
//
// Propagation applies records through the slave store's shard locks, so a
// cycle is safe while serving workers read concurrently (the old wholesale
// database assignment raced them). A zero-slave set builds none of this
// machinery and is byte-identical to a standalone Kdc4.
//
// Clients fail over by endpoint order (as_endpoints()/tgs_endpoints():
// primary first, slaves after), which AttachClient wires up.

#ifndef SRC_KRB4_REPLICA_H_
#define SRC_KRB4_REPLICA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/krb4/client.h"
#include "src/krb4/kdc.h"
#include "src/krb4/kdcstore.h"

namespace krb4 {

class KdcReplicaSet4 {
 public:
  // Forks one PRNG stream per slave off `prng` before seeding the primary
  // with what remains, so a zero-slave set drives the primary with the
  // exact stream a bare Kdc4 would see.
  KdcReplicaSet4(ksim::Network* net, const ksim::NetAddress& as_addr,
                 const ksim::NetAddress& tgs_addr, ksim::HostClock clock, std::string realm,
                 KdcDatabase db, kcrypto::Prng prng, int slaves, KdcOptions options = {});

  Kdc4& primary() { return *primary_; }
  Kdc4& slave(int i) { return *slaves_.at(static_cast<size_t>(i)); }
  int slave_count() const { return static_cast<int>(slaves_.size()); }

  // Failover-ordered endpoint lists: primary first, then slaves.
  const std::vector<ksim::NetAddress>& as_endpoints() const { return as_endpoints_; }
  const std::vector<ksim::NetAddress>& tgs_endpoints() const { return tgs_endpoints_; }

  // One kprop cycle: ships the primary's WAL delta (or a wholesale
  // snapshot, when a slave predates the compaction horizon) to every
  // slave. No-op with zero slaves.
  void Propagate();

  // Registers the slave endpoints on a client's failover lists.
  void AttachClient(Client4& client) const;

  // The durable-store machinery; null with zero slaves.
  ReplicaPropagation* propagation() { return propagation_.get(); }

 private:
  std::unique_ptr<Kdc4> primary_;
  std::vector<std::unique_ptr<Kdc4>> slaves_;
  std::vector<ksim::NetAddress> as_endpoints_;
  std::vector<ksim::NetAddress> tgs_endpoints_;
  std::unique_ptr<ReplicaPropagation> propagation_;
};

}  // namespace krb4

#endif  // SRC_KRB4_REPLICA_H_
