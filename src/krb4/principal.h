// Kerberos principals: the <primary name, instance, realm> three-tuple.
//
// "If the principal is a user ... the primary name is the login identifier,
// and the instance is either null or represents particular attributes of
// the user, i.e., root. For a service, the service name is used as the
// primary name and the machine name is used as the instance."
//
// Shared by the V4 and V5 models.

#ifndef SRC_KRB4_PRINCIPAL_H_
#define SRC_KRB4_PRINCIPAL_H_

#include <string>

#include "src/common/result.h"
#include "src/encoding/io.h"

namespace krb4 {

struct Principal {
  std::string name;
  std::string instance;
  std::string realm;

  static Principal User(std::string user, std::string user_realm) {
    return Principal{std::move(user), "", std::move(user_realm)};
  }
  static Principal Service(std::string service, std::string host, std::string service_realm) {
    return Principal{std::move(service), std::move(host), std::move(service_realm)};
  }

  // "name.instance@REALM", the classic display form.
  std::string ToString() const;

  // Salt for string-to-key: realm then name then instance, as V4 did
  // (modulo V4's truncation quirks, which are not security-relevant here).
  std::string Salt() const { return realm + name + instance; }

  bool operator==(const Principal& other) const {
    return name == other.name && instance == other.instance && realm == other.realm;
  }
  bool operator<(const Principal& other) const;

  void EncodeTo(kenc::Writer& w) const;
  static kerb::Result<Principal> DecodeFrom(kenc::Reader& r);
};

// The well-known ticket-granting service principal for a realm.
Principal TgsPrincipal(const std::string& realm);

}  // namespace krb4

#endif  // SRC_KRB4_PRINCIPAL_H_
