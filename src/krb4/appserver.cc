#include "src/krb4/appserver.h"

#include <cstdlib>
#include <utility>

#include "src/krb4/principal_store.h"
#include "src/obs/kobs.h"

namespace krb4 {

AppServer4::AppServer4(ksim::Network* net, const ksim::NetAddress& addr, Principal self,
                       kcrypto::DesKey service_key, ksim::HostClock clock, AppHandler app,
                       AppServerOptions options)
    : self_(std::move(self)),
      service_key_(service_key),
      clock_(clock),
      app_(std::move(app)),
      options_(options),
      challenge_prng_(service_key.AsU64() ^ 0xc4a11e46e5ull) {
  net->Bind(addr, [this](const ksim::Message& msg) { return Handle(msg); });
}

kerb::Result<VerifiedSession> AppServer4::VerifyApRequest(const ApRequest4& req,
                                                          uint32_t src_addr,
                                                          kerb::Bytes* challenge_out) {
  auto fail = [this](kerb::ErrorCode code, const char* what) -> kerb::Error {
    ++rejected_;
    return kerb::MakeError(code, what);
  };

  ksim::Time now = clock_.Now();
  auto ticket = Ticket4::Unseal(service_key_, req.sealed_ticket);
  if (!ticket.ok()) {
    // kvno drain window: tickets sealed under a rotated-out key keep
    // verifying until that key's deadline passes (see Rekey).
    for (size_t i = 0; i < old_keys_.size(); ++i) {
      const auto& [old_key, not_after] = old_keys_[i];
      if (not_after != 0 && now > not_after) {
        continue;
      }
      auto old_ticket = Ticket4::Unseal(old_key, req.sealed_ticket);
      if (old_ticket.ok()) {
        ticket = std::move(old_ticket);
        ++old_key_accepts_;
        kobs::Emit(kobs::kSrcApp4, kobs::Ev::kKvnoOldKeyAccept, now, 0, i + 1);
        break;
      }
    }
  }
  if (!ticket.ok()) {
    return fail(kerb::ErrorCode::kAuthFailed, "ticket not sealed with our key");
  }
  if (!(ticket.value().service == self_)) {
    return fail(kerb::ErrorCode::kAuthFailed, "ticket names a different service");
  }
  if (ticket.value().Expired(now)) {
    return fail(kerb::ErrorCode::kExpired, "ticket expired");
  }

  kcrypto::DesKey session_key(ticket.value().session_key);
  auto auth = Authenticator4::Unseal(session_key, req.sealed_auth);
  if (!auth.ok()) {
    return fail(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == ticket.value().client)) {
    return fail(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  if (options_.check_address) {
    if (ticket.value().client_addr != src_addr ||
        auth.value().client_addr != ticket.value().client_addr) {
      return fail(kerb::ErrorCode::kAuthFailed, "address mismatch");
    }
  }
  if (options_.challenge_response) {
    // Freshness from our nonce, not their clock.
    std::erase_if(challenges_, [&](const auto& entry) {
      return entry.second < now - options_.clock_skew_limit;
    });
    bool answered = false;
    if (!req.challenge_response.empty()) {
      auto response = Unseal4(session_key, req.challenge_response);
      if (response.ok()) {
        kenc::Reader r(response.value());
        auto value = r.GetU64();
        if (value.ok()) {
          auto it = challenges_.find(value.value() - 1);
          if (it != challenges_.end()) {
            challenges_.erase(it);  // single use
            answered = true;
          }
        }
      }
    }
    if (!answered) {
      uint64_t nonce = challenge_prng_.NextU64();
      challenges_.emplace(nonce, now);
      if (challenge_out != nullptr) {
        kenc::Writer w;
        w.PutU64(nonce);
        *challenge_out = Seal4(session_key, w.Peek());
      }
      return fail(kerb::ErrorCode::kAuthFailed, "challenge issued");
    }
  } else if (std::llabs(auth.value().timestamp - now) > options_.clock_skew_limit) {
    return fail(kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }

  if (options_.replay_cache) {
    if (!seen_authenticators_.CheckAndInsert(auth.value().client.ToString(),
                                             auth.value().client_addr, auth.value().timestamp,
                                             now, options_.clock_skew_limit)) {
      return fail(kerb::ErrorCode::kReplay, "authenticator replayed");
    }
  }

  ++accepted_;
  VerifiedSession session;
  session.client = auth.value().client;
  session.client_addr = auth.value().client_addr;
  session.session_key = session_key;
  session.authenticator_time = auth.value().timestamp;
  return session;
}

void AppServer4::Rekey(const kcrypto::DesKey& new_key, ksim::Time old_not_after) {
  const ksim::Time now = clock_.Now();
  if (old_not_after > now) {
    old_keys_.insert(old_keys_.begin(), {service_key_, old_not_after});
  }
  // Prune keys whose drain window has already closed, and cap the ring to
  // the same depth the database keeps (current + kRingCap - 1 retained).
  std::erase_if(old_keys_, [now](const auto& entry) { return now > entry.second; });
  if (old_keys_.size() > PrincipalEntry::kRingCap - 1) {
    old_keys_.resize(PrincipalEntry::kRingCap - 1);
  }
  service_key_ = new_key;
}

kerb::Result<kerb::Bytes> AppServer4::Handle(const ksim::Message& msg) {
  auto framed = Unframe4(msg.payload);
  if (!framed.ok() || framed.value().first != MsgType::kApRequest) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AP request");
  }
  auto req = ApRequest4::Decode(framed.value().second);
  if (!req.ok()) {
    return req.error();
  }
  kerb::Bytes challenge;
  auto session = VerifyApRequest(req.value(), msg.src.host, &challenge);
  if (!session.ok()) {
    if (!challenge.empty()) {
      return MakeError4(kErrMethod4, challenge);
    }
    return session.error();
  }

  kerb::Bytes app_reply = app_ ? app_(session.value(), req.value().app_data) : kerb::Bytes{};
  if (!req.value().want_mutual) {
    return app_reply;
  }
  kenc::Writer w;
  w.PutLengthPrefixed(
      MakeApReply4(session.value().session_key, session.value().authenticator_time));
  w.PutBytes(app_reply);
  return Frame4(MsgType::kApReply, w.Peek());
}

}  // namespace krb4
