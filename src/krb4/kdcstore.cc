#include "src/krb4/kdcstore.h"

#include <set>
#include <utility>

#include "src/crypto/str2key.h"
#include "src/encoding/io.h"

namespace krb4 {

namespace {

// Fixed seed for the simulated device's fault stream. Deterministic and
// deliberately NOT drawn from the replica PRNG: the device must not perturb
// the key-generation streams that capture tests pin byte-for-byte.
constexpr uint64_t kDeviceSeed = 0x6b70726f70644256ull;

}  // namespace

kerb::Bytes EncodePrincipalUpsert(const Principal& principal, const kcrypto::DesKey& key,
                                  PrincipalKind kind) {
  kenc::Writer w;
  principal.EncodeTo(w);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutBytes(kerb::BytesView(key.bytes().data(), key.bytes().size()));
  return w.Take();
}

kerb::Bytes EncodePrincipalDelete(const Principal& principal) {
  kenc::Writer w;
  principal.EncodeTo(w);
  return w.Take();
}

kerb::Status ApplyStoreRecord(KdcDatabase& db, uint8_t op, kerb::BytesView payload) {
  kenc::Reader r(payload);
  auto principal = Principal::DecodeFrom(r);
  if (!principal.ok()) {
    return principal.error();
  }
  if (op == kstore::kWalOpDelete) {
    if (!r.AtEnd()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: trailing delete bytes");
    }
    db.Remove(principal.value());  // removing an absent principal is idempotent
    return kerb::Status::Ok();
  }
  if (op != kstore::kWalOpUpsert) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: unknown record op");
  }
  auto kind = r.GetU8();
  auto key_bytes = r.GetBytes(8);
  if (!kind.ok() || kind.value() > static_cast<uint8_t>(PrincipalKind::kService) ||
      !key_bytes.ok() || !r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: malformed upsert");
  }
  kcrypto::DesBlock block;
  std::copy(key_bytes.value().begin(), key_bytes.value().end(), block.begin());
  db.ApplyUpsert(principal.value(), kcrypto::DesKey(block),
                 static_cast<PrincipalKind>(kind.value()));
  return kerb::Status::Ok();
}

kstore::Snapshot SnapshotDatabase(const KdcDatabase& db, uint64_t lsn) {
  kstore::Snapshot snapshot;
  snapshot.lsn = lsn;
  for (const Principal& principal : db.Principals()) {
    kcrypto::DesKey key;
    PrincipalKind kind = PrincipalKind::kService;
    if (!db.store().Lookup(principal, &key, &kind)) {
      continue;  // racing removal; the entry set is re-snapshotted next cycle
    }
    snapshot.entries.push_back(EncodePrincipalUpsert(principal, key, kind));
  }
  return snapshot;
}

kerb::Status LoadSnapshotEntries(KdcDatabase& db, const kstore::Snapshot& snapshot) {
  // Decode everything before mutating anything: a malformed snapshot must
  // leave the database untouched.
  struct Entry {
    Principal principal;
    kcrypto::DesKey key;
    PrincipalKind kind;
  };
  std::vector<Entry> entries;
  entries.reserve(snapshot.entries.size());
  for (const kerb::Bytes& payload : snapshot.entries) {
    kenc::Reader r(payload);
    auto principal = Principal::DecodeFrom(r);
    auto kind = r.GetU8();
    auto key_bytes = r.GetBytes(8);
    if (!principal.ok() || !kind.ok() ||
        kind.value() > static_cast<uint8_t>(PrincipalKind::kService) || !key_bytes.ok() ||
        !r.AtEnd()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: malformed snapshot entry");
    }
    kcrypto::DesBlock block;
    std::copy(key_bytes.value().begin(), key_bytes.value().end(), block.begin());
    entries.push_back(Entry{std::move(principal).value(), kcrypto::DesKey(block),
                            static_cast<PrincipalKind>(kind.value())});
  }
  std::set<Principal> incoming;
  for (const Entry& entry : entries) {
    incoming.insert(entry.principal);
  }
  for (const Principal& existing : db.Principals()) {
    if (incoming.find(existing) == incoming.end()) {
      db.Remove(existing);
    }
  }
  for (const Entry& entry : entries) {
    db.ApplyUpsert(entry.principal, entry.key, entry.kind);
  }
  return kerb::Status::Ok();
}

ReplicaPropagation::ReplicaPropagation(ksim::Network* net, const std::string& realm,
                                       KdcDatabase* primary, uint32_t primary_host,
                                       kstore::KStoreOptions store_options,
                                       kstore::Propagator::Options prop_options)
    : primary_(primary), key_(kcrypto::StringToKey("kprop/" + realm, realm)) {
  const kstore::Snapshot base = SnapshotDatabase(*primary_, 0);
  store_ = std::make_unique<kstore::KStore>(kcrypto::Prng(kDeviceSeed), store_options, base);
  primary_->AttachJournal(store_.get());
  propagator_ = std::make_unique<kstore::Propagator>(
      net, store_.get(), key_, primary_host, prop_options,
      [this] { return SnapshotDatabase(*primary_, store_->last_lsn()); });
}

ReplicaPropagation::~ReplicaPropagation() {
  if (primary_ != nullptr) {
    primary_->AttachJournal(nullptr);
  }
}

void ReplicaPropagation::AddSlave(uint32_t slave_host, KdcDatabase* slave_db) {
  auto sink = std::make_unique<kstore::PropagationSink>(
      key_, store_->snapshot_lsn(),
      [slave_db](uint8_t op, kerb::BytesView payload) {
        return ApplyStoreRecord(*slave_db, op, payload);
      },
      [slave_db](const kstore::Snapshot& snapshot) {
        return LoadSnapshotEntries(*slave_db, snapshot);
      });
  propagator_->AddSlave(slave_host, sink.get());
  sinks_.push_back(std::move(sink));
}

kstore::Propagator::CycleReport ReplicaPropagation::Propagate() {
  last_report_ = propagator_->Propagate();
  return last_report_;
}

void ReplicaPropagation::Compact() {
  store_->Compact(SnapshotDatabase(*primary_, store_->last_lsn()));
}

}  // namespace krb4
