#include "src/krb4/kdcstore.h"

#include <set>
#include <utility>

#include "src/crypto/str2key.h"
#include "src/encoding/io.h"

namespace krb4 {

namespace {

// Fixed seed for the simulated device's fault stream. Deterministic and
// deliberately NOT drawn from the replica PRNG: the device must not perturb
// the key-generation streams that capture tests pin byte-for-byte.
constexpr uint64_t kDeviceSeed = 0x6b70726f70644256ull;

}  // namespace

kerb::Bytes EncodePrincipalEntry(const Principal& principal, const PrincipalEntry& entry) {
  kenc::Writer w;
  principal.EncodeTo(w);
  w.PutU8(static_cast<uint8_t>(entry.kind));
  w.PutU64(static_cast<uint64_t>(entry.max_life));
  w.PutU64(static_cast<uint64_t>(entry.max_renew));
  w.PutU8(static_cast<uint8_t>(entry.keys.size()));
  for (const KeyVersion& kv : entry.keys) {
    w.PutU32(kv.kvno);
    w.PutBytes(kerb::BytesView(kv.key.bytes().data(), kv.key.bytes().size()));
    w.PutU64(static_cast<uint64_t>(kv.not_after));
  }
  return w.Take();
}

kerb::Bytes EncodePrincipalUpsert(const Principal& principal, const kcrypto::DesKey& key,
                                  PrincipalKind kind) {
  PrincipalEntry entry;
  entry.kind = kind;
  entry.keys.push_back(KeyVersion{1, key, 0});
  return EncodePrincipalEntry(principal, entry);
}

kerb::Result<std::pair<Principal, PrincipalEntry>> DecodePrincipalEntry(kenc::Reader& r) {
  auto principal = Principal::DecodeFrom(r);
  if (!principal.ok()) {
    return principal.error();
  }
  auto kind = r.GetU8();
  auto max_life = r.GetU64();
  auto max_renew = r.GetU64();
  auto ring_count = r.GetU8();
  if (!kind.ok() || kind.value() > static_cast<uint8_t>(PrincipalKind::kService) ||
      !max_life.ok() || !max_renew.ok() || !ring_count.ok() || ring_count.value() == 0 ||
      ring_count.value() > kMaxRingEntries) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: malformed entry header");
  }
  PrincipalEntry entry;
  entry.kind = static_cast<PrincipalKind>(kind.value());
  entry.max_life = static_cast<ksim::Duration>(max_life.value());
  entry.max_renew = static_cast<ksim::Duration>(max_renew.value());
  entry.keys.reserve(ring_count.value());
  uint32_t prev_kvno = 0;
  for (size_t i = 0; i < ring_count.value(); ++i) {
    auto kvno = r.GetU32();
    auto key_bytes = r.GetBytes(8);
    auto not_after = r.GetU64();
    // kvnos must be strictly descending (current version first) — the
    // structural well-formedness check that keeps a corrupted record from
    // smuggling in a duplicate or reordered ring.
    if (!kvno.ok() || !key_bytes.ok() || !not_after.ok() || kvno.value() == 0 ||
        (i > 0 && kvno.value() >= prev_kvno)) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: malformed ring entry");
    }
    prev_kvno = kvno.value();
    kcrypto::DesBlock block;
    std::copy(key_bytes.value().begin(), key_bytes.value().end(), block.begin());
    entry.keys.push_back(KeyVersion{kvno.value(), kcrypto::DesKey(block),
                                    static_cast<ksim::Time>(not_after.value())});
  }
  return std::make_pair(std::move(principal).value(), std::move(entry));
}

kerb::Bytes EncodePrincipalDelete(const Principal& principal) {
  kenc::Writer w;
  principal.EncodeTo(w);
  return w.Take();
}

kerb::Status ApplyStoreRecord(KdcDatabase& db, uint8_t op, kerb::BytesView payload) {
  kenc::Reader r(payload);
  if (op == kstore::kWalOpDelete) {
    auto principal = Principal::DecodeFrom(r);
    if (!principal.ok()) {
      return principal.error();
    }
    if (!r.AtEnd()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: trailing delete bytes");
    }
    db.Remove(principal.value());  // removing an absent principal is idempotent
    return kerb::Status::Ok();
  }
  if (op != kstore::kWalOpUpsert) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: unknown record op");
  }
  auto decoded = DecodePrincipalEntry(r);
  if (!decoded.ok()) {
    return decoded.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: trailing upsert bytes");
  }
  db.ApplyEntry(decoded.value().first, decoded.value().second);
  return kerb::Status::Ok();
}

kstore::Snapshot SnapshotDatabase(const KdcDatabase& db, uint64_t lsn) {
  kstore::Snapshot snapshot;
  snapshot.lsn = lsn;
  for (const Principal& principal : db.Principals()) {
    PrincipalEntry entry;
    if (!db.store().LookupEntry(principal, &entry)) {
      continue;  // racing removal; the entry set is re-snapshotted next cycle
    }
    snapshot.entries.push_back(EncodePrincipalEntry(principal, entry));
  }
  return snapshot;
}

kerb::Status LoadSnapshotEntries(KdcDatabase& db, const kstore::Snapshot& snapshot) {
  // Decode everything before mutating anything: a malformed snapshot must
  // leave the database untouched.
  std::vector<std::pair<Principal, PrincipalEntry>> entries;
  entries.reserve(snapshot.entries.size());
  for (const kerb::Bytes& payload : snapshot.entries) {
    kenc::Reader r(payload);
    auto decoded = DecodePrincipalEntry(r);
    if (!decoded.ok() || !r.AtEnd()) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "kdcstore: malformed snapshot entry");
    }
    entries.push_back(std::move(decoded).value());
  }
  std::set<Principal> incoming;
  for (const auto& entry : entries) {
    incoming.insert(entry.first);
  }
  for (const Principal& existing : db.Principals()) {
    if (incoming.find(existing) == incoming.end()) {
      db.Remove(existing);
    }
  }
  for (const auto& entry : entries) {
    db.ApplyEntry(entry.first, entry.second);
  }
  return kerb::Status::Ok();
}

ReplicaPropagation::ReplicaPropagation(ksim::Network* net, const std::string& realm,
                                       KdcDatabase* primary, uint32_t primary_host,
                                       kstore::KStoreOptions store_options,
                                       kstore::Propagator::Options prop_options)
    : primary_(primary), key_(kcrypto::StringToKey("kprop/" + realm, realm)) {
  const kstore::Snapshot base = SnapshotDatabase(*primary_, 0);
  store_ = std::make_unique<kstore::KStore>(kcrypto::Prng(kDeviceSeed), store_options, base);
  primary_->AttachJournal(store_.get());
  propagator_ = std::make_unique<kstore::Propagator>(
      net, store_.get(), key_, primary_host, prop_options,
      [this] { return SnapshotDatabase(*primary_, store_->last_lsn()); });
}

ReplicaPropagation::~ReplicaPropagation() {
  if (primary_ != nullptr) {
    primary_->AttachJournal(nullptr);
  }
}

void ReplicaPropagation::AddSlave(uint32_t slave_host, KdcDatabase* slave_db) {
  auto sink = std::make_unique<kstore::PropagationSink>(
      key_, store_->snapshot_lsn(),
      [slave_db](uint8_t op, kerb::BytesView payload) {
        return ApplyStoreRecord(*slave_db, op, payload);
      },
      [slave_db](const kstore::Snapshot& snapshot) {
        return LoadSnapshotEntries(*slave_db, snapshot);
      });
  propagator_->AddSlave(slave_host, sink.get());
  sinks_.push_back(std::move(sink));
}

kstore::Propagator::CycleReport ReplicaPropagation::Propagate() {
  last_report_ = propagator_->Propagate();
  return last_report_;
}

void ReplicaPropagation::Compact() {
  store_->Compact(SnapshotDatabase(*primary_, store_->last_lsn()));
}

}  // namespace krb4
