// The Kerberos V4 client library: login, ticket acquisition, AP requests.
//
// The credential cache is deliberately inspectable: the paper's workstation
// discussion turns on the fact that "the session keys returned by the TGS
// cannot be stored securely; of necessity, they are stored in some area
// accessible to root." Attack code models host compromise by reading the
// cache through `credentials()` — it never bypasses the protocol itself.

#ifndef SRC_KRB4_CLIENT_H_
#define SRC_KRB4_CLIENT_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/krb4/messages.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"
#include "src/sim/retry.h"

namespace krb4 {

// One service's worth of cached credentials.
struct ServiceCredentials {
  Principal service;
  kcrypto::DesKey session_key;  // K_c,s
  kerb::Bytes sealed_ticket;    // {T_c,s}K_s
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
};

// The ticket-granting credentials from login.
struct TgsCredentials {
  kcrypto::DesKey session_key;  // K_c,tgs
  kerb::Bytes sealed_tgt;       // {T_c,tgs}K_tgs
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
};

class Client4 {
 public:
  Client4(ksim::Network* net, const ksim::NetAddress& self, ksim::HostClock clock,
          Principal user, ksim::NetAddress as_addr, ksim::NetAddress tgs_addr);

  // The initial exchange: request a TGT and decrypt the reply with the
  // password-derived key. The password never crosses the network; the
  // reply's decryptability under K_c is what an eavesdropper attacks.
  kerb::Status Login(std::string_view password,
                     ksim::Duration lifetime = 8 * ksim::kHour);

  // Login with a raw key — how a daemon authenticates from a srvtab file.
  // The paper: "storing plaintext keys in a machine is generally felt to be
  // a bad idea" — experiment E17 shows why.
  kerb::Status LoginWithKey(const kcrypto::DesKey& key,
                            ksim::Duration lifetime = 8 * ksim::kHour);

  // TGS exchange for a service ticket (cached per service).
  kerb::Result<ServiceCredentials> GetServiceTicket(const Principal& service,
                                                    ksim::Duration lifetime = 8 * ksim::kHour);

  // Builds a framed AP request for the service, with a fresh authenticator.
  // `challenge_response` carries the answer to a server challenge on the
  // second leg of the challenge/response option.
  kerb::Result<kerb::Bytes> MakeApRequest(const Principal& service, bool want_mutual,
                                          kerb::BytesView app_data = {},
                                          kerb::BytesView challenge_response = {});

  // Full round trip: AP request, transparently answering a server challenge
  // if one comes back, verifying the mutual reply if requested, returning
  // the application payload.
  kerb::Result<kerb::Bytes> CallService(const ksim::NetAddress& service_addr,
                                        const Principal& service, bool want_mutual,
                                        kerb::BytesView app_data = {});

  // Opts into resilient exchanges (src/sim/retry.h): every KDC and service
  // call retries per `policy`, charging timeouts and backoff to the shared
  // SimClock so retransmitted authenticators carry fresh timestamps. KDC
  // retries resend identical bytes (the KDC reply cache absorbs them); AP
  // retries rebuild the authenticator — the paper's retransmission fix.
  // Without this call the client sends exactly one packet per exchange,
  // byte-identical to the pre-retry client.
  void ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                      uint64_t jitter_seed);

  // Appends a read-only slave KDC to the failover lists; exchanges try the
  // primary first, slaves in registration order.
  void AddSlaveKdc(const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr);

  // Cluster routing hooks, installed by kcluster::ClientRouter (the client
  // library stays free of cluster types; the hooks speak only addresses and
  // opaque referral bytes). `endpoints` picks the KDC endpoint list for a
  // request routed by `principal` (the client principal for AS, the service
  // principal for TGS); empty means "use the configured failover list".
  // `on_referral` feeds a kClusterReferral body back to the router — true
  // means the routing view changed and the exchange should re-route.
  struct ClusterRouting {
    std::function<std::vector<ksim::NetAddress>(const Principal& principal, bool tgs)>
        endpoints;
    std::function<bool(kerb::BytesView referral_body)> on_referral;
  };
  void SetClusterRouting(ClusterRouting routing) { routing_ = std::move(routing); }

  // Forgets cached service tickets (the TGT survives). Load harnesses use
  // this so repeated TGS requests actually exercise the KDC instead of the
  // local cache.
  void DropServiceCredentials() { service_creds_.clear(); }

  ksim::RetryStats retry_stats() const {
    return exchanger_.has_value() ? exchanger_->stats() : ksim::RetryStats{};
  }

  // "Kerberos attempts to wipe out old keys at logoff time."
  void Logout();

  bool logged_in() const { return tgs_creds_.has_value(); }
  const Principal& user() const { return user_; }
  const ksim::NetAddress& address() const { return self_; }

  // Host-compromise surface (see file comment).
  const std::optional<TgsCredentials>& tgs_credentials() const { return tgs_creds_; }
  const std::map<Principal, ServiceCredentials>& credentials() const { return service_creds_; }

 private:
  // Referral hops a single exchange may follow before failing closed: one
  // stale view plus its correction, with slack for a concurrent rebalance.
  static constexpr int kMaxReferralHops = 4;

  // Fixed request bytes through the AS/TGS failover list (retransmission);
  // single direct call when retry is not configured.
  kerb::Result<kerb::Bytes> KdcExchange(const std::vector<ksim::NetAddress>& endpoints,
                                        const kerb::Bytes& payload);
  // KdcExchange through the cluster routing hooks when installed: routes by
  // `routing_principal`, follows referrals (≤ kMaxReferralHops), falls back
  // to `fallback` endpoints when the router has no view yet.
  kerb::Result<kerb::Bytes> RoutedKdcExchange(const Principal& routing_principal, bool tgs,
                                              const std::vector<ksim::NetAddress>& fallback,
                                              const kerb::Bytes& payload);
  // Fresh request per attempt against one service address.
  kerb::Result<kerb::Bytes> ServiceExchange(const ksim::NetAddress& addr,
                                            const ksim::Exchanger::Builder& build);

  ksim::Network* net_;
  ksim::NetAddress self_;
  ksim::HostClock clock_;
  Principal user_;
  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  std::vector<ksim::NetAddress> as_endpoints_;
  std::vector<ksim::NetAddress> tgs_endpoints_;
  std::optional<ksim::Exchanger> exchanger_;
  std::optional<ClusterRouting> routing_;

  std::optional<TgsCredentials> tgs_creds_;
  std::map<Principal, ServiceCredentials> service_creds_;
};

}  // namespace krb4

#endif  // SRC_KRB4_CLIENT_H_
