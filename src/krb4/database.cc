#include "src/krb4/database.h"

#include "src/crypto/str2key.h"
#include "src/krb4/kdcstore.h"
#include "src/store/kstore.h"

namespace krb4 {

void KdcDatabase::AddUser(const Principal& user, std::string_view password) {
  ApplyUpsert(user, kcrypto::StringToKey(password, user.Salt()), PrincipalKind::kUser);
}

void KdcDatabase::AddService(const Principal& service, const kcrypto::DesKey& key) {
  ApplyUpsert(service, key, PrincipalKind::kService);
}

void KdcDatabase::ApplyUpsert(const Principal& principal, const kcrypto::DesKey& key,
                              PrincipalKind kind) {
  if (journal_ != nullptr) {
    journal_->Append(kstore::kWalOpUpsert, EncodePrincipalUpsert(principal, key, kind));
  }
  store_.Upsert(principal, key, kind);
}

bool KdcDatabase::Remove(const Principal& principal) {
  if (!store_.Contains(principal)) {
    return false;
  }
  if (journal_ != nullptr) {
    journal_->Append(kstore::kWalOpDelete, EncodePrincipalDelete(principal));
  }
  return store_.Erase(principal);
}

PrincipalKind KdcDatabase::Kind(const Principal& principal) const {
  PrincipalKind kind = PrincipalKind::kService;
  store_.Lookup(principal, nullptr, &kind);
  return kind;
}

kcrypto::DesKey KdcDatabase::AddServiceWithRandomKey(const Principal& service,
                                                     kcrypto::Prng& prng) {
  kcrypto::DesKey key = prng.NextDesKey();
  AddService(service, key);
  return key;
}

kerb::Result<kcrypto::DesKey> KdcDatabase::Lookup(const Principal& principal) const {
  kcrypto::DesKey key;
  if (!store_.Lookup(principal, &key)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  return key;
}

}  // namespace krb4
