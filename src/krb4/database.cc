#include "src/krb4/database.h"

#include "src/crypto/str2key.h"

namespace krb4 {

void KdcDatabase::AddUser(const Principal& user, std::string_view password) {
  store_.Upsert(user, kcrypto::StringToKey(password, user.Salt()), PrincipalKind::kUser);
}

void KdcDatabase::AddService(const Principal& service, const kcrypto::DesKey& key) {
  store_.Upsert(service, key, PrincipalKind::kService);
}

PrincipalKind KdcDatabase::Kind(const Principal& principal) const {
  PrincipalKind kind = PrincipalKind::kService;
  store_.Lookup(principal, nullptr, &kind);
  return kind;
}

kcrypto::DesKey KdcDatabase::AddServiceWithRandomKey(const Principal& service,
                                                     kcrypto::Prng& prng) {
  kcrypto::DesKey key = prng.NextDesKey();
  AddService(service, key);
  return key;
}

kerb::Result<kcrypto::DesKey> KdcDatabase::Lookup(const Principal& principal) const {
  kcrypto::DesKey key;
  if (!store_.Lookup(principal, &key)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  return key;
}

}  // namespace krb4
