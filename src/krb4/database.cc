#include "src/krb4/database.h"

#include "src/crypto/str2key.h"

namespace krb4 {

void KdcDatabase::AddUser(const Principal& user, std::string_view password) {
  keys_.insert_or_assign(user, kcrypto::StringToKey(password, user.Salt()));
  kinds_.insert_or_assign(user, PrincipalKind::kUser);
}

void KdcDatabase::AddService(const Principal& service, const kcrypto::DesKey& key) {
  keys_.insert_or_assign(service, key);
  kinds_.insert_or_assign(service, PrincipalKind::kService);
}

PrincipalKind KdcDatabase::Kind(const Principal& principal) const {
  auto it = kinds_.find(principal);
  return it == kinds_.end() ? PrincipalKind::kService : it->second;
}

kcrypto::DesKey KdcDatabase::AddServiceWithRandomKey(const Principal& service,
                                                     kcrypto::Prng& prng) {
  kcrypto::DesKey key = prng.NextDesKey();
  AddService(service, key);
  return key;
}

kerb::Result<kcrypto::DesKey> KdcDatabase::Lookup(const Principal& principal) const {
  auto it = keys_.find(principal);
  if (it == keys_.end()) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  return it->second;
}

std::vector<Principal> KdcDatabase::Principals() const {
  std::vector<Principal> out;
  out.reserve(keys_.size());
  for (const auto& [principal, key] : keys_) {
    out.push_back(principal);
  }
  return out;
}

}  // namespace krb4
