#include "src/krb4/database.h"

#include "src/crypto/str2key.h"
#include "src/krb4/kdcstore.h"
#include "src/obs/kobs.h"
#include "src/store/kstore.h"

namespace krb4 {

void KdcDatabase::AddUser(const Principal& user, std::string_view password) {
  ApplyUpsert(user, kcrypto::StringToKey(password, user.Salt()), PrincipalKind::kUser);
}

void KdcDatabase::AddService(const Principal& service, const kcrypto::DesKey& key) {
  ApplyUpsert(service, key, PrincipalKind::kService);
}

void KdcDatabase::ApplyUpsert(const Principal& principal, const kcrypto::DesKey& key,
                              PrincipalKind kind) {
  if (journal_ != nullptr) {
    journal_->Append(kstore::kWalOpUpsert, EncodePrincipalUpsert(principal, key, kind));
  }
  store_.Upsert(principal, key, kind);
}

bool KdcDatabase::ApplyEntry(const Principal& principal, const PrincipalEntry& entry) {
  if (entry.keys.empty()) {
    return false;
  }
  if (journal_ != nullptr) {
    journal_->Append(kstore::kWalOpUpsert, EncodePrincipalEntry(principal, entry));
  }
  return store_.UpsertEntry(principal, entry);
}

kerb::Result<uint32_t> KdcDatabase::RotateKey(const Principal& principal,
                                              const kcrypto::DesKey& new_key, ksim::Time now,
                                              ksim::Time retain_until) {
  PrincipalEntry entry;
  if (!store_.LookupEntry(principal, &entry)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  const uint32_t new_kvno = entry.keys.front().kvno + 1;
  // The outgoing current version starts its drain window (retain_until == 0
  // means no window at all: the old key is dropped outright); versions
  // whose window has already closed fall out of the ring here.
  entry.keys.front().not_after = retain_until;
  std::vector<KeyVersion> ring;
  ring.push_back(KeyVersion{new_kvno, new_key, 0});
  for (const KeyVersion& kv : entry.keys) {
    if (kv.not_after == 0 || now > kv.not_after) {
      continue;
    }
    if (ring.size() >= PrincipalEntry::kRingCap) {
      break;
    }
    ring.push_back(kv);
  }
  entry.keys = std::move(ring);
  ApplyEntry(principal, entry);
  kobs::EmitNow(kobs::kSrcAdmin, kobs::Ev::kKvnoRotate, PrincipalStore::Hash(principal),
                new_kvno);
  return new_kvno;
}

kerb::Result<uint32_t> KdcDatabase::ChangePassword(const Principal& principal,
                                                   std::string_view password, ksim::Time now,
                                                   ksim::Time retain_until) {
  return RotateKey(principal, kcrypto::StringToKey(password, principal.Salt()), now,
                   retain_until);
}

bool KdcDatabase::Remove(const Principal& principal) {
  if (!store_.Contains(principal)) {
    return false;
  }
  if (journal_ != nullptr) {
    journal_->Append(kstore::kWalOpDelete, EncodePrincipalDelete(principal));
  }
  return store_.Erase(principal);
}

PrincipalKind KdcDatabase::Kind(const Principal& principal) const {
  PrincipalKind kind = PrincipalKind::kService;
  store_.Lookup(principal, nullptr, &kind);
  return kind;
}

kcrypto::DesKey KdcDatabase::AddServiceWithRandomKey(const Principal& service,
                                                     kcrypto::Prng& prng) {
  kcrypto::DesKey key = prng.NextDesKey();
  AddService(service, key);
  return key;
}

kerb::Result<kcrypto::DesKey> KdcDatabase::Lookup(const Principal& principal) const {
  kcrypto::DesKey key;
  if (!store_.Lookup(principal, &key)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  return key;
}

kerb::Result<PrincipalEntry> KdcDatabase::LookupEntry(const Principal& principal) const {
  PrincipalEntry entry;
  if (!store_.LookupEntry(principal, &entry)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  return entry;
}

kerb::Result<kcrypto::DesKey> KdcDatabase::LookupKvno(const Principal& principal, uint32_t kvno,
                                                      ksim::Time now) const {
  PrincipalEntry entry;
  if (!store_.LookupEntry(principal, &entry)) {
    return kerb::MakeError(kerb::ErrorCode::kNotFound,
                           "unknown principal " + principal.ToString());
  }
  for (const KeyVersion& kv : entry.keys) {
    if (kv.kvno != kvno) {
      continue;
    }
    if (kv.not_after != 0 && now > kv.not_after) {
      return kerb::MakeError(kerb::ErrorCode::kExpired,
                             "key version past its drain window");
    }
    return kv.key;
  }
  return kerb::MakeError(kerb::ErrorCode::kNotFound, "unknown key version");
}

uint32_t KdcDatabase::Kvno(const Principal& principal) const {
  PrincipalEntry entry;
  return store_.LookupEntry(principal, &entry) ? entry.kvno() : 0;
}

}  // namespace krb4
