// A Kerberos V4 application server.
//
// Verification follows the V4 rules — unseal the ticket with the service
// key, unseal the authenticator with the ticket's session key, compare
// client identities and addresses, and check the timestamp against the
// skew window. The replay cache is OFF by default, matching the historical
// record the paper cites: "the original design of Kerberos required such
// caching, though this was never implemented" and "to date, we know of no
// multi-threaded server implementation which caches authenticators."
// Experiments toggle it (and address checking) per configuration.

#ifndef SRC_KRB4_APPSERVER_H_
#define SRC_KRB4_APPSERVER_H_

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/crypto/prng.h"
#include "src/krb4/messages.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"
#include "src/sim/replaycache.h"

namespace krb4 {

struct AppServerOptions {
  bool replay_cache = false;   // historically unimplemented
  bool check_address = true;   // V4 always checked; E12 configures this off
  // Recommendation (a) retrofitted to V4: "it would seem reasonable to
  // allow any service to insist on the challenge/response option." When
  // set, authenticator timestamps are ignored; freshness comes from a
  // server nonce the client must echo + 1 under the session key.
  bool challenge_response = false;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
};

// What the server learns from a valid AP request.
struct VerifiedSession {
  Principal client;
  uint32_t client_addr = 0;
  kcrypto::DesKey session_key;  // the ticket's multi-session key
  ksim::Time authenticator_time = 0;
};

class AppServer4 {
 public:
  // `app` maps (session, request payload) to a reply payload.
  using AppHandler =
      std::function<kerb::Bytes(const VerifiedSession&, const kerb::Bytes& app_data)>;

  AppServer4(ksim::Network* net, const ksim::NetAddress& addr, Principal self,
             kcrypto::DesKey service_key, ksim::HostClock clock, AppHandler app,
             AppServerOptions options = {});

  // Core verification, usable without the network plumbing (tests and the
  // Morris-attack experiment drive it directly). In challenge/response mode
  // a first presentation fails with `challenge_out` set to the sealed nonce
  // the client must answer.
  kerb::Result<VerifiedSession> VerifyApRequest(const ApRequest4& req, uint32_t src_addr,
                                                kerb::Bytes* challenge_out = nullptr);

  const Principal& principal() const { return self_; }
  const AppServerOptions& options() const { return options_; }
  void set_options(const AppServerOptions& options) { options_ = options; }

  // Installs a new current service key (the KDC-side rotation bumped the
  // kvno; the server only needs the key material). The outgoing key stays
  // accepted for tickets already sealed under it until `old_not_after`
  // virtual time (0 drops it immediately) — the drain window that keeps
  // unexpired old-kvno tickets verifying mid-rotation.
  void Rekey(const kcrypto::DesKey& new_key, ksim::Time old_not_after);

  uint64_t old_key_accepts() const { return old_key_accepts_; }

  // The server's view of time. Mutable because time-synchronization clients
  // slew it — which is exactly the surface experiment E3 attacks.
  ksim::HostClock& clock() { return clock_; }

  uint64_t accepted_requests() const { return accepted_; }
  uint64_t rejected_requests() const { return rejected_; }
  size_t replay_cache_size() const { return seen_authenticators_.size(); }
  size_t outstanding_challenges() const { return challenges_.size(); }

 private:
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  Principal self_;
  kcrypto::DesKey service_key_;
  // Retained previous service keys, newest first, each with its drain
  // deadline. Tried only after the current key fails to unseal a ticket.
  std::vector<std::pair<kcrypto::DesKey, ksim::Time>> old_keys_;
  ksim::HostClock clock_;
  AppHandler app_;
  AppServerOptions options_;
  // (client, addr, timestamp) tuples inside the live window — the sharded
  // cache a multi-threaded server implementation needs (the paper: "we know
  // of no multi-threaded server implementation which caches authenticators").
  ksim::ShardedReplayCache seen_authenticators_;
  // Outstanding challenge nonces → issue time (challenge/response mode).
  std::map<uint64_t, ksim::Time> challenges_;
  kcrypto::Prng challenge_prng_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t old_key_accepts_ = 0;
};

}  // namespace krb4

#endif  // SRC_KRB4_APPSERVER_H_
