// Thread-safe V4 KDC serving core.
//
// The protocol logic of the V4 authentication and ticket-granting servers,
// factored out of the network-facing Kdc4 wrapper so two drivers can share
// it:
//   * the deterministic simulation (src/krb4/kdc.h) drives it with ONE
//     KdcContext on one thread, producing byte-identical replies to the
//     pre-split handlers (pinned by tests/integration/kdc_capture_test.cc);
//   * the parallel bench harness (src/attacks/kdcload.h) drives it with a
//     KERB_KDC_THREADS worker pool, one KdcContext per worker.
//
// The core itself holds only state that is safe to share: the sharded
// principal store (reader-locked) and atomic request counters. Everything
// per-request — the PRNG stream, the derived-key cache, the encode scratch
// buffers — lives in the caller-owned KdcContext, so handlers never contend
// on anything but the store's shard locks.

#ifndef SRC_KRB4_KDCCORE_H_
#define SRC_KRB4_KDCCORE_H_

#include <algorithm>
#include <any>
#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/dh.h"
#include "src/crypto/prng.h"
#include "src/krb4/database.h"
#include "src/krb4/messages.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace krb4 {

struct KdcOptions {
  ksim::Duration max_ticket_lifetime = 8 * ksim::kHour;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  // Retransmit-safe reply cache: a request whose (source, bytes) pair was
  // answered within this window returns the stored reply instead of minting
  // a second ticket with a fresh session key. Zero disables. Off by default
  // because V4 AS requests carry no nonce — two *distinct* logins inside
  // the window are byte-identical, and experiments that model repeated
  // logins expect fresh issuance. Enable it (kept to retransmission
  // timescales, seconds not minutes) wherever clients retry: the chaos
  // testbeds do.
  ksim::Duration reply_cache_window = 0;
  // Route the Bind handlers through HandleAsBatch/HandleTgsBatch (with
  // single-request batches) instead of HandleAs/HandleTgs, so the sim's
  // one-at-a-time delivery exercises the batched dispatch path. Verdicts
  // are pinned identical to sequential serving by the chaos tests.
  bool serve_batched = false;
};

// Small direct-mapped cache of keys copied out of the principal store,
// validated against the store's generation counter so post-construction
// registrations (several attack scenarios add services mid-run) invalidate
// it automatically. Returns keys by value: a later insert may overwrite any
// slot, so references into the cache would dangle within one request.
class KdcKeyCache {
 public:
  bool Get(uint64_t generation, uint64_t hash, const Principal& principal,
           kcrypto::DesKey* key_out) const {
    const Slot& slot = slots_[hash % kSlots];
    if (slot.used && slot.generation == generation && slot.hash == hash &&
        slot.principal == principal) {
      *key_out = slot.key;
      return true;
    }
    return false;
  }

  void Put(uint64_t generation, uint64_t hash, const Principal& principal,
           const kcrypto::DesKey& key) {
    Slot& slot = slots_[hash % kSlots];
    slot.used = true;
    slot.generation = generation;
    slot.hash = hash;
    slot.principal = principal;
    slot.key = key;
  }

 private:
  static constexpr size_t kSlots = 64;
  struct Slot {
    uint64_t generation = 0;
    uint64_t hash = 0;
    bool used = false;
    Principal principal;
    kcrypto::DesKey key;
  };
  std::array<Slot, kSlots> slots_;
};

// Memo of deterministic unseal results, keyed by (tag, sealing key,
// ciphertext). A KDC sees the same sealed TGT on every ticket-granting
// request a client makes for the lifetime of its login session; decrypting
// and decoding it is a pure function of key and ciphertext, so the decoded
// ticket can be reused instead of re-unsealed. Only constant-per-session
// blobs belong here — never authenticators or preauth data, which change
// per request in real traffic. Direct-mapped; the stored ciphertext and key
// bytes are compared in full on lookup, so a hash collision costs a miss,
// never a wrong ticket. Failures are not cached (garbage varies).
class KdcUnsealMemo {
 public:
  template <typename T>
  const T* Get(uint32_t tag, const kcrypto::DesKey& key, kerb::BytesView sealed) const {
    const Entry& entry = entries_[Slot(sealed)];
    if (!entry.used || entry.tag != tag || entry.key_bytes != key.bytes() ||
        entry.sealed.size() != sealed.size() ||
        !std::equal(entry.sealed.begin(), entry.sealed.end(), sealed.begin())) {
      return nullptr;
    }
    return std::any_cast<T>(&entry.value);
  }

  template <typename T>
  const T* Put(uint32_t tag, const kcrypto::DesKey& key, kerb::BytesView sealed, T value) {
    Entry& entry = entries_[Slot(sealed)];
    entry.used = true;
    entry.tag = tag;
    entry.key_bytes = key.bytes();
    entry.sealed.assign(sealed.begin(), sealed.end());
    entry.value = std::move(value);
    return std::any_cast<T>(&entry.value);
  }

 private:
  static constexpr size_t kSlots = 16;

  static size_t Slot(kerb::BytesView sealed) {
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : sealed) {
      h = (h ^ b) * 1099511628211ull;
    }
    return static_cast<size_t>(h & (kSlots - 1));
  }

  struct Entry {
    bool used = false;
    uint32_t tag = 0;
    kcrypto::DesBlock key_bytes{};
    kerb::Bytes sealed;
    std::any value;
  };
  std::array<Entry, kSlots> entries_;
};

// Retransmit-safe reply memo, keyed by (claimed source, full request
// bytes). A client that never saw a reply resends the identical packet; a
// faulty network duplicates packets on its own. Either way the KDC must not
// issue twice: the duplicate gets the stored reply, byte for byte. Entries
// expire after a freshness window so the cache answers retransmissions, not
// history. Direct-mapped with full-bytes compare on lookup — a hash
// collision evicts, never mis-serves. Per-context like the other memos, so
// the serving path stays lock-free.
class KdcReplyCache {
 public:
  // Returns the cached reply for a fresh duplicate, or nullptr.
  const kerb::Bytes* Get(const ksim::NetAddress& src, kerb::BytesView request, ksim::Time now,
                         ksim::Duration window) const {
    const Entry& entry = entries_[Slot(src, request)];
    if (!entry.used || entry.src_host != src.host || entry.src_port != src.port ||
        now - entry.stored_at > window || entry.request.size() != request.size() ||
        !std::equal(entry.request.begin(), entry.request.end(), request.begin())) {
      return nullptr;
    }
    return &entry.reply;
  }

  void Put(const ksim::NetAddress& src, kerb::BytesView request, kerb::BytesView reply,
           ksim::Time now) {
    Entry& entry = entries_[Slot(src, request)];
    entry.used = true;
    entry.src_host = src.host;
    entry.src_port = src.port;
    entry.request.assign(request.begin(), request.end());
    entry.reply.assign(reply.begin(), reply.end());
    entry.stored_at = now;
  }

 private:
  static constexpr size_t kSlots = 16;

  static size_t Slot(const ksim::NetAddress& src, kerb::BytesView request) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint8_t b) { h = (h ^ b) * 1099511628211ull; };
    for (int i = 0; i < 4; ++i) {
      mix(static_cast<uint8_t>(src.host >> (8 * i)));
    }
    mix(static_cast<uint8_t>(src.port));
    mix(static_cast<uint8_t>(src.port >> 8));
    for (uint8_t b : request) {
      mix(b);
    }
    return static_cast<size_t>(h & (kSlots - 1));
  }

  struct Entry {
    bool used = false;
    uint32_t src_host = 0;
    uint16_t src_port = 0;
    kerb::Bytes request;
    kerb::Bytes reply;
    ksim::Time stored_at = 0;
  };
  std::array<Entry, kSlots> entries_;
};

// Reusable encode buffers. After the first few requests every buffer has
// its high-water capacity and the encode path stops allocating (the one
// exception is the reply handed back to the network, which the caller
// owns).
struct KdcScratch {
  kerb::Bytes ticket_plain;
  kerb::Bytes ticket_sealed;
  kerb::Bytes body_plain;
  kerb::Bytes body_sealed;
  kerb::Bytes pk_outer;  // DH-layer seal of body_sealed in the PK AS path
  kerb::Bytes reply;
};

// Everything one serving thread owns exclusively.
struct KdcContext {
  explicit KdcContext(kcrypto::Prng context_prng) : prng(context_prng) {}

  kcrypto::Prng prng;
  KdcKeyCache keys;
  KdcUnsealMemo unseals;
  KdcReplyCache replies;
  KdcScratch scratch;
};

class KdcCore4 {
 public:
  KdcCore4(ksim::HostClock clock, std::string realm, KdcDatabase db, KdcOptions options);

  kerb::Result<kerb::Bytes> HandleAs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> HandleTgs(const ksim::Message& msg, KdcContext& ctx);

  // Batched dispatch: serves msgs[0..n) through one context in three
  // phases — decode every request, resolve the batch's principal keys
  // through LookupMany (one shard-lock acquisition per shard per batch),
  // then serve strictly in request order. Replies are appended to
  // `replies`, byte-identical to calling the one-at-a-time handler on each
  // message in sequence (pinned by tests/integration/kdc_batch_test.cc):
  // decoding is pure, key pre-resolution only warms the context's key
  // cache, and everything ordered — the PRNG stream, the reply cache, the
  // unseal memo — runs in the serve phase in request order. With tracing
  // enabled the batch falls back to the sequential handlers so trace
  // streams keep their per-request event order.
  void HandleAsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                     std::vector<kerb::Result<kerb::Bytes>>& replies);
  void HandleTgsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                      std::vector<kerb::Result<kerb::Bytes>>& replies);

  // Enables the public-key preauthenticated AS variant (MsgType::
  // kAsPkRequest) over `group`. Builds the group's cached modexp engine —
  // Montgomery context plus fixed-base g^x comb table — up front, so every
  // login the core serves afterwards reuses it. Call before serving; the
  // group is read-only once requests flow.
  void EnablePkPreauth(kcrypto::DhGroup group);
  bool pk_preauth_enabled() const { return pk_group_.has_value(); }

  const std::string& realm() const { return realm_; }
  KdcDatabase& database() { return db_; }
  const KdcOptions& options() const { return options_; }

  uint64_t pk_as_requests_served() const {
    return pk_as_requests_.load(std::memory_order_relaxed);
  }
  uint64_t as_requests_served() const { return as_requests_.load(std::memory_order_relaxed); }
  uint64_t tgs_requests_served() const { return tgs_requests_.load(std::memory_order_relaxed); }
  uint64_t reply_cache_hits() const { return reply_cache_hits_.load(std::memory_order_relaxed); }

 private:
  // The protocol logic, unchanged; the public handlers wrap it in request
  // and issue/deny trace events when a kobs::Trace is installed.
  kerb::Result<kerb::Bytes> DoHandleAs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> DoHandleTgs(const ksim::Message& msg, KdcContext& ctx);
  kerb::Result<kerb::Bytes> TracedHandle(bool tgs, const ksim::Message& msg, KdcContext& ctx);

  // Everything after the decode — shared by the one-at-a-time handlers and
  // the serve phase of the batch path.
  kerb::Result<kerb::Bytes> ServeAs(const ksim::Message& msg, const AsRequest4& req,
                                    KdcContext& ctx);
  kerb::Result<kerb::Bytes> ServeAsPk(const ksim::Message& msg, const AsPkRequest4& req,
                                      KdcContext& ctx);
  kerb::Result<kerb::Bytes> ServeTgs(const ksim::Message& msg, const TgsRequest4& req,
                                     KdcContext& ctx);

  // Pre-resolves the batch's principals into the context's key cache via
  // PrincipalStore::LookupMany. Purely a cache warm: serve-phase lookups
  // observe identical keys either way.
  void WarmKeyCache(const std::vector<const Principal*>& principals, KdcContext& ctx) const;

  // db_.Lookup through the context's generation-checked key cache.
  kerb::Result<kcrypto::DesKey> CachedLookup(const Principal& principal, KdcContext& ctx) const;
  // Serves a fresh duplicate from the context's reply cache, if enabled.
  const kerb::Bytes* CachedReply(const ksim::Message& msg, KdcContext& ctx);
  // Remembers a successful reply for retransmission, then returns it.
  kerb::Bytes RememberReply(const ksim::Message& msg, const kerb::Bytes& reply, KdcContext& ctx);

  ksim::HostClock clock_;
  std::string realm_;
  Principal tgs_principal_;
  KdcDatabase db_;
  KdcOptions options_;
  // DH group for PK preauth, engine pre-built; immutable while serving, so
  // worker threads share it without locks.
  std::optional<kcrypto::DhGroup> pk_group_;
  std::atomic<uint64_t> pk_as_requests_{0};
  std::atomic<uint64_t> as_requests_{0};
  std::atomic<uint64_t> tgs_requests_{0};
  std::atomic<uint64_t> reply_cache_hits_{0};
};

}  // namespace krb4

#endif  // SRC_KRB4_KDCCORE_H_
