#include "src/krb4/replica.h"

#include <utility>

namespace krb4 {

KdcReplicaSet4::KdcReplicaSet4(ksim::Network* net, const ksim::NetAddress& as_addr,
                               const ksim::NetAddress& tgs_addr, ksim::HostClock clock,
                               std::string realm, KdcDatabase db, kcrypto::Prng prng, int slaves,
                               KdcOptions options) {
  as_endpoints_.push_back(as_addr);
  tgs_endpoints_.push_back(tgs_addr);
  // Fork the slave streams first: with zero slaves, `prng` reaches the
  // primary untouched and its reply bytes match a standalone Kdc4's.
  std::vector<kcrypto::Prng> slave_prngs;
  for (int i = 0; i < slaves; ++i) {
    slave_prngs.push_back(prng.Fork());
  }
  for (int i = 0; i < slaves; ++i) {
    ksim::NetAddress slave_as{as_addr.host + 1 + static_cast<uint32_t>(i), as_addr.port};
    ksim::NetAddress slave_tgs{tgs_addr.host + 1 + static_cast<uint32_t>(i), tgs_addr.port};
    as_endpoints_.push_back(slave_as);
    tgs_endpoints_.push_back(slave_tgs);
    slaves_.push_back(std::make_unique<Kdc4>(net, slave_as, slave_tgs, clock, realm, db,
                                             slave_prngs[static_cast<size_t>(i)], options));
  }
  primary_ = std::make_unique<Kdc4>(net, as_addr, tgs_addr, clock, std::move(realm),
                                    std::move(db), prng, options);
}

void KdcReplicaSet4::Propagate() {
  for (auto& slave : slaves_) {
    slave->database() = primary_->database();
  }
}

void KdcReplicaSet4::AttachClient(Client4& client) const {
  for (size_t i = 1; i < as_endpoints_.size(); ++i) {
    client.AddSlaveKdc(as_endpoints_[i], tgs_endpoints_[i]);
  }
}

}  // namespace krb4
