#include "src/krb4/replica.h"

#include <utility>

#include "src/store/replicaset.h"

namespace krb4 {

KdcReplicaSet4::KdcReplicaSet4(ksim::Network* net, const ksim::NetAddress& as_addr,
                               const ksim::NetAddress& tgs_addr, ksim::HostClock clock,
                               std::string realm, KdcDatabase db, kcrypto::Prng prng, int slaves,
                               KdcOptions options) {
  auto topo = kstore::BuildReplicaTopology<Kdc4>(net, as_addr, tgs_addr, clock, std::move(realm),
                                                 std::move(db), prng, slaves, options);
  primary_ = std::move(topo.primary);
  slaves_ = std::move(topo.slaves);
  as_endpoints_ = std::move(topo.as_endpoints);
  tgs_endpoints_ = std::move(topo.tgs_endpoints);
  if (!slaves_.empty()) {
    propagation_ = std::make_unique<ReplicaPropagation>(net, primary_->realm(),
                                                        &primary_->database(), as_addr.host);
    for (size_t i = 0; i < slaves_.size(); ++i) {
      propagation_->AddSlave(as_endpoints_[i + 1].host, &slaves_[i]->database());
    }
  }
}

void KdcReplicaSet4::Propagate() {
  if (propagation_ != nullptr) {
    propagation_->Propagate();
  }
}

void KdcReplicaSet4::AttachClient(Client4& client) const {
  for (size_t i = 1; i < as_endpoints_.size(); ++i) {
    client.AddSlaveKdc(as_endpoints_[i], tgs_endpoints_[i]);
  }
}

}  // namespace krb4
