#include "src/krb4/client.h"

#include "src/crypto/str2key.h"

namespace krb4 {

Client4::Client4(ksim::Network* net, const ksim::NetAddress& self, ksim::HostClock clock,
                 Principal user, ksim::NetAddress as_addr, ksim::NetAddress tgs_addr)
    : net_(net),
      self_(self),
      clock_(clock),
      user_(std::move(user)),
      as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      as_endpoints_{as_addr},
      tgs_endpoints_{tgs_addr} {}

void Client4::ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                             uint64_t jitter_seed) {
  exchanger_.emplace(net_, sim_clock, kcrypto::Prng(jitter_seed), policy);
}

void Client4::AddSlaveKdc(const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr) {
  as_endpoints_.push_back(as_addr);
  tgs_endpoints_.push_back(tgs_addr);
}

kerb::Result<kerb::Bytes> Client4::KdcExchange(const std::vector<ksim::NetAddress>& endpoints,
                                               const kerb::Bytes& payload) {
  if (exchanger_.has_value()) {
    return exchanger_->Exchange(self_, endpoints,
                                [&]() -> kerb::Result<kerb::Bytes> { return payload; });
  }
  return net_->Call(self_, endpoints.front(), payload);
}

kerb::Result<kerb::Bytes> Client4::RoutedKdcExchange(const Principal& routing_principal,
                                                     bool tgs,
                                                     const std::vector<ksim::NetAddress>& fallback,
                                                     const kerb::Bytes& payload) {
  if (!routing_.has_value() || !routing_->endpoints) {
    return KdcExchange(fallback, payload);
  }
  for (int hop = 0; hop < kMaxReferralHops; ++hop) {
    std::vector<ksim::NetAddress> endpoints = routing_->endpoints(routing_principal, tgs);
    if (endpoints.empty()) {
      endpoints = fallback;
    }
    auto reply = KdcExchange(endpoints, payload);
    if (!reply.ok()) {
      return reply;
    }
    auto framed = Unframe4(reply.value());
    if (!framed.ok() || framed.value().first != MsgType::kClusterReferral) {
      return reply;  // a real KDC answer; the caller decodes it
    }
    // A node we asked does not own this principal and is teaching us who
    // does. If the router cannot act on the referral (malformed body, stale
    // view no newer than ours), fail closed rather than spin.
    if (!routing_->on_referral || !routing_->on_referral(framed.value().second)) {
      return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster referral not actionable");
    }
  }
  return kerb::MakeError(kerb::ErrorCode::kTransport, "cluster referral loop");
}

kerb::Result<kerb::Bytes> Client4::ServiceExchange(const ksim::NetAddress& addr,
                                                   const ksim::Exchanger::Builder& build) {
  if (exchanger_.has_value()) {
    return exchanger_->Exchange(self_, {addr}, build);
  }
  auto payload = build();
  if (!payload.ok()) {
    return payload.error();
  }
  return net_->Call(self_, addr, payload.value());
}

kerb::Status Client4::Login(std::string_view password, ksim::Duration lifetime) {
  return LoginWithKey(kcrypto::StringToKey(password, user_.Salt()), lifetime);
}

kerb::Status Client4::LoginWithKey(const kcrypto::DesKey& client_key,
                                   ksim::Duration lifetime) {
  AsRequest4 req;
  req.client = user_;
  req.service_realm = user_.realm;
  req.lifetime = lifetime;

  auto reply =
      RoutedKdcExchange(user_, false, as_endpoints_, Frame4(MsgType::kAsRequest, req.Encode()));
  if (!reply.ok()) {
    return reply.error();
  }
  auto framed = Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != MsgType::kAsReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AS reply");
  }

  auto plain = Unseal4(client_key, framed.value().second);
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                           "cannot decrypt AS reply (wrong password?)");
  }
  auto body = AsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }

  TgsCredentials creds;
  creds.session_key = kcrypto::DesKey(body.value().tgs_session_key);
  creds.sealed_tgt = body.value().sealed_tgt;
  creds.issued_at = body.value().issued_at;
  creds.lifetime = body.value().lifetime;
  tgs_creds_ = creds;
  return kerb::Status::Ok();
}

kerb::Result<ServiceCredentials> Client4::GetServiceTicket(const Principal& service,
                                                           ksim::Duration lifetime) {
  if (!tgs_creds_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "not logged in");
  }
  auto cached = service_creds_.find(service);
  if (cached != service_creds_.end() &&
      clock_.Now() < cached->second.issued_at + cached->second.lifetime) {
    return cached->second;
  }

  Authenticator4 auth;
  auth.client = user_;
  auth.client_addr = self_.host;
  auth.timestamp = clock_.Now();

  TgsRequest4 req;
  req.service = service;
  req.sealed_tgt = tgs_creds_->sealed_tgt;
  req.sealed_auth = auth.Seal(tgs_creds_->session_key);
  req.lifetime = lifetime;

  auto reply = RoutedKdcExchange(service, true, tgs_endpoints_,
                                 Frame4(MsgType::kTgsRequest, req.Encode()));
  if (!reply.ok()) {
    return reply.error();
  }
  auto framed = Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != MsgType::kTgsReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected TGS reply");
  }
  auto plain = Unseal4(tgs_creds_->session_key, framed.value().second);
  if (!plain.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "cannot decrypt TGS reply");
  }
  auto body = TgsReplyBody4::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }

  ServiceCredentials creds;
  creds.service = service;
  creds.session_key = kcrypto::DesKey(body.value().session_key);
  creds.sealed_ticket = body.value().sealed_ticket;
  creds.issued_at = body.value().issued_at;
  creds.lifetime = body.value().lifetime;
  service_creds_[service] = creds;
  return creds;
}

kerb::Result<kerb::Bytes> Client4::MakeApRequest(const Principal& service, bool want_mutual,
                                                 kerb::BytesView app_data,
                                                 kerb::BytesView challenge_response) {
  auto creds = GetServiceTicket(service);
  if (!creds.ok()) {
    return creds.error();
  }

  Authenticator4 auth;
  auth.client = user_;
  auth.client_addr = self_.host;
  auth.timestamp = clock_.Now();

  ApRequest4 req;
  req.sealed_ticket = creds.value().sealed_ticket;
  req.sealed_auth = auth.Seal(creds.value().session_key);
  req.want_mutual = want_mutual;
  req.app_data = kerb::Bytes(app_data.begin(), app_data.end());
  req.challenge_response =
      kerb::Bytes(challenge_response.begin(), challenge_response.end());
  return Frame4(MsgType::kApRequest, req.Encode());
}

kerb::Result<kerb::Bytes> Client4::CallService(const ksim::NetAddress& service_addr,
                                               const Principal& service, bool want_mutual,
                                               kerb::BytesView app_data) {
  kerb::Bytes challenge_response;
  ksim::Time auth_time = 0;
  kerb::Result<kerb::Bytes> reply =
      kerb::MakeError(kerb::ErrorCode::kInternal, "no attempt made");
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Built fresh per send — and per retry: a retransmitted AP request
    // carries a new authenticator, so the server's replay cache never
    // mistakes a legitimate retry for an attack (the paper's E16 fix).
    reply = ServiceExchange(service_addr, [&]() -> kerb::Result<kerb::Bytes> {
      // Fetch the ticket before reading the clock: an uncached ticket costs
      // a TGS exchange, and in-flight latency would otherwise advance time
      // between `auth_time` and the authenticator's own timestamp.
      auto creds = GetServiceTicket(service);
      if (!creds.ok()) {
        return creds.error();
      }
      auth_time = clock_.Now();
      return MakeApRequest(service, want_mutual, app_data, challenge_response);
    });
    if (!reply.ok()) {
      return reply.error();
    }
    auto error_frame = Unframe4(reply.value());
    if (error_frame.ok() && error_frame.value().first == MsgType::kError && attempt == 0) {
      auto parsed = ParseError4(error_frame.value().second);
      if (!parsed.ok() || parsed.value().first != kErrMethod4) {
        return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "server error");
      }
      // Decrypt the nonce and answer with nonce + 1 under the session key.
      auto creds = GetServiceTicket(service);
      if (!creds.ok()) {
        return creds.error();
      }
      auto nonce_plain = Unseal4(creds.value().session_key, parsed.value().second);
      if (!nonce_plain.ok()) {
        return nonce_plain.error();
      }
      kenc::Reader r(nonce_plain.value());
      auto nonce = r.GetU64();
      if (!nonce.ok()) {
        return nonce.error();
      }
      kenc::Writer w;
      w.PutU64(nonce.value() + 1);
      challenge_response = Seal4(creds.value().session_key, w.Peek());
      continue;
    }
    break;
  }
  if (!want_mutual) {
    return reply;
  }

  auto framed = Unframe4(reply.value());
  if (!framed.ok() || framed.value().first != MsgType::kApReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AP reply");
  }
  kenc::Reader r(framed.value().second);
  auto mutual = r.GetLengthPrefixed();
  if (!mutual.ok()) {
    return mutual.error();
  }
  auto creds = GetServiceTicket(service);
  if (!creds.ok()) {
    return creds.error();
  }
  auto verified = VerifyApReply4(creds.value().session_key, mutual.value(), auth_time);
  if (!verified.ok()) {
    return verified.error();
  }
  return r.Rest();  // application payload follows the mutual-auth proof
}

void Client4::Logout() {
  // Best effort key destruction, as the paper describes: "leaving the
  // attacker to sift through the debris".
  tgs_creds_.reset();
  service_creds_.clear();
}

}  // namespace krb4
