#include "src/krb4/kdccore.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/crypto/checksum.h"
#include "src/encoding/io.h"
#include "src/obs/kobs.h"

namespace krb4 {

KdcCore4::KdcCore4(ksim::HostClock clock, std::string realm, KdcDatabase db, KdcOptions options)
    : clock_(clock),
      realm_(std::move(realm)),
      tgs_principal_(TgsPrincipal(realm_)),
      db_(std::move(db)),
      options_(options) {}

kerb::Result<kcrypto::DesKey> KdcCore4::CachedLookup(const Principal& principal,
                                                     KdcContext& ctx) const {
  const uint64_t hash = PrincipalStore::Hash(principal);
  const uint64_t generation = db_.generation();
  kcrypto::DesKey key;
  if (ctx.keys.Get(generation, hash, principal, &key)) {
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcKeyCacheHit, clock_.Now(), hash);
    }
    return key;
  }
  if (kobs::Enabled()) {
    kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcKeyCacheMiss, clock_.Now(), hash);
  }
  auto looked_up = db_.Lookup(principal);
  if (looked_up.ok()) {
    ctx.keys.Put(generation, hash, principal, looked_up.value());
  }
  return looked_up;
}

const kerb::Bytes* KdcCore4::CachedReply(const ksim::Message& msg, KdcContext& ctx) {
  if (options_.reply_cache_window <= 0) {
    return nullptr;
  }
  const kerb::Bytes* cached =
      ctx.replies.Get(msg.src, msg.payload, clock_.Now(), options_.reply_cache_window);
  if (cached != nullptr) {
    reply_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcReplyCacheHit, clock_.Now(), msg.src.host,
                 cached->size());
    }
  }
  return cached;
}

kerb::Bytes KdcCore4::RememberReply(const ksim::Message& msg, const kerb::Bytes& reply,
                                    KdcContext& ctx) {
  if (options_.reply_cache_window > 0) {
    ctx.replies.Put(msg.src, msg.payload, reply, clock_.Now());
    if (kobs::Enabled()) {
      kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcReplyCacheStore, clock_.Now(), msg.src.host,
                 reply.size());
    }
  }
  return reply;
}

kerb::Result<kerb::Bytes> KdcCore4::HandleAs(const ksim::Message& msg, KdcContext& ctx) {
  return kobs::Enabled() ? TracedHandle(false, msg, ctx) : DoHandleAs(msg, ctx);
}

kerb::Result<kerb::Bytes> KdcCore4::HandleTgs(const ksim::Message& msg, KdcContext& ctx) {
  return kobs::Enabled() ? TracedHandle(true, msg, ctx) : DoHandleTgs(msg, ctx);
}

kerb::Result<kerb::Bytes> KdcCore4::TracedHandle(bool tgs, const ksim::Message& msg,
                                                 KdcContext& ctx) {
  const uint64_t exchange = tgs ? 1 : 0;
  kobs::Emit(kobs::kSrcKdc4, tgs ? kobs::Ev::kKdcTgsRequest : kobs::Ev::kKdcAsRequest,
             clock_.Now(), msg.src.host, msg.payload.size());
  kerb::Result<kerb::Bytes> reply = tgs ? DoHandleTgs(msg, ctx) : DoHandleAs(msg, ctx);
  if (reply.ok()) {
    kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcIssue, clock_.Now(), exchange,
               reply.value().size());
  } else {
    kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKdcDeny, clock_.Now(), exchange,
               static_cast<uint64_t>(reply.error().code));
  }
  return reply;
}

kerb::Result<kerb::Bytes> KdcCore4::DoHandleAs(const ksim::Message& msg, KdcContext& ctx) {
  as_requests_.fetch_add(1, std::memory_order_relaxed);
  if (const kerb::Bytes* cached = CachedReply(msg, ctx)) {
    return *cached;
  }
  auto framed = Unframe4(msg.payload);
  if (framed.ok() && framed.value().first == MsgType::kAsPkRequest) {
    auto pk_req = AsPkRequest4::Decode(framed.value().second);
    if (!pk_req.ok()) {
      return pk_req.error();
    }
    return ServeAsPk(msg, pk_req.value(), ctx);
  }
  if (!framed.ok() || framed.value().first != MsgType::kAsRequest) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AS request");
  }
  auto req = AsRequest4::Decode(framed.value().second);
  if (!req.ok()) {
    return req.error();
  }
  return ServeAs(msg, req.value(), ctx);
}

kerb::Result<kerb::Bytes> KdcCore4::ServeAs(const ksim::Message& msg, const AsRequest4& req,
                                            KdcContext& ctx) {
  // V4: no preauthentication. Whoever asked, for whatever principal,
  // receives a reply encrypted in that principal's key.
  auto client_key = CachedLookup(req.client, ctx);
  if (!client_key.ok()) {
    return client_key.error();
  }
  auto tgs_key = CachedLookup(tgs_principal_, ctx);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  ksim::Time now = clock_.Now();
  // V4 quantization: the grant is whatever fits a one-byte 5-minute count.
  ksim::Duration lifetime = V4UnitsToLifetime(
      LifetimeToV4Units(std::min(req.lifetime, options_.max_ticket_lifetime)));

  kcrypto::DesKey session_key = ctx.prng.NextDesKey();
  Ticket4 tgt;
  tgt.service = tgs_principal_;
  tgt.client = req.client;
  tgt.client_addr = msg.src.host;  // trusts the claimed source address
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  // The reply is {K_c,tgs, {T_c,tgs}K_tgs, times}K_c, assembled through the
  // context's scratch buffers instead of AsReplyBody4 temporaries.
  kenc::Writer ticket_writer(&ctx.scratch.ticket_plain);
  tgt.AppendTo(ticket_writer);
  ctx.scratch.ticket_sealed.clear();
  Seal4Into(tgs_key.value(), ctx.scratch.ticket_plain, ctx.scratch.ticket_sealed);

  kenc::Writer body_writer(&ctx.scratch.body_plain);
  AppendReplyBody4(body_writer, session_key.bytes(), ctx.scratch.ticket_sealed, now, lifetime);

  SealedFrame4Into(MsgType::kAsReply, client_key.value(), ctx.scratch.body_plain,
                   ctx.scratch.reply);
  return RememberReply(msg, ctx.scratch.reply, ctx);
}

void KdcCore4::EnablePkPreauth(kcrypto::DhGroup group) {
  kcrypto::EnsureEngine(group);
  pk_group_ = std::move(group);
}

kerb::Result<kerb::Bytes> KdcCore4::ServeAsPk(const ksim::Message& msg, const AsPkRequest4& req,
                                              KdcContext& ctx) {
  if (!pk_group_.has_value()) {
    return kerb::MakeError(kerb::ErrorCode::kUnsupported, "PK preauth not enabled");
  }
  pk_as_requests_.fetch_add(1, std::memory_order_relaxed);
  const kcrypto::DhGroup& group = *pk_group_;
  kcrypto::BigInt client_pub = kcrypto::BigInt::FromBytes(req.client_pub);
  // Fail closed on degenerate publics before any exponent touches them.
  if (auto valid = kcrypto::ValidateDhPublic(group, client_pub); !valid.ok()) {
    return valid.error();
  }
  auto client_key = CachedLookup(req.client, ctx);
  if (!client_key.ok()) {
    return client_key.error();
  }

  ksim::Time now = clock_.Now();

  // Proof of possession, checked before any exponentiation: the double seal
  // below only hides the inner {...}K_c layer from passive eavesdroppers.
  // Without this check an active attacker could request a ticket for any
  // principal under their own ephemeral key, strip the outer DH layer, and
  // grind the password layer offline. The padata must unseal under K_c and
  // must be bound (via md4) to the DH public actually in this request, so
  // neither a forger nor a replaying key-substituter gets a reply.
  auto padata = Unseal4(client_key.value(), req.sealed_padata);
  if (!padata.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof invalid");
  }
  kenc::Reader pa(padata.value());
  auto pa_time = pa.GetU64();
  auto pa_bind = pa.GetLengthPrefixed();
  if (!pa_time.ok() || !pa_bind.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof malformed");
  }
  if (!kcrypto::VerifyChecksum(kcrypto::ChecksumType::kMd4, req.client_pub, pa_bind.value())) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed,
                           "PK preauth proof not bound to the DH public");
  }
  if (std::llabs(static_cast<ksim::Time>(pa_time.value()) - now) > options_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "PK preauth proof stale");
  }

  auto tgs_key = CachedLookup(tgs_principal_, ctx);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  // Our half of the exchange: g^b by the group's fixed-base comb table, the
  // shared secret by the cached sliding-window context.
  kcrypto::DhKeyPair server_pair = kcrypto::DhGenerate(group, ctx.prng);
  kcrypto::DesKey dh_key = kcrypto::DhDeriveKey(
      kcrypto::DhSharedSecret(group, server_pair.private_key, client_pub));

  ksim::Duration lifetime = V4UnitsToLifetime(
      LifetimeToV4Units(std::min(req.lifetime, options_.max_ticket_lifetime)));

  kcrypto::DesKey session_key = ctx.prng.NextDesKey();
  Ticket4 tgt;
  tgt.service = tgs_principal_;
  tgt.client = req.client;
  tgt.client_addr = msg.src.host;
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  kenc::Writer ticket_writer(&ctx.scratch.ticket_plain);
  tgt.AppendTo(ticket_writer);
  ctx.scratch.ticket_sealed.clear();
  Seal4Into(tgs_key.value(), ctx.scratch.ticket_plain, ctx.scratch.ticket_sealed);

  kenc::Writer body_writer(&ctx.scratch.body_plain);
  AppendReplyBody4(body_writer, session_key.bytes(), ctx.scratch.ticket_sealed, now, lifetime);

  // Inner layer {body}K_c, then the DH layer over the inner ciphertext —
  // the password-keyed blob never appears bare on the wire.
  ctx.scratch.body_sealed.clear();
  Seal4Into(client_key.value(), ctx.scratch.body_plain, ctx.scratch.body_sealed);
  ctx.scratch.pk_outer.clear();
  Seal4Into(dh_key, ctx.scratch.body_sealed, ctx.scratch.pk_outer);

  kenc::Writer w(&ctx.scratch.reply);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(MsgType::kAsPkReply));
  w.PutLengthPrefixed(server_pair.public_key.ToBytes());
  w.PutLengthPrefixed(ctx.scratch.pk_outer);
  return RememberReply(msg, ctx.scratch.reply, ctx);
}

kerb::Result<kerb::Bytes> KdcCore4::DoHandleTgs(const ksim::Message& msg, KdcContext& ctx) {
  tgs_requests_.fetch_add(1, std::memory_order_relaxed);
  if (const kerb::Bytes* cached = CachedReply(msg, ctx)) {
    return *cached;
  }
  auto framed = Unframe4(msg.payload);
  if (!framed.ok() || framed.value().first != MsgType::kTgsRequest) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected TGS request");
  }
  auto req = TgsRequest4::Decode(framed.value().second);
  if (!req.ok()) {
    return req.error();
  }
  return ServeTgs(msg, req.value(), ctx);
}

kerb::Result<kerb::Bytes> KdcCore4::ServeTgs(const ksim::Message& msg, const TgsRequest4& req,
                                             KdcContext& ctx) {
  auto tgs_key = CachedLookup(tgs_principal_, ctx);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }
  // The same sealed TGT arrives on every request of a client's session, so
  // the decoded ticket is memoised per context (expiry is still checked
  // against `now` on every request, below).
  constexpr uint32_t kMemoTgt4 = 0x7467'3404;
  const Ticket4* tgt =
      ctx.unseals.Get<Ticket4>(kMemoTgt4, tgs_key.value(), req.sealed_tgt);
  if (kobs::Enabled()) {
    kobs::Emit(kobs::kSrcKdc4,
               tgt != nullptr ? kobs::Ev::kKdcUnsealMemoHit : kobs::Ev::kKdcUnsealMemoMiss,
               clock_.Now(), req.sealed_tgt.size());
  }
  ksim::Time now = clock_.Now();
  if (tgt == nullptr) {
    auto unsealed = Ticket4::Unseal(tgs_key.value(), req.sealed_tgt);
    if (unsealed.ok()) {
      tgt = ctx.unseals.Put(kMemoTgt4, tgs_key.value(), req.sealed_tgt,
                            std::move(unsealed.value()));
    } else {
      // kvno fallback: a TGT sealed before a TGS key rotation keeps
      // verifying under the retained older ring versions until its natural
      // expiry (the rotation drain window). Each candidate key gets its own
      // memo slot — the memo is keyed by key bytes, so entries cached under
      // an old version keep hitting after the current version moves on.
      PrincipalEntry tgs_entry;
      if (db_.store().LookupEntry(tgs_principal_, &tgs_entry)) {
        for (size_t i = 1; i < tgs_entry.keys.size() && tgt == nullptr; ++i) {
          const KeyVersion& kv = tgs_entry.keys[i];
          if (kv.not_after != 0 && now > kv.not_after) {
            continue;
          }
          tgt = ctx.unseals.Get<Ticket4>(kMemoTgt4, kv.key, req.sealed_tgt);
          if (tgt == nullptr) {
            auto old_unsealed = Ticket4::Unseal(kv.key, req.sealed_tgt);
            if (old_unsealed.ok()) {
              tgt = ctx.unseals.Put(kMemoTgt4, kv.key, req.sealed_tgt,
                                    std::move(old_unsealed.value()));
            }
          }
          if (tgt != nullptr && kobs::Enabled()) {
            kobs::Emit(kobs::kSrcKdc4, kobs::Ev::kKvnoOldKeyAccept, now, kv.kvno, i);
          }
        }
      }
    }
    if (tgt == nullptr) {
      return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "ticket-granting ticket invalid");
    }
  }

  if (tgt->Expired(now)) {
    return kerb::MakeError(kerb::ErrorCode::kExpired, "ticket-granting ticket expired");
  }

  kcrypto::DesKey tgs_session(tgt->session_key);
  auto auth = Authenticator4::Unseal(tgs_session, req.sealed_auth);
  if (!auth.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == tgt->client)) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  // The time-based freshness check the paper criticises: any copy of this
  // authenticator replayed within the window passes.
  if (std::llabs(auth.value().timestamp - now) > options_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }
  // Address binding (V4 semantics): ticket addr must match both the claimed
  // packet source and the authenticator.
  if (tgt->client_addr != msg.src.host ||
      auth.value().client_addr != tgt->client_addr) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "address mismatch");
  }

  auto service_key = CachedLookup(req.service, ctx);
  if (!service_key.ok()) {
    return service_key.error();
  }

  // An issued ticket must not outlive the TGT that vouched for it, and the
  // grant is quantized to V4's one-byte five-minute units (rounded down
  // here so quantization can never extend past the TGT).
  ksim::Duration tgt_remaining = tgt->issued_at + tgt->lifetime - now;
  ksim::Duration requested =
      std::min({req.lifetime, options_.max_ticket_lifetime, tgt_remaining});
  ksim::Duration lifetime = (requested / kV4LifetimeUnit) * kV4LifetimeUnit;
  kcrypto::DesKey session_key = ctx.prng.NextDesKey();

  Ticket4 ticket;
  ticket.service = req.service;
  ticket.client = tgt->client;
  ticket.client_addr = tgt->client_addr;
  ticket.issued_at = now;
  ticket.lifetime = lifetime;
  ticket.session_key = session_key.bytes();

  kenc::Writer ticket_writer(&ctx.scratch.ticket_plain);
  ticket.AppendTo(ticket_writer);
  ctx.scratch.ticket_sealed.clear();
  Seal4Into(service_key.value(), ctx.scratch.ticket_plain, ctx.scratch.ticket_sealed);

  kenc::Writer body_writer(&ctx.scratch.body_plain);
  AppendReplyBody4(body_writer, session_key.bytes(), ctx.scratch.ticket_sealed, now, lifetime);

  SealedFrame4Into(MsgType::kTgsReply, tgs_session, ctx.scratch.body_plain, ctx.scratch.reply);
  return RememberReply(msg, ctx.scratch.reply, ctx);
}

void KdcCore4::WarmKeyCache(const std::vector<const Principal*>& principals,
                            KdcContext& ctx) const {
  const uint64_t generation = db_.generation();
  std::vector<PrincipalStore::LookupRequest> misses;
  misses.reserve(principals.size());
  kcrypto::DesKey cached;
  for (const Principal* p : principals) {
    const uint64_t hash = PrincipalStore::Hash(*p);
    if (ctx.keys.Get(generation, hash, *p, &cached)) {
      continue;  // already warm from an earlier batch
    }
    bool queued = false;
    for (const auto& m : misses) {
      if (m.hash == hash && *m.principal == *p) {
        queued = true;
        break;
      }
    }
    if (!queued) {
      PrincipalStore::LookupRequest req;
      req.principal = p;
      req.hash = hash;
      misses.push_back(req);
    }
  }
  if (misses.empty()) {
    return;
  }
  db_.store().LookupMany(misses.data(), misses.size());
  for (const auto& m : misses) {
    if (m.found) {
      ctx.keys.Put(generation, m.hash, *m.principal, m.key);
    }
  }
}

void KdcCore4::HandleAsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                             std::vector<kerb::Result<kerb::Bytes>>& replies) {
  replies.reserve(replies.size() + n);
  if (kobs::Enabled()) {
    // Sequential fallback keeps the per-request trace event order intact.
    for (size_t i = 0; i < n; ++i) {
      replies.push_back(HandleAs(msgs[i], ctx));
    }
    return;
  }
  // Phase 1: decode every request. Decoding is pure, so hoisting it off the
  // serve path changes no reply bytes. PK-preauth requests ride in the same
  // batch (a parallel slot engages for them) so the batched path reaches
  // every verdict the sequential path does.
  std::vector<kerb::Result<AsRequest4>> decoded;
  std::vector<std::optional<kerb::Result<AsPkRequest4>>> pk;
  decoded.reserve(n);
  pk.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto framed = Unframe4(msgs[i].payload);
    if (framed.ok() && framed.value().first == MsgType::kAsPkRequest) {
      pk[i] = AsPkRequest4::Decode(framed.value().second);
      decoded.push_back(kerb::MakeError(kerb::ErrorCode::kBadFormat, "pk slot"));
      continue;
    }
    if (!framed.ok() || framed.value().first != MsgType::kAsRequest) {
      decoded.push_back(kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AS request"));
      continue;
    }
    decoded.push_back(AsRequest4::Decode(framed.value().second));
  }
  // Phase 2: resolve the batch's principals (every client plus the TGS key
  // that seals each TGT) with at most one shard-lock acquisition per shard.
  std::vector<const Principal*> wanted;
  wanted.reserve(n + 1);
  wanted.push_back(&tgs_principal_);
  for (size_t i = 0; i < n; ++i) {
    if (pk[i].has_value()) {
      if (pk[i]->ok()) {
        wanted.push_back(&pk[i]->value().client);
      }
    } else if (decoded[i].ok()) {
      wanted.push_back(&decoded[i].value().client);
    }
  }
  WarmKeyCache(wanted, ctx);
  // Phase 3: serve strictly in request order — the PRNG stream and the
  // reply cache observe the exact one-at-a-time history.
  for (size_t i = 0; i < n; ++i) {
    as_requests_.fetch_add(1, std::memory_order_relaxed);
    if (const kerb::Bytes* cached = CachedReply(msgs[i], ctx)) {
      replies.push_back(*cached);
    } else if (pk[i].has_value()) {
      replies.push_back(pk[i]->ok() ? ServeAsPk(msgs[i], pk[i]->value(), ctx)
                                    : kerb::Result<kerb::Bytes>(pk[i]->error()));
    } else if (!decoded[i].ok()) {
      replies.push_back(decoded[i].error());
    } else {
      replies.push_back(ServeAs(msgs[i], decoded[i].value(), ctx));
    }
  }
}

void KdcCore4::HandleTgsBatch(const ksim::Message* msgs, size_t n, KdcContext& ctx,
                              std::vector<kerb::Result<kerb::Bytes>>& replies) {
  replies.reserve(replies.size() + n);
  if (kobs::Enabled()) {
    for (size_t i = 0; i < n; ++i) {
      replies.push_back(HandleTgs(msgs[i], ctx));
    }
    return;
  }
  std::vector<kerb::Result<TgsRequest4>> decoded;
  decoded.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto framed = Unframe4(msgs[i].payload);
    if (!framed.ok() || framed.value().first != MsgType::kTgsRequest) {
      decoded.push_back(kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected TGS request"));
      continue;
    }
    decoded.push_back(TgsRequest4::Decode(framed.value().second));
  }
  std::vector<const Principal*> wanted;
  wanted.reserve(n + 1);
  wanted.push_back(&tgs_principal_);
  for (const auto& d : decoded) {
    if (d.ok()) {
      wanted.push_back(&d.value().service);
    }
  }
  WarmKeyCache(wanted, ctx);
  for (size_t i = 0; i < n; ++i) {
    tgs_requests_.fetch_add(1, std::memory_order_relaxed);
    if (const kerb::Bytes* cached = CachedReply(msgs[i], ctx)) {
      replies.push_back(*cached);
    } else if (!decoded[i].ok()) {
      replies.push_back(decoded[i].error());
    } else {
      replies.push_back(ServeTgs(msgs[i], decoded[i].value(), ctx));
    }
  }
}

}  // namespace krb4
