// The V4 KRB_PRIV private-message format.
//
// Per the paper, the encrypted portion of a V4 KRB_PRIV message is
//
//   (length(DATA), DATA, msectime, hostaddress, timestamp+direction, PAD)
//
// "the leading length(DATA) field disrupts the prefix-based attack" — the
// chosen-plaintext truncation that works against the Draft 2 V5 format
// (src/krb5/privmsg.h) fails here, which experiment E7 shows side by side.
// V4 used the nonstandard PCBC mode; we preserve that too.

#ifndef SRC_KRB4_KRBPRIV_H_
#define SRC_KRB4_KRBPRIV_H_

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/sim/clock.h"

namespace krb4 {

struct PrivMessage4 {
  kerb::Bytes data;
  ksim::Time timestamp = 0;    // millisecond-resolution in real V4
  uint32_t sender_addr = 0;
  uint8_t direction = 0;       // client→server = 0, server→client = 1

  // Encrypts under the session key with PCBC and a zero IV (the paper's
  // "assume the initial vector is fixed and public").
  kerb::Bytes Seal(const kcrypto::DesKey& session_key) const;
  static kerb::Result<PrivMessage4> Unseal(const kcrypto::DesKey& session_key,
                                           kerb::BytesView sealed);
};

}  // namespace krb4

#endif  // SRC_KRB4_KRBPRIV_H_
