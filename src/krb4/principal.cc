#include "src/krb4/principal.h"

#include <tuple>

namespace krb4 {

std::string Principal::ToString() const {
  std::string out = name;
  if (!instance.empty()) {
    out += "." + instance;
  }
  out += "@" + realm;
  return out;
}

bool Principal::operator<(const Principal& other) const {
  return std::tie(name, instance, realm) < std::tie(other.name, other.instance, other.realm);
}

void Principal::EncodeTo(kenc::Writer& w) const {
  w.PutString(name);
  w.PutString(instance);
  w.PutString(realm);
}

kerb::Result<Principal> Principal::DecodeFrom(kenc::Reader& r) {
  auto name = r.GetString();
  if (!name.ok()) {
    return name.error();
  }
  auto instance = r.GetString();
  if (!instance.ok()) {
    return instance.error();
  }
  auto realm = r.GetString();
  if (!realm.ok()) {
    return realm.error();
  }
  return Principal{name.value(), instance.value(), realm.value()};
}

Principal TgsPrincipal(const std::string& realm) {
  return Principal{"krbtgt", realm, realm};
}

}  // namespace krb4
