// Kerberos Version 4 wire messages.
//
// Faithful to the protocol shape the paper analyses (Table 1 notation):
//
//   {T_c,s}K_s  = {s, c, addr, timestamp, lifetime, K_c,s} K_s      (ticket)
//   {A_c}K_c,s  = {c, addr, timestamp} K_c,s                 (authenticator)
//   AS exchange:   c  →  { K_c,tgs, {T_c,tgs}K_tgs } K_c
//   TGS exchange:  s, {T_c,tgs}K_tgs, {A_c}K_c,tgs  →  { {T_c,s}K_s, K_c,s } K_c,tgs
//   AP exchange:   {T_c,s}K_s, {A_c}K_c,s  →  { timestamp + 1 } K_c,s
//
// Deliberately preserved weaknesses (each is an experiment):
//   * The AS request is plaintext and unauthenticated — anyone can fetch a
//     reply encrypted in any user's password key (E4, E5).
//   * Authenticators prove freshness by timestamp alone (E1, E2, E3).
//   * The session key in the ticket is a multi-session key (E11).
//   * Tickets bind an IP address that the network cannot verify (E12).
//
// Encryption framing: Seal4/Unseal4 wrap a plaintext in magic + length,
// zero-pad, and encrypt with DES-PCBC and a fixed zero IV, as V4 did. The
// recognizable magic is what makes offline password guessing confirmable.

#ifndef SRC_KRB4_MESSAGES_H_
#define SRC_KRB4_MESSAGES_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/krb4/principal.h"
#include "src/sim/clock.h"

namespace krb4 {

// Protocol constants.
constexpr uint8_t kProtocolVersion = 4;

// V4 carried ticket lifetimes as a single byte counting five-minute units,
// capping every ticket at 255 × 5 min = 21h15m — the concrete form of "the
// longer a ticket is in use, the greater the risk". The KDC quantizes every
// granted lifetime through this encoding.
constexpr ksim::Duration kV4LifetimeUnit = 5 * ksim::kMinute;
constexpr ksim::Duration kV4MaxLifetime = 255 * kV4LifetimeUnit;

// Rounds up to the next representable unit, saturating at 255 units.
uint8_t LifetimeToV4Units(ksim::Duration lifetime);
ksim::Duration V4UnitsToLifetime(uint8_t units);

enum class MsgType : uint8_t {
  kAsRequest = 1,
  kAsReply = 2,
  kTgsRequest = 3,
  kTgsReply = 4,
  kApRequest = 5,
  kApReply = 6,
  kError = 7,
  kPriv = 8,
  // Public-key preauthenticated AS exchange (the paper's "exponential
  // key exchange" fix for offline password guessing, §6.3).
  kAsPkRequest = 9,
  kAsPkReply = 10,
  // Online administration protocol (src/admin): principal CRUD and the
  // protected password-change exchange, krb_priv-sealed over an
  // AS/TGS-obtained admin-service ticket.
  kAdminRequest = 11,
  kAdminReply = 12,
  // Clustered serving (src/cluster): "this KDC node does not own the
  // requested principal's hash range" — the reply body is an unencrypted
  // kcluster::ReferralBody teaching the client the owning node and the
  // current ring. Plaintext by design: it names public topology only, and
  // a forged referral can at worst redirect a client to a node that will
  // itself refer or refuse (the credential path stays end-to-end keyed).
  kClusterReferral = 13,
};

// Seals `plaintext` under `key`: MAGIC || u32 length || plaintext, zero-
// padded to a block boundary, DES-PCBC, zero IV. Unseal verifies the magic
// — the structural check V4 relied on (and that password-guessers exploit).
kerb::Bytes Seal4(const kcrypto::DesKey& key, kerb::BytesView plaintext);
kerb::Result<kerb::Bytes> Unseal4(const kcrypto::DesKey& key, kerb::BytesView ciphertext);

// Appends the sealed form of `plaintext` to `out` (same bytes Seal4 would
// produce), encrypting in place in the destination buffer — the
// allocation-free serving path reuses `out` across requests. `plaintext`
// must not alias `out`.
void Seal4Into(const kcrypto::DesKey& key, kerb::BytesView plaintext, kerb::Bytes& out);

// ---------------------------------------------------------------------------
// Ticket: encrypted in the *service's* key.
struct Ticket4 {
  Principal service;
  Principal client;
  uint32_t client_addr = 0;      // the address binding the paper criticises
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;
  kcrypto::DesBlock session_key{};  // K_c,s — a multi-session key in truth

  kerb::Bytes Encode() const;
  void AppendTo(kenc::Writer& w) const;
  static kerb::Result<Ticket4> Decode(kerb::BytesView data);

  kerb::Bytes Seal(const kcrypto::DesKey& service_key) const;
  static kerb::Result<Ticket4> Unseal(const kcrypto::DesKey& service_key,
                                      kerb::BytesView sealed);

  bool Expired(ksim::Time now) const { return now > issued_at + lifetime; }
};

// Authenticator: encrypted in the session key from the ticket.
struct Authenticator4 {
  Principal client;
  uint32_t client_addr = 0;
  ksim::Time timestamp = 0;

  kerb::Bytes Encode() const;
  static kerb::Result<Authenticator4> Decode(kerb::BytesView data);

  kerb::Bytes Seal(const kcrypto::DesKey& session_key) const;
  static kerb::Result<Authenticator4> Unseal(const kcrypto::DesKey& session_key,
                                             kerb::BytesView sealed);
};

// ---------------------------------------------------------------------------
// AS exchange (initial ticket-granting ticket).
struct AsRequest4 {
  Principal client;            // plaintext: the paper's harvesting attack
  std::string service_realm;   // realm whose TGT is requested
  ksim::Duration lifetime = 0;

  kerb::Bytes Encode() const;
  static kerb::Result<AsRequest4> Decode(kerb::BytesView data);
};

// Body of the AS reply, sealed under K_c (the password-derived key).
struct AsReplyBody4 {
  kcrypto::DesBlock tgs_session_key{};  // K_c,tgs
  kerb::Bytes sealed_tgt;               // {T_c,tgs}K_tgs, opaque to the client
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;

  kerb::Bytes Encode() const;
  static kerb::Result<AsReplyBody4> Decode(kerb::BytesView data);
};

// ---------------------------------------------------------------------------
// Public-key preauthenticated AS exchange. The client contributes a fresh
// DH public value plus a proof of possession of K_c that *binds* that
// public value; the KDC wraps the ordinary AS reply body in one extra
// layer keyed by the negotiated secret:
//
//   c → KDC:  c, realm, lifetime, g^a mod p, {timestamp, md4(g^a)}K_c
//   KDC → c:  g^b mod p, { {AsReplyBody4}K_c } K_dh
//
// The double seal alone only defends against *passive* eavesdroppers: an
// active attacker could otherwise request a ticket for any principal with
// their own ephemeral key, strip the outer DH layer, and grind the inner
// {...}K_c offline. The sealed padata closes that oracle — only the key
// holder can produce it, and because it covers md4(g^a) the DH public
// cannot be substituted without re-sealing under K_c.
struct AsPkRequest4 {
  Principal client;
  std::string service_realm;
  ksim::Duration lifetime = 0;
  kerb::Bytes client_pub;      // big-endian g^a mod p
  // {timestamp u64, md4(client_pub)}K_c — mandatory; the KDC refuses PK
  // requests whose padata is missing, stale, or bound to a different public.
  kerb::Bytes sealed_padata;

  kerb::Bytes Encode() const;
  static kerb::Result<AsPkRequest4> Decode(kerb::BytesView data);
};

// Body of the PK AS reply frame: the KDC's public value (plaintext — it is
// ephemeral and self-authenticating via the inner K_c layer) plus the
// doubly-sealed reply.
struct AsPkReply4 {
  kerb::Bytes server_pub;     // big-endian g^b mod p
  kerb::Bytes sealed_reply;   // { {AsReplyBody4}K_c } K_dh

  kerb::Bytes Encode() const;
  static kerb::Result<AsPkReply4> Decode(kerb::BytesView data);
};

// ---------------------------------------------------------------------------
// TGS exchange.
struct TgsRequest4 {
  Principal service;        // what we want a ticket for
  kerb::Bytes sealed_tgt;   // {T_c,tgs}K_tgs
  kerb::Bytes sealed_auth;  // {A_c}K_c,tgs
  ksim::Duration lifetime = 0;

  kerb::Bytes Encode() const;
  static kerb::Result<TgsRequest4> Decode(kerb::BytesView data);
};

// Body of the TGS reply, sealed under K_c,tgs.
struct TgsReplyBody4 {
  kcrypto::DesBlock session_key{};  // K_c,s
  kerb::Bytes sealed_ticket;        // {T_c,s}K_s
  ksim::Time issued_at = 0;
  ksim::Duration lifetime = 0;

  kerb::Bytes Encode() const;
  static kerb::Result<TgsReplyBody4> Decode(kerb::BytesView data);
};

// ---------------------------------------------------------------------------
// AP exchange (client to application server).
struct ApRequest4 {
  kerb::Bytes sealed_ticket;  // {T_c,s}K_s
  kerb::Bytes sealed_auth;    // {A_c}K_c,s
  bool want_mutual = false;
  kerb::Bytes app_data;       // application payload, delivered after auth
  // Second leg of the optional challenge/response dialog (recommendation a,
  // retrofitted to V4 as the paper proposes): {server nonce + 1}K_c,s.
  kerb::Bytes challenge_response;  // empty = absent

  kerb::Bytes Encode() const;
  static kerb::Result<ApRequest4> Decode(kerb::BytesView data);
};

// Mutual-authentication reply: {timestamp + 1}K_c,s.
kerb::Bytes MakeApReply4(const kcrypto::DesKey& session_key, ksim::Time authenticator_time);
kerb::Result<ksim::Time> VerifyApReply4(const kcrypto::DesKey& session_key,
                                        kerb::BytesView reply,
                                        ksim::Time authenticator_time);

// ---------------------------------------------------------------------------
// KRB_ERROR: code + opaque e-data. Code 48 signals "use another
// authentication method" and carries the sealed challenge.
constexpr uint32_t kErrMethod4 = 48;

kerb::Bytes MakeError4(uint32_t code, kerb::BytesView e_data);
kerb::Result<std::pair<uint32_t, kerb::Bytes>> ParseError4(kerb::BytesView body);

// ---------------------------------------------------------------------------
// Framing: every V4 message on the wire is version byte + type byte + body.
kerb::Bytes Frame4(MsgType type, kerb::BytesView body);
kerb::Result<std::pair<MsgType, kerb::Bytes>> Unframe4(kerb::BytesView data);

// Builds `Frame4(type, Seal4(key, plaintext))` directly into `out` — the
// shape of every KDC reply — with zero intermediate buffers. `out` is
// cleared first (capacity kept).
void SealedFrame4Into(MsgType type, const kcrypto::DesKey& key, kerb::BytesView plaintext,
                      kerb::Bytes& out);

// The common layout of AsReplyBody4 / TgsReplyBody4: 8-byte session key,
// length-prefixed sealed blob, issue time, lifetime. Shared so the serving
// path and the struct Encode()s cannot drift apart.
void AppendReplyBody4(kenc::Writer& w, const kcrypto::DesBlock& session_key,
                      kerb::BytesView sealed_blob, ksim::Time issued_at,
                      ksim::Duration lifetime);

}  // namespace krb4

#endif  // SRC_KRB4_MESSAGES_H_
