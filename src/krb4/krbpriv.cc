#include "src/krb4/krbpriv.h"

#include "src/crypto/modes.h"
#include "src/encoding/io.h"

namespace krb4 {

kerb::Bytes PrivMessage4::Seal(const kcrypto::DesKey& session_key) const {
  kenc::Writer w;
  w.PutLengthPrefixed(data);  // the leading length field, order matters
  w.PutU64(static_cast<uint64_t>(timestamp));
  w.PutU32(sender_addr);
  w.PutU8(direction);
  kerb::Bytes padded = kcrypto::ZeroPadTo8(w.Peek());
  kcrypto::EncryptPcbcInPlace(session_key, kcrypto::kZeroIv, padded.data(), padded.size());
  return padded;
}

kerb::Result<PrivMessage4> PrivMessage4::Unseal(const kcrypto::DesKey& session_key,
                                                kerb::BytesView sealed) {
  if (sealed.empty() || sealed.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "sealed data not block-aligned");
  }
  kerb::Bytes plain(sealed.begin(), sealed.end());
  kcrypto::DecryptPcbcInPlace(session_key, kcrypto::kZeroIv, plain.data(), plain.size());
  kenc::Reader r(plain);
  PrivMessage4 msg;
  auto data = r.GetLengthPrefixed();
  if (!data.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "KRB_PRIV length invalid");
  }
  msg.data = data.value();
  auto ts = r.GetU64();
  auto addr = r.GetU32();
  auto dir = r.GetU8();
  if (!ts.ok() || !addr.ok() || !dir.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "KRB_PRIV trailer truncated");
  }
  msg.timestamp = static_cast<ksim::Time>(ts.value());
  msg.sender_addr = addr.value();
  msg.direction = dir.value();
  // Remaining bytes must be zero padding.
  kerb::Bytes rest = r.Rest();
  for (uint8_t b : rest) {
    if (b != 0) {
      return kerb::MakeError(kerb::ErrorCode::kIntegrity, "KRB_PRIV padding nonzero");
    }
  }
  return msg;
}

}  // namespace krb4
