// Glue between the KDC database and the kstore durability subsystem.
//
// kstore (src/store) deliberately knows nothing about principals: WAL
// records and snapshot entries are opaque bytes. This header owns the two
// sides of that boundary for the V4/V5 KDC database (both protocol models
// share krb4::KdcDatabase):
//
//   * the record codec — how one principal mutation serialises into a WAL
//     payload and how a snapshot entry round-trips;
//   * ReplicaPropagation — the kprop orchestration a replica set embeds:
//     one KStore journaling the primary, one PropagationSink per slave
//     applying verified deltas straight through the slave store's shard
//     locks (no wholesale database swap, so propagation is safe while
//     serving workers read concurrently).

#ifndef SRC_KRB4_KDCSTORE_H_
#define SRC_KRB4_KDCSTORE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/encoding/io.h"
#include "src/krb4/database.h"
#include "src/sim/network.h"
#include "src/store/kprop.h"
#include "src/store/kstore.h"
#include "src/store/snapshot.h"

namespace krb4 {

// --- Record codec -----------------------------------------------------------
// upsert payload := principal | u8 kind | u64 max_life | u64 max_renew
//                 | u8 ring_count | ring_count × (u32 kvno | 8 key bytes
//                 | u64 not_after)
// delete payload := principal
//
// One upsert record always carries the principal's *entire* key ring
// (SNIPPETS.md snippet 1 shape: kvno plus the max_life/max_renew policy
// attributes). That is the atomicity unit for rotation: a WAL replay or
// kprop delta either lands the whole new ring or none of it, so no
// replica can ever recover into a half-rotated principal. Decoders
// fail closed — ring must be non-empty, ≤ kMaxRingEntries, kvnos strictly
// descending (current version first).

constexpr size_t kMaxRingEntries = 64;

kerb::Bytes EncodePrincipalEntry(const Principal& principal, const PrincipalEntry& entry);
// Single-version convenience used by registration-shaped callers/tests:
// encodes a fresh ring at kvno 1.
kerb::Bytes EncodePrincipalUpsert(const Principal& principal, const kcrypto::DesKey& key,
                                  PrincipalKind kind);
kerb::Bytes EncodePrincipalDelete(const Principal& principal);

// Decodes one upsert payload; `r` is left positioned after the record.
kerb::Result<std::pair<Principal, PrincipalEntry>> DecodePrincipalEntry(kenc::Reader& r);

// Applies one WAL record (op, payload) to `db`. Fails closed on malformed
// payloads; the database is untouched on failure.
kerb::Status ApplyStoreRecord(KdcDatabase& db, uint8_t op, kerb::BytesView payload);

// The database's full entry set as a snapshot at `lsn`, entries in the
// canonical sorted principal order.
kstore::Snapshot SnapshotDatabase(const KdcDatabase& db, uint64_t lsn);

// Wholesale load: upserts every snapshot entry and removes principals the
// snapshot does not contain, leaving `db` exactly at the snapshot state.
kerb::Status LoadSnapshotEntries(KdcDatabase& db, const kstore::Snapshot& snapshot);

// --- Propagation orchestration ---------------------------------------------

// Owns the primary's durable store and the propagation machinery for one
// replica set. Construction snapshots the primary database as the durable
// base and attaches the journal, so every later registration is
// write-ahead logged; Propagate() then ships exact WAL deltas to each
// registered slave, DES-MAC'd under a propagation key derived from the
// realm (never from the replica PRNG — key derivation must not perturb
// the reply-byte streams pinned by capture tests).
class ReplicaPropagation {
 public:
  ReplicaPropagation(ksim::Network* net, const std::string& realm, KdcDatabase* primary,
                     uint32_t primary_host, kstore::KStoreOptions store_options = {},
                     kstore::Propagator::Options prop_options = {});
  ~ReplicaPropagation();

  // Registers a slave database served at `slave_host` and binds its
  // propagation endpoint at {slave_host, prop port}.
  void AddSlave(uint32_t slave_host, KdcDatabase* slave_db);

  // One kprop cycle; the report is also retained for inspection.
  kstore::Propagator::CycleReport Propagate();

  // Snapshots the primary at its current LSN and truncates the WAL.
  // Slaves that have not caught up past the horizon will need a wholesale
  // transfer on the next cycle.
  void Compact();

  kstore::KStore& store() { return *store_; }
  kstore::Propagator& propagator() { return *propagator_; }
  const kstore::Propagator::CycleReport& last_report() const { return last_report_; }
  const kcrypto::DesKey& prop_key() const { return key_; }

 private:
  KdcDatabase* primary_;
  kcrypto::DesKey key_;
  std::unique_ptr<kstore::KStore> store_;
  std::unique_ptr<kstore::Propagator> propagator_;
  std::vector<std::unique_ptr<kstore::PropagationSink>> sinks_;
  kstore::Propagator::CycleReport last_report_;
};

}  // namespace krb4

#endif  // SRC_KRB4_KDCSTORE_H_
