#include "src/krb4/principal_store.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace krb4 {

namespace {

void HashField(uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // Separator so ("ab","c") and ("a","bc") hash differently.
  h ^= 0xff;
  h *= 0x100000001b3ull;
}

}  // namespace

uint64_t PrincipalStore::Hash(const Principal& principal) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  HashField(h, principal.name);
  HashField(h, principal.instance);
  HashField(h, principal.realm);
  return h;
}

PrincipalStore::PrincipalStore() : shards_(new Shard[kShardCount]) {
  for (size_t s = 0; s < kShardCount; ++s) {
    shards_[s].slots.resize(kInitialSlots);
  }
}

PrincipalStore::PrincipalStore(const PrincipalStore& other) : shards_(new Shard[kShardCount]) {
  for (size_t s = 0; s < kShardCount; ++s) {
    std::shared_lock lock(other.shards_[s].mu);
    shards_[s].slots = other.shards_[s].slots;
    shards_[s].used = other.shards_[s].used;
  }
  generation_.store(other.generation_.load(std::memory_order_acquire), std::memory_order_release);
}

PrincipalStore& PrincipalStore::operator=(const PrincipalStore& other) {
  if (this != &other) {
    PrincipalStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

PrincipalStore::PrincipalStore(PrincipalStore&& other) noexcept
    : shards_(std::move(other.shards_)),
      generation_(other.generation_.load(std::memory_order_acquire)) {}

PrincipalStore& PrincipalStore::operator=(PrincipalStore&& other) noexcept {
  shards_ = std::move(other.shards_);
  generation_.store(other.generation_.load(std::memory_order_acquire), std::memory_order_release);
  return *this;
}

PrincipalStore::Slot* PrincipalStore::FindSlot(std::vector<Slot>& slots, uint64_t hash,
                                               const Principal& principal) {
  const size_t mask = slots.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    Slot& slot = slots[i];
    if (!slot.used || (slot.hash == hash && slot.principal == principal)) {
      return &slot;
    }
  }
}

void PrincipalStore::GrowLocked(Shard& shard) {
  std::vector<Slot> bigger(shard.slots.size() * 2);
  for (Slot& old : shard.slots) {
    if (old.used) {
      *FindSlot(bigger, old.hash, old.principal) = std::move(old);
    }
  }
  shard.slots = std::move(bigger);
}

void PrincipalStore::Reserve(size_t expected_entries) {
  // Per-shard target capacity: the expected share of the population (with
  // headroom for hash imbalance across shards), held strictly below the
  // 3/4 growth threshold, rounded up to a power of two.
  const size_t per_shard = expected_entries / kShardCount + 1;
  const size_t with_headroom = per_shard + per_shard / 4;
  size_t target = kInitialSlots;
  while (target * 3 < with_headroom * 4) {
    target *= 2;
  }
  for (size_t s = 0; s < kShardCount; ++s) {
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    while (shard.slots.size() < target) {
      GrowLocked(shard);  // doubles; loops straight to the target size
    }
  }
}

size_t PrincipalStore::MaxProbeLength() const {
  size_t worst = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    const Shard& shard = shards_[s];
    std::shared_lock lock(shard.mu);
    const size_t mask = shard.slots.size() - 1;
    for (size_t i = 0; i < shard.slots.size(); ++i) {
      const Slot& slot = shard.slots[i];
      if (!slot.used) {
        continue;
      }
      const size_t home = slot.hash & mask;
      const size_t probes = ((i - home) & mask) + 1;
      worst = std::max(worst, probes);
    }
  }
  return worst;
}

void PrincipalStore::Upsert(const Principal& principal, const kcrypto::DesKey& key,
                            PrincipalKind kind) {
  PrincipalEntry entry;
  entry.kind = kind;
  entry.keys.push_back(KeyVersion{1, key, 0});
  UpsertEntry(principal, entry);
}

bool PrincipalStore::UpsertEntry(const Principal& principal, const PrincipalEntry& entry) {
  if (entry.keys.empty()) {
    return false;  // a principal without a current key would be unservable
  }
  const uint64_t hash = Hash(principal);
  Shard& shard = shards_[ShardIndex(hash)];
  {
    std::unique_lock lock(shard.mu);
    // Grow before probing so the load factor stays below 3/4 and probe
    // chains stay short.
    if ((shard.used + 1) * 4 > shard.slots.size() * 3) {
      GrowLocked(shard);
    }
    Slot* slot = FindSlot(shard.slots, hash, principal);
    if (!slot->used) {
      slot->used = true;
      slot->hash = hash;
      slot->principal = principal;
      ++shard.used;
    }
    slot->entry = entry;
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool PrincipalStore::LookupEntry(const Principal& principal, PrincipalEntry* entry_out) const {
  const uint64_t hash = Hash(principal);
  const Shard& shard = shards_[ShardIndex(hash)];
  std::shared_lock lock(shard.mu);
  const size_t mask = shard.slots.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& slot = shard.slots[i];
    if (!slot.used) {
      return false;
    }
    if (slot.hash == hash && slot.principal == principal) {
      if (entry_out != nullptr) {
        *entry_out = slot.entry;
      }
      return true;
    }
  }
}

bool PrincipalStore::Erase(const Principal& principal) {
  const uint64_t hash = Hash(principal);
  Shard& shard = shards_[ShardIndex(hash)];
  {
    std::unique_lock lock(shard.mu);
    const size_t mask = shard.slots.size() - 1;
    size_t hole = hash & mask;
    for (;; hole = (hole + 1) & mask) {
      Slot& slot = shard.slots[hole];
      if (!slot.used) {
        return false;
      }
      if (slot.hash == hash && slot.principal == principal) {
        break;
      }
    }
    // Backward-shift deletion: walk the rest of the probe cluster and pull
    // each entry back into the hole when its home position permits —
    // i.e. when the hole lies on the entry's probe path (home ... j). This
    // keeps every surviving entry reachable without tombstones.
    for (size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      Slot& candidate = shard.slots[j];
      if (!candidate.used) {
        break;
      }
      const size_t home = candidate.hash & mask;
      if (((hole - home) & mask) <= ((j - home) & mask)) {
        shard.slots[hole] = std::move(candidate);
        candidate = Slot{};
        hole = j;
      }
    }
    shard.slots[hole] = Slot{};
    --shard.used;
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool PrincipalStore::Lookup(const Principal& principal, kcrypto::DesKey* key_out,
                            PrincipalKind* kind_out) const {
  const uint64_t hash = Hash(principal);
  const Shard& shard = shards_[ShardIndex(hash)];
  std::shared_lock lock(shard.mu);
  const size_t mask = shard.slots.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& slot = shard.slots[i];
    if (!slot.used) {
      return false;
    }
    if (slot.hash == hash && slot.principal == principal) {
      if (key_out != nullptr) {
        *key_out = slot.entry.keys.front().key;
      }
      if (kind_out != nullptr) {
        *kind_out = slot.entry.kind;
      }
      return true;
    }
  }
}

void PrincipalStore::LookupMany(LookupRequest* requests, size_t n) const {
  // Group by shard: each shard's lock is acquired once and every request
  // that hashes to it resolves under that single acquisition. Batches are
  // small (a dispatch's worth), so the per-shard scan over the batch is
  // cheaper than sorting.
  for (size_t s = 0; s < kShardCount; ++s) {
    bool any = false;
    for (size_t i = 0; i < n && !any; ++i) {
      any = ShardIndex(requests[i].hash) == s;
    }
    if (!any) {
      continue;
    }
    const Shard& shard = shards_[s];
    std::shared_lock lock(shard.mu);
    const size_t mask = shard.slots.size() - 1;
    for (size_t i = 0; i < n; ++i) {
      LookupRequest& req = requests[i];
      if (ShardIndex(req.hash) != s) {
        continue;
      }
      req.found = false;
      for (size_t p = req.hash & mask;; p = (p + 1) & mask) {
        const Slot& slot = shard.slots[p];
        if (!slot.used) {
          break;
        }
        if (slot.hash == req.hash && slot.principal == *req.principal) {
          req.key = slot.entry.keys.front().key;
          req.found = true;
          break;
        }
      }
    }
  }
}

std::vector<Principal> PrincipalStore::Principals() const {
  std::vector<Principal> out;
  for (size_t s = 0; s < kShardCount; ++s) {
    std::shared_lock lock(shards_[s].mu);
    for (const Slot& slot : shards_[s].slots) {
      if (slot.used) {
        out.push_back(slot.principal);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t PrincipalStore::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    std::shared_lock lock(shards_[s].mu);
    total += shards_[s].used;
  }
  return total;
}

}  // namespace krb4
