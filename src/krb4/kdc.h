// The Kerberos V4 key distribution center: authentication server (AS) and
// ticket-granting server (TGS).
//
// Protocol behaviour is V4-faithful, including the weaknesses under study:
// the AS answers any plaintext request with material encrypted in the named
// user's password key (no preauthentication, no rate limiting), and the TGS
// trusts timestamps within the configured skew window.
//
// This class is the network-facing wrapper: it binds the AS/TGS addresses
// and drives a KdcCore4 (src/krb4/kdccore.h) with a single KdcContext, so
// the deterministic simulation sees exactly the single-threaded behaviour
// it always has. The parallel serving harness drives the same core with one
// context per worker instead.

#ifndef SRC_KRB4_KDC_H_
#define SRC_KRB4_KDC_H_

#include <string>

#include "src/krb4/database.h"
#include "src/krb4/kdccore.h"
#include "src/krb4/messages.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace krb4 {

class Kdc4 {
 public:
  Kdc4(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
       ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
       KdcOptions options = {});

  const std::string& realm() const { return core_.realm(); }
  KdcDatabase& database() { return core_.database(); }
  const ksim::NetAddress& as_address() const { return as_addr_; }
  const ksim::NetAddress& tgs_address() const { return tgs_addr_; }

  KdcCore4& core() { return core_; }

  // Request counters, visible to the rate-limiting and harvesting
  // experiments.
  uint64_t as_requests_served() const { return core_.as_requests_served(); }
  uint64_t tgs_requests_served() const { return core_.tgs_requests_served(); }

 private:
  kerb::Result<kerb::Bytes> BatchOne(bool tgs, const ksim::Message& msg);

  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  KdcCore4 core_;
  KdcContext ctx_;
};

}  // namespace krb4

#endif  // SRC_KRB4_KDC_H_
