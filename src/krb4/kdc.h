// The Kerberos V4 key distribution center: authentication server (AS) and
// ticket-granting server (TGS).
//
// Protocol behaviour is V4-faithful, including the weaknesses under study:
// the AS answers any plaintext request with material encrypted in the named
// user's password key (no preauthentication, no rate limiting), and the TGS
// trusts timestamps within the configured skew window.

#ifndef SRC_KRB4_KDC_H_
#define SRC_KRB4_KDC_H_

#include <string>

#include "src/krb4/database.h"
#include "src/krb4/messages.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"

namespace krb4 {

struct KdcOptions {
  ksim::Duration max_ticket_lifetime = 8 * ksim::kHour;
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
};

class Kdc4 {
 public:
  Kdc4(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
       ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
       KdcOptions options = {});

  const std::string& realm() const { return realm_; }
  KdcDatabase& database() { return db_; }
  const ksim::NetAddress& as_address() const { return as_addr_; }
  const ksim::NetAddress& tgs_address() const { return tgs_addr_; }

  // Request counters, visible to the rate-limiting and harvesting
  // experiments.
  uint64_t as_requests_served() const { return as_requests_; }
  uint64_t tgs_requests_served() const { return tgs_requests_; }

 private:
  kerb::Result<kerb::Bytes> HandleAs(const ksim::Message& msg);
  kerb::Result<kerb::Bytes> HandleTgs(const ksim::Message& msg);

  ksim::NetAddress as_addr_;
  ksim::NetAddress tgs_addr_;
  ksim::HostClock clock_;
  std::string realm_;
  KdcDatabase db_;
  kcrypto::Prng prng_;
  KdcOptions options_;
  uint64_t as_requests_ = 0;
  uint64_t tgs_requests_ = 0;
};

}  // namespace krb4

#endif  // SRC_KRB4_KDC_H_
