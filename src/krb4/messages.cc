#include "src/krb4/messages.h"

#include "src/crypto/modes.h"
#include "src/obs/kobs.h"

namespace krb4 {

namespace {

constexpr uint8_t kSealMagic[4] = {'K', 'R', 'B', '4'};

kerb::Result<kcrypto::DesBlock> GetKeyBlock(kenc::Reader& r) {
  auto bytes = r.GetBytes(8);
  if (!bytes.ok()) {
    return bytes.error();
  }
  kcrypto::DesBlock block;
  for (size_t i = 0; i < 8; ++i) {
    block[i] = bytes.value()[i];
  }
  return block;
}

}  // namespace

uint8_t LifetimeToV4Units(ksim::Duration lifetime) {
  if (lifetime <= 0) {
    return 0;
  }
  ksim::Duration units = (lifetime + kV4LifetimeUnit - 1) / kV4LifetimeUnit;
  return units > 255 ? 255 : static_cast<uint8_t>(units);
}

ksim::Duration V4UnitsToLifetime(uint8_t units) { return units * kV4LifetimeUnit; }

kerb::Bytes Seal4(const kcrypto::DesKey& key, kerb::BytesView plaintext) {
  kenc::Writer w;
  w.PutBytes(kerb::BytesView(kSealMagic, 4));
  w.PutLengthPrefixed(plaintext);
  kerb::Bytes padded = kcrypto::ZeroPadTo8(w.Peek());
  kcrypto::EncryptPcbcInPlace(key, kcrypto::kZeroIv, padded.data(), padded.size());
  kobs::EmitNow(kobs::kSrcSeal4, kobs::Ev::kSeal, padded.size(), 0);
  return padded;
}

void Seal4Into(const kcrypto::DesKey& key, kerb::BytesView plaintext, kerb::Bytes& out) {
  const size_t start = out.size();
  out.push_back(kSealMagic[0]);
  out.push_back(kSealMagic[1]);
  out.push_back(kSealMagic[2]);
  out.push_back(kSealMagic[3]);
  const uint32_t len = static_cast<uint32_t>(plaintext.size());
  out.push_back(static_cast<uint8_t>(len >> 24));
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len));
  kerb::Append(out, plaintext);
  while ((out.size() - start) % 8 != 0) {
    out.push_back(0);
  }
  kcrypto::EncryptPcbcInPlace(key, kcrypto::kZeroIv, out.data() + start, out.size() - start);
  kobs::EmitNow(kobs::kSrcSeal4, kobs::Ev::kSeal, out.size() - start, 0);
}

namespace {

kerb::Result<kerb::Bytes> Unseal4Impl(const kcrypto::DesKey& key, kerb::BytesView ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "sealed data not block-aligned");
  }
  // Decrypt only the first block before committing to the rest: a wrong key
  // shows up in the magic with overwhelming probability, and the dictionary
  // attack's inner loop (E4/B4) hits exactly this path once per guess.
  uint64_t c0 = kcrypto::LoadU64BE(ciphertext.data());
  uint64_t p0 = key.DecryptBlock(c0);  // zero IV
  uint8_t first[8];
  kcrypto::StoreU64BE(first, p0);
  if (!kerb::ConstantTimeEqual(kerb::BytesView(first, 4), kerb::BytesView(kSealMagic, 4))) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "seal magic mismatch (wrong key?)");
  }
  kerb::Bytes plain(ciphertext.begin(), ciphertext.end());
  kcrypto::StoreU64BE(plain.data(), p0);
  // The PCBC chain continues from P_0 ^ C_0 acting as the tail's IV.
  kcrypto::DecryptPcbcInPlace(key, kcrypto::U64ToBlock(p0 ^ c0), plain.data() + 8,
                              plain.size() - 8);
  kenc::Reader r(plain);
  auto magic = r.GetBytes(4);
  if (!magic.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "seal magic mismatch (wrong key?)");
  }
  auto body = r.GetLengthPrefixed();
  if (!body.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "seal length invalid");
  }
  return body;
}

}  // namespace

kerb::Result<kerb::Bytes> Unseal4(const kcrypto::DesKey& key, kerb::BytesView ciphertext) {
  // The dictionary attack's inner loop lands here once per guess; keep the
  // untraced path a tail call with no extra work.
  if (!kobs::Enabled()) {
    return Unseal4Impl(key, ciphertext);
  }
  auto body = Unseal4Impl(key, ciphertext);
  kobs::EmitNow(kobs::kSrcSeal4, body.ok() ? kobs::Ev::kUnsealOk : kobs::Ev::kUnsealFail,
                ciphertext.size(), 0);
  return body;
}

// --------------------------------------------------------------------------- Ticket4

kerb::Bytes Ticket4::Encode() const {
  kenc::Writer w;
  AppendTo(w);
  return w.Take();
}

void Ticket4::AppendTo(kenc::Writer& w) const {
  service.EncodeTo(w);
  client.EncodeTo(w);
  w.PutU32(client_addr);
  w.PutU64(static_cast<uint64_t>(issued_at));
  w.PutU64(static_cast<uint64_t>(lifetime));
  w.PutBytes(kerb::BytesView(session_key.data(), session_key.size()));
}

kerb::Result<Ticket4> Ticket4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  Ticket4 t;
  auto service = Principal::DecodeFrom(r);
  if (!service.ok()) {
    return service.error();
  }
  t.service = service.value();
  auto client = Principal::DecodeFrom(r);
  if (!client.ok()) {
    return client.error();
  }
  t.client = client.value();
  auto addr = r.GetU32();
  auto issued = r.GetU64();
  auto life = r.GetU64();
  if (!addr.ok() || !issued.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated ticket");
  }
  t.client_addr = addr.value();
  t.issued_at = static_cast<ksim::Time>(issued.value());
  t.lifetime = static_cast<ksim::Duration>(life.value());
  auto key = GetKeyBlock(r);
  if (!key.ok()) {
    return key.error();
  }
  t.session_key = key.value();
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes in ticket");
  }
  return t;
}

kerb::Bytes Ticket4::Seal(const kcrypto::DesKey& service_key) const {
  return Seal4(service_key, Encode());
}

kerb::Result<Ticket4> Ticket4::Unseal(const kcrypto::DesKey& service_key,
                                      kerb::BytesView sealed) {
  auto plain = Unseal4(service_key, sealed);
  if (!plain.ok()) {
    return plain.error();
  }
  return Decode(plain.value());
}

// --------------------------------------------------------------------------- Authenticator4

kerb::Bytes Authenticator4::Encode() const {
  kenc::Writer w;
  client.EncodeTo(w);
  w.PutU32(client_addr);
  w.PutU64(static_cast<uint64_t>(timestamp));
  return w.Take();
}

kerb::Result<Authenticator4> Authenticator4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  Authenticator4 a;
  auto client = Principal::DecodeFrom(r);
  if (!client.ok()) {
    return client.error();
  }
  a.client = client.value();
  auto addr = r.GetU32();
  auto ts = r.GetU64();
  if (!addr.ok() || !ts.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated authenticator");
  }
  a.client_addr = addr.value();
  a.timestamp = static_cast<ksim::Time>(ts.value());
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes in authenticator");
  }
  return a;
}

kerb::Bytes Authenticator4::Seal(const kcrypto::DesKey& session_key) const {
  return Seal4(session_key, Encode());
}

kerb::Result<Authenticator4> Authenticator4::Unseal(const kcrypto::DesKey& session_key,
                                                    kerb::BytesView sealed) {
  auto plain = Unseal4(session_key, sealed);
  if (!plain.ok()) {
    return plain.error();
  }
  return Decode(plain.value());
}

// --------------------------------------------------------------------------- AS exchange

kerb::Bytes AsRequest4::Encode() const {
  kenc::Writer w;
  client.EncodeTo(w);
  w.PutString(service_realm);
  w.PutU64(static_cast<uint64_t>(lifetime));
  return w.Take();
}

kerb::Result<AsRequest4> AsRequest4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AsRequest4 req;
  auto client = Principal::DecodeFrom(r);
  if (!client.ok()) {
    return client.error();
  }
  req.client = client.value();
  auto realm = r.GetString();
  auto life = r.GetU64();
  if (!realm.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated AS request");
  }
  req.service_realm = realm.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  return req;
}

kerb::Bytes AsPkRequest4::Encode() const {
  kenc::Writer w;
  client.EncodeTo(w);
  w.PutString(service_realm);
  w.PutU64(static_cast<uint64_t>(lifetime));
  w.PutLengthPrefixed(client_pub);
  w.PutLengthPrefixed(sealed_padata);
  return w.Take();
}

kerb::Result<AsPkRequest4> AsPkRequest4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AsPkRequest4 req;
  auto client = Principal::DecodeFrom(r);
  if (!client.ok()) {
    return client.error();
  }
  req.client = client.value();
  auto realm = r.GetString();
  auto life = r.GetU64();
  auto pub = r.GetLengthPrefixed();
  auto padata = r.GetLengthPrefixed();
  if (!realm.ok() || !life.ok() || !pub.ok() || !padata.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated PK AS request");
  }
  req.service_realm = realm.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  req.client_pub = pub.value();
  req.sealed_padata = padata.value();
  return req;
}

kerb::Bytes AsPkReply4::Encode() const {
  kenc::Writer w;
  w.PutLengthPrefixed(server_pub);
  w.PutLengthPrefixed(sealed_reply);
  return w.Take();
}

kerb::Result<AsPkReply4> AsPkReply4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AsPkReply4 rep;
  auto pub = r.GetLengthPrefixed();
  auto sealed = r.GetLengthPrefixed();
  if (!pub.ok() || !sealed.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated PK AS reply");
  }
  rep.server_pub = pub.value();
  rep.sealed_reply = sealed.value();
  return rep;
}

kerb::Bytes AsReplyBody4::Encode() const {
  kenc::Writer w;
  AppendReplyBody4(w, tgs_session_key, sealed_tgt, issued_at, lifetime);
  return w.Take();
}

kerb::Result<AsReplyBody4> AsReplyBody4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AsReplyBody4 body;
  auto key = GetKeyBlock(r);
  if (!key.ok()) {
    return key.error();
  }
  body.tgs_session_key = key.value();
  auto tgt = r.GetLengthPrefixed();
  auto issued = r.GetU64();
  auto life = r.GetU64();
  if (!tgt.ok() || !issued.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated AS reply body");
  }
  body.sealed_tgt = tgt.value();
  body.issued_at = static_cast<ksim::Time>(issued.value());
  body.lifetime = static_cast<ksim::Duration>(life.value());
  return body;
}

// --------------------------------------------------------------------------- TGS exchange

kerb::Bytes TgsRequest4::Encode() const {
  kenc::Writer w;
  service.EncodeTo(w);
  w.PutLengthPrefixed(sealed_tgt);
  w.PutLengthPrefixed(sealed_auth);
  w.PutU64(static_cast<uint64_t>(lifetime));
  return w.Take();
}

kerb::Result<TgsRequest4> TgsRequest4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  TgsRequest4 req;
  auto service = Principal::DecodeFrom(r);
  if (!service.ok()) {
    return service.error();
  }
  req.service = service.value();
  auto tgt = r.GetLengthPrefixed();
  auto auth = r.GetLengthPrefixed();
  auto life = r.GetU64();
  if (!tgt.ok() || !auth.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated TGS request");
  }
  req.sealed_tgt = tgt.value();
  req.sealed_auth = auth.value();
  req.lifetime = static_cast<ksim::Duration>(life.value());
  return req;
}

kerb::Bytes TgsReplyBody4::Encode() const {
  kenc::Writer w;
  AppendReplyBody4(w, session_key, sealed_ticket, issued_at, lifetime);
  return w.Take();
}

kerb::Result<TgsReplyBody4> TgsReplyBody4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  TgsReplyBody4 body;
  auto key = GetKeyBlock(r);
  if (!key.ok()) {
    return key.error();
  }
  body.session_key = key.value();
  auto ticket = r.GetLengthPrefixed();
  auto issued = r.GetU64();
  auto life = r.GetU64();
  if (!ticket.ok() || !issued.ok() || !life.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated TGS reply body");
  }
  body.sealed_ticket = ticket.value();
  body.issued_at = static_cast<ksim::Time>(issued.value());
  body.lifetime = static_cast<ksim::Duration>(life.value());
  return body;
}

// --------------------------------------------------------------------------- AP exchange

kerb::Bytes ApRequest4::Encode() const {
  kenc::Writer w;
  w.PutLengthPrefixed(sealed_ticket);
  w.PutLengthPrefixed(sealed_auth);
  w.PutU8(want_mutual ? 1 : 0);
  w.PutLengthPrefixed(app_data);
  w.PutLengthPrefixed(challenge_response);
  return w.Take();
}

kerb::Result<ApRequest4> ApRequest4::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  ApRequest4 req;
  auto ticket = r.GetLengthPrefixed();
  auto auth = r.GetLengthPrefixed();
  auto mutual = r.GetU8();
  auto app_data = r.GetLengthPrefixed();
  auto challenge_response = r.GetLengthPrefixed();
  if (!ticket.ok() || !auth.ok() || !mutual.ok() || !app_data.ok() ||
      !challenge_response.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated AP request");
  }
  req.sealed_ticket = ticket.value();
  req.sealed_auth = auth.value();
  req.want_mutual = mutual.value() != 0;
  req.app_data = app_data.value();
  req.challenge_response = challenge_response.value();
  return req;
}

kerb::Bytes MakeApReply4(const kcrypto::DesKey& session_key, ksim::Time authenticator_time) {
  kenc::Writer w;
  w.PutU64(static_cast<uint64_t>(authenticator_time) + 1);
  return Seal4(session_key, w.Peek());
}

kerb::Result<ksim::Time> VerifyApReply4(const kcrypto::DesKey& session_key,
                                        kerb::BytesView reply, ksim::Time authenticator_time) {
  auto plain = Unseal4(session_key, reply);
  if (!plain.ok()) {
    return plain.error();
  }
  kenc::Reader r(plain.value());
  auto ts = r.GetU64();
  if (!ts.ok()) {
    return ts.error();
  }
  if (ts.value() != static_cast<uint64_t>(authenticator_time) + 1) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "mutual-auth timestamp mismatch");
  }
  return static_cast<ksim::Time>(ts.value());
}

// --------------------------------------------------------------------------- KRB_ERROR

kerb::Bytes MakeError4(uint32_t code, kerb::BytesView e_data) {
  kenc::Writer w;
  w.PutU32(code);
  w.PutLengthPrefixed(e_data);
  return Frame4(MsgType::kError, w.Peek());
}

kerb::Result<std::pair<uint32_t, kerb::Bytes>> ParseError4(kerb::BytesView body) {
  kenc::Reader r(body);
  auto code = r.GetU32();
  auto e_data = r.GetLengthPrefixed();
  if (!code.ok() || !e_data.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "truncated KRB_ERROR");
  }
  return std::make_pair(code.value(), e_data.value());
}

// --------------------------------------------------------------------------- framing

kerb::Bytes Frame4(MsgType type, kerb::BytesView body) {
  kenc::Writer w;
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutBytes(body);
  return w.Take();
}

void SealedFrame4Into(MsgType type, const kcrypto::DesKey& key, kerb::BytesView plaintext,
                      kerb::Bytes& out) {
  out.clear();
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<uint8_t>(type));
  Seal4Into(key, plaintext, out);
}

void AppendReplyBody4(kenc::Writer& w, const kcrypto::DesBlock& session_key,
                      kerb::BytesView sealed_blob, ksim::Time issued_at,
                      ksim::Duration lifetime) {
  w.PutBytes(kerb::BytesView(session_key.data(), session_key.size()));
  w.PutLengthPrefixed(sealed_blob);
  w.PutU64(static_cast<uint64_t>(issued_at));
  w.PutU64(static_cast<uint64_t>(lifetime));
}

kerb::Result<std::pair<MsgType, kerb::Bytes>> Unframe4(kerb::BytesView data) {
  kenc::Reader r(data);
  auto version = r.GetU8();
  if (!version.ok() || version.value() != kProtocolVersion) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "not a V4 message");
  }
  auto type = r.GetU8();
  if (!type.ok()) {
    return type.error();
  }
  return std::make_pair(static_cast<MsgType>(type.value()), r.Rest());
}

}  // namespace krb4
