#include "src/krb4/kdc.h"

#include <algorithm>

namespace krb4 {

Kdc4::Kdc4(ksim::Network* net, const ksim::NetAddress& as_addr, const ksim::NetAddress& tgs_addr,
           ksim::HostClock clock, std::string realm, KdcDatabase db, kcrypto::Prng prng,
           KdcOptions options)
    : as_addr_(as_addr),
      tgs_addr_(tgs_addr),
      clock_(clock),
      realm_(std::move(realm)),
      db_(std::move(db)),
      prng_(prng),
      options_(options) {
  net->Bind(as_addr_, [this](const ksim::Message& msg) { return HandleAs(msg); });
  net->Bind(tgs_addr_, [this](const ksim::Message& msg) { return HandleTgs(msg); });
}

kerb::Result<kerb::Bytes> Kdc4::HandleAs(const ksim::Message& msg) {
  ++as_requests_;
  auto framed = Unframe4(msg.payload);
  if (!framed.ok() || framed.value().first != MsgType::kAsRequest) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected AS request");
  }
  auto req = AsRequest4::Decode(framed.value().second);
  if (!req.ok()) {
    return req.error();
  }

  // V4: no preauthentication. Whoever asked, for whatever principal,
  // receives a reply encrypted in that principal's key.
  auto client_key = db_.Lookup(req.value().client);
  if (!client_key.ok()) {
    return client_key.error();
  }
  Principal tgs = TgsPrincipal(realm_);
  auto tgs_key = db_.Lookup(tgs);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }

  ksim::Time now = clock_.Now();
  // V4 quantization: the grant is whatever fits a one-byte 5-minute count.
  ksim::Duration lifetime = V4UnitsToLifetime(
      LifetimeToV4Units(std::min(req.value().lifetime, options_.max_ticket_lifetime)));

  kcrypto::DesKey session_key = prng_.NextDesKey();
  Ticket4 tgt;
  tgt.service = tgs;
  tgt.client = req.value().client;
  tgt.client_addr = msg.src.host;  // trusts the claimed source address
  tgt.issued_at = now;
  tgt.lifetime = lifetime;
  tgt.session_key = session_key.bytes();

  AsReplyBody4 body;
  body.tgs_session_key = session_key.bytes();
  body.sealed_tgt = tgt.Seal(tgs_key.value());
  body.issued_at = now;
  body.lifetime = lifetime;

  return Frame4(MsgType::kAsReply, Seal4(client_key.value(), body.Encode()));
}

kerb::Result<kerb::Bytes> Kdc4::HandleTgs(const ksim::Message& msg) {
  ++tgs_requests_;
  auto framed = Unframe4(msg.payload);
  if (!framed.ok() || framed.value().first != MsgType::kTgsRequest) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected TGS request");
  }
  auto req = TgsRequest4::Decode(framed.value().second);
  if (!req.ok()) {
    return req.error();
  }

  Principal tgs = TgsPrincipal(realm_);
  auto tgs_key = db_.Lookup(tgs);
  if (!tgs_key.ok()) {
    return tgs_key.error();
  }
  auto tgt = Ticket4::Unseal(tgs_key.value(), req.value().sealed_tgt);
  if (!tgt.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "ticket-granting ticket invalid");
  }

  ksim::Time now = clock_.Now();
  if (tgt.value().Expired(now)) {
    return kerb::MakeError(kerb::ErrorCode::kExpired, "ticket-granting ticket expired");
  }

  kcrypto::DesKey tgs_session(tgt.value().session_key);
  auto auth = Authenticator4::Unseal(tgs_session, req.value().sealed_auth);
  if (!auth.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  if (!(auth.value().client == tgt.value().client)) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  // The time-based freshness check the paper criticises: any copy of this
  // authenticator replayed within the window passes.
  if (std::llabs(auth.value().timestamp - now) > options_.clock_skew_limit) {
    return kerb::MakeError(kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }
  // Address binding (V4 semantics): ticket addr must match both the claimed
  // packet source and the authenticator.
  if (tgt.value().client_addr != msg.src.host ||
      auth.value().client_addr != tgt.value().client_addr) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "address mismatch");
  }

  auto service_key = db_.Lookup(req.value().service);
  if (!service_key.ok()) {
    return service_key.error();
  }

  // An issued ticket must not outlive the TGT that vouched for it, and the
  // grant is quantized to V4's one-byte five-minute units (rounded down
  // here so quantization can never extend past the TGT).
  ksim::Duration tgt_remaining = tgt.value().issued_at + tgt.value().lifetime - now;
  ksim::Duration requested =
      std::min({req.value().lifetime, options_.max_ticket_lifetime, tgt_remaining});
  ksim::Duration lifetime = (requested / kV4LifetimeUnit) * kV4LifetimeUnit;
  kcrypto::DesKey session_key = prng_.NextDesKey();

  Ticket4 ticket;
  ticket.service = req.value().service;
  ticket.client = tgt.value().client;
  ticket.client_addr = tgt.value().client_addr;
  ticket.issued_at = now;
  ticket.lifetime = lifetime;
  ticket.session_key = session_key.bytes();

  TgsReplyBody4 body;
  body.session_key = session_key.bytes();
  body.sealed_ticket = ticket.Seal(service_key.value());
  body.issued_at = now;
  body.lifetime = lifetime;

  return Frame4(MsgType::kTgsReply, Seal4(tgs_session, body.Encode()));
}

}  // namespace krb4
