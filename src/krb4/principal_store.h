// Sharded open-addressing principal table — the KDC's hot lookup structure.
//
// The seed KdcDatabase kept two parallel std::maps (principal → key,
// principal → kind), so every request paid two O(log n) string-comparison
// walks plus node-pointer chasing. This store keeps one entry per principal
// in an open-addressing table (power-of-two capacity, linear probing, one
// hash → typically one probe), split into shards each guarded by its own
// reader/writer lock so a multi-threaded serving core can look keys up
// concurrently while registrations proceed.
//
// Keys are stored with their DES subkey schedule already expanded (DesKey
// precomputes it at construction), so string-to-key and schedule derivation
// happen once per principal at registration, never per request. The
// `generation()` counter advances on every mutation; per-worker derived-key
// caches (src/krb4/kdccore.h) use it to detect staleness without locks.

#ifndef SRC_KRB4_PRINCIPAL_STORE_H_
#define SRC_KRB4_PRINCIPAL_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/crypto/des.h"
#include "src/krb4/principal.h"
#include "src/sim/clock.h"

namespace krb4 {

// Whether a principal is a human (password-derived key) or a service
// (random key). The distinction matters: the paper notes that treating
// "clients as services" lets anyone obtain tickets encrypted with a user's
// password key — another password-guessing avenue (experiment E15).
enum class PrincipalKind {
  kUser,
  kService,
};

// One key version in a principal's ring. Real Kerberos databases carry a
// key version number precisely so keys can change while tickets sealed
// under the previous version are still in flight; the paper's complaint
// about keys that live forever is answered by rotating the current entry
// and letting the old one drain.
struct KeyVersion {
  uint32_t kvno = 1;
  kcrypto::DesKey key;
  // Virtual time after which this version stops being accepted; 0 means no
  // scheduled expiry (the current version always has 0).
  ksim::Time not_after = 0;
};

// The full database record for a principal: its kind, ticket-policy
// attributes (the kvno/max_life/max_renew triple real kadmin databases
// store per principal), and the key ring ordered newest-first —
// keys.front() is the current version every new ticket is sealed under.
struct PrincipalEntry {
  PrincipalKind kind = PrincipalKind::kService;
  std::vector<KeyVersion> keys;
  ksim::Duration max_life = 0;   // 0 = realm default
  ksim::Duration max_renew = 0;  // 0 = realm default

  // Oldest versions beyond this many are pruned at rotation time; a ring
  // this deep covers several back-to-back rotations within one ticket
  // lifetime without unbounded growth.
  static constexpr size_t kRingCap = 4;

  uint32_t kvno() const { return keys.empty() ? 0 : keys.front().kvno; }
};

class PrincipalStore {
 public:
  PrincipalStore();
  PrincipalStore(const PrincipalStore& other);
  PrincipalStore& operator=(const PrincipalStore& other);
  PrincipalStore(PrincipalStore&& other) noexcept;
  PrincipalStore& operator=(PrincipalStore&& other) noexcept;

  // Inserts or replaces the entry for `principal` with a fresh single-entry
  // key ring at kvno 1 — the registration path. Thread-safe.
  void Upsert(const Principal& principal, const kcrypto::DesKey& key, PrincipalKind kind);

  // Inserts or replaces the *whole* record — ring, kind, and policy
  // attributes — in one shard-locked step. Rotation and replica
  // propagation go through this so a ring change is atomic: no reader ever
  // observes a principal between key versions. Entries with an empty ring
  // are rejected (returns false, store untouched). Thread-safe.
  bool UpsertEntry(const Principal& principal, const PrincipalEntry& entry);

  // Copies the full record out under the shard's reader lock. Returns
  // false when the principal is unknown. Thread-safe.
  bool LookupEntry(const Principal& principal, PrincipalEntry* entry_out) const;

  // Removes the entry for `principal` (false when absent). Linear probing
  // cannot tolerate tombstone-free holes, so removal backward-shifts the
  // rest of the probe cluster into place. Thread-safe.
  bool Erase(const Principal& principal);

  // Copies the entry out under the shard's reader lock. Either output may be
  // null. Returns false when the principal is unknown. Thread-safe.
  bool Lookup(const Principal& principal, kcrypto::DesKey* key_out,
              PrincipalKind* kind_out = nullptr) const;

  // One element of a LookupMany batch. `principal` and `hash` are inputs
  // (hash must be Hash(*principal)); `key` and `found` are outputs.
  struct LookupRequest {
    const Principal* principal = nullptr;
    uint64_t hash = 0;
    kcrypto::DesKey key;
    bool found = false;
  };

  // Resolves a whole batch of lookups, grouping them by shard so each
  // shard's reader lock is taken at most once per call instead of once per
  // principal — the lock-amortization path the batched KDC dispatch uses.
  // Results are identical to calling Lookup() per element. Thread-safe.
  void LookupMany(LookupRequest* requests, size_t n) const;

  bool Contains(const Principal& principal) const { return Lookup(principal, nullptr); }

  // Pre-sizes every shard for `expected_entries` total entries so the load
  // factor stays below 3/4 without incremental growth. Registering a
  // million-principal realm without this pays ~12 doubling rehashes per
  // shard — each a full reallocate-and-reinsert of the shard, with the
  // worst one rehashing half the population — and transiently holds both
  // the old and new slot arrays. With it, registration is one allocation
  // per shard and insert cost is flat from the first principal to the
  // last. Never shrinks; safe to call on a live store. Thread-safe.
  void Reserve(size_t expected_entries);

  // Visits every entry as fn(principal, entry) under each shard's reader
  // lock, in shard/slot order — deterministic for a given insertion
  // history, NOT sorted. The bulk-export path (cluster slice extraction,
  // snapshots) uses this to avoid the Principals()+LookupEntry double walk.
  // fn must not call back into this store (the shard lock is held).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t s = 0; s < kShardCount; ++s) {
      std::shared_lock lock(shards_[s].mu);
      for (const Slot& slot : shards_[s].slots) {
        if (slot.used) {
          fn(slot.principal, slot.entry);
        }
      }
    }
  }

  // Longest probe sequence any current entry needs (1 = every entry sits
  // in its home slot). Diagnostic for the load/churn stress tests: linear
  // probing degrades by growing clusters, and this is the direct measure
  // of that cliff. Thread-safe.
  size_t MaxProbeLength() const;

  // All registered principals in sorted order (the iteration order the old
  // std::map-backed database exposed — harvesting experiments rely on a
  // deterministic listing).
  std::vector<Principal> Principals() const;

  size_t size() const;

  // Advances on every mutation. A cache holding keys copied out of this store
  // is valid only while the generation it recorded still matches.
  uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  // Stable 64-bit hash of the principal tuple (FNV-1a over name, instance,
  // realm with separators). Exposed so derived-key caches hash only once.
  static uint64_t Hash(const Principal& principal);

 private:
  struct Slot {
    uint64_t hash = 0;
    bool used = false;
    Principal principal;
    PrincipalEntry entry;
  };
  // Padded to a cache line so one shard's lock traffic never invalidates a
  // neighbouring shard's line — with shards packed tight, a writer bouncing
  // shard s's mutex would also evict readers of shards s±1 (false sharing).
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::vector<Slot> slots;  // power-of-two capacity
    size_t used = 0;
  };

  // Shard count is a power of two; the top hash bits pick the shard, the low
  // bits drive the probe sequence, so the two choices stay independent.
  static constexpr size_t kShardCount = 16;
  static constexpr size_t kInitialSlots = 16;

  static size_t ShardIndex(uint64_t hash) { return (hash >> 60) & (kShardCount - 1); }
  static Slot* FindSlot(std::vector<Slot>& slots, uint64_t hash, const Principal& principal);
  static void GrowLocked(Shard& shard);

  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace krb4

#endif  // SRC_KRB4_PRINCIPAL_STORE_H_
