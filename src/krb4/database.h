// The KDC principal database: principal → private DES key.
//
// "Note that servers must possess private keys of their own ... These keys
// are stored in a secure location on the server's machine." The database is
// the one component the paper's threat model assumes physically secure
// ("the Kerberos master server, for which strong physical security must be
// assumed in any event").
//
// Storage is a sharded open-addressing table (src/krb4/principal_store.h):
// one probe per lookup instead of the seed's two std::map walks, and safe
// for concurrent reads from a multi-threaded serving core.

#ifndef SRC_KRB4_DATABASE_H_
#define SRC_KRB4_DATABASE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"
#include "src/krb4/principal.h"
#include "src/krb4/principal_store.h"

namespace kstore {
class KStore;
}  // namespace kstore

namespace krb4 {

class KdcDatabase {
 public:
  KdcDatabase() = default;
  // Copies replicate the entry set only: a copy is a point-in-time snapshot
  // (a slave's working set), not a second handle on the durable journal.
  // Copy-assignment likewise leaves the receiver's journal attachment
  // untouched.
  KdcDatabase(const KdcDatabase& other) : store_(other.store_) {}
  KdcDatabase& operator=(const KdcDatabase& other) {
    if (this != &other) {
      store_ = other.store_;
    }
    return *this;
  }
  KdcDatabase(KdcDatabase&&) = default;
  KdcDatabase& operator=(KdcDatabase&&) = default;

  // Registers a user whose key derives from `password` (string-to-key with
  // the principal's salt).
  void AddUser(const Principal& user, std::string_view password);

  // Registers a service with an explicit (normally random) key.
  void AddService(const Principal& service, const kcrypto::DesKey& key);

  // Registers a service with a fresh random key and returns it.
  kcrypto::DesKey AddServiceWithRandomKey(const Principal& service, kcrypto::Prng& prng);

  // The single mutation path every registration funnels through: journals
  // the change first when a journal is attached (write-ahead), then applies
  // it to the in-memory store under the shard lock. Registration resets the
  // principal to a fresh single-entry key ring at kvno 1.
  void ApplyUpsert(const Principal& principal, const kcrypto::DesKey& key, PrincipalKind kind);

  // Journals and applies a *whole* record — ring, kind, policy attributes —
  // as one WAL record. Every rotation funnels through here, which is what
  // makes rotation atomic across replicas: a slave either applies the full
  // new ring or (if the delta never arrives) keeps the full old one; there
  // is no wire state in which half a ring exists. False (and no journal
  // append) for entries with an empty ring.
  bool ApplyEntry(const Principal& principal, const PrincipalEntry& entry);

  // Installs `new_key` as the current version (kvno = old kvno + 1). The
  // previous current version stays in the ring with not_after =
  // `retain_until` so tickets sealed under it keep verifying until then
  // (pass now + max ticket lifetime so every live ticket can drain; 0
  // drops the old key immediately). Versions already expired at `now` are
  // pruned, and the ring is capped at PrincipalEntry::kRingCap. Returns
  // the new kvno, or kNotFound for unknown principals.
  kerb::Result<uint32_t> RotateKey(const Principal& principal, const kcrypto::DesKey& new_key,
                                   ksim::Time now, ksim::Time retain_until);

  // RotateKey with the new key derived from `password` (string-to-key with
  // the principal's salt) — the kadmin change-password apply path.
  kerb::Result<uint32_t> ChangePassword(const Principal& principal, std::string_view password,
                                        ksim::Time now, ksim::Time retain_until);

  // Removes a principal (journaled the same way). False when absent.
  bool Remove(const Principal& principal);

  // Attaches the durable journal (src/store/kstore.h). Mutations made
  // after this point are WAL-appended before they touch the store;
  // mutations made before it must already be captured by the journal's
  // base snapshot. Null detaches.
  void AttachJournal(kstore::KStore* journal) { journal_ = journal; }
  kstore::KStore* journal() const { return journal_; }

  bool Has(const Principal& principal) const { return store_.Contains(principal); }
  kerb::Result<kcrypto::DesKey> Lookup(const Principal& principal) const;

  // Full record (ring + attributes); kNotFound for unknown principals.
  kerb::Result<PrincipalEntry> LookupEntry(const Principal& principal) const;

  // The key at a specific version, provided that version is still accepted
  // at `now` (not_after honored). kExpired for versions past their drain
  // window, kNotFound for unknown principals or versions.
  kerb::Result<kcrypto::DesKey> LookupKvno(const Principal& principal, uint32_t kvno,
                                           ksim::Time now) const;

  // Current key version number; 0 for unknown principals.
  uint32_t Kvno(const Principal& principal) const;

  // kService for unknown principals (the caller will fail the Lookup).
  PrincipalKind Kind(const Principal& principal) const;

  // All registered principals — used by harvesting experiments, which model
  // an attacker who knows the user list (usernames are public).
  std::vector<Principal> Principals() const { return store_.Principals(); }

  // Pre-sizes the store for a bulk registration (see PrincipalStore::
  // Reserve) — the million-principal population generator calls this before
  // inserting so registration never pays incremental rehashes.
  void Reserve(size_t expected_entries) { store_.Reserve(expected_entries); }

  // Visits every full record as fn(principal, entry), shard/slot order
  // (deterministic, unsorted). See PrincipalStore::ForEach for the locking
  // contract: fn must not touch this database.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    store_.ForEach(std::forward<Fn>(fn));
  }

  size_t size() const { return store_.size(); }

  // Advances on every registration; derived-key caches key off this.
  uint64_t generation() const { return store_.generation(); }

  const PrincipalStore& store() const { return store_; }

 private:
  PrincipalStore store_;
  kstore::KStore* journal_ = nullptr;
};

}  // namespace krb4

#endif  // SRC_KRB4_DATABASE_H_
