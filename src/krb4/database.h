// The KDC principal database: principal → private DES key.
//
// "Note that servers must possess private keys of their own ... These keys
// are stored in a secure location on the server's machine." The database is
// the one component the paper's threat model assumes physically secure
// ("the Kerberos master server, for which strong physical security must be
// assumed in any event").

#ifndef SRC_KRB4_DATABASE_H_
#define SRC_KRB4_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/crypto/prng.h"
#include "src/krb4/principal.h"

namespace krb4 {

// Whether a principal is a human (password-derived key) or a service
// (random key). The distinction matters: the paper notes that treating
// "clients as services" lets anyone obtain tickets encrypted with a user's
// password key — another password-guessing avenue (experiment E15).
enum class PrincipalKind {
  kUser,
  kService,
};

class KdcDatabase {
 public:
  // Registers a user whose key derives from `password` (string-to-key with
  // the principal's salt).
  void AddUser(const Principal& user, std::string_view password);

  // Registers a service with an explicit (normally random) key.
  void AddService(const Principal& service, const kcrypto::DesKey& key);

  // Registers a service with a fresh random key and returns it.
  kcrypto::DesKey AddServiceWithRandomKey(const Principal& service, kcrypto::Prng& prng);

  bool Has(const Principal& principal) const { return keys_.count(principal) != 0; }
  kerb::Result<kcrypto::DesKey> Lookup(const Principal& principal) const;

  // kService for unknown principals (the caller will fail the Lookup).
  PrincipalKind Kind(const Principal& principal) const;

  // All registered principals — used by harvesting experiments, which model
  // an attacker who knows the user list (usernames are public).
  std::vector<Principal> Principals() const;

  size_t size() const { return keys_.size(); }

 private:
  std::map<Principal, kcrypto::DesKey> keys_;
  std::map<Principal, PrincipalKind> kinds_;
};

}  // namespace krb4

#endif  // SRC_KRB4_DATABASE_H_
