#include "src/admin/kadmin.h"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/krb4/messages.h"
#include "src/krb4/principal_store.h"
#include "src/obs/kobs.h"

namespace kadmin {

bool IsAdminPrincipal(const krb4::Principal& p) { return p.instance == "admin"; }

KadminServer::KadminServer(ksim::Network* net, const ksim::NetAddress& addr, std::string realm,
                           krb4::KdcDatabase* db, ksim::HostClock clock, kcrypto::Prng prng,
                           AdminPolicy policy)
    : realm_(std::move(realm)),
      self_(AdminPrincipal(realm_)),
      db_(db),
      addr_(addr),
      clock_(clock),
      prng_(prng),
      policy_(policy) {
  net->Bind(addr, [this](const ksim::Message& msg) { return Handle(msg); });
}

kerb::Result<kerb::Bytes> KadminServer::Handle(const ksim::Message& msg) {
  ++requests_;
  const ksim::Time now = clock_.Now();
  kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminRequest, now, msg.src.host, msg.payload.size());

  // Layer 1: byte-identical duplicates earn the byte-identical reply —
  // never a second pass through the state machine.
  const kerb::Bytes* cached = replies_.Get(msg.src, msg.payload, now, policy_.reply_cache_window);
  if (cached != nullptr) {
    ++reply_cache_hits_;
    kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminReplayServe, now, msg.src.host, 0);
    return *cached;
  }

  auto reply = Process(msg, now);
  if (reply.ok()) {
    replies_.Put(msg.src, msg.payload, reply.value(), now);
  }
  return reply;
}

kerb::Error KadminServer::Deny(uint8_t op, kerb::ErrorCode code, const char* what) {
  ++denied_;
  kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminDeny, clock_.Now(), op,
             static_cast<uint64_t>(code));
  return kerb::MakeError(code, what);
}

kerb::Result<krb4::Ticket4> KadminServer::UnsealTicket(kerb::BytesView sealed, ksim::Time now) {
  auto entry = db_->LookupEntry(self_);
  if (!entry.ok()) {
    return kerb::MakeError(kerb::ErrorCode::kInternal, "changepw service key missing");
  }
  for (const krb4::KeyVersion& kv : entry.value().keys) {
    if (kv.not_after != 0 && now > kv.not_after) {
      continue;  // drain window closed
    }
    auto ticket = krb4::Ticket4::Unseal(kv.key, sealed);
    if (ticket.ok()) {
      return ticket;
    }
  }
  return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "ticket not sealed with changepw key");
}

kerb::Bytes KadminServer::SealReply(const kcrypto::DesKey& session_key,
                                    const AdminReplyBody& body) {
  return krb4::Frame4(krb4::MsgType::kAdminReply, krb4::Seal4(session_key, body.Encode()));
}

kerb::Result<kerb::Bytes> KadminServer::Process(const ksim::Message& msg, ksim::Time now) {
  auto framed = krb4::Unframe4(msg.payload);
  if (!framed.ok() || framed.value().first != krb4::MsgType::kAdminRequest) {
    return Deny(0, kerb::ErrorCode::kBadFormat, "expected admin request");
  }
  auto req = AdminRequest::Decode(framed.value().second);
  if (!req.ok()) {
    return Deny(0, req.error().code, "malformed admin request");
  }

  auto ticket = UnsealTicket(req.value().sealed_ticket, now);
  if (!ticket.ok()) {
    return Deny(0, ticket.error().code, "admin ticket rejected");
  }
  if (!(ticket.value().service == self_)) {
    return Deny(0, kerb::ErrorCode::kAuthFailed, "ticket names a different service");
  }
  if (ticket.value().Expired(now)) {
    return Deny(0, kerb::ErrorCode::kExpired, "admin ticket expired");
  }

  kcrypto::DesKey session_key(ticket.value().session_key);
  auto auth = krb4::Authenticator4::Unseal(session_key, req.value().sealed_auth);
  if (!auth.ok()) {
    return Deny(0, kerb::ErrorCode::kAuthFailed, "authenticator undecryptable");
  }
  const krb4::Principal& client = auth.value().client;
  if (!(client == ticket.value().client)) {
    return Deny(0, kerb::ErrorCode::kAuthFailed, "authenticator/ticket client mismatch");
  }
  // The address binding is load-bearing here: an interceptor re-sending a
  // captured exchange from its own host fails this check even with the
  // sealed blobs intact.
  if (ticket.value().client_addr != msg.src.host ||
      auth.value().client_addr != ticket.value().client_addr) {
    return Deny(0, kerb::ErrorCode::kAuthFailed, "address mismatch");
  }
  if (std::llabs(auth.value().timestamp - now) > policy_.clock_skew_limit) {
    return Deny(0, kerb::ErrorCode::kSkew, "authenticator outside skew window");
  }

  auto plain = krb4::Unseal4(session_key, req.value().sealed_req);
  if (!plain.ok()) {
    return Deny(0, plain.error().code, "request body undecryptable");
  }
  auto body = AdminReqBody::Decode(plain.value());
  if (!body.ok()) {
    return Deny(0, body.error().code, "request body malformed");
  }
  const uint8_t op = static_cast<uint8_t>(body.value().op);
  if (body.value().direction != 0) {
    return Deny(op, kerb::ErrorCode::kAuthFailed, "reflected message direction");
  }
  if (body.value().sender_addr != msg.src.host) {
    return Deny(op, kerb::ErrorCode::kAuthFailed, "sender address mismatch");
  }
  if (std::llabs(body.value().timestamp - now) > policy_.clock_skew_limit) {
    return Deny(op, kerb::ErrorCode::kSkew, "request body outside skew window");
  }
  if (client.realm != realm_ || body.value().target.realm != realm_) {
    return Deny(op, kerb::ErrorCode::kPolicy, "cross-realm administration refused");
  }

  // Layer 2: replayed authenticators inside the window. The request nonce
  // joins the identity so two DISTINCT operations issued at the same
  // virtual instant do not collide — the nonce rides inside the sealed
  // body, so minting a fresh one requires the session key, and a verbatim
  // replay (same timestamp, same nonce) still trips the cache.
  if (!seen_authenticators_.CheckAndInsert(
          client.ToString() + "#" + std::to_string(body.value().nonce),
          auth.value().client_addr, auth.value().timestamp, now,
          policy_.clock_skew_limit)) {
    ++auth_replays_;
    return Deny(op, kerb::ErrorCode::kReplay, "authenticator replayed");
  }

  // Layer 3: an applied nonce's verdict is served from the ack cache — a
  // retry with a fresh authenticator (or a splice reusing the nonce with a
  // different body) never applies twice.
  std::erase_if(acks_, [&](const auto& kv) {
    return now - kv.second.second > policy_.nonce_window;
  });
  const auto ack_key =
      std::make_pair(krb4::PrincipalStore::Hash(client), body.value().nonce);
  auto ack = acks_.find(ack_key);
  if (ack != acks_.end()) {
    ++ack_replays_;
    kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminReplayServe, now, msg.src.host, 1);
    return ack->second.first;
  }

  AdminReplyBody verdict = Apply(client, body.value(), now);
  kerb::Bytes reply = SealReply(session_key, verdict);
  if (verdict.code == 0) {
    ++applied_;
    kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminApply, now, op, verdict.kvno);
    acks_[ack_key] = {reply, now};
  } else {
    ++denied_;
    kobs::Emit(kobs::kSrcAdmin, kobs::Ev::kAdminDeny, now, op, verdict.code);
  }
  return reply;
}

kerb::Status KadminServer::CheckPassword(const krb4::Principal& target,
                                         std::string_view password) const {
  if (password.size() < policy_.min_password_length) {
    return kerb::MakeError(kerb::ErrorCode::kPolicy, "password below minimum length");
  }
  if (policy_.reject_name_in_password && !target.name.empty() &&
      password.find(target.name) != std::string_view::npos) {
    return kerb::MakeError(kerb::ErrorCode::kPolicy, "password contains principal name");
  }
  return kerb::Status::Ok();
}

AdminReplyBody KadminServer::Apply(const krb4::Principal& client, const AdminReqBody& req,
                                   ksim::Time now) {
  AdminReplyBody out;
  out.nonce_plus_one = req.nonce + 1;
  out.timestamp = now;
  out.direction = 1;
  auto verdict = [&out](kerb::ErrorCode code, std::string_view what) -> AdminReplyBody& {
    out.code = static_cast<uint32_t>(code);
    out.detail.assign(what.begin(), what.end());
    return out;
  };

  const bool self_serve =
      req.op == AdminOp::kChangePassword || req.op == AdminOp::kGetKvno;
  if (!IsAdminPrincipal(client) && !(self_serve && client == req.target)) {
    return verdict(kerb::ErrorCode::kPolicy, "not authorized for this operation");
  }

  const ksim::Time retain_until = now + policy_.old_key_retain;
  switch (req.op) {
    case AdminOp::kChangePassword: {
      std::string_view password(reinterpret_cast<const char*>(req.payload.data()),
                                req.payload.size());
      auto quality = CheckPassword(req.target, password);
      if (!quality.ok()) {
        return verdict(quality.error().code, quality.error().detail);
      }
      auto kvno = db_->ChangePassword(req.target, password, now, retain_until);
      if (!kvno.ok()) {
        return verdict(kvno.error().code, kvno.error().detail);
      }
      out.kvno = kvno.value();
      return out;
    }
    case AdminOp::kRotateKey: {
      auto kvno = db_->RotateKey(req.target, prng_.NextDesKey(), now, retain_until);
      if (!kvno.ok()) {
        return verdict(kvno.error().code, kvno.error().detail);
      }
      out.kvno = kvno.value();
      return out;
    }
    case AdminOp::kGetKey: {
      auto entry = db_->LookupEntry(req.target);
      if (!entry.ok()) {
        return verdict(entry.error().code, entry.error().detail);
      }
      out.kvno = entry.value().kvno();
      const auto& key_bytes = entry.value().keys.front().key.bytes();
      out.detail.assign(key_bytes.begin(), key_bytes.end());
      return out;
    }
    case AdminOp::kAddPrincipal: {
      kenc::Reader r(req.payload);
      auto kind = r.GetU8();
      if (!kind.ok() || kind.value() > static_cast<uint8_t>(krb4::PrincipalKind::kService)) {
        return verdict(kerb::ErrorCode::kBadFormat, "bad principal kind");
      }
      if (db_->Kvno(req.target) != 0) {
        return verdict(kerb::ErrorCode::kPolicy, "principal already exists");
      }
      if (static_cast<krb4::PrincipalKind>(kind.value()) == krb4::PrincipalKind::kUser) {
        kerb::Bytes rest = r.Rest();
        std::string_view password(reinterpret_cast<const char*>(rest.data()), rest.size());
        auto quality = CheckPassword(req.target, password);
        if (!quality.ok()) {
          return verdict(quality.error().code, quality.error().detail);
        }
        db_->AddUser(req.target, password);
      } else {
        db_->AddServiceWithRandomKey(req.target, prng_);
      }
      out.kvno = 1;
      return out;
    }
    case AdminOp::kDelPrincipal: {
      if (req.target == krb4::TgsPrincipal(realm_) || req.target == self_) {
        return verdict(kerb::ErrorCode::kPolicy, "protected principal");
      }
      if (!db_->Remove(req.target)) {
        return verdict(kerb::ErrorCode::kNotFound, "unknown principal");
      }
      return out;
    }
    case AdminOp::kGetKvno: {
      uint32_t kvno = db_->Kvno(req.target);
      if (kvno == 0) {
        return verdict(kerb::ErrorCode::kNotFound, "unknown principal");
      }
      out.kvno = kvno;
      return out;
    }
  }
  return verdict(kerb::ErrorCode::kUnsupported, "unknown admin op");
}

// ---------------------------------------------------------------------------

AdminClient::AdminClient(krb4::Client4* client, ksim::Network* net, ksim::HostClock clock,
                         ksim::NetAddress admin_addr, kcrypto::Prng prng)
    : client_(client), net_(net), clock_(clock), admin_addr_(admin_addr), prng_(prng) {}

void AdminClient::ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                                 uint64_t jitter_seed) {
  exchanger_.emplace(net_, sim_clock, kcrypto::Prng(jitter_seed), policy);
}

kerb::Result<kcrypto::DesKey> AdminClient::SessionKey() {
  auto creds = client_->GetServiceTicket(AdminPrincipal(client_->user().realm));
  if (!creds.ok()) {
    return creds.error();
  }
  return creds.value().session_key;
}

kerb::Result<kerb::Bytes> AdminClient::BuildRequest(AdminOp op, const krb4::Principal& target,
                                                    kerb::BytesView payload, uint64_t nonce) {
  auto creds = client_->GetServiceTicket(AdminPrincipal(client_->user().realm));
  if (!creds.ok()) {
    return creds.error();
  }

  krb4::Authenticator4 auth;
  auth.client = client_->user();
  auth.client_addr = client_->address().host;
  auth.timestamp = clock_.Now();

  AdminReqBody body;
  body.op = op;
  body.target = target;
  body.nonce = nonce;
  body.timestamp = clock_.Now();
  body.sender_addr = client_->address().host;
  body.direction = 0;
  body.payload.assign(payload.begin(), payload.end());

  AdminRequest req;
  req.sealed_ticket = creds.value().sealed_ticket;
  req.sealed_auth = auth.Seal(creds.value().session_key);
  req.sealed_req = krb4::Seal4(creds.value().session_key, body.Encode());
  return req.Encode();
}

kerb::Result<AdminClient::Ack> AdminClient::ParseReply(uint64_t nonce,
                                                       kerb::BytesView reply_frame) {
  auto key = SessionKey();
  if (!key.ok()) {
    return key.error();
  }
  auto framed = krb4::Unframe4(reply_frame);
  if (!framed.ok()) {
    return framed.error();
  }
  if (framed.value().first != krb4::MsgType::kAdminReply) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "expected admin reply");
  }
  auto plain = krb4::Unseal4(key.value(), framed.value().second);
  if (!plain.ok()) {
    return plain.error();
  }
  auto body = AdminReplyBody::Decode(plain.value());
  if (!body.ok()) {
    return body.error();
  }
  if (body.value().direction != 1) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "reply direction mismatch");
  }
  if (body.value().nonce_plus_one != nonce + 1) {
    return kerb::MakeError(kerb::ErrorCode::kAuthFailed, "reply nonce mismatch");
  }
  if (std::llabs(body.value().timestamp - clock_.Now()) > ksim::kDefaultClockSkewLimit) {
    return kerb::MakeError(kerb::ErrorCode::kSkew, "reply timestamp outside skew window");
  }
  if (body.value().code != 0) {
    uint32_t code = body.value().code;
    if (code > static_cast<uint32_t>(kerb::ErrorCode::kInternal)) {
      code = static_cast<uint32_t>(kerb::ErrorCode::kInternal);
    }
    return kerb::MakeError(static_cast<kerb::ErrorCode>(code),
                           std::string(body.value().detail.begin(), body.value().detail.end()));
  }
  Ack ack;
  ack.kvno = body.value().kvno;
  ack.detail = std::move(body.value().detail);
  return ack;
}

kerb::Result<AdminClient::Ack> AdminClient::Execute(AdminOp op, const krb4::Principal& target,
                                                    kerb::BytesView payload) {
  const uint64_t nonce = prng_.NextU64();
  auto build = [&]() { return BuildRequest(op, target, payload, nonce); };
  kerb::Result<kerb::Bytes> reply = kerb::MakeError(kerb::ErrorCode::kInternal, "unsent");
  if (exchanger_.has_value()) {
    reply = exchanger_->Exchange(client_->address(), {admin_addr_}, build);
  } else {
    auto wire = build();
    if (!wire.ok()) {
      return wire.error();
    }
    reply = net_->Call(client_->address(), admin_addr_, wire.value());
  }
  if (!reply.ok()) {
    return reply.error();
  }
  return ParseReply(nonce, reply.value());
}

kerb::Result<AdminClient::Ack> AdminClient::ChangePassword(const krb4::Principal& target,
                                                           std::string_view new_password) {
  return Execute(AdminOp::kChangePassword, target,
                 kerb::BytesView(reinterpret_cast<const uint8_t*>(new_password.data()),
                                 new_password.size()));
}

kerb::Result<AdminClient::Ack> AdminClient::RotateKey(const krb4::Principal& target) {
  return Execute(AdminOp::kRotateKey, target, {});
}

kerb::Result<AdminClient::Ack> AdminClient::GetKey(const krb4::Principal& target) {
  return Execute(AdminOp::kGetKey, target, {});
}

kerb::Result<AdminClient::Ack> AdminClient::GetKvno(const krb4::Principal& target) {
  return Execute(AdminOp::kGetKvno, target, {});
}

kerb::Result<AdminClient::Ack> AdminClient::AddUser(const krb4::Principal& target,
                                                    std::string_view password) {
  kenc::Writer w;
  w.PutU8(static_cast<uint8_t>(krb4::PrincipalKind::kUser));
  w.PutBytes(kerb::BytesView(reinterpret_cast<const uint8_t*>(password.data()),
                             password.size()));
  return Execute(AdminOp::kAddPrincipal, target, w.Peek());
}

kerb::Result<AdminClient::Ack> AdminClient::AddService(const krb4::Principal& target) {
  kenc::Writer w;
  w.PutU8(static_cast<uint8_t>(krb4::PrincipalKind::kService));
  return Execute(AdminOp::kAddPrincipal, target, w.Peek());
}

kerb::Result<AdminClient::Ack> AdminClient::DelPrincipal(const krb4::Principal& target) {
  return Execute(AdminOp::kDelPrincipal, target, {});
}

}  // namespace kadmin
