// Wire messages for the online administration protocol (kadmin).
//
// The 1991 paper's Kerberos had no protected administration channel: password
// changes rode an ad-hoc protocol with its own weaknesses, and key rotation
// meant taking the KDC down and re-propagating the whole database. This
// subsystem models the fix the paper's framework implies: an admin service
// ("changepw.kerberos@REALM") reached through the ordinary AS/TGS machinery,
// with every request and reply sealed krb_priv-style under the ticket's
// session key and carrying the full anti-replay envelope the paper demands
// for application messages — timestamp, direction flag, sender address,
// nonce, and a collision-proof checksum over the plaintext.
//
// Wire shape (all inside Frame4 with the new MsgType values):
//
//   AdminRequest  = kAdminRequest {
//       {T_c,changepw}K_changepw   sealed ticket   (service-key sealed)
//       {A_c}K_session             sealed auth     (fresh per attempt)
//       {AdminReqBody}K_session    sealed body     (same nonce per attempt)
//   }
//   AdminReply    = kAdminReply { {AdminReplyBody}K_session }
//
// Retries resend a *fresh* authenticator with the *same* nonce: the server's
// nonce-ack cache makes mutations exactly-once across retransmissions, while
// the fresh timestamp keeps the authenticator replay cache honest.

#ifndef SRC_ADMIN_MESSAGES_H_
#define SRC_ADMIN_MESSAGES_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"
#include "src/krb4/principal.h"
#include "src/sim/clock.h"

namespace kadmin {

// The admin service listens on the primary KDC host at this port (the
// historical kpasswd/kadmin port).
constexpr uint16_t kAdminPort = 751;

// The well-known admin service principal for a realm.
krb4::Principal AdminPrincipal(const std::string& realm);

enum class AdminOp : uint8_t {
  kChangePassword = 1,  // payload: new password bytes; self or admin
  kRotateKey = 2,       // payload: empty (server draws a random key); admin
  kGetKey = 3,          // payload: empty; reply detail: current key; admin
  kAddPrincipal = 4,    // payload: u8 kind | password bytes (users); admin
  kDelPrincipal = 5,    // payload: empty; admin
  kGetKvno = 6,         // payload: empty; self or admin
};

const char* AdminOpName(AdminOp op);

// The top-level request: three sealed blobs, each length-prefixed.
struct AdminRequest {
  kerb::Bytes sealed_ticket;  // {T_c,changepw}K_changepw
  kerb::Bytes sealed_auth;    // {A_c}K_session
  kerb::Bytes sealed_req;     // {AdminReqBody}K_session

  kerb::Bytes Encode() const;  // framed as MsgType::kAdminRequest
  static kerb::Result<AdminRequest> Decode(kerb::BytesView body);
};

// The sealed request body. Encode appends an MD4 checksum over the
// preceding fields; Decode verifies and strips it — tampering anywhere in
// the plaintext (including a cut-and-paste of fields between two sealed
// bodies) fails closed with kIntegrity.
struct AdminReqBody {
  AdminOp op = AdminOp::kGetKvno;
  krb4::Principal target;
  uint64_t nonce = 0;          // echoed + 1 in the reply
  ksim::Time timestamp = 0;    // client clock; bounded by server skew check
  uint32_t sender_addr = 0;    // must match the network source address
  uint8_t direction = 0;       // 0 = client→server; rejects reflections
  kerb::Bytes payload;         // op-specific (see AdminOp)

  kerb::Bytes Encode() const;
  static kerb::Result<AdminReqBody> Decode(kerb::BytesView data);
};

// The sealed reply body, same checksum treatment. `code` is 0 for success
// or a kerb::ErrorCode the client re-raises; the body is sealed either way,
// so a denial verdict cannot be forged or replayed into a later exchange.
struct AdminReplyBody {
  uint64_t nonce_plus_one = 0;
  ksim::Time timestamp = 0;   // server clock at apply time
  uint8_t direction = 1;      // 1 = server→client
  uint32_t code = 0;          // 0 = applied; else kerb::ErrorCode
  uint32_t kvno = 0;          // key version after the op (when meaningful)
  kerb::Bytes detail;         // op-specific (kGetKey: key bytes; denials: text)

  kerb::Bytes Encode() const;
  static kerb::Result<AdminReplyBody> Decode(kerb::BytesView data);
};

}  // namespace kadmin

#endif  // SRC_ADMIN_MESSAGES_H_
