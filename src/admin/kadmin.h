// The online administration plane: KadminServer and AdminClient.
//
// The paper's Kerberos had no protected way to administer the KDC database
// while it served: password changes used a bolt-on protocol and key changes
// required re-propagating the whole database. This subsystem supplies the
// missing piece under the paper's own rules — the admin channel is just
// another Kerberos service, authenticated with an AS/TGS-obtained ticket,
// and every message carries the full anti-replay envelope the paper demands
// (timestamp, direction, sender address, nonce, collision-proof checksum).
//
// Server defense ordering (each layer catches what the previous cannot):
//   1. Byte-identical reply cache — absorbs network duplicates so the same
//      wire bytes always earn the same wire reply (never a second apply).
//   2. Authenticator replay cache — rejects replayed authenticators inside
//      the skew window even when the rest of the request was re-sealed.
//   3. Nonce ack cache — a retry with a *fresh* authenticator but the same
//      nonce gets the stored verdict, making mutations exactly-once across
//      client retransmissions. A spliced request reusing an applied nonce
//      with a different body also gets the stored verdict — and no apply.
//
// Mutations go through KdcDatabase journal-first: one WAL record carries the
// whole post-rotation key ring, so replicas apply a rotation atomically or
// not at all (the chaos harness in src/attacks/rotation.h verifies this).

#ifndef SRC_ADMIN_KADMIN_H_
#define SRC_ADMIN_KADMIN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "src/admin/messages.h"
#include "src/crypto/prng.h"
#include "src/krb4/client.h"
#include "src/krb4/database.h"
#include "src/krb4/kdccore.h"
#include "src/sim/clock.h"
#include "src/sim/network.h"
#include "src/sim/replaycache.h"
#include "src/sim/retry.h"

namespace kadmin {

struct AdminPolicy {
  // Password quality floor for kChangePassword / kAddPrincipal(user).
  size_t min_password_length = 8;
  bool reject_name_in_password = true;
  // Authenticator freshness bound; also bounds the request-body timestamp.
  ksim::Duration clock_skew_limit = ksim::kDefaultClockSkewLimit;
  // Byte-identical duplicate absorption window.
  ksim::Duration reply_cache_window = 2 * ksim::kMinute;
  // How long an applied nonce's verdict stays servable to retries.
  ksim::Duration nonce_window = 10 * ksim::kMinute;
  // Drain window granted to the outgoing key on every rotation: old-kvno
  // tickets keep working this long (default = the default ticket lifetime,
  // so no unexpired ticket is ever orphaned by a rotation).
  ksim::Duration old_key_retain = 8 * ksim::kHour;
};

// Authorization rule: principals with instance "admin" may do everything;
// everyone may change their own password and read their own kvno.
bool IsAdminPrincipal(const krb4::Principal& p);

class KadminServer {
 public:
  // `db` is the primary KDC's database — mutations journal into its WAL and
  // ride the existing kprop machinery to the slaves. The changepw service
  // principal must already exist in `db` (the testbed registers it).
  KadminServer(ksim::Network* net, const ksim::NetAddress& addr, std::string realm,
               krb4::KdcDatabase* db, ksim::HostClock clock, kcrypto::Prng prng,
               AdminPolicy policy = {});

  // Exposed for direct-drive tests; the network binding calls this.
  kerb::Result<kerb::Bytes> Handle(const ksim::Message& msg);

  AdminPolicy& policy() { return policy_; }
  const ksim::NetAddress& address() const { return addr_; }
  ksim::HostClock& clock() { return clock_; }

  uint64_t requests() const { return requests_; }
  uint64_t applied() const { return applied_; }
  uint64_t denied() const { return denied_; }
  uint64_t auth_replays() const { return auth_replays_; }
  uint64_t ack_replays() const { return ack_replays_; }
  uint64_t reply_cache_hits() const { return reply_cache_hits_; }

 private:
  // Everything after the duplicate-reply cache.
  kerb::Result<kerb::Bytes> Process(const ksim::Message& msg, ksim::Time now);
  // Unseals the ticket under the changepw key ring (current first, then
  // unexpired retained versions — the server's own key rotates too).
  kerb::Result<krb4::Ticket4> UnsealTicket(kerb::BytesView sealed, ksim::Time now);
  // Applies an authorized op; returns the reply body (code 0 or a verdict).
  AdminReplyBody Apply(const krb4::Principal& client, const AdminReqBody& req, ksim::Time now);
  // Seals a reply body into a framed kAdminReply.
  kerb::Bytes SealReply(const kcrypto::DesKey& session_key, const AdminReplyBody& body);
  kerb::Error Deny(uint8_t op, kerb::ErrorCode code, const char* what);
  kerb::Status CheckPassword(const krb4::Principal& target, std::string_view password) const;

  std::string realm_;
  krb4::Principal self_;  // changepw.kerberos@realm
  krb4::KdcDatabase* db_;
  ksim::NetAddress addr_;
  ksim::HostClock clock_;
  kcrypto::Prng prng_;
  AdminPolicy policy_;

  krb4::KdcReplyCache replies_;
  ksim::ShardedReplayCache seen_authenticators_;
  // (client hash, nonce) → (stored framed reply, stored_at). Only applied
  // verdicts are stored; denials recompute deterministically.
  std::map<std::pair<uint64_t, uint64_t>, std::pair<kerb::Bytes, ksim::Time>> acks_;

  uint64_t requests_ = 0;
  uint64_t applied_ = 0;
  uint64_t denied_ = 0;
  uint64_t auth_replays_ = 0;
  uint64_t ack_replays_ = 0;
  uint64_t reply_cache_hits_ = 0;
};

class AdminClient {
 public:
  // Wraps a logged-in Client4: the changepw ticket comes from the ordinary
  // TGS exchange (and is cached there). `prng` draws nonces.
  AdminClient(krb4::Client4* client, ksim::Network* net, ksim::HostClock clock,
              ksim::NetAddress admin_addr, kcrypto::Prng prng);

  // Retransmission with a fresh authenticator and the *same* nonce per
  // attempt — the server's ack cache makes the retried mutation
  // exactly-once.
  void ConfigureRetry(ksim::SimClock* sim_clock, const ksim::RetryPolicy& policy,
                      uint64_t jitter_seed);

  struct Ack {
    uint32_t kvno = 0;
    kerb::Bytes detail;
  };

  kerb::Result<Ack> ChangePassword(const krb4::Principal& target, std::string_view new_password);
  kerb::Result<Ack> RotateKey(const krb4::Principal& target);
  kerb::Result<Ack> GetKey(const krb4::Principal& target);
  kerb::Result<Ack> GetKvno(const krb4::Principal& target);
  kerb::Result<Ack> AddUser(const krb4::Principal& target, std::string_view password);
  kerb::Result<Ack> AddService(const krb4::Principal& target);
  kerb::Result<Ack> DelPrincipal(const krb4::Principal& target);

  // Attack-surface hooks: one raw request frame with a caller-chosen nonce
  // (fresh authenticator each call), and the matching reply parser. The
  // replay/interception probes in src/attacks/rotation.cc splice and resend
  // these without going through Execute's retry loop.
  kerb::Result<kerb::Bytes> BuildRequest(AdminOp op, const krb4::Principal& target,
                                         kerb::BytesView payload, uint64_t nonce);
  kerb::Result<Ack> ParseReply(uint64_t nonce, kerb::BytesView reply_frame);

  const ksim::NetAddress& admin_address() const { return admin_addr_; }
  krb4::Client4& client() { return *client_; }

 private:
  kerb::Result<Ack> Execute(AdminOp op, const krb4::Principal& target, kerb::BytesView payload);
  kerb::Result<kcrypto::DesKey> SessionKey();

  krb4::Client4* client_;
  ksim::Network* net_;
  ksim::HostClock clock_;
  ksim::NetAddress admin_addr_;
  kcrypto::Prng prng_;
  std::optional<ksim::Exchanger> exchanger_;
};

}  // namespace kadmin

#endif  // SRC_ADMIN_KADMIN_H_
