#include "src/admin/messages.h"

#include <utility>

#include "src/crypto/checksum.h"
#include "src/encoding/io.h"
#include "src/krb4/messages.h"

namespace kadmin {

krb4::Principal AdminPrincipal(const std::string& realm) {
  return krb4::Principal::Service("changepw", "kerberos", realm);
}

const char* AdminOpName(AdminOp op) {
  switch (op) {
    case AdminOp::kChangePassword:
      return "change_password";
    case AdminOp::kRotateKey:
      return "rotate_key";
    case AdminOp::kGetKey:
      return "get_key";
    case AdminOp::kAddPrincipal:
      return "add_principal";
    case AdminOp::kDelPrincipal:
      return "del_principal";
    case AdminOp::kGetKvno:
      return "get_kvno";
  }
  return "unknown";
}

kerb::Bytes AdminRequest::Encode() const {
  kenc::Writer w;
  w.PutLengthPrefixed(sealed_ticket);
  w.PutLengthPrefixed(sealed_auth);
  w.PutLengthPrefixed(sealed_req);
  return krb4::Frame4(krb4::MsgType::kAdminRequest, w.Peek());
}

kerb::Result<AdminRequest> AdminRequest::Decode(kerb::BytesView body) {
  kenc::Reader r(body);
  AdminRequest req;
  auto ticket = r.GetLengthPrefixed();
  if (!ticket.ok()) {
    return ticket.error();
  }
  auto auth = r.GetLengthPrefixed();
  if (!auth.ok()) {
    return auth.error();
  }
  auto sealed = r.GetLengthPrefixed();
  if (!sealed.ok()) {
    return sealed.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes in admin request");
  }
  req.sealed_ticket = std::move(ticket.value());
  req.sealed_auth = std::move(auth.value());
  req.sealed_req = std::move(sealed.value());
  return req;
}

// Appends `w`'s current contents' MD4 to `w` itself, length-prefixed.
static void AppendChecksum(kenc::Writer& w) {
  kerb::Bytes sum = kcrypto::ComputeChecksum(kcrypto::ChecksumType::kMd4, w.Peek());
  w.PutLengthPrefixed(sum);
}

// Verifies the trailing length-prefixed MD4 over everything before it.
// `body_len` is where the checksum's length prefix begins.
static kerb::Status VerifyTrailingChecksum(kerb::BytesView data, size_t body_len,
                                           kerb::BytesView sum) {
  if (!kcrypto::VerifyChecksum(kcrypto::ChecksumType::kMd4,
                               kerb::BytesView(data.data(), body_len), sum)) {
    return kerb::MakeError(kerb::ErrorCode::kIntegrity, "admin body checksum mismatch");
  }
  return kerb::Status::Ok();
}

kerb::Bytes AdminReqBody::Encode() const {
  kenc::Writer w;
  w.PutU8(static_cast<uint8_t>(op));
  target.EncodeTo(w);
  w.PutU64(nonce);
  w.PutU64(static_cast<uint64_t>(timestamp));
  w.PutU32(sender_addr);
  w.PutU8(direction);
  w.PutLengthPrefixed(payload);
  AppendChecksum(w);
  return w.Take();
}

kerb::Result<AdminReqBody> AdminReqBody::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AdminReqBody body;
  auto op = r.GetU8();
  if (!op.ok()) {
    return op.error();
  }
  if (op.value() < static_cast<uint8_t>(AdminOp::kChangePassword) ||
      op.value() > static_cast<uint8_t>(AdminOp::kGetKvno)) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "unknown admin op");
  }
  body.op = static_cast<AdminOp>(op.value());
  auto target = krb4::Principal::DecodeFrom(r);
  if (!target.ok()) {
    return target.error();
  }
  body.target = std::move(target.value());
  auto nonce = r.GetU64();
  if (!nonce.ok()) {
    return nonce.error();
  }
  body.nonce = nonce.value();
  auto ts = r.GetU64();
  if (!ts.ok()) {
    return ts.error();
  }
  body.timestamp = static_cast<ksim::Time>(ts.value());
  auto addr = r.GetU32();
  if (!addr.ok()) {
    return addr.error();
  }
  body.sender_addr = addr.value();
  auto dir = r.GetU8();
  if (!dir.ok()) {
    return dir.error();
  }
  body.direction = dir.value();
  auto payload = r.GetLengthPrefixed();
  if (!payload.ok()) {
    return payload.error();
  }
  body.payload = std::move(payload.value());
  const size_t body_len = data.size() - r.remaining();
  auto sum = r.GetLengthPrefixed();
  if (!sum.ok()) {
    return sum.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes in admin body");
  }
  auto verified = VerifyTrailingChecksum(data, body_len, sum.value());
  if (!verified.ok()) {
    return verified.error();
  }
  return body;
}

kerb::Bytes AdminReplyBody::Encode() const {
  kenc::Writer w;
  w.PutU64(nonce_plus_one);
  w.PutU64(static_cast<uint64_t>(timestamp));
  w.PutU8(direction);
  w.PutU32(code);
  w.PutU32(kvno);
  w.PutLengthPrefixed(detail);
  AppendChecksum(w);
  return w.Take();
}

kerb::Result<AdminReplyBody> AdminReplyBody::Decode(kerb::BytesView data) {
  kenc::Reader r(data);
  AdminReplyBody body;
  auto nonce = r.GetU64();
  if (!nonce.ok()) {
    return nonce.error();
  }
  body.nonce_plus_one = nonce.value();
  auto ts = r.GetU64();
  if (!ts.ok()) {
    return ts.error();
  }
  body.timestamp = static_cast<ksim::Time>(ts.value());
  auto dir = r.GetU8();
  if (!dir.ok()) {
    return dir.error();
  }
  body.direction = dir.value();
  auto code = r.GetU32();
  if (!code.ok()) {
    return code.error();
  }
  body.code = code.value();
  auto kvno = r.GetU32();
  if (!kvno.ok()) {
    return kvno.error();
  }
  body.kvno = kvno.value();
  auto detail = r.GetLengthPrefixed();
  if (!detail.ok()) {
    return detail.error();
  }
  body.detail = std::move(detail.value());
  const size_t body_len = data.size() - r.remaining();
  auto sum = r.GetLengthPrefixed();
  if (!sum.ok()) {
    return sum.error();
  }
  if (!r.AtEnd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "trailing bytes in admin reply");
  }
  auto verified = VerifyTrailingChecksum(data, body_len, sum.value());
  if (!verified.ok()) {
    return verified.error();
  }
  return body;
}

}  // namespace kadmin
