#include "src/common/result.h"

namespace kerb {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kBadFormat:
      return "BAD_FORMAT";
    case ErrorCode::kIntegrity:
      return "INTEGRITY";
    case ErrorCode::kAuthFailed:
      return "AUTH_FAILED";
    case ErrorCode::kReplay:
      return "REPLAY";
    case ErrorCode::kSkew:
      return "SKEW";
    case ErrorCode::kExpired:
      return "EXPIRED";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPolicy:
      return "POLICY";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
    case ErrorCode::kRateLimited:
      return "RATE_LIMITED";
    case ErrorCode::kTransport:
      return "TRANSPORT";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

bool IsRetryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTransport:    // delivery failure: nothing was judged
    case ErrorCode::kRateLimited:  // throttled: acceptable after backoff
    case ErrorCode::kBadFormat:    // request corrupted in flight
    case ErrorCode::kIntegrity:    // ciphertext damaged in flight
      return true;
    default:
      return false;
  }
}

std::string Error::ToString() const {
  std::string out = ErrorCodeName(code);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace kerb
