// Byte-buffer primitives shared by every library in this repository.
//
// All protocol and cryptographic code operates on `kerb::Bytes` (an owning
// contiguous buffer) and `kerb::BytesView` (a non-owning view). Helpers here
// are the small set of operations the protocols need: concatenation, XOR,
// constant-time comparison, and subsequence search (used by the HSM leakage
// experiments to scan outputs for key octets).

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace kerb {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

// Builds a Bytes from the raw characters of `s` (no terminator).
Bytes ToBytes(std::string_view s);

// Interprets `b` as raw characters.
std::string ToString(BytesView b);

// Concatenates any number of buffers.
Bytes Concat(std::initializer_list<BytesView> parts);

// Appends `src` to `dst`.
void Append(Bytes& dst, BytesView src);

// XORs two equal-length buffers. Asserts on length mismatch.
Bytes Xor(BytesView a, BytesView b);

// In-place XOR of `b` into `a` (equal lengths; asserts otherwise).
void XorInto(std::span<uint8_t> a, BytesView b);

// Constant-time equality (length leak is permitted; contents are not).
bool ConstantTimeEqual(BytesView a, BytesView b);

// True when `needle` occurs contiguously inside `haystack`.
// Empty needles never match.
bool ContainsSubsequence(BytesView haystack, BytesView needle);

// Overwrites the buffer with zeros. Models the paper's "Kerberos attempts to
// wipe out old keys at logoff time".
void SecureWipe(Bytes& b);

}  // namespace kerb

#endif  // SRC_COMMON_BYTES_H_
