// Hex encode/decode helpers, used by tests (published test vectors) and by
// the experiment harnesses when printing evidence buffers.

#ifndef SRC_COMMON_HEX_H_
#define SRC_COMMON_HEX_H_

#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kerb {

// Lower-case hex encoding of `b`.
std::string HexEncode(BytesView b);

// Decodes a hex string; whitespace is permitted and skipped. Fails with
// kBadFormat on odd digit counts or non-hex characters.
Result<Bytes> HexDecode(std::string_view s);

// Decode that asserts on failure — for compile-time-known literals in tests.
Bytes MustHexDecode(std::string_view s);

}  // namespace kerb

#endif  // SRC_COMMON_HEX_H_
