// Lightweight Result<T> used on every fallible protocol path.
//
// Protocol and crypto code in this repository does not throw: an operation
// that can fail returns Result<T>, carrying either a value or an Error with
// a category and human-readable detail. Programmer errors (contract
// violations) assert instead.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace kerb {

// Failure categories. These mirror the classes of failure the Kerberos
// protocols distinguish: cryptographic integrity failures, protocol-format
// problems, authentication rejections, policy denials, and transport
// problems in the simulated network.
enum class ErrorCode {
  kOk = 0,
  kBadFormat,        // message failed to parse / encode
  kIntegrity,        // checksum or decryption integrity check failed
  kAuthFailed,       // authentication rejected (bad key, bad authenticator)
  kReplay,           // replay detected (cache hit, stale timestamp, seqno gap)
  kSkew,             // clock skew outside permitted window
  kExpired,          // ticket or credential lifetime exceeded
  kNotFound,         // unknown principal / realm / key
  kPolicy,           // request violates configured policy
  kUnsupported,      // option not supported by this protocol variant
  kRateLimited,      // server-side throttling engaged
  kTransport,        // simulated network delivery failure
  kInternal,         // invariant violation surfaced as an error
};

const char* ErrorCodeName(ErrorCode code);

// Classifies an error as observed at the transport/exchange boundary: true
// when re-presenting the request (or a freshly built copy of it) has a
// chance of succeeding, false when the server has judged the request and
// rejected it on its merits. All simulated delivery failures — drops, lost
// replies, blackouts, unbound services — surface as kTransport, so retry
// loops key off this single predicate instead of string-matching details.
//
// kBadFormat and kIntegrity count as retryable here because, from the
// sender's side of an exchange, they mean the bytes the server judged were
// not the bytes the client sent: the request was truncated or corrupted in
// flight, and the client's intact copy is still worth retransmitting. A
// server that could not parse or verify a request has taken no action on
// it, so the retry is also side-effect free.
bool IsRetryable(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string detail;

  std::string ToString() const;
};

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  ErrorCode code() const { return ok() ? ErrorCode::kOk : error().code; }

 private:
  std::variant<T, Error> data_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }
  ErrorCode code() const { return ok_ ? ErrorCode::kOk : error_.code; }

 private:
  Error error_;
  bool ok_ = true;
};

inline Error MakeError(ErrorCode code, std::string detail) {
  return Error{code, std::move(detail)};
}

}  // namespace kerb

#endif  // SRC_COMMON_RESULT_H_
