#include "src/common/hex.h"

#include <cassert>
#include <cctype>

namespace kerb {

namespace {

constexpr char kDigits[] = "0123456789abcdef";

int NibbleValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view s) {
  Bytes out;
  out.reserve(s.size() / 2);
  int high = -1;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      continue;
    }
    int v = NibbleValue(c);
    if (v < 0) {
      return MakeError(ErrorCode::kBadFormat, "non-hex character in input");
    }
    if (high < 0) {
      high = v;
    } else {
      out.push_back(static_cast<uint8_t>((high << 4) | v));
      high = -1;
    }
  }
  if (high >= 0) {
    return MakeError(ErrorCode::kBadFormat, "odd number of hex digits");
  }
  return out;
}

Bytes MustHexDecode(std::string_view s) {
  auto r = HexDecode(s);
  assert(r.ok());
  return std::move(r).value();
}

}  // namespace kerb
