#include "src/common/bytes.h"

#include <cassert>
#include <cstring>

namespace kerb {

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string ToString(BytesView b) { return std::string(b.begin(), b.end()); }

Bytes Concat(std::initializer_list<BytesView> parts) {
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
  }
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void Append(Bytes& dst, BytesView src) { dst.insert(dst.end(), src.begin(), src.end()); }

Bytes Xor(BytesView a, BytesView b) {
  assert(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

void XorInto(std::span<uint8_t> a, BytesView b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

bool ContainsSubsequence(BytesView haystack, BytesView needle) {
  if (needle.empty() || needle.size() > haystack.size()) {
    return false;
  }
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (std::memcmp(haystack.data() + i, needle.data(), needle.size()) == 0) {
      return true;
    }
  }
  return false;
}

void SecureWipe(Bytes& b) {
  volatile uint8_t* p = b.data();
  for (size_t i = 0; i < b.size(); ++i) {
    p[i] = 0;
  }
}

}  // namespace kerb
