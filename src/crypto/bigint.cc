#include "src/crypto/bigint.h"

#include <cassert>

#include "src/crypto/modexp.h"

namespace kcrypto {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

// Montgomery context for an odd modulus.
struct MontCtx {
  std::vector<uint32_t> m;  // modulus limbs, little-endian
  uint32_t n0inv;           // -m[0]^-1 mod 2^32

  explicit MontCtx(const std::vector<uint32_t>& modulus) : m(modulus) {
    // Newton iteration for the inverse of m[0] modulo 2^32.
    uint32_t x = m[0];
    uint32_t inv = x;  // correct mod 2^4 for odd x
    for (int i = 0; i < 4; ++i) {
      inv *= 2 - x * inv;
    }
    n0inv = static_cast<uint32_t>(0u - inv);
  }

  size_t n() const { return m.size(); }

  // out = (a * b * R^-1) mod m, CIOS method. a, b, out all have n() limbs.
  void Mul(const uint32_t* a, const uint32_t* b, uint32_t* out) const {
    const size_t len = n();
    std::vector<uint64_t> t(len + 2, 0);
    for (size_t i = 0; i < len; ++i) {
      uint64_t carry = 0;
      for (size_t j = 0; j < len; ++j) {
        uint64_t cur = t[j] + static_cast<uint64_t>(a[i]) * b[j] + carry;
        t[j] = cur & 0xffffffffu;
        carry = cur >> 32;
      }
      uint64_t cur = t[len] + carry;
      t[len] = cur & 0xffffffffu;
      t[len + 1] += cur >> 32;

      uint32_t m_factor = static_cast<uint32_t>(t[0]) * n0inv;
      carry = 0;
      for (size_t j = 0; j < len; ++j) {
        uint64_t c2 = t[j] + static_cast<uint64_t>(m_factor) * m[j] + carry;
        t[j] = c2 & 0xffffffffu;
        carry = c2 >> 32;
      }
      cur = t[len] + carry;
      t[len] = cur & 0xffffffffu;
      t[len + 1] += cur >> 32;

      // Divide by 2^32: drop the (now zero) low limb.
      for (size_t j = 0; j <= len; ++j) {
        t[j] = t[j + 1];
      }
      t[len + 1] = 0;
    }
    // Conditional subtraction of m.
    bool ge = t[len] != 0;
    if (!ge) {
      ge = true;
      for (size_t j = len; j-- > 0;) {
        if (t[j] != m[j]) {
          ge = t[j] > m[j];
          break;
        }
      }
    }
    if (ge) {
      int64_t borrow = 0;
      for (size_t j = 0; j < len; ++j) {
        int64_t cur = static_cast<int64_t>(t[j]) - m[j] - borrow;
        borrow = cur < 0 ? 1 : 0;
        out[j] = static_cast<uint32_t>(cur & 0xffffffff);
      }
    } else {
      for (size_t j = 0; j < len; ++j) {
        out[j] = static_cast<uint32_t>(t[j]);
      }
    }
  }
};

}  // namespace

BigInt::BigInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v & 0xffffffffu));
    if (v >> 32) {
      limbs_.push_back(static_cast<uint32_t>(v >> 32));
    }
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

kerb::Result<BigInt> BigInt::FromHex(std::string_view hex) {
  BigInt out;
  for (char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') {
      continue;
    }
    int v = HexNibble(c);
    if (v < 0) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "non-hex character");
    }
    out = out.ShiftLeft(4);
    if (v != 0) {
      out = out.Add(BigInt(static_cast<uint64_t>(v)));
    }
  }
  return out;
}

BigInt BigInt::MustFromHex(std::string_view hex) {
  auto r = FromHex(hex);
  assert(r.ok());
  return std::move(r).value();
}

BigInt BigInt::FromBytes(kerb::BytesView bytes) {
  BigInt out;
  for (uint8_t b : bytes) {
    out = out.ShiftLeft(8);
    if (b != 0) {
      out = out.Add(BigInt(b));
    }
  }
  return out;
}

kerb::Bytes BigInt::ToBytes() const {
  if (limbs_.empty()) {
    return kerb::Bytes{0};
  }
  kerb::Bytes out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      uint8_t b = static_cast<uint8_t>((limbs_[i] >> shift) & 0xff);
      if (out.empty() && b == 0) {
        continue;  // skip leading zeros
      }
      out.push_back(b);
    }
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (limbs_.empty()) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      char c = kDigits[(limbs_[i] >> shift) & 0xf];
      if (out.empty() && c == '0') {
        continue;
      }
      out.push_back(c);
    }
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1u;
}

uint64_t BigInt::LowU64() const {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& other) const {
  BigInt out;
  const auto& a = limbs_;
  const auto& b = other.limbs_;
  size_t len = std::max(a.size(), b.size());
  out.limbs_.resize(len + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < len; ++i) {
    uint64_t cur = carry;
    if (i < a.size()) {
      cur += a[i];
    }
    if (i < b.size()) {
      cur += b[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  out.limbs_[len] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigInt BigInt::Sub(const BigInt& other) const {
  assert(Compare(other) >= 0);
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t cur = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) {
      cur -= other.limbs_[i];
    }
    borrow = cur < 0 ? 1 : 0;
    out.limbs_[i] = static_cast<uint32_t>(cur & 0xffffffff);
  }
  assert(borrow == 0);
  out.Normalize();
  return out;
}

BigInt BigInt::Mul(const BigInt& other) const {
  if (IsZero() || other.IsZero()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + static_cast<uint64_t>(limbs_[i]) * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    out.limbs_[i + other.limbs_.size()] = static_cast<uint32_t>(carry);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v & 0xffffffffu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::Mod(const BigInt& modulus) const {
  assert(!modulus.IsZero());
  if (Compare(modulus) < 0) {
    return *this;
  }
  BigInt rem = *this;
  size_t shift = rem.BitLength() - modulus.BitLength();
  BigInt shifted = modulus.ShiftLeft(shift);
  for (size_t i = 0; i <= shift; ++i) {
    if (rem.Compare(shifted) >= 0) {
      rem = rem.Sub(shifted);
    }
    shifted = shifted.ShiftRight(1);
  }
  return rem;
}

BigInt BigInt::FromRawLimbs(std::vector<uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

kerb::Result<BigInt> BigInt::ModExp(const BigInt& base, const BigInt& exponent,
                                    const BigInt& modulus) {
  auto ctx = ModExpCtx::Create(modulus);
  if (!ctx.ok()) {
    return ctx.error();
  }
  return ctx.value().Pow(base, exponent);
}

kerb::Result<BigInt> BigInt::ModExpBinary(const BigInt& base, const BigInt& exponent,
                                          const BigInt& modulus) {
  if (modulus.IsZero()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "modexp modulus is zero");
  }
  if (!modulus.IsOdd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "modexp modulus is even");
  }
  if (modulus.BitLength() <= 1) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "modexp modulus must exceed 1");
  }

  MontCtx ctx(modulus.limbs_);
  const size_t n = ctx.n();

  // R mod m and R^2 mod m via shift-and-reduce (done once per call).
  BigInt r_mod = BigInt(1).ShiftLeft(32 * n).Mod(modulus);
  BigInt r2_mod = r_mod.Mul(r_mod).Mod(modulus);

  auto to_limbs = [n](const BigInt& v) {
    std::vector<uint32_t> out(n, 0);
    for (size_t i = 0; i < v.limbs_.size() && i < n; ++i) {
      out[i] = v.limbs_[i];
    }
    return out;
  };

  std::vector<uint32_t> base_m(n), acc(n), r2 = to_limbs(r2_mod);
  std::vector<uint32_t> base_reduced = to_limbs(base.Mod(modulus));
  ctx.Mul(base_reduced.data(), r2.data(), base_m.data());  // base * R mod m
  acc = to_limbs(r_mod);                                   // 1 * R mod m

  size_t bits = exponent.BitLength();
  std::vector<uint32_t> tmp(n);
  for (size_t i = bits; i-- > 0;) {
    ctx.Mul(acc.data(), acc.data(), tmp.data());
    acc.swap(tmp);
    if (exponent.GetBit(i)) {
      ctx.Mul(acc.data(), base_m.data(), tmp.data());
      acc.swap(tmp);
    }
  }

  // Leave the Montgomery domain: multiply by 1.
  std::vector<uint32_t> one(n, 0);
  one[0] = 1;
  ctx.Mul(acc.data(), one.data(), tmp.data());

  BigInt out;
  out.limbs_ = tmp;
  out.Normalize();
  return out;
}

}  // namespace kcrypto
