// Bitsliced DES: hundreds of independent encryptions at once on one core.
//
// Classic Biham-style bitslicing — machine words are treated as arrays of
// one-bit processors. A block is stored "transposed": wire p holds block
// bit p (FIPS numbering, 0 = most significant) across all lanes. In this
// form every DES permutation (IP, FP, E, P, PC-1, PC-2, and the
// key-schedule rotations) is free — just a renaming of wires, compiled into
// array indexing — and each S-box is a boolean circuit of ~118 AND/OR/NOT
// gates (des_slice_sboxes.inc, generated and exhaustively verified by
// gen_des_slice_sboxes.py) evaluated across all lanes at once.
//
// Each wire is kDesSliceWords uint64_t words, so a batch carries
// 64 * kDesSliceWords lanes. There are no SIMD intrinsics anywhere — every
// gate is a plain fixed-length loop of uint64_t AND/OR/XOR the compiler is
// free to autovectorize — so the engine is deterministic, portable, and
// still an order of magnitude past the table-driven path per core.
//
// The engine supports a different key per lane — exactly what the password
// sweep needs (hundreds of candidate keys against one recorded ciphertext)
// and what table-driven DES fundamentally cannot batch. Lanes beyond `n`
// compute unspecified (but deterministic) garbage; callers ignore them.
//
// Correctness is anchored the same way as the table-driven path: the
// generator verifies every S-box circuit against destables::kSBox over all
// 64 inputs, and tests/crypto/des_slice_test.cc cross-checks whole-block
// encryption against DesKeyRef on FIPS vectors, random sweeps, weak keys,
// and partial (<full batch) tails.

#ifndef SRC_CRYPTO_DES_SLICE_H_
#define SRC_CRYPTO_DES_SLICE_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/des.h"

namespace kcrypto {

// uint64_t words per wire. 4 lets the plain gate loops autovectorize to
// whatever vector width the build targets while staying correct (and fast)
// as scalar code on anything else.
inline constexpr size_t kDesSliceWords = 4;

// Lanes per batch: one per bit across the words of a wire.
inline constexpr size_t kDesSliceLanes = 64 * kDesSliceWords;

// One wire: a bit position of the block, across all lanes. Lane j lives in
// word j/64 at bit j%64. The operators are the whole gate set.
struct DesSliceWord {
  uint64_t v[kDesSliceWords];

  friend DesSliceWord operator&(const DesSliceWord& a, const DesSliceWord& b) {
    DesSliceWord r;
    for (size_t i = 0; i < kDesSliceWords; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  friend DesSliceWord operator|(const DesSliceWord& a, const DesSliceWord& b) {
    DesSliceWord r;
    for (size_t i = 0; i < kDesSliceWords; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
  }
  friend DesSliceWord operator^(const DesSliceWord& a, const DesSliceWord& b) {
    DesSliceWord r;
    for (size_t i = 0; i < kDesSliceWords; ++i) r.v[i] = a.v[i] ^ b.v[i];
    return r;
  }
  DesSliceWord operator~() const {
    DesSliceWord r;
    for (size_t i = 0; i < kDesSliceWords; ++i) r.v[i] = ~v[i];
    return r;
  }
  DesSliceWord& operator^=(const DesSliceWord& o) {
    for (size_t i = 0; i < kDesSliceWords; ++i) v[i] ^= o.v[i];
    return *this;
  }
};

// A batch of up to kDesSliceLanes blocks in wire (transposed) form.
struct DesSliceState {
  DesSliceWord w[64];
};

// A lane predicate for DesSliceSelect: bit j%64 of m[j/64] covers lane j.
struct DesSliceMask {
  uint64_t m[kDesSliceWords]{};

  void Set(size_t lane) { m[lane / 64] |= uint64_t{1} << (lane % 64); }
};

// Transposed key schedule. In wire form the whole schedule is just the 56
// post-PC-1 key bits (the C||D register pair): every round's rotation and
// PC-2 only renames those wires, and the rename indices are compile-time
// constants, so the crypt core reads cd[] directly — 1.75 KiB of key
// material per batch instead of a materialized 16x48 table. Built once per
// batch of keys and reused for any number of blocks, like DesKey's schedule.
struct DesSliceKeys {
  DesSliceWord cd[56];
};

// Builds the schedule for keys[0..n). Lanes >= n are zero-filled (their
// outputs are meaningless; ignore them).
void DesSliceSchedule(const DesBlock* keys, size_t n, DesSliceKeys& out);

// Builds the schedule from keys already in wire form (wire p = key bit p,
// MSB first — the orientation DesSliceLoad produces). PC-1 is a renaming,
// so this is 56 wire copies and no transpose: the fast path when the keys
// were themselves computed bitsliced (string-to-key batches).
void DesSliceScheduleFromWires(const DesSliceState& key_wires, DesSliceKeys& out);

// Blocks <-> wire form. The uint64_t forms use FIPS bit order (the value
// LoadU64BE would produce). Lanes >= n load as zero / are not stored.
void DesSliceLoad(const uint64_t* blocks, size_t n, DesSliceState& st);
void DesSliceLoad(const DesBlock* blocks, size_t n, DesSliceState& st);
void DesSliceStore(const DesSliceState& st, uint64_t* blocks, size_t n);
void DesSliceStore(const DesSliceState& st, DesBlock* blocks, size_t n);

// Loads the same block into every lane — no transpose needed: each wire is
// all-ones or all-zeros. This is the fast path for trying many keys against
// one ciphertext block.
void DesSliceBroadcast(uint64_t block, DesSliceState& st);

// Encrypts / decrypts all lanes in place, lane j under key lane j.
void DesSliceEncrypt(const DesSliceKeys& keys, DesSliceState& st);
void DesSliceDecrypt(const DesSliceKeys& keys, DesSliceState& st);

// dst ^= src, all wires. (XOR commutes with the transpose, so this is the
// wire-form CBC chaining step.)
void DesSliceXor(const DesSliceState& src, DesSliceState& dst);

// Per-lane select: lanes covered by `mask` take `from`'s value, the rest
// keep dst's. Used to freeze finished lanes when batched inputs have
// different block counts (CBC-MAC over variable-length passwords).
void DesSliceSelect(const DesSliceMask& mask, const DesSliceState& from, DesSliceState& dst);

// Overwrites one lane with `block` across all 64 wires. For patching rare
// odd lanes (weak-key fixups, oversize scalar fallbacks) into a batch that
// is otherwise computed entirely in wire form.
void DesSlicePatchLane(size_t lane, uint64_t block, DesSliceState& st);

// Sets the low bit of every byte to odd parity, all lanes at once: wire
// 8k+7 becomes the complement of the XOR of wires 8k..8k+6. The wire form
// of FixParity (identical per lane).
void DesSliceFixParity(DesSliceState& st);

// One-shot convenience: out[i] = E_{keys[i]}(in[i]) (or D). Schedules,
// transposes, crypts and untransposes; for repeated use against the same
// keys, hold a DesSliceKeys instead.
void DesSliceEcbEncrypt(const DesBlock* keys, const DesBlock* in, DesBlock* out, size_t n);
void DesSliceEcbDecrypt(const DesBlock* keys, const DesBlock* in, DesBlock* out, size_t n);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DES_SLICE_H_
