#include "src/crypto/crc32.h"

namespace kcrypto {

namespace {

struct Tables {
  uint32_t fwd[256];
  uint8_t top_index[256];  // maps (fwd[i] >> 24) -> i; a bijection for this polynomial

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      fwd[i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      top_index[fwd[i] >> 24] = static_cast<uint8_t>(i);
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

void Crc32State::Update(kerb::BytesView data) {
  const Tables& t = GetTables();
  for (uint8_t byte : data) {
    reg_ = (reg_ >> 8) ^ t.fwd[(reg_ ^ byte) & 0xff];
  }
}

uint32_t Crc32(kerb::BytesView data) {
  Crc32State state;
  state.Update(data);
  return state.Final();
}

std::array<uint8_t, 4> ForgePatch(kerb::BytesView prefix, uint32_t target_crc) {
  const Tables& t = GetTables();

  // Internal register value we must reach after consuming the patch.
  uint32_t want = target_crc ^ 0xffffffffu;

  // Walk backwards from `want`, recovering the table index used at each of
  // the four byte steps. The low bytes of `cur` become unknown as we walk,
  // but each step's lookup only depends on bits that are still determined.
  uint32_t cur = want;
  std::array<uint8_t, 4> idxs{};
  for (int i = 3; i >= 0; --i) {
    uint8_t idx = t.top_index[cur >> 24];
    idxs[i] = idx;
    cur = (cur ^ t.fwd[idx]) << 8;
  }

  // Forward pass: force each step to use the recovered index by choosing the
  // patch byte accordingly.
  Crc32State state;
  state.Update(prefix);
  uint32_t reg = state.reg_;
  std::array<uint8_t, 4> patch{};
  for (int i = 0; i < 4; ++i) {
    patch[i] = static_cast<uint8_t>((reg ^ idxs[i]) & 0xff);
    reg = (reg >> 8) ^ t.fwd[idxs[i]];
  }
  return patch;
}

}  // namespace kcrypto
