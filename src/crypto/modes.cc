#include "src/crypto/modes.h"

#include <cassert>

namespace kcrypto {

namespace {

DesBlock LoadBlock(kerb::BytesView data, size_t offset) {
  DesBlock b;
  for (size_t i = 0; i < 8; ++i) {
    b[i] = data[offset + i];
  }
  return b;
}

void StoreBlock(kerb::Bytes& out, const DesBlock& b) { out.insert(out.end(), b.begin(), b.end()); }

DesBlock XorBlocks(const DesBlock& a, const DesBlock& b) {
  DesBlock out;
  for (size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

}  // namespace

kerb::Bytes Pkcs5Pad(kerb::BytesView data) {
  size_t pad = 8 - (data.size() % 8);
  kerb::Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<uint8_t>(pad));
  return out;
}

kerb::Result<kerb::Bytes> Pkcs5Unpad(kerb::BytesView data) {
  if (data.empty() || data.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "padded data not a multiple of 8");
  }
  uint8_t pad = data[data.size() - 1];
  if (pad == 0 || pad > 8 || pad > data.size()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "bad pad length");
  }
  for (size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "inconsistent pad bytes");
    }
  }
  return kerb::Bytes(data.begin(), data.end() - pad);
}

kerb::Bytes ZeroPadTo8(kerb::BytesView data) {
  kerb::Bytes out(data.begin(), data.end());
  while (out.size() % 8 != 0) {
    out.push_back(0);
  }
  return out;
}

kerb::Bytes EncryptEcb(const DesKey& key, kerb::BytesView plaintext) {
  assert(plaintext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(plaintext.size());
  for (size_t off = 0; off < plaintext.size(); off += 8) {
    StoreBlock(out, key.EncryptBlock(LoadBlock(plaintext, off)));
  }
  return out;
}

kerb::Bytes DecryptEcb(const DesKey& key, kerb::BytesView ciphertext) {
  assert(ciphertext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(ciphertext.size());
  for (size_t off = 0; off < ciphertext.size(); off += 8) {
    StoreBlock(out, key.DecryptBlock(LoadBlock(ciphertext, off)));
  }
  return out;
}

kerb::Bytes EncryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext) {
  assert(plaintext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(plaintext.size());
  DesBlock chain = iv;
  for (size_t off = 0; off < plaintext.size(); off += 8) {
    chain = key.EncryptBlock(XorBlocks(LoadBlock(plaintext, off), chain));
    StoreBlock(out, chain);
  }
  return out;
}

kerb::Bytes DecryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext) {
  assert(ciphertext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(ciphertext.size());
  DesBlock chain = iv;
  for (size_t off = 0; off < ciphertext.size(); off += 8) {
    DesBlock c = LoadBlock(ciphertext, off);
    StoreBlock(out, XorBlocks(key.DecryptBlock(c), chain));
    chain = c;
  }
  return out;
}

kerb::Bytes EncryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext) {
  assert(plaintext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(plaintext.size());
  DesBlock chain = iv;  // holds P_{i-1} ^ C_{i-1}
  for (size_t off = 0; off < plaintext.size(); off += 8) {
    DesBlock p = LoadBlock(plaintext, off);
    DesBlock c = key.EncryptBlock(XorBlocks(p, chain));
    StoreBlock(out, c);
    chain = XorBlocks(p, c);
  }
  return out;
}

kerb::Bytes DecryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext) {
  assert(ciphertext.size() % 8 == 0);
  kerb::Bytes out;
  out.reserve(ciphertext.size());
  DesBlock chain = iv;
  for (size_t off = 0; off < ciphertext.size(); off += 8) {
    DesBlock c = LoadBlock(ciphertext, off);
    DesBlock p = XorBlocks(key.DecryptBlock(c), chain);
    StoreBlock(out, p);
    chain = XorBlocks(p, c);
  }
  return out;
}

DesBlock CbcMac(const DesKey& key, const DesBlock& iv, kerb::BytesView data) {
  kerb::Bytes padded = ZeroPadTo8(data);
  DesBlock chain = iv;
  for (size_t off = 0; off < padded.size(); off += 8) {
    chain = key.EncryptBlock(XorBlocks(LoadBlock(padded, off), chain));
  }
  return chain;
}

}  // namespace kcrypto
