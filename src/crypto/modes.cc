#include "src/crypto/modes.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace kcrypto {

kerb::Bytes Pkcs5Pad(kerb::BytesView data) {
  kerb::Bytes out(data.begin(), data.end());
  Pkcs5PadInPlace(out);
  return out;
}

void Pkcs5PadInPlace(kerb::Bytes& data) {
  size_t pad = 8 - (data.size() % 8);
  data.insert(data.end(), pad, static_cast<uint8_t>(pad));
}

kerb::Result<kerb::Bytes> Pkcs5Unpad(kerb::BytesView data) {
  if (data.empty() || data.size() % 8 != 0) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "padded data not a multiple of 8");
  }
  uint8_t pad = data[data.size() - 1];
  if (pad == 0 || pad > 8 || pad > data.size()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "bad pad length");
  }
  for (size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      return kerb::MakeError(kerb::ErrorCode::kBadFormat, "inconsistent pad bytes");
    }
  }
  return kerb::Bytes(data.begin(), data.end() - pad);
}

kerb::Bytes ZeroPadTo8(kerb::BytesView data) {
  kerb::Bytes out(data.begin(), data.end());
  out.resize((out.size() + 7) & ~size_t{7}, 0);
  return out;
}

// --- Bulk primitives over spans of 64-bit blocks. ------------------------

namespace {

// Working-set size for the decrypt-then-chain loops below: big enough to
// amortize the call, small enough to stay in L1.
constexpr size_t kBulkChunk = 64;

}  // namespace

void EcbEncryptBlocks(const DesKey& key, const uint64_t* in, uint64_t* out, size_t n) {
  key.EncryptBlocks2(in, out, n);
}

void EcbDecryptBlocks(const DesKey& key, const uint64_t* in, uint64_t* out, size_t n) {
  key.DecryptBlocks2(in, out, n);
}

void CbcEncryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                      size_t n) {
  uint64_t chain = iv;
  for (size_t i = 0; i < n; ++i) {
    chain = key.EncryptBlock(in[i] ^ chain);
    out[i] = chain;
  }
}

void CbcDecryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                      size_t n) {
  // Unlike encryption, CBC decryption has no serial dependency through the
  // cipher: every D(C_i) is independent, only the final XOR chains. Decrypt
  // a chunk through the interleaved core, then chain. The ciphertext copy
  // also keeps in == out correct.
  uint64_t chain = iv;
  uint64_t c[kBulkChunk];
  uint64_t d[kBulkChunk];
  for (size_t base = 0; base < n; base += kBulkChunk) {
    const size_t m = std::min(kBulkChunk, n - base);
    std::memcpy(c, in + base, m * sizeof(uint64_t));
    key.DecryptBlocks2(c, d, m);
    for (size_t i = 0; i < m; ++i) {
      out[base + i] = d[i] ^ chain;
      chain = c[i];
    }
  }
}

void PcbcEncryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                       size_t n) {
  uint64_t chain = iv;  // holds P_{i-1} ^ C_{i-1}
  for (size_t i = 0; i < n; ++i) {
    uint64_t p = in[i];
    uint64_t c = key.EncryptBlock(p ^ chain);
    out[i] = c;
    chain = p ^ c;
  }
}

void PcbcDecryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                       size_t n) {
  // Same decrypt-then-chain split as CbcDecryptBlocks: P_i = D(C_i) ^ P_{i-1}
  // ^ C_{i-1}, and all the D(C_i) are independent.
  uint64_t chain = iv;
  uint64_t c[kBulkChunk];
  uint64_t d[kBulkChunk];
  for (size_t base = 0; base < n; base += kBulkChunk) {
    const size_t m = std::min(kBulkChunk, n - base);
    std::memcpy(c, in + base, m * sizeof(uint64_t));
    key.DecryptBlocks2(c, d, m);
    for (size_t i = 0; i < m; ++i) {
      uint64_t p = d[i] ^ chain;
      out[base + i] = p;
      chain = p ^ c[i];
    }
  }
}

uint64_t CbcMacBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, size_t n) {
  uint64_t chain = iv;
  for (size_t i = 0; i < n; ++i) {
    chain = key.EncryptBlock(in[i] ^ chain);
  }
  return chain;
}

// --- In-place byte-buffer transforms. ------------------------------------

void EncryptEcbInPlace(const DesKey& key, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t b[kBulkChunk];
  for (size_t off = 0; off < size; off += 8 * kBulkChunk) {
    const size_t m = std::min(kBulkChunk, (size - off) / 8);
    for (size_t i = 0; i < m; ++i) {
      b[i] = LoadU64BE(data + off + 8 * i);
    }
    key.EncryptBlocks2(b, b, m);
    for (size_t i = 0; i < m; ++i) {
      StoreU64BE(data + off + 8 * i, b[i]);
    }
  }
}

void DecryptEcbInPlace(const DesKey& key, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t b[kBulkChunk];
  for (size_t off = 0; off < size; off += 8 * kBulkChunk) {
    const size_t m = std::min(kBulkChunk, (size - off) / 8);
    for (size_t i = 0; i < m; ++i) {
      b[i] = LoadU64BE(data + off + 8 * i);
    }
    key.DecryptBlocks2(b, b, m);
    for (size_t i = 0; i < m; ++i) {
      StoreU64BE(data + off + 8 * i, b[i]);
    }
  }
}

void EncryptCbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t chain = BlockToU64(iv);
  for (size_t off = 0; off < size; off += 8) {
    chain = key.EncryptBlock(LoadU64BE(data + off) ^ chain);
    StoreU64BE(data + off, chain);
  }
}

void DecryptCbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t chain = BlockToU64(iv);
  uint64_t c[kBulkChunk];
  uint64_t d[kBulkChunk];
  for (size_t off = 0; off < size; off += 8 * kBulkChunk) {
    const size_t m = std::min(kBulkChunk, (size - off) / 8);
    for (size_t i = 0; i < m; ++i) {
      c[i] = LoadU64BE(data + off + 8 * i);
    }
    key.DecryptBlocks2(c, d, m);
    for (size_t i = 0; i < m; ++i) {
      StoreU64BE(data + off + 8 * i, d[i] ^ chain);
      chain = c[i];
    }
  }
}

void EncryptPcbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t chain = BlockToU64(iv);
  for (size_t off = 0; off < size; off += 8) {
    uint64_t p = LoadU64BE(data + off);
    uint64_t c = key.EncryptBlock(p ^ chain);
    StoreU64BE(data + off, c);
    chain = p ^ c;
  }
}

void DecryptPcbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size) {
  assert(size % 8 == 0);
  uint64_t chain = BlockToU64(iv);
  uint64_t c[kBulkChunk];
  uint64_t d[kBulkChunk];
  for (size_t off = 0; off < size; off += 8 * kBulkChunk) {
    const size_t m = std::min(kBulkChunk, (size - off) / 8);
    for (size_t i = 0; i < m; ++i) {
      c[i] = LoadU64BE(data + off + 8 * i);
    }
    key.DecryptBlocks2(c, d, m);
    for (size_t i = 0; i < m; ++i) {
      uint64_t p = d[i] ^ chain;
      StoreU64BE(data + off + 8 * i, p);
      chain = p ^ c[i];
    }
  }
}

// --- Allocating convenience wrappers. ------------------------------------

kerb::Bytes EncryptEcb(const DesKey& key, kerb::BytesView plaintext) {
  kerb::Bytes out(plaintext.begin(), plaintext.end());
  EncryptEcbInPlace(key, out.data(), out.size());
  return out;
}

kerb::Bytes DecryptEcb(const DesKey& key, kerb::BytesView ciphertext) {
  kerb::Bytes out(ciphertext.begin(), ciphertext.end());
  DecryptEcbInPlace(key, out.data(), out.size());
  return out;
}

kerb::Bytes EncryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext) {
  kerb::Bytes out(plaintext.begin(), plaintext.end());
  EncryptCbcInPlace(key, iv, out.data(), out.size());
  return out;
}

kerb::Bytes DecryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext) {
  kerb::Bytes out(ciphertext.begin(), ciphertext.end());
  DecryptCbcInPlace(key, iv, out.data(), out.size());
  return out;
}

kerb::Bytes EncryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext) {
  kerb::Bytes out(plaintext.begin(), plaintext.end());
  EncryptPcbcInPlace(key, iv, out.data(), out.size());
  return out;
}

kerb::Bytes DecryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext) {
  kerb::Bytes out(ciphertext.begin(), ciphertext.end());
  DecryptPcbcInPlace(key, iv, out.data(), out.size());
  return out;
}

DesBlock CbcMac(const DesKey& key, const DesBlock& iv, kerb::BytesView data) {
  uint64_t chain = BlockToU64(iv);
  size_t full = data.size() & ~size_t{7};
  for (size_t off = 0; off < full; off += 8) {
    chain = key.EncryptBlock(LoadU64BE(data.data() + off) ^ chain);
  }
  // Trailing partial block, zero-padded. Empty input degenerates to exactly
  // one zero block — the MAC must never be the unencrypted IV.
  if (data.size() > full) {
    uint8_t last[8] = {0};
    std::memcpy(last, data.data() + full, data.size() - full);
    chain = key.EncryptBlock(LoadU64BE(last) ^ chain);
  } else if (data.empty()) {
    chain = key.EncryptBlock(chain);  // the zero block XORs to the chain itself
  }
  return U64ToBlock(chain);
}

}  // namespace kcrypto
