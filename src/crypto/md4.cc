#include "src/crypto/md4.h"

#include <bit>
#include <cstring>

namespace kcrypto {

namespace {

uint32_t F(uint32_t x, uint32_t y, uint32_t z) { return (x & y) | (~x & z); }
uint32_t G(uint32_t x, uint32_t y, uint32_t z) { return (x & y) | (x & z) | (y & z); }
uint32_t H(uint32_t x, uint32_t y, uint32_t z) { return x ^ y ^ z; }

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

void Md4State::ProcessBlock(const uint8_t* block) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = LoadLe32(block + 4 * i);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];

  auto round1 = [&](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = std::rotl(aa + F(bb, cc, dd) + x[k], s);
  };
  auto round2 = [&](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = std::rotl(aa + G(bb, cc, dd) + x[k] + 0x5a827999u, s);
  };
  auto round3 = [&](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = std::rotl(aa + H(bb, cc, dd) + x[k] + 0x6ed9eba1u, s);
  };

  for (int i = 0; i < 16; i += 4) {
    round1(a, b, c, d, i + 0, 3);
    round1(d, a, b, c, i + 1, 7);
    round1(c, d, a, b, i + 2, 11);
    round1(b, c, d, a, i + 3, 19);
  }
  for (int i = 0; i < 4; ++i) {
    round2(a, b, c, d, i + 0, 3);
    round2(d, a, b, c, i + 4, 5);
    round2(c, d, a, b, i + 8, 9);
    round2(b, c, d, a, i + 12, 13);
  }
  constexpr int kRound3Order[4] = {0, 2, 1, 3};
  for (int idx : kRound3Order) {
    round3(a, b, c, d, idx + 0, 3);
    round3(d, a, b, c, idx + 8, 9);
    round3(c, d, a, b, idx + 4, 11);
    round3(b, c, d, a, idx + 12, 15);
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
}

void Md4State::Update(kerb::BytesView data) {
  size_t fill = static_cast<size_t>(total_bytes_ % 64);
  total_bytes_ += data.size();
  size_t offset = 0;
  if (fill > 0) {
    size_t take = std::min(64 - fill, data.size());
    std::memcpy(buffer_.data() + fill, data.data(), take);
    offset = take;
    if (fill + take < 64) {
      return;
    }
    ProcessBlock(buffer_.data());
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
  }
}

Md4Digest Md4State::Final() {
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[72] = {0x80};
  size_t fill = static_cast<size_t>(total_bytes_ % 64);
  size_t pad_len = (fill < 56) ? (56 - fill) : (120 - fill);
  Update(kerb::BytesView(pad, pad_len));
  uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) {
    len_le[i] = static_cast<uint8_t>((bit_len >> (8 * i)) & 0xff);
  }
  Update(kerb::BytesView(len_le, 8));

  Md4Digest digest;
  for (int i = 0; i < 4; ++i) {
    digest[4 * i + 0] = static_cast<uint8_t>(h_[i] & 0xff);
    digest[4 * i + 1] = static_cast<uint8_t>((h_[i] >> 8) & 0xff);
    digest[4 * i + 2] = static_cast<uint8_t>((h_[i] >> 16) & 0xff);
    digest[4 * i + 3] = static_cast<uint8_t>((h_[i] >> 24) & 0xff);
  }
  return digest;
}

Md4Digest Md4(kerb::BytesView data) {
  Md4State state;
  state.Update(data);
  return state.Final();
}

}  // namespace kcrypto
