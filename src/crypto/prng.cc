#include "src/crypto/prng.h"

#include <cassert>

namespace kcrypto {

uint64_t Prng::NextU64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Prng::NextBelow(uint64_t bound) {
  assert(bound != 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

kerb::Bytes Prng::NextBytes(size_t n) {
  kerb::Bytes out(n);
  Fill(out.data(), n);
  return out;
}

void Prng::Fill(uint8_t* out, size_t n) {
  size_t pos = 0;
  while (pos < n) {
    uint64_t v = NextU64();
    for (int i = 0; i < 8 && pos < n; ++i) {
      out[pos++] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

DesKey Prng::NextDesKey() {
  for (;;) {
    DesBlock raw;
    uint64_t v = NextU64();
    for (int i = 0; i < 8; ++i) {
      raw[i] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
    DesBlock key = FixParity(raw);
    if (!IsWeakKey(key)) {
      return DesKey(key);
    }
  }
}

Prng Prng::Fork() { return Prng(NextU64() ^ 0xa5a5a5a5a5a5a5a5ull); }

}  // namespace kcrypto
