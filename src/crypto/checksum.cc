#include "src/crypto/checksum.h"

#include <cassert>

#include "src/crypto/crc32.h"
#include "src/crypto/md4.h"
#include "src/crypto/modes.h"

namespace kcrypto {

const char* ChecksumTypeName(ChecksumType type) {
  switch (type) {
    case ChecksumType::kCrc32:
      return "crc32";
    case ChecksumType::kMd4:
      return "rsa-md4";
    case ChecksumType::kMd4Des:
      return "rsa-md4-des";
  }
  return "unknown";
}

size_t ChecksumSize(ChecksumType type) {
  switch (type) {
    case ChecksumType::kCrc32:
      return 4;
    case ChecksumType::kMd4:
    case ChecksumType::kMd4Des:
      return 16;
  }
  return 0;
}

bool IsCollisionProof(ChecksumType type) { return type != ChecksumType::kCrc32; }

bool IsKeyed(ChecksumType type) { return type == ChecksumType::kMd4Des; }

kerb::Bytes ComputeChecksum(ChecksumType type, kerb::BytesView data,
                            const std::optional<DesKey>& key) {
  switch (type) {
    case ChecksumType::kCrc32: {
      uint32_t c = Crc32(data);
      return kerb::Bytes{
          static_cast<uint8_t>(c & 0xff),
          static_cast<uint8_t>((c >> 8) & 0xff),
          static_cast<uint8_t>((c >> 16) & 0xff),
          static_cast<uint8_t>((c >> 24) & 0xff),
      };
    }
    case ChecksumType::kMd4: {
      Md4Digest d = Md4(data);
      return kerb::Bytes(d.begin(), d.end());
    }
    case ChecksumType::kMd4Des: {
      assert(key.has_value());
      Md4Digest d = Md4(data);
      DesKey variant = key->Variant(0xf0);
      return EncryptCbc(variant, kZeroIv, kerb::BytesView(d.data(), d.size()));
    }
  }
  return {};
}

bool VerifyChecksum(ChecksumType type, kerb::BytesView data, kerb::BytesView expected,
                    const std::optional<DesKey>& key) {
  kerb::Bytes computed = ComputeChecksum(type, data, key);
  return kerb::ConstantTimeEqual(computed, expected);
}

}  // namespace kcrypto
