// DES modes of operation: ECB, CBC (FIPS 81), and the nonstandard PCBC mode
// used by Kerberos Version 4.
//
// The paper's encryption-layer analysis hinges on the algebra of these
// modes:
//   * CBC: "prefixes of encryptions are encryptions of prefixes" (with the
//     same IV) — the basis of the inter-session chosen-plaintext attack on
//     the Draft 2 KRB_PRIV format (experiment E7).
//   * PCBC: interchanging two adjacent ciphertext blocks garbles only those
//     blocks; all later blocks decrypt correctly — the message-stream
//     modification weakness that led Version 5 to abandon PCBC (E8).
// Both properties are demonstrated by tests and experiments in this repo.
//
// Two API layers are provided:
//   * Bulk primitives over uint64_t block spans and in-place byte-buffer
//     transforms. These are allocation-free and are what the protocol
//     layers (enclayer, krbpriv) and the attack inner loops use.
//   * The original kerb::Bytes convenience wrappers, now a single
//     allocation plus an in-place transform.
//
// These functions provide raw modes with no integrity protection; integrity
// (checksums, confounders, rolling IVs) belongs to the encryption *layer*
// (src/hardened/enclayer.h), exactly as the paper recommends.

#ifndef SRC_CRYPTO_MODES_H_
#define SRC_CRYPTO_MODES_H_

#include <cstddef>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/crypto/des.h"

namespace kcrypto {

// Zero initialization vector — "assume the initial vector is fixed and
// public", the hint the paper gives for its chosen-ciphertext exercise.
constexpr DesBlock kZeroIv{};

// Appends PKCS#5-style padding (1..8 bytes, each equal to the pad length).
kerb::Bytes Pkcs5Pad(kerb::BytesView data);

// Appends PKCS#5 padding to `data` in place.
void Pkcs5PadInPlace(kerb::Bytes& data);

// Removes PKCS#5 padding; fails with kBadFormat on malformed padding.
kerb::Result<kerb::Bytes> Pkcs5Unpad(kerb::BytesView data);

// Appends zero bytes until the length is a multiple of 8 (Kerberos V4
// style; the plaintext must carry its own length field).
kerb::Bytes ZeroPadTo8(kerb::BytesView data);

// --- Bulk primitives over spans of 64-bit blocks (FIPS bit order). -------
//
// All of them allow in == out (in-place); CBC/PCBC decryption keeps the
// needed previous-ciphertext state in locals. None of them allocate.

void EcbEncryptBlocks(const DesKey& key, const uint64_t* in, uint64_t* out, size_t n);
void EcbDecryptBlocks(const DesKey& key, const uint64_t* in, uint64_t* out, size_t n);
void CbcEncryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                      size_t n);
void CbcDecryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                      size_t n);
void PcbcEncryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                       size_t n);
void PcbcDecryptBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, uint64_t* out,
                       size_t n);

// CBC-MAC over whole blocks: returns the final chaining value.
uint64_t CbcMacBlocks(const DesKey& key, uint64_t iv, const uint64_t* in, size_t n);

// --- In-place transforms over byte buffers (size must be a multiple of 8,
// asserted). The workhorses for the protocol layers: one pass, no copies. --

void EncryptEcbInPlace(const DesKey& key, uint8_t* data, size_t size);
void DecryptEcbInPlace(const DesKey& key, uint8_t* data, size_t size);
void EncryptCbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size);
void DecryptCbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size);
void EncryptPcbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size);
void DecryptPcbcInPlace(const DesKey& key, const DesBlock& iv, uint8_t* data, size_t size);

// --- Allocating convenience wrappers (copy once, transform in place). ----

// ECB. Input must be a multiple of 8 bytes (asserted).
kerb::Bytes EncryptEcb(const DesKey& key, kerb::BytesView plaintext);
kerb::Bytes DecryptEcb(const DesKey& key, kerb::BytesView ciphertext);

// CBC with explicit IV. Input must be a multiple of 8 bytes (asserted).
kerb::Bytes EncryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext);
kerb::Bytes DecryptCbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext);

// PCBC (propagating CBC), as used by Kerberos V4:
//   C_i = E(P_i ^ P_{i-1} ^ C_{i-1}),  with P_0 ^ C_0 = IV.
kerb::Bytes EncryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView plaintext);
kerb::Bytes DecryptPcbc(const DesKey& key, const DesBlock& iv, kerb::BytesView ciphertext);

// CBC-MAC (the DES "cipher block chaining checksum" of FIPS 113 flavor):
// returns the final CBC block over zero-padded data. Empty input is treated
// as one zero block, so the MAC is always the output of at least one
// encryption — never the raw IV.
DesBlock CbcMac(const DesKey& key, const DesBlock& iv, kerb::BytesView data);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_MODES_H_
