#include "src/crypto/des_slice.h"

#include <utility>

#include "src/crypto/des_tables.h"

namespace kcrypto {

namespace {

// Generated S-box gate circuits (see gen_des_slice_sboxes.py), instantiated
// with W = DesSliceWord: every gate is a fixed-length uint64_t loop.
#include "src/crypto/des_slice_sboxes.inc"

// In-place 64x64 bit-matrix transpose (the recursive block-swap of
// Hacker's Delight fig. 7-6, widened to 64). With rows numbered by array
// index and columns by bit position counted from the MSB, this is a true
// transpose; it is an involution.
void Transpose64(uint64_t a[64]) {
  uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const uint64_t t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= t << j;
    }
  }
}

// The key schedule as pure wiring: after PC-1 the 56 key bits sit in the
// C||D register pair, and every round's rotation-then-PC-2 only *renames*
// bits. kKsIdx[round][j] is the C||D index (post-PC-1) that becomes subkey
// bit j of that round, so scheduling a batch of keys is one transpose per
// word group plus copies.
struct KsIdx {
  uint8_t idx[16][48];
};

constexpr KsIdx MakeKsIdx() {
  KsIdx out{};
  int rot = 0;
  for (int r = 0; r < 16; ++r) {
    rot += destables::kShifts[r];
    for (int j = 0; j < 48; ++j) {
      const int pos = destables::kPc2[j] - 1;
      out.idx[r][j] = static_cast<uint8_t>(
          pos < 28 ? (pos + rot) % 28 : 28 + ((pos - 28 + rot) % 28));
    }
  }
  return out;
}

constexpr KsIdx kKsIdx = MakeKsIdx();

inline void SboxLayer(const DesSliceWord e[48], DesSliceWord s[32]) {
  // Chunk b of E(R) ^ K feeds S-box b+1: FIPS bit b1 (= e[6b]) is a5, b6 is
  // a0, b2..b5 the column bits a4..a1 — matching the generated signatures.
  DesSliceSbox1(e[0], e[1], e[2], e[3], e[4], e[5], s[0], s[1], s[2], s[3]);
  DesSliceSbox2(e[6], e[7], e[8], e[9], e[10], e[11], s[4], s[5], s[6], s[7]);
  DesSliceSbox3(e[12], e[13], e[14], e[15], e[16], e[17], s[8], s[9], s[10], s[11]);
  DesSliceSbox4(e[18], e[19], e[20], e[21], e[22], e[23], s[12], s[13], s[14], s[15]);
  DesSliceSbox5(e[24], e[25], e[26], e[27], e[28], e[29], s[16], s[17], s[18], s[19]);
  DesSliceSbox6(e[30], e[31], e[32], e[33], e[34], e[35], s[20], s[21], s[22], s[23]);
  DesSliceSbox7(e[36], e[37], e[38], e[39], e[40], e[41], s[24], s[25], s[26], s[27]);
  DesSliceSbox8(e[42], e[43], e[44], e[45], e[46], e[47], s[28], s[29], s[30], s[31]);
}

template <bool decrypt>
void CryptWires(const DesSliceKeys& keys, DesSliceWord w[64]) {
  // IP is a renaming: split straight into L and R wires.
  DesSliceWord x[32];
  DesSliceWord y[32];
  for (int i = 0; i < 32; ++i) {
    x[i] = w[destables::kIp[i] - 1];
    y[i] = w[destables::kIp[32 + i] - 1];
  }
  DesSliceWord* l = x;
  DesSliceWord* r = y;
  // Fully unrolled so that, with `decrypt` a template parameter and `round`
  // a constant, every kKsIdx lookup folds to a compile-time cd[] index —
  // the subkey wiring costs no runtime indirection at all.
#pragma GCC unroll 16
  for (int round = 0; round < 16; ++round) {
    const uint8_t* ki = kKsIdx.idx[decrypt ? 15 - round : round];
    DesSliceWord e[48];
    for (int j = 0; j < 48; ++j) {
      e[j] = r[destables::kE[j] - 1] ^ keys.cd[ki[j]];  // E is a renaming; + key
    }
    DesSliceWord s[32];
    SboxLayer(e, s);
    for (int i = 0; i < 32; ++i) {
      l[i] ^= s[destables::kP[i] - 1];  // P is a renaming
    }
    std::swap(l, r);  // pointer swap: the halves never move
  }
  // Preoutput is R16 || L16 (note the final swap), FP another renaming.
  DesSliceWord pre[64];
  for (int i = 0; i < 32; ++i) {
    pre[i] = r[i];
    pre[32 + i] = l[i];
  }
  for (int i = 0; i < 64; ++i) {
    w[i] = pre[destables::kFp[i] - 1];
  }
}

}  // namespace

void DesSliceSchedule(const DesBlock* keys, size_t n, DesSliceKeys& out) {
  // Per 64-lane word group: transpose the key blocks, select the 56 PC-1
  // bits as C||D wires, then every round subkey is a copy per kKsIdx.
  if (n > kDesSliceLanes) n = kDesSliceLanes;
  for (size_t g = 0; g * 64 < kDesSliceLanes; ++g) {
    uint64_t a[64] = {};
    const size_t base = g * 64;
    for (size_t j = base; j < n && j < base + 64; ++j) {
      a[63 - (j - base)] = LoadU64BE(keys[j].data());
    }
    Transpose64(a);
    for (int i = 0; i < 56; ++i) {
      out.cd[i].v[g] = a[destables::kPc1[i] - 1];
    }
  }
}

void DesSliceScheduleFromWires(const DesSliceState& key_wires, DesSliceKeys& out) {
  for (int i = 0; i < 56; ++i) {
    out.cd[i] = key_wires.w[destables::kPc1[i] - 1];
  }
}

void DesSliceLoad(const uint64_t* blocks, size_t n, DesSliceState& st) {
  if (n > kDesSliceLanes) n = kDesSliceLanes;
  for (size_t g = 0; g * 64 < kDesSliceLanes; ++g) {
    uint64_t a[64] = {};
    const size_t base = g * 64;
    for (size_t j = base; j < n && j < base + 64; ++j) {
      a[63 - (j - base)] = blocks[j];
    }
    Transpose64(a);
    for (int i = 0; i < 64; ++i) {
      st.w[i].v[g] = a[i];
    }
  }
}

void DesSliceLoad(const DesBlock* blocks, size_t n, DesSliceState& st) {
  uint64_t u[kDesSliceLanes];
  const size_t m = n < kDesSliceLanes ? n : kDesSliceLanes;
  for (size_t j = 0; j < m; ++j) {
    u[j] = LoadU64BE(blocks[j].data());
  }
  DesSliceLoad(u, m, st);
}

void DesSliceStore(const DesSliceState& st, uint64_t* blocks, size_t n) {
  if (n > kDesSliceLanes) n = kDesSliceLanes;
  for (size_t g = 0; g * 64 < n; ++g) {
    uint64_t a[64];
    for (int i = 0; i < 64; ++i) {
      a[i] = st.w[i].v[g];
    }
    Transpose64(a);
    const size_t base = g * 64;
    for (size_t j = base; j < n && j < base + 64; ++j) {
      blocks[j] = a[63 - (j - base)];
    }
  }
}

void DesSliceStore(const DesSliceState& st, DesBlock* blocks, size_t n) {
  uint64_t u[kDesSliceLanes];
  const size_t m = n < kDesSliceLanes ? n : kDesSliceLanes;
  DesSliceStore(st, u, m);
  for (size_t j = 0; j < m; ++j) {
    StoreU64BE(blocks[j].data(), u[j]);
  }
}

void DesSliceBroadcast(uint64_t block, DesSliceState& st) {
  for (int i = 0; i < 64; ++i) {
    const uint64_t fill = (block >> (63 - i)) & 1 ? ~uint64_t{0} : 0;
    for (size_t g = 0; g < kDesSliceWords; ++g) {
      st.w[i].v[g] = fill;
    }
  }
}

void DesSliceEncrypt(const DesSliceKeys& keys, DesSliceState& st) {
  CryptWires<false>(keys, st.w);
}

void DesSliceDecrypt(const DesSliceKeys& keys, DesSliceState& st) {
  CryptWires<true>(keys, st.w);
}

void DesSliceXor(const DesSliceState& src, DesSliceState& dst) {
  for (int i = 0; i < 64; ++i) {
    dst.w[i] ^= src.w[i];
  }
}

void DesSliceSelect(const DesSliceMask& mask, const DesSliceState& from, DesSliceState& dst) {
  for (int i = 0; i < 64; ++i) {
    for (size_t g = 0; g < kDesSliceWords; ++g) {
      dst.w[i].v[g] = (from.w[i].v[g] & mask.m[g]) | (dst.w[i].v[g] & ~mask.m[g]);
    }
  }
}

void DesSlicePatchLane(size_t lane, uint64_t block, DesSliceState& st) {
  const size_t g = lane / 64;
  const uint64_t bit = uint64_t{1} << (lane % 64);
  for (int i = 0; i < 64; ++i) {
    if ((block >> (63 - i)) & 1) {
      st.w[i].v[g] |= bit;
    } else {
      st.w[i].v[g] &= ~bit;
    }
  }
}

void DesSliceFixParity(DesSliceState& st) {
  for (int k = 0; k < 64; k += 8) {
    DesSliceWord p = st.w[k];
    for (int i = 1; i < 7; ++i) {
      p ^= st.w[k + i];
    }
    st.w[k + 7] = ~p;  // odd parity: low bit complements the 7-bit fold
  }
}

void DesSliceEcbEncrypt(const DesBlock* keys, const DesBlock* in, DesBlock* out, size_t n) {
  DesSliceKeys ks;
  DesSliceSchedule(keys, n, ks);
  DesSliceState st;
  DesSliceLoad(in, n, st);
  DesSliceEncrypt(ks, st);
  DesSliceStore(st, out, n);
}

void DesSliceEcbDecrypt(const DesBlock* keys, const DesBlock* in, DesBlock* out, size_t n) {
  DesSliceKeys ks;
  DesSliceSchedule(keys, n, ks);
  DesSliceState st;
  DesSliceLoad(in, n, st);
  DesSliceDecrypt(ks, st);
  DesSliceStore(st, out, n);
}

}  // namespace kcrypto
