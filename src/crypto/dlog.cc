#include "src/crypto/dlog.h"

#include <bit>
#include <vector>

#include "src/crypto/primes.h"

namespace kcrypto {

namespace {

// Extended gcd: returns g = gcd(a, b) and x with a*x ≡ g (mod b).
uint64_t ExtGcd(uint64_t a, uint64_t b, uint64_t& inv_out) {
  __int128 old_r = a, r = b;
  __int128 old_s = 1, s = 0;
  while (r != 0) {
    __int128 q = old_r / r;
    __int128 tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
  }
  __int128 x = old_s % static_cast<__int128>(b);
  if (x < 0) {
    x += b;
  }
  inv_out = static_cast<uint64_t>(x);
  return static_cast<uint64_t>(old_r);
}

uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  return a >= b ? (a - b) % m : m - ((b - a) % m);
}

// Floor of sqrt(n) by Newton's method — exact for all 64-bit n, unlike a
// linear count-up (which costs sqrt(n) iterations before the search begins).
uint64_t ISqrt(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  uint64_t x = uint64_t{1} << ((65 - std::countl_zero(n)) / 2);  // >= sqrt(n)
  while (true) {
    uint64_t y = (x + n / x) / 2;
    if (y >= x) {
      return x;
    }
    x = y;
  }
}

// Open-addressed baby-step table: power-of-two slots, linear probing, keys
// stored as value+1 so 0 marks an empty slot (group elements are < p, so
// +1 never wraps). Flat storage beats unordered_map's node-per-entry layout
// on both build time and probe locality for the sqrt(p)-sized table.
class BabyStepTable {
 public:
  explicit BabyStepTable(uint64_t entries) {
    size_t cap = std::bit_ceil(static_cast<size_t>(entries) * 2 + 1);
    mask_ = cap - 1;
    keys_.assign(cap, 0);
    indices_.resize(cap);
  }

  void Insert(uint64_t element, uint64_t index) {
    size_t slot = Hash(element);
    while (keys_[slot] != 0) {
      if (keys_[slot] == element + 1) {
        return;  // keep the smallest index for a repeated element
      }
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = element + 1;
    indices_[slot] = index;
  }

  std::optional<uint64_t> Find(uint64_t element) const {
    size_t slot = Hash(element);
    while (keys_[slot] != 0) {
      if (keys_[slot] == element + 1) {
        return indices_[slot];
      }
      slot = (slot + 1) & mask_;
    }
    return std::nullopt;
  }

 private:
  size_t Hash(uint64_t element) const {
    return static_cast<size_t>((element + 1) * 0x9e3779b97f4a7c15ull >> 32) & mask_;
  }

  size_t mask_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> indices_;
};

}  // namespace

std::optional<uint64_t> DlogBabyStepGiantStep(uint64_t g, uint64_t target, uint64_t p) {
  uint64_t n = p - 1;  // search the full exponent range
  uint64_t m = ISqrt(n);
  if (m * m < n) {
    ++m;  // ceil(sqrt(n))
  }
  // Baby steps: g^j for j in [0, m).
  BabyStepTable table(m);
  uint64_t cur = 1 % p;
  for (uint64_t j = 0; j < m; ++j) {
    table.Insert(cur, j);
    cur = MulMod64(cur, g, p);
  }
  // Giant steps: target * (g^-m)^i.
  uint64_t inv_g;
  uint64_t d = ExtGcd(g % p, p, inv_g);
  if (d != 1) {
    return std::nullopt;  // g not invertible — p not prime or g == 0
  }
  uint64_t giant = PowMod64(inv_g, m, p);
  uint64_t gamma = target % p;
  for (uint64_t i = 0; i <= m; ++i) {
    auto j = table.Find(gamma);
    if (j.has_value()) {
      uint64_t x = (i * m + *j) % n;
      if (PowMod64(g, x, p) == target % p) {
        return x;
      }
    }
    gamma = MulMod64(gamma, giant, p);
  }
  return std::nullopt;
}

std::optional<uint64_t> DlogPollardRho(uint64_t g, uint64_t target, uint64_t p, Prng& prng,
                                       int max_restarts) {
  uint64_t n = p - 1;
  uint64_t h = target % p;
  if (h == 1 % p) {
    return 0;
  }

  struct Walker {
    uint64_t y, a, b;
  };
  auto step = [&](Walker& w) {
    switch (w.y % 3) {
      case 0:
        w.y = MulMod64(w.y, g, p);
        w.a = (w.a + 1) % n;
        break;
      case 1:
        w.y = MulMod64(w.y, w.y, p);
        w.a = (w.a * 2) % n;
        w.b = (w.b * 2) % n;
        break;
      default:
        w.y = MulMod64(w.y, h, p);
        w.b = (w.b + 1) % n;
        break;
    }
  };

  for (int attempt = 0; attempt < max_restarts; ++attempt) {
    uint64_t a0 = prng.NextBelow(n);
    uint64_t b0 = prng.NextBelow(n);
    // Brent cycle detection: the anchor teleports to the hare's position
    // every time the probe length doubles, so each iteration advances the
    // walk once — versus three step() calls per iteration under Floyd —
    // and still finds a collision within O(cycle length) steps.
    Walker anchor{MulMod64(PowMod64(g, a0, p), PowMod64(h, b0, p), p), a0, b0};
    Walker hare = anchor;
    step(hare);
    uint64_t bound = 8 * (1ull << (64 - __builtin_clzll(n)) / 2);  // ~8*2^(bits/2)
    bound += (uint64_t)1e7;
    uint64_t power = 1;
    uint64_t lam = 1;
    bool collided = false;
    for (uint64_t i = 0; i < bound && !(collided = anchor.y == hare.y); ++i) {
      if (lam == power) {
        anchor = hare;
        power *= 2;
        lam = 0;
      }
      step(hare);
      ++lam;
    }
    if (collided) {
      // g^(a_s) h^(b_s) = g^(a_f) h^(b_f)  =>  (b_s - b_f) x = a_f - a_s (mod n)
      uint64_t db = SubMod(anchor.b, hare.b, n);
      uint64_t da = SubMod(hare.a, anchor.a, n);
      if (db == 0) {
        continue;  // degenerate collision; restart
      }
      uint64_t inv;
      uint64_t d = ExtGcd(db, n, inv);
      if (da % d != 0) {
        continue;
      }
      uint64_t n_d = n / d;
      uint64_t base_x = MulMod64((da / d) % n_d, inv % n_d, n_d);
      for (uint64_t k = 0; k < d && k < 4096; ++k) {
        uint64_t x = (base_x + k * n_d) % n;
        if (PowMod64(g, x, p) == h) {
          return x;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace kcrypto
