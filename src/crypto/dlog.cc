#include "src/crypto/dlog.h"

#include <unordered_map>

#include "src/crypto/primes.h"

namespace kcrypto {

namespace {

// Extended gcd: returns g = gcd(a, b) and x with a*x ≡ g (mod b).
uint64_t ExtGcd(uint64_t a, uint64_t b, uint64_t& inv_out) {
  __int128 old_r = a, r = b;
  __int128 old_s = 1, s = 0;
  while (r != 0) {
    __int128 q = old_r / r;
    __int128 tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
  }
  __int128 x = old_s % static_cast<__int128>(b);
  if (x < 0) {
    x += b;
  }
  inv_out = static_cast<uint64_t>(x);
  return static_cast<uint64_t>(old_r);
}

uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  return a >= b ? (a - b) % m : m - ((b - a) % m);
}

}  // namespace

std::optional<uint64_t> DlogBabyStepGiantStep(uint64_t g, uint64_t target, uint64_t p) {
  uint64_t n = p - 1;  // search the full exponent range
  uint64_t m = 1;
  while (m * m < n) {
    ++m;
  }
  // Baby steps: g^j for j in [0, m).
  std::unordered_map<uint64_t, uint64_t> table;
  table.reserve(static_cast<size_t>(m));
  uint64_t cur = 1 % p;
  for (uint64_t j = 0; j < m; ++j) {
    table.emplace(cur, j);
    cur = MulMod64(cur, g, p);
  }
  // Giant steps: target * (g^-m)^i.
  uint64_t inv_g;
  uint64_t d = ExtGcd(g % p, p, inv_g);
  if (d != 1) {
    return std::nullopt;  // g not invertible — p not prime or g == 0
  }
  uint64_t giant = PowMod64(inv_g, m, p);
  uint64_t gamma = target % p;
  for (uint64_t i = 0; i <= m; ++i) {
    auto it = table.find(gamma);
    if (it != table.end()) {
      uint64_t x = (i * m + it->second) % n;
      if (PowMod64(g, x, p) == target % p) {
        return x;
      }
    }
    gamma = MulMod64(gamma, giant, p);
  }
  return std::nullopt;
}

std::optional<uint64_t> DlogPollardRho(uint64_t g, uint64_t target, uint64_t p, Prng& prng,
                                       int max_restarts) {
  uint64_t n = p - 1;
  uint64_t h = target % p;
  if (h == 1 % p) {
    return 0;
  }

  struct Walker {
    uint64_t y, a, b;
  };
  auto step = [&](Walker& w) {
    switch (w.y % 3) {
      case 0:
        w.y = MulMod64(w.y, g, p);
        w.a = (w.a + 1) % n;
        break;
      case 1:
        w.y = MulMod64(w.y, w.y, p);
        w.a = (w.a * 2) % n;
        w.b = (w.b * 2) % n;
        break;
      default:
        w.y = MulMod64(w.y, h, p);
        w.b = (w.b + 1) % n;
        break;
    }
  };

  for (int attempt = 0; attempt < max_restarts; ++attempt) {
    uint64_t a0 = prng.NextBelow(n);
    uint64_t b0 = prng.NextBelow(n);
    Walker slow{MulMod64(PowMod64(g, a0, p), PowMod64(h, b0, p), p), a0, b0};
    Walker fast = slow;
    // Floyd cycle detection; bound the walk to avoid pathological loops.
    uint64_t bound = 8 * (1ull << (64 - __builtin_clzll(n)) / 2);  // ~8*2^(bits/2)
    for (uint64_t i = 0; i < bound + (uint64_t)1e7; ++i) {
      step(slow);
      step(fast);
      step(fast);
      if (slow.y == fast.y) {
        // g^(a_s) h^(b_s) = g^(a_f) h^(b_f)  =>  (b_s - b_f) x = a_f - a_s (mod n)
        uint64_t db = SubMod(slow.b, fast.b, n);
        uint64_t da = SubMod(fast.a, slow.a, n);
        if (db == 0) {
          break;  // degenerate collision; restart
        }
        uint64_t inv;
        uint64_t d = ExtGcd(db, n, inv);
        if (da % d != 0) {
          break;
        }
        uint64_t n_d = n / d;
        uint64_t base_x = MulMod64((da / d) % n_d, inv % n_d, n_d);
        for (uint64_t k = 0; k < d && k < 4096; ++k) {
          uint64_t x = (base_x + k * n_d) % n;
          if (PowMod64(g, x, p) == h) {
            return x;
          }
        }
        break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace kcrypto
