#include "src/crypto/modexp.h"

#include <cassert>

namespace kcrypto {

namespace {

using u128 = unsigned __int128;

// Packs 32-bit BigInt limbs into n 64-bit limbs (zero-extended).
std::vector<uint64_t> Pack64(const BigInt& v, size_t n) {
  const std::vector<uint32_t>& l = v.raw_limbs();
  std::vector<uint64_t> out(n, 0);
  for (size_t i = 0; i < l.size() && i / 2 < n; ++i) {
    out[i / 2] |= static_cast<uint64_t>(l[i]) << (32 * (i % 2));
  }
  return out;
}

BigInt Unpack64(const uint64_t* limbs, size_t n) {
  std::vector<uint32_t> out;
  out.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<uint32_t>(limbs[i] & 0xffffffffu));
    out.push_back(static_cast<uint32_t>(limbs[i] >> 32));
  }
  return BigInt::FromRawLimbs(std::move(out));
}

// a >= b over n limbs?
bool GeLimbs(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) {
      return a[i] > b[i];
    }
  }
  return true;
}

// out = a - b over n limbs (a >= b).
void SubLimbs(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t bi = b[i] + borrow;
    // bi overflowed only if b[i] was all-ones and borrow was 1; then the
    // subtraction borrows regardless of a[i].
    uint64_t next_borrow = (bi < b[i]) || (a[i] < bi) ? 1 : 0;
    out[i] = a[i] - bi;
    borrow = next_borrow;
  }
}

// Sliding-window width by exponent size: the table costs 2^(w-1) multiplies
// up front and saves ~bits·(1/2 − 1/(w+1)) multiplies in the scan.
int WindowBits(size_t exp_bits) {
  if (exp_bits > 512) {
    return 5;
  }
  if (exp_bits > 128) {
    return 4;
  }
  if (exp_bits > 24) {
    return 3;
  }
  return 2;
}

}  // namespace

kerb::Result<ModExpCtx> ModExpCtx::Create(const BigInt& modulus) {
  if (modulus.IsZero()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "modexp modulus is zero");
  }
  if (!modulus.IsOdd()) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat,
                           "modexp modulus is even (Montgomery needs gcd(m, 2^64) = 1)");
  }
  if (modulus.BitLength() <= 1) {
    return kerb::MakeError(kerb::ErrorCode::kBadFormat, "modexp modulus must exceed 1");
  }

  ModExpCtx ctx;
  ctx.modulus_ = modulus;
  const size_t n = (modulus.BitLength() + 63) / 64;
  ctx.m_ = Pack64(modulus, n);

  // Newton iteration for m[0]^-1 mod 2^64: x·x ≡ 1 (mod 8) seeds three
  // correct bits, each step doubles them — six steps pass 64.
  uint64_t x = ctx.m_[0];
  uint64_t inv = x;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - x * inv;
  }
  ctx.n0inv_ = 0 - inv;

  BigInt r_mod = BigInt(1).ShiftLeft(64 * n).Mod(modulus);
  BigInt r2_mod = r_mod.Mul(r_mod).Mod(modulus);
  ctx.r_ = Pack64(r_mod, n);
  ctx.r2_ = Pack64(r2_mod, n);
  return ctx;
}

void ModExpCtx::MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out,
                        std::vector<uint64_t>& scratch) const {
  const size_t n = m_.size();
  scratch.assign(n + 2, 0);
  uint64_t* t = scratch.data();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ai = a[i];
    u128 carry = 0;
    for (size_t j = 0; j < n; ++j) {
      u128 cur = static_cast<u128>(t[j]) + static_cast<u128>(ai) * b[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(cur);
    t[n + 1] += static_cast<uint64_t>(cur >> 64);

    const uint64_t u = t[0] * n0inv_;
    carry = 0;
    for (size_t j = 0; j < n; ++j) {
      u128 c2 = static_cast<u128>(t[j]) + static_cast<u128>(u) * m_[j] + carry;
      t[j] = static_cast<uint64_t>(c2);
      carry = c2 >> 64;
    }
    cur = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(cur);
    t[n + 1] += static_cast<uint64_t>(cur >> 64);

    // t[0] is now zero by construction of u: divide by 2^64.
    for (size_t j = 0; j <= n; ++j) {
      t[j] = t[j + 1];
    }
    t[n + 1] = 0;
  }
  if (t[n] != 0 || GeLimbs(t, m_.data(), n)) {
    SubLimbs(t, m_.data(), out, n);
  } else {
    for (size_t j = 0; j < n; ++j) {
      out[j] = t[j];
    }
  }
}

void ModExpCtx::Reduce(uint64_t* p, uint64_t* out) const {
  const size_t n = m_.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t u = p[i] * n0inv_;
    u128 carry = 0;
    for (size_t j = 0; j < n; ++j) {
      u128 cur = static_cast<u128>(p[i + j]) + static_cast<u128>(u) * m_[j] + carry;
      p[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    for (size_t k = i + n; carry != 0; ++k) {
      u128 cur = static_cast<u128>(p[k]) + carry;
      p[k] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  uint64_t* hi = p + n;
  if (hi[n] != 0 || GeLimbs(hi, m_.data(), n)) {
    SubLimbs(hi, m_.data(), out, n);
  } else {
    for (size_t j = 0; j < n; ++j) {
      out[j] = hi[j];
    }
  }
}

void ModExpCtx::MontSqr(const uint64_t* a, uint64_t* out, std::vector<uint64_t>& scratch) const {
  const size_t n = m_.size();
  scratch.assign(2 * n + 1, 0);
  uint64_t* p = scratch.data();
  // Cross products a_i·a_j for i < j: each row's carry lands in p[i+n],
  // which no earlier row has touched.
  for (size_t i = 0; i < n; ++i) {
    u128 carry = 0;
    for (size_t j = i + 1; j < n; ++j) {
      u128 cur = static_cast<u128>(p[i + j]) + static_cast<u128>(a[i]) * a[j] + carry;
      p[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    p[i + n] = static_cast<uint64_t>(carry);
  }
  // Double (the cross sum is < B^2n/2, so the final shift-out is zero)...
  uint64_t c = 0;
  for (size_t k = 0; k < 2 * n; ++k) {
    uint64_t v = p[k];
    p[k] = (v << 1) | c;
    c = v >> 63;
  }
  // ...then add the diagonal a_i².
  u128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 cur = static_cast<u128>(p[2 * i]) + static_cast<uint64_t>(sq) + carry;
    p[2 * i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
    cur = static_cast<u128>(p[2 * i + 1]) + static_cast<uint64_t>(sq >> 64) + carry;
    p[2 * i + 1] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  Reduce(p, out);
}

std::vector<uint64_t> ModExpCtx::ToMont(const BigInt& v) const {
  const size_t n = m_.size();
  std::vector<uint64_t> reduced = Pack64(v.Mod(modulus_), n);
  std::vector<uint64_t> out(n);
  std::vector<uint64_t> scratch;
  MontMul(reduced.data(), r2_.data(), out.data(), scratch);
  return out;
}

BigInt ModExpCtx::FromMont(const std::vector<uint64_t>& v) const {
  const size_t n = m_.size();
  std::vector<uint64_t> one(n, 0);
  one[0] = 1;
  std::vector<uint64_t> out(n);
  std::vector<uint64_t> scratch;
  MontMul(v.data(), one.data(), out.data(), scratch);
  return Unpack64(out.data(), n);
}

BigInt ModExpCtx::Pow(const BigInt& base, const BigInt& exponent) const {
  const size_t n = m_.size();
  const size_t bits = exponent.BitLength();
  if (bits == 0) {
    return BigInt(1).Mod(modulus_);
  }

  const int w = WindowBits(bits);
  const size_t odd_powers = static_cast<size_t>(1) << (w - 1);

  // Odd-power table in the Montgomery domain: tbl[k] = base^(2k+1).
  std::vector<uint64_t> scratch;
  std::vector<uint64_t> tbl(odd_powers * n);
  std::vector<uint64_t> base_m = ToMont(base);
  std::copy(base_m.begin(), base_m.end(), tbl.begin());
  std::vector<uint64_t> base_sq(n);
  MontSqr(base_m.data(), base_sq.data(), scratch);
  for (size_t k = 1; k < odd_powers; ++k) {
    MontMul(&tbl[(k - 1) * n], base_sq.data(), &tbl[k * n], scratch);
  }

  std::vector<uint64_t> acc = r_;  // Montgomery 1
  std::vector<uint64_t> tmp(n);
  size_t i = bits;
  while (i-- > 0) {
    if (!exponent.GetBit(i)) {
      MontSqr(acc.data(), tmp.data(), scratch);
      acc.swap(tmp);
      continue;
    }
    // Widest window [l, i] ending in a set bit, at most w bits.
    size_t l = i >= static_cast<size_t>(w) - 1 ? i - (w - 1) : 0;
    while (!exponent.GetBit(l)) {
      ++l;
    }
    uint32_t window_value = 0;
    for (size_t k = i + 1; k-- > l;) {
      window_value = (window_value << 1) | (exponent.GetBit(k) ? 1u : 0u);
    }
    for (size_t k = 0; k < i - l + 1; ++k) {
      MontSqr(acc.data(), tmp.data(), scratch);
      acc.swap(tmp);
    }
    MontMul(acc.data(), &tbl[(window_value >> 1) * n], tmp.data(), scratch);
    acc.swap(tmp);
    i = l;  // loop decrement steps past the consumed window
  }
  return FromMont(acc);
}

FixedBasePow::FixedBasePow(std::shared_ptr<const ModExpCtx> ctx, const BigInt& base,
                           size_t max_exp_bits, int window)
    : ctx_(std::move(ctx)), base_(base), w_(window) {
  assert(w_ >= 1 && w_ <= 8);
  const size_t n = ctx_->limbs();
  const size_t wbits = static_cast<size_t>(w_);
  windows_ = (max_exp_bits + wbits - 1) / wbits;
  if (windows_ == 0) {
    windows_ = 1;
  }
  table_.assign((windows_ << w_) * n, 0);

  std::vector<uint64_t> scratch;
  std::vector<uint64_t> tmp(n);
  // pw = base^(2^(w·i)) for the current window.
  std::vector<uint64_t> pw = ctx_->ToMont(base);
  for (size_t i = 0; i < windows_; ++i) {
    uint64_t* row = &table_[(i << w_) * n];
    std::copy(pw.begin(), pw.end(), row + n);  // digit 1
    for (size_t d = 2; d < (static_cast<size_t>(1) << w_); ++d) {
      ctx_->MontMul(row + (d - 1) * n, pw.data(), row + d * n, scratch);
    }
    if (i + 1 < windows_) {
      for (size_t s = 0; s < wbits; ++s) {
        ctx_->MontSqr(pw.data(), tmp.data(), scratch);
        pw.swap(tmp);
      }
    }
  }
}

BigInt FixedBasePow::Pow(const BigInt& exponent) const {
  const size_t wbits = static_cast<size_t>(w_);
  if (exponent.BitLength() > windows_ * wbits) {
    return ctx_->Pow(base_, exponent);  // off-table exponent: general path
  }
  const size_t n = ctx_->limbs();
  std::vector<uint64_t> acc = ctx_->MontOne();
  std::vector<uint64_t> tmp(n);
  std::vector<uint64_t> scratch;
  for (size_t i = 0; i < windows_; ++i) {
    uint32_t digit = 0;
    for (size_t b = wbits; b-- > 0;) {
      digit = (digit << 1) | (exponent.GetBit(i * wbits + b) ? 1u : 0u);
    }
    if (digit != 0) {
      ctx_->MontMul(acc.data(), &table_[((i << w_) + digit) * n], tmp.data(), scratch);
      acc.swap(tmp);
    }
  }
  return ctx_->FromMont(acc);
}

}  // namespace kcrypto
