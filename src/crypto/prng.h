// Deterministic pseudo-random source used throughout the simulation.
//
// Everything in this repository is reproducible: key generation, nonces,
// confounders, workload generation, and adversarial choices all draw from
// an explicitly seeded Prng. (The paper notes that "user workstations are
// not particularly good sources of random keys" and proposes a network
// random-number service; src/hsm/keystore.h models that service on top of
// this generator.)
//
// The generator is SplitMix64 — not cryptographically strong, which is fine
// here: no experiment in this repository attacks the generator itself, and
// determinism is what makes the attack demonstrations checkable.

#ifndef SRC_CRYPTO_PRNG_H_
#define SRC_CRYPTO_PRNG_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/crypto/des.h"

namespace kcrypto {

class Prng {
 public:
  explicit Prng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be nonzero (asserted).
  uint64_t NextBelow(uint64_t bound);

  kerb::Bytes NextBytes(size_t n);

  // Same byte stream as NextBytes, written into caller storage — the
  // allocation-free encode path draws confounders this way.
  void Fill(uint8_t* out, size_t n);

  // A fresh DES key: random 56 bits, odd parity, never weak/semi-weak.
  DesKey NextDesKey();

  // Forks an independent stream (for per-host generators).
  Prng Fork();

 private:
  uint64_t state_;
};

}  // namespace kcrypto

#endif  // SRC_CRYPTO_PRNG_H_
