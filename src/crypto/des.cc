#include "src/crypto/des.h"

#include <cassert>

namespace kcrypto {

namespace {

// FIPS 46 tables. Entries are 1-based bit positions counted from the most
// significant bit, exactly as printed in the standard.

constexpr uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2,  60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,  64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1,  59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,  63, 55, 47, 39, 31, 23, 15, 7,
};

constexpr uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25,
};

constexpr uint8_t kE[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
};

constexpr uint8_t kP[32] = {
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25,
};

constexpr uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4,
};

constexpr uint8_t kPc2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
};

constexpr uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr uint8_t kSBox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11},
};

// Applies a 1-based-from-MSB bit permutation table to `in` (treated as an
// `in_bits`-wide value stored in the low bits), producing `out_bits` bits.
uint64_t Permute(uint64_t in, int in_bits, const uint8_t* table, int out_bits) {
  uint64_t out = 0;
  for (int i = 0; i < out_bits; ++i) {
    int src = table[i];  // 1-based from MSB of the in_bits-wide value
    uint64_t bit = (in >> (in_bits - src)) & 1u;
    out = (out << 1) | bit;
  }
  return out;
}

// The Feistel function: expand R to 48 bits, XOR the subkey, substitute
// through the eight S-boxes, and permute with P.
uint64_t Feistel(uint32_t r, uint64_t subkey) {
  uint64_t expanded = Permute(r, 32, kE, 48) ^ subkey;
  uint32_t sbox_out = 0;
  for (int box = 0; box < 8; ++box) {
    uint32_t six = static_cast<uint32_t>((expanded >> (42 - 6 * box)) & 0x3f);
    // Row is the outer two bits, column the inner four.
    uint32_t row = ((six & 0x20) >> 4) | (six & 0x01);
    uint32_t col = (six >> 1) & 0x0f;
    sbox_out = (sbox_out << 4) | kSBox[box][row * 16 + col];
  }
  return Permute(sbox_out, 32, kP, 32);
}

uint32_t RotateLeft28(uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

uint64_t BlockToU64(const DesBlock& b) {
  uint64_t v = 0;
  for (uint8_t byte : b) {
    v = (v << 8) | byte;
  }
  return v;
}

DesBlock U64ToBlock(uint64_t v) {
  DesBlock b;
  for (int i = 7; i >= 0; --i) {
    b[i] = static_cast<uint8_t>(v & 0xff);
    v >>= 8;
  }
  return b;
}

DesKey::DesKey(const DesBlock& key_bytes) : bytes_(key_bytes) { Schedule(); }

DesKey::DesKey(uint64_t key) : bytes_(U64ToBlock(key)) { Schedule(); }

void DesKey::Schedule() {
  uint64_t key56 = Permute(BlockToU64(bytes_), 64, kPc1, 56);
  uint32_t c = static_cast<uint32_t>(key56 >> 28) & 0x0fffffff;
  uint32_t d = static_cast<uint32_t>(key56) & 0x0fffffff;
  for (int round = 0; round < 16; ++round) {
    c = RotateLeft28(c, kShifts[round]);
    d = RotateLeft28(d, kShifts[round]);
    uint64_t cd = (static_cast<uint64_t>(c) << 28) | d;
    subkeys_[round] = Permute(cd, 56, kPc2, 48);
  }
}

uint64_t DesKey::EncryptBlock(uint64_t plaintext) const {
  uint64_t block = Permute(plaintext, 64, kIp, 64);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 0; round < 16; ++round) {
    uint32_t next_l = r;
    r = l ^ static_cast<uint32_t>(Feistel(r, subkeys_[round]));
    l = next_l;
  }
  // Note the final swap: the output is R16 || L16.
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return Permute(preout, 64, kFp, 64);
}

uint64_t DesKey::DecryptBlock(uint64_t ciphertext) const {
  uint64_t block = Permute(ciphertext, 64, kIp, 64);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 15; round >= 0; --round) {
    uint32_t next_l = r;
    r = l ^ static_cast<uint32_t>(Feistel(r, subkeys_[round]));
    l = next_l;
  }
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return Permute(preout, 64, kFp, 64);
}

DesBlock DesKey::EncryptBlock(const DesBlock& plaintext) const {
  return U64ToBlock(EncryptBlock(BlockToU64(plaintext)));
}

DesBlock DesKey::DecryptBlock(const DesBlock& ciphertext) const {
  return U64ToBlock(DecryptBlock(BlockToU64(ciphertext)));
}

DesKey DesKey::Variant(uint8_t mask) const {
  DesBlock v = bytes_;
  for (auto& b : v) {
    b = static_cast<uint8_t>(b ^ mask);
  }
  return DesKey(FixParity(v));
}

DesBlock FixParity(const DesBlock& key) {
  DesBlock out = key;
  for (auto& byte : out) {
    uint8_t b = byte >> 1;  // the 7 key bits
    int ones = 0;
    for (int i = 0; i < 7; ++i) {
      ones += (b >> i) & 1;
    }
    byte = static_cast<uint8_t>((b << 1) | ((ones % 2 == 0) ? 1 : 0));
  }
  return out;
}

bool HasOddParity(const DesBlock& key) {
  for (uint8_t byte : key) {
    int ones = 0;
    for (int i = 0; i < 8; ++i) {
      ones += (byte >> i) & 1;
    }
    if (ones % 2 == 0) {
      return false;
    }
  }
  return true;
}

bool IsWeakKey(const DesBlock& key) {
  // Weak and semi-weak keys, parity-corrected, from FIPS 74 / Davies & Price.
  static constexpr uint64_t kWeak[] = {
      0x0101010101010101ull, 0xfefefefefefefefeull, 0x1f1f1f1f0e0e0e0eull, 0xe0e0e0e0f1f1f1f1ull,
      // Semi-weak pairs.
      0x011f011f010e010eull, 0x1f011f010e010e01ull, 0x01e001e001f101f1ull, 0xe001e001f101f101ull,
      0x01fe01fe01fe01feull, 0xfe01fe01fe01fe01ull, 0x1fe01fe00ef10ef1ull, 0xe01fe01ff10ef10eull,
      0x1ffe1ffe0efe0efeull, 0xfe1ffe1ffe0efe0eull, 0xe0fee0fef1fef1feull, 0xfee0fee0fef1fef1ull,
  };
  uint64_t k = BlockToU64(FixParity(key));
  for (uint64_t w : kWeak) {
    if (k == w) {
      return true;
    }
  }
  return false;
}

}  // namespace kcrypto
