#include "src/crypto/des.h"

#include <algorithm>
#include <array>
#include <bit>

#include "src/crypto/des_tables.h"

namespace kcrypto {

namespace {

using destables::Permute;

// ---------------------------------------------------------------------------
// Compile-time derivation of the fused lookup tables from the FIPS tables.
//
// The fast path never walks a permutation bit by bit. Instead:
//   * IP and FP are applied as eight byte-indexed lookups ORed together
//     (kIpTab/kFpTab: contribution of input byte i having value v).
//   * The round function fuses E, the S-boxes, and P into eight 64-entry
//     tables (kSp): E is just overlapping 6-bit windows of R, so each window,
//     XORed with its 6-bit subkey chunk, indexes a table whose entries are
//     already P-permuted S-box outputs placed in their final positions.
//   * PC-1 and PC-2 of the key schedule get the same byte-indexed treatment.
// All tables are constexpr-generated from the canonical FIPS tables in
// des_tables.h, so there is exactly one source of truth for the standard.
// ---------------------------------------------------------------------------

// Byte-indexed form of a 1-based-from-MSB permutation: entry [i][v] is the
// permuted contribution of input byte i (0 = most significant) holding v.
template <int kInBytes>
constexpr std::array<std::array<uint64_t, 256>, kInBytes> MakeByteTable(
    const uint8_t* table, int in_bits, int out_bits) {
  std::array<std::array<uint64_t, 256>, kInBytes> out{};
  for (int i = 0; i < kInBytes; ++i) {
    for (uint32_t v = 0; v < 256; ++v) {
      uint64_t placed = static_cast<uint64_t>(v) << (in_bits - 8 * (i + 1));
      out[i][v] = Permute(placed, in_bits, table, out_bits);
    }
  }
  return out;
}

constexpr auto kIpTab = MakeByteTable<8>(destables::kIp, 64, 64);
constexpr auto kFpTab = MakeByteTable<8>(destables::kFp, 64, 64);
constexpr auto kPc1Tab = MakeByteTable<8>(destables::kPc1, 64, 56);
constexpr auto kPc2Tab = MakeByteTable<7>(destables::kPc2, 56, 48);

// Fused S-box/P tables: kSp[box][six] is P(S_box(six)) with the 4-bit S-box
// output already placed in its nibble of the 32-bit pre-P word.
constexpr std::array<std::array<uint32_t, 64>, 8> MakeSpTables() {
  std::array<std::array<uint32_t, 64>, 8> out{};
  for (int box = 0; box < 8; ++box) {
    for (uint32_t six = 0; six < 64; ++six) {
      // Row is the outer two bits, column the inner four (FIPS 46).
      uint32_t row = ((six & 0x20) >> 4) | (six & 0x01);
      uint32_t col = (six >> 1) & 0x0f;
      uint32_t sbox_out = static_cast<uint32_t>(destables::kSBox[box][row * 16 + col])
                          << (28 - 4 * box);
      out[box][six] = static_cast<uint32_t>(Permute(sbox_out, 32, destables::kP, 32));
    }
  }
  return out;
}

constexpr auto kSp = MakeSpTables();

inline uint64_t ApplyIp(uint64_t x) {
  return kIpTab[0][(x >> 56) & 0xff] | kIpTab[1][(x >> 48) & 0xff] |
         kIpTab[2][(x >> 40) & 0xff] | kIpTab[3][(x >> 32) & 0xff] |
         kIpTab[4][(x >> 24) & 0xff] | kIpTab[5][(x >> 16) & 0xff] |
         kIpTab[6][(x >> 8) & 0xff] | kIpTab[7][x & 0xff];
}

inline uint64_t ApplyFp(uint64_t x) {
  return kFpTab[0][(x >> 56) & 0xff] | kFpTab[1][(x >> 48) & 0xff] |
         kFpTab[2][(x >> 40) & 0xff] | kFpTab[3][(x >> 32) & 0xff] |
         kFpTab[4][(x >> 24) & 0xff] | kFpTab[5][(x >> 16) & 0xff] |
         kFpTab[6][(x >> 8) & 0xff] | kFpTab[7][x & 0xff];
}

// The round function. The E expansion is eight overlapping 6-bit windows of
// R at stride 4; the even-numbered windows are non-overlapping 6-bit fields
// of rotr(R, 1) and the odd ones the same fields of rotl(R, 3), so two
// rotations materialise all of E, and the 48-bit subkey — stored as chunks
// pre-placed at those field positions — is applied with two word XORs.
inline uint32_t FeistelFast(uint32_t r, const uint32_t* k) {
  const uint32_t u = std::rotr(r, 1) ^ k[0];
  const uint32_t t = std::rotl(r, 3) ^ k[1];
  return kSp[0][(u >> 26) & 0x3f] ^ kSp[1][(t >> 26) & 0x3f] ^
         kSp[2][(u >> 18) & 0x3f] ^ kSp[3][(t >> 18) & 0x3f] ^
         kSp[4][(u >> 10) & 0x3f] ^ kSp[5][(t >> 10) & 0x3f] ^
         kSp[6][(u >> 2) & 0x3f] ^ kSp[7][(t >> 2) & 0x3f];
}

uint32_t RotateLeft28(uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

uint64_t BlockToU64(const DesBlock& b) { return LoadU64BE(b.data()); }

DesBlock U64ToBlock(uint64_t v) {
  DesBlock b;
  StoreU64BE(b.data(), v);
  return b;
}

DesKey::DesKey(const DesBlock& key_bytes) : bytes_(key_bytes) { Schedule(); }

DesKey::DesKey(uint64_t key) : bytes_(U64ToBlock(key)) { Schedule(); }

void DesKey::Schedule() {
  uint64_t key = BlockToU64(bytes_);
  uint64_t key56 = kPc1Tab[0][(key >> 56) & 0xff] | kPc1Tab[1][(key >> 48) & 0xff] |
                   kPc1Tab[2][(key >> 40) & 0xff] | kPc1Tab[3][(key >> 32) & 0xff] |
                   kPc1Tab[4][(key >> 24) & 0xff] | kPc1Tab[5][(key >> 16) & 0xff] |
                   kPc1Tab[6][(key >> 8) & 0xff] | kPc1Tab[7][key & 0xff];
  uint32_t c = static_cast<uint32_t>(key56 >> 28) & 0x0fffffff;
  uint32_t d = static_cast<uint32_t>(key56) & 0x0fffffff;
  for (int round = 0; round < 16; ++round) {
    c = RotateLeft28(c, destables::kShifts[round]);
    d = RotateLeft28(d, destables::kShifts[round]);
    uint64_t cd = (static_cast<uint64_t>(c) << 28) | d;
    uint64_t subkey48 = kPc2Tab[0][(cd >> 48) & 0xff] | kPc2Tab[1][(cd >> 40) & 0xff] |
                        kPc2Tab[2][(cd >> 32) & 0xff] | kPc2Tab[3][(cd >> 24) & 0xff] |
                        kPc2Tab[4][(cd >> 16) & 0xff] | kPc2Tab[5][(cd >> 8) & 0xff] |
                        kPc2Tab[6][cd & 0xff];
    // Split into even/odd S-box chunks placed where the round function's
    // rotated-R windows sit (31..26 / 23..18 / 15..10 / 7..2).
    uint32_t even = 0;
    uint32_t odd = 0;
    for (int i = 0; i < 4; ++i) {
      const int shift = 26 - 8 * i;
      even |= static_cast<uint32_t>((subkey48 >> (42 - 12 * i)) & 0x3f) << shift;
      odd |= static_cast<uint32_t>((subkey48 >> (36 - 12 * i)) & 0x3f) << shift;
    }
    roundkeys_[round][0] = even;
    roundkeys_[round][1] = odd;
  }
}

uint64_t DesKey::EncryptBlock(uint64_t plaintext) const {
  uint64_t block = ApplyIp(plaintext);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 0; round < 16; round += 2) {
    // Two rounds per step keeps L and R in registers without a swap.
    l ^= FeistelFast(r, roundkeys_[round].data());
    r ^= FeistelFast(l, roundkeys_[round + 1].data());
  }
  // Note the final swap: the output is R16 || L16.
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return ApplyFp(preout);
}

uint64_t DesKey::DecryptBlock(uint64_t ciphertext) const {
  uint64_t block = ApplyIp(ciphertext);
  uint32_t l = static_cast<uint32_t>(block >> 32);
  uint32_t r = static_cast<uint32_t>(block);
  for (int round = 15; round >= 0; round -= 2) {
    l ^= FeistelFast(r, roundkeys_[round].data());
    r ^= FeistelFast(l, roundkeys_[round - 1].data());
  }
  uint64_t preout = (static_cast<uint64_t>(r) << 32) | l;
  return ApplyFp(preout);
}

void DesKey::EncryptBlocks2(const uint64_t* in, uint64_t* out, size_t n) const {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64_t b0 = ApplyIp(in[i]);
    uint64_t b1 = ApplyIp(in[i + 1]);
    uint32_t l0 = static_cast<uint32_t>(b0 >> 32);
    uint32_t r0 = static_cast<uint32_t>(b0);
    uint32_t l1 = static_cast<uint32_t>(b1 >> 32);
    uint32_t r1 = static_cast<uint32_t>(b1);
    for (int round = 0; round < 16; round += 2) {
      l0 ^= FeistelFast(r0, roundkeys_[round].data());
      l1 ^= FeistelFast(r1, roundkeys_[round].data());
      r0 ^= FeistelFast(l0, roundkeys_[round + 1].data());
      r1 ^= FeistelFast(l1, roundkeys_[round + 1].data());
    }
    out[i] = ApplyFp((static_cast<uint64_t>(r0) << 32) | l0);
    out[i + 1] = ApplyFp((static_cast<uint64_t>(r1) << 32) | l1);
  }
  if (i < n) {
    out[i] = EncryptBlock(in[i]);
  }
}

void DesKey::DecryptBlocks2(const uint64_t* in, uint64_t* out, size_t n) const {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64_t b0 = ApplyIp(in[i]);
    uint64_t b1 = ApplyIp(in[i + 1]);
    uint32_t l0 = static_cast<uint32_t>(b0 >> 32);
    uint32_t r0 = static_cast<uint32_t>(b0);
    uint32_t l1 = static_cast<uint32_t>(b1 >> 32);
    uint32_t r1 = static_cast<uint32_t>(b1);
    for (int round = 15; round >= 0; round -= 2) {
      l0 ^= FeistelFast(r0, roundkeys_[round].data());
      l1 ^= FeistelFast(r1, roundkeys_[round].data());
      r0 ^= FeistelFast(l0, roundkeys_[round - 1].data());
      r1 ^= FeistelFast(l1, roundkeys_[round - 1].data());
    }
    out[i] = ApplyFp((static_cast<uint64_t>(r0) << 32) | l0);
    out[i + 1] = ApplyFp((static_cast<uint64_t>(r1) << 32) | l1);
  }
  if (i < n) {
    out[i] = DecryptBlock(in[i]);
  }
}

DesBlock DesKey::EncryptBlock(const DesBlock& plaintext) const {
  return U64ToBlock(EncryptBlock(BlockToU64(plaintext)));
}

DesBlock DesKey::DecryptBlock(const DesBlock& ciphertext) const {
  return U64ToBlock(DecryptBlock(BlockToU64(ciphertext)));
}

DesKey DesKey::Variant(uint8_t mask) const {
  DesBlock v = bytes_;
  for (auto& b : v) {
    b = static_cast<uint8_t>(b ^ mask);
  }
  return DesKey(FixParity(v));
}

DesBlock FixParity(const DesBlock& key) {
  // All eight parity bits at once: fold the seven key bits of every byte
  // down to bit 0 with three XOR-shifts, then set each low bit to the
  // complement of that fold (odd parity). This sits inside string-to-key and
  // the weak-key check, i.e. in the cracking inner loop.
  const uint64_t k = LoadU64BE(key.data());
  uint64_t x = (k >> 1) & 0x7f7f7f7f7f7f7f7full;  // the 7 key bits, per byte
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  const uint64_t parity = (x ^ 0x0101010101010101ull) & 0x0101010101010101ull;
  return U64ToBlock((k & 0xfefefefefefefefeull) | parity);
}

bool HasOddParity(const DesBlock& key) {
  for (uint8_t byte : key) {
    if ((std::popcount(byte) & 1) == 0) {
      return false;
    }
  }
  return true;
}

bool IsWeakKey(const DesBlock& key) {
  // Weak and semi-weak keys, parity-corrected, from FIPS 74 / Davies & Price,
  // pre-sorted so membership is a binary search (this sits inside the
  // string-to-key weak-key rejection, i.e. in the cracking inner loop).
  static constexpr std::array<uint64_t, 16> kWeakSorted = [] {
    std::array<uint64_t, 16> keys = {
        0x0101010101010101ull, 0xfefefefefefefefeull, 0x1f1f1f1f0e0e0e0eull,
        0xe0e0e0e0f1f1f1f1ull,
        // Semi-weak pairs.
        0x011f011f010e010eull, 0x1f011f010e010e01ull, 0x01e001e001f101f1ull,
        0xe001e001f101f101ull, 0x01fe01fe01fe01feull, 0xfe01fe01fe01fe01ull,
        0x1fe01fe00ef10ef1ull, 0xe01fe01ff10ef10eull, 0x1ffe1ffe0efe0efeull,
        0xfe1ffe1ffe0efe0eull, 0xe0fee0fef1fef1feull, 0xfee0fee0fef1fef1ull,
    };
    std::sort(keys.begin(), keys.end());
    return keys;
  }();
  uint64_t k = BlockToU64(FixParity(key));
  return std::binary_search(kWeakSorted.begin(), kWeakSorted.end(), k);
}

}  // namespace kcrypto
