// Fast modular exponentiation engine.
//
// The paper's cost objection to exponential key exchange — "using large
// [numbers] is expensive in computation time" — is mostly a statement about
// naive modexp. This module supplies the engineered version:
//
//   * ModExpCtx — a cached Montgomery context for one odd modulus. The
//     per-modulus setup the old BigInt::ModExp repaid on every call
//     (n0inv, R mod m, R² mod m) is computed once at construction; every
//     Pow() call reuses it. Internally the context repacks the 32-bit
//     BigInt limbs into 64-bit limbs with 128-bit accumulation, halving
//     the limb count and quartering the single-word multiply count.
//   * ModExpCtx::Pow — sliding-window exponentiation (window 2–5 chosen
//     from the exponent width) over an odd-power table, with a dedicated
//     Montgomery squaring (MontSqr) that exploits product symmetry for the
//     ~50% of inner-loop work that squarings are.
//   * FixedBasePow — a radix-2^w fixed-base table for one (base, modulus)
//     pair: base^(d·2^(w·i)) for every window i and digit d, built once.
//     Evaluating base^e is then one Montgomery multiply per non-zero
//     window digit and no squarings at all — the shape of the KDC's g^x,
//     where g never changes.
//
// Construction is fail-closed: Create() returns an error for a zero, even,
// or ≤1 modulus instead of asserting, so degenerate DH group parameters
// surface as protocol errors (tests/fuzz/malformed_test.cc sweeps them).
//
// The pre-existing binary ladder survives as BigInt::ModExpBinary — the
// cross-check oracle, same pattern as DesKeyRef vs the table-driven DES —
// and tests/crypto/modexp_test.cc property-checks every path against it.
//
// SIDE-CHANNEL CAVEAT: none of these paths is constant-time in the
// exponent. The sliding-window scan branches on exponent bits and indexes
// the odd-power/comb tables with exponent-derived digits (as did the
// binary ladder before it), so secret exponents — DH private keys — leak
// through timing and cache side channels. That is acceptable here: this
// is a deterministic simulation of a 1991 protocol, every "secret" is a
// seeded-PRNG artifact, and no adversary in the threat model shares
// hardware with the victim. Do not lift this module into a setting where
// one does; a fixed-window scan with constant-time table selection is the
// standard remedy.

#ifndef SRC_CRYPTO_MODEXP_H_
#define SRC_CRYPTO_MODEXP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/crypto/bigint.h"

namespace kcrypto {

// Cached Montgomery-exponentiation context for one odd modulus > 1.
// Immutable after construction, so one context may be shared freely across
// serving threads (each Pow() call owns its scratch).
class ModExpCtx {
 public:
  // Fail-closed: rejects zero, even, and ≤1 moduli with kBadFormat.
  static kerb::Result<ModExpCtx> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }
  // Number of internal 64-bit limbs.
  size_t limbs() const { return m_.size(); }

  // (base^exponent) mod modulus via sliding-window Montgomery ladder.
  BigInt Pow(const BigInt& base, const BigInt& exponent) const;

  // --- Montgomery-domain plumbing (used by FixedBasePow and the property
  // tests; not a general-purpose API). Values are little-endian vectors of
  // limbs() 64-bit words. `scratch` is caller-owned so the ops stay
  // re-entrant; it is resized on first use and reused allocation-free
  // afterwards.
  std::vector<uint64_t> ToMont(const BigInt& v) const;
  BigInt FromMont(const std::vector<uint64_t>& v) const;
  // out = a·b·R⁻¹ mod m (CIOS).
  void MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out,
               std::vector<uint64_t>& scratch) const;
  // out = a²·R⁻¹ mod m — squaring specialization: computes the half
  // product, doubles, adds the diagonal, then reduces.
  void MontSqr(const uint64_t* a, uint64_t* out, std::vector<uint64_t>& scratch) const;
  // 1 in the Montgomery domain (R mod m).
  const std::vector<uint64_t>& MontOne() const { return r_; }

 private:
  ModExpCtx() = default;

  // Montgomery reduction of the 2n(+1)-limb value in `p` (modified in
  // place); quotient limbs land in p[n..2n], reduced result in `out`.
  void Reduce(uint64_t* p, uint64_t* out) const;

  BigInt modulus_;
  std::vector<uint64_t> m_;   // modulus, 64-bit limbs, little-endian
  uint64_t n0inv_ = 0;        // -m[0]^-1 mod 2^64
  std::vector<uint64_t> r_;   // R mod m      (Montgomery 1)
  std::vector<uint64_t> r2_;  // R² mod m     (to-Montgomery factor)
};

// Precomputed fixed-base exponentiation table: T[i][d] = base^(d·2^(w·i))
// mod m for windows i covering max_exp_bits and digits d in [1, 2^w).
// base^e is then Π T[i][digit_i(e)] — one MontMul per non-zero digit.
// Exponents wider than max_exp_bits fall back to ctx->Pow().
// Immutable after construction; shareable across threads.
class FixedBasePow {
 public:
  FixedBasePow(std::shared_ptr<const ModExpCtx> ctx, const BigInt& base,
               size_t max_exp_bits, int window = 4);

  BigInt Pow(const BigInt& exponent) const;

  const BigInt& base() const { return base_; }
  size_t table_entries() const { return windows_ << w_; }

 private:
  std::shared_ptr<const ModExpCtx> ctx_;
  BigInt base_;
  int w_;
  size_t windows_;
  // Flat table: entry (i, d) at ((i << w_) + d) * ctx_->limbs(). Digit 0
  // slots are unused (a zero digit multiplies by nothing).
  std::vector<uint64_t> table_;
};

}  // namespace kcrypto

#endif  // SRC_CRYPTO_MODEXP_H_
