// CRC-32 (the ISO 3309 / IEEE 802.3 polynomial) and its inversion.
//
// Draft 3 of Kerberos Version 5 permitted CRC-32 as the checksum sealing
// protocol messages. The paper's appendix shows that CRC-32 is not
// "collision-proof": an attacker who can choose a few bytes of a message can
// force the CRC to any desired value, because CRC is an affine function of
// the message. `ForgePatch` implements that fixup — given a message prefix
// and a target CRC, it returns the four bytes whose concatenation yields the
// target. It is the engine of the ENC-TKT-IN-SKEY cut-and-paste attack
// (experiment E9): "the additional authorization data field is filled in
// with whatever information is needed to make the CRC match".

#ifndef SRC_CRYPTO_CRC32_H_
#define SRC_CRYPTO_CRC32_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace kcrypto {

// Standard reflected CRC-32: init 0xFFFFFFFF, reflected polynomial
// 0xEDB88320, final XOR 0xFFFFFFFF.
uint32_t Crc32(kerb::BytesView data);

// Incremental interface.
class Crc32State {
 public:
  void Update(kerb::BytesView data);
  uint32_t Final() const { return reg_ ^ 0xffffffffu; }

 private:
  friend std::array<uint8_t, 4> ForgePatch(kerb::BytesView, uint32_t);
  uint32_t reg_ = 0xffffffffu;
};

// Returns 4 bytes `patch` such that Crc32(prefix || patch) == target_crc.
// Always succeeds: the top byte of the CRC-32 table is a permutation, so the
// backward walk is uniquely determined.
std::array<uint8_t, 4> ForgePatch(kerb::BytesView prefix, uint32_t target_crc);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_CRC32_H_
