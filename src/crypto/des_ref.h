// Reference (bit-at-a-time) DES, kept as a correctness oracle.
//
// This is the original clarity-first transcription of FIPS 46: every
// permutation is applied by walking the standard's printed table one bit at
// a time. It is roughly an order of magnitude slower than the table-driven
// production path in des.h, and exists so that the fast path can be
// cross-checked against an independently structured implementation — the
// tests encrypt/decrypt the same (key, block) pairs through both and demand
// bit-identical results (tests/crypto/des_fastref_test.cc).
//
// Nothing outside the tests should use this class.

#ifndef SRC_CRYPTO_DES_REF_H_
#define SRC_CRYPTO_DES_REF_H_

#include <array>
#include <cstdint>

namespace kcrypto {

// A DES key with its 16-round subkey schedule precomputed, reference
// implementation. Mirrors the uint64_t half of the DesKey interface.
class DesKeyRef {
 public:
  DesKeyRef() = default;
  explicit DesKeyRef(uint64_t key);

  uint64_t EncryptBlock(uint64_t plaintext) const;
  uint64_t DecryptBlock(uint64_t ciphertext) const;

 private:
  void Schedule(uint64_t key);

  std::array<uint64_t, 16> subkeys_{};  // 48-bit round keys in the low bits
};

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DES_REF_H_
