// String-to-key: derives a user's DES key Kc from a typed password.
//
// "The client key Kc is derived from a non-invertible transform of the
// user's typed password. Thus, all privileges depend ultimately on this one
// key." This is the function a password-guessing adversary re-runs per
// dictionary candidate (experiments E4/E5, bench B4). The algorithm follows
// the Kerberos V4 shape: fan-fold the password into 56 bits with alternate
// reversal, fix parity, then CBC-MAC the salted password under that interim
// key and fix parity again. It is public by design (Kerckhoffs).

#ifndef SRC_CRYPTO_STR2KEY_H_
#define SRC_CRYPTO_STR2KEY_H_

#include <string_view>

#include "src/crypto/des.h"

namespace kcrypto {

// `salt` is realm+principal in real Kerberos; any stable string works here.
DesKey StringToKey(std::string_view password, std::string_view salt);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_STR2KEY_H_
