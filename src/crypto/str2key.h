// String-to-key: derives a user's DES key Kc from a typed password.
//
// "The client key Kc is derived from a non-invertible transform of the
// user's typed password. Thus, all privileges depend ultimately on this one
// key." This is the function a password-guessing adversary re-runs per
// dictionary candidate (experiments E4/E5, bench B4). The algorithm follows
// the Kerberos V4 shape: fan-fold the password into 56 bits with alternate
// reversal, fix parity, then CBC-MAC the salted password under that interim
// key and fix parity again. It is public by design (Kerckhoffs).

#ifndef SRC_CRYPTO_STR2KEY_H_
#define SRC_CRYPTO_STR2KEY_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/crypto/des.h"
#include "src/crypto/des_slice.h"

namespace kcrypto {

// `salt` is realm+principal in real Kerberos; any stable string works here.
DesKey StringToKey(std::string_view password, std::string_view salt);

// Batched derivation through the bitsliced engine (des_slice.h): derives up
// to kDesSliceLanes keys in one pass, the fan-fold scalar per lane and the
// CBC-MAC confirmation bitsliced across lanes. out[i] receives exactly the
// raw key bytes (parity- and weak-key-fixed) that StringToKey(words[i],
// salt) would schedule — byte-identical, pinned by str2key_test.cc. This is
// the dictionary sweep's unit of work: one batch = hundreds of candidate
// passwords through the expensive DES portion at a few gates per key bit.
void StringToKeyBatch(const std::string* words, size_t n, std::string_view salt,
                      DesBlock* out);

// As StringToKeyBatch, and additionally returns the bitsliced schedule of
// the derived keys in `ks` — built directly from the key wires, skipping a
// store/re-load/transpose round trip. This is what the dictionary sweep
// uses: derive a batch of keys and immediately trial-decrypt under all of
// them.
void StringToKeyBatchSchedule(const std::string* words, size_t n, std::string_view salt,
                              DesBlock* out, DesSliceKeys& ks);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_STR2KEY_H_
