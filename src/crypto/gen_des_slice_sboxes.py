#!/usr/bin/env python3
"""Generates src/crypto/des_slice_sboxes.inc from the FIPS tables.

The bitsliced DES engine (des_slice.cc) evaluates each S-box as a boolean
circuit over six input wires instead of a table lookup. This script derives
those circuits from the canonical kSBox tables in des_tables.h — the same
single source of truth the table-driven path compiles its fused tables from
— so the two fast paths can never disagree about the standard.

Circuit shape, per S-box:
  * the four middle input bits (the FIPS "column") feed a shared base of 16
    column minterms (28 gates);
  * each of the 16 row-functions (4 output bits x 4 rows; every one has
    exactly 8 ones because each S-box row is a permutation of 0..15) is an
    OR over its minterms, with OR subtrees shared greedily across all 16
    functions of the S-box;
  * the two outer bits (the FIPS "row") select among the four row values
    with a disjoint AND-OR mux.

Every generated circuit is verified here exhaustively against the parsed
table (64 inputs in parallel, one per lane), and again at runtime against
DesKeyRef by tests/crypto/des_slice_test.cc.

Usage:  python3 src/crypto/gen_des_slice_sboxes.py > src/crypto/des_slice_sboxes.inc
"""

import re
import sys
from collections import Counter
from pathlib import Path


def parse_sboxes(tables_header):
    """Extracts kSBox[8][64] from des_tables.h."""
    text = Path(tables_header).read_text()
    match = re.search(r"kSBox\[8\]\[64\]\s*=\s*\{(.*?)\};", text, re.S)
    if not match:
        sys.exit("kSBox not found in " + tables_header)
    boxes = []
    for group in re.findall(r"\{([^{}]*)\}", match.group(1)):
        values = [int(v) for v in re.findall(r"\d+", group)]
        assert len(values) == 64
        boxes.append(values)
    assert len(boxes) == 8
    for box in boxes:
        for row in range(4):
            assert sorted(box[row * 16:(row + 1) * 16]) == list(range(16))
    return boxes


class Emitter:
    def __init__(self):
        self.lines = []
        self.count = 0
        self.next_id = 0

    def temp(self):
        name = f"t{self.next_id}"
        self.next_id += 1
        return name

    def op(self, expr):
        name = self.temp()
        self.lines.append(f"  const W {name} = {expr};")
        self.count += 1
        return name


def synthesize(box_index, table):
    """Returns (code lines, gate count) for one S-box."""
    e = Emitter()

    # Column minterm base over the middle bits a4..a1 (col = a4 a3 a2 a1).
    n = {}
    for v in (4, 3, 2, 1):
        n[v] = e.op(f"~a{v}")
    hi = [e.op(f"{n[4]} & {n[3]}"), e.op(f"{n[4]} & a3"),
          e.op(f"a4 & {n[3]}"), e.op("a4 & a3")]
    lo = [e.op(f"{n[2]} & {n[1]}"), e.op(f"{n[2]} & a1"),
          e.op(f"a2 & {n[1]}"), e.op("a2 & a1")]
    minterm = [e.op(f"{hi[c >> 2]} & {lo[c & 3]}") for c in range(16)]

    # Row functions: targets[(bit, row)] = frozenset of columns where the
    # output bit is set. Shared-OR construction: repeatedly materialize the
    # pair of nodes that co-occurs in the most remaining targets.
    targets = {}
    for bit in range(4):
        for row in range(4):
            cols = frozenset(c for c in range(16)
                             if (table[row * 16 + c] >> bit) & 1)
            assert len(cols) == 8
            targets[(bit, row)] = cols

    # Each node is keyed by the set of minterms it ORs together.
    node_name = {frozenset([c]): minterm[c] for c in range(16)}
    # Work lists: per target, the set of node-keys still to be ORed.
    work = {key: {frozenset([c]) for c in cols} for key, cols in targets.items()}

    while any(len(parts) > 1 for parts in work.values()):
        pair_count = Counter()
        for parts in work.values():
            parts_list = sorted(parts, key=sorted)
            for i in range(len(parts_list)):
                for j in range(i + 1, len(parts_list)):
                    pair_count[(parts_list[i], parts_list[j])] += 1
        (a, b), _ = max(pair_count.items(),
                        key=lambda kv: (kv[1], -len(kv[0][0] | kv[0][1]),
                                        sorted(kv[0][0] | kv[0][1])))
        merged = a | b
        if merged not in node_name:
            node_name[merged] = e.op(f"{node_name[a]} | {node_name[b]}")
        for parts in work.values():
            if a in parts and b in parts:
                parts.discard(a)
                parts.discard(b)
                parts.add(merged)

    value = {key: node_name[next(iter(parts))] for key, parts in work.items()}

    # Row mux: row = (a5, a0) per FIPS 46 (outer bits).
    n5 = e.op("~a5")
    n0 = e.op("~a0")
    rowsel = [e.op(f"{n5} & {n0}"), e.op(f"{n5} & a0"),
              e.op(f"a5 & {n0}"), e.op("a5 & a0")]
    outputs = []
    for bit in range(4):
        products = [e.op(f"{rowsel[row]} & {value[(bit, row)]}")
                    for row in range(4)]
        or1 = e.op(f"{products[0]} | {products[1]}")
        or2 = e.op(f"{products[2]} | {products[3]}")
        outputs.append(e.op(f"{or1} | {or2}"))

    # Pre-P wiring: output parameter oI is pre-P bit 4*box + I, which holds
    # S-box value bit (3 - I) (the value's MSB lands first).
    for i in range(4):
        e.lines.append(f"  o{i} = {outputs[3 - i]};")
    return e.lines, e.count


def verify(table, lines):
    """Evaluates the emitted circuit with one lane per input value."""
    env = {}
    for bit in range(6):
        word = 0
        for lane in range(64):
            word |= ((lane >> bit) & 1) << lane
        env[f"a{bit}"] = word
    mask = (1 << 64) - 1

    class Out:
        pass

    out = Out()
    for line in lines:
        m = re.match(r"\s*(?:const W )?(\w+) = (.*);", line)
        assert m, line
        name, expr = m.group(1), m.group(2)
        expr = expr.replace("~", f"{mask} ^ ")
        result = eval(expr, {}, env) & mask  # noqa: S307 - trusted input
        if name.startswith("o"):
            setattr(out, name, result)
        else:
            env[name] = result

    for i in range(4):
        expected = 0
        for lane in range(64):
            row = ((lane >> 5) << 1) | (lane & 1)
            col = (lane >> 1) & 0xF
            expected |= (((table[row * 16 + col] >> (3 - i)) & 1)) << lane
        assert getattr(out, f"o{i}") == expected, f"output o{i} mismatch"


def main():
    here = Path(__file__).resolve().parent
    boxes = parse_sboxes(here / "des_tables.h")

    print("// Generated by gen_des_slice_sboxes.py — do not edit by hand.")
    print("// Bitsliced DES S-box circuits derived from destables::kSBox and")
    print("// verified exhaustively by the generator; cross-checked against")
    print("// DesKeyRef by tests/crypto/des_slice_test.cc.")
    print("//")
    print("// Inputs a5..a0 are the six S-box input wires (a5/a0 the FIPS row")
    print("// bits, a4..a1 the column). Outputs o0..o3 are pre-P bits")
    print("// 4*box+0 .. 4*box+3 (value MSB first).")
    total = 0
    for box in range(8):
        lines, count = synthesize(box, boxes[box])
        verify(boxes[box], lines)
        total += count
        print()
        print(f"// S{box + 1}: {count} gates.")
        print("template <typename W>")
        print(f"inline void DesSliceSbox{box + 1}(W a5, W a4, W a3, W a2, "
              "W a1, W a0,")
        print(f"{' ' * (22 + len(str(box + 1)))}W& o0, W& o1, W& o2, W& o3) "
              "{")
        for line in lines:
            print(line)
        print("}")
    print()
    print(f"// Total: {total} gates across the eight S-boxes.")


if __name__ == "__main__":
    main()
