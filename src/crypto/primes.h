// Primality testing and prime search for word-sized moduli.
//
// Used by the toy Diffie–Hellman groups (bench B3) and their discrete-log
// cryptanalysis. Deterministic Miller–Rabin is exact for all 64-bit inputs
// with the standard witness set.

#ifndef SRC_CRYPTO_PRIMES_H_
#define SRC_CRYPTO_PRIMES_H_

#include <cstdint>

#include "src/crypto/prng.h"

namespace kcrypto {

// (a * b) mod m without overflow, for any 64-bit operands.
uint64_t MulMod64(uint64_t a, uint64_t b, uint64_t m);

// (base ^ exp) mod m.
uint64_t PowMod64(uint64_t base, uint64_t exp, uint64_t m);

// Exact primality for any 64-bit n (deterministic Miller–Rabin witnesses).
bool IsPrime64(uint64_t n);

// Random prime with exactly `bits` bits (2..63).
uint64_t RandomPrime64(Prng& prng, int bits);

// Random safe prime p = 2q + 1 with exactly `bits` bits (4..62).
uint64_t RandomSafePrime64(Prng& prng, int bits);

// Finds a generator of the full multiplicative group mod safe prime p.
uint64_t FindGenerator64(uint64_t safe_prime, Prng& prng);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_PRIMES_H_
