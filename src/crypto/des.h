// From-scratch implementation of the Data Encryption Standard (FIPS 46).
//
// Kerberos V4 and the V5 Draft 3 model in this repository are built on DES,
// exactly as the original systems were. The implementation is a direct,
// table-driven transcription of the standard: initial/final permutations,
// 16 Feistel rounds with the E expansion, S-boxes and P permutation, and the
// PC-1/PC-2 key schedule. It is verified against published test vectors in
// tests/crypto/des_test.cc.
//
// Performance note: this is a clarity-first bit-permutation implementation,
// not a bitsliced one. The benchmark suite (bench_b1_desmodes) measures it
// as-is; all comparative results in EXPERIMENTS.md are ratios between modes
// of this same core, so the shape of the paper's cost claims is preserved.

#ifndef SRC_CRYPTO_DES_H_
#define SRC_CRYPTO_DES_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace kcrypto {

// One 64-bit DES block as raw bytes, big-endian bit numbering per FIPS 46.
using DesBlock = std::array<uint8_t, 8>;

uint64_t BlockToU64(const DesBlock& b);
DesBlock U64ToBlock(uint64_t v);

// A DES key with its 16-round subkey schedule precomputed.
//
// Keys are 8 bytes; the low bit of each byte is an odd-parity bit per the
// standard. Construction does not reject bad parity (Kerberos historically
// fixed parity rather than failing) — use FixParity()/HasOddParity() to
// manage it explicitly.
class DesKey {
 public:
  DesKey() = default;
  explicit DesKey(const DesBlock& key_bytes);
  explicit DesKey(uint64_t key);

  const DesBlock& bytes() const { return bytes_; }
  uint64_t AsU64() const { return BlockToU64(bytes_); }

  // Encrypts / decrypts one 64-bit block.
  uint64_t EncryptBlock(uint64_t plaintext) const;
  uint64_t DecryptBlock(uint64_t ciphertext) const;

  DesBlock EncryptBlock(const DesBlock& plaintext) const;
  DesBlock DecryptBlock(const DesBlock& ciphertext) const;

  // Derives a "variant" key by XORing every byte with `mask`. Draft 3 uses
  // variant keys for its encrypted-checksum types so that a checksum key is
  // never identical to the message-encryption key.
  DesKey Variant(uint8_t mask) const;

  bool operator==(const DesKey& other) const { return bytes_ == other.bytes_; }

 private:
  void Schedule();

  DesBlock bytes_{};
  std::array<uint64_t, 16> subkeys_{};  // 48-bit round keys in the low bits
};

// Sets each byte of `key` to odd parity (modifying only bit 0 of each byte).
DesBlock FixParity(const DesBlock& key);

// True when every byte of `key` has odd parity.
bool HasOddParity(const DesBlock& key);

// True for the four weak and twelve semi-weak DES keys (parity-adjusted
// comparison). Kerberos key generation must reject these.
bool IsWeakKey(const DesBlock& key);

}  // namespace kcrypto

#endif  // SRC_CRYPTO_DES_H_
